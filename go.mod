module github.com/scidata/errprop

go 1.22
