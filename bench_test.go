package errprop_test

import (
	"testing"

	"github.com/scidata/errprop/internal/experiments"
)

// One benchmark per table/figure of the paper's evaluation. Each
// iteration regenerates the full table; run with
//
//	go test -bench 'BenchmarkFig|BenchmarkTable' -benchtime 1x
//
// to print every experiment once (the harness logs the table on the
// first iteration so `go test -bench . -v` doubles as a report).

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if res.Table.NumRows() == 0 {
			b.Fatalf("%s produced an empty table", id)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }

// Extensions (the paper's future-work items, implemented here).
func BenchmarkExtGroupedINT8(b *testing.B)     { benchExperiment(b, "ext1") }
func BenchmarkExtActivationQuant(b *testing.B) { benchExperiment(b, "ext2") }
func BenchmarkExtMixedPrecision(b *testing.B)  { benchExperiment(b, "ext3") }
func BenchmarkExtAutotune(b *testing.B)        { benchExperiment(b, "ext4") }
func BenchmarkExtUNet(b *testing.B)            { benchExperiment(b, "ext5") }
func BenchmarkExtAttention(b *testing.B)       { benchExperiment(b, "ext6") }
func BenchmarkExtFP8(b *testing.B)             { benchExperiment(b, "ext7") }
