package errprop_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	errprop "github.com/scidata/errprop"
	"github.com/scidata/errprop/internal/tensor"
)

// buildTrained returns a small PSN MLP fitted to a smooth function, the
// kind of model a downstream user would bring to the facade.
func buildTrained(t testing.TB) *errprop.Network {
	t.Helper()
	spec := errprop.MLPSpec("facade", []int{4, 24, 24, 2}, errprop.ActTanh, true)
	net, err := spec.Build(11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	x := tensor.NewMatrix(4, 128)
	y := tensor.NewMatrix(2, 128)
	for c := 0; c < 128; c++ {
		var s float64
		for r := 0; r < 4; r++ {
			v := rng.Float64()*2 - 1
			x.Set(r, c, v)
			s += v
		}
		y.Set(0, c, math.Sin(s))
		y.Set(1, c, 0.5*math.Cos(2*s))
	}
	// Minimal training loop through the exported surface.
	for epoch := 0; epoch < 200; epoch++ {
		net.ZeroGrad()
		out := net.Forward(x, true)
		grad := tensor.NewMatrix(2, 128)
		for i := range grad.Data {
			grad.Data[i] = (out.Data[i] - y.Data[i]) / 128
		}
		net.AddRegGrad(1e-4)
		net.Backward(grad)
		for _, p := range net.Params() {
			for i := range p.Data {
				p.Data[i] -= 0.1 * p.Grad[i]
			}
		}
	}
	net.RefreshSigmas()
	return net
}

func TestFacadeAnalyzeBoundHolds(t *testing.T) {
	net := buildTrained(t)
	an, err := errprop.Analyze(net, errprop.FP16)
	if err != nil {
		t.Fatal(err)
	}
	qnet, err := errprop.Quantize(net, errprop.FP16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	einf := 1e-4
	bound := an.BoundLinf(einf)
	for trial := 0; trial < 20; trial++ {
		x := make(tensor.Vector, 4)
		xp := make(tensor.Vector, 4)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
			xp[i] = x[i] + (rng.Float64()*2-1)*einf
		}
		y := net.ForwardVec(x.Clone())
		yq := qnet.ForwardVec(xp)
		if d := y.Sub(yq).NormInf(); d > bound {
			t.Fatalf("achieved %v > facade bound %v", d, bound)
		}
	}
}

func TestFacadePlanAndPipeline(t *testing.T) {
	net := buildTrained(t)
	plan, err := errprop.Plan(net, errprop.PlanRequest{
		Tol: 1e-2, Norm: errprop.NormLinf, QuantFraction: 0.5, Conservative: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalBound > 1e-2 {
		t.Fatalf("plan bound %v exceeds tolerance", plan.TotalBound)
	}
	pipe, err := errprop.NewPipeline(net, plan, "sz", errprop.NormLinf)
	if err != nil {
		t.Fatal(err)
	}
	// A 4-feature field on a 16x16 grid.
	rng := rand.New(rand.NewSource(14))
	field := make([]float64, 4*256)
	for f := 0; f < 4; f++ {
		for i := 0; i < 256; i++ {
			field[f*256+i] = math.Sin(float64(i)/9+float64(f)) + 0.01*rng.NormFloat64()
		}
	}
	res, err := pipe.Infer(field, []int{4, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 256 || res.Output.Rows != 2 {
		t.Fatalf("pipeline output %dx%d for %d samples", res.Output.Rows, res.Output.Cols, res.Samples)
	}
	// End-to-end QoI guarantee.
	ref := net.Forward(tensor.NewMatrixFrom(4, 256, field), false)
	var worst float64
	for i := range ref.Data {
		if d := math.Abs(res.Output.Data[i] - ref.Data[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-2 {
		t.Fatalf("end-to-end QoI error %v exceeds planned tolerance", worst)
	}
}

func TestFacadeCompressRoundTrip(t *testing.T) {
	data := make([]float64, 500)
	for i := range data {
		data[i] = math.Sin(float64(i) / 11)
	}
	for _, codec := range errprop.Codecs() {
		blob, err := errprop.Compress(codec, data, []int{500}, errprop.AbsLinf, 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		recon, err := errprop.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if math.Abs(recon[i]-data[i]) > 1e-5 {
				t.Fatalf("%s: error %v", codec, math.Abs(recon[i]-data[i]))
			}
		}
	}
}

func TestFacadeDecompressDims(t *testing.T) {
	data := make([]float64, 12*25)
	for i := range data {
		data[i] = math.Cos(float64(i) / 7)
	}
	dims := []int{12, 25}
	blob, err := errprop.Compress("sz", data, dims, errprop.AbsLinf, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	recon, gotDims, err := errprop.DecompressDims(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotDims) != len(dims) || gotDims[0] != dims[0] || gotDims[1] != dims[1] {
		t.Fatalf("dims %v, want %v", gotDims, dims)
	}
	for i := range data {
		if math.Abs(recon[i]-data[i]) > 1e-4 {
			t.Fatalf("error %v at %d", math.Abs(recon[i]-data[i]), i)
		}
	}
	if _, _, err := errprop.DecompressDims([]byte("not a container")); err == nil {
		t.Fatal("DecompressDims accepted garbage")
	}
}

func TestFacadeSpecValidate(t *testing.T) {
	good := errprop.MLPSpec("v", []int{4, 8, 2}, errprop.ActTanh, false)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := errprop.MLPSpec("v", []int{4, 8, 2}, errprop.ActTanh, false)
	bad.Layers[2].In = 9 // break the chain: fc1 out=8 feeds in=9
	err := bad.Validate()
	if err == nil {
		t.Fatal("chained-dim mismatch not caught")
	}
	if _, err2 := bad.Build(1); err2 == nil {
		t.Fatal("Build did not validate")
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	net := buildTrained(t)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := errprop.LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.1, -0.2, 0.3, 0.4}
	a := net.ForwardVec(x.Clone())
	b := loaded.ForwardVec(x.Clone())
	if a.Sub(b).NormInf() > 1e-9 {
		t.Fatal("loaded network diverges")
	}
}

func TestFacadeStepSizesAndThroughput(t *testing.T) {
	w := []float64{0.5, -0.25, 0.125, 1}
	if errprop.StepSize(errprop.BF16, w) <= errprop.StepSize(errprop.FP16, w) {
		t.Fatal("BF16 step should exceed FP16")
	}
	net := buildTrained(t)
	fp32 := errprop.ExecThroughput(net, errprop.RTX3080Ti, errprop.FP32, 256)
	fp16 := errprop.ExecThroughput(net, errprop.RTX3080Ti, errprop.FP16, 256)
	if fp16 < fp32 {
		t.Fatal("FP16 throughput below FP32")
	}
}
