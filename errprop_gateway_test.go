package errprop_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	errprop "github.com/scidata/errprop"
)

// TestFacadeGateway drives the fleet-serving surface end to end through
// the public facade: write a registry manifest, boot a backend Server
// and a Gateway over it, and verify a predict through the gateway is
// bit-identical to one asked of the backend directly.
func TestFacadeGateway(t *testing.T) {
	net9, err := errprop.MLPSpec("h2", []int{9, 50, 50, 9}, errprop.ActTanh, false).Build(5)
	if err != nil {
		t.Fatal(err)
	}
	srv := errprop.NewServer(errprop.ServeConfig{Workers: 1})
	if err := srv.Register("h2", net9, errprop.FP32); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	backendSrv := &http.Server{Handler: srv.Handler()}
	go backendSrv.Serve(ln) //lint:ignore droppederr Serve returns ErrServerClosed on Close; the test owns the lifecycle
	t.Cleanup(func() {
		//lint:ignore droppederr shutdown of a test server
		_ = backendSrv.Close()
	})

	// Registry manifest round trip through the facade helpers.
	path := filepath.Join(t.TempDir(), "fleet.reg")
	reg := &errprop.GatewayRegistry{Backends: []errprop.GatewayBackend{
		{Name: "b0", Addr: ln.Addr().String(), Weight: 1},
	}}
	if err := errprop.WriteGatewayRegistry(path, reg); err != nil {
		t.Fatal(err)
	}
	got, err := errprop.ReadGatewayRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reg) {
		t.Fatalf("registry round trip mismatch: %+v", got)
	}

	g := errprop.NewGateway(errprop.GatewayConfig{ProbeInterval: 20 * time.Millisecond, Seed: 7})
	t.Cleanup(g.Close)
	if err := g.LoadRegistryFile(path); err != nil {
		t.Fatal(err)
	}
	if err := g.WaitReady("h2", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gwSrv := &http.Server{Handler: g.Handler()}
	go gwSrv.Serve(gln) //lint:ignore droppederr Serve returns ErrServerClosed on Close; the test owns the lifecycle
	t.Cleanup(func() {
		//lint:ignore droppederr shutdown of a test server
		_ = gwSrv.Close()
	})

	in := map[string]any{"model": "h2", "inputs": [][]float64{{0, .1, .2, .3, .4, .5, .6, .7, .8}}}
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	fetch := func(base string) []byte {
		resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict via %s: status %d: %s", base, resp.StatusCode, raw)
		}
		return raw
	}
	direct := fetch("http://" + ln.Addr().String())
	viaGW := fetch("http://" + gln.Addr().String())
	if !bytes.Equal(direct, viaGW) {
		t.Fatalf("gateway response not bit-identical to backend:\n direct %s\n gw     %s", direct, viaGW)
	}

	m := g.Metrics()
	if !m.Ready || len(m.Backends) != 1 || m.Backends[0].Breaker != "closed" {
		t.Fatalf("gateway metrics after clean serving: %+v", m)
	}
}
