package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/tensor"
)

func buildTrainedUNet(t testing.TB, seed int64) *nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	spec := nn.UNetSpec("u", 1, 8, 8, 1, 4, nn.ActTanh, true)
	net, err := spec.Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	// Brief training so the weights are non-degenerate.
	n := 32
	x := tensor.NewMatrix(64, n)
	y := tensor.NewMatrix(64, n)
	for c := 0; c < n; c++ {
		for i := 0; i < 64; i++ {
			v := rng.Float64()*2 - 1
			x.Set(i, c, v)
			y.Set(i, c, 0.3*v)
		}
	}
	opt := nn.NewAdam(5e-3)
	for epoch := 0; epoch < 100; epoch++ {
		net.ZeroGrad()
		out := net.Forward(x, true)
		_, grad := nn.MSELoss(out, y)
		net.AddRegGrad(1e-4)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	net.RefreshSigmas()
	return net
}

func TestUNetGraphTranslates(t *testing.T) {
	net := buildTrainedUNet(t, 80)
	an, err := AnalyzeNetwork(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	if an.Lipschitz() <= 0 || an.QuantizationBound() <= 0 {
		t.Fatalf("degenerate U-Net analysis: lip=%v qb=%v", an.Lipschitz(), an.QuantizationBound())
	}
	if got := len(an.Root.LinearNodes()); got != 4 { // enc, mid1, mid2, dec
		t.Fatalf("U-Net linear nodes = %d, want 4", got)
	}
}

func TestUNetCompressionBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	net := buildTrainedUNet(t, 81)
	an, err := AnalyzeNetwork(net, numfmt.FP32)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		x := randUnitInput(rng, 64, 1)
		xp := x.Clone()
		var dx2 float64
		for i := range xp.Data {
			d := (rng.Float64()*2 - 1) * 1e-4
			xp.Data[i] += d
			dx2 += d * d
		}
		dx2 = math.Sqrt(dx2)
		y := net.Forward(x, false)
		yp := net.Forward(xp, false)
		achieved := tensor.Vector(yp.Data).Sub(tensor.Vector(y.Data)).Norm2()
		if achieved > an.CompressionBound(dx2)*(1+1e-9) {
			t.Fatalf("trial %d: U-Net Lipschitz bound violated: %v > %v",
				trial, achieved, an.CompressionBound(dx2))
		}
	}
}

func TestUNetQuantizationBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	net := buildTrainedUNet(t, 82)
	for _, f := range []numfmt.Format{numfmt.FP16, numfmt.INT8} {
		an, err := AnalyzeNetwork(net, f)
		if err != nil {
			t.Fatal(err)
		}
		qnet, err := quant.Quantize(net, f)
		if err != nil {
			t.Fatal(err)
		}
		bound := an.QuantizationBound()
		for trial := 0; trial < 20; trial++ {
			x := randUnitInput(rng, 64, 1)
			y := net.Forward(x, false)
			yq := qnet.Forward(x, false)
			if d := tensor.Vector(yq.Data).Sub(tensor.Vector(y.Data)).Norm2(); d > bound {
				t.Fatalf("%v trial %d: achieved %v > U-Net bound %v", f, trial, d, bound)
			}
		}
	}
}

func TestConcatQuadratureTighterThanSum(t *testing.T) {
	// The quadrature rule sqrt(1 + L^2) must beat the residual-style sum
	// 1 + L whenever the branch is nontrivial.
	branch := Coeffs{Lip: 3, LipQ: 3, Sig: 3, Add: 0.1}
	q := quadratureSum(branch, identityCoeffs())
	p := parallelSum(branch, identityCoeffs())
	if q.Lip >= p.Lip {
		t.Fatalf("quadrature Lip %v not tighter than sum %v", q.Lip, p.Lip)
	}
	if math.Abs(q.Lip-math.Sqrt(10)) > 1e-12 {
		t.Fatalf("quadrature Lip = %v, want sqrt(10)", q.Lip)
	}
}
