package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/tensor"
)

func TestAnalyzeMixedMatchesUniform(t *testing.T) {
	// A constant assignment must reproduce the uniform-format analysis.
	net := buildMLP(t, []int{9, 30, 9}, nn.ActTanh, true, 70)
	for _, f := range numfmt.Formats {
		a := Assignment{f, f}
		mixed, err := AnalyzeMixed(net, a)
		if err != nil {
			t.Fatal(err)
		}
		uni, err := AnalyzeNetwork(net, f)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mixed.QuantizationBound()-uni.QuantizationBound()) > 1e-12*uni.QuantizationBound() {
			t.Fatalf("%v: mixed %v != uniform %v", f, mixed.QuantizationBound(), uni.QuantizationBound())
		}
	}
}

func TestAnalyzeMixedLengthValidation(t *testing.T) {
	net := buildMLP(t, []int{4, 8, 2}, nn.ActReLU, false, 71)
	if _, err := AnalyzeMixed(net, Assignment{numfmt.FP16}); err == nil {
		t.Fatal("short assignment should error")
	}
}

func TestPlanMixedMeetsBudget(t *testing.T) {
	net := buildMLP(t, []int{13, 32, 32, 32, 3}, nn.ActReLU, true, 72)
	for _, budget := range []float64{1e-1, 1e-2, 1e-4, 1e-9} {
		plan, err := PlanMixed(net, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if plan.QuantBound > budget {
			t.Fatalf("budget %v: plan bound %v exceeds it", budget, plan.QuantBound)
		}
		if len(plan.Assignment) != 4 || len(plan.LayerNames) != 4 {
			t.Fatalf("assignment shape wrong: %v", plan.Assignment)
		}
	}
}

func TestPlanMixedBeatsUniform(t *testing.T) {
	// The whole point of the larger optimization space: at intermediate
	// budgets the mixed plan should cost no more than the best uniform
	// plan, and typically less (it can keep big layers coarse).
	net := buildMLP(t, []int{13, 64, 64, 16, 3}, nn.ActReLU, true, 73)
	an, err := AnalyzeNetwork(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	// A budget between the FP16 and BF16 uniform bounds forces uniform
	// plans up to FP16 while the mixed plan can stay coarser in places.
	budget := an.QuantizationBound() * 2
	plan, err := PlanMixed(net, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost > plan.UniformCost {
		t.Fatalf("mixed cost %v exceeds best uniform cost %v", plan.Cost, plan.UniformCost)
	}
	// Must differ from all-FP32 (budget is generous enough).
	allFP32 := true
	for _, f := range plan.Assignment {
		if f != numfmt.FP32 {
			allFP32 = false
		}
	}
	if allFP32 {
		t.Fatal("mixed plan degenerated to all-FP32 despite generous budget")
	}
}

func TestPlanMixedEndToEnd(t *testing.T) {
	// Quantize with the planned assignment and verify the bound
	// empirically.
	rng := rand.New(rand.NewSource(74))
	net := buildMLP(t, []int{9, 40, 40, 9}, nn.ActTanh, true, 74)
	an0, err := AnalyzeNetwork(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	budget := an0.QuantizationBound() * 3
	plan, err := PlanMixed(net, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	qnet, err := quant.QuantizeMixed(net, plan.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		x := randUnitInput(rng, 9, 1)
		y := net.Forward(x, false)
		yq := qnet.Forward(x, false)
		if d := tensor.Vector(yq.Data).Sub(tensor.Vector(y.Data)).Norm2(); d > plan.QuantBound {
			t.Fatalf("trial %d: achieved %v > mixed bound %v", trial, d, plan.QuantBound)
		}
	}
}

func TestPlanMixedImpossibleBudgetFallsToFP32(t *testing.T) {
	net := buildMLP(t, []int{4, 8, 2}, nn.ActTanh, true, 75)
	plan, err := PlanMixed(net, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range plan.Assignment {
		if f != numfmt.FP32 {
			t.Fatalf("layer %d got %v; zero budget must force FP32", i, f)
		}
	}
	if plan.QuantBound != 0 {
		t.Fatalf("all-FP32 bound %v, want 0", plan.QuantBound)
	}
}

func TestPlanMixedValidation(t *testing.T) {
	net := buildMLP(t, []int{4, 8, 2}, nn.ActTanh, false, 76)
	if _, err := PlanMixed(net, -1, nil); err == nil {
		t.Fatal("negative budget should error")
	}
	if _, err := PlanMixed(net, math.NaN(), nil); err == nil {
		t.Fatal("NaN budget should error")
	}
}

func TestQuantizeMixedValidation(t *testing.T) {
	net := buildMLP(t, []int{4, 8, 2}, nn.ActTanh, false, 77)
	if _, err := quant.QuantizeMixed(net, []numfmt.Format{numfmt.FP16}); err == nil {
		t.Fatal("short assignment should error")
	}
}
