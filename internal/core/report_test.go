package core

import (
	"math"
	"strings"
	"testing"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

func TestReportSumsToBoundForMLP(t *testing.T) {
	net := buildMLP(t, []int{9, 30, 20, 5}, nn.ActTanh, true, 60)
	an, err := AnalyzeNetwork(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	rep := an.Report()
	if len(rep) != 3 {
		t.Fatalf("want 3 layer reports, got %d", len(rep))
	}
	var sum float64
	for _, r := range rep {
		if r.Step <= 0 || r.Sigma <= 0 || r.SigmaInflated < r.Sigma {
			t.Fatalf("degenerate report row: %+v", r)
		}
		sum += r.QuantTerm
	}
	if qb := an.QuantizationBound(); math.Abs(sum-qb) > 1e-9*(1+qb) {
		t.Fatalf("report terms sum to %v, quantization bound is %v", sum, qb)
	}
}

func TestReportNoQuantization(t *testing.T) {
	net := buildMLP(t, []int{4, 8, 2}, nn.ActReLU, false, 61)
	an, err := AnalyzeNetwork(net, numfmt.FP32)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range an.Report() {
		if r.Step != 0 || r.QuantTerm != 0 || r.SigmaInflated != r.Sigma {
			t.Fatalf("FP32 report should show zero quantization: %+v", r)
		}
	}
}

func TestFormatReportRenders(t *testing.T) {
	net := buildMLP(t, []int{4, 8, 2}, nn.ActReLU, true, 62)
	an, err := AnalyzeNetwork(net, numfmt.INT8)
	if err != nil {
		t.Fatal(err)
	}
	s := an.FormatReport()
	if !strings.Contains(s, "lipschitz=") || !strings.Contains(s, "quant bound=") {
		t.Fatalf("report missing summary line:\n%s", s)
	}
	if strings.Count(s, "\n") < 4 { // header + 2 layers + summary
		t.Fatalf("report too short:\n%s", s)
	}
}
