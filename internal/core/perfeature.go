package core

import (
	"fmt"
	"math"
)

// PerFeatureBounds computes a QoI error bound for each output feature
// individually (the right-hand panels of Figs. 3-6). It requires the
// graph to end with a linear node carrying row norms (a dense layer),
// optionally followed by elementwise Lipschitz maps: feature k's bound
// replaces the final spectral norm with the k-th row norm, and the final
// layer's quantization noise concentrates on a single output
// (AddGain = 1 instead of sqrt(n_L)).
//
// deltaX2 is the L2 norm of the input perturbation. The per-feature bound
// is a scalar, so it serves both the L2 and L-infinity readings.
func (a *Analysis) PerFeatureBounds(deltaX2 float64) ([]float64, error) {
	if a.Root.Kind != KindSequence || len(a.Root.Children) == 0 {
		return nil, fmt.Errorf("core: per-feature bounds need a sequential top level")
	}
	children := a.Root.Children
	// Locate the last linear node; everything after must be elementwise.
	last := -1
	for i, c := range children {
		if c.Kind == KindLinear {
			last = i
		}
	}
	if last < 0 {
		return nil, fmt.Errorf("core: no linear node in graph")
	}
	finalOp := children[last].Op
	if len(finalOp.RowNorms) == 0 {
		return nil, fmt.Errorf("core: final linear layer %q carries no row norms (per-feature bounds need a dense head)", finalOp.LayerName)
	}
	suffixC := 1.0
	for _, c := range children[last+1:] {
		if c.Kind != KindLipschitz {
			return nil, fmt.Errorf("core: non-elementwise node %q after final linear layer", c.Label)
		}
		suffixC *= c.C
	}
	// Prefix coefficients over everything before the final linear node.
	prefix := identityCoeffs()
	for _, c := range children[:last] {
		prefix = compose(prefix, c.coeffs(a.Steps))
	}
	var qLast float64
	if a.Steps != nil {
		qLast = a.Steps(finalOp)
	}
	sqrtN0 := math.Sqrt(float64(a.n0))
	out := make([]float64, len(finalOp.RowNorms))
	for k, rn := range finalOp.RowNorms {
		comp := rn * prefix.Lip * deltaX2
		quant := rn*prefix.Add*sqrtN0 + qLast/(2*math.Sqrt(3))*prefix.Sig*sqrtN0
		out[k] = suffixC * (comp + quant)
	}
	return out, nil
}

// PerFeatureBoundsLinf is PerFeatureBounds for a pointwise input bound.
func (a *Analysis) PerFeatureBoundsLinf(einf float64) ([]float64, error) {
	return a.PerFeatureBounds(math.Sqrt(float64(a.n0)) * einf)
}
