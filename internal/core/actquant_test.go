package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/tensor"
)

func TestActivationQuantBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	net := buildMLP(t, []int{9, 40, 40, 9}, nn.ActTanh, true, 41)
	for _, f := range []numfmt.Format{numfmt.FP16, numfmt.BF16} {
		an, err := AnalyzeNetwork(net, numfmt.FP32) // weights untouched
		if err != nil {
			t.Fatal(err)
		}
		qnet, err := quant.QuantizeActivations(net, numfmt.FP32, f)
		if err != nil {
			t.Fatal(err)
		}
		bound := an.ActivationQuantBound(f)
		if bound <= 0 {
			t.Fatalf("%v: degenerate bound", f)
		}
		for trial := 0; trial < 30; trial++ {
			x := randUnitInput(rng, 9, 1)
			y := net.Forward(x, false)
			yq := qnet.Forward(x, false)
			// The weight path also rounds through FP32 storage in the
			// copy (weights stored as effective values at full float64
			// precision since weightFmt=FP32 rounds via float32) — grant
			// the FP32 weight-rounding slack on top.
			slack := 0.0
			for _, op := range net.LinearOps() {
				slack += numfmt.MaxError(numfmt.FP32, op.Weights) * 100
			}
			if d := tensor.Vector(yq.Data).Sub(tensor.Vector(y.Data)).Norm2(); d > bound+slack {
				t.Fatalf("%v trial %d: achieved %v > act-quant bound %v", f, trial, d, bound)
			}
		}
	}
}

func TestActivationQuantBoundOrdering(t *testing.T) {
	net := buildMLP(t, []int{6, 20, 20, 4}, nn.ActReLU, true, 42)
	an, err := AnalyzeNetwork(net, numfmt.FP32)
	if err != nil {
		t.Fatal(err)
	}
	fp16 := an.ActivationQuantBound(numfmt.FP16)
	bf16 := an.ActivationQuantBound(numfmt.BF16)
	if bf16 <= fp16 {
		t.Fatalf("BF16 activation bound %v should exceed FP16's %v", bf16, fp16)
	}
	// 3 fewer mantissa bits => exactly 8x.
	if math.Abs(bf16-8*fp16) > 1e-12*bf16 {
		t.Fatalf("BF16/FP16 activation bound ratio %v, want 8", bf16/fp16)
	}
}

func TestCombinedWeightAndActivationQuant(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	net := buildMLP(t, []int{9, 40, 40, 9}, nn.ActTanh, true, 43)
	an, err := AnalyzeNetwork(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	qnet, err := quant.QuantizeActivations(net, numfmt.FP16, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	einf := 1e-4
	bound := an.CombinedBoundWithActQuant(math.Sqrt(9)*einf, numfmt.FP16)
	for trial := 0; trial < 30; trial++ {
		x := randUnitInput(rng, 9, 1)
		xp := x.Clone()
		for i := range xp.Data {
			xp.Data[i] += (rng.Float64()*2 - 1) * einf
		}
		y := net.Forward(x, false)
		yq := qnet.Forward(xp, false)
		if d := tensor.Vector(yq.Data).Sub(tensor.Vector(y.Data)).Norm2(); d > bound {
			t.Fatalf("trial %d: achieved %v > combined bound %v", trial, d, bound)
		}
	}
}

func TestActQuantZeroWithoutActivations(t *testing.T) {
	// A purely linear network has no activation-quantization error.
	spec := &nn.Spec{Name: "lin", InputDim: 4, Layers: []nn.LayerSpec{
		{Type: "dense", Name: "l1", In: 4, Out: 4},
	}}
	net, err := spec.Build(44)
	if err != nil {
		t.Fatal(err)
	}
	net.RefreshSigmas()
	an, err := AnalyzeNetwork(net, numfmt.FP32)
	if err != nil {
		t.Fatal(err)
	}
	if b := an.ActivationQuantBound(numfmt.FP16); b != 0 {
		t.Fatalf("linear net activation bound %v, want 0", b)
	}
}

func TestRoundLayerNetAnalyzable(t *testing.T) {
	// Networks containing RoundLayers (quantized copies) still translate
	// into the error-flow graph.
	net := buildMLP(t, []int{4, 8, 2}, nn.ActTanh, false, 45)
	qnet, err := quant.QuantizeActivations(net, numfmt.FP32, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeNetwork(qnet, numfmt.FP32); err != nil {
		t.Fatalf("quantized-activation net not analyzable: %v", err)
	}
}
