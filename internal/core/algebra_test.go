package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// randCoeffs draws plausible transfer coefficients.
func randCoeffs(rng *rand.Rand) Coeffs {
	return Coeffs{
		Lip:  rng.Float64()*3 + 0.01,
		LipQ: rng.Float64()*3 + 0.01,
		Sig:  rng.Float64()*3 + 0.01,
		Add:  rng.Float64() * 0.1,
	}
}

// TestComposeAssociative: sequential composition must be associative —
// (c∘b)∘a == c∘(b∘a) — or graph flattening would change bounds.
func TestComposeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		a, b, c := randCoeffs(rng), randCoeffs(rng), randCoeffs(rng)
		left := compose(compose(a, b), c)
		right := compose(a, compose(b, c))
		for _, pair := range [][2]float64{
			{left.Lip, right.Lip}, {left.LipQ, right.LipQ},
			{left.Sig, right.Sig}, {left.Add, right.Add},
		} {
			if math.Abs(pair[0]-pair[1]) > 1e-12*(1+math.Abs(pair[1])) {
				t.Fatalf("compose not associative: %+v vs %+v", left, right)
			}
		}
	}
}

// TestComposeIdentity: the identity coefficients are a two-sided unit.
func TestComposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	id := identityCoeffs()
	for trial := 0; trial < 200; trial++ {
		a := randCoeffs(rng)
		l, r := compose(id, a), compose(a, id)
		if l != a || r != a {
			t.Fatalf("identity law violated: %+v / %+v vs %+v", l, r, a)
		}
	}
}

// TestParallelSumCommutative: residual combination is commutative.
func TestParallelSumCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a, b := randCoeffs(rng), randCoeffs(rng)
		if parallelSum(a, b) != parallelSum(b, a) {
			t.Fatal("parallelSum not commutative")
		}
		q1, q2 := quadratureSum(a, b), quadratureSum(b, a)
		if math.Abs(q1.Lip-q2.Lip) > 1e-12 || math.Abs(q1.Add-q2.Add) > 1e-12 {
			t.Fatal("quadratureSum not commutative")
		}
	}
}

// TestQuadratureNeverExceedsSum: quadrature is always the tighter rule.
func TestQuadratureNeverExceedsSumProperty(t *testing.T) {
	f := func(l1, l2, s1, s2 float64) bool {
		clamp := func(x float64) float64 {
			x = math.Abs(x)
			if math.IsNaN(x) || x > 1e150 {
				return 1 // overflow territory is outside the coefficients' domain
			}
			return x
		}
		a := Coeffs{Lip: clamp(l1), LipQ: clamp(l1), Sig: clamp(s1), Add: 0}
		b := Coeffs{Lip: clamp(l2), LipQ: clamp(l2), Sig: clamp(s2), Add: 0}
		q, p := quadratureSum(a, b), parallelSum(a, b)
		return q.Lip <= p.Lip*(1+1e-12) && q.Sig <= p.Sig*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundMonotoneInStep: coarser steps never shrink the bound.
func TestBoundMonotoneInStepProperty(t *testing.T) {
	net := buildMLP(t, []int{6, 18, 18, 4}, nn.ActReLU, true, 90)
	root, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 100; trial++ {
		q1 := rng.Float64() * 1e-2
		q2 := q1 * (1 + rng.Float64())
		b1 := Analyze(root, func(op *nn.LinearOp) float64 { return q1 }).QuantizationBound()
		b2 := Analyze(root, func(op *nn.LinearOp) float64 { return q2 }).QuantizationBound()
		if b2 < b1 {
			t.Fatalf("bound not monotone in step: q %v->%v gave %v->%v", q1, q2, b1, b2)
		}
	}
}

// TestBoundMonotoneInInputError: larger input perturbations never shrink
// the combined bound.
func TestBoundMonotoneInInputError(t *testing.T) {
	net := buildMLP(t, []int{5, 12, 3}, nn.ActTanh, true, 92)
	an, err := AnalyzeNetwork(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, e := range []float64{0, 1e-8, 1e-6, 1e-4, 1e-2} {
		b := an.BoundLinf(e)
		if b < prev {
			t.Fatalf("bound not monotone in input error at %v", e)
		}
		prev = b
	}
}

// TestDeeperNetworksLooserBounds: appending a layer with sigma >= 1 never
// tightens the quantization bound.
func TestDeeperNetworksLooserBounds(t *testing.T) {
	shallow := buildMLP(t, []int{6, 16, 4}, nn.ActReLU, true, 93)
	deep := buildMLP(t, []int{6, 16, 16, 4}, nn.ActReLU, true, 93)
	// Normalize: both PSN nets trained-ish; just check the analysis runs
	// and the deeper one's Lipschitz reflects one more factor.
	as, err := AnalyzeNetwork(shallow, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := AnalyzeNetwork(deep, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	if as.QuantizationBound() <= 0 || ad.QuantizationBound() <= 0 {
		t.Fatal("degenerate bounds")
	}
}
