package core

import (
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// StepsForGroupedINT8 returns the step-size function for grouped INT8
// quantization (the paper's future-work block-/column-/row-wise schemes).
// The grouped RMS step drops straight into the same error-flow formulas
// as Table I's per-tensor step: the additive quantization term's
// variance sums per-entry step variances, which is exactly what the RMS
// aggregation computes.
func StepsForGroupedINT8(g numfmt.Granularity, blockSize int) StepFunc {
	return func(op *nn.LinearOp) float64 {
		q, err := numfmt.GroupedStepSize(op.Weights, op.WRows, op.WCols, g, blockSize)
		if err != nil {
			// Degenerate shapes fall back to the per-tensor Table I step.
			return numfmt.StepSize(numfmt.INT8, op.Weights)
		}
		return q
	}
}

// AnalyzeNetworkGroupedINT8 analyzes a network under grouped INT8
// quantization.
func AnalyzeNetworkGroupedINT8(net *nn.Network, g numfmt.Granularity, blockSize int) (*Analysis, error) {
	root, err := FromNetwork(net)
	if err != nil {
		return nil, err
	}
	return Analyze(root, StepsForGroupedINT8(g, blockSize)), nil
}
