package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/tensor"
)

func buildAttentionNet(t testing.TB, seed int64) *nn.Network {
	t.Helper()
	spec := &nn.Spec{Name: "att", InputDim: 4 * 6, Layers: []nn.LayerSpec{
		{Type: "dense", Name: "in", In: 24, Out: 24, PSN: true},
		{Type: "act", Act: nn.ActTanh},
		{Type: "attention", Name: "att", In: 4, Out: 6},
		{Type: "dense", Name: "out", In: 24, Out: 3, PSN: true},
	}}
	net, err := spec.Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	net.RefreshSigmas()
	return net
}

func TestAttentionGraphTranslates(t *testing.T) {
	net := buildAttentionNet(t, 95)
	an, err := AnalyzeNetwork(net, numfmt.FP32)
	if err != nil {
		t.Fatal(err)
	}
	if an.Lipschitz() <= 0 {
		t.Fatal("degenerate attention analysis")
	}
	// The attention node contributes as a Lipschitz factor; only the two
	// dense layers are linear nodes.
	if got := len(an.Root.LinearNodes()); got != 2 {
		t.Fatalf("linear nodes = %d, want 2 (attention is Lipschitz-only)", got)
	}
}

// The local attention bound assumes the attention layer's *inputs* have
// token norms within R = sqrt(D). A tanh layer upstream guarantees that
// (outputs in [-1,1]); the compression bound must then hold empirically.
func TestAttentionCompressionBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	net := buildAttentionNet(t, 96)
	an, err := AnalyzeNetwork(net, numfmt.FP32)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		x := randUnitInput(rng, 24, 1)
		xp := x.Clone()
		var dx2 float64
		for i := range xp.Data {
			d := (rng.Float64()*2 - 1) * 1e-4
			xp.Data[i] += d
			dx2 += d * d
		}
		dx2 = math.Sqrt(dx2)
		y := net.Forward(x, false)
		yp := net.Forward(xp, false)
		achieved := tensor.Vector(yp.Data).Sub(tensor.Vector(y.Data)).Norm2()
		if achieved > an.CompressionBound(dx2)*(1+1e-9) {
			t.Fatalf("trial %d: attention Lipschitz bound violated: %v > %v",
				trial, achieved, an.CompressionBound(dx2))
		}
	}
}

func TestAttentionQuantizationKeepsAttentionExact(t *testing.T) {
	// Quantizing the network must round only the dense layers; attention
	// weights stay full precision, and the combined bound still holds.
	rng := rand.New(rand.NewSource(97))
	net := buildAttentionNet(t, 97)
	qnet, err := quant.Quantize(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the attention layers and compare weights bit-exactly.
	var orig, quantized *nn.SelfAttention
	for _, l := range net.Layers {
		if a, ok := l.(*nn.SelfAttention); ok {
			orig = a
		}
	}
	for _, l := range qnet.Layers {
		if a, ok := l.(*nn.SelfAttention); ok {
			quantized = a
		}
	}
	if orig == nil || quantized == nil {
		t.Fatal("attention layer missing")
	}
	for i := range orig.Wq.Data {
		if orig.Wq.Data[i] != quantized.Wq.Data[i] {
			t.Fatal("attention weights were quantized; they must stay exact")
		}
	}
	// Combined bound (dense quantization only) holds end to end.
	an, err := AnalyzeNetwork(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	bound := an.QuantizationBound()
	for trial := 0; trial < 20; trial++ {
		x := randUnitInput(rng, 24, 1)
		y := net.Forward(x, false)
		yq := qnet.Forward(x, false)
		if d := tensor.Vector(yq.Data).Sub(tensor.Vector(y.Data)).Norm2(); d > bound {
			t.Fatalf("trial %d: achieved %v > bound %v", trial, d, bound)
		}
	}
}
