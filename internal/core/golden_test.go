package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// Golden-file regression tests: the planner's decisions and the
// per-layer amplification breakdown are the numbers downstream systems
// act on (format choice, compressor tolerances), so unintended drift —
// from a refactor of the transfer algebra, a step-size tweak, a changed
// power-iteration cadence — must be loud. The goldens pin full-precision
// values for fixed seeded networks; regenerate deliberately with
//
//	go test ./internal/core -run TestGolden -update
//
// and review the diff like any other code change.
var update = flag.Bool("update", false, "rewrite golden files with current outputs")

// goldenAnalysis is the snapshot schema. JSON float64 marshaling uses
// the shortest round-trip representation, so byte equality of the
// encoded files is exact value equality.
type goldenAnalysis struct {
	Lipschitz          float64            `json:"lipschitz"`
	LipschitzQuantized float64            `json:"lipschitzQuantized"`
	SignalGain         float64            `json:"signalGain"`
	QuantizationBound  float64            `json:"quantizationBound"`
	BoundAt1em3        float64            `json:"boundAtDx1e3"`
	Layers             []LayerReport      `json:"layers"`
	Plans              map[string]*Plan   `json:"plans"`
	ActQuantBound      map[string]float64 `json:"actQuantBound"`
}

func goldenNetworks(t *testing.T) map[string]*nn.Network {
	t.Helper()
	nets := map[string]*nn.Network{}
	build := func(name string, spec *nn.Spec, seed int64) {
		net, err := spec.Build(seed)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		net.RefreshSigmas()
		nets[name] = net
	}
	// The paper's H2 MLP shape with PSN.
	build("mlp-tanh-psn", nn.MLPSpec("h2", []int{9, 50, 50, 9}, nn.ActTanh, true), 1234)
	// A sigmoid MLP: exercises the affine signal-offset channel.
	build("mlp-sigmoid", nn.MLPSpec("sig", []int{12, 16, 16, 4}, nn.ActSigmoid, false), 7)
	// A small conv/residual classifier (projection shortcut included).
	build("resnet-small", nn.ResNetSpec("rs", 3, 8, 8, 5, []int{1, 1}, []int{4, 8}, nn.ActReLU, true), 4321)
	return nets
}

func TestGoldenPlansAndAmplification(t *testing.T) {
	for name, net := range goldenNetworks(t) {
		name, net := name, net
		t.Run(name, func(t *testing.T) {
			an, err := AnalyzeNetwork(net, numfmt.FP16)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			snap := goldenAnalysis{
				Lipschitz:          an.Lipschitz(),
				LipschitzQuantized: an.LipschitzQuantized(),
				SignalGain:         an.SignalGain(),
				QuantizationBound:  an.QuantizationBound(),
				BoundAt1em3:        an.Bound(1e-3),
				Layers:             an.Report(),
				Plans:              map[string]*Plan{},
				ActQuantBound: map[string]float64{
					"fp16": an.ActivationQuantBound(numfmt.FP16),
					"bf16": an.ActivationQuantBound(numfmt.BF16),
				},
			}
			for label, req := range map[string]PlanRequest{
				"linf-half":         {Tol: 1e-2, Norm: NormLinf, QuantFraction: 0.5},
				"l2-tight":          {Tol: 1e-3, Norm: NormL2, QuantFraction: 0.3},
				"linf-conservative": {Tol: 5e-2, Norm: NormLinf, QuantFraction: 0.9, Conservative: true},
			} {
				plan, err := PlanNetwork(net, req)
				if err != nil {
					t.Fatalf("plan %s: %v", label, err)
				}
				snap.Plans[label] = plan
			}

			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap); err != nil {
				t.Fatalf("encode: %v", err)
			}
			path := filepath.Join("testdata", "golden", name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatalf("mkdir: %v", err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Fatalf("golden mismatch for %s.\nIf the change is intended, regenerate with -update and review the diff.\n--- want\n%s--- got\n%s",
					name, want, buf.Bytes())
			}
		})
	}
}

// TestGoldenInternalConsistency cross-checks the snapshots against
// invariants that must hold whatever the exact values are, so a bad
// -update run cannot silently bless inconsistent goldens.
func TestGoldenInternalConsistency(t *testing.T) {
	for name, net := range goldenNetworks(t) {
		name, net := name, net
		t.Run(name, func(t *testing.T) {
			an, err := AnalyzeNetwork(net, numfmt.FP16)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			if an.LipschitzQuantized() < an.Lipschitz() {
				t.Fatalf("sigma~ product %v below sigma product %v", an.LipschitzQuantized(), an.Lipschitz())
			}
			var sum float64
			for _, lr := range an.Report() {
				if lr.Sigma <= 0 || lr.SigmaInflated < lr.Sigma || lr.QuantTerm < 0 {
					t.Fatalf("degenerate layer report %+v", lr)
				}
				sum += lr.QuantTerm
			}
			// The Add channel is linear in per-layer injections, so the
			// single-layer passes must sum to the full bound for every
			// graph shape (the exactness Report's decomposition promises).
			qb := an.QuantizationBound()
			if d := math.Abs(sum - qb); d > 1e-9*(1+qb) {
				t.Fatalf("per-layer terms sum to %v, total bound %v (diff %v)", sum, qb, d)
			}
			plan, err := PlanNetwork(net, PlanRequest{Tol: 1e-2, Norm: NormLinf, QuantFraction: 0.5})
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			if plan.TotalBound > 1e-2*(1+1e-9) {
				t.Fatalf("planner exceeded its own tolerance: %v > 1e-2", plan.TotalBound)
			}
		})
	}
}
