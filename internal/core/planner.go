package core

import (
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// Norm selects which norm a tolerance is stated in.
type Norm int

const (
	// NormL2 is the whole-vector Euclidean norm.
	NormL2 Norm = iota
	// NormLinf is the pointwise maximum norm.
	NormLinf
)

// String names the norm.
func (n Norm) String() string {
	if n == NormLinf {
		return "linf"
	}
	return "l2"
}

// speedRank orders formats by expected execution speedup (higher is
// faster), the preference order the planner uses: INT8 and FP16 halve or
// quarter the data path, BF16/TF32 give smaller gains, FP32 is baseline.
func speedRank(f numfmt.Format) int {
	switch f {
	case numfmt.INT8:
		return 4
	case numfmt.FP16:
		return 3
	case numfmt.BF16:
		return 2
	case numfmt.TF32:
		return 1
	}
	return 0
}

// PlanRequest asks the planner (Fig. 1) for a reduction configuration.
type PlanRequest struct {
	// Tol is the total QoI tolerance, absolute, in Norm.
	Tol float64
	// Norm states whether Tol (and the resulting input tolerance) are
	// pointwise (Linf) or whole-vector (L2).
	Norm Norm
	// QuantFraction in (0, 1] is the portion of Tol offered to
	// quantization (the paper sweeps 10%-90%); the chosen format's
	// *predicted bound* is then subtracted and all unused tolerance is
	// reallocated to compression.
	QuantFraction float64
	// Formats are the candidate quantization formats; nil defaults to
	// {INT8, FP16, BF16, TF32}. FP32 (no quantization) is always an
	// implicit fallback.
	Formats []numfmt.Format
	// Conservative propagates the compression budget through the
	// quantized (sigma~) Lipschitz product instead of the paper's
	// original-sigma product.
	Conservative bool
}

// Plan is the planner's output: the chosen format and the input tolerance
// handed to the compressor.
type Plan struct {
	Format numfmt.Format
	// QuantBound is the predicted QoI error from quantization alone.
	QuantBound float64
	// CompressBudget is the QoI tolerance left for compression.
	CompressBudget float64
	// InputTolL2 bounds ||dx||_2 for the compressor.
	InputTolL2 float64
	// InputTolLinf is the pointwise input tolerance (Linf modes).
	InputTolLinf float64
	// TotalBound is the predicted combined QoI bound (<= Tol).
	TotalBound float64
}

// PlanNetwork runs the planner against a network.
func PlanNetwork(net *nn.Network, req PlanRequest) (*Plan, error) {
	root, err := FromNetwork(net)
	if err != nil {
		return nil, err
	}
	return PlanGraph(root, req)
}

// PlanGraph runs the planner against a pre-built error-flow graph,
// deriving each candidate format's step sizes from the graph's own
// weights (Table I).
func PlanGraph(root *Node, req PlanRequest) (*Plan, error) {
	return PlanGraphSteps(root, func(f numfmt.Format) (StepFunc, error) {
		return StepsForFormat(f), nil
	}, req)
}

// PlanGraphSteps is PlanGraph with the format -> step-size derivation
// supplied by the caller. An ahead-of-time artifact uses this to plan
// from its build-time step tables without carrying the weights; passing
// StepsForFormat-backed closures reproduces PlanGraph exactly.
func PlanGraphSteps(root *Node, stepsFor func(numfmt.Format) (StepFunc, error), req PlanRequest) (*Plan, error) {
	if req.Tol <= 0 || math.IsNaN(req.Tol) || math.IsInf(req.Tol, 0) {
		return nil, fmt.Errorf("core: invalid tolerance %v", req.Tol)
	}
	if req.QuantFraction < 0 || req.QuantFraction > 1 {
		return nil, fmt.Errorf("core: quantization fraction %v not in [0,1]", req.QuantFraction)
	}
	formats := req.Formats
	if formats == nil {
		formats = []numfmt.Format{numfmt.INT8, numfmt.FP16, numfmt.BF16, numfmt.TF32}
	}

	quantAlloc := req.Tol * req.QuantFraction

	// Pick the fastest candidate whose predicted quantization bound fits
	// the allocation. Quantization bounds are derived in L2 and bound the
	// Linf reading too.
	best := numfmt.FP32
	bestBound := 0.0
	bestRank := -1
	for _, f := range formats {
		steps, err := stepsFor(f)
		if err != nil {
			return nil, fmt.Errorf("core: planning format %s: %w", f, err)
		}
		an := Analyze(root, steps)
		qb := an.QuantizationBound()
		if qb <= quantAlloc && speedRank(f) > bestRank {
			best, bestBound, bestRank = f, qb, speedRank(f)
		}
	}

	bestSteps, err := stepsFor(best)
	if err != nil {
		return nil, fmt.Errorf("core: planning format %s: %w", best, err)
	}
	an := Analyze(root, bestSteps)
	remaining := req.Tol - bestBound
	lip := an.Lipschitz()
	if req.Conservative {
		lip = an.LipschitzQuantized()
	}
	n0 := an.InputDim()
	plan := &Plan{Format: best, QuantBound: bestBound, CompressBudget: remaining}
	if lip > 0 {
		plan.InputTolL2 = remaining / lip
		plan.InputTolLinf = remaining / (lip * math.Sqrt(float64(n0)))
	} else {
		plan.InputTolL2 = math.Inf(1)
		plan.InputTolLinf = math.Inf(1)
	}
	switch req.Norm {
	case NormL2:
		plan.TotalBound = an.Bound(plan.InputTolL2)
	case NormLinf:
		plan.TotalBound = an.BoundLinf(plan.InputTolLinf)
	}
	return plan, nil
}
