package core

import "math"

// MLPClosedForm evaluates the paper's Inequality (3) literally for an
// L-layer block: spectral norms sigma[0..L-1], layer widths
// n[0..L] (n[0] = input dim), per-layer quantization steps q[0..L-1], a
// shortcut spectral norm sigmaS (0 for an MLP), and an input L2
// perturbation deltaX2. It exists to cross-validate the graph algebra —
// TestClosedFormMatchesGraph proves the two agree to machine precision —
// and to serve readers comparing the code against the paper.
func MLPClosedForm(sigma []float64, n []int, q []float64, sigmaS, deltaX2 float64) float64 {
	L := len(sigma)
	if len(n) != L+1 || len(q) != L {
		panic("core: MLPClosedForm shape mismatch")
	}
	// First term: (sigma_s + prod sigma_l) * ||dx||_2.
	prod := 1.0
	for _, s := range sigma {
		prod *= s
	}
	bound := (sigmaS + prod) * deltaX2

	// Second term: per-layer quantization contributions.
	sqrt3 := math.Sqrt(3)
	for l := 0; l < L; l++ {
		term := q[l] * math.Sqrt(float64(n[0]*n[l+1])) / (2 * sqrt3)
		for i := 0; i < l; i++ {
			minDim := math.Min(float64(n[i]), float64(n[i+1]))
			term *= sigma[i] + q[i]*math.Sqrt(minDim)/sqrt3
		}
		for j := l + 1; j < L; j++ {
			term *= sigma[j]
		}
		bound += term
	}
	return bound
}
