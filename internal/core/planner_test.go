package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/tensor"
)

func TestPlanMeetsTolerance(t *testing.T) {
	net := buildMLP(t, []int{9, 50, 50, 9}, nn.ActTanh, true, 20)
	for _, norm := range []Norm{NormL2, NormLinf} {
		for _, tol := range []float64{1e-1, 1e-3, 1e-6, 1e-10} {
			for _, frac := range []float64{0.1, 0.5, 0.9} {
				plan, err := PlanNetwork(net, PlanRequest{Tol: tol, Norm: norm, QuantFraction: frac})
				if err != nil {
					t.Fatal(err)
				}
				if plan.TotalBound > tol*(1+1e-9) {
					t.Fatalf("norm %v tol %v frac %v: predicted bound %v exceeds tolerance",
						norm, tol, frac, plan.TotalBound)
				}
				if plan.QuantBound > tol*frac*(1+1e-9) {
					t.Fatalf("quant bound %v exceeds allocation %v", plan.QuantBound, tol*frac)
				}
			}
		}
	}
}

func TestPlanPrefersFasterFormatsAtLooseTolerance(t *testing.T) {
	net := buildMLP(t, []int{9, 50, 9}, nn.ActTanh, true, 21)
	loose, err := PlanNetwork(net, PlanRequest{Tol: 10, Norm: NormL2, QuantFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Format != numfmt.INT8 {
		t.Fatalf("loose tolerance should pick INT8, got %v", loose.Format)
	}
	tight, err := PlanNetwork(net, PlanRequest{Tol: 1e-12, Norm: NormL2, QuantFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Format != numfmt.FP32 {
		t.Fatalf("impossible tolerance should fall back to FP32, got %v", tight.Format)
	}
	if tight.QuantBound != 0 {
		t.Fatalf("FP32 fallback should have zero quant bound, got %v", tight.QuantBound)
	}
}

func TestPlanFormatMonotoneInTolerance(t *testing.T) {
	// As the tolerance loosens, the chosen format's speed rank must not
	// decrease (the staircase in Fig. 10 left).
	net := buildMLP(t, []int{13, 32, 32, 3}, nn.ActReLU, true, 22)
	prevRank := -1
	for _, tol := range []float64{1e-12, 1e-8, 1e-5, 1e-3, 1e-1, 10} {
		plan, err := PlanNetwork(net, PlanRequest{Tol: tol, Norm: NormLinf, QuantFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		r := speedRank(plan.Format)
		if r < prevRank {
			t.Fatalf("format rank regressed from %d to %d at tol %v", prevRank, r, tol)
		}
		prevRank = r
	}
}

func TestPlanEndToEndGuarantee(t *testing.T) {
	// Execute the plan: quantize + perturb input within the planned
	// tolerance; the achieved QoI error must stay within the user budget.
	rng := rand.New(rand.NewSource(23))
	net := buildMLP(t, []int{9, 50, 50, 9}, nn.ActTanh, true, 23)
	tol := 1e-3
	plan, err := PlanNetwork(net, PlanRequest{Tol: tol, Norm: NormLinf, QuantFraction: 0.5, Conservative: true})
	if err != nil {
		t.Fatal(err)
	}
	qnet := net
	if plan.Format != numfmt.FP32 {
		qnet, err = quant.Quantize(net, plan.Format)
		if err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 40; trial++ {
		x := randUnitInput(rng, 9, 1)
		xp := x.Clone()
		for i := range xp.Data {
			xp.Data[i] += (rng.Float64()*2 - 1) * plan.InputTolLinf
		}
		y := net.Forward(x, false)
		yq := qnet.Forward(xp, false)
		achieved := tensor.Vector(yq.Data).Sub(tensor.Vector(y.Data)).NormInf()
		if achieved > tol {
			t.Fatalf("trial %d: achieved Linf %v > user tolerance %v", trial, achieved, tol)
		}
	}
}

func TestPlanValidation(t *testing.T) {
	net := buildMLP(t, []int{4, 8, 2}, nn.ActTanh, false, 24)
	bad := []PlanRequest{
		{Tol: 0, QuantFraction: 0.5},
		{Tol: -1, QuantFraction: 0.5},
		{Tol: math.NaN(), QuantFraction: 0.5},
		{Tol: 1e-3, QuantFraction: -0.1},
		{Tol: 1e-3, QuantFraction: 1.5},
	}
	for i, req := range bad {
		if _, err := PlanNetwork(net, req); err == nil {
			t.Errorf("request %d should fail", i)
		}
	}
}

func TestPlanUnusedQuantToleranceGoesToCompression(t *testing.T) {
	// The compress budget must be Tol - actual predicted bound, not
	// Tol * (1 - fraction): unused quantization allocation is recycled.
	net := buildMLP(t, []int{9, 30, 9}, nn.ActTanh, true, 25)
	tol := 1e-2
	plan, err := PlanNetwork(net, PlanRequest{Tol: tol, Norm: NormL2, QuantFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Format == numfmt.FP32 {
		t.Skip("no format fits; nothing to check")
	}
	if got, want := plan.CompressBudget, tol-plan.QuantBound; math.Abs(got-want) > 1e-15 {
		t.Fatalf("compress budget %v, want %v", got, want)
	}
	if plan.CompressBudget <= tol*0.1 {
		t.Fatalf("expected recycled tolerance above the 10%% floor, got %v", plan.CompressBudget)
	}
}

func TestPlanGraphDirect(t *testing.T) {
	net := buildMLP(t, []int{6, 12, 3}, nn.ActReLU, true, 26)
	root, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanGraph(root, PlanRequest{Tol: 1e-3, Norm: NormL2, QuantFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if plan.InputTolL2 <= 0 {
		t.Fatalf("input tolerance %v", plan.InputTolL2)
	}
	// Linf input tolerance is the L2 one shrunk by sqrt(n0).
	want := plan.InputTolL2 / math.Sqrt(6)
	if math.Abs(plan.InputTolLinf-want) > 1e-15 {
		t.Fatalf("linf tol %v, want %v", plan.InputTolLinf, want)
	}
}
