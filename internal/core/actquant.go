package core

import (
	"math"

	"github.com/scidata/errprop/internal/numfmt"
)

// ActivationQuantBound bounds the extra QoI L2 error introduced by
// rounding every activation output to the float format f, on top of any
// weight quantization already configured in the analysis. Following the
// paper's Section III-B sketch, each activation's rounding error is a
// bounded perturbation of the hidden state — pointwise at most
// eps * |h_i| with eps = 2^-(mantissa+1) — propagated through the
// remaining layers via Eq. (5) ("excluding all layers preceding the
// affected activation"):
//
//	bound = sum_over_activations  L_suffix * eps * S_prefix * sqrt(n_0)
//
// computed compositionally through the same transfer algebra as the
// weight-quantization channel.
func (a *Analysis) ActivationQuantBound(f numfmt.Format) float64 {
	// Even FP32 "rounding" of FP64 activations perturbs slightly; the
	// formula accounts for every float format uniformly.
	eps := 1 / float64(uint64(1)<<uint(f.MantissaBits()+1))
	_, act := a.Root.actCoeffs(a.Steps, eps)
	//lint:ignore nonfinite sqrt of the nonnegative input width n0 is always finite
	return act.x*math.Sqrt(float64(a.n0)) + act.c
}

// actChannel accumulates activation-rounding error as an affine function
// of the input norm bound: total <= x * ||x||_2 + c.
type actChannel struct{ x, c float64 }

// actCoeffs extends the transfer algebra with an activation-quantization
// channel: each activation node rounds its OUTPUT, a perturbation of at
// most eps * ||phi(h)|| <= eps * (C * s_in + ||phi(0)||), and injected
// error rides the original Lipschitz factors downstream (mirroring the
// weight-quant Add/AddC channel). The ||phi(0)|| offset keeps the bound
// sound for sigmoid, whose output norm does not vanish with its input.
func (n *Node) actCoeffs(steps StepFunc, eps float64) (Coeffs, actChannel) {
	switch n.Kind {
	case KindLinear:
		return n.coeffs(steps), actChannel{}
	case KindLipschitz:
		c := n.coeffs(steps)
		if n.IsAct {
			return c, actChannel{x: eps * n.C, c: eps * n.Off}
		}
		return c, actChannel{}
	case KindSequence:
		acc := identityCoeffs()
		var act actChannel
		for _, child := range n.Children {
			cc, ca := child.actCoeffs(steps, eps)
			// ca.x scales the signal entering the child, itself affine in
			// the sequence input: acc.Sig * ||x|| + acc.SigOff.
			act.x = cc.Lip*act.x + ca.x*acc.Sig
			act.c = cc.Lip*act.c + ca.x*acc.SigOff + ca.c
			acc = compose(acc, cc)
		}
		return acc, act
	case KindResidual:
		bc, ba := n.Branch.actCoeffs(steps, eps)
		sc, sa := identityCoeffs(), actChannel{}
		if n.Shortcut != nil {
			sc, sa = n.Shortcut.actCoeffs(steps, eps)
		}
		return parallelSum(bc, sc), actChannel{x: ba.x + sa.x, c: ba.c + sa.c}
	case KindConcat:
		bc, ba := n.Branch.actCoeffs(steps, eps)
		return quadratureSum(bc, identityCoeffs()), ba
	}
	panic("core: unknown node kind")
}

// CombinedBoundWithActQuant is Inequality (3) plus the activation-
// quantization channel: input perturbation deltaX2 (L2), weight
// quantization per the analysis's step function, and activation rounding
// to actFmt.
func (a *Analysis) CombinedBoundWithActQuant(deltaX2 float64, actFmt numfmt.Format) float64 {
	return a.Bound(deltaX2) + a.ActivationQuantBound(actFmt)
}
