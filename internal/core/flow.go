package core

import (
	"math"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// Coeffs are a node's error-transfer coefficients. For an incoming state
// (input perturbation dx, accumulated quantization error a, signal bound
// s), the node maps
//
//	dx_out <= Lip  * dx        (original weights — the paper's first term)
//	a_out  <= Lip  * a + Add * s + AddC
//	s_out  <= Sig  * s + SigOff
//
// and LipQ tracks the Lipschitz product under quantized weights
// (sigma~ everywhere), used by the planner when it wants the conservative
// compression path through the quantized network.
//
// The signal channel is AFFINE, not purely multiplicative: an activation
// with phi(0) != 0 (sigmoid) emits at least ||phi(0)||_2 no matter how
// small its input, so its node carries SigOff = ||phi(0)||_2 on top of
// the Lipschitz gain. AddC is the quantization error sourced by those
// offsets — the part of the Add channel that does not scale with the
// input's norm. Dropping the offsets under-bounds the hidden state
// feeding each layer's weight-quantization noise; the bound-soundness
// property suite (soundness_test.go) catches the resulting Inequality (3)
// violations on sigmoid networks.
//
// Composition of sequential nodes N2 after N1:
//
//	Lip = Lip2*Lip1, LipQ = LipQ2*LipQ1
//	Sig = Sig2*Sig1,       SigOff = Sig2*SigOff1 + SigOff2
//	Add = Lip2*Add1 + Add2*Sig1
//	AddC = Lip2*AddC1 + Add2*SigOff1 + AddC2
//
// which, expanded over an L-layer MLP with phi(0) = 0 activations,
// reproduces Inequality (3) term by term (quantization noise injected at
// layer l rides the *original* spectral norms downstream and the inflated
// sigma~ signal bound upstream, exactly as in the paper; SigOff and AddC
// stay zero).
type Coeffs struct {
	Lip    float64
	LipQ   float64
	Sig    float64
	SigOff float64
	Add    float64
	AddC   float64
}

// Identity returns the do-nothing coefficients.
func identityCoeffs() Coeffs { return Coeffs{Lip: 1, LipQ: 1, Sig: 1, Add: 0} }

// compose returns the coefficients of "second after first".
func compose(first, second Coeffs) Coeffs {
	return Coeffs{
		Lip:    second.Lip * first.Lip,
		LipQ:   second.LipQ * first.LipQ,
		Sig:    second.Sig * first.Sig,
		SigOff: second.Sig*first.SigOff + second.SigOff,
		Add:    second.Lip*first.Add + second.Add*first.Sig,
		AddC:   second.Lip*first.AddC + second.Add*first.SigOff + second.AddC,
	}
}

// parallelSum combines a residual block's branch and shortcut (output
// vectors add, so every coefficient adds).
func parallelSum(a, b Coeffs) Coeffs {
	return Coeffs{
		Lip: a.Lip + b.Lip, LipQ: a.LipQ + b.LipQ,
		Sig: a.Sig + b.Sig, SigOff: a.SigOff + b.SigOff,
		Add: a.Add + b.Add, AddC: a.AddC + b.AddC,
	}
}

// quadratureSum combines a concatenation's two halves: the output is the
// stacked vector, so squared norms add — ||dy||^2 = ||da||^2 + ||db||^2 —
// and every gain coefficient combines as sqrt(a^2 + b^2); the affine
// signal offsets combine the same way by Minkowski's inequality.
// (Additive channels use the looser triangle form to stay sound when the
// two halves carry correlated incoming error.)
func quadratureSum(a, b Coeffs) Coeffs {
	q := func(x, y float64) float64 { return math.Sqrt(x*x + y*y) }
	return Coeffs{
		Lip:    q(a.Lip, b.Lip),
		LipQ:   q(a.LipQ, b.LipQ),
		Sig:    q(a.Sig, b.Sig),
		SigOff: q(a.SigOff, b.SigOff),
		Add:    a.Add + b.Add,
		AddC:   a.AddC + b.AddC,
	}
}

// StepFunc maps a linear op to its quantization step size q_l. A nil
// StepFunc means "no quantization" (all steps zero).
type StepFunc func(op *nn.LinearOp) float64

// StepsForFormat returns the Table I step-size function for a format.
// FP32 and an invalid format yield the no-quantization function.
func StepsForFormat(f numfmt.Format) StepFunc {
	if f == numfmt.FP32 {
		return nil
	}
	return func(op *nn.LinearOp) float64 { return numfmt.StepSize(f, op.Weights) }
}

// coeffs computes a node's transfer coefficients under the step function.
func (n *Node) coeffs(steps StepFunc) Coeffs {
	return n.coeffsWhere(steps, nil)
}

// coeffsWhere is coeffs with the Add channel restricted to the linear
// nodes satisfying inject (nil means all). Gain channels (Lip, LipQ,
// Sig) keep every node's inflation regardless, so a restricted pass
// reports exactly the selected layers' noise inside the otherwise
// unchanged full-graph bound. The Add/AddC channels are linear in the
// injections, so summing single-layer passes reproduces the full bound —
// the decomposition Report() exposes.
func (n *Node) coeffsWhere(steps StepFunc, inject func(*nn.LinearOp) bool) Coeffs {
	switch n.Kind {
	case KindLinear:
		var q float64
		if steps != nil {
			q = steps(n.Op)
		}
		sigmaT := n.Op.Sigma + q*n.Op.InflGain/math.Sqrt(3)
		add := q * n.Op.AddGain / (2 * math.Sqrt(3))
		if inject != nil && !inject(n.Op) {
			add = 0
		}
		return Coeffs{
			Lip:  n.Op.Sigma,
			LipQ: sigmaT,
			Sig:  sigmaT,
			Add:  add,
		}
	case KindLipschitz:
		return Coeffs{Lip: n.C, LipQ: n.C, Sig: n.C, SigOff: n.Off, Add: 0}
	case KindSequence:
		c := identityCoeffs()
		for _, child := range n.Children {
			c = compose(c, child.coeffsWhere(steps, inject))
		}
		return c
	case KindResidual:
		b := n.Branch.coeffsWhere(steps, inject)
		s := identityCoeffs()
		if n.Shortcut != nil {
			s = n.Shortcut.coeffsWhere(steps, inject)
		}
		return parallelSum(b, s)
	case KindConcat:
		return quadratureSum(n.Branch.coeffsWhere(steps, inject), identityCoeffs())
	}
	panic("core: unknown node kind")
}

// Analysis carries a graph plus a quantization-step function and exposes
// the paper's bounds.
type Analysis struct {
	Root   *Node
	Steps  StepFunc
	coeffs Coeffs
	n0     int
}

// Analyze prepares an analysis of the graph under the given quantization
// step function (nil for compression-only analysis).
func Analyze(root *Node, steps StepFunc) *Analysis {
	return &Analysis{Root: root, Steps: steps, coeffs: root.coeffs(steps), n0: root.InputDim()}
}

// AnalyzeNetwork translates a network and analyzes it under a weight
// format (numfmt.FP32 means no quantization).
func AnalyzeNetwork(net *nn.Network, f numfmt.Format) (*Analysis, error) {
	root, err := FromNetwork(net)
	if err != nil {
		return nil, err
	}
	return Analyze(root, StepsForFormat(f)), nil
}

// InputDim returns the flattened input dimension n_0.
func (a *Analysis) InputDim() int { return a.n0 }

// Lipschitz returns the network's Lipschitz bound under original weights,
// sigma_s + prod sigma_l in the paper's notation.
func (a *Analysis) Lipschitz() float64 { return a.coeffs.Lip }

// LipschitzQuantized returns the Lipschitz bound with every spectral norm
// inflated by its quantization step (sigma~ products).
func (a *Analysis) LipschitzQuantized() float64 { return a.coeffs.LipQ }

// SignalGain returns the bound on ||h_out||_2 / ||x||_2 under quantized
// weights.
func (a *Analysis) SignalGain() float64 { return a.coeffs.Sig }

// CompressionBound is the paper's Eq. (5): the L2 QoI perturbation caused
// by an input perturbation of L2 norm deltaX2, with weights unchanged.
//
//errprop:bound-source predicted QoI L2 perturbation under Eq. (5)
func (a *Analysis) CompressionBound(deltaX2 float64) float64 {
	return a.coeffs.Lip * deltaX2
}

// QuantizationBound is the L2 QoI perturbation caused by weight
// quantization alone, assuming inputs normalized to [-1, 1] (so the
// initial signal bound is sqrt(n_0), as in the paper's derivation). The
// AddC term carries the contribution sourced by activation signal
// offsets (sigmoid networks); it is zero for phi(0) = 0 activations.
//
//errprop:bound-source predicted QoI L2 perturbation from weight quantization
func (a *Analysis) QuantizationBound() float64 {
	//lint:ignore nonfinite sqrt of the nonnegative input width n0 is always finite
	return a.coeffs.Add*math.Sqrt(float64(a.n0)) + a.coeffs.AddC
}

// Bound is the combined Inequality (3): QoI L2 error under both an input
// perturbation of L2 norm deltaX2 and weight quantization.
//
//errprop:bound-source the combined Inequality (3) error bound
func (a *Analysis) Bound(deltaX2 float64) float64 {
	return a.CompressionBound(deltaX2) + a.QuantizationBound()
}

// BoundLinf bounds the QoI L-infinity error given a *pointwise* input
// bound einf, via the norm inequalities of Section III-A:
// ||dx||_2 <= sqrt(n_0) einf and ||dy||_inf <= ||dy||_2.
//
//errprop:bound-source
func (a *Analysis) BoundLinf(einf float64) float64 {
	//lint:ignore nonfinite sqrt of the nonnegative input width n0 is always finite
	return a.Bound(math.Sqrt(float64(a.n0)) * einf)
}

// CompressionBoundLinf is Eq. (5) stated for a pointwise input bound.
//
//errprop:bound-source
func (a *Analysis) CompressionBoundLinf(einf float64) float64 {
	//lint:ignore nonfinite sqrt of the nonnegative input width n0 is always finite
	return a.CompressionBound(math.Sqrt(float64(a.n0)) * einf)
}

// InputToleranceFor inverts the compression bound: the largest L2 input
// perturbation whose predicted QoI contribution stays within qoiBudget.
// Conservative mode (quantized=true) propagates through sigma~ products.
//
//errprop:bound-source the inverted bound is itself a tolerance the caller must enforce
func (a *Analysis) InputToleranceFor(qoiBudget float64, quantized bool) float64 {
	l := a.coeffs.Lip
	if quantized {
		l = a.coeffs.LipQ
	}
	if l == 0 {
		return math.Inf(1)
	}
	tol := qoiBudget / l
	if math.IsNaN(tol) {
		return 0 // no admissible tolerance for a non-finite budget or factor
	}
	return tol
}
