package core

import (
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// Mixed-precision planning: the paper's closing future-work item —
// "enabling per-layer quantization with different formats, thereby
// introducing a significantly larger optimization space". This file
// provides the analysis of an arbitrary per-layer format assignment and
// a greedy optimizer that picks the fastest assignment whose predicted
// quantization bound fits a budget.

// Assignment maps each linear layer (forward order, as returned by
// Node.LinearNodes / Network.LinearOps) to a weight format.
type Assignment []numfmt.Format

// StepsForAssignment returns a step function that applies a per-layer
// format assignment, keyed by layer name.
func StepsForAssignment(root *Node, a Assignment) (StepFunc, error) {
	nodes := root.LinearNodes()
	if len(a) != len(nodes) {
		return nil, fmt.Errorf("core: assignment length %d != %d linear layers", len(a), len(nodes))
	}
	byName := make(map[string]numfmt.Format, len(nodes))
	for i, n := range nodes {
		byName[n.Op.LayerName] = a[i]
	}
	return func(op *nn.LinearOp) float64 {
		f, ok := byName[op.LayerName]
		if !ok || f == numfmt.FP32 {
			return 0
		}
		return numfmt.StepSize(f, op.Weights)
	}, nil
}

// AnalyzeMixed analyzes a network under a per-layer format assignment.
func AnalyzeMixed(net *nn.Network, a Assignment) (*Analysis, error) {
	root, err := FromNetwork(net)
	if err != nil {
		return nil, err
	}
	steps, err := StepsForAssignment(root, a)
	if err != nil {
		return nil, err
	}
	return Analyze(root, steps), nil
}

// LayerCostFunc prices executing one linear layer in a format (lower is
// better — e.g. simulated kernel time). The optimizer minimizes the sum
// subject to the bound budget.
type LayerCostFunc func(op *nn.LinearOp, f numfmt.Format) float64

// DefaultLayerCost is a device-free proxy: FLOPs divided by a relative
// per-format throughput (FP32 1x, TF32 2x, BF16/FP16 4x, INT8 8x) —
// matching the spec-sheet peak ratios the roofline devices use.
func DefaultLayerCost(op *nn.LinearOp, f numfmt.Format) float64 {
	flops := 2 * float64(op.InDim) * float64(op.OutDim)
	rel := map[numfmt.Format]float64{
		numfmt.FP32: 1, numfmt.TF32: 2, numfmt.BF16: 4, numfmt.FP16: 4, numfmt.INT8: 8,
	}[f]
	if rel == 0 {
		rel = 1
	}
	//lint:ignore nonfinite rel is clamped to a nonzero value just above
	return flops / rel
}

// MixedPlan is the optimizer's output.
type MixedPlan struct {
	Assignment Assignment
	// LayerNames lists the linear layers in assignment order.
	LayerNames []string
	// QuantBound is the predicted quantization bound of the assignment.
	QuantBound float64
	// Cost is the summed layer cost under the cost function.
	Cost float64
	// UniformCost is the cost of the best *uniform* assignment meeting
	// the same budget, for comparison.
	UniformCost float64
	// UniformFormat is that uniform assignment's format.
	UniformFormat numfmt.Format
}

// precisionLadder orders formats from fastest/coarsest to slowest/finest
// for the greedy refinement.
var precisionLadder = []numfmt.Format{numfmt.INT8, numfmt.BF16, numfmt.FP16, numfmt.TF32, numfmt.FP32}

func finer(f numfmt.Format) (numfmt.Format, bool) {
	for i, g := range precisionLadder {
		if g == f && i+1 < len(precisionLadder) {
			return precisionLadder[i+1], true
		}
	}
	return f, false
}

// PlanMixed greedily assigns per-layer formats: start everything at the
// fastest format and, while the predicted quantization bound exceeds the
// budget, refine the layer whose refinement buys the most bound per unit
// of added cost. Guaranteed to terminate at all-FP32 (bound zero) if
// nothing cheaper fits.
func PlanMixed(net *nn.Network, budget float64, cost LayerCostFunc) (*MixedPlan, error) {
	if budget < 0 || math.IsNaN(budget) {
		return nil, fmt.Errorf("core: invalid budget %v", budget)
	}
	if cost == nil {
		cost = DefaultLayerCost
	}
	root, err := FromNetwork(net)
	if err != nil {
		return nil, err
	}
	nodes := root.LinearNodes()
	n := len(nodes)
	if n == 0 {
		return nil, fmt.Errorf("core: network has no linear layers")
	}
	assign := make(Assignment, n)
	for i := range assign {
		assign[i] = precisionLadder[0]
	}
	boundOf := func(a Assignment) float64 {
		steps, err := StepsForAssignment(root, a)
		if err != nil {
			panic(err) // length is fixed; cannot happen
		}
		return Analyze(root, steps).QuantizationBound()
	}
	costOf := func(a Assignment) float64 {
		var s float64
		for i, f := range a {
			s += cost(nodes[i].Op, f)
		}
		return s
	}

	cur := boundOf(assign)
	for cur > budget {
		bestLayer, bestRatio := -1, -1.0
		var bestFmt numfmt.Format
		for l := 0; l < n; l++ {
			nf, ok := finer(assign[l])
			if !ok {
				continue
			}
			trial := append(Assignment(nil), assign...)
			trial[l] = nf
			nb := boundOf(trial)
			dBound := cur - nb
			dCost := cost(nodes[l].Op, nf) - cost(nodes[l].Op, assign[l])
			if dCost <= 0 {
				dCost = 1e-12
			}
			if dBound <= 0 {
				continue
			}
			if ratio := dBound / dCost; ratio > bestRatio {
				bestRatio, bestLayer, bestFmt = ratio, l, nf
			}
		}
		if bestLayer < 0 {
			// No single refinement reduces the bound: refine everything
			// one step (monotone progress toward all-FP32).
			progressed := false
			for l := 0; l < n; l++ {
				if nf, ok := finer(assign[l]); ok {
					assign[l] = nf
					progressed = true
				}
			}
			if !progressed {
				break // all FP32; bound is zero <= budget by definition
			}
		} else {
			assign[bestLayer] = bestFmt
		}
		cur = boundOf(assign)
	}

	// Best uniform assignment for comparison.
	uniFmt := numfmt.FP32
	uniCost := math.Inf(1)
	for _, f := range precisionLadder {
		uni := make(Assignment, n)
		for i := range uni {
			uni[i] = f
		}
		if boundOf(uni) <= budget {
			if c := costOf(uni); c < uniCost {
				uniCost, uniFmt = c, f
			}
		}
	}

	names := make([]string, n)
	for i, nd := range nodes {
		names[i] = nd.Op.LayerName
	}
	return &MixedPlan{
		Assignment: assign, LayerNames: names,
		QuantBound: cur, Cost: costOf(assign),
		UniformCost: uniCost, UniformFormat: uniFmt,
	}, nil
}
