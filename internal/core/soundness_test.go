package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/compress"
	_ "github.com/scidata/errprop/internal/compress/mgard"
	_ "github.com/scidata/errprop/internal/compress/sz"
	_ "github.com/scidata/errprop/internal/compress/zfp"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/tensor"
)

// TestBoundSoundnessProperty is the paper's core claim as an executable
// property: over ~100 seeded random networks crossed with quantization
// formats, codecs, and tolerances, the ACHIEVED QoI L2 error of running
// the quantized network on the decompressed input never exceeds
// Inequality (3)'s prediction from the MEASURED input perturbation:
//
//	||f~(x~) - f(x)||_2  <=  Lip * ||x~ - x||_2 + Add * sqrt(n_0)
//
// Inputs are drawn from [-1, 1], the normalization the quantization term
// assumes. The slack factor only absorbs float roundoff; a genuine bound
// violation fails by orders of magnitude more than 1e-9.
func TestBoundSoundnessProperty(t *testing.T) {
	const cases = 102 // 17 configs x 6 seeds
	const samples = 3
	const slack = 1 + 1e-9

	formats := []numfmt.Format{numfmt.FP32, numfmt.TF32, numfmt.FP16, numfmt.BF16, numfmt.INT8}
	codecs := []string{"sz", "zfp", "mgard"}
	tols := []float64{1e-1, 1e-2, 1e-3}
	acts := []string{nn.ActTanh, nn.ActReLU, nn.ActSigmoid, nn.ActLeaky}

	checked := 0
	for i := 0; i < cases; i++ {
		i := i
		t.Run(fmt.Sprintf("case%03d", i), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			f := formats[i%len(formats)]
			codec := codecs[(i/len(formats))%len(codecs)]
			tol := tols[(i/7)%len(tols)]
			psn := i%2 == 0

			var net *nn.Network
			var dims []int
			var err error
			if i%4 == 3 {
				// Small conv/residual network on a 2x6x6 field.
				dims = []int{2, 6, 6}
				net, err = nn.ResNetSpec(fmt.Sprintf("snd%d", i), 2, 6, 6, 3,
					[]int{1}, []int{3}, acts[i%len(acts)], psn).Build(int64(i))
			} else {
				// Random MLP: 1-3 hidden layers of width 4-20 on a flat field.
				n0 := 8 + rng.Intn(25)
				dims = []int{n0}
				mdims := []int{n0}
				for d := 0; d <= rng.Intn(3); d++ {
					mdims = append(mdims, 4+rng.Intn(17))
				}
				mdims = append(mdims, 2+rng.Intn(6))
				net, err = nn.MLPSpec(fmt.Sprintf("snd%d", i), mdims, acts[i%len(acts)], psn).Build(int64(i))
			}
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			net.RefreshSigmas()

			an, err := AnalyzeNetwork(net, f)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			if l := an.Lipschitz(); !(l > 0) || math.IsInf(l, 0) {
				t.Fatalf("degenerate Lipschitz bound %v", l)
			}
			qnet, err := quant.Quantize(net, f)
			if err != nil {
				t.Fatalf("quantize: %v", err)
			}

			n0 := an.InputDim()
			for s := 0; s < samples; s++ {
				x := smoothField(n0, rng)
				blob, err := compress.Encode(codec, x, dims, compress.AbsLinf, tol)
				if err != nil {
					t.Fatalf("compress(%s): %v", codec, err)
				}
				xr, _, err := compress.Decode(blob)
				if err != nil {
					t.Fatalf("decompress(%s): %v", codec, err)
				}
				var dx2 float64
				for j := range x {
					d := xr[j] - x[j]
					if math.Abs(d) > tol*slack {
						t.Fatalf("%s violated its own pointwise bound: |d|=%v > tol=%v", codec, math.Abs(d), tol)
					}
					dx2 += d * d
				}
				dx2 = math.Sqrt(dx2)

				ref := net.ForwardVec(tensor.Vector(x))
				got := qnet.ForwardVec(tensor.Vector(xr))
				var e2 float64
				for j := range ref {
					d := got[j] - ref[j]
					e2 += d * d
				}
				e2 = math.Sqrt(e2)

				bound := an.Bound(dx2)
				if math.IsNaN(bound) || math.IsInf(bound, 0) {
					t.Fatalf("non-finite bound %v", bound)
				}
				if e2 > bound*slack {
					t.Fatalf("bound violated: achieved %v > predicted %v (fmt=%v codec=%s tol=%v dx2=%v)",
						e2, bound, f, codec, tol, dx2)
				}
				// FP32 has no quantization error: Eq. (5) alone must hold.
				if f == numfmt.FP32 && e2 > an.CompressionBound(dx2)*slack {
					t.Fatalf("compression-only bound violated: %v > %v", e2, an.CompressionBound(dx2))
				}
			}
			checked++
		})
	}
	if !t.Failed() && checked != cases {
		t.Fatalf("ran %d of %d soundness cases", checked, cases)
	}
}

// smoothField draws a band-limited field with values strictly inside
// [-1, 1]: compressible enough for every codec, rough enough that the
// achieved perturbation is nonzero at realistic tolerances.
func smoothField(n int, rng *rand.Rand) []float64 {
	f1, f2 := 1+rng.Intn(4), 2+rng.Intn(7)
	p1, p2 := rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
	x := make([]float64, n)
	for i := range x {
		u := float64(i) / float64(n)
		x[i] = 0.5*math.Sin(2*math.Pi*float64(f1)*u+p1) +
			0.3*math.Cos(2*math.Pi*float64(f2)*u+p2) +
			0.1*(rng.Float64()*2-1)
	}
	return x
}

// TestBoundMonotonicity: the combined bound must be monotone in the
// input perturbation and must dominate each of its two constituents —
// structural sanity for the decomposition the planner relies on.
func TestBoundMonotonicity(t *testing.T) {
	net, err := nn.MLPSpec("mono", []int{6, 12, 4}, nn.ActTanh, true).Build(5)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	net.RefreshSigmas()
	an, err := AnalyzeNetwork(net, numfmt.INT8)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	prev := 0.0
	for _, dx := range []float64{0, 1e-6, 1e-4, 1e-2, 1} {
		b := an.Bound(dx)
		if b < prev {
			t.Fatalf("bound decreased: Bound(%v)=%v < %v", dx, b, prev)
		}
		if b < an.CompressionBound(dx) || b < an.QuantizationBound() {
			t.Fatalf("combined bound %v below a constituent at dx=%v", b, dx)
		}
		prev = b
	}
}
