package core

import (
	"fmt"
	"math"
	"strings"

	"github.com/scidata/errprop/internal/nn"
)

// LayerReport is one linear layer's contribution to the error budget.
type LayerReport struct {
	Name string
	// Sigma is the layer's spectral norm (alpha under PSN).
	Sigma float64
	// SigmaInflated is sigma~ = sigma + q*InflGain/sqrt(3).
	SigmaInflated float64
	// Step is the quantization step size q_l under the analysis's format.
	Step float64
	// QuantTerm is this layer's contribution to the quantization bound:
	// its injected noise propagated to the output through downstream
	// spectral norms (the l-th summand of Inequality (3)).
	QuantTerm float64
	// InDim/OutDim are the flattened operator dimensions.
	InDim, OutDim int
}

// Report breaks the quantization bound down per linear layer: each
// QuantTerm is computed by re-running the transfer algebra with only
// that layer's noise injected (every other layer still contributes its
// gain factors), so the terms sum to QuantizationBound() exactly for
// EVERY graph shape — sequential, residual, and concat alike — and honor
// activation Lipschitz constants and signal offsets. (An earlier version
// multiplied raw prefix/suffix spectral-norm products, which overcounted
// residual branches as if sequential and ignored activation factors; the
// golden-consistency tests pin the exact decomposition now.) The
// breakdown pinpoints which layers dominate the error budget — the
// information a practitioner needs to decide where per-layer format
// selection (the paper's future work) would pay off.
func (a *Analysis) Report() []LayerReport {
	nodes := a.Root.LinearNodes()
	out := make([]LayerReport, len(nodes))
	sqrtN0 := math.Sqrt(float64(a.n0))
	for i, n := range nodes {
		var q float64
		if a.Steps != nil {
			q = a.Steps(n.Op)
		}
		sigmaT := n.Op.Sigma + q*n.Op.InflGain/math.Sqrt(3)
		target := n.Op
		c := a.Root.coeffsWhere(a.Steps, func(op *nn.LinearOp) bool { return op == target })
		out[i] = LayerReport{
			Name:          n.Op.LayerName,
			Sigma:         n.Op.Sigma,
			SigmaInflated: sigmaT,
			Step:          q,
			QuantTerm:     c.Add*sqrtN0 + c.AddC,
			InDim:         n.Op.InDim,
			OutDim:        n.Op.OutDim,
		}
	}
	return out
}

// FormatReport renders the per-layer breakdown as a text table.
func (a *Analysis) FormatReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %10s %12s %12s %8s\n",
		"layer", "sigma", "sigma~", "step q", "quant term", "dims")
	for _, r := range a.Report() {
		fmt.Fprintf(&b, "%-24s %10.4g %10.4g %12.4g %12.4g %4dx%-4d\n",
			r.Name, r.Sigma, r.SigmaInflated, r.Step, r.QuantTerm, r.InDim, r.OutDim)
	}
	fmt.Fprintf(&b, "lipschitz=%.6g  quant bound=%.6g  (n0=%d)\n",
		a.Lipschitz(), a.QuantizationBound(), a.n0)
	return b.String()
}
