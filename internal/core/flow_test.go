package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/tensor"
)

func buildMLP(t testing.TB, dims []int, act string, psn bool, seed int64) *nn.Network {
	t.Helper()
	spec := nn.MLPSpec("m", dims, act, psn)
	net, err := spec.Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 100))
	for _, p := range net.Params() {
		for i := range p.Data {
			p.Data[i] += rng.NormFloat64() * 0.02
		}
	}
	net.RefreshSigmas()
	return net
}

func randUnitInput(rng *rand.Rand, dim, batch int) *tensor.Matrix {
	m := tensor.NewMatrix(dim, batch)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// TestClosedFormMatchesGraph: for plain MLPs the graph algebra must equal
// the paper's Inequality (3) closed form to machine precision.
func TestClosedFormMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		nLayers := 1 + rng.Intn(5)
		dims := make([]int, nLayers+1)
		for i := range dims {
			dims[i] = 2 + rng.Intn(40)
		}
		net := buildMLP(t, dims, nn.ActReLU, false, int64(trial))
		format := numfmt.Formats[rng.Intn(len(numfmt.Formats))]
		an, err := AnalyzeNetwork(net, format)
		if err != nil {
			t.Fatal(err)
		}
		deltaX := rng.Float64() * 0.1

		// Assemble the closed-form inputs from the layer ops.
		ops := net.LinearOps()
		sigma := make([]float64, len(ops))
		q := make([]float64, len(ops))
		n := make([]int, len(ops)+1)
		n[0] = ops[0].InDim
		for i, op := range ops {
			sigma[i] = op.Sigma
			q[i] = numfmt.StepSize(format, op.Weights)
			n[i+1] = op.OutDim
		}
		want := MLPClosedForm(sigma, n, q, 0, deltaX*math.Sqrt(float64(n[0])))
		got := an.BoundLinf(deltaX)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: graph bound %v != closed form %v", trial, got, want)
		}
	}
}

// TestClosedFormResidual: a single residual block matches Inequality (3)
// with sigma_s > 0.
func TestClosedFormResidual(t *testing.T) {
	spec := &nn.Spec{Name: "r", InputDim: 6, Layers: []nn.LayerSpec{
		{Type: "residual", Name: "blk", Branch: []nn.LayerSpec{
			{Type: "dense", Name: "b1", In: 6, Out: 8},
			{Type: "dense", Name: "b2", In: 8, Out: 6},
		}, Shortcut: []nn.LayerSpec{
			{Type: "dense", Name: "sc", In: 6, Out: 6},
		}},
	}}
	net, err := spec.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	net.RefreshSigmas()
	an, err := AnalyzeNetwork(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	ops := net.LinearOps() // b1, b2, sc
	q := func(i int) float64 { return numfmt.StepSize(numfmt.FP16, ops[i].Weights) }
	deltaX := 0.01

	branchBound := MLPClosedForm(
		[]float64{ops[0].Sigma, ops[1].Sigma}, []int{6, 8, 6},
		[]float64{q(0), q(1)}, 0, deltaX)
	// Shortcut contributes sigma_sc * dx plus its own quantization term.
	scBound := MLPClosedForm([]float64{ops[2].Sigma}, []int{6, 6}, []float64{q(2)}, 0, deltaX)
	want := branchBound + scBound
	got := an.Bound(deltaX)
	if math.Abs(got-want) > 1e-9*(1+want) {
		t.Fatalf("residual bound %v != composed closed form %v", got, want)
	}
}

// TestCompressionBoundHolds: empirical input perturbations never exceed
// Eq. (5) on PSN networks.
func TestCompressionBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := buildMLP(t, []int{9, 50, 50, 9}, nn.ActTanh, true, 5)
	an, err := AnalyzeNetwork(net, numfmt.FP32)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		x := randUnitInput(rng, 9, 1)
		eps := math.Exp2(-float64(rng.Intn(20))) * 0.1
		xp := x.Clone()
		var dx2 float64
		for i := range xp.Data {
			d := (rng.Float64()*2 - 1) * eps
			xp.Data[i] += d
			dx2 += d * d
		}
		dx2 = math.Sqrt(dx2)
		y := net.Forward(x, false)
		yp := net.Forward(xp, false)
		achieved := tensor.Vector(yp.Data).Sub(tensor.Vector(y.Data)).Norm2()
		bound := an.CompressionBound(dx2)
		if achieved > bound*(1+1e-9) {
			t.Fatalf("trial %d: achieved %v > bound %v", trial, achieved, bound)
		}
	}
}

// TestQuantizationBoundHolds: actual quantized networks stay within the
// predicted quantization bound for every format.
func TestQuantizationBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := buildMLP(t, []int{9, 50, 50, 9}, nn.ActTanh, true, 6)
	for _, f := range numfmt.Formats {
		an, err := AnalyzeNetwork(net, f)
		if err != nil {
			t.Fatal(err)
		}
		qnet, err := quant.Quantize(net, f)
		if err != nil {
			t.Fatal(err)
		}
		bound := an.QuantizationBound()
		for trial := 0; trial < 30; trial++ {
			x := randUnitInput(rng, 9, 1)
			y := net.Forward(x, false)
			yq := qnet.Forward(x, false)
			achieved := tensor.Vector(yq.Data).Sub(tensor.Vector(y.Data)).Norm2()
			if achieved > bound {
				t.Fatalf("%v trial %d: achieved %v > bound %v", f, trial, achieved, bound)
			}
		}
	}
}

// TestCombinedBoundHolds: perturbed input + quantized weights together
// stay within Inequality (3).
func TestCombinedBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := buildMLP(t, []int{13, 32, 32, 32, 3}, nn.ActReLU, true, 7)
	for _, f := range []numfmt.Format{numfmt.FP16, numfmt.INT8} {
		an, err := AnalyzeNetwork(net, f)
		if err != nil {
			t.Fatal(err)
		}
		qnet, err := quant.Quantize(net, f)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			x := randUnitInput(rng, 13, 1)
			einf := math.Exp2(-float64(3 + rng.Intn(15)))
			xp := x.Clone()
			for i := range xp.Data {
				xp.Data[i] += (rng.Float64()*2 - 1) * einf
			}
			y := net.Forward(x, false)
			yq := qnet.Forward(xp, false)
			achieved := tensor.Vector(yq.Data).Sub(tensor.Vector(y.Data)).Norm2()
			bound := an.BoundLinf(einf)
			if achieved > bound {
				t.Fatalf("%v trial %d: achieved %v > combined bound %v", f, trial, achieved, bound)
			}
		}
	}
}

// TestBoundTightnessWithPSN: the paper reports the bound stays within
// about one order of magnitude of achieved errors for PSN networks. Check
// the bound is not absurdly loose (< 1000x) on a trained-scale example.
func TestBoundTightnessWithPSN(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := buildMLP(t, []int{9, 50, 50, 9}, nn.ActTanh, true, 8)
	an, err := AnalyzeNetwork(net, numfmt.FP32)
	if err != nil {
		t.Fatal(err)
	}
	einf := 1e-5
	var worst float64
	for trial := 0; trial < 50; trial++ {
		x := randUnitInput(rng, 9, 1)
		xp := x.Clone()
		for i := range xp.Data {
			xp.Data[i] += (rng.Float64()*2 - 1) * einf
		}
		y := net.Forward(x, false)
		yp := net.Forward(xp, false)
		if a := tensor.Vector(yp.Data).Sub(tensor.Vector(y.Data)).Norm2(); a > worst {
			worst = a
		}
	}
	bound := an.BoundLinf(einf)
	if worst == 0 {
		t.Skip("degenerate zero perturbation")
	}
	if bound/worst > 1000 {
		t.Fatalf("bound %v is %vx the worst achieved %v — too loose", bound, bound/worst, worst)
	}
}

func TestPerFeatureBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := buildMLP(t, []int{9, 40, 9}, nn.ActTanh, true, 9)
	an, err := AnalyzeNetwork(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	einf := 1e-4
	pf, err := an.PerFeatureBoundsLinf(einf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf) != 9 {
		t.Fatalf("want 9 per-feature bounds, got %d", len(pf))
	}
	global := an.BoundLinf(einf)
	for k, b := range pf {
		if b <= 0 {
			t.Fatalf("feature %d bound %v", k, b)
		}
		if b > global*(1+1e-9) {
			t.Fatalf("feature %d bound %v exceeds global %v", k, b, global)
		}
	}
	// Empirical validation: per-feature errors within per-feature bounds.
	qnet, err := quant.Quantize(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		x := randUnitInput(rng, 9, 1)
		xp := x.Clone()
		for i := range xp.Data {
			xp.Data[i] += (rng.Float64()*2 - 1) * einf
		}
		y := net.Forward(x, false)
		yq := qnet.Forward(xp, false)
		for k := 0; k < 9; k++ {
			if d := math.Abs(yq.Data[k] - y.Data[k]); d > pf[k] {
				t.Fatalf("trial %d feature %d: error %v > bound %v", trial, k, d, pf[k])
			}
		}
	}
}

func TestPerFeatureRequiresDenseHead(t *testing.T) {
	spec := nn.ResNetSpec("rn", 1, 8, 8, 4, []int{1}, []int{4}, nn.ActReLU, false)
	net, err := spec.Build(10)
	if err != nil {
		t.Fatal(err)
	}
	feat := net.FeatureNetwork() // ends with GAP
	an, err := AnalyzeNetwork(feat, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.PerFeatureBoundsLinf(1e-4); err == nil {
		t.Fatal("per-feature bounds on a GAP-terminated net should error")
	}
}

func TestResNetGraphAnalysis(t *testing.T) {
	spec := nn.ResNetSpec("rn", 2, 8, 8, 4, []int{1, 1}, []int{4, 8}, nn.ActReLU, true)
	net, err := spec.Build(11)
	if err != nil {
		t.Fatal(err)
	}
	net.RefreshSigmas()
	an, err := AnalyzeNetwork(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	if an.Lipschitz() <= 0 || an.QuantizationBound() <= 0 {
		t.Fatalf("degenerate ResNet analysis: lip=%v qb=%v", an.Lipschitz(), an.QuantizationBound())
	}
	// Empirical Lipschitz check on the actual network.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		x := randUnitInput(rng, 2*8*8, 1)
		xp := x.Clone()
		var dx2 float64
		for i := range xp.Data {
			d := (rng.Float64()*2 - 1) * 1e-4
			xp.Data[i] += d
			dx2 += d * d
		}
		dx2 = math.Sqrt(dx2)
		y := net.Forward(x, false)
		yp := net.Forward(xp, false)
		achieved := tensor.Vector(yp.Data).Sub(tensor.Vector(y.Data)).Norm2()
		if achieved > an.CompressionBound(dx2)*(1+1e-9) {
			t.Fatalf("ResNet Lipschitz bound violated: %v > %v", achieved, an.CompressionBound(dx2))
		}
	}
}

func TestQuantBoundOrderingAcrossFormats(t *testing.T) {
	net := buildMLP(t, []int{9, 30, 9}, nn.ActTanh, true, 13)
	var prev float64
	for _, f := range []numfmt.Format{numfmt.TF32, numfmt.BF16, numfmt.INT8} {
		an, err := AnalyzeNetwork(net, f)
		if err != nil {
			t.Fatal(err)
		}
		qb := an.QuantizationBound()
		if qb <= prev {
			t.Fatalf("%v bound %v not above previous %v", f, qb, prev)
		}
		prev = qb
	}
	// TF32 == FP16 for normal-range weights.
	a1, _ := AnalyzeNetwork(net, numfmt.TF32)
	a2, _ := AnalyzeNetwork(net, numfmt.FP16)
	if math.Abs(a1.QuantizationBound()-a2.QuantizationBound()) > 1e-12*a1.QuantizationBound() {
		t.Fatalf("TF32 bound %v != FP16 bound %v", a1.QuantizationBound(), a2.QuantizationBound())
	}
}

func TestStepsForFormatFP32(t *testing.T) {
	if StepsForFormat(numfmt.FP32) != nil {
		t.Fatal("FP32 should yield nil step function")
	}
	net := buildMLP(t, []int{4, 8, 2}, nn.ActTanh, false, 14)
	an, err := AnalyzeNetwork(net, numfmt.FP32)
	if err != nil {
		t.Fatal(err)
	}
	if an.QuantizationBound() != 0 {
		t.Fatalf("FP32 quant bound %v, want 0", an.QuantizationBound())
	}
	if an.Lipschitz() != an.LipschitzQuantized() {
		t.Fatal("FP32 sigma~ should equal sigma")
	}
}

func TestInputToleranceInversion(t *testing.T) {
	net := buildMLP(t, []int{6, 12, 4}, nn.ActReLU, true, 15)
	an, err := AnalyzeNetwork(net, numfmt.FP32)
	if err != nil {
		t.Fatal(err)
	}
	budget := 0.01
	dx := an.InputToleranceFor(budget, false)
	if math.Abs(an.CompressionBound(dx)-budget) > 1e-12 {
		t.Fatalf("inversion mismatch: %v vs %v", an.CompressionBound(dx), budget)
	}
	dxC := an.InputToleranceFor(budget, true)
	if dxC > dx {
		t.Fatal("conservative tolerance should not exceed plain tolerance")
	}
}
