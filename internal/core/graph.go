// Package core implements the paper's contribution: the error-flow
// analysis that bounds a network's output (QoI) perturbation when its
// input is reduced by an error-bounded lossy compressor and its weights
// are quantized to a lower-precision format (Inequality (3)), together
// with the tolerance planner of Fig. 1 that splits a user QoI tolerance
// between the two reduction mechanisms.
//
// The analysis runs over a small graph mirroring the network structure.
// Each node contributes four transfer coefficients (see flow.go); for a
// plain MLP their composition reproduces the paper's closed-form
// Inequality (3) exactly — a property-tested equivalence (see
// closedform.go).
package core

import (
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/nn"
)

// NodeKind discriminates error-flow graph nodes.
type NodeKind int

const (
	// KindLinear is a weighted linear operator (dense or conv).
	KindLinear NodeKind = iota
	// KindLipschitz is a parameter-free map with a known Lipschitz
	// constant fixing zero (activations, pooling).
	KindLipschitz
	// KindSequence composes children in order.
	KindSequence
	// KindResidual is y = Branch(x) + Shortcut(x); a nil Shortcut is the
	// identity.
	KindResidual
	// KindConcat is the U-Net skip y = concat(x, Branch(x)): the two
	// halves' errors combine in quadrature rather than additively.
	KindConcat
)

// Node is one vertex of the error-flow graph.
type Node struct {
	Kind     NodeKind
	Op       *nn.LinearOp // KindLinear
	C        float64      // KindLipschitz
	Children []*Node      // KindSequence
	Branch   *Node        // KindResidual
	Shortcut *Node        // KindResidual; nil = identity
	Label    string
	// IsAct marks nonlinear activation nodes — the injection points for
	// the activation-quantization analysis (pooling and rounding layers
	// are Lipschitz nodes but not activations).
	IsAct bool
	// Off is the node's absolute signal offset ||phi(0)||_2 (KindLipschitz
	// only; nonzero only for activations with phi(0) != 0, i.e. sigmoid).
	// A pure Lipschitz gain bounds the centered response; the offset keeps
	// the signal-magnitude channel sound for such activations.
	Off float64
}

// FromNetwork translates a network into its error-flow graph. The
// translation fails if the network contains a layer type the analysis
// does not model, or an activation with phi(0) != 0 at a point where the
// layer width (needed to bound ||phi(0)||_2) cannot be determined.
func FromNetwork(net *nn.Network) (*Node, error) {
	root, _, err := fromLayers(net.Layers, net.InputDim)
	return root, err
}

// fromLayers translates a layer sequence, threading the current element
// count (width <= 0 when unknown) so activation nodes can size their
// signal offsets; it returns the sequence's output width.
func fromLayers(layers []nn.Layer, width int) (*Node, int, error) {
	seq := &Node{Kind: KindSequence, Label: "seq"}
	for _, l := range layers {
		child, w, err := fromLayer(l, width)
		if err != nil {
			return nil, 0, err
		}
		width = w
		seq.Children = append(seq.Children, child)
	}
	return seq, width, nil
}

func fromLayer(l nn.Layer, width int) (*Node, int, error) {
	switch t := l.(type) {
	case nn.Spectral:
		op := t.LinearOp()
		return &Node{Kind: KindLinear, Op: &op, Label: op.LayerName}, op.OutDim, nil
	case *nn.Activation:
		var off float64
		if zv := t.ZeroValue(); zv > 0 {
			if width <= 0 {
				return nil, 0, fmt.Errorf("core: cannot bound %s's signal offset ||phi(0)||: layer width unknown at this point", t.Name())
			}
			off = zv * math.Sqrt(float64(width))
		}
		return &Node{Kind: KindLipschitz, C: t.Lipschitz(), Off: off, Label: t.Name(), IsAct: true}, width, nil
	case nn.Lipschitzer:
		// Pooling and upsampling change the element count; only the
		// width-preserving rounding layer keeps it known. Widths matter
		// solely under activations with phi(0) != 0, which re-acquire
		// theirs from the next linear layer.
		w := -1
		if _, ok := l.(*nn.RoundLayer); ok {
			w = width
		}
		return &Node{Kind: KindLipschitz, C: t.Lipschitz(), Label: l.Name()}, w, nil
	case *nn.Residual:
		branch, bw, err := fromLayers(t.Branch, width)
		if err != nil {
			return nil, 0, err
		}
		var shortcut *Node
		if len(t.Shortcut) > 0 {
			shortcut, _, err = fromLayers(t.Shortcut, width)
			if err != nil {
				return nil, 0, err
			}
		}
		return &Node{Kind: KindResidual, Branch: branch, Shortcut: shortcut, Label: t.Name()}, bw, nil
	case *nn.SkipConcat:
		branch, bw, err := fromLayers(t.Branch, width)
		if err != nil {
			return nil, 0, err
		}
		out := -1
		if width > 0 && bw > 0 {
			out = width + bw
		}
		return &Node{Kind: KindConcat, Branch: branch, Label: t.Name()}, out, nil
	default:
		return nil, 0, fmt.Errorf("core: unsupported layer type %T (%s)", l, l.Name())
	}
}

// InputDim returns the flattened input dimension of the graph (the first
// linear node's InDim), or 0 if the graph has no linear node.
func (n *Node) InputDim() int {
	switch n.Kind {
	case KindLinear:
		return n.Op.InDim
	case KindSequence:
		for _, c := range n.Children {
			if d := c.InputDim(); d > 0 {
				return d
			}
		}
	case KindResidual, KindConcat:
		if d := n.Branch.InputDim(); d > 0 {
			return d
		}
		if n.Shortcut != nil {
			return n.Shortcut.InputDim()
		}
	}
	return 0
}

// LinearNodes returns every linear node in forward order (branch before
// shortcut inside residual blocks).
func (n *Node) LinearNodes() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(nd *Node) {
		switch nd.Kind {
		case KindLinear:
			out = append(out, nd)
		case KindSequence:
			for _, c := range nd.Children {
				walk(c)
			}
		case KindResidual, KindConcat:
			walk(nd.Branch)
			if nd.Shortcut != nil {
				walk(nd.Shortcut)
			}
		}
	}
	walk(n)
	return out
}
