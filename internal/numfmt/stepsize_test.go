package numfmt

import (
	"math"
	"math/rand"
	"testing"
)

func TestStepSizePowersOfTwo(t *testing.T) {
	// For a tensor of values in [1,2), floor(log2|w|) = 0, so the Table I
	// step size collapses to 2^-mantissa exactly.
	w := []float64{1, 1.25, 1.5, 1.9}
	if got := StepSize(TF32, w); got != 0x1p-10 {
		t.Fatalf("TF32 step = %v, want 2^-10", got)
	}
	if got := StepSize(FP16, w); got != 0x1p-10 {
		t.Fatalf("FP16 step = %v, want 2^-10", got)
	}
	if got := StepSize(BF16, w); got != 0x1p-7 {
		t.Fatalf("BF16 step = %v, want 2^-7", got)
	}
}

func TestStepSizeINT8(t *testing.T) {
	w := []float64{-2, 0, 6}
	want := 8.0 / 256
	if got := StepSize(INT8, w); got != want {
		t.Fatalf("INT8 step = %v, want %v", got, want)
	}
}

func TestStepSizeFP16SubnormalClamp(t *testing.T) {
	// Tiny weights: FP16 freezes its step at 2^(-14-10) = 2^-24, while
	// BF16/TF32 with their wide exponents keep shrinking relative steps.
	w := []float64{0x1p-20, 0x1p-21}
	fp16 := StepSize(FP16, w)
	want := 0x1p-24
	if math.Abs(fp16-want) > 1e-12*want {
		t.Fatalf("FP16 clamped step = %v, want %v", fp16, want)
	}
	tf32 := StepSize(TF32, w)
	if tf32 >= fp16 {
		t.Fatalf("TF32 step %v should be below clamped FP16 step %v here", tf32, fp16)
	}
}

func TestStepSizeTF32EqualsFP16InNormalRange(t *testing.T) {
	// Same mantissa width => identical step size for normal-range weights
	// (the paper's Fig. 5/6 observation that TF32 and FP16 bounds coincide).
	rng := rand.New(rand.NewSource(3))
	w := make([]float64, 500)
	for i := range w {
		w[i] = rng.NormFloat64() // comfortably within FP16 normal range
	}
	a, b := StepSize(TF32, w), StepSize(FP16, w)
	if a != b {
		t.Fatalf("TF32 step %v != FP16 step %v on normal-range weights", a, b)
	}
}

func TestStepSizeBF16Is8xFP16(t *testing.T) {
	// 3 fewer mantissa bits => exactly 8x the step in the normal range.
	w := []float64{0.3, -0.9, 0.11, 0.77}
	if got, want := StepSize(BF16, w), 8*StepSize(FP16, w); math.Abs(got-want) > 1e-15 {
		t.Fatalf("BF16 step = %v, want %v", got, want)
	}
}

func TestStepSizeMonotoneInMantissaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(100)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.NormFloat64() * math.Exp2(float64(rng.Intn(8)-4))
		}
		fp32 := StepSize(FP32, w)
		tf32 := StepSize(TF32, w)
		bf16 := StepSize(BF16, w)
		if !(fp32 <= tf32 && tf32 <= bf16) {
			t.Fatalf("step sizes not monotone in mantissa: fp32=%v tf32=%v bf16=%v", fp32, tf32, bf16)
		}
	}
}

func TestStepSizeEmptyAndZeros(t *testing.T) {
	if StepSize(FP16, nil) != 0 {
		t.Fatal("empty tensor should give step 0")
	}
	if StepSize(FP16, []float64{0, 0}) != 0 {
		t.Fatal("all-zero tensor should give step 0")
	}
	if StepSize(INT8, []float64{5, 5}) != 0 {
		t.Fatal("constant tensor INT8 step should be 0")
	}
}

func TestStepSizeScaleEquivariance(t *testing.T) {
	// Scaling weights by a power of two scales the float step sizes by the
	// same factor (exponents shift uniformly).
	rng := rand.New(rand.NewSource(13))
	w := make([]float64, 64)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	w4 := make([]float64, len(w))
	for i := range w {
		w4[i] = 4 * w[i]
	}
	for _, f := range []Format{TF32, BF16} {
		a, b := StepSize(f, w), StepSize(f, w4)
		if math.Abs(b-4*a) > 1e-12*b {
			t.Fatalf("%v not scale-equivariant: %v vs %v", f, b, 4*a)
		}
	}
}

func TestMaxErrorBoundsRounding(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	w := make([]float64, 256)
	for i := range w {
		w[i] = rng.NormFloat64() * 2
	}
	for _, f := range []Format{TF32, FP16, BF16, INT8} {
		me := MaxError(f, w)
		out := RoundSlice(f, w)
		for i := range w {
			if math.Abs(out[i]-w[i]) > me*(1+1e-9) {
				t.Fatalf("%v: rounding error %v exceeds MaxError %v", f, math.Abs(out[i]-w[i]), me)
			}
		}
	}
}

func BenchmarkRoundSliceFP16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := make([]float64, 4096)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RoundSlice(FP16, w)
	}
}

func BenchmarkStepSize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := make([]float64, 4096)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StepSize(FP16, w)
	}
}
