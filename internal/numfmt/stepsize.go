package numfmt

import (
	"math"
)

// StepSize computes the paper's Table I *average quantization step size*
// q(W) for a weight tensor given as a flat slice.
//
// For floating-point formats the per-entry step is the unit in the last
// place, ulp(w) = 2^-m * 2^floor(log2|w|) with m mantissa bits, and the
// table's sqrt(2^(2*floor(log2|Wij|))) notation denotes the root-mean-
// square aggregation over the entries:
//
//	q(W) = 2^-m * sqrt( mean_ij 2^(2*floor(log2 |Wij|)) )
//
// FP16 clamps the exponent at its minimum normal exponent -14 (below that
// the format is subnormal and the absolute step freezes at 2^-24).
//
// For INT8 with max calibration the step is uniform across the tensor:
//
//	q(W) = 2^-8 * (max(Wij) - min(Wij))
//
// Zero entries contribute a zero step (they are exactly representable).
func StepSize(f Format, w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	switch f {
	case FP32:
		return rmsULP(w, 23, -126)
	case TF32:
		return rmsULP(w, 10, -126)
	case FP16:
		return rmsULP(w, 10, -14)
	case BF16:
		return rmsULP(w, 7, -126)
	case FP8E4M3, FP8E5M2:
		return fp8StepSize(f, w)
	case INT8:
		min, max := w[0], w[0]
		for _, x := range w[1:] {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return (max - min) / 256
	}
	panic("numfmt: unknown format")
}

// rmsULP returns 2^-mantissa * sqrt(mean(2^(2*clamped floor(log2|w|)))).
func rmsULP(w []float64, mantissa, minExp int) float64 {
	var sum float64
	for _, x := range w {
		if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		e := math.Floor(math.Log2(math.Abs(x)))
		if e < float64(minExp) {
			e = float64(minExp)
		}
		s := math.Exp2(e)
		sum += s * s
	}
	return math.Exp2(-float64(mantissa)) * math.Sqrt(sum/float64(len(w)))
}

// MaxError returns the worst-case absolute rounding error for the format
// on the tensor w: half the largest per-entry step for round-to-nearest
// float formats, and half the affine step for INT8.
func MaxError(f Format, w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	switch f {
	case INT8:
		// The actual affine quantizer spreads the range over 255 code
		// steps (256 codes), slightly wider than Table I's 2^-8 average.
		return NewQuantizer(w).Scale / 2
	default:
		var worst float64
		m := float64(f.MantissaBits())
		minExp := float64(f.MinExponent())
		for _, x := range w {
			if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			e := math.Floor(math.Log2(math.Abs(x)))
			if e < minExp {
				e = minExp
			}
			step := math.Exp2(e - m)
			if step/2 > worst {
				worst = step / 2
			}
		}
		return worst
	}
}

// Quantizer performs affine INT8 quantization with max calibration
// (uniform affine transformation, as in Wu et al. 2020 cited by the
// paper): scale = (max-min)/255 over the calibration tensor, zero point
// chosen so the real value min maps to code 0.
type Quantizer struct {
	Scale float64 // real-value width of one code step
	Zero  float64 // real value represented by code 0
}

// NewQuantizer calibrates a quantizer on w using max calibration.
// A constant tensor yields Scale 0; Dequantize then always returns the
// constant.
func NewQuantizer(w []float64) Quantizer {
	if len(w) == 0 {
		return Quantizer{}
	}
	min, max := w[0], w[0]
	for _, x := range w[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return Quantizer{Scale: (max - min) / 255, Zero: min}
}

// Quantize maps a real value to its 8-bit code.
func (q Quantizer) Quantize(x float64) uint8 {
	if q.Scale == 0 {
		return 0
	}
	c := math.Round((x - q.Zero) / q.Scale)
	if c < 0 {
		c = 0
	}
	if c > 255 {
		c = 255
	}
	return uint8(c)
}

// Dequantize maps an 8-bit code back to its real value.
func (q Quantizer) Dequantize(c uint8) float64 { return q.Zero + float64(c)*q.Scale }

// RoundSlice quantizes every entry of w to the format and returns a new
// slice of the dequantized values. This is the weight-only post-training
// quantization step of the paper's pipeline.
func RoundSlice(f Format, w []float64) []float64 {
	out := make([]float64, len(w))
	if f == INT8 {
		q := NewQuantizer(w)
		for i, x := range w {
			out[i] = q.Dequantize(q.Quantize(x))
		}
		return out
	}
	for i, x := range w {
		out[i] = f.Round(x)
	}
	return out
}
