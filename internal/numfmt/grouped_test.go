package numfmt

import (
	"math"
	"math/rand"
	"testing"
)

func randWeights(rows, cols int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, rows*cols)
	for i := range w {
		// Row-dependent scale so grouping actually matters.
		w[i] = rng.NormFloat64() * math.Exp2(float64(i/cols%5-2))
	}
	return w
}

func TestGroupedINT8RoundTripBounded(t *testing.T) {
	w := randWeights(8, 16, 1)
	for _, g := range Granularities {
		out, q, err := GroupedINT8(w, 8, 16, g, 32)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if q <= 0 {
			t.Fatalf("%v: step %v", g, q)
		}
		// Per-entry error bounded by that entry's group scale; globally
		// bounded by the per-tensor scale.
		_, qt, _ := GroupedINT8(w, 8, 16, PerTensor, 0)
		for i := range w {
			if d := math.Abs(out[i] - w[i]); d > qt*256/255/2*(1+1e-9) {
				t.Fatalf("%v: error %v exceeds global half-step", g, d)
			}
		}
	}
}

func TestGroupedTighterThanPerTensor(t *testing.T) {
	// With row-dependent weight magnitudes, finer granularities must give
	// strictly smaller RMS steps — the paper's future-work motivation.
	w := randWeights(16, 32, 2)
	_, qt, _ := GroupedINT8(w, 16, 32, PerTensor, 0)
	_, qr, _ := GroupedINT8(w, 16, 32, PerRow, 0)
	_, qb, _ := GroupedINT8(w, 16, 32, PerBlock, 16)
	if qr >= qt {
		t.Fatalf("per-row step %v should beat per-tensor %v", qr, qt)
	}
	if qb >= qt {
		t.Fatalf("per-block step %v should beat per-tensor %v", qb, qt)
	}
	if qb >= qr {
		t.Logf("note: per-block %v vs per-row %v (layout-dependent)", qb, qr)
	}
}

func TestGroupedPerTensorMatchesTableI(t *testing.T) {
	w := randWeights(4, 8, 3)
	_, q, _ := GroupedINT8(w, 4, 8, PerTensor, 0)
	if want := StepSize(INT8, w); math.Abs(q-want) > 1e-15 {
		t.Fatalf("per-tensor grouped step %v != Table I %v", q, want)
	}
}

func TestGroupedValidation(t *testing.T) {
	if _, _, err := GroupedINT8(make([]float64, 5), 2, 3, PerRow, 0); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, _, err := GroupedINT8(make([]float64, 6), 2, 3, PerBlock, 0); err == nil {
		t.Fatal("PerBlock without size should error")
	}
	if _, _, err := GroupedINT8(make([]float64, 6), 2, 3, Granularity(99), 0); err == nil {
		t.Fatal("unknown granularity should error")
	}
	if out, q, err := GroupedINT8(nil, 0, 0, PerTensor, 0); err != nil || out != nil || q != 0 {
		t.Fatal("empty tensor should be a no-op")
	}
}

func TestGroupedDeterministicExactValues(t *testing.T) {
	// A matrix with two rows at very different scales: per-row must
	// reconstruct the small row much better than per-tensor.
	w := []float64{100, -100, 50, 0.01, -0.01, 0.005}
	pt, _, _ := GroupedINT8(w, 2, 3, PerTensor, 0)
	pr, _, _ := GroupedINT8(w, 2, 3, PerRow, 0)
	errPT := math.Abs(pt[3]-w[3]) + math.Abs(pt[4]-w[4])
	errPR := math.Abs(pr[3]-w[3]) + math.Abs(pr[4]-w[4])
	if errPR >= errPT/10 {
		t.Fatalf("per-row small-row error %v should be far below per-tensor %v", errPR, errPT)
	}
}

func TestScaleOverheadBytes(t *testing.T) {
	if ScaleOverheadBytes(10, 20, PerTensor, 0) != 8 {
		t.Fatal("per-tensor overhead")
	}
	if ScaleOverheadBytes(10, 20, PerRow, 0) != 80 {
		t.Fatal("per-row overhead")
	}
	if ScaleOverheadBytes(10, 20, PerColumn, 0) != 160 {
		t.Fatal("per-column overhead")
	}
	if ScaleOverheadBytes(10, 20, PerBlock, 64) != 8*((200+63)/64) {
		t.Fatal("per-block overhead")
	}
}

func TestGranularityString(t *testing.T) {
	names := map[Granularity]string{PerTensor: "per-tensor", PerRow: "per-row",
		PerColumn: "per-column", PerBlock: "per-block"}
	for g, want := range names {
		if g.String() != want {
			t.Fatalf("%d.String() = %q", g, g.String())
		}
	}
}
