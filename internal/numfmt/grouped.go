package numfmt

import (
	"fmt"
	"math"
)

// Granularity selects how INT8 affine quantization groups weights when
// assigning shared scale factors. The paper's future-work section calls
// out block-wise, column-wise and row-wise schemes as the path to
// "tighter quantization and reduced accuracy loss" versus uniform
// per-tensor calibration; this implements all three.
type Granularity int

const (
	// PerTensor is the paper's baseline: one scale for the whole tensor.
	PerTensor Granularity = iota
	// PerRow calibrates one scale per output row (out-channel).
	PerRow
	// PerColumn calibrates one scale per input column.
	PerColumn
	// PerBlock calibrates one scale per contiguous BlockSize-length run
	// of the row-major weight layout.
	PerBlock
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case PerTensor:
		return "per-tensor"
	case PerRow:
		return "per-row"
	case PerColumn:
		return "per-column"
	case PerBlock:
		return "per-block"
	}
	return fmt.Sprintf("Granularity(%d)", int(g))
}

// Granularities lists all supported schemes.
var Granularities = []Granularity{PerTensor, PerRow, PerColumn, PerBlock}

// GroupedINT8 quantizes a rows x cols weight matrix (row-major flat) to
// INT8 with per-group affine scales and returns the dequantized weights
// together with the effective *average step size* in Table I's RMS
// sense: q_rms = sqrt(mean_ij q(group(i,j))^2). The RMS step is the
// quantity to feed the error-flow analysis — the additive quantization
// term's variance sums per-entry step variances, so grouped scales drop
// straight into the same formulas.
//
// blockSize is only used by PerBlock (must be positive).
func GroupedINT8(w []float64, rows, cols int, g Granularity, blockSize int) ([]float64, float64, error) {
	if len(w) != rows*cols {
		return nil, 0, fmt.Errorf("numfmt: grouped weights length %d != %dx%d", len(w), rows, cols)
	}
	if len(w) == 0 {
		return nil, 0, nil
	}
	out := make([]float64, len(w))
	var sumSq float64

	quantGroup := func(idxs []int) {
		lo, hi := w[idxs[0]], w[idxs[0]]
		for _, i := range idxs {
			if w[i] < lo {
				lo = w[i]
			}
			if w[i] > hi {
				hi = w[i]
			}
		}
		q := Quantizer{Scale: (hi - lo) / 255, Zero: lo}
		for _, i := range idxs {
			out[i] = q.Dequantize(q.Quantize(w[i]))
		}
		// Table I uses 2^-8*(max-min); keep that convention per group.
		step := (hi - lo) / 256
		sumSq += step * step * float64(len(idxs))
	}

	switch g {
	case PerTensor:
		idxs := make([]int, len(w))
		for i := range idxs {
			idxs[i] = i
		}
		quantGroup(idxs)
	case PerRow:
		for r := 0; r < rows; r++ {
			idxs := make([]int, cols)
			for c := 0; c < cols; c++ {
				idxs[c] = r*cols + c
			}
			quantGroup(idxs)
		}
	case PerColumn:
		for c := 0; c < cols; c++ {
			idxs := make([]int, rows)
			for r := 0; r < rows; r++ {
				idxs[r] = r*cols + c
			}
			quantGroup(idxs)
		}
	case PerBlock:
		if blockSize <= 0 {
			return nil, 0, fmt.Errorf("numfmt: PerBlock needs a positive block size")
		}
		for lo := 0; lo < len(w); lo += blockSize {
			hi := lo + blockSize
			if hi > len(w) {
				hi = len(w)
			}
			idxs := make([]int, hi-lo)
			for i := range idxs {
				idxs[i] = lo + i
			}
			quantGroup(idxs)
		}
	default:
		return nil, 0, fmt.Errorf("numfmt: unknown granularity %v", g)
	}
	return out, math.Sqrt(sumSq / float64(len(w))), nil
}

// GroupedStepSize returns the RMS average step size a grouped INT8
// quantization of w would use, without materialising the rounded copy.
func GroupedStepSize(w []float64, rows, cols int, g Granularity, blockSize int) (float64, error) {
	_, q, err := GroupedINT8(w, rows, cols, g, blockSize)
	return q, err
}

// ScaleOverheadBytes returns the extra storage the grouped scheme needs
// for its scale/zero-point pairs (8 bytes each as float32 pairs).
func ScaleOverheadBytes(rows, cols int, g Granularity, blockSize int) int {
	const perGroup = 8
	switch g {
	case PerTensor:
		return perGroup
	case PerRow:
		return rows * perGroup
	case PerColumn:
		return cols * perGroup
	case PerBlock:
		if blockSize <= 0 {
			return 0
		}
		return ((rows*cols + blockSize - 1) / blockSize) * perGroup
	}
	return 0
}
