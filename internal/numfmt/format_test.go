package numfmt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFormatString(t *testing.T) {
	want := map[Format]string{FP32: "fp32", TF32: "tf32", FP16: "fp16", BF16: "bf16", INT8: "int8"}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), s)
		}
		got, err := ParseFormat(s)
		if err != nil || got != f {
			t.Errorf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("fp8"); err == nil {
		t.Error("ParseFormat should reject unknown formats")
	}
}

func TestFormatMetadata(t *testing.T) {
	if FP16.MantissaBits() != 10 || TF32.MantissaBits() != 10 || BF16.MantissaBits() != 7 {
		t.Fatal("mantissa bits wrong")
	}
	if FP16.ExponentBits() != 5 || BF16.ExponentBits() != 8 || TF32.ExponentBits() != 8 {
		t.Fatal("exponent bits wrong")
	}
	if FP16.Bits() != 16 || BF16.Bits() != 16 || INT8.Bits() != 8 || TF32.Bits() != 32 {
		t.Fatal("storage bits wrong")
	}
	if FP16.MinExponent() != -14 {
		t.Fatal("FP16 min exponent should be -14 (Table I clamp)")
	}
}

func TestFP16KnownValues(t *testing.T) {
	cases := []struct {
		in   float64
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-2, 0xC000},
		{0.5, 0x3800},
		{65504, 0x7BFF},                 // max finite half
		{65520, 0x7C00},                 // rounds to +Inf
		{5.960464477539063e-08, 0x0001}, // smallest subnormal
		{6.103515625e-05, 0x0400},       // smallest normal
		{0.333251953125, 0x3555},        // nearest half to 1/3
	}
	for _, c := range cases {
		if got := FloatToFP16Bits(c.in); got != c.bits {
			t.Errorf("FloatToFP16Bits(%v) = %#04x, want %#04x", c.in, got, c.bits)
		}
	}
	if FP16BitsToFloat(0x3C00) != 1 || FP16BitsToFloat(0xC000) != -2 {
		t.Fatal("FP16BitsToFloat known values wrong")
	}
	if !math.IsInf(FP16BitsToFloat(0x7C00), 1) {
		t.Fatal("0x7C00 should decode to +Inf")
	}
	if !math.IsNaN(FP16BitsToFloat(0x7C01)) {
		t.Fatal("0x7C01 should decode to NaN")
	}
}

func TestFP16RoundTripExact(t *testing.T) {
	// Every finite half value must round-trip bit-exactly.
	for b := uint32(0); b < 0x10000; b++ {
		h := uint16(b)
		if h&0x7C00 == 0x7C00 { // skip Inf/NaN
			continue
		}
		x := FP16BitsToFloat(h)
		got := FloatToFP16Bits(x)
		// -0 and +0 both acceptable for zero.
		if got != h && !(x == 0 && got&0x7FFF == 0 && h&0x7FFF == 0) {
			t.Fatalf("half %#04x -> %v -> %#04x", h, x, got)
		}
	}
}

func TestFP16RoundNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly between 1 and 1+2^-10: must round to even (1).
	if got := FP16.Round(1 + 0x1p-11); got != 1 {
		t.Fatalf("midpoint rounds to %v, want 1 (even)", got)
	}
	// 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: rounds to even 1+2^-9.
	if got := FP16.Round(1 + 3*0x1p-11); got != 1+0x1p-9 {
		t.Fatalf("midpoint rounds to %v, want %v", got, 1+0x1p-9)
	}
}

func TestBF16TF32Rounding(t *testing.T) {
	// BF16 keeps 7 mantissa bits: 1 + 2^-7 is representable, 1 + 2^-8 is not.
	if got := BF16.Round(1 + 0x1p-7); got != 1+0x1p-7 {
		t.Fatalf("BF16(1+2^-7) = %v", got)
	}
	if got := BF16.Round(1 + 0x1p-9); got != 1 {
		t.Fatalf("BF16(1+2^-9) = %v, want 1", got)
	}
	// TF32 keeps 10 mantissa bits.
	if got := TF32.Round(1 + 0x1p-10); got != 1+0x1p-10 {
		t.Fatalf("TF32(1+2^-10) = %v", got)
	}
	if got := TF32.Round(1 + 0x1p-12); got != 1 {
		t.Fatalf("TF32(1+2^-12) = %v, want 1", got)
	}
	// Exact powers of two are preserved by every float format.
	for _, f := range []Format{TF32, FP16, BF16} {
		for _, x := range []float64{0.25, 1, 2, 1024} {
			if f.Round(x) != x {
				t.Errorf("%v.Round(%v) = %v", f, x, f.Round(x))
			}
			if f.Round(-x) != -x {
				t.Errorf("%v.Round(%v) = %v", f, -x, f.Round(-x))
			}
		}
	}
}

func TestRoundIdempotentProperty(t *testing.T) {
	// Rounding twice equals rounding once, for every float format.
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		for _, fm := range []Format{FP32, TF32, FP16, BF16} {
			once := fm.Round(x)
			if math.IsInf(once, 0) { // FP16 overflow is fine
				continue
			}
			if fm.Round(once) != once {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundErrorWithinHalfULPProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5000; trial++ {
		x := rng.NormFloat64() * math.Exp2(float64(rng.Intn(20)-10))
		for _, f := range []Format{TF32, FP16, BF16} {
			y := f.Round(x)
			if math.IsInf(y, 0) {
				continue
			}
			e := math.Floor(math.Log2(math.Abs(x)))
			if e < float64(f.MinExponent()) {
				e = float64(f.MinExponent())
			}
			ulp := math.Exp2(e - float64(f.MantissaBits()))
			if math.Abs(y-x) > ulp/2*(1+1e-12) {
				t.Fatalf("%v.Round(%v) error %v exceeds ulp/2=%v", f, x, math.Abs(y-x), ulp/2)
			}
		}
	}
}

func TestMantissaOrderingProperty(t *testing.T) {
	// More mantissa bits => no larger rounding error. This is the paper's
	// core observation about why FP16 beats BF16 at equal bit width.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 2000; trial++ {
		x := rng.NormFloat64()
		eTF := math.Abs(TF32.Round(x) - x)
		eBF := math.Abs(BF16.Round(x) - x)
		if eTF > eBF*(1+1e-12) {
			t.Fatalf("TF32 error %v > BF16 error %v at x=%v", eTF, eBF, x)
		}
	}
}

func TestINT8Quantizer(t *testing.T) {
	w := []float64{-1, -0.5, 0, 0.5, 1}
	q := NewQuantizer(w)
	if q.Scale != 2.0/255 {
		t.Fatalf("Scale = %v", q.Scale)
	}
	for _, x := range w {
		y := q.Dequantize(q.Quantize(x))
		if math.Abs(y-x) > q.Scale/2+1e-15 {
			t.Fatalf("INT8 roundtrip error %v > step/2", math.Abs(y-x))
		}
	}
	// Range endpoints map to the code range ends.
	if q.Quantize(-1) != 0 || q.Quantize(1) != 255 {
		t.Fatalf("endpoint codes = %d, %d", q.Quantize(-1), q.Quantize(1))
	}
	// Out-of-range values clamp.
	if q.Quantize(99) != 255 || q.Quantize(-99) != 0 {
		t.Fatal("clamping failed")
	}
}

func TestINT8ConstantTensor(t *testing.T) {
	q := NewQuantizer([]float64{3, 3, 3})
	if q.Dequantize(q.Quantize(3)) != 3 {
		t.Fatal("constant tensor should dequantize exactly")
	}
}

func TestRoundSlice(t *testing.T) {
	w := []float64{0.1, -0.7, 1.3}
	for _, f := range []Format{FP32, TF32, FP16, BF16, INT8} {
		out := RoundSlice(f, w)
		if len(out) != len(w) {
			t.Fatalf("%v: RoundSlice length %d", f, len(out))
		}
		me := MaxError(f, w)
		for i := range w {
			if math.Abs(out[i]-w[i]) > me*(1+1e-9) {
				t.Fatalf("%v: error %v at %d exceeds MaxError %v", f, math.Abs(out[i]-w[i]), i, me)
			}
		}
	}
}

func TestINT8PanicOnRound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("INT8.Round should panic")
		}
	}()
	INT8.Round(1)
}
