package numfmt

import (
	"math"
	"math/rand"
	"testing"
)

func TestFP8KnownValues(t *testing.T) {
	cases := []struct {
		f    Format
		in   float64
		want float64
	}{
		{FP8E4M3, 1, 1},
		{FP8E4M3, 1.0625, 1}, // between 1 and 1.125: RNE to even (1)
		{FP8E4M3, 1.2, 1.25}, // grid step 0.125 at exponent 0
		{FP8E4M3, 448, 448},  // max finite
		{FP8E4M3, 1000, 448}, // saturates
		{FP8E4M3, -1000, -448},
		{FP8E4M3, 0, 0},
		{FP8E5M2, 1.2, 1.25}, // grid step 0.25 at exponent 0: RNE(4.8)=5 -> 1.25
		{FP8E5M2, 57344, 57344},
		{FP8E5M2, 1e6, 57344},
		{FP8E4M3, 0x1p-9, 0x1p-9},   // smallest E4M3 subnormal
		{FP8E4M3, 0x1p-10, 0},       // below half the subnormal step
		{FP8E5M2, 0x1p-16, 0x1p-16}, // smallest E5M2 subnormal
	}
	for _, c := range cases {
		if got := c.f.Round(c.in); got != c.want {
			t.Errorf("%v.Round(%v) = %v, want %v", c.f, c.in, got, c.want)
		}
	}
}

func TestFP8Metadata(t *testing.T) {
	if FP8E4M3.Bits() != 8 || FP8E5M2.Bits() != 8 {
		t.Fatal("fp8 storage bits")
	}
	if FP8E4M3.MantissaBits() != 3 || FP8E5M2.MantissaBits() != 2 {
		t.Fatal("fp8 mantissa bits")
	}
	if FP8E4M3.MinExponent() != -6 || FP8E5M2.MinExponent() != -14 {
		t.Fatal("fp8 min exponents")
	}
	for _, f := range ExtendedFormats {
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Fatalf("ParseFormat(%q) = %v, %v", f.String(), got, err)
		}
	}
}

func TestFP8RoundIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3000; trial++ {
		x := rng.NormFloat64() * math.Exp2(float64(rng.Intn(16)-8))
		for _, f := range ExtendedFormats {
			once := f.Round(x)
			if f.Round(once) != once {
				t.Fatalf("%v.Round not idempotent at %v", f, x)
			}
		}
	}
}

func TestFP8ErrorWithinHalfULP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 3000; trial++ {
		x := rng.NormFloat64()
		for _, f := range ExtendedFormats {
			m, minExp, mx := fp8Params(f)
			if math.Abs(x) >= mx {
				continue // saturation region
			}
			e := math.Floor(math.Log2(math.Abs(x)))
			if e < float64(minExp) {
				e = float64(minExp)
			}
			ulp := math.Exp2(e - float64(m))
			if d := math.Abs(f.Round(x) - x); d > ulp/2*(1+1e-12) {
				t.Fatalf("%v.Round(%v) error %v exceeds ulp/2 %v", f, x, d, ulp/2)
			}
		}
	}
}

func TestE4M3BeatsE5M2OnUnitScaleWeights(t *testing.T) {
	// The paper's conjecture at 8 bits: more mantissa bits win when the
	// dynamic range is small (inference weights near unit scale).
	rng := rand.New(rand.NewSource(3))
	var e43, e52 float64
	for trial := 0; trial < 5000; trial++ {
		x := rng.NormFloat64() * 0.5
		e43 += math.Abs(FP8E4M3.Round(x) - x)
		e52 += math.Abs(FP8E5M2.Round(x) - x)
	}
	if e43 >= e52 {
		t.Fatalf("E4M3 mean error %v should beat E5M2's %v on unit-scale weights", e43, e52)
	}
}

func TestFP8StepSizeOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := make([]float64, 512)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.3
	}
	e43 := StepSize(FP8E4M3, w)
	e52 := StepSize(FP8E5M2, w)
	bf16 := StepSize(BF16, w)
	if e43 >= e52 {
		t.Fatalf("E4M3 step %v should be below E5M2's %v", e43, e52)
	}
	if bf16 >= e43 {
		t.Fatalf("BF16 step %v should be below E4M3's %v (more mantissa bits)", bf16, e43)
	}
	// E4M3 step is ~2^4 x BF16 (7-3 mantissa bits); slightly above when a
	// few weights fall under E4M3's clamped minimum exponent -6.
	if ratio := e43 / bf16; ratio < 16 || ratio > 16.2 {
		t.Fatalf("E4M3/BF16 step ratio %v, want ~16", ratio)
	}
}

func TestFP8RoundSliceAndMaxError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := make([]float64, 256)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.4
	}
	for _, f := range ExtendedFormats {
		out := RoundSlice(f, w)
		me := MaxError(f, w)
		for i := range w {
			if math.Abs(out[i]-w[i]) > me*(1+1e-9) {
				t.Fatalf("%v: rounding error exceeds MaxError", f)
			}
		}
	}
}

func TestFP8NaNAndInf(t *testing.T) {
	if !math.IsNaN(FP8E4M3.Round(math.NaN())) {
		t.Fatal("NaN should pass through")
	}
	if FP8E4M3.Round(math.Inf(1)) != 448 {
		t.Fatal("+Inf should saturate to max finite")
	}
	if FP8E5M2.Round(math.Inf(-1)) != -57344 {
		t.Fatal("-Inf should saturate to -max finite")
	}
}
