// Package numfmt emulates the reduced-precision numeric formats the paper
// quantizes network weights into (Table I): IEEE FP16, bfloat16 (BF16),
// TensorFloat-32 (TF32) and affine INT8, plus full-precision FP32/FP64.
//
// The floating-point conversions are bit-exact round-to-nearest-even
// implementations, so the "quantized" weights produced here match what a
// GPU tensor core would load. The package also implements the paper's
// Table I *average quantization step size* q(W), the quantity that feeds
// the quantization-error term of Inequality (3).
package numfmt

import (
	"fmt"
	"math"
)

// Format identifies a numeric format usable for post-training weight
// quantization.
type Format int

const (
	// FP32 is IEEE 754 single precision (the unquantized baseline).
	FP32 Format = iota
	// TF32 is NVIDIA TensorFloat-32: 8 exponent bits, 10 mantissa bits.
	TF32
	// FP16 is IEEE 754 half precision: 5 exponent bits, 10 mantissa bits.
	FP16
	// BF16 is bfloat16: 8 exponent bits, 7 mantissa bits.
	BF16
	// INT8 is 8-bit uniform affine quantization with max calibration.
	INT8
)

// Formats lists every quantization target evaluated in the paper,
// in decreasing precision order (TF32, FP16, BF16, INT8).
var Formats = []Format{TF32, FP16, BF16, INT8}

// AllFormats additionally includes the FP32 baseline.
var AllFormats = []Format{FP32, TF32, FP16, BF16, INT8}

// String returns the conventional lowercase name of the format.
func (f Format) String() string {
	switch f {
	case FP32:
		return "fp32"
	case TF32:
		return "tf32"
	case FP16:
		return "fp16"
	case BF16:
		return "bf16"
	case INT8:
		return "int8"
	case FP8E4M3:
		return "fp8e4m3"
	case FP8E5M2:
		return "fp8e5m2"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseFormat converts a name produced by String back into a Format.
func ParseFormat(s string) (Format, error) {
	for _, f := range AllFormats {
		if f.String() == s {
			return f, nil
		}
	}
	for _, f := range ExtendedFormats {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("numfmt: unknown format %q", s)
}

// Bits returns the storage width of the format in bits.
func (f Format) Bits() int {
	switch f {
	case FP32, TF32:
		// TF32 is stored as 32-bit words on real hardware; only the
		// compute path drops mantissa bits.
		return 32
	case FP16, BF16:
		return 16
	case INT8, FP8E4M3, FP8E5M2:
		return 8
	}
	return 0
}

// MantissaBits returns the number of explicit mantissa (fraction) bits.
// For INT8 it returns 0 (the notion does not apply).
func (f Format) MantissaBits() int {
	switch f {
	case FP32:
		return 23
	case TF32, FP16:
		return 10
	case BF16:
		return 7
	case FP8E4M3:
		return 3
	case FP8E5M2:
		return 2
	}
	return 0
}

// ExponentBits returns the number of exponent bits (0 for INT8).
func (f Format) ExponentBits() int {
	switch f {
	case FP32, TF32, BF16:
		return 8
	case FP16:
		return 5
	case FP8E4M3:
		return 4
	case FP8E5M2:
		return 5
	}
	return 0
}

// MinExponent returns the smallest normal base-2 exponent representable by
// the format. Values below this flush into the subnormal range, which is
// why Table I clamps the FP16 step-size exponent at -14.
func (f Format) MinExponent() int {
	switch f {
	case FP32, TF32, BF16:
		return -126
	case FP16, FP8E5M2:
		return -14
	case FP8E4M3:
		return -6
	}
	return 0
}

// Round quantizes a single float64 value to the format using
// round-to-nearest-even, returning the dequantized float64. INT8 cannot be
// rounded valuewise (it needs per-tensor calibration); use Quantizer.
func (f Format) Round(x float64) float64 {
	switch f {
	case FP32:
		//lint:ignore lossyconv FP32 rounding IS the float32 truncation; that is this format's semantics
		return float64(float32(x))
	case TF32:
		//lint:ignore lossyconv TF32 rounds through binary32 by definition before dropping mantissa bits
		return roundMantissa32(float32(x), 13)
	case FP16:
		return fp16Round(x)
	case BF16:
		//lint:ignore lossyconv BF16 rounds through binary32 by definition before dropping mantissa bits
		return roundMantissa32(float32(x), 16)
	case FP8E4M3, FP8E5M2:
		return fp8Round(f, x)
	case INT8:
		panic("numfmt: INT8 requires tensor calibration; use NewQuantizer")
	}
	panic("numfmt: unknown format")
}

// roundMantissa32 rounds a float32 to nearest-even after dropping `drop`
// low mantissa bits (drop=13 yields TF32's 10-bit mantissa, drop=16 yields
// BF16's 7). NaN and infinity pass through unchanged; subnormals round
// correctly because exponent-0 values still carry their significand in the
// low bits.
func roundMantissa32(x float32, drop int) float64 {
	bits := math.Float32bits(x)
	if bits&0x7F800000 == 0x7F800000 { // Inf or NaN: keep payload.
		return float64(x)
	}
	half := uint32(1) << (drop - 1)
	lsb := (bits >> drop) & 1
	bits += half - 1 + lsb
	bits &^= (uint32(1) << drop) - 1
	return float64(math.Float32frombits(bits))
}

// fp16Round converts x to IEEE half precision (round-to-nearest-even,
// with subnormal handling and overflow to infinity) and back to float64.
func fp16Round(x float64) float64 { return FP16BitsToFloat(FloatToFP16Bits(x)) }

// FloatToFP16Bits converts a float64 to IEEE 754 binary16 bits with
// round-to-nearest-even.
func FloatToFP16Bits(x float64) uint16 {
	// Convert through float32 first; double rounding is harmless here
	// because binary32 keeps 13 extra mantissa bits beyond binary16.
	//lint:ignore lossyconv deliberate: binary16 rounding routes through binary32, see comment above
	f := float32(x)
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127
	man := bits & 0x7FFFFF

	switch {
	case exp == 128: // Inf / NaN
		if man != 0 {
			return sign | 0x7E00 // quiet NaN
		}
		return sign | 0x7C00
	case exp > 15: // overflow to infinity
		return sign | 0x7C00
	case exp >= -14: // normal range
		// 10-bit mantissa: round the 23-bit mantissa to 10 bits.
		m := man
		half := uint32(1) << 12
		lsb := (m >> 13) & 1
		m += half - 1 + lsb
		if m&0x800000 != 0 { // mantissa carry bumps the exponent
			m = 0
			exp++
			if exp > 15 {
				return sign | 0x7C00
			}
		}
		return sign | uint16(exp+15)<<10 | uint16(m>>13)
	case exp >= -25: // subnormal range
		// Shift in the implicit leading 1 and round.
		m := man | 0x800000
		shift := uint32(-exp - 14 + 13)
		half := uint32(1) << (shift - 1)
		lsb := (m >> shift) & 1
		m += half - 1 + lsb
		return sign | uint16(m>>shift)
	default: // underflow to zero
		return sign
	}
}

// FP16BitsToFloat converts IEEE 754 binary16 bits to float64.
func FP16BitsToFloat(h uint16) float64 {
	sign := float64(1)
	if h&0x8000 != 0 {
		sign = -1
	}
	exp := int(h>>10) & 0x1F
	man := int(h) & 0x3FF
	switch exp {
	case 0: // zero / subnormal
		return sign * float64(man) * 0x1p-24
	case 31: // Inf / NaN
		if man != 0 {
			return math.NaN()
		}
		return sign * math.Inf(1)
	default:
		return sign * (1 + float64(man)*0x1p-10) * math.Pow(2, float64(exp-15))
	}
}
