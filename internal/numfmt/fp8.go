package numfmt

import "math"

// FP8 support: the paper's conclusion conjectures that "lower-precision
// formats with increased mantissa bits" would further improve scientific
// inference. The two industry FP8 variants test that conjecture at equal
// bit width: E4M3 (3 mantissa bits, narrow range) versus E5M2 (2 mantissa
// bits, wide range) — and both against INT8's max-calibrated uniform grid.
const (
	// FP8E4M3 is the 4-exponent/3-mantissa FP8 variant (bias 7,
	// max finite 448, saturating conversion as on modern accelerators).
	FP8E4M3 Format = iota + 100
	// FP8E5M2 is the 5-exponent/2-mantissa variant (bias 15, max 57344).
	FP8E5M2
)

// ExtendedFormats lists the beyond-the-paper quantization targets.
var ExtendedFormats = []Format{FP8E4M3, FP8E5M2}

// fp8Params returns (mantissa bits, min normal exponent, max finite).
func fp8Params(f Format) (int, int, float64) {
	switch f {
	case FP8E4M3:
		return 3, -6, 448
	case FP8E5M2:
		return 2, -14, 57344
	}
	panic("numfmt: not an FP8 format")
}

// minifloatRound rounds x to a minifloat grid with the given mantissa
// width and minimum normal exponent, saturating at maxFinite (the FP8
// convention on current accelerators: no infinities on overflow).
func minifloatRound(x float64, mantBits, minExp int, maxFinite float64) float64 {
	if x == 0 || math.IsNaN(x) {
		return x
	}
	sign := 1.0
	a := x
	if a < 0 {
		sign, a = -1, -a
	}
	if math.IsInf(a, 0) || a >= maxFinite {
		return sign * maxFinite
	}
	e := math.Floor(math.Log2(a))
	if e < float64(minExp) {
		e = float64(minExp) // subnormal range: fixed absolute step
	}
	step := math.Exp2(e - float64(mantBits))
	y := math.RoundToEven(a/step) * step
	if y > maxFinite {
		y = maxFinite
	}
	return sign * y
}

// fp8Round rounds to the FP8 grid.
func fp8Round(f Format, x float64) float64 {
	m, e, mx := fp8Params(f)
	return minifloatRound(x, m, e, mx)
}

// fp8StepSize is the Table I style RMS average step size for FP8.
func fp8StepSize(f Format, w []float64) float64 {
	m, minExp, _ := fp8Params(f)
	return rmsULP(w, m, minExp)
}
