package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scidata/errprop/internal/compress"
	_ "github.com/scidata/errprop/internal/compress/sz" // blob round-trip
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
)

// h2Net builds an untrained H2-sized MLP (9-50-50-9 tanh); weights are
// deterministic, which is all serving correctness tests need.
func h2Net(t testing.TB) *nn.Network {
	t.Helper()
	net, err := nn.MLPSpec("h2", []int{9, 50, 50, 9}, nn.ActTanh, false).Build(7)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// slowNet is big enough that a single-sample forward takes milliseconds,
// letting tests saturate queues deterministically.
// slowNet is sized so one forward pass costs tens of milliseconds even
// on the blocked engine kernels: the backpressure/timeout/drain tests
// below need requests to observably pile up behind a busy worker, which
// only holds when service time dwarfs goroutine-scheduling jitter.
func slowNet(t testing.TB) *nn.Network {
	t.Helper()
	net, err := nn.MLPSpec("slow", []int{256, 4096, 4096, 4096, 8}, nn.ActReLU, false).Build(7)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func newTestServer(t testing.TB, cfg Config, name string, net *nn.Network, f numfmt.Format) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if err := s.Register(name, net, f); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t testing.TB, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestPredictMatchesDirectForward(t *testing.T) {
	net := h2Net(t)
	_, ts := newTestServer(t, Config{Workers: 2}, "h2", net, numfmt.FP32)

	rng := rand.New(rand.NewSource(11))
	inputs := make([][]float64, 5)
	for i := range inputs {
		row := make([]float64, 9)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		inputs[i] = row
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/predict", PredictRequest{Model: "h2", Inputs: inputs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Samples != len(inputs) || len(pr.Outputs) != len(inputs) {
		t.Fatalf("got %d/%d outputs for %d inputs", pr.Samples, len(pr.Outputs), len(inputs))
	}
	for i, row := range inputs {
		want := net.ForwardVec(row)
		for f := range want {
			// JSON float64 round-trips exactly; batching must not change
			// the computed function beyond association-order noise (none
			// here: columns are independent in every layer).
			if math.Abs(pr.Outputs[i][f]-want[f]) > 1e-12 {
				t.Fatalf("output[%d][%d] = %v, want %v", i, f, pr.Outputs[i][f], want[f])
			}
		}
	}
	if pr.Bound == nil || pr.Bound.Format != "fp32" {
		t.Fatalf("missing/wrong bound info: %+v", pr.Bound)
	}
}

// TestShardedWorkersBitIdentical pins Config.EngineShards as a pure
// wall-clock knob at the serving boundary: the same batch served by
// 3-way-sharded worker engines must produce byte-identical response
// outputs to an unsharded server.
func TestShardedWorkersBitIdentical(t *testing.T) {
	net := h2Net(t)
	_, plain := newTestServer(t, Config{Workers: 1, MaxBatch: 16}, "h2", net, numfmt.FP16)
	_, sharded := newTestServer(t, Config{Workers: 1, MaxBatch: 16, EngineShards: 3}, "h2", net, numfmt.FP16)

	rng := rand.New(rand.NewSource(17))
	inputs := make([][]float64, 8)
	for i := range inputs {
		row := make([]float64, 9)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		inputs[i] = row
	}
	req := PredictRequest{Model: "h2", Inputs: inputs}
	resp, wantBody := postJSON(t, plain.Client(), plain.URL+"/v1/predict", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unsharded status %d: %s", resp.StatusCode, wantBody)
	}
	resp, gotBody := postJSON(t, sharded.Client(), sharded.URL+"/v1/predict", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded status %d: %s", resp.StatusCode, gotBody)
	}
	var want, got PredictResponse
	if err := json.Unmarshal(wantBody, &want); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gotBody, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Fatal("sharded worker outputs differ from unsharded")
	}
}

func TestPerRequestErrorBudget(t *testing.T) {
	net := h2Net(t)
	_, ts := newTestServer(t, Config{Workers: 1}, "h2", net, numfmt.INT8)

	in := [][]float64{make([]float64, 9)}

	// An absurdly tight tolerance must be refused up front with 422.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/predict",
		PredictRequest{Model: "h2", Inputs: in, Tolerance: 1e-300})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("tight tolerance: status %d: %s", resp.StatusCode, body)
	}
	var rej struct {
		Error string     `json:"error"`
		Bound *BoundInfo `json:"bound"`
	}
	if err := json.Unmarshal(body, &rej); err != nil {
		t.Fatal(err)
	}
	if rej.Bound == nil || rej.Bound.TotalBound <= 0 {
		t.Fatalf("422 must carry the predicted bound: %s", body)
	}

	// A tolerance above the predicted bound is admitted, and the response
	// restates the honored contract.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/predict",
		PredictRequest{Model: "h2", Inputs: in, Tolerance: rej.Bound.TotalBound * 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("loose tolerance: status %d: %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Bound == nil || pr.Bound.TotalBound > pr.Bound.Tolerance {
		t.Fatalf("served request violates its own contract: %+v", pr.Bound)
	}

	// A declared input error inflates the bound: the same tolerance that
	// fit quantization alone can become unsatisfiable.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/predict",
		PredictRequest{Model: "h2", Inputs: in, Tolerance: rej.Bound.TotalBound * 2, InputError: 1e9})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("input error must tighten the contract: status %d: %s", resp.StatusCode, body)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8}, "h2", h2Net(t), numfmt.FP32)
	client := ts.Client()

	cases := []struct {
		name string
		req  PredictRequest
		want int
	}{
		{"unknown model", PredictRequest{Model: "nope", Inputs: [][]float64{make([]float64, 9)}}, http.StatusNotFound},
		{"no inputs", PredictRequest{Model: "h2"}, http.StatusBadRequest},
		{"wrong width", PredictRequest{Model: "h2", Inputs: [][]float64{make([]float64, 3)}}, http.StatusBadRequest},
		{"bad norm", PredictRequest{Model: "h2", Inputs: [][]float64{make([]float64, 9)}, Norm: "l7"}, http.StatusBadRequest},
		{"oversized bulk", PredictRequest{Model: "h2", Inputs: make([][]float64, 9)}, http.StatusRequestEntityTooLarge},
	}
	for i := range cases[4].req.Inputs {
		cases[4].req.Inputs[i] = make([]float64, 9)
	}
	for _, tc := range cases {
		resp, body := postJSON(t, client, ts.URL+"/v1/predict", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.want, body)
		}
	}
}

func TestBackpressure503WithRetryAfter(t *testing.T) {
	// One slow worker, batch size 1, a 2-deep queue: a burst must
	// overflow admission and be rejected rather than block.
	_, ts := newTestServer(t, Config{Workers: 1, MaxBatch: 1, QueueCap: 2, RetryAfter: 2 * time.Second},
		"slow", slowNet(t), numfmt.FP32)

	in := PredictRequest{Model: "slow", Inputs: [][]float64{make([]float64, 256)}}
	const burst = 16
	var ok503, okOther atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/predict", in)
			if resp.StatusCode == http.StatusServiceUnavailable {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("503 without Retry-After header")
				}
				ok503.Add(1)
			} else {
				okOther.Add(1)
			}
		}()
	}
	wg.Wait()
	if ok503.Load() == 0 {
		t.Fatalf("no request was rejected: queue should overflow (got %d non-503)", okOther.Load())
	}
	if okOther.Load() == 0 {
		t.Fatal("every request was rejected: admitted requests should still be served")
	}
}

func TestRequestTimeout504(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBatch: 1, QueueCap: 64, RequestTimeout: time.Millisecond},
		"slow", slowNet(t), numfmt.FP32)

	// Pile several requests on the single slow worker so later ones
	// exceed the 1ms deadline while queued.
	in := PredictRequest{Model: "slow", Inputs: [][]float64{make([]float64, 256)}}
	var timeouts atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/predict", in)
			if resp.StatusCode == http.StatusGatewayTimeout {
				timeouts.Add(1)
			}
		}()
	}
	wg.Wait()
	if timeouts.Load() == 0 {
		t.Fatal("no request timed out despite a 1ms deadline on a multi-ms model")
	}
}

func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 4, QueueCap: 64})
	if err := s.Register("slow", slowNet(t), numfmt.FP32); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Admit a few requests, then drain while they are in flight.
	in := PredictRequest{Model: "slow", Inputs: [][]float64{make([]float64, 256)}}
	const inflight = 4
	codes := make(chan int, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/predict", in)
			codes <- resp.StatusCode
		}()
	}
	// Wait until every request is observably admitted — the enqueue path
	// counts admissions atomically — instead of hoping a fixed sleep was
	// long enough for the HTTP handlers to reach the queue.
	m, ok := s.model("slow")
	if !ok {
		t.Fatal("model not registered")
	}
	deadline := time.Now().Add(10 * time.Second)
	for m.admitted.Load() < inflight {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests admitted before deadline", m.admitted.Load(), inflight)
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()

	// After Close returns, new work is refused...
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/predict", in)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain predict: status %d, want 503", resp.StatusCode)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: status %d, want 503", hresp.StatusCode)
	}
	// ...and every admitted request completed normally.
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d, want 200", code)
		}
	}
	if err := s.Register("late", h2Net(t), numfmt.FP32); err == nil {
		t.Fatal("Register succeeded on a drained server")
	}
	s.Close() // idempotent
}

// TestDrainFlushesPartialBatch parks a request inside the batcher's
// coalescing wait (a 30s FlushInterval no test could sit out) and then
// drains: Close must flush the partial batch immediately via the queue
// close rather than wait for the flush timer, complete the in-flight
// request with 200, and reject new work with 503.
func TestDrainFlushesPartialBatch(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 32, FlushInterval: 30 * time.Second,
		QueueCap: 64, RequestTimeout: time.Minute})
	if err := s.Register("h2", h2Net(t), numfmt.FP32); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Park one item: enqueue is synchronous, so after it returns the item
	// is in the queue; once the queue length drops to zero the batcher has
	// pulled it and is (or is about to be) blocked coalescing.
	m, ok := s.model("h2")
	if !ok {
		t.Fatal("model not registered")
	}
	it := &item{ctx: context.Background(), x: make([]float64, 9), done: make(chan struct{})}
	if err := m.enqueue(it); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(m.queue) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("batcher never pulled the parked item")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	s.Close()
	closeTook := time.Since(start)
	// Close must not sit out the 30s flush timer: the queue close is what
	// wakes fillBatch. Generous slack for a loaded CI box, but far below
	// the interval.
	if closeTook > 10*time.Second {
		t.Fatalf("Close took %v: drain waited on the flush timer", closeTook)
	}
	select {
	case <-it.done:
		if it.err != nil || len(it.out) == 0 {
			t.Fatalf("parked item finished err=%v out=%v, want a result", it.err, it.out)
		}
	default:
		t.Fatal("parked item still unresolved after Close returned")
	}
	in := PredictRequest{Model: "h2", Inputs: [][]float64{make([]float64, 9)}}
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/predict", in)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain predict: status %d, want 503", resp.StatusCode)
	}
}

func TestBlobPredict(t *testing.T) {
	net := h2Net(t)
	_, ts := newTestServer(t, Config{Workers: 2}, "h2", net, numfmt.FP32)

	// A 9-feature field of 12 samples in feature-major layout, the same
	// layout errprop.Compress writes.
	const n = 12
	rng := rand.New(rand.NewSource(3))
	field := make([]float64, 9*n)
	for i := range field {
		field[i] = math.Sin(float64(i)/7) + 0.01*rng.NormFloat64()
	}
	const tol = 1e-4
	blob, err := compress.Encode("sz", field, []int{9, n}, compress.AbsLinf, tol)
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/v1/predict?model=h2&norm=linf&input_error=%g&tolerance=1e6", ts.URL, tol)
	resp, err := ts.Client().Post(url, BlobContentType, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if pr.Samples != n {
		t.Fatalf("got %d samples, want %d", pr.Samples, n)
	}
	if pr.Bound == nil || pr.Bound.TotalBound <= pr.Bound.QuantBound {
		t.Fatalf("declared input error must enter the bound: %+v", pr.Bound)
	}

	// The served outputs must match a direct forward pass over the
	// decompressed reconstruction (the values the codec guarantees).
	recon, _, err := compress.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := make([]float64, 9)
		for f := 0; f < 9; f++ {
			row[f] = recon[f*n+i]
		}
		want := net.ForwardVec(row)
		for f := range want {
			if math.Abs(pr.Outputs[i][f]-want[f]) > 1e-12 {
				t.Fatalf("blob output[%d][%d] = %v, want %v", i, f, pr.Outputs[i][f], want[f])
			}
		}
	}

	// Corrupt blobs are a 400, not a panic.
	resp2, err := ts.Client().Post(url, BlobContentType, bytes.NewReader(blob[:8]))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated blob: status %d, want 400", resp2.StatusCode)
	}
}

func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1}, "h2", h2Net(t), numfmt.FP16)

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/plan",
		PlanRequest{Model: "h2", Tol: 1e-2, Norm: "linf", QuantFraction: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var plan PlanResponse
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Format == "" || plan.TotalBound > 1e-2 {
		t.Fatalf("implausible plan: %+v", plan)
	}
	if plan.InputTolLinf == nil || *plan.InputTolLinf <= 0 {
		t.Fatalf("plan must grant a positive input tolerance: %+v", plan)
	}

	// The planner's own validation errors surface as 400s.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/plan", PlanRequest{Model: "h2", Tol: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative tolerance: status %d: %s", resp.StatusCode, body)
	}
}

func TestMetricsReconcile(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueCap: 256}, "h2", h2Net(t), numfmt.FP32)

	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	var sentOK atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perClient; i++ {
				row := make([]float64, 9)
				for f := range row {
					row[f] = rng.NormFloat64()
				}
				resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/predict",
					PredictRequest{Model: "h2", Inputs: [][]float64{row}})
				if resp.StatusCode == http.StatusOK {
					sentOK.Add(1)
				}
			}
		}(int64(c + 1))
	}
	wg.Wait()

	snap := s.Metrics()
	total := int64(clients * perClient)
	if snap.Requests != total {
		t.Fatalf("requests_total %d != client-side %d", snap.Requests, total)
	}
	if snap.OK != sentOK.Load() {
		t.Fatalf("ok_total %d != client-side 200s %d", snap.OK, sentOK.Load())
	}
	if got := snap.OK + snap.Rejected + snap.TimedOut + snap.Failed; got != snap.Requests {
		t.Fatalf("outcome counters %d do not sum to requests_total %d", got, snap.Requests)
	}
	if snap.Samples != snap.OK { // one sample per request here
		t.Fatalf("samples_total %d != ok_total %d", snap.Samples, snap.OK)
	}
	if snap.Batches == 0 || snap.Batches > snap.Samples {
		t.Fatalf("implausible batches_total %d for %d samples", snap.Batches, snap.Samples)
	}
	ms, ok := snap.Models["h2"]
	if !ok || ms.Requests != snap.OK || ms.Samples != snap.Samples {
		t.Fatalf("per-model counters diverge: %+v vs ok=%d samples=%d", ms, snap.OK, snap.Samples)
	}
	if snap.LatencyP50ms <= 0 || snap.LatencyP99ms < snap.LatencyP50ms {
		t.Fatalf("implausible latency percentiles: p50=%v p99=%v", snap.LatencyP50ms, snap.LatencyP99ms)
	}

	// The /metrics endpoint serves the same snapshot shape.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Requests != snap.Requests {
		t.Fatalf("/metrics requests_total %d != snapshot %d", wire.Requests, snap.Requests)
	}
}

func TestHealthzAndModels(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1}, "h2", h2Net(t), numfmt.BF16)
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h struct {
		Status string   `json:"status"`
		Models []string `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Models) != 1 || h.Models[0] != "h2" {
		t.Fatalf("healthz payload: %+v", h)
	}

	mresp, err := ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var models map[string]ModelStats
	if err := json.NewDecoder(mresp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	st, ok := models["h2"]
	if !ok || st.Format != "bf16" || st.InDim != 9 || st.OutDim != 9 || st.QuantBound <= 0 {
		t.Fatalf("model stats: %+v", models)
	}
}

// TestQuantizedServingMatchesQuantizedNet pins the serving path to
// quant.Quantize semantics: replicas must compute exactly what the
// quantized copy computes, not the original.
func TestQuantizedServingMatchesQuantizedNet(t *testing.T) {
	net := h2Net(t)
	_, ts := newTestServer(t, Config{Workers: 2}, "h2", net, numfmt.FP16)

	qnet, err := quant.Quantize(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, 9)
	for i := range row {
		row[i] = 0.3 * float64(i)
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/predict", PredictRequest{Model: "h2", Inputs: [][]float64{row}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	want := qnet.ForwardVec(row)
	for f := range want {
		if math.Abs(pr.Outputs[0][f]-want[f]) > 1e-12 {
			t.Fatalf("quantized serving output[%d] = %v, want %v", f, pr.Outputs[0][f], want[f])
		}
	}
}
