package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/detrand"
	"github.com/scidata/errprop/internal/faultinject"
	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/numfmt"
)

// TestBlobCorruptionAlways400 drives every fault injector over a valid
// blob body: each corrupted request must come back as a 400 carrying a
// JSON error detail — never a 500, and never a 200 computed over bytes
// the checksums should have rejected.
func TestBlobCorruptionAlways400(t *testing.T) {
	net := h2Net(t)
	_, ts := newTestServer(t, Config{Workers: 1}, "h2", net, numfmt.FP32)

	const n = 8
	field := make([]float64, 9*n)
	for i := range field {
		field[i] = math.Sin(float64(i)/5) + 0.2*math.Cos(float64(i)/3)
	}
	blob, err := compress.Encode("sz", field, []int{9, n}, compress.AbsLinf, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/predict?model=h2"

	// Sanity: the pristine blob is accepted.
	resp, err := ts.Client().Post(url, BlobContentType, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pristine blob rejected with %d", resp.StatusCode)
	}

	applied, integrityDetails := 0, 0
	for _, inj := range faultinject.All() {
		for seed := uint64(0); seed < 8; seed++ {
			rng := detrand.New(4000 + seed)
			bad, desc := inj.Apply(blob, rng)
			if bad == nil {
				continue
			}
			applied++
			resp, err := ts.Client().Post(url, BlobContentType, bytes.NewReader(bad))
			if err != nil {
				t.Fatal(err)
			}
			var e struct {
				Error string `json:"error"`
			}
			decErr := json.NewDecoder(resp.Body).Decode(&e)
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				t.Fatalf("%s/%s: corrupt blob returned %d, must be a client error", inj.Name(), desc, resp.StatusCode)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s/%s: corrupt blob returned %d, want 400", inj.Name(), desc, resp.StatusCode)
			}
			if decErr != nil || e.Error == "" {
				t.Fatalf("%s/%s: 400 without a JSON error detail (decode err %v)", inj.Name(), desc, decErr)
			}
			if strings.Contains(e.Error, "integrity check") {
				integrityDetails++
			}
		}
	}
	if applied < 20 {
		t.Fatalf("only %d corruptions applied — injector coverage collapsed", applied)
	}
	if integrityDetails == 0 {
		t.Fatal("no rejection ever carried the integrity-check detail")
	}
}

// TestModelsReportChecksum: /v1/models exposes each model's payload
// checksum, matching an independent serialization of the same network.
func TestModelsReportChecksum(t *testing.T) {
	net := h2Net(t)
	_, ts := newTestServer(t, Config{Workers: 1}, "h2", net, numfmt.FP16)

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	want := integrity.ChecksumString(integrity.Checksum(buf.Bytes()))

	resp, err := ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var models map[string]ModelStats
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	st, ok := models["h2"]
	if !ok {
		t.Fatalf("model missing from /v1/models: %+v", models)
	}
	if !strings.HasPrefix(st.Checksum, "crc32c:") {
		t.Fatalf("checksum %q not in crc32c:xxxxxxxx form", st.Checksum)
	}
	if st.Checksum != want {
		t.Fatalf("reported checksum %q != serialized-form checksum %q", st.Checksum, want)
	}
}
