package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/scidata/errprop/internal/numfmt"
)

// getHealth fetches /healthz and decodes the Health body, returning the
// status code alongside it.
func getHealth(t *testing.T, ts *httptest.Server) (int, Health) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decoding healthz body: %v", err)
	}
	return resp.StatusCode, h
}

// TestHealthzReadiness walks /healthz through the server's life:
// alive-but-not-ready before any model registers, ready after, and
// alive-draining-not-ready once Close starts — the liveness/readiness
// distinction a routing tier keys off.
func TestHealthzReadiness(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Liveness without readiness: no model yet.
	code, h := getHealth(t, ts)
	if code != http.StatusOK {
		t.Fatalf("empty-server healthz: status %d, want 200 (alive)", code)
	}
	if h.Ready || h.Status != "ok" || len(h.Models) != 0 {
		t.Fatalf("empty-server healthz: %+v, want ready=false status=ok no models", h)
	}

	if err := s.Register("h2", h2Net(t), numfmt.FP32); err != nil {
		t.Fatal(err)
	}
	code, h = getHealth(t, ts)
	if code != http.StatusOK || !h.Ready || h.Draining {
		t.Fatalf("registered healthz: code %d %+v, want 200 ready=true", code, h)
	}
	if len(h.Models) != 1 || h.Models[0] != "h2" {
		t.Fatalf("registered healthz models: %+v", h.Models)
	}
	if h.QueueDepth != 0 {
		t.Fatalf("idle queue depth %d, want 0", h.QueueDepth)
	}

	s.Close()
	code, h = getHealth(t, ts)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", code)
	}
	if h.Ready || !h.Draining || h.Status != "draining" {
		t.Fatalf("draining healthz: %+v, want ready=false draining=true", h)
	}
	// Drained servers still advertise what they served, so a rolling
	// restart's probe can keep the model map warm.
	if len(h.Models) != 1 || h.Models[0] != "h2" {
		t.Fatalf("draining healthz models: %+v", h.Models)
	}
}

// TestAll503ShapesCarryRetryAfter pins the contract that every 503 the
// server can emit — queue-full predict, draining predict, draining
// healthz — carries a Retry-After hint and a JSON body. A bare 503
// anywhere would strand clients (and the gateway's backoff floor)
// without a schedule.
func TestAll503ShapesCarryRetryAfter(t *testing.T) {
	check := func(t *testing.T, resp *http.Response, wantRetryAfter string) {
		t.Helper()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != wantRetryAfter {
			t.Fatalf("Retry-After %q, want %q", got, wantRetryAfter)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type %q, want application/json", ct)
		}
	}

	t.Run("queue-full predict", func(t *testing.T) {
		// One slow worker, 1-deep queue, a burst: some request must see the
		// admission 503.
		_, ts := newTestServer(t, Config{Workers: 1, MaxBatch: 1, QueueCap: 1, RetryAfter: 3 * time.Second},
			"slow", slowNet(t), numfmt.FP32)
		in := PredictRequest{Model: "slow", Inputs: [][]float64{make([]float64, 256)}}
		// Generous deadline: the race detector stretches each slow
		// forward by an order of magnitude, and one round of 5 in-flight
		// requests drains serially through the single worker.
		deadline := time.Now().Add(2 * time.Minute)
		for {
			// 5 concurrent requests against capacity 2 (1 in the worker,
			// 1 queued): some request must see the admission 503. Inspect
			// every response — which request draws the 503 is up to the
			// scheduler.
			resps := make(chan *http.Response, 5)
			for i := 0; i < 5; i++ {
				go func() {
					resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/predict", in)
					resps <- resp
				}()
			}
			var rejected *http.Response
			for i := 0; i < 5; i++ {
				if resp := <-resps; resp.StatusCode == http.StatusServiceUnavailable {
					rejected = resp
				}
			}
			if rejected != nil {
				check(t, rejected, "3")
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("never provoked a queue-full 503")
			}
		}
	})

	t.Run("draining predict", func(t *testing.T) {
		s, ts := newTestServer(t, Config{Workers: 1, RetryAfter: 2 * time.Second}, "h2", h2Net(t), numfmt.FP32)
		s.Close()
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/predict",
			PredictRequest{Model: "h2", Inputs: [][]float64{make([]float64, 9)}})
		check(t, resp, "2")
	})

	t.Run("draining healthz", func(t *testing.T) {
		s, ts := newTestServer(t, Config{Workers: 1, RetryAfter: 2 * time.Second}, "h2", h2Net(t), numfmt.FP32)
		s.Close()
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		check(t, resp, "2")
	})
}
