package serve

import (
	"time"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/tensor"
)

// batchLoop is the model's dynamic micro-batcher: it blocks for the
// first queued item, then keeps accepting items until the batch reaches
// maxBatch or flush elapses — whichever comes first — and hands the
// batch to the worker pool. The hand-off channel is unbuffered, so when
// every worker is busy the batcher stalls, the admission queue fills,
// and enqueue starts returning ErrBusy: backpressure propagates to the
// client as 503 instead of unbounded memory growth.
func (m *model) batchLoop(maxBatch int, flush time.Duration) {
	defer func() {
		close(m.work)
		m.wg.Done()
	}()
	timer := time.NewTimer(flush)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-m.queue
		if !ok {
			return
		}
		batch := m.fillBatch(first, timer, maxBatch, flush)
		m.work <- batch
	}
}

// fillBatch grows a batch from its first item until size or deadline.
// With maxBatch == 1 it returns immediately: batch-size-1 serving pays
// no coalescing latency.
func (m *model) fillBatch(first *item, timer *time.Timer, maxBatch int, flush time.Duration) []*item {
	batch := append(make([]*item, 0, maxBatch), first)
	if maxBatch == 1 {
		return batch
	}
	timer.Reset(flush)
	defer func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}()
	for len(batch) < maxBatch {
		select {
		case it, ok := <-m.queue:
			if !ok {
				return batch
			}
			batch = append(batch, it)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// workLoop runs batches on this worker's private compiled inference
// engine until the batcher closes the work channel (drain). The input
// matrix is worker-owned and reused across batches (the pack loop
// overwrites every entry), so the steady-state forward pass allocates
// only the per-item result slices.
func (m *model) workLoop(eng *nn.Engine) {
	defer m.wg.Done()
	var in *tensor.Matrix
	for batch := range m.work {
		in = m.runBatch(eng, in, batch)
	}
}

// runBatch executes one micro-batch: expired items are skipped (their
// waiters already gave up), the rest are packed into the worker's
// reusable (features x batch) matrix for a single engine forward pass,
// and each result column is copied out to its item (the engine owns the
// output matrix only until its next Forward).
func (m *model) runBatch(eng *nn.Engine, in *tensor.Matrix, batch []*item) *tensor.Matrix {
	live := make([]*item, 0, len(batch))
	for _, it := range batch {
		if it.ctx != nil && it.ctx.Err() != nil {
			it.err = it.ctx.Err()
			close(it.done)
			continue
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return in
	}
	k := len(live)
	in = tensor.EnsureMatrix(in, m.inDim, k)
	for i, it := range live {
		for f := 0; f < m.inDim; f++ {
			in.Data[f*k+i] = it.x[f]
		}
	}
	y := eng.Forward(in)
	for i, it := range live {
		out := make([]float64, y.Rows)
		for f := 0; f < y.Rows; f++ {
			out[f] = y.Data[f*k+i]
		}
		it.out = out
		close(it.done)
	}
	m.srv.metrics.batches.Add(1)
	m.srv.metrics.samples.Add(int64(k))
	m.srv.metrics.batchSize.observe(float64(k))
	return in
}
