package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/numfmt"
)

// BlobContentType marks a request body holding a self-describing
// compressed container (see internal/compress): clients compress their
// input block under the tolerance granted by /v1/plan and POST the blob
// directly.
const BlobContentType = "application/x-errprop-blob"

// PredictRequest is the JSON body of POST /v1/predict.
type PredictRequest struct {
	// Model names a registered model.
	Model string `json:"model"`
	// Inputs holds one row per sample, each of the model's input width.
	Inputs [][]float64 `json:"inputs"`
	// Tolerance, when > 0, is the request's QoI error budget: the
	// predicted bound (quantization + declared input error) must fit or
	// the request is rejected with 422.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Norm states the tolerance's norm: "linf" (default) or "l2".
	Norm string `json:"norm,omitempty"`
	// InputError declares the inputs' reconstruction error (same norm),
	// e.g. the compression tolerance the inputs were encoded with.
	InputError float64 `json:"input_error,omitempty"`
}

// BoundInfo reports the error contract evaluated for a request.
type BoundInfo struct {
	Format     string  `json:"format"`
	Norm       string  `json:"norm"`
	QuantBound float64 `json:"quant_bound"`
	TotalBound float64 `json:"total_bound"`
	Tolerance  float64 `json:"tolerance,omitempty"`
}

// PredictResponse is the JSON body of a successful predict.
type PredictResponse struct {
	Model   string      `json:"model"`
	Samples int         `json:"samples"`
	Outputs [][]float64 `json:"outputs"`
	Bound   *BoundInfo  `json:"bound,omitempty"`
}

// PlanRequest is the JSON body of POST /v1/plan.
type PlanRequest struct {
	Model string  `json:"model"`
	Tol   float64 `json:"tol"`
	Norm  string  `json:"norm,omitempty"`
	// QuantFraction defaults to 0.5 when zero.
	QuantFraction float64  `json:"quant_fraction,omitempty"`
	Conservative  bool     `json:"conservative,omitempty"`
	Formats       []string `json:"formats,omitempty"`
}

// PlanResponse mirrors core.Plan; infinite input tolerances (a zero
// Lipschitz product) are reported as null.
type PlanResponse struct {
	Model          string   `json:"model"`
	Norm           string   `json:"norm"`
	Format         string   `json:"format"`
	QuantBound     float64  `json:"quant_bound"`
	CompressBudget float64  `json:"compress_budget"`
	InputTolL2     *float64 `json:"input_tol_l2"`
	InputTolLinf   *float64 `json:"input_tol_linf"`
	TotalBound     float64  `json:"total_bound"`
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// json.Encoder.Encode to an http.ResponseWriter: a failure means the
	// client hung up mid-response; there is nobody left to report it to.
	//lint:ignore droppederr response-write failure, not a codec bound; the client is gone
	_ = enc.Encode(v)
}

// setRetryAfter stamps the client backoff hint every 503 this server
// emits must carry — queue-full, drain-rejected predicts, and the
// draining /healthz alike — so a gateway or client never has to guess
// whether backing off is wanted.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	secs := int(math.Ceil(s.cfg.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	if status == http.StatusServiceUnavailable {
		s.setRetryAfter(w)
	}
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Health is the GET /healthz body. Liveness and readiness are distinct:
// any well-formed response means the process is alive, while Ready
// means it will accept a predict right now — false while draining and
// before the first model registers. A routing tier stops sending
// traffic the moment Ready goes false, *before* requests start
// bouncing off ErrDraining.
type Health struct {
	// Status is "ok" or "draining".
	Status string `json:"status"`
	// Ready means requests routed here now will be admitted.
	Ready bool `json:"ready"`
	// Draining means Close has started: alive, finishing in-flight work,
	// accepting nothing new.
	Draining bool `json:"draining"`
	// QueueDepth is the summed admission-queue depth across models — a
	// load signal for probes that want to route around a backlogged
	// backend before it starts shedding.
	QueueDepth int `json:"queue_depth"`
	// Models lists registered model names, sorted.
	Models []string `json:"models"`
}

// Health snapshots the server's liveness/readiness state.
func (s *Server) Health() Health {
	models := s.Models()
	draining := s.draining.Load()
	h := Health{
		Status:     "ok",
		Ready:      !draining && len(models) > 0,
		Draining:   draining,
		QueueDepth: s.QueueDepth(),
		Models:     models,
	}
	if draining {
		h.Status = "draining"
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	if h.Draining {
		s.setRetryAfter(w)
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	snap := s.Metrics()
	writeJSON(w, http.StatusOK, snap.Models)
}

// parseNorm maps the wire name to a core.Norm ("" defaults to linf).
func parseNorm(name string) (core.Norm, error) {
	switch name {
	case "", "linf":
		return core.NormLinf, nil
	case "l2":
		return core.NormL2, nil
	}
	return 0, fmt.Errorf("unknown norm %q (want \"linf\" or \"l2\")", name)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	if s.draining.Load() {
		s.metrics.rejected.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	start := time.Now()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

	var req PredictRequest
	if r.Header.Get("Content-Type") == BlobContentType {
		if err := s.decodeBlobRequest(r, &req); err != nil {
			s.metrics.failed.Add(1)
			// Checksum/framing failures are the client's bytes being bad, not
			// a server fault: always a 400 with the integrity detail, never a
			// 500 and never a prediction on corrupt input.
			if integrity.IsIntegrityError(err) {
				s.writeError(w, http.StatusBadRequest, "blob request: payload failed integrity check: %v", err)
				return
			}
			s.writeError(w, http.StatusBadRequest, "blob request: %v", err)
			return
		}
	} else {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.metrics.failed.Add(1)
			s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
	}

	m, ok := s.model(req.Model)
	if !ok {
		s.metrics.failed.Add(1)
		s.writeError(w, http.StatusNotFound, "unknown model %q", req.Model)
		return
	}
	if len(req.Inputs) == 0 {
		s.metrics.failed.Add(1)
		s.writeError(w, http.StatusBadRequest, "no inputs")
		return
	}
	if len(req.Inputs) > s.cfg.QueueCap {
		s.metrics.failed.Add(1)
		s.writeError(w, http.StatusRequestEntityTooLarge,
			"%d samples exceed the admission queue capacity %d; split the request", len(req.Inputs), s.cfg.QueueCap)
		return
	}
	for i, row := range req.Inputs {
		if len(row) != m.inDim {
			s.metrics.failed.Add(1)
			s.writeError(w, http.StatusBadRequest, "input %d has %d features, model %q wants %d", i, len(row), m.name, m.inDim)
			return
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				s.metrics.failed.Add(1)
				s.writeError(w, http.StatusBadRequest, "input %d contains a non-finite value; no error bound holds", i)
				return
			}
		}
	}

	norm, err := parseNorm(req.Norm)
	if err != nil {
		s.metrics.failed.Add(1)
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.InputError < 0 || math.IsNaN(req.InputError) || math.IsInf(req.InputError, 0) {
		s.metrics.failed.Add(1)
		s.writeError(w, http.StatusBadRequest, "invalid input_error %v", req.InputError)
		return
	}
	quantBound, totalBound, budgetErr := m.checkBudget(req.Tolerance, norm, req.InputError)
	bound := &BoundInfo{
		Format:     m.format.String(),
		Norm:       norm.String(),
		QuantBound: quantBound,
		TotalBound: totalBound,
		Tolerance:  req.Tolerance,
	}
	if budgetErr != nil {
		s.metrics.failed.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error": fmt.Sprintf("predicted QoI bound %.6g exceeds tolerance %.6g (%s); loosen the tolerance, lower input_error, or use /v1/plan",
				totalBound, req.Tolerance, norm),
			"bound": bound,
		})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	outs, err := m.predict(ctx, req.Inputs)
	switch {
	case err == nil:
	case errors.Is(err, ErrBusy), errors.Is(err, ErrDraining):
		s.metrics.rejected.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.metrics.timedOut.Add(1)
		s.writeError(w, http.StatusGatewayTimeout, "request timed out after %s", s.cfg.RequestTimeout)
		return
	default:
		s.metrics.failed.Add(1)
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	s.metrics.ok.Add(1)
	s.metrics.latency.observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, PredictResponse{
		Model:   m.name,
		Samples: len(outs),
		Outputs: outs,
		Bound:   bound,
	})
}

// decodeBlobRequest turns a compressed-container body into a
// PredictRequest: the container's grid dims give the sample layout
// (dims[0] = feature count, remaining dims = samples, feature-major as
// written by errprop.Compress), and the request parameters ride in the
// query string (model, tolerance, norm, input_error).
func (s *Server) decodeBlobRequest(r *http.Request, req *PredictRequest) error {
	blob, err := io.ReadAll(r.Body)
	if err != nil {
		return fmt.Errorf("reading body: %w", err)
	}
	data, block, err := compress.Decode(blob)
	if err != nil {
		return fmt.Errorf("decoding container: %w", err)
	}
	dims := block.Dims
	if len(dims) == 0 {
		return fmt.Errorf("container has no dims")
	}
	features := dims[0]
	n := 1
	for _, d := range dims[1:] {
		n *= d
	}
	if features <= 0 || n <= 0 || features*n != len(data) {
		return fmt.Errorf("container dims %v inconsistent with %d values", dims, len(data))
	}
	q := r.URL.Query()
	req.Model = q.Get("model")
	req.Norm = q.Get("norm")
	for _, p := range []struct {
		key string
		dst *float64
	}{{"tolerance", &req.Tolerance}, {"input_error", &req.InputError}} {
		if raw := q.Get(p.key); raw != "" {
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return fmt.Errorf("query %s=%q: %w", p.key, raw, err)
			}
			*p.dst = v
		}
	}
	// The container already certifies its reconstruction error: unless the
	// caller overrides it, the codec's achieved bound becomes the
	// request's input error, in the norm family of the blob's mode.
	if q.Get("input_error") == "" {
		req.InputError = compress.AbsTol(data, block.Mode, block.Tol)
		if q.Get("norm") == "" {
			switch block.Mode {
			case compress.L2, compress.RelL2:
				req.Norm = "l2"
			default:
				req.Norm = "linf"
			}
		}
	}
	req.Inputs = make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, features)
		for f := 0; f < features; f++ {
			row[f] = data[f*n+i]
		}
		req.Inputs[i] = row
	}
	return nil
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req PlanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	m, ok := s.model(req.Model)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown model %q", req.Model)
		return
	}
	norm, err := parseNorm(req.Norm)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.QuantFraction == 0 {
		req.QuantFraction = 0.5
	}
	var formats []numfmt.Format
	for _, name := range req.Formats {
		f, err := numfmt.ParseFormat(name)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		formats = append(formats, f)
	}
	plan, err := core.PlanGraphSteps(m.planRoot, m.stepsFor, core.PlanRequest{
		Tol:           req.Tol,
		Norm:          norm,
		QuantFraction: req.QuantFraction,
		Formats:       formats,
		Conservative:  req.Conservative,
	})
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "planning: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, PlanResponse{
		Model:          m.name,
		Norm:           norm.String(),
		Format:         plan.Format.String(),
		QuantBound:     plan.QuantBound,
		CompressBudget: plan.CompressBudget,
		InputTolL2:     finiteOrNil(plan.InputTolL2),
		InputTolLinf:   finiteOrNil(plan.InputTolLinf),
		TotalBound:     plan.TotalBound,
	})
}

// finiteOrNil returns nil for non-finite values so the JSON encoder
// never sees an Inf/NaN (which it cannot marshal).
func finiteOrNil(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}
