package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/numfmt"
)

// getBody fetches url and returns the exact response bytes.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestEndpointsDeterministic locks in the determinism contract for the
// read-only endpoints: with several models registered (so map iteration
// order would show if it leaked), /v1/models, /metrics and /healthz must
// return byte-identical bodies across repeated calls.
func TestEndpointsDeterministic(t *testing.T) {
	s := New(Config{})
	// Registration order deliberately differs from sorted order.
	for _, name := range []string{"zeta", "alpha", "mu", "beta", "kappa"} {
		if err := s.Register(name, h2Net(t), numfmt.FP32); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	names := s.Models()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Models() not sorted: %v", names)
	}

	for _, path := range []string{"/v1/models", "/metrics", "/healthz"} {
		first := getBody(t, ts.URL+path)
		for i := 0; i < 10; i++ {
			if got := getBody(t, ts.URL+path); string(got) != string(first) {
				t.Errorf("%s response changed between calls:\n%s\nvs\n%s", path, first, got)
				break
			}
		}
	}
}

// TestBlobInputErrorDefault: a blob request that does not declare
// input_error inherits the container's own tolerance — the codec's
// achieved bound becomes the request's input error.
func TestBlobInputErrorDefault(t *testing.T) {
	net := h2Net(t)
	_, ts := newTestServer(t, Config{Workers: 1}, "h2", net, numfmt.FP32)

	const n = 4
	field := make([]float64, 9*n)
	for i := range field {
		field[i] = math.Sin(float64(i) / 5)
	}
	const tol = 1e-4
	blob, err := compress.Encode("sz", field, []int{9, n}, compress.AbsLinf, tol)
	if err != nil {
		t.Fatal(err)
	}

	post := func(query string) *PredictResponse {
		t.Helper()
		url := fmt.Sprintf("%s/v1/predict?model=h2&tolerance=1e6%s", ts.URL, query)
		resp, err := ts.Client().Post(url, BlobContentType, bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var pr PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return &pr
	}

	implicit := post("")
	if implicit.Bound == nil || implicit.Bound.TotalBound <= implicit.Bound.QuantBound {
		t.Fatalf("container tolerance did not enter the bound: %+v", implicit.Bound)
	}
	if implicit.Bound.Norm != "linf" {
		t.Fatalf("norm should default to the blob's mode family (linf), got %q", implicit.Bound.Norm)
	}

	// Declaring the same value explicitly must give the identical bound,
	// and an explicit override must win over the container's tolerance.
	explicit := post(fmt.Sprintf("&norm=linf&input_error=%g", tol))
	if implicit.Bound.TotalBound != explicit.Bound.TotalBound {
		t.Errorf("implicit bound %v != explicit bound %v", implicit.Bound.TotalBound, explicit.Bound.TotalBound)
	}
	override := post("&norm=linf&input_error=0")
	if override.Bound.TotalBound >= implicit.Bound.TotalBound {
		t.Errorf("explicit input_error=0 should beat the container default: %v vs %v",
			override.Bound.TotalBound, implicit.Bound.TotalBound)
	}
}
