package serve

import (
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// metrics is the server's expvar-style metrics plane: lock-free atomic
// counters and fixed-bucket histograms, snapshotted on demand by
// /metrics. Everything is monotonic except the queue-depth gauge, which
// is computed at snapshot time.
type metrics struct {
	requests atomic.Int64 // predict requests received (all outcomes)
	ok       atomic.Int64 // 200s
	rejected atomic.Int64 // 503s (queue full or draining)
	timedOut atomic.Int64 // 504s (request deadline expired)
	failed   atomic.Int64 // other 4xx/5xx (bad input, unknown model, budget)

	samples atomic.Int64 // samples executed by workers
	batches atomic.Int64 // forward passes executed by workers

	batchSize *histogram // samples per executed batch
	latency   *histogram // successful request latency, seconds
}

func newMetrics() *metrics {
	return &metrics{
		batchSize: newHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256),
		latency: newHistogram(
			50e-6, 100e-6, 250e-6, 500e-6,
			1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
			1, 2.5, 5, 10,
		),
	}
}

// histogram is a fixed-bucket histogram safe for concurrent observe.
// Bucket i counts observations v <= bounds[i]; the final implicit bucket
// counts overflow.
type histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
}

// quantile returns an upper-bound estimate of the q-th quantile: the
// upper edge of the bucket holding that observation, clamped to the
// largest finite bound for the overflow bucket. Returns 0 on an empty
// histogram.
func (h *histogram) quantile(q float64) float64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			return h.bounds[i]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Bucket is one histogram bucket in a Snapshot; LE is the inclusive
// upper bound ("+Inf" for the overflow bucket).
type Bucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

func (h *histogram) buckets(scale float64) []Bucket {
	out := make([]Bucket, 0, len(h.counts))
	for i := range h.counts {
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i]*scale, 'g', -1, 64)
		}
		out = append(out, Bucket{LE: le, Count: h.counts[i].Load()})
	}
	return out
}

// ModelStats is one model's slice of the metrics plane.
type ModelStats struct {
	Format     string  `json:"format"`
	InDim      int     `json:"in_dim"`
	OutDim     int     `json:"out_dim"`
	QuantBound float64 `json:"quant_bound"`
	// Checksum is the CRC32C of the model's serialized form
	// ("crc32c:xxxxxxxx"), computed at registration; operators compare it
	// against a known-good model file to verify which weights a replica
	// is actually serving.
	Checksum string `json:"checksum"`
	Requests int64  `json:"requests_total"`
	Samples  int64  `json:"samples_total"`
	// Admitted counts samples accepted into the queue, incremented at
	// admission — unlike Samples, which counts at completion — so
	// Admitted > Samples+QueueDepth exposes in-flight work.
	Admitted   int64 `json:"admitted_total"`
	QueueDepth int   `json:"queue_depth"`
}

// Snapshot is a point-in-time view of the metrics plane, also the JSON
// body served at /metrics.
type Snapshot struct {
	Requests int64 `json:"requests_total"`
	OK       int64 `json:"ok_total"`
	Rejected int64 `json:"rejected_total"`
	TimedOut int64 `json:"timedout_total"`
	Failed   int64 `json:"failed_total"`

	Samples    int64   `json:"samples_total"`
	Batches    int64   `json:"batches_total"`
	BatchMean  float64 `json:"batch_size_mean"`
	QueueDepth int     `json:"queue_depth"`
	Draining   bool    `json:"draining"`

	LatencyP50ms float64 `json:"latency_p50_ms"`
	LatencyP95ms float64 `json:"latency_p95_ms"`
	LatencyP99ms float64 `json:"latency_p99_ms"`

	BatchSizeHist []Bucket `json:"batch_size_hist"`
	LatencyHistMS []Bucket `json:"latency_hist_ms"`

	Models map[string]ModelStats `json:"models"`
}

// Metrics snapshots the whole metrics plane.
func (s *Server) Metrics() Snapshot {
	m := s.metrics
	snap := Snapshot{
		Requests:      m.requests.Load(),
		OK:            m.ok.Load(),
		Rejected:      m.rejected.Load(),
		TimedOut:      m.timedOut.Load(),
		Failed:        m.failed.Load(),
		Samples:       m.samples.Load(),
		Batches:       m.batches.Load(),
		Draining:      s.draining.Load(),
		LatencyP50ms:  m.latency.quantile(0.50) * 1e3,
		LatencyP95ms:  m.latency.quantile(0.95) * 1e3,
		LatencyP99ms:  m.latency.quantile(0.99) * 1e3,
		BatchSizeHist: m.batchSize.buckets(1),
		LatencyHistMS: m.latency.buckets(1e3),
		Models:        make(map[string]ModelStats),
	}
	if snap.Batches > 0 {
		snap.BatchMean = float64(snap.Samples) / float64(snap.Batches)
	}
	s.mu.RLock()
	// Range in sorted order so the QueueDepth reduction and any future
	// order-sensitive aggregation stay deterministic run to run.
	names := make([]string, 0, len(s.models))
	for name := range s.models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		md := s.models[name]
		depth := len(md.queue)
		snap.QueueDepth += depth
		snap.Models[name] = ModelStats{
			Format:     md.format.String(),
			InDim:      md.inDim,
			OutDim:     md.outDim,
			QuantBound: md.analysis.QuantizationBound(),
			Checksum:   md.checksum,
			Requests:   md.requests.Load(),
			Samples:    md.samples.Load(),
			Admitted:   md.admitted.Load(),
			QueueDepth: depth,
		}
	}
	s.mu.RUnlock()
	return snap
}
