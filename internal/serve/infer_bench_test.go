package serve

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/tensor"
)

// The compiled-inference bench trajectory (BENCH_infer.json): raw kernel
// timings of Network.Forward vs Engine.Forward (blocked/fused kernels,
// plus a 2-way-sharded engine column) on the paper's model shapes, and
// end-to-end served throughput at 64 clients on the engine-backed worker
// pool. The serve "before" number is the committed BENCH_serve.json
// baseline (recorded when workers held Network.Clone replicas), and the
// PR 5 naive-kernel engine rows are carried forward under pr5_kernels so
// speedup_vs_pr5_engine stays comparable across machines: the PR 5
// engine's cost is expressed as its recorded ratio to the legacy forward
// and re-anchored to this run's legacy timing.

// kernelStats is one model x batch timing row. Sharded columns time the
// same engine compiled with 2 lanes (bit-identical output by contract);
// on a single-core runner they document no-regression rather than
// speedup — the parallel win needs cores.
type kernelStats struct {
	Model          string  `json:"model"`
	Batch          int     `json:"batch"`
	LegacyNsPerOp  float64 `json:"legacy_ns_per_op"`
	LegacyAllocs   int64   `json:"legacy_allocs_per_op"`
	EngineNsPerOp  float64 `json:"engine_ns_per_op"`
	EngineAllocs   int64   `json:"engine_allocs_per_op"`
	ShardedNsPerOp float64 `json:"engine_sharded2_ns_per_op,omitempty"`
	ShardedAllocs  int64   `json:"engine_sharded2_allocs_per_op,omitempty"`
	SpeedupVsLegcy float64 `json:"speedup"`
	// SpeedupVsPR5 estimates this engine vs the PR 5 naive-kernel engine
	// on this machine: pr5_ratio * legacy_ns_per_op / engine_ns_per_op,
	// where pr5_ratio is the PR 5 row's engine/legacy cost ratio. Ratio
	// arithmetic, because the PR 5 absolute timings were recorded under
	// different machine load.
	SpeedupVsPR5 float64 `json:"speedup_vs_pr5_engine,omitempty"`
}

func inferBenchNet(t testing.TB, name string) *nn.Network {
	t.Helper()
	var spec *nn.Spec
	switch name {
	case "mlp":
		spec = nn.MLPSpec("bench-mlp", []int{9, 64, 64, 9}, nn.ActTanh, true)
	case "conv":
		spec = nn.ResNetSpec("bench-conv", 1, 8, 8, 4, []int{1, 1}, []int{4, 8}, nn.ActReLU, true)
	case "attn":
		// Mirrors internal/nn's benchAttnSpec: T=16 tokens, D=32 features,
		// q/k/v + score matmuls dominating, tanh fused into the block.
		spec = &nn.Spec{
			Name: "bench-attn", InputDim: 16 * 32,
			Layers: []nn.LayerSpec{
				{Type: "attention", Name: "sa", In: 16, Out: 32},
				{Type: "act", Act: nn.ActTanh},
				{Type: "dense", Name: "head", In: 16 * 32, Out: 64},
			},
		}
	default:
		t.Fatalf("unknown bench model %q", name)
	}
	net, err := spec.Build(17)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// timeKernel benchmarks one forward path via testing.Benchmark so the
// iteration count self-calibrates.
func timeKernel(f func()) (nsPerOp float64, allocsPerOp int64) {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	return float64(r.NsPerOp()), r.AllocsPerOp()
}

// TestWriteInferBenchJSON regenerates the committed inference baseline.
// Run with:
//
//	ERRPROP_INFER_BENCH_OUT=BENCH_infer.json go test ./internal/serve -run TestWriteInferBenchJSON -count=1
func TestWriteInferBenchJSON(t *testing.T) {
	out := os.Getenv("ERRPROP_INFER_BENCH_OUT")
	if out == "" {
		t.Skip("set ERRPROP_INFER_BENCH_OUT to write the inference bench trajectory")
	}

	pr5Rows, pr5 := pr5KernelBaseline(t)
	var kernels []kernelStats
	for _, model := range []string{"mlp", "conv", "attn"} {
		net := inferBenchNet(t, model)
		eng, err := nn.CompileInference(net, 64)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := nn.CompileInferenceSharded(net, 64, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{1, 16, 64} {
			x := tensor.NewMatrix(net.InputDim, batch)
			for i := range x.Data {
				x.Data[i] = float64(i%13)/13 - 0.5
			}
			// Sanity anchor before timing: the engines must be bit-identical
			// or their speed is meaningless.
			want := net.Forward(x, false)
			for _, path := range []struct {
				name string
				got  *tensor.Matrix
			}{{"engine", eng.Forward(x)}, {"sharded", sharded.Forward(x)}} {
				for i := range want.Data {
					if path.got.Data[i] != want.Data[i] {
						t.Fatalf("%s batch %d: %s output diverges from legacy forward", model, batch, path.name)
					}
				}
			}
			ks := kernelStats{Model: model, Batch: batch}
			ks.LegacyNsPerOp, ks.LegacyAllocs = timeKernel(func() { net.Forward(x, false) })
			ks.EngineNsPerOp, ks.EngineAllocs = timeKernel(func() { eng.Forward(x) })
			ks.ShardedNsPerOp, ks.ShardedAllocs = timeKernel(func() { sharded.Forward(x) })
			if ks.EngineNsPerOp > 0 {
				ks.SpeedupVsLegcy = ks.LegacyNsPerOp / ks.EngineNsPerOp
				if r, ok := pr5[kernelKey{model, batch}]; ok {
					ks.SpeedupVsPR5 = r * ks.LegacyNsPerOp / ks.EngineNsPerOp
				}
			}
			kernels = append(kernels, ks)
			t.Logf("%s batch %d: legacy %.0f ns/op (%d allocs) engine %.0f ns/op (%d allocs) sharded2 %.0f ns/op (%d allocs) vs-pr5 %.2fx",
				model, batch, ks.LegacyNsPerOp, ks.LegacyAllocs, ks.EngineNsPerOp, ks.EngineAllocs,
				ks.ShardedNsPerOp, ks.ShardedAllocs, ks.SpeedupVsPR5)
		}
	}

	// Served throughput after the engine refactor, same load shape as the
	// BENCH_serve baseline (64 clients, 150 requests each, batched at 64).
	s := benchServer(t, 64)
	after := runLoad(t, s, 64, 150)
	after.Mode = "batched"
	s.Close()

	doc := map[string]any{
		"bench":       "infer",
		"description": "Network.Forward vs compiled Engine.Forward kernel timings (testing.Benchmark) on the blocked/fused kernels, with an engine_sharded2 column (2-lane column-sharded engine, bit-identical by contract; wall-clock gains need >1 core — see gomaxprocs), plus served req/s at 64 clients on the engine-backed worker pool; serve_before is the committed BENCH_serve.json batched run at 64 clients (replica-based workers); pr5_kernels carries the PR 5 naive-kernel engine rows forward, and speedup_vs_pr5_engine re-anchors their engine/legacy cost ratio to this run's legacy timing",
		"gomaxprocs":  runtime.GOMAXPROCS(0),
		"models": map[string]string{
			"mlp":  "9-64-64-9 tanh (psn)",
			"conv": "resnet 1x8x8 -> 4 classes, blocks [1 1], channels [4 8] (psn)",
			"attn": "attention T=16 D=32 + tanh + dense head 512->64",
		},
		"kernels":     kernels,
		"pr5_kernels": pr5Rows,
		"serve_after": after,
	}
	if before, ok := serveBaselineAt64(t); ok {
		doc["serve_before"] = before
		if before.ReqPerSec > 0 {
			doc["serve_speedup_at_64"] = after.ReqPerSec / before.ReqPerSec
		}
	}

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (served %.0f req/s at 64 clients)", out, after.ReqPerSec)
}

// kernelKey identifies one model x batch bench row.
type kernelKey struct {
	Model string
	Batch int
}

// pr5Kernel is a PR 5 naive-kernel engine row, carried forward verbatim
// in every regenerated BENCH_infer.json so the blocked-kernel speedup
// keeps an anchor after the naive engine itself is gone.
type pr5Kernel struct {
	Model         string  `json:"model"`
	Batch         int     `json:"batch"`
	LegacyNsPerOp float64 `json:"legacy_ns_per_op"`
	EngineNsPerOp float64 `json:"engine_ns_per_op"`
}

// pr5KernelBaseline reads the committed BENCH_infer.json and returns the
// PR 5 engine rows plus each row's engine/legacy cost ratio. A file that
// already carries pr5_kernels (any regeneration after the blocked-kernel
// PR) yields those verbatim — the anchor never drifts; the original
// PR 5 file stores them as its top-level kernels.
func pr5KernelBaseline(t *testing.T) ([]pr5Kernel, map[kernelKey]float64) {
	t.Helper()
	ratios := make(map[kernelKey]float64)
	raw, err := os.ReadFile("../../BENCH_infer.json")
	if err != nil {
		t.Logf("no infer baseline: %v", err)
		return nil, ratios
	}
	var doc struct {
		Kernels []pr5Kernel `json:"kernels"`
		PR5     []pr5Kernel `json:"pr5_kernels"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Logf("unreadable infer baseline: %v", err)
		return nil, ratios
	}
	rows := doc.PR5
	if len(rows) == 0 {
		rows = doc.Kernels
	}
	for _, r := range rows {
		if r.LegacyNsPerOp > 0 && r.EngineNsPerOp > 0 {
			ratios[kernelKey{r.Model, r.Batch}] = r.EngineNsPerOp / r.LegacyNsPerOp
		}
	}
	return rows, ratios
}

// serveBaselineAt64 reads the committed BENCH_serve.json (relative to
// this package directory) and returns its batched 64-client run.
func serveBaselineAt64(t *testing.T) (loadStats, bool) {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Logf("no serve baseline: %v", err)
		return loadStats{}, false
	}
	var doc struct {
		Runs []loadStats `json:"runs"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Logf("unreadable serve baseline: %v", err)
		return loadStats{}, false
	}
	for _, r := range doc.Runs {
		if r.Clients == 64 && r.Mode == "batched" {
			return r, true
		}
	}
	return loadStats{}, false
}

// TestServeBenchHarnessSmoke keeps the bench harness compiling and
// executable in the ordinary test run (tiny load, no JSON output).
func TestServeBenchHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	s := New(Config{Workers: 1, MaxBatch: 8, FlushInterval: time.Millisecond,
		QueueCap: 256, RequestTimeout: 30 * time.Second})
	if err := s.Register("h2", h2Net(t), numfmt.FP32); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := runLoad(t, s, 4, 5)
	if st.OK != st.Requests {
		t.Fatalf("smoke load dropped requests: %+v", st)
	}
}
