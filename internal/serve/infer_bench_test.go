package serve

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/tensor"
)

// The compiled-inference bench trajectory (BENCH_infer.json): raw kernel
// timings of Network.Forward vs Engine.Forward on the paper's model
// shapes, plus end-to-end served throughput at 64 clients now that the
// worker pool runs on engines. The serve "before" number is the
// committed BENCH_serve.json baseline (recorded when workers held
// Network.Clone replicas), so the two files form one trajectory.

// kernelStats is one model x batch timing pair.
type kernelStats struct {
	Model          string  `json:"model"`
	Batch          int     `json:"batch"`
	LegacyNsPerOp  float64 `json:"legacy_ns_per_op"`
	LegacyAllocs   int64   `json:"legacy_allocs_per_op"`
	EngineNsPerOp  float64 `json:"engine_ns_per_op"`
	EngineAllocs   int64   `json:"engine_allocs_per_op"`
	SpeedupVsLegcy float64 `json:"speedup"`
}

func inferBenchNet(t testing.TB, name string) *nn.Network {
	t.Helper()
	var spec *nn.Spec
	switch name {
	case "mlp":
		spec = nn.MLPSpec("bench-mlp", []int{9, 64, 64, 9}, nn.ActTanh, true)
	case "conv":
		spec = nn.ResNetSpec("bench-conv", 1, 8, 8, 4, []int{1, 1}, []int{4, 8}, nn.ActReLU, true)
	default:
		t.Fatalf("unknown bench model %q", name)
	}
	net, err := spec.Build(17)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// timeKernel benchmarks one forward path via testing.Benchmark so the
// iteration count self-calibrates.
func timeKernel(f func()) (nsPerOp float64, allocsPerOp int64) {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	return float64(r.NsPerOp()), r.AllocsPerOp()
}

// TestWriteInferBenchJSON regenerates the committed inference baseline.
// Run with:
//
//	ERRPROP_INFER_BENCH_OUT=BENCH_infer.json go test ./internal/serve -run TestWriteInferBenchJSON -count=1
func TestWriteInferBenchJSON(t *testing.T) {
	out := os.Getenv("ERRPROP_INFER_BENCH_OUT")
	if out == "" {
		t.Skip("set ERRPROP_INFER_BENCH_OUT to write the inference bench trajectory")
	}

	var kernels []kernelStats
	for _, model := range []string{"mlp", "conv"} {
		net := inferBenchNet(t, model)
		eng, err := nn.CompileInference(net, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{1, 16, 64} {
			x := tensor.NewMatrix(net.InputDim, batch)
			for i := range x.Data {
				x.Data[i] = float64(i%13)/13 - 0.5
			}
			// Sanity anchor before timing: the engine must be bit-identical
			// or its speed is meaningless.
			want := net.Forward(x, false)
			got := eng.Forward(x)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s batch %d: engine output diverges from legacy forward", model, batch)
				}
			}
			ks := kernelStats{Model: model, Batch: batch}
			ks.LegacyNsPerOp, ks.LegacyAllocs = timeKernel(func() { net.Forward(x, false) })
			ks.EngineNsPerOp, ks.EngineAllocs = timeKernel(func() { eng.Forward(x) })
			if ks.EngineNsPerOp > 0 {
				ks.SpeedupVsLegcy = ks.LegacyNsPerOp / ks.EngineNsPerOp
			}
			kernels = append(kernels, ks)
			t.Logf("%s batch %d: legacy %.0f ns/op (%d allocs) engine %.0f ns/op (%d allocs)",
				model, batch, ks.LegacyNsPerOp, ks.LegacyAllocs, ks.EngineNsPerOp, ks.EngineAllocs)
		}
	}

	// Served throughput after the engine refactor, same load shape as the
	// BENCH_serve baseline (64 clients, 150 requests each, batched at 64).
	s := benchServer(t, 64)
	after := runLoad(t, s, 64, 150)
	after.Mode = "batched"
	s.Close()

	doc := map[string]any{
		"bench":       "infer",
		"description": "Network.Forward vs compiled Engine.Forward kernel timings (testing.Benchmark), plus served req/s at 64 clients on the engine-backed worker pool; serve_before is the committed BENCH_serve.json batched run at 64 clients (replica-based workers)",
		"models": map[string]string{
			"mlp":  "9-64-64-9 tanh (psn)",
			"conv": "resnet 1x8x8 -> 4 classes, blocks [1 1], channels [4 8] (psn)",
		},
		"kernels":     kernels,
		"serve_after": after,
	}
	if before, ok := serveBaselineAt64(t); ok {
		doc["serve_before"] = before
		if before.ReqPerSec > 0 {
			doc["serve_speedup_at_64"] = after.ReqPerSec / before.ReqPerSec
		}
	}

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (served %.0f req/s at 64 clients)", out, after.ReqPerSec)
}

// serveBaselineAt64 reads the committed BENCH_serve.json (relative to
// this package directory) and returns its batched 64-client run.
func serveBaselineAt64(t *testing.T) (loadStats, bool) {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Logf("no serve baseline: %v", err)
		return loadStats{}, false
	}
	var doc struct {
		Runs []loadStats `json:"runs"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Logf("unreadable serve baseline: %v", err)
		return loadStats{}, false
	}
	for _, r := range doc.Runs {
		if r.Clients == 64 && r.Mode == "batched" {
			return r, true
		}
	}
	return loadStats{}, false
}

// TestServeBenchHarnessSmoke keeps the bench harness compiling and
// executable in the ordinary test run (tiny load, no JSON output).
func TestServeBenchHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	s := New(Config{Workers: 1, MaxBatch: 8, FlushInterval: time.Millisecond,
		QueueCap: 256, RequestTimeout: 30 * time.Second})
	if err := s.Register("h2", h2Net(t), numfmt.FP32); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := runLoad(t, s, 4, 5)
	if st.OK != st.Requests {
		t.Fatalf("smoke load dropped requests: %+v", st)
	}
}
