package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/scidata/errprop/internal/artifact"
	"github.com/scidata/errprop/internal/gateway"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// The self-contained load generator: N concurrent clients hammer a real
// httptest.Server over HTTP with single-sample predict requests, the
// production shape micro-batching exists for. Results feed the bench
// trajectory (BENCH_serve.json) and the batched-vs-single acceptance
// test below.

type loadStats struct {
	Clients   int     `json:"clients"`
	Mode      string  `json:"mode"`
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	Rejected  int     `json:"rejected"`
	Other     int     `json:"other"`
	Seconds   float64 `json:"seconds"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50ms     float64 `json:"p50_ms"`
	P95ms     float64 `json:"p95_ms"`
	P99ms     float64 `json:"p99_ms"`
	MeanBatch float64 `json:"mean_batch"`
}

// runLoad drives the handler with clients goroutines issuing perClient
// single-sample requests each and reports client-side throughput and
// latency percentiles.
func runLoad(tb testing.TB, s *Server, clients, perClient int) loadStats {
	tb.Helper()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	before := s.Metrics()
	st := runLoadURL(tb, ts.URL, clients, perClient)
	after := s.Metrics()
	if batches := after.Batches - before.Batches; batches > 0 {
		st.MeanBatch = float64(after.Samples-before.Samples) / float64(batches)
	}
	return st
}

// runLoadURL is runLoad against an arbitrary /v1/predict base URL — the
// same generator pointed at a gateway instead of a single server (no
// batch accounting: the gateway has no batcher of its own).
func runLoadURL(tb testing.TB, base string, clients, perClient int) loadStats {
	tb.Helper()
	transport := &http.Transport{MaxIdleConns: clients * 2, MaxIdleConnsPerHost: clients * 2}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()
	type outcome struct {
		code int
		dur  time.Duration
	}
	outcomes := make([][]outcome, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c + 1)))
			outs := make([]outcome, 0, perClient)
			for i := 0; i < perClient; i++ {
				row := make([]float64, 9)
				for f := range row {
					row[f] = rng.NormFloat64()
				}
				body, err := json.Marshal(PredictRequest{Model: "h2", Inputs: [][]float64{row}})
				if err != nil {
					tb.Error(err)
					return
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					tb.Error(err)
					return
				}
				var sink bytes.Buffer
				_, _ = sink.ReadFrom(resp.Body)
				resp.Body.Close()
				outs = append(outs, outcome{code: resp.StatusCode, dur: time.Since(t0)})
			}
			outcomes[c] = outs
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := loadStats{Clients: clients, Seconds: elapsed.Seconds()}
	var durs []time.Duration
	for _, outs := range outcomes {
		for _, o := range outs {
			st.Requests++
			switch o.code {
			case http.StatusOK:
				st.OK++
				durs = append(durs, o.dur)
			case http.StatusServiceUnavailable:
				st.Rejected++
			default:
				st.Other++
			}
		}
	}
	st.ReqPerSec = float64(st.OK) / elapsed.Seconds()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(q float64) float64 {
		if len(durs) == 0 {
			return 0
		}
		idx := int(q * float64(len(durs)-1))
		return float64(durs[idx]) / float64(time.Millisecond)
	}
	st.P50ms, st.P95ms, st.P99ms = pct(0.50), pct(0.95), pct(0.99)
	return st
}

// benchFleet boots n benchServer backends on real listeners behind a
// gateway and returns the gateway's base URL.
func benchFleet(tb testing.TB, n, maxBatch int) string {
	tb.Helper()
	list := make([]gateway.Backend, n)
	for i := 0; i < n; i++ {
		s := benchServer(tb, maxBatch)
		tb.Cleanup(s.Close)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		hsrv := &http.Server{Handler: s.Handler()}
		go hsrv.Serve(ln) //lint:ignore droppederr Serve returns ErrServerClosed on Close; the bench owns the lifecycle
		tb.Cleanup(func() {
			//lint:ignore droppederr shutdown of a bench server
			_ = hsrv.Close()
		})
		list[i] = gateway.Backend{Name: fmt.Sprintf("bench-%d", i), Addr: ln.Addr().String(), Weight: 1}
	}
	g := gateway.New(gateway.Config{ProbeInterval: 20 * time.Millisecond, Seed: 1})
	tb.Cleanup(g.Close)
	if err := g.SetBackends(list); err != nil {
		tb.Fatal(err)
	}
	if err := g.WaitReady("h2", 10*time.Second); err != nil {
		tb.Fatal(err)
	}
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	ghsrv := &http.Server{Handler: g.Handler()}
	go ghsrv.Serve(gln) //lint:ignore droppederr Serve returns ErrServerClosed on Close; the bench owns the lifecycle
	tb.Cleanup(func() {
		//lint:ignore droppederr shutdown of a bench server
		_ = ghsrv.Close()
	})
	return "http://" + gln.Addr().String()
}

func benchServer(tb testing.TB, maxBatch int) *Server {
	tb.Helper()
	s := New(Config{
		Workers:        2,
		MaxBatch:       maxBatch,
		FlushInterval:  time.Millisecond,
		QueueCap:       4096,
		RequestTimeout: 30 * time.Second,
	})
	if err := s.Register("h2", h2Net(tb), numfmt.FP32); err != nil {
		tb.Fatal(err)
	}
	return s
}

// TestMicroBatchingBeatsSingleAt64Clients is the subsystem's acceptance
// gate: at 64 concurrent clients on the same worker count, dynamic
// micro-batching must serve strictly more requests per second than
// batch-size-1 serving, with every admitted request answered (zero
// drops) and server-side counters reconciling with the client's.
func TestMicroBatchingBeatsSingleAt64Clients(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	const clients, perClient = 64, 40

	// A heavier hidden size than h2Net keeps the forward pass
	// compute-bound on the blocked kernels: batching's advantage is
	// weight-traversal amortization, which only shows when weight traffic
	// is a measurable share of request cost (with a 50-wide net the HTTP
	// stack dominates and the comparison is noise).
	loadNet, err := nn.MLPSpec("h2", []int{9, 512, 512, 9}, nn.ActTanh, false).Build(7)
	if err != nil {
		t.Fatal(err)
	}
	single := New(Config{Workers: 2, MaxBatch: 1, QueueCap: 4096, RequestTimeout: 30 * time.Second})
	if err := single.Register("h2", loadNet, numfmt.FP32); err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	batched := New(Config{Workers: 2, MaxBatch: 64, FlushInterval: time.Millisecond,
		QueueCap: 4096, RequestTimeout: 30 * time.Second})
	if err := batched.Register("h2", loadNet, numfmt.FP32); err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	stSingle := runLoad(t, single, clients, perClient)
	stBatched := runLoad(t, batched, clients, perClient)
	t.Logf("single:  %+v", stSingle)
	t.Logf("batched: %+v", stBatched)

	for _, st := range []loadStats{stSingle, stBatched} {
		if st.OK != st.Requests || st.Rejected != 0 || st.Other != 0 {
			t.Fatalf("dropped/failed requests under an unconstrained queue: %+v", st)
		}
	}
	if stBatched.MeanBatch <= 1.01 {
		t.Fatalf("micro-batcher never coalesced (mean batch %.2f); contention should produce multi-sample batches", stBatched.MeanBatch)
	}
	if stBatched.ReqPerSec <= stSingle.ReqPerSec {
		t.Fatalf("micro-batching (%.0f req/s) not faster than batch-size-1 (%.0f req/s)",
			stBatched.ReqPerSec, stSingle.ReqPerSec)
	}

	// Server-side accounting must reconcile with the client side.
	snap := batched.Metrics()
	if snap.Requests != int64(stBatched.Requests) || snap.OK != int64(stBatched.OK) {
		t.Fatalf("metrics (req=%d ok=%d) do not reconcile with client (%d/%d)",
			snap.Requests, snap.OK, stBatched.Requests, stBatched.OK)
	}
}

// coldStartStat is one cold-start measurement row: boot a server with
// three models from durable bytes and time until the first /v1/predict
// 200 comes back.
type coldStartStat struct {
	Mode             string  `json:"mode"`
	Models           int     `json:"models"`
	Format           string  `json:"format"`
	TimeToFirst200Ms float64 `json:"time_to_first_200_ms"`
}

// coldStartModels builds the three-model inventory the cold-start rows
// boot: realistic widths so compile-from-spec has visible work to do.
func coldStartModels(tb testing.TB) map[string]*nn.Network {
	tb.Helper()
	nets := map[string]*nn.Network{}
	for name, dims := range map[string][]int{
		"m0": {9, 50, 50, 9},
		"m1": {9, 256, 256, 9},
		"m2": {16, 512, 256, 4},
	} {
		net, err := nn.MLPSpec(name, dims, nn.ActTanh, false).Build(7)
		if err != nil {
			tb.Fatal(err)
		}
		nets[name] = net
	}
	return nets
}

// timeToFirst200 measures one cold start: from file bytes on disk to
// the first successful prediction, via either the artifact path
// (decode + bind, no recompilation) or the spec path (load + quantize +
// analyze + compile). The median of three runs smooths scheduler noise.
func timeToFirst200(tb testing.TB, files map[string]string, fromArtifact bool, f numfmt.Format) float64 {
	tb.Helper()
	one := func() float64 {
		start := time.Now()
		s := New(Config{Workers: 2, MaxBatch: 64, FlushInterval: time.Millisecond,
			QueueCap: 4096, RequestTimeout: 30 * time.Second})
		defer s.Close()
		for name, path := range files {
			raw, err := os.ReadFile(path)
			if err != nil {
				tb.Fatal(err)
			}
			if fromArtifact {
				art, err := artifact.Decode(raw)
				if err != nil {
					tb.Fatal(err)
				}
				if err := s.RegisterArtifact(name, art); err != nil {
					tb.Fatal(err)
				}
			} else {
				net, err := nn.Load(bytes.NewReader(raw))
				if err != nil {
					tb.Fatal(err)
				}
				if err := s.Register(name, net, f); err != nil {
					tb.Fatal(err)
				}
			}
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		body, err := json.Marshal(PredictRequest{Model: "m0", Inputs: [][]float64{make([]float64, 9)}})
		if err != nil {
			tb.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			tb.Fatal(err)
		}
		var sink bytes.Buffer
		_, _ = sink.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			tb.Fatalf("cold-start predict: status %d", resp.StatusCode)
		}
		return float64(time.Since(start)) / float64(time.Millisecond)
	}
	runs := []float64{one(), one(), one()}
	sort.Float64s(runs)
	return runs[1]
}

// coldStartRows prices what the artifact format buys at boot: the same
// three models served from .aot files versus from saved-spec files.
func coldStartRows(tb testing.TB, f numfmt.Format) []coldStartStat {
	tb.Helper()
	dir := tb.TempDir()
	nets := coldStartModels(tb)
	specFiles := map[string]string{}
	aotFiles := map[string]string{}
	for name, net := range nets {
		specPath := dir + "/" + name + ".model"
		fh, err := os.Create(specPath)
		if err != nil {
			tb.Fatal(err)
		}
		if err := net.Save(fh); err != nil {
			tb.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			tb.Fatal(err)
		}
		specFiles[name] = specPath
		art, err := artifact.Build(net, f)
		if err != nil {
			tb.Fatal(err)
		}
		aotPath := dir + "/" + name + ".aot"
		if err := artifact.WriteFile(aotPath, art); err != nil {
			tb.Fatal(err)
		}
		aotFiles[name] = aotPath
	}
	return []coldStartStat{
		{Mode: "compile-from-spec", Models: len(nets), Format: f.String(),
			TimeToFirst200Ms: timeToFirst200(tb, specFiles, false, f)},
		{Mode: "artifact-load", Models: len(nets), Format: f.String(),
			TimeToFirst200Ms: timeToFirst200(tb, aotFiles, true, f)},
	}
}

// TestWriteServeBenchJSON regenerates the committed serving baseline.
// Run with:
//
//	ERRPROP_SERVE_BENCH_OUT=BENCH_serve.json go test ./internal/serve -run TestWriteServeBenchJSON -count=1
func TestWriteServeBenchJSON(t *testing.T) {
	out := os.Getenv("ERRPROP_SERVE_BENCH_OUT")
	if out == "" {
		t.Skip("set ERRPROP_SERVE_BENCH_OUT to write the serving bench trajectory")
	}
	const perClient = 150
	var runs []loadStats
	for _, clients := range []int{1, 8, 64} {
		s := benchServer(t, 64)
		st := runLoad(t, s, clients, perClient)
		st.Mode = "batched"
		s.Close()
		runs = append(runs, st)
	}
	sSingle := New(Config{Workers: 2, MaxBatch: 1, QueueCap: 4096, RequestTimeout: 30 * time.Second})
	if err := sSingle.Register("h2", h2Net(t), numfmt.FP32); err != nil {
		t.Fatal(err)
	}
	stSingle := runLoad(t, sSingle, 64, perClient)
	stSingle.Mode = "single"
	sSingle.Close()
	runs = append(runs, stSingle)

	// Gateway-fronted fleets at the same 64-client load. The interesting
	// number is the ratio against the direct batched server: it prices
	// the routing hop (and, on this single-CPU container, the fact that
	// N backends and the gateway all share one core — fleet rows here
	// measure overhead, not scaling; scaling needs cores to scale onto).
	for _, n := range []int{2, 4} {
		base := benchFleet(t, n, 64)
		st := runLoadURL(t, base, 64, perClient)
		st.Mode = fmt.Sprintf("gateway-%d-backends", n)
		runs = append(runs, st)
	}

	coldStart := coldStartRows(t, numfmt.INT8)

	doc := map[string]any{
		"bench":       "serve",
		"model":       "h2-mlp 9-50-50-9 tanh (untrained, fp32)",
		"description": "HTTP load generator against the internal/serve micro-batching service; req_per_sec counts 200s, latencies are client-side per request; gateway-N rows route the same load through errpropd -gateway over N backends sharing this container's single CPU, so their ratio prices the routing hop, not horizontal scaling; cold_start rows time boot-to-first-200 with three models served from compiled .aot artifacts versus saved specs",
		"config": map[string]any{
			"workers":   2,
			"max_batch": 64,
			"flush_ms":  1,
			"queue_cap": 4096,
		},
		"requests_per_client":             perClient,
		"runs":                            runs,
		"cold_start":                      coldStart,
		"speedup_batched_vs_single_at_64": runs[2].ReqPerSec / stSingle.ReqPerSec,
		"gateway_2_vs_direct_ratio_at_64": runs[4].ReqPerSec / runs[2].ReqPerSec,
		"gateway_4_vs_direct_ratio_at_64": runs[5].ReqPerSec / runs[2].ReqPerSec,
		"cold_start_artifact_speedup":     coldStart[0].TimeToFirst200Ms / coldStart[1].TimeToFirst200Ms,
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (batched-vs-single speedup at 64 clients: %.2fx)", out, runs[2].ReqPerSec/stSingle.ReqPerSec)
}

// BenchmarkServePredict measures end-to-end served request throughput at
// a fixed 64-client contention level; b.N requests are spread across the
// clients.
func BenchmarkServePredict(b *testing.B) {
	for _, mode := range []struct {
		name     string
		maxBatch int
	}{{"batched", 64}, {"single", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			s := New(Config{Workers: 2, MaxBatch: mode.maxBatch, FlushInterval: time.Millisecond,
				QueueCap: 4096, RequestTimeout: 30 * time.Second})
			if err := s.Register("h2", h2Net(b), numfmt.FP32); err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			const clients = 64
			perClient := b.N/clients + 1
			b.ResetTimer()
			st := runLoad(b, s, clients, perClient)
			b.StopTimer()
			if st.OK != st.Requests {
				b.Fatalf("non-200s under bench: %+v", st)
			}
			b.ReportMetric(st.ReqPerSec, "req/s")
			b.ReportMetric(st.P99ms, "p99-ms")
		})
	}
}
