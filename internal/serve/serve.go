// Package serve is the online serving layer over the error-propagation
// stack: a concurrent, batched HTTP/JSON inference service that treats
// the paper's QoI tolerance as a per-request contract.
//
// Architecture (all stdlib):
//
//	handler -> bounded admission queue -> dynamic micro-batcher -> worker pool
//	            (503 + Retry-After        (flush on max batch      (one compiled
//	             when full)                size or deadline)         Engine each)
//
// Each registered model owns one admission queue, one batcher goroutine
// and Config.Workers worker goroutines. A worker holds a private
// compiled inference engine (nn.CompileInference) rather than a full
// nn.Network clone: engines share the served network's weights as
// read-only views — no per-worker weight duplication, no backward-cache
// baggage — while each engine's private buffer arena gives the worker
// the mutable per-call state a shared *nn.Network cannot (Forward on a
// network caches per-layer state for Backward). Engine.Forward is
// bit-identical to Network.Forward, so the model's error-flow analysis
// applies to the served path verbatim. The batcher gives the service its
// throughput: requests arriving within FlushInterval of each other are
// coalesced into one (features x batch) forward pass, amortizing
// per-call dispatch and allocation overhead across the batch.
//
// Error budgets: a request may carry a QoI tolerance (and optionally the
// input reconstruction error of a lossy-compressed payload). The server
// evaluates the registered model's error-flow analysis (internal/core,
// Inequality (3)) against that tolerance before running inference and
// rejects unsatisfiable requests with 422 — the serving-time counterpart
// of the paper's Fig. 1 planner, which is itself exposed at /v1/plan so
// clients can split a tolerance between input compression and weight
// format up front.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scidata/errprop/internal/artifact"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
)

// Config tunes the service. The zero value is usable; every field has a
// production-shaped default.
type Config struct {
	// MaxBatch is the micro-batcher's maximum batch size (default 32).
	// 1 disables coalescing: every request runs as its own forward pass.
	MaxBatch int
	// FlushInterval is how long the batcher waits for more requests
	// after the first one before flushing a partial batch (default 2ms).
	FlushInterval time.Duration
	// QueueCap bounds the per-model admission queue (default 1024). A
	// full queue rejects with 503 + Retry-After instead of blocking.
	QueueCap int
	// Workers is the number of compiled inference engines serving each model
	// (default 4).
	Workers int
	// EngineShards splits each engine's forward pass column-wise across
	// this many goroutines (default 1 = unsharded). Outputs are
	// bit-identical for any value (nn.CompileInferenceSharded); raise it
	// when large batches on few models should use more cores than the
	// worker count alone provides.
	EngineShards int
	// RequestTimeout bounds each request's time in queue + execution
	// (default 5s); expiry returns 504.
	RequestTimeout time.Duration
	// RetryAfter is the client backoff hint on 503 responses (default
	// 1s; rounded up to whole seconds, minimum 1).
	RetryAfter time.Duration
	// MaxBodyBytes caps accepted request bodies (default 32 MiB).
	MaxBodyBytes int64
}

func (c *Config) fillDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.EngineShards <= 0 {
		c.EngineShards = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrBusy means the admission queue is full (503 + Retry-After).
	ErrBusy = errors.New("serve: admission queue full")
	// ErrDraining means the server is shutting down (503).
	ErrDraining = errors.New("serve: server draining")
	// ErrBudget means the predicted error bound exceeds the request's
	// tolerance (422).
	ErrBudget = errors.New("serve: error budget unsatisfiable")
)

// Server routes inference requests to registered models. Create with
// New, add models with Register, mount Handler, stop with Close.
type Server struct {
	cfg     Config
	metrics *metrics

	mu       sync.RWMutex
	models   map[string]*model
	draining atomic.Bool
	closed   chan struct{}
	once     sync.Once

	// planMu guards the per-weights error-flow graph cache: registering
	// the same serialized network under several names (or formats) builds
	// and analyzes its graph once, keyed by the weights checksum.
	planMu      sync.Mutex
	planGraphs  map[string]*core.Node
	graphBuilds atomic.Int64 // graph constructions, for the dedupe regression test
}

// New builds a server (no listening socket; mount Server.Handler).
func New(cfg Config) *Server {
	cfg.fillDefaults()
	return &Server{
		cfg:        cfg,
		metrics:    newMetrics(),
		models:     make(map[string]*model),
		closed:     make(chan struct{}),
		planGraphs: make(map[string]*core.Node),
	}
}

// Config reports the effective (defaults-filled) configuration.
func (s *Server) Config() Config { return s.cfg }

// model is one registered network with its serving machinery.
type model struct {
	name     string
	orig     *nn.Network // as registered, full precision (nil when cold-started from an artifact)
	format   numfmt.Format
	analysis *core.Analysis // error-flow analysis at the serving format
	// planRoot and stepsFor are the planner's inputs: the error-flow
	// graph of the original network plus the format -> step-size
	// derivation. Spec-registered models derive steps from live weights
	// (core.StepsForFormat); artifact models use the build-time tables
	// shipped inside the artifact.
	planRoot *core.Node
	stepsFor func(numfmt.Format) (core.StepFunc, error)
	inDim    int
	outDim   int
	checksum string // CRC32C identity: serialized network (spec path) or artifact body (artifact path)

	queue chan *item   // admission queue (bounded)
	work  chan []*item // batcher -> workers (unbuffered: backpressure)

	enqMu  sync.RWMutex // guards queue close vs. concurrent sends
	closed bool

	wg sync.WaitGroup // batcher + workers

	requests atomic.Int64
	samples  atomic.Int64
	admitted atomic.Int64 // samples accepted into queue (counted at admission, not completion)

	srv *Server
}

// item is one sample travelling through the batcher. done is closed by
// exactly one of: a worker (out or err set) or the skip path for an
// expired context.
type item struct {
	ctx  context.Context
	x    []float64
	out  []float64
	err  error
	done chan struct{}
}

// Register adds a named model served at weight format f. The network is
// quantized once at registration (f != FP32), analyzed for its error
// bounds, and compiled into Config.Workers inference engines sharing the
// serving network's weights (nn.CompileInference — no per-worker weight
// copies); net itself is kept full-precision for /v1/plan. The output
// dimension comes from the engine's static shape inference, not a data
// probe. The network must carry its Spec.
func (s *Server) Register(name string, net *nn.Network, f numfmt.Format) error {
	if name == "" {
		return fmt.Errorf("serve: empty model name")
	}
	if s.draining.Load() {
		return ErrDraining
	}
	serving := net
	if f != numfmt.FP32 {
		q, err := quant.Quantize(net, f)
		if err != nil {
			return fmt.Errorf("serve: quantizing %q: %w", name, err)
		}
		serving = q
	}
	// Checksum the model's serialized form so /v1/models can report which
	// exact weights are being served — operators diffing a fleet against
	// a known-good model file compare this string.
	var serialized bytes.Buffer
	if err := net.Save(&serialized); err != nil {
		return fmt.Errorf("serve: serializing %q for checksum: %w", name, err)
	}
	sum := integrity.ChecksumString(integrity.Checksum(serialized.Bytes()))
	root, err := s.graphFor(sum, net)
	if err != nil {
		return fmt.Errorf("serve: analyzing %q: %w", name, err)
	}
	stepsFor := func(f numfmt.Format) (core.StepFunc, error) { return core.StepsForFormat(f), nil }
	an := core.Analyze(root, core.StepsForFormat(f))
	engines := make([]*nn.Engine, s.cfg.Workers)
	for i := range engines {
		eng, err := nn.CompileInferenceSharded(serving, s.cfg.MaxBatch, s.cfg.EngineShards)
		if err != nil {
			return fmt.Errorf("serve: compiling inference engine for %q: %w", name, err)
		}
		engines[i] = eng
	}
	m := &model{
		name:     name,
		orig:     net,
		format:   f,
		analysis: an,
		planRoot: root,
		stepsFor: stepsFor,
		inDim:    net.InputDim,
		outDim:   engines[0].OutputDim(),
		checksum: sum,
		queue:    make(chan *item, s.cfg.QueueCap),
		work:     make(chan []*item),
		srv:      s,
	}

	return s.install(m, engines)
}

// RegisterArtifact adds a model cold-started from an ahead-of-time
// compiled artifact (internal/artifact). Nothing is recompiled or
// re-derived: the shipped program is bound to the shipped (already
// quantized) weights, the planner runs against the shipped error-flow
// graph and build-time step tables, and the model's reported checksum is
// the artifact body's — the identity a gateway registry pins. The
// artifact must come from artifact.Decode/ReadFile, which has already
// verified its frame, canonical form, program, and certified bound.
func (s *Server) RegisterArtifact(name string, art *artifact.Artifact) error {
	if name == "" {
		return fmt.Errorf("serve: empty model name")
	}
	if art == nil {
		return fmt.Errorf("serve: nil artifact for %q", name)
	}
	if s.draining.Load() {
		return ErrDraining
	}
	steps, err := art.StepsFor(art.Format)
	if err != nil {
		return fmt.Errorf("serve: artifact %q: %w", name, err)
	}
	engines := make([]*nn.Engine, s.cfg.Workers)
	for i := range engines {
		eng, err := art.Program.Bind(art.Net, s.cfg.MaxBatch, s.cfg.EngineShards)
		if err != nil {
			return fmt.Errorf("serve: binding artifact engine for %q: %w", name, err)
		}
		engines[i] = eng
	}
	m := &model{
		name:     name,
		format:   art.Format,
		analysis: core.Analyze(art.Root, steps),
		planRoot: art.Root,
		stepsFor: art.StepsFor,
		inDim:    art.Net.InputDim,
		outDim:   engines[0].OutputDim(),
		checksum: art.Checksum,
		queue:    make(chan *item, s.cfg.QueueCap),
		work:     make(chan []*item),
		srv:      s,
	}
	return s.install(m, engines)
}

// graphFor returns the error-flow graph for a network, cached by its
// serialized-weights checksum: the same weights registered under many
// names (or formats) translate once.
func (s *Server) graphFor(sum string, net *nn.Network) (*core.Node, error) {
	s.planMu.Lock()
	defer s.planMu.Unlock()
	if root, ok := s.planGraphs[sum]; ok {
		return root, nil
	}
	root, err := core.FromNetwork(net)
	if err != nil {
		return nil, err
	}
	s.planGraphs[sum] = root
	s.graphBuilds.Add(1)
	return root, nil
}

// install publishes a fully-built model and starts its goroutines.
func (s *Server) install(m *model, engines []*nn.Engine) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check under the lock: Close snapshots s.models while holding it,
	// so a model added here is either drained by Close or rejected.
	if s.draining.Load() {
		return ErrDraining
	}
	if _, dup := s.models[m.name]; dup {
		return fmt.Errorf("serve: model %q already registered", m.name)
	}
	s.models[m.name] = m

	m.wg.Add(1 + len(engines))
	go m.batchLoop(s.cfg.MaxBatch, s.cfg.FlushInterval)
	for _, eng := range engines {
		go m.workLoop(eng)
	}
	return nil
}

// Models lists registered model names in sorted order, so the /v1/models
// response is byte-identical across calls and processes.
func (s *Server) Models() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.models))
	for name := range s.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (s *Server) model(name string) (*model, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.models[name]
	return m, ok
}

// Draining reports whether Close has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// QueueDepth reports the summed admission-queue depth across models —
// the backlog a request admitted right now would sit behind.
func (s *Server) QueueDepth() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	depth := 0
	for _, m := range s.models {
		depth += len(m.queue) //lint:ignore maporder integer addition commutes; the sum is order-independent
	}
	return depth
}

// Close drains the server: new requests are rejected with 503, every
// already-admitted request is executed to completion, and all batcher
// and worker goroutines exit before Close returns. Safe to call more
// than once.
func (s *Server) Close() {
	s.once.Do(func() {
		s.mu.Lock()
		s.draining.Store(true)
		models := make([]*model, 0, len(s.models))
		for _, m := range s.models {
			models = append(models, m) //lint:ignore maporder shutdown order is observationally irrelevant: every queue is closed before any wait
		}
		s.mu.Unlock()
		for _, m := range models {
			m.enqMu.Lock()
			m.closed = true
			close(m.queue)
			m.enqMu.Unlock()
		}
		for _, m := range models {
			m.wg.Wait()
		}
		close(s.closed)
	})
	<-s.closed
}

// enqueue admits one item without blocking.
func (m *model) enqueue(it *item) error {
	m.enqMu.RLock()
	defer m.enqMu.RUnlock()
	if m.closed {
		return ErrDraining
	}
	select {
	case m.queue <- it:
		// Counted at admission (requests/samples count at completion), so
		// observers — drain tests, operators watching a wedged model — can
		// distinguish "accepted but stuck" from "never arrived".
		m.admitted.Add(1)
		return nil
	default:
		return ErrBusy
	}
}

// predict pushes samples through the batcher and waits for every result
// (or ctx expiry). Admission is all-or-nothing from the caller's view:
// on a full queue the request is rejected, though samples admitted
// before the rejection still execute and are discarded.
func (m *model) predict(ctx context.Context, samples [][]float64) ([][]float64, error) {
	items := make([]*item, len(samples))
	for i, x := range samples {
		items[i] = &item{ctx: ctx, x: x, done: make(chan struct{})}
	}
	for _, it := range items {
		if err := m.enqueue(it); err != nil {
			return nil, err
		}
	}
	outs := make([][]float64, len(items))
	for i, it := range items {
		select {
		case <-it.done:
			if it.err != nil {
				return nil, it.err
			}
			outs[i] = it.out
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	m.requests.Add(1)
	m.samples.Add(int64(len(samples)))
	return outs, nil
}

// checkBudget evaluates the model's predicted QoI bound (quantization
// plus declared input error) against a request tolerance. tol <= 0 means
// "no contract": the bound is still reported, never enforced.
func (m *model) checkBudget(tol float64, norm core.Norm, inputErr float64) (quantBound, totalBound float64, err error) {
	quantBound = m.analysis.QuantizationBound()
	if norm == core.NormLinf {
		totalBound = m.analysis.BoundLinf(inputErr)
	} else {
		totalBound = m.analysis.Bound(inputErr)
	}
	if tol > 0 && totalBound > tol {
		return quantBound, totalBound, ErrBudget
	}
	return quantBound, totalBound, nil
}
