package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/scidata/errprop/internal/artifact"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// TestRegisterArtifactMatchesSpecPath is the cold-start equivalence
// oracle at the serving layer: a model registered from an ahead-of-time
// artifact must be indistinguishable over the wire from one compiled
// from its spec — bit-identical predictions and bounds, byte-identical
// /v1/plan responses — while reporting the artifact's own checksum
// identity.
func TestRegisterArtifactMatchesSpecPath(t *testing.T) {
	net := h2Net(t)
	for _, f := range []numfmt.Format{numfmt.FP32, numfmt.INT8, numfmt.FP16} {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			art, err := artifact.Build(net, f)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			// Artifacts round-trip through bytes before serving, as in
			// production.
			raw, err := art.Encode()
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			art, err = artifact.Decode(raw)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}

			_, specTS := newTestServer(t, Config{Workers: 2, EngineShards: 2}, "h2", net, f)
			as := New(Config{Workers: 2, EngineShards: 2})
			if err := as.RegisterArtifact("h2", art); err != nil {
				t.Fatalf("RegisterArtifact: %v", err)
			}
			artTS := httptest.NewServer(as.Handler())
			t.Cleanup(func() {
				artTS.Close()
				as.Close()
			})

			rng := rand.New(rand.NewSource(3))
			inputs := make([][]float64, 4)
			for i := range inputs {
				row := make([]float64, 9)
				for j := range row {
					row[j] = rng.NormFloat64()
				}
				inputs[i] = row
			}
			preq := PredictRequest{Model: "h2", Inputs: inputs, Tolerance: 10}
			specResp, specBody := postJSON(t, specTS.Client(), specTS.URL+"/v1/predict", preq)
			artResp, artBody := postJSON(t, artTS.Client(), artTS.URL+"/v1/predict", preq)
			if specResp.StatusCode != http.StatusOK || artResp.StatusCode != http.StatusOK {
				t.Fatalf("predict status: spec %d (%s), artifact %d (%s)", specResp.StatusCode, specBody, artResp.StatusCode, artBody)
			}
			if !bytes.Equal(specBody, artBody) {
				t.Fatalf("predict responses differ:\nspec %s\nartifact %s", specBody, artBody)
			}

			for _, plan := range []PlanRequest{
				{Model: "h2", Tol: 0.5},
				{Model: "h2", Tol: 0.05, Norm: "linf", QuantFraction: 0.3, Conservative: true},
				{Model: "h2", Tol: 1, Formats: []string{"int8", "bf16"}},
			} {
				sResp, sBody := postJSON(t, specTS.Client(), specTS.URL+"/v1/plan", plan)
				aResp, aBody := postJSON(t, artTS.Client(), artTS.URL+"/v1/plan", plan)
				if sResp.StatusCode != http.StatusOK || aResp.StatusCode != http.StatusOK {
					t.Fatalf("plan status: spec %d (%s), artifact %d (%s)", sResp.StatusCode, sBody, aResp.StatusCode, aBody)
				}
				if !bytes.Equal(sBody, aBody) {
					t.Fatalf("plan responses not byte-identical:\nspec     %s\nartifact %s", sBody, aBody)
				}
			}

			// The artifact model's identity is the artifact body checksum.
			resp, body := postJSON(t, artTS.Client(), artTS.URL+"/v1/predict", PredictRequest{Model: "h2", Inputs: inputs[:1]})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("predict: %d %s", resp.StatusCode, body)
			}
			mresp, err := artTS.Client().Get(artTS.URL + "/v1/models")
			if err != nil {
				t.Fatal(err)
			}
			defer mresp.Body.Close()
			var models map[string]ModelStats
			if err := json.NewDecoder(mresp.Body).Decode(&models); err != nil {
				t.Fatal(err)
			}
			if st, ok := models["h2"]; !ok || st.Checksum != art.Checksum {
				t.Fatalf("artifact model checksum: got %+v, want %s", models, art.Checksum)
			}
		})
	}
}

// TestRegisterDedupesGraphBuilds pins the spec-hash -> error-flow-graph
// dedupe: the same weights registered under many names and formats
// translate to a graph exactly once.
func TestRegisterDedupesGraphBuilds(t *testing.T) {
	net := h2Net(t)
	s := New(Config{Workers: 1})
	t.Cleanup(s.Close)
	if err := s.Register("a", net, numfmt.FP32); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("b", net, numfmt.INT8); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("c", net, numfmt.FP16); err != nil {
		t.Fatal(err)
	}
	if got := s.graphBuilds.Load(); got != 1 {
		t.Fatalf("graph built %d times for identical weights, want 1", got)
	}
	other := buildNamed(t, "other")
	if err := s.Register("d", other, numfmt.FP32); err != nil {
		t.Fatal(err)
	}
	if got := s.graphBuilds.Load(); got != 2 {
		t.Fatalf("graph builds after distinct weights: got %d, want 2", got)
	}
}

func buildNamed(t testing.TB, name string) *nn.Network {
	t.Helper()
	net, err := nn.MLPSpec(name, []int{9, 20, 9}, nn.ActReLU, false).Build(13)
	if err != nil {
		t.Fatal(err)
	}
	return net
}
