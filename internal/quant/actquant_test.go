package quant

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/tensor"
)

func TestQuantizeActivationsInsertsRounds(t *testing.T) {
	net := buildTestMLP(t, true)
	q, err := QuantizeActivations(net, numfmt.FP32, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for _, l := range q.Layers {
		if _, ok := l.(*nn.RoundLayer); ok {
			rounds++
		}
	}
	if rounds != 2 { // one per hidden activation
		t.Fatalf("want 2 round layers, got %d", rounds)
	}
}

func TestQuantizeActivationsChangesOutputs(t *testing.T) {
	net := buildTestMLP(t, true)
	q, err := QuantizeActivations(net, numfmt.FP32, numfmt.BF16)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rand.New(rand.NewSource(8)), 9, 8)
	a := net.Forward(x, false)
	b := q.Forward(x, false)
	diff := tensor.Vector(a.Data).Sub(tensor.Vector(b.Data)).Norm2()
	if diff == 0 {
		t.Fatal("BF16 activation rounding should perturb outputs")
	}
	// And FP16 activations perturb less than BF16.
	q16, err := QuantizeActivations(net, numfmt.FP32, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	b16 := q16.Forward(x, false)
	diff16 := tensor.Vector(a.Data).Sub(tensor.Vector(b16.Data)).Norm2()
	if diff16 >= diff {
		t.Fatalf("FP16 activation error %v should be below BF16's %v", diff16, diff)
	}
}

func TestQuantizeActivationsRejectsINT8(t *testing.T) {
	net := buildTestMLP(t, false)
	if _, err := QuantizeActivations(net, numfmt.FP16, numfmt.INT8); err == nil {
		t.Fatal("INT8 activations should be rejected")
	}
}

func TestQuantizeActivationsNoSpec(t *testing.T) {
	if _, err := QuantizeActivations(&nn.Network{InputDim: 2}, numfmt.FP16, numfmt.FP16); err == nil {
		t.Fatal("network without Spec should error")
	}
}

func TestQuantizeActivationsOnResNet(t *testing.T) {
	spec := nn.ResNetSpec("rn", 2, 8, 8, 4, []int{1}, []int{4}, nn.ActReLU, true)
	net, err := spec.Build(9)
	if err != nil {
		t.Fatal(err)
	}
	net.RefreshSigmas()
	q, err := QuantizeActivations(net, numfmt.FP16, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rand.New(rand.NewSource(10)), 2*8*8, 2)
	out := q.Forward(x, false)
	if out.Rows != 4 || out.Cols != 2 {
		t.Fatalf("output %dx%d", out.Rows, out.Cols)
	}
}

func TestMixedQuantizeMatchesUniformOnConstantAssignment(t *testing.T) {
	net := buildTestMLP(t, true)
	assign := []numfmt.Format{numfmt.BF16, numfmt.BF16, numfmt.BF16}
	mixed, err := QuantizeMixed(net, assign)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Quantize(net, numfmt.BF16)
	if err != nil {
		t.Fatal(err)
	}
	mo, uo := mixed.LinearOps(), uni.LinearOps()
	for l := range mo {
		for i := range mo[l].Weights {
			if mo[l].Weights[i] != uo[l].Weights[i] {
				t.Fatalf("layer %d weight %d differs", l, i)
			}
		}
	}
}

func TestMixedQuantizePerLayerEffects(t *testing.T) {
	// An INT8 layer must show INT8-scale perturbation while an FP32 layer
	// stays (almost) exact.
	net := buildTestMLP(t, true)
	assign := []numfmt.Format{numfmt.INT8, numfmt.FP32, numfmt.FP32}
	q, err := QuantizeMixed(net, assign)
	if err != nil {
		t.Fatal(err)
	}
	orig, got := net.LinearOps(), q.LinearOps()
	var maxL0, maxL1 float64
	for i := range orig[0].Weights {
		if d := math.Abs(orig[0].Weights[i] - got[0].Weights[i]); d > maxL0 {
			maxL0 = d
		}
	}
	for i := range orig[1].Weights {
		if d := math.Abs(orig[1].Weights[i] - got[1].Weights[i]); d > maxL1 {
			maxL1 = d
		}
	}
	if maxL0 < 1e-6 {
		t.Fatalf("INT8 layer barely moved: %v", maxL0)
	}
	if maxL1 > 1e-7 {
		t.Fatalf("FP32 layer moved too much: %v", maxL1)
	}
}

func TestWeightErrorReporting(t *testing.T) {
	net := buildTestMLP(t, false)
	errs := WeightError(net, numfmt.BF16)
	if len(errs) != 3 {
		t.Fatalf("want 3 layer errors, got %d", len(errs))
	}
	fp16 := WeightError(net, numfmt.FP16)
	for i := range errs {
		if errs[i] <= fp16[i] {
			t.Fatalf("layer %d: BF16 max error %v should exceed FP16's %v", i, errs[i], fp16[i])
		}
	}
}
