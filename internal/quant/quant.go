// Package quant implements post-training weight-only quantization of
// internal/nn networks, the model-reduction half of the paper's pipeline.
// Quantize produces a plain inference copy whose linear-layer weights are
// the original network's *effective* weights (PSN folded in) rounded to
// the chosen numeric format with uniform affine max-calibration semantics
// (Table I). Biases and activations stay in full precision, matching the
// paper's weight-only scheme.
package quant

import (
	"fmt"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// Quantize returns an inference copy of net with every dense/conv weight
// tensor rounded to format f. The original network is untouched. The
// network must carry its Spec (built via nn.Spec.Build or nn.Load).
func Quantize(net *nn.Network, f numfmt.Format) (*nn.Network, error) {
	if net.Spec == nil {
		return nil, fmt.Errorf("quant: network has no Spec")
	}
	plain := stripPSN(*net.Spec)
	copyNet, err := plain.Build(0)
	if err != nil {
		return nil, fmt.Errorf("quant: rebuilding spec: %w", err)
	}
	if err := transferWeights(net.Layers, copyNet.Layers, f); err != nil {
		return nil, err
	}
	copyNet.RefreshSigmas()
	return copyNet, nil
}

// stripPSN returns a deep copy of the spec with PSN disabled on every
// layer: the quantized copy stores final effective weights directly.
func stripPSN(s nn.Spec) *nn.Spec {
	out := s
	out.Layers = stripPSNLayers(s.Layers)
	return &out
}

func stripPSNLayers(ls []nn.LayerSpec) []nn.LayerSpec {
	out := make([]nn.LayerSpec, len(ls))
	for i, l := range ls {
		l.PSN = false
		l.Branch = stripPSNLayers(l.Branch)
		l.Shortcut = stripPSNLayers(l.Shortcut)
		out[i] = l
	}
	return out
}

// transferWeights walks src and dst layer trees in lockstep, rounding
// linear weights into dst and copying everything else verbatim.
func transferWeights(src, dst []nn.Layer, f numfmt.Format) error {
	if len(src) != len(dst) {
		return fmt.Errorf("quant: layer count mismatch %d vs %d", len(src), len(dst))
	}
	for i := range src {
		switch s := src[i].(type) {
		case *nn.Dense:
			d, ok := dst[i].(*nn.Dense)
			if !ok {
				return fmt.Errorf("quant: layer %d type mismatch", i)
			}
			eff := s.EffectiveMatrix()
			copy(d.W.Data, roundWeights(f, eff.Data))
			copy(d.B.Data, s.B.Data)
		case *nn.Conv2D:
			d, ok := dst[i].(*nn.Conv2D)
			if !ok {
				return fmt.Errorf("quant: layer %d type mismatch", i)
			}
			eff := s.EffectiveKernel()
			copy(d.Wt.Data, roundWeights(f, eff.Data))
			copy(d.B.Data, s.B.Data)
		case *nn.Activation:
			d, ok := dst[i].(*nn.Activation)
			if !ok {
				return fmt.Errorf("quant: layer %d type mismatch", i)
			}
			for j, p := range s.Params() {
				copy(d.Params()[j].Data, p.Data)
			}
		case *nn.Residual:
			d, ok := dst[i].(*nn.Residual)
			if !ok {
				return fmt.Errorf("quant: layer %d type mismatch", i)
			}
			if err := transferWeights(s.Branch, d.Branch, f); err != nil {
				return err
			}
			if err := transferWeights(s.Shortcut, d.Shortcut, f); err != nil {
				return err
			}
		case *nn.SkipConcat:
			d, ok := dst[i].(*nn.SkipConcat)
			if !ok {
				return fmt.Errorf("quant: layer %d type mismatch", i)
			}
			if err := transferWeights(s.Branch, d.Branch, f); err != nil {
				return err
			}
		case *nn.SelfAttention:
			// Attention weights stay in full precision: the analysis
			// bounds them as Lipschitz-only (see internal/nn/attention.go).
			d, ok := dst[i].(*nn.SelfAttention)
			if !ok {
				return fmt.Errorf("quant: layer %d type mismatch", i)
			}
			for j, p := range s.Params() {
				copy(d.Params()[j].Data, p.Data)
			}
		}
	}
	return nil
}

func roundWeights(f numfmt.Format, w []float64) []float64 {
	if f == numfmt.FP32 {
		// FP32 is the unquantized baseline; reproduce its storage
		// rounding anyway so the copy behaves like a float32 model.
		return numfmt.RoundSlice(numfmt.FP32, w)
	}
	return numfmt.RoundSlice(f, w)
}

// LayerSteps returns the Table I average quantization step size q_l of
// every linear layer (forward order) for the given format.
func LayerSteps(net *nn.Network, f numfmt.Format) []float64 {
	ops := net.LinearOps()
	out := make([]float64, len(ops))
	for i, op := range ops {
		out[i] = numfmt.StepSize(f, op.Weights)
	}
	return out
}

// WeightError reports the worst absolute weight perturbation introduced
// by quantizing net to format f, per linear layer.
func WeightError(net *nn.Network, f numfmt.Format) []float64 {
	ops := net.LinearOps()
	out := make([]float64, len(ops))
	for i, op := range ops {
		out[i] = numfmt.MaxError(f, op.Weights)
	}
	return out
}
