package quant

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/tensor"
)

func buildTestMLP(t testing.TB, psn bool) *nn.Network {
	t.Helper()
	spec := nn.MLPSpec("m", []int{9, 50, 50, 9}, nn.ActTanh, psn)
	net, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	// Nudge weights off the exact init grid so rounding is non-trivial.
	rng := rand.New(rand.NewSource(2))
	for _, p := range net.Params() {
		for i := range p.Data {
			p.Data[i] += rng.NormFloat64() * 0.01
		}
	}
	net.RefreshSigmas()
	return net
}

func randInput(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

func TestQuantizePreservesShape(t *testing.T) {
	net := buildTestMLP(t, true)
	for _, f := range numfmt.AllFormats {
		q, err := Quantize(net, f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if q.NumParams() == 0 || len(q.Layers) != len(net.Layers) {
			t.Fatalf("%v: quantized copy malformed", f)
		}
		x := randInput(rand.New(rand.NewSource(3)), 9, 4)
		out := q.Forward(x, false)
		if out.Rows != 9 || out.Cols != 4 {
			t.Fatalf("%v: output shape %dx%d", f, out.Rows, out.Cols)
		}
	}
}

func TestQuantizeWeightErrorWithinStep(t *testing.T) {
	net := buildTestMLP(t, true)
	for _, f := range []numfmt.Format{numfmt.TF32, numfmt.FP16, numfmt.BF16, numfmt.INT8} {
		q, err := Quantize(net, f)
		if err != nil {
			t.Fatal(err)
		}
		orig := net.LinearOps()
		quant := q.LinearOps()
		maxErrs := WeightError(net, f)
		for l := range orig {
			for i := range orig[l].Weights {
				d := math.Abs(orig[l].Weights[i] - quant[l].Weights[i])
				if d > maxErrs[l]*(1+1e-9) {
					t.Fatalf("%v layer %d: weight moved %v > MaxError %v", f, l, d, maxErrs[l])
				}
			}
		}
	}
}

func TestQuantizeErrorOrdering(t *testing.T) {
	// Output perturbation must grow as precision drops: fp32 <= tf32 <=
	// ... <= int8 (the monotonicity behind Figs. 5-6).
	net := buildTestMLP(t, true)
	rng := rand.New(rand.NewSource(4))
	x := randInput(rng, 9, 32)
	ref := net.Forward(x, false)
	var prev float64
	for _, f := range []numfmt.Format{numfmt.FP32, numfmt.TF32, numfmt.BF16, numfmt.INT8} {
		q, err := Quantize(net, f)
		if err != nil {
			t.Fatal(err)
		}
		out := q.Forward(x, false)
		diff := tensor.Vector(out.Data).Sub(tensor.Vector(ref.Data)).Norm2()
		if diff < prev*0.5 { // allow mild non-monotonic noise, catch inversions
			t.Fatalf("%v: error %v dropped far below previous format's %v", f, diff, prev)
		}
		prev = diff
	}
}

func TestTF32MatchesFP16Closely(t *testing.T) {
	// Same mantissa width => nearly identical perturbation for
	// normal-range weights (the paper's Fig. 5 observation).
	net := buildTestMLP(t, true)
	rng := rand.New(rand.NewSource(5))
	x := randInput(rng, 9, 16)
	ref := net.Forward(x, false)
	var errs []float64
	for _, f := range []numfmt.Format{numfmt.TF32, numfmt.FP16} {
		q, err := Quantize(net, f)
		if err != nil {
			t.Fatal(err)
		}
		out := q.Forward(x, false)
		errs = append(errs, tensor.Vector(out.Data).Sub(tensor.Vector(ref.Data)).Norm2())
	}
	if errs[0] == 0 || errs[1] == 0 {
		t.Fatal("expected non-zero quantization perturbation")
	}
	ratio := errs[0] / errs[1]
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("TF32/FP16 error ratio %v should be near 1", ratio)
	}
}

func TestQuantizePSNFoldsAlpha(t *testing.T) {
	// The quantized copy stores effective weights, so its operator norm
	// should match the original's alpha (up to quantization noise).
	net := buildTestMLP(t, true)
	q, err := Quantize(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	orig := net.LinearOps()
	quant := q.LinearOps()
	for l := range orig {
		if math.Abs(orig[l].Sigma-quant[l].Sigma) > 0.05*orig[l].Sigma+1e-6 {
			t.Fatalf("layer %d sigma drifted: %v vs %v", l, orig[l].Sigma, quant[l].Sigma)
		}
	}
}

func TestQuantizeResNet(t *testing.T) {
	spec := nn.ResNetSpec("rn", 2, 8, 8, 4, []int{1, 1}, []int{4, 8}, nn.ActReLU, true)
	net, err := spec.Build(6)
	if err != nil {
		t.Fatal(err)
	}
	net.RefreshSigmas()
	q, err := Quantize(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	x := randInput(rng, 2*8*8, 2)
	a := net.Forward(x, false)
	b := q.Forward(x, false)
	diff := tensor.Vector(a.Data).Sub(tensor.Vector(b.Data)).Norm2()
	ref := tensor.Vector(a.Data).Norm2()
	if diff > 0.05*ref {
		t.Fatalf("FP16 ResNet drifted %.2f%% of output norm", 100*diff/ref)
	}
	if diff == 0 {
		t.Fatal("expected some quantization perturbation")
	}
}

func TestQuantizeNoSpec(t *testing.T) {
	net := &nn.Network{InputDim: 2}
	if _, err := Quantize(net, numfmt.FP16); err == nil {
		t.Fatal("network without Spec should error")
	}
}

func TestLayerSteps(t *testing.T) {
	net := buildTestMLP(t, false)
	steps := LayerSteps(net, numfmt.FP16)
	if len(steps) != 3 {
		t.Fatalf("want 3 layer steps, got %d", len(steps))
	}
	for i, s := range steps {
		if s <= 0 {
			t.Fatalf("step %d = %v", i, s)
		}
	}
	bf := LayerSteps(net, numfmt.BF16)
	for i := range steps {
		if bf[i] <= steps[i] {
			t.Fatalf("BF16 step %v should exceed FP16 step %v", bf[i], steps[i])
		}
	}
}

func TestQuantizeDoesNotMutateOriginal(t *testing.T) {
	net := buildTestMLP(t, true)
	before := make([]float64, 0)
	for _, p := range net.Params() {
		before = append(before, p.Data...)
	}
	if _, err := Quantize(net, numfmt.INT8); err != nil {
		t.Fatal(err)
	}
	after := make([]float64, 0)
	for _, p := range net.Params() {
		after = append(after, p.Data...)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Quantize mutated the original network")
		}
	}
}
