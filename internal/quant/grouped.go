package quant

import (
	"fmt"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// QuantizeGroupedINT8 returns an inference copy of net with every linear
// layer's weights quantized to INT8 using grouped affine scales — the
// block-/column-/row-wise schemes the paper lists as future work. Finer
// granularities capture local weight ranges, shrinking the effective
// step size and therefore both the bound and the achieved error, at the
// cost of extra scale storage (see numfmt.ScaleOverheadBytes).
func QuantizeGroupedINT8(net *nn.Network, g numfmt.Granularity, blockSize int) (*nn.Network, error) {
	if net.Spec == nil {
		return nil, fmt.Errorf("quant: network has no Spec")
	}
	plain := stripPSN(*net.Spec)
	copyNet, err := plain.Build(0)
	if err != nil {
		return nil, fmt.Errorf("quant: rebuilding spec: %w", err)
	}
	if err := transferGrouped(net.Layers, copyNet.Layers, g, blockSize); err != nil {
		return nil, err
	}
	copyNet.RefreshSigmas()
	return copyNet, nil
}

func transferGrouped(src, dst []nn.Layer, g numfmt.Granularity, blockSize int) error {
	if len(src) != len(dst) {
		return fmt.Errorf("quant: layer count mismatch %d vs %d", len(src), len(dst))
	}
	for i := range src {
		switch s := src[i].(type) {
		case *nn.Dense:
			d := dst[i].(*nn.Dense)
			eff := s.EffectiveMatrix()
			rounded, _, err := numfmt.GroupedINT8(eff.Data, s.Out, s.In, g, blockSize)
			if err != nil {
				return fmt.Errorf("quant: %s: %w", s.Name(), err)
			}
			copy(d.W.Data, rounded)
			copy(d.B.Data, s.B.Data)
		case *nn.Conv2D:
			d := dst[i].(*nn.Conv2D)
			eff := s.EffectiveKernel()
			rounded, _, err := numfmt.GroupedINT8(eff.Data, s.OutC, s.InC*s.K*s.K, g, blockSize)
			if err != nil {
				return fmt.Errorf("quant: %s: %w", s.Name(), err)
			}
			copy(d.Wt.Data, rounded)
			copy(d.B.Data, s.B.Data)
		case *nn.Activation:
			d := dst[i].(*nn.Activation)
			for j, p := range s.Params() {
				copy(d.Params()[j].Data, p.Data)
			}
		case *nn.Residual:
			d := dst[i].(*nn.Residual)
			if err := transferGrouped(s.Branch, d.Branch, g, blockSize); err != nil {
				return err
			}
			if err := transferGrouped(s.Shortcut, d.Shortcut, g, blockSize); err != nil {
				return err
			}
		case *nn.SkipConcat:
			d := dst[i].(*nn.SkipConcat)
			if err := transferGrouped(s.Branch, d.Branch, g, blockSize); err != nil {
				return err
			}
		}
	}
	return nil
}

// GroupedLayerSteps returns every linear layer's RMS step size under a
// grouped INT8 scheme (forward order), the inputs to the error-flow
// analysis.
func GroupedLayerSteps(net *nn.Network, g numfmt.Granularity, blockSize int) ([]float64, error) {
	ops := net.LinearOps()
	out := make([]float64, len(ops))
	for i, op := range ops {
		q, err := numfmt.GroupedStepSize(op.Weights, op.WRows, op.WCols, g, blockSize)
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}

// GroupedOverheadBytes sums the scale-storage overhead of a grouped
// scheme across the network's linear layers.
func GroupedOverheadBytes(net *nn.Network, g numfmt.Granularity, blockSize int) int {
	total := 0
	for _, op := range net.LinearOps() {
		total += numfmt.ScaleOverheadBytes(op.WRows, op.WCols, g, blockSize)
	}
	return total
}
