package quant

import (
	"fmt"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// QuantizeMixed returns an inference copy of net whose linear layers are
// quantized per the assignment (forward order, matching
// Network.LinearOps) — the execution side of the mixed-precision planner
// in internal/core.
func QuantizeMixed(net *nn.Network, assignment []numfmt.Format) (*nn.Network, error) {
	if net.Spec == nil {
		return nil, fmt.Errorf("quant: network has no Spec")
	}
	nLinear := len(net.LinearOps())
	if len(assignment) != nLinear {
		return nil, fmt.Errorf("quant: assignment length %d != %d linear layers", len(assignment), nLinear)
	}
	plain := stripPSN(*net.Spec)
	copyNet, err := plain.Build(0)
	if err != nil {
		return nil, fmt.Errorf("quant: rebuilding spec: %w", err)
	}
	idx := 0
	if err := transferMixed(net.Layers, copyNet.Layers, assignment, &idx); err != nil {
		return nil, err
	}
	copyNet.RefreshSigmas()
	return copyNet, nil
}

func transferMixed(src, dst []nn.Layer, assignment []numfmt.Format, idx *int) error {
	if len(src) != len(dst) {
		return fmt.Errorf("quant: layer count mismatch %d vs %d", len(src), len(dst))
	}
	for i := range src {
		switch s := src[i].(type) {
		case *nn.Dense:
			d := dst[i].(*nn.Dense)
			eff := s.EffectiveMatrix()
			copy(d.W.Data, roundWeights(assignment[*idx], eff.Data))
			copy(d.B.Data, s.B.Data)
			*idx++
		case *nn.Conv2D:
			d := dst[i].(*nn.Conv2D)
			eff := s.EffectiveKernel()
			copy(d.Wt.Data, roundWeights(assignment[*idx], eff.Data))
			copy(d.B.Data, s.B.Data)
			*idx++
		case *nn.Activation:
			d := dst[i].(*nn.Activation)
			for j, p := range s.Params() {
				copy(d.Params()[j].Data, p.Data)
			}
		case *nn.Residual:
			d := dst[i].(*nn.Residual)
			if err := transferMixed(s.Branch, d.Branch, assignment, idx); err != nil {
				return err
			}
			if err := transferMixed(s.Shortcut, d.Shortcut, assignment, idx); err != nil {
				return err
			}
		case *nn.SkipConcat:
			d := dst[i].(*nn.SkipConcat)
			if err := transferMixed(s.Branch, d.Branch, assignment, idx); err != nil {
				return err
			}
		}
	}
	return nil
}
