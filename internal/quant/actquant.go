package quant

import (
	"fmt"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// QuantizeActivations returns an inference copy of net whose weights are
// rounded to weightFmt (numfmt.FP32 keeps them) and whose activation
// outputs are additionally rounded to actFmt after every nonlinearity —
// the activation-quantization extension the paper sketches in Section
// III-B. actFmt must be a float format (INT8 activations need
// calibration).
func QuantizeActivations(net *nn.Network, weightFmt, actFmt numfmt.Format) (*nn.Network, error) {
	if net.Spec == nil {
		return nil, fmt.Errorf("quant: network has no Spec")
	}
	if actFmt == numfmt.INT8 {
		return nil, fmt.Errorf("quant: INT8 activation quantization unsupported (needs calibration)")
	}
	spec := stripPSN(*net.Spec)
	spec.Layers = insertRounds(spec.Layers, actFmt)
	copyNet, err := spec.Build(0)
	if err != nil {
		return nil, fmt.Errorf("quant: rebuilding spec: %w", err)
	}
	if err := transferSkippingRounds(net.Layers, copyNet.Layers, weightFmt); err != nil {
		return nil, err
	}
	copyNet.RefreshSigmas()
	return copyNet, nil
}

// insertRounds places a round layer after every activation, recursively.
func insertRounds(ls []nn.LayerSpec, f numfmt.Format) []nn.LayerSpec {
	var out []nn.LayerSpec
	for _, l := range ls {
		l.Branch = insertRounds(l.Branch, f)
		l.Shortcut = insertRounds(l.Shortcut, f)
		out = append(out, l)
		if l.Type == "act" {
			out = append(out, nn.LayerSpec{Type: "round", Fmt: f.String()})
		}
	}
	return out
}

// transferSkippingRounds copies weights from src into dst, where dst may
// contain extra RoundLayers interleaved.
func transferSkippingRounds(src, dst []nn.Layer, f numfmt.Format) error {
	j := 0
	next := func() (nn.Layer, error) {
		for j < len(dst) {
			if _, ok := dst[j].(*nn.RoundLayer); ok {
				j++
				continue
			}
			l := dst[j]
			j++
			return l, nil
		}
		return nil, fmt.Errorf("quant: destination layers exhausted")
	}
	for i := range src {
		d, err := next()
		if err != nil {
			return err
		}
		switch s := src[i].(type) {
		case *nn.Dense:
			dd, ok := d.(*nn.Dense)
			if !ok {
				return fmt.Errorf("quant: layer %d type mismatch (%T vs %T)", i, src[i], d)
			}
			eff := s.EffectiveMatrix()
			copy(dd.W.Data, roundWeights(f, eff.Data))
			copy(dd.B.Data, s.B.Data)
		case *nn.Conv2D:
			dd, ok := d.(*nn.Conv2D)
			if !ok {
				return fmt.Errorf("quant: layer %d type mismatch", i)
			}
			eff := s.EffectiveKernel()
			copy(dd.Wt.Data, roundWeights(f, eff.Data))
			copy(dd.B.Data, s.B.Data)
		case *nn.Activation:
			dd, ok := d.(*nn.Activation)
			if !ok {
				return fmt.Errorf("quant: layer %d type mismatch", i)
			}
			for k, p := range s.Params() {
				copy(dd.Params()[k].Data, p.Data)
			}
		case *nn.Residual:
			dd, ok := d.(*nn.Residual)
			if !ok {
				return fmt.Errorf("quant: layer %d type mismatch", i)
			}
			if err := transferSkippingRounds(s.Branch, dd.Branch, f); err != nil {
				return err
			}
			if err := transferSkippingRounds(s.Shortcut, dd.Shortcut, f); err != nil {
				return err
			}
		case *nn.SkipConcat:
			dd, ok := d.(*nn.SkipConcat)
			if !ok {
				return fmt.Errorf("quant: layer %d type mismatch", i)
			}
			if err := transferSkippingRounds(s.Branch, dd.Branch, f); err != nil {
				return err
			}
		}
	}
	return nil
}
