package quant

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/tensor"
)

func TestGroupedQuantizePreservesShape(t *testing.T) {
	net := buildTestMLP(t, true)
	for _, g := range numfmt.Granularities {
		q, err := QuantizeGroupedINT8(net, g, 64)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		x := randInput(rand.New(rand.NewSource(1)), 9, 4)
		out := q.Forward(x, false)
		if out.Rows != 9 || out.Cols != 4 {
			t.Fatalf("%v: output shape %dx%d", g, out.Rows, out.Cols)
		}
	}
}

func TestGroupedReducesError(t *testing.T) {
	// The extension's raison d'etre: finer granularity must shrink the
	// achieved output error versus per-tensor INT8.
	net := buildTestMLP(t, true)
	rng := rand.New(rand.NewSource(2))
	x := randInput(rng, 9, 64)
	ref := net.Forward(x, false)
	errFor := func(g numfmt.Granularity) float64 {
		q, err := QuantizeGroupedINT8(net, g, 64)
		if err != nil {
			t.Fatal(err)
		}
		out := q.Forward(x, false)
		return tensor.Vector(out.Data).Sub(tensor.Vector(ref.Data)).Norm2()
	}
	perTensor := errFor(numfmt.PerTensor)
	perRow := errFor(numfmt.PerRow)
	if perRow >= perTensor {
		t.Fatalf("per-row error %v should beat per-tensor %v", perRow, perTensor)
	}
}

func TestGroupedMatchesUniformForPerTensor(t *testing.T) {
	// PerTensor grouped quantization must agree with the Table I uniform
	// path bit for bit.
	net := buildTestMLP(t, true)
	a, err := QuantizeGroupedINT8(net, numfmt.PerTensor, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Quantize(net, numfmt.INT8)
	if err != nil {
		t.Fatal(err)
	}
	ao, bo := a.LinearOps(), b.LinearOps()
	for l := range ao {
		for i := range ao[l].Weights {
			if ao[l].Weights[i] != bo[l].Weights[i] {
				t.Fatalf("layer %d weight %d differs: %v vs %v", l, i, ao[l].Weights[i], bo[l].Weights[i])
			}
		}
	}
}

func TestGroupedBoundHolds(t *testing.T) {
	// The grouped analysis must bound the grouped network's error, for
	// every granularity.
	net := buildTestMLP(t, true)
	rng := rand.New(rand.NewSource(3))
	for _, g := range numfmt.Granularities {
		an, err := core.AnalyzeNetworkGroupedINT8(net, g, 64)
		if err != nil {
			t.Fatal(err)
		}
		qnet, err := QuantizeGroupedINT8(net, g, 64)
		if err != nil {
			t.Fatal(err)
		}
		bound := an.QuantizationBound()
		if bound <= 0 {
			t.Fatalf("%v: degenerate bound %v", g, bound)
		}
		for trial := 0; trial < 20; trial++ {
			x := randInput(rng, 9, 1)
			y := net.Forward(x, false)
			yq := qnet.Forward(x, false)
			if d := tensor.Vector(yq.Data).Sub(tensor.Vector(y.Data)).Norm2(); d > bound {
				t.Fatalf("%v trial %d: achieved %v > bound %v", g, trial, d, bound)
			}
		}
	}
}

func TestGroupedBoundTighterThanPerTensor(t *testing.T) {
	net := buildTestMLP(t, true)
	boundFor := func(g numfmt.Granularity) float64 {
		an, err := core.AnalyzeNetworkGroupedINT8(net, g, 64)
		if err != nil {
			t.Fatal(err)
		}
		return an.QuantizationBound()
	}
	pt := boundFor(numfmt.PerTensor)
	pr := boundFor(numfmt.PerRow)
	if pr >= pt {
		t.Fatalf("per-row bound %v should beat per-tensor %v", pr, pt)
	}
	// And the per-tensor grouped bound equals the Table I INT8 bound.
	an, err := core.AnalyzeNetwork(net, numfmt.INT8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pt-an.QuantizationBound()) > 1e-12*pt {
		t.Fatalf("per-tensor grouped bound %v != Table I bound %v", pt, an.QuantizationBound())
	}
}

func TestGroupedOnResNet(t *testing.T) {
	spec := nn.ResNetSpec("rn", 2, 8, 8, 4, []int{1, 1}, []int{4, 8}, nn.ActReLU, true)
	net, err := spec.Build(6)
	if err != nil {
		t.Fatal(err)
	}
	net.RefreshSigmas()
	q, err := QuantizeGroupedINT8(net, numfmt.PerRow, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rand.New(rand.NewSource(7)), 2*8*8, 2)
	if out := q.Forward(x, false); out.Rows != 4 {
		t.Fatalf("resnet grouped output rows %d", out.Rows)
	}
}

func TestGroupedOverhead(t *testing.T) {
	net := buildTestMLP(t, false)
	pt := GroupedOverheadBytes(net, numfmt.PerTensor, 0)
	pr := GroupedOverheadBytes(net, numfmt.PerRow, 0)
	if pt != 3*8 { // one scale pair per layer
		t.Fatalf("per-tensor overhead %d", pt)
	}
	if pr != (50+50+9)*8 {
		t.Fatalf("per-row overhead %d", pr)
	}
	steps, err := GroupedLayerSteps(net, numfmt.PerRow, 0)
	if err != nil || len(steps) != 3 {
		t.Fatalf("layer steps: %v, %v", steps, err)
	}
}
