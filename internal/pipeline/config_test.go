package pipeline

import (
	"testing"
	"time"

	"github.com/scidata/errprop/internal/gpusim"
	"github.com/scidata/errprop/internal/hpcio"
	"github.com/scidata/errprop/internal/nn"
)

func TestFillDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.Device != gpusim.RTX3080Ti {
		t.Errorf("default Device = %v, want RTX3080Ti", c.Device)
	}
	if c.Storage == nil {
		t.Error("default Storage not applied")
	}
	if c.Decode == nil {
		t.Error("default DecodeModel not applied")
	}
	if c.Batch != 256 {
		t.Errorf("default Batch = %d, want 256", c.Batch)
	}
}

func TestFillDefaultsRespectsCustomValues(t *testing.T) {
	storage := &hpcio.Storage{Name: "test", Bandwidth: 1e9, Latency: time.Millisecond}
	decode := hpcio.DefaultDecodeModel()
	c := Config{
		Device:  gpusim.V100,
		Storage: storage,
		Decode:  decode,
		Batch:   17,
	}
	c.fillDefaults()
	if c.Device != gpusim.V100 {
		t.Errorf("custom Device overwritten: %v", c.Device)
	}
	if c.Storage != storage {
		t.Error("custom Storage overwritten")
	}
	if c.Batch != 17 {
		t.Errorf("custom Batch overwritten: %d", c.Batch)
	}
}

// TestFillDefaultsAppliedOnceIdempotent pins that a second fill (e.g. a
// config threaded through New twice) changes nothing: defaults are
// applied exactly once, then the config is a fixed point.
func TestFillDefaultsAppliedOnceIdempotent(t *testing.T) {
	var c Config
	c.fillDefaults()
	first := c
	c.fillDefaults()
	if c.Device != first.Device || c.Storage != first.Storage || c.Batch != first.Batch {
		t.Errorf("second fillDefaults changed the config: %+v vs %+v", c, first)
	}
}

// TestNewFillsDefaultsWithoutMutatingCaller pins New's by-value
// semantics: the pipeline gets a defaults-filled copy, the caller's
// Config is untouched.
func TestNewFillsDefaultsWithoutMutatingCaller(t *testing.T) {
	net, err := nn.MLPSpec("p", []int{4, 8, 4}, nn.ActTanh, false).Build(1)
	if err != nil {
		t.Fatal(err)
	}
	var cfg Config
	p, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Device != nil || cfg.Storage != nil || cfg.Batch != 0 {
		t.Errorf("New mutated the caller's config: %+v", cfg)
	}
	if p.cfg.Device == nil || p.cfg.Storage == nil || p.cfg.Batch != 256 {
		t.Errorf("pipeline config missing defaults: %+v", p.cfg)
	}
}
