// Package pipeline assembles the paper's end-to-end inference pipeline
// (Fig. 1): error-bounded lossy input reduction, storage I/O,
// preprocessing, and (quantized) model execution. Data values flow
// through the real codecs and the real network; phase *timings* come from
// the simulated substrates (internal/hpcio for the storage path,
// internal/gpusim for the accelerator), since the paper's filesystems and
// GPUs are unavailable.
package pipeline

import (
	"fmt"
	"time"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/gpusim"
	"github.com/scidata/errprop/internal/hpcio"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/tensor"
)

// preprocessBW models the host-side normalization/layout pass (two
// streaming passes over the data on a CPU socket).
const preprocessBW = 6e9 // bytes/s

// Config selects the pipeline's reduction and execution setup.
type Config struct {
	// Codec is the compression backend name ("sz", "zfp", "mgard"), or
	// empty for uncompressed I/O.
	Codec string
	// Mode and InputTol configure the codec's error bound.
	Mode     compress.Mode
	InputTol float64
	// Format is the weight quantization format (FP32 = none).
	Format numfmt.Format
	// Device is the simulated accelerator (default RTX 3080 Ti).
	Device *gpusim.Device
	// Storage is the simulated filesystem (default 2.8 GB/s Lustre).
	Storage *hpcio.Storage
	// Decode calibrates decompression speeds (default model).
	Decode hpcio.DecodeModel
	// Batch is the execution batch size (default 256).
	Batch int
}

func (c *Config) fillDefaults() {
	if c.Device == nil {
		c.Device = gpusim.RTX3080Ti
	}
	if c.Storage == nil {
		c.Storage = hpcio.DefaultStorage()
	}
	if c.Decode == nil {
		c.Decode = hpcio.DefaultDecodeModel()
	}
	if c.Batch == 0 {
		c.Batch = 256
	}
}

// Pipeline is a configured inference pipeline over a fixed network.
type Pipeline struct {
	cfg  Config
	net  *nn.Network // original full-precision network
	qnet *nn.Network // execution network (quantized copy, or net itself)
}

// New builds a pipeline, quantizing the network if the config asks for it.
func New(net *nn.Network, cfg Config) (*Pipeline, error) {
	cfg.fillDefaults()
	p := &Pipeline{cfg: cfg, net: net, qnet: net}
	if cfg.Format != numfmt.FP32 {
		q, err := quant.Quantize(net, cfg.Format)
		if err != nil {
			return nil, err
		}
		p.qnet = q
	}
	if cfg.Codec != "" {
		c, err := compress.ByName(cfg.Codec)
		if err != nil {
			return nil, err
		}
		if !c.SupportsMode(cfg.Mode) {
			return nil, fmt.Errorf("pipeline: codec %s does not support mode %s", cfg.Codec, cfg.Mode)
		}
		if cfg.InputTol <= 0 {
			return nil, fmt.Errorf("pipeline: compression requires a positive input tolerance")
		}
	}
	return p, nil
}

// FromPlan builds a pipeline from a planner decision: the plan's format
// and input tolerance drive quantization and the codec configuration.
func FromPlan(net *nn.Network, plan *core.Plan, codec string, norm core.Norm, cfg Config) (*Pipeline, error) {
	cfg.Format = plan.Format
	cfg.Codec = codec
	if norm == core.NormLinf {
		cfg.Mode = compress.AbsLinf
		cfg.InputTol = plan.InputTolLinf
	} else {
		cfg.Mode = compress.L2
		cfg.InputTol = plan.InputTolL2
	}
	return New(net, cfg)
}

// Network returns the execution network (quantized when configured).
func (p *Pipeline) Network() *nn.Network { return p.qnet }

// Result reports one pipeline run.
type Result struct {
	// Output holds the network outputs (OutDim x N).
	Output *tensor.Matrix
	// Samples is the number of inferences performed.
	Samples int
	// RawBytes is the uncompressed input size.
	RawBytes int64
	// Phase timings (simulated).
	IO, Preprocess, Exec time.Duration
	// Phase throughputs in bytes of scientific input data per second.
	IOThroughput, PreprocessThroughput, ExecThroughput float64
	// TotalThroughput is the streaming-pipeline rate: the slowest phase
	// (Fig. 10's "the total throughput is determined by the slower of
	// the two phases").
	TotalThroughput float64
	// Ratio is the achieved compression ratio (1 when uncompressed).
	Ratio float64
	// InputLinf/InputL2 are the achieved input reconstruction errors.
	InputLinf, InputL2 float64
}

// Infer runs the pipeline over an input block stored in field layout
// (feature-major, dims describing the stored grid, dims[0] = feature
// count). It compresses the block (write-side, untimed), simulates the
// timed read+decode, preprocesses, and executes the network on the
// reconstruction.
func (p *Pipeline) Infer(field []float64, dims []int) (*Result, error) {
	inDim := dims[0]
	if inDim != p.net.InputDim {
		return nil, fmt.Errorf("pipeline: field feature dim %d != network input %d", inDim, p.net.InputDim)
	}
	n := 1
	for _, d := range dims[1:] {
		n *= d
	}
	res := &Result{Samples: n, RawBytes: int64(len(field) * 8)}

	// Storage phase.
	var recon []float64
	if p.cfg.Codec == "" {
		rr, err := hpcio.ReadRaw(p.cfg.Storage, len(field))
		if err != nil {
			return nil, err
		}
		recon = field
		res.IO = rr.ReadTime
		res.Ratio = 1
	} else {
		blob, err := compress.Encode(p.cfg.Codec, field, dims, p.cfg.Mode, p.cfg.InputTol)
		if err != nil {
			return nil, err
		}
		rr, err := hpcio.ReadCompressed(p.cfg.Storage, p.cfg.Decode, blob)
		if err != nil {
			return nil, err
		}
		recon = rr.Data
		res.IO = rr.ReadTime + rr.DecodeTime
		res.Ratio = rr.Ratio
		res.InputLinf, res.InputL2 = compress.MeasureError(field, recon)
	}

	// Preprocess phase: reshape feature-major fields into network batch
	// layout (simulated as a streaming pass).
	res.Preprocess = time.Duration(float64(res.RawBytes)/preprocessBW*1e9) * time.Nanosecond
	x := tensor.NewMatrixFrom(inDim, n, recon)

	// Execution phase: real forward passes, simulated device time.
	out := tensor.NewMatrix(outputDim(p.qnet, x), n)
	batch := p.cfg.Batch
	var exec time.Duration
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		xb := tensor.NewMatrix(inDim, hi-lo)
		for f := 0; f < inDim; f++ {
			copy(xb.Data[f*(hi-lo):(f+1)*(hi-lo)], x.Data[f*n+lo:f*n+hi])
		}
		yb := p.qnet.Forward(xb, false)
		for f := 0; f < yb.Rows; f++ {
			copy(out.Data[f*n+lo:f*n+hi], yb.Data[f*(hi-lo):(f+1)*(hi-lo)])
		}
		dt, _ := gpusim.ExecCost(p.qnet, p.cfg.Device, p.cfg.Format, hi-lo)
		exec += dt
	}
	res.Exec = exec
	res.Output = out

	raw := float64(res.RawBytes)
	res.IOThroughput = raw / res.IO.Seconds()
	res.PreprocessThroughput = raw / res.Preprocess.Seconds()
	res.ExecThroughput = raw / res.Exec.Seconds()
	res.TotalThroughput = res.IOThroughput
	for _, tp := range []float64{res.PreprocessThroughput, res.ExecThroughput} {
		if tp < res.TotalThroughput {
			res.TotalThroughput = tp
		}
	}
	return res, nil
}

// outputDim probes the network's output feature count with a single
// zero-sample forward pass.
func outputDim(net *nn.Network, x *tensor.Matrix) int {
	probe := tensor.NewMatrix(x.Rows, 1)
	out := net.Forward(probe, false)
	return out.Rows
}
