package pipeline

import (
	"math"
	"testing"

	"github.com/scidata/errprop/internal/compress"
	_ "github.com/scidata/errprop/internal/compress/mgard"
	_ "github.com/scidata/errprop/internal/compress/sz"
	_ "github.com/scidata/errprop/internal/compress/zfp"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/dataset"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/tensor"
)

func testNet(t testing.TB) *nn.Network {
	t.Helper()
	spec := nn.MLPSpec("m", []int{9, 50, 50, 9}, nn.ActTanh, true)
	net, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	net.RefreshSigmas()
	return net
}

func TestUncompressedPipeline(t *testing.T) {
	net := testNet(t)
	p, err := New(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.H2Combustion(16, 1)
	res, err := p.Infer(d.FieldData(), d.FieldDims)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 256 || res.Output.Rows != 9 || res.Output.Cols != 256 {
		t.Fatalf("result shape wrong: %d samples, %dx%d", res.Samples, res.Output.Rows, res.Output.Cols)
	}
	if res.Ratio != 1 || res.InputLinf != 0 {
		t.Fatalf("uncompressed run should be exact: ratio=%v linf=%v", res.Ratio, res.InputLinf)
	}
	if res.IO <= 0 || res.Exec <= 0 || res.Preprocess <= 0 {
		t.Fatal("phase timings must be positive")
	}
	if res.TotalThroughput > res.IOThroughput || res.TotalThroughput > res.ExecThroughput {
		t.Fatal("total throughput must be the slowest phase")
	}
}

func TestCompressedPipelineOutputsMatchManualPath(t *testing.T) {
	net := testNet(t)
	d := dataset.H2Combustion(16, 2)
	tol := 1e-4
	p, err := New(net, Config{Codec: "sz", Mode: compress.AbsLinf, InputTol: tol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Infer(d.FieldData(), d.FieldDims)
	if err != nil {
		t.Fatal(err)
	}
	if res.InputLinf > tol {
		t.Fatalf("input reconstruction error %v > %v", res.InputLinf, tol)
	}
	// Manual path: compress+decompress, then forward.
	blob, err := compress.Encode("sz", d.FieldData(), d.FieldDims, compress.AbsLinf, tol)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := compress.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := net.Forward(d.FromFieldData(recon), false)
	for i := range want.Data {
		if math.Abs(res.Output.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("pipeline output diverges from manual path at %d", i)
		}
	}
	if res.Ratio <= 1 {
		t.Fatalf("compression ratio %v", res.Ratio)
	}
}

func TestQuantizedPipeline(t *testing.T) {
	net := testNet(t)
	d := dataset.H2Combustion(8, 3)
	p, err := New(net, Config{Format: numfmt.FP16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Infer(d.FieldData(), d.FieldDims)
	if err != nil {
		t.Fatal(err)
	}
	// Quantized execution must differ slightly from full precision...
	full := net.Forward(d.FromFieldData(d.FieldData()), false)
	diff := tensor.Vector(res.Output.Data).Sub(tensor.Vector(full.Data)).Norm2()
	if diff == 0 {
		t.Fatal("FP16 pipeline produced bit-identical outputs (quantization not applied)")
	}
	// ...but stay within the analytical bound.
	an, err := core.AnalyzeNetwork(net, numfmt.FP16)
	if err != nil {
		t.Fatal(err)
	}
	perSample := an.QuantizationBound()
	for s := 0; s < res.Samples; s++ {
		var ss float64
		for f := 0; f < 9; f++ {
			dd := res.Output.At(f, s) - full.At(f, s)
			ss += dd * dd
		}
		if math.Sqrt(ss) > perSample {
			t.Fatalf("sample %d quant error %v > bound %v", s, math.Sqrt(ss), perSample)
		}
	}
}

func TestFromPlanMeetsTolerance(t *testing.T) {
	net := testNet(t)
	d := dataset.H2Combustion(16, 4)
	tol := 1e-3
	plan, err := core.PlanNetwork(net, core.PlanRequest{
		Tol: tol, Norm: core.NormLinf, QuantFraction: 0.5, Conservative: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromPlan(net, plan, "zfp", core.NormLinf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Infer(d.FieldData(), d.FieldDims)
	if err != nil {
		t.Fatal(err)
	}
	full := net.Forward(d.FromFieldData(d.FieldData()), false)
	worst := 0.0
	for i := range full.Data {
		if dd := math.Abs(res.Output.Data[i] - full.Data[i]); dd > worst {
			worst = dd
		}
	}
	if worst > tol {
		t.Fatalf("achieved QoI Linf %v > planned tolerance %v", worst, tol)
	}
}

func TestQuantizationSpeedsUpExecution(t *testing.T) {
	net := testNet(t)
	d := dataset.H2Combustion(16, 5)
	base, err := New(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := New(net, Config{Format: numfmt.FP16})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := base.Infer(d.FieldData(), d.FieldDims)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fast.Infer(d.FieldData(), d.FieldDims)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Exec > rb.Exec {
		t.Fatalf("FP16 exec %v slower than FP32 %v", rf.Exec, rb.Exec)
	}
}

func TestConfigValidation(t *testing.T) {
	net := testNet(t)
	if _, err := New(net, Config{Codec: "nope", Mode: compress.AbsLinf, InputTol: 1e-3}); err == nil {
		t.Fatal("unknown codec should fail")
	}
	if _, err := New(net, Config{Codec: "zfp", Mode: compress.L2, InputTol: 1e-3}); err == nil {
		t.Fatal("zfp+L2 should fail")
	}
	if _, err := New(net, Config{Codec: "sz", Mode: compress.AbsLinf}); err == nil {
		t.Fatal("missing tolerance should fail")
	}
}

func TestInferShapeMismatch(t *testing.T) {
	net := testNet(t)
	p, err := New(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Infer(make([]float64, 8*4), []int{8, 4}); err == nil {
		t.Fatal("wrong feature dim should fail")
	}
}
