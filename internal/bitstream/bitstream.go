// Package bitstream provides bit-granular writers and readers used by the
// lossy codecs (SZ-style Huffman streams, ZFP-style bit-plane coding).
// Bits are packed LSB-first within bytes; multi-bit writes emit the least
// significant bit first, and reads mirror that order exactly.
package bitstream

import (
	"errors"
)

// ErrShortStream is returned when a read runs past the end of the stream.
var ErrShortStream = errors.New("bitstream: read past end of stream")

// Writer accumulates bits into a byte slice.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, LSB-first
	nbit uint   // number of pending bits in cur (< 8 after flushing)
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.cur |= uint64(b&1) << w.nbit
	w.nbit++
	if w.nbit == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nbit = 0, 0
	}
}

// WriteBits appends the low n bits of v, least significant bit first.
// n may be 0..64.
func (w *Writer) WriteBits(v uint64, n uint) {
	for n > 0 {
		take := 8 - w.nbit
		if take > n {
			take = n
		}
		w.cur |= (v & ((1 << take) - 1)) << w.nbit
		w.nbit += take
		v >>= take
		n -= take
		if w.nbit == 8 {
			w.buf = append(w.buf, byte(w.cur))
			w.cur, w.nbit = 0, 0
		}
	}
}

// Bytes flushes any pending partial byte (zero-padded) and returns the
// accumulated buffer. The Writer remains usable; further writes continue
// on a fresh byte boundary.
func (w *Writer) Bytes() []byte {
	if w.nbit > 0 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nbit = 0, 0
	}
	return w.buf
}

// BitLen returns the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nbit) }

// Reader consumes bits from a byte slice.
type Reader struct {
	buf []byte
	pos int  // byte position
	bit uint // bit position within buf[pos]
}

// NewReader returns a Reader over data. The slice is not copied.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrShortStream
	}
	b := uint(r.buf[r.pos]>>r.bit) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, nil
}

// ReadBits reads n bits (0..64), LSB-first, mirroring WriteBits.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	var v uint64
	var got uint
	for got < n {
		if r.pos >= len(r.buf) {
			return 0, ErrShortStream
		}
		avail := 8 - r.bit
		take := n - got
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[r.pos]>>r.bit) & ((1 << take) - 1)
		v |= chunk << got
		got += take
		r.bit += take
		if r.bit == 8 {
			r.bit = 0
			r.pos++
		}
	}
	return v, nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return (len(r.buf)-r.pos)*8 - int(r.bit) }
