package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleBits(t *testing.T) {
	w := NewWriter()
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil || got != want {
			t.Fatalf("bit %d = %d (err %v), want %d", i, got, err, want)
		}
	}
}

func TestWriteBitsRoundTrip(t *testing.T) {
	w := NewWriter()
	vals := []struct {
		v uint64
		n uint
	}{
		{0x5, 3}, {0xFFFF, 16}, {0, 1}, {0x123456789ABCDEF0, 64}, {1, 1}, {0x7F, 7},
	}
	for _, c := range vals {
		w.WriteBits(c.v, c.n)
	}
	r := NewReader(w.Bytes())
	for i, c := range vals {
		got, err := r.ReadBits(c.n)
		if err != nil || got != c.v {
			t.Fatalf("field %d = %#x (err %v), want %#x", i, got, err, c.v)
		}
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0, 13)
	if w.BitLen() != 13 {
		t.Fatalf("BitLen = %d, want 13", w.BitLen())
	}
	b := w.Bytes()
	if len(b) != 2 {
		t.Fatalf("Bytes len = %d, want 2", len(b))
	}
}

func TestShortStream(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrShortStream {
		t.Fatalf("err = %v, want ErrShortStream", err)
	}
	if _, err := NewReader(nil).ReadBits(3); err != ErrShortStream {
		t.Fatalf("err = %v, want ErrShortStream", err)
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0})
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 11 {
		t.Fatalf("Remaining after 5 = %d", r.Remaining())
	}
}

func TestZeroWidthWrite(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFF, 0)
	w.WriteBit(1)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(0); v != 0 {
		t.Fatal("zero-width read should return 0")
	}
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("bit after zero-width write lost")
	}
}

// Property: arbitrary sequences of variable-width writes round-trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%64) + 1
		type field struct {
			v uint64
			n uint
		}
		fields := make([]field, n)
		w := NewWriter()
		for i := range fields {
			width := uint(rng.Intn(64) + 1)
			v := rng.Uint64() & ((1 << width) - 1)
			if width == 64 {
				v = rng.Uint64()
			}
			fields[i] = field{v, width}
			w.WriteBits(v, width)
		}
		r := NewReader(w.Bytes())
		for _, fl := range fields {
			got, err := r.ReadBits(fl.n)
			if err != nil || got != fl.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter()
		for j := 0; j < 1024; j++ {
			w.WriteBits(uint64(j), 11)
		}
		w.Bytes()
	}
}
