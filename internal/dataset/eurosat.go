package dataset

import (
	"math"
	"math/rand"

	"github.com/scidata/errprop/internal/tensor"
)

// EuroSATClasses are the ten land-use/land-cover classes of the EuroSAT
// benchmark.
var EuroSATClasses = []string{
	"AnnualCrop", "Forest", "HerbaceousVegetation", "Highway", "Industrial",
	"Pasture", "PermanentCrop", "Residential", "River", "SeaLake",
}

// EuroSATBands is the number of Sentinel-2 spectral bands (13).
const EuroSATBands = 13

// Classification is a labeled multispectral image dataset.
type Classification struct {
	Name    string
	Images  *tensor.T4 // N x C x H x W, normalized to [-1, 1]
	Labels  []int
	Classes int
}

// N returns the sample count.
func (c *Classification) N() int { return c.Images.N }

// InputDim returns the flattened per-image feature count.
func (c *Classification) InputDim() int { return c.Images.C * c.Images.H * c.Images.W }

// BatchMatrix returns images [lo, hi) as an (InputDim x batch) matrix in
// the nn convention, plus the matching labels.
func (c *Classification) BatchMatrix(lo, hi int) (*tensor.Matrix, []int) {
	if lo < 0 || hi > c.N() || lo >= hi {
		panic("dataset: bad batch range")
	}
	nb := hi - lo
	feat := c.InputDim()
	m := tensor.NewMatrix(feat, nb)
	for k := 0; k < nb; k++ {
		src := c.Images.Sample(lo + k)
		for f := 0; f < feat; f++ {
			m.Data[f*nb+k] = src[f]
		}
	}
	return m, c.Labels[lo:hi]
}

// ImageField returns image i as a flat [C, H, W] block for compression.
func (c *Classification) ImageField(i int) ([]float64, []int) {
	return c.Images.Sample(i), []int{c.Images.C, c.Images.H, c.Images.W}
}

// classSignature returns a per-class 13-band mean reflectance profile in
// [0.05, 0.9], loosely modeled on Sentinel-2 land-cover statistics (water
// dark in NIR, vegetation bright in NIR, built-up flat and bright, ...).
func classSignature(class int, rng *rand.Rand) [EuroSATBands]float64 {
	var sig [EuroSATBands]float64
	for b := 0; b < EuroSATBands; b++ {
		w := float64(b) / float64(EuroSATBands-1) // 0 = blue, 1 = SWIR
		var base float64
		switch class {
		case 1, 2, 5: // Forest, HerbaceousVegetation, Pasture
			base = 0.12 + 0.55*math.Exp(-math.Pow(w-0.6, 2)/0.03) // NIR peak
		case 8, 9: // River, SeaLake
			base = 0.25*math.Exp(-3*w) + 0.05 // dark beyond visible
		case 4, 7: // Industrial, Residential
			base = 0.35 + 0.25*w // bright, rising to SWIR
		case 3: // Highway
			base = 0.30 + 0.10*w
		default: // crops
			base = 0.18 + 0.35*math.Exp(-math.Pow(w-0.55, 2)/0.05) + 0.1*w
		}
		sig[b] = base + rng.NormFloat64()*0.01
	}
	return sig
}

// EuroSAT synthesizes n multispectral 13-band size x size images over 10
// classes: a class spectral signature modulated by class-specific spatial
// texture, quantized to 16-bit levels (the paper stresses the data is
// 16-bit) and normalized to [-1, 1].
func EuroSAT(n, size int, seed int64) *Classification {
	rng := rand.New(rand.NewSource(seed))
	c := &Classification{Name: "eurosat", Classes: 10,
		Images: tensor.NewT4(n, EuroSATBands, size, size), Labels: make([]int, n)}
	for img := 0; img < n; img++ {
		class := img % 10 // balanced
		c.Labels[img] = class
		sig := classSignature(class, rng)

		// Class-specific texture scale: built-up classes are blocky and
		// high-frequency, water nearly flat, vegetation mid-frequency.
		var octaves int
		var rough, amp float64
		switch class {
		case 8, 9:
			octaves, rough, amp = 4, 2.0, 0.03
		case 4, 7, 3:
			octaves, rough, amp = 20, 0.6, 0.20
		default:
			octaves, rough, amp = 10, 1.2, 0.10
		}
		texture := valueNoise2D(size, octaves, rough, rng)
		// A secondary field decorrelates the bands slightly.
		texture2 := valueNoise2D(size, octaves, rough, rng)

		for b := 0; b < EuroSATBands; b++ {
			mix := 0.8 + 0.2*float64(b%3)/2
			for i := 0; i < size; i++ {
				for j := 0; j < size; j++ {
					v := sig[b] * (1 + amp*(mix*texture[i*size+j]+(1-mix)*texture2[i*size+j]))
					if v < 0 {
						v = 0
					}
					if v > 1 {
						v = 1
					}
					// 16-bit quantization, then [-1, 1] normalization.
					q := math.Round(v*65535) / 65535
					c.Images.Set(img, b, i, j, 2*q-1)
				}
			}
		}
	}
	return c
}
