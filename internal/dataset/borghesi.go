package dataset

import (
	"math"
	"math/rand"

	"github.com/scidata/errprop/internal/tensor"
)

// BorghesiInputs names the 13 thermochemical state variables of the
// dissipation-rate workload (mixture-fraction and progress-variable
// gradients plus derived quantities, per the paper's description).
var BorghesiInputs = []string{
	"Z", "C", "gradZ_x", "gradZ_y", "gradC_x", "gradC_y",
	"|gradZ|", "|gradC|", "gradZ.gradC", "T", "rho", "nu_t", "chi_lam",
}

// BorghesiOutputs names the three filtered dissipation rates the MLP
// predicts: mixture-fraction, generalized progress-variable, and cross
// dissipation.
var BorghesiOutputs = []string{"chi_Z", "chi_C", "chi_ZC"}

// BorghesiFlame synthesizes the auto-igniting turbulent jet workload:
// multiscale turbulent scalar fields with sharp fronts (rougher and less
// compressible than the H2 vortex), 13 derived inputs and 3 dissipation-
// rate outputs. The output functions involve products of gradients and
// exponentials, giving *high* input sensitivity (the paper: a 1e-3 input
// perturbation can produce a ~1e-2 QoI change).
func BorghesiFlame(grid int, seed int64) *Regression {
	rng := rand.New(rand.NewSource(seed))
	n := grid * grid
	r := &Regression{Name: "borghesi", InDim: 13, OutDim: 3, FieldDims: []int{13, grid, grid}}
	r.X = tensor.NewMatrix(13, n)
	r.Y = tensor.NewMatrix(3, n)

	// Turbulent mixture fraction: jet profile + rough multiscale noise +
	// ignition-front sharpening.
	zBase := valueNoise2D(grid, 24, 1.0, rng)
	cBase := valueNoise2D(grid, 24, 1.0, rng)
	z := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < grid; i++ {
		jet := math.Exp(-math.Pow((float64(i)/float64(grid)-0.5)/0.18, 2))
		for j := 0; j < grid; j++ {
			idx := i*grid + j
			z[idx] = math.Max(0, math.Min(1, 0.6*jet+0.25*zBase[idx]))
			// Progress variable with a sharp auto-ignition front.
			c[idx] = 0.5 * (1 + math.Tanh(6*(z[idx]-0.45+0.15*cBase[idx])))
		}
	}
	gz := gradComponents2D(z, grid)
	gc := gradComponents2D(c, grid)
	magZ := gradMag2D(z, grid)
	magC := gradMag2D(c, grid)

	for idx := 0; idx < n; idx++ {
		temp := 0.8 + 1.6*c[idx]*(1-math.Abs(z[idx]-0.45))
		rho := 1.2 / temp
		nuT := 0.02 + 0.08*magZ[idx]/(1+magZ[idx])
		chiLam := 2 * 0.03 * magZ[idx] * magZ[idx] / (1 + temp)

		in := []float64{
			z[idx], c[idx], gz.x[idx], gz.y[idx], gc.x[idx], gc.y[idx],
			magZ[idx], magC[idx], gz.x[idx]*gc.x[idx] + gz.y[idx]*gc.y[idx],
			temp, rho, nuT, chiLam,
		}
		for f, v := range in {
			r.X.Data[f*n+idx] = v
		}
		// Filtered dissipation rates: scalar dissipation scales with
		// diffusivity times squared gradients, modulated exponentially by
		// temperature — the source of the task's high sensitivity.
		d := 0.03 * math.Exp(1.1*(temp-1))
		chiZ := 2 * d * magZ[idx] * magZ[idx] * (1 + 3*nuT)
		chiC := 2 * d * magC[idx] * magC[idx] * (1 + 3*nuT)
		cross := gz.x[idx]*gc.x[idx] + gz.y[idx]*gc.y[idx]
		chiZC := 2 * d * cross * (1 + 3*nuT)
		r.Y.Data[0*n+idx] = chiZ
		r.Y.Data[1*n+idx] = chiC
		r.Y.Data[2*n+idx] = chiZC
	}
	normalizeRows(r.X)
	normalizeRows(r.Y)
	return r
}

type grad2 struct{ x, y []float64 }

// gradComponents2D returns centered-difference gradient components.
func gradComponents2D(field []float64, n int) grad2 {
	gx := make([]float64, n*n)
	gy := make([]float64, n*n)
	idx := func(i, j int) int {
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		if j < 0 {
			j = 0
		}
		if j >= n {
			j = n - 1
		}
		return i*n + j
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			gx[i*n+j] = (field[idx(i, j+1)] - field[idx(i, j-1)]) * float64(n) / 2
			gy[i*n+j] = (field[idx(i+1, j)] - field[idx(i-1, j)]) * float64(n) / 2
		}
	}
	return grad2{gx, gy}
}
