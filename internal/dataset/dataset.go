// Package dataset provides synthetic stand-ins for the paper's three
// scientific workloads: nine-species hydrogen combustion (reaction-rate
// regression), the Borghesi n-dodecane flame (dissipation-rate
// regression) and EuroSAT multispectral land-cover classification. The
// real DNS databases and satellite archives are not redistributable, so
// each generator reproduces the *properties the paper's analysis depends
// on*: dimensionality, smoothness/compressibility of the stored fields,
// input normalization to [-1, 1], and the relative input sensitivity
// ordering (H2 low, EuroSAT middle, Borghesi high).
package dataset

import (
	"math"
	"math/rand"

	"github.com/scidata/errprop/internal/tensor"
)

// Regression is a supervised regression dataset in the nn package's
// column-major convention plus the spatial field layout its inputs were
// generated on (used when compressing the stored input block).
type Regression struct {
	Name   string
	InDim  int
	OutDim int
	// X is (InDim x N), normalized to [-1, 1] per feature.
	X *tensor.Matrix
	// Y is (OutDim x N), normalized to [-1, 1] per feature.
	Y *tensor.Matrix
	// FieldDims describes the on-disk layout of X for compression:
	// [InDim, H, W] — each feature is a smooth 2-D field.
	FieldDims []int
}

// N returns the sample count.
func (r *Regression) N() int { return r.X.Cols }

// FieldData returns the input block in its on-disk field layout
// (feature-major: all of feature 0's grid, then feature 1's, ...), the
// representation handed to the lossy compressors.
func (r *Regression) FieldData() []float64 {
	n := r.N()
	out := make([]float64, r.InDim*n)
	for f := 0; f < r.InDim; f++ {
		copy(out[f*n:(f+1)*n], r.X.Data[f*n:(f+1)*n])
	}
	return out
}

// FromFieldData converts a (possibly reconstructed) field block back into
// the (InDim x N) input matrix.
func (r *Regression) FromFieldData(data []float64) *tensor.Matrix {
	n := r.N()
	if len(data) != r.InDim*n {
		panic("dataset: field data length mismatch")
	}
	m := tensor.NewMatrix(r.InDim, n)
	copy(m.Data, data)
	return m
}

// Batch returns columns [lo, hi) of X and Y as new matrices.
func (r *Regression) Batch(lo, hi int) (*tensor.Matrix, *tensor.Matrix) {
	if lo < 0 || hi > r.N() || lo >= hi {
		panic("dataset: bad batch range")
	}
	nb := hi - lo
	x := tensor.NewMatrix(r.InDim, nb)
	y := tensor.NewMatrix(r.OutDim, nb)
	for f := 0; f < r.InDim; f++ {
		copy(x.Data[f*nb:(f+1)*nb], r.X.Data[f*r.N()+lo:f*r.N()+hi])
	}
	for f := 0; f < r.OutDim; f++ {
		copy(y.Data[f*nb:(f+1)*nb], r.Y.Data[f*r.N()+lo:f*r.N()+hi])
	}
	return x, y
}

// normalizeRows min-max normalizes each row of m into [-1, 1] in place.
// Constant rows map to 0.
func normalizeRows(m *tensor.Matrix) {
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		min, max := row[0], row[0]
		for _, v := range row {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		span := max - min
		if span == 0 {
			for i := range row {
				row[i] = 0
			}
			continue
		}
		for i := range row {
			row[i] = 2*(row[i]-min)/span - 1
		}
	}
}

// valueNoise2D builds a smooth random field on an n x n grid by summing
// `octaves` random cosine modes with 1/k amplitude decay — a cheap
// stand-in for the multiscale structure of turbulence fields.
func valueNoise2D(n, octaves int, roughness float64, rng *rand.Rand) []float64 {
	field := make([]float64, n*n)
	for o := 0; o < octaves; o++ {
		k := float64(o + 1)
		amp := math.Pow(k, -roughness)
		kx := (rng.Float64()*2 - 1) * k * math.Pi
		ky := (rng.Float64()*2 - 1) * k * math.Pi
		phase := rng.Float64() * 2 * math.Pi
		for i := 0; i < n; i++ {
			y := float64(i) / float64(n)
			for j := 0; j < n; j++ {
				x := float64(j) / float64(n)
				field[i*n+j] += amp * math.Cos(kx*x+ky*y+phase)
			}
		}
	}
	return field
}

// gradMag2D returns the centered-difference gradient magnitude of an
// n x n field.
func gradMag2D(field []float64, n int) []float64 {
	out := make([]float64, n*n)
	idx := func(i, j int) int {
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		if j < 0 {
			j = 0
		}
		if j >= n {
			j = n - 1
		}
		return i*n + j
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dx := (field[idx(i, j+1)] - field[idx(i, j-1)]) * float64(n) / 2
			dy := (field[idx(i+1, j)] - field[idx(i-1, j)]) * float64(n) / 2
			out[i*n+j] = math.Sqrt(dx*dx + dy*dy)
		}
	}
	return out
}
