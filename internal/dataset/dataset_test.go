package dataset

import (
	"math"
	"sort"
	"testing"

	"github.com/scidata/errprop/internal/compress"
	_ "github.com/scidata/errprop/internal/compress/sz"
	_ "github.com/scidata/errprop/internal/compress/zfp"
)

func TestH2CombustionShapes(t *testing.T) {
	d := H2Combustion(16, 1)
	if d.InDim != 9 || d.OutDim != 9 || d.N() != 256 {
		t.Fatalf("shapes: in=%d out=%d n=%d", d.InDim, d.OutDim, d.N())
	}
	if len(d.FieldDims) != 3 || d.FieldDims[0] != 9 {
		t.Fatalf("field dims %v", d.FieldDims)
	}
}

func TestNormalizationRange(t *testing.T) {
	for _, d := range []*Regression{H2Combustion(16, 2), BorghesiFlame(16, 2)} {
		for i, v := range d.X.Data {
			if v < -1-1e-12 || v > 1+1e-12 || math.IsNaN(v) {
				t.Fatalf("%s: X[%d] = %v out of [-1,1]", d.Name, i, v)
			}
		}
		for i, v := range d.Y.Data {
			if v < -1-1e-12 || v > 1+1e-12 || math.IsNaN(v) {
				t.Fatalf("%s: Y[%d] = %v out of [-1,1]", d.Name, i, v)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := H2Combustion(12, 7)
	b := H2Combustion(12, 7)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed should give identical data")
		}
	}
	c := H2Combustion(12, 8)
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestFieldDataRoundTrip(t *testing.T) {
	d := BorghesiFlame(10, 3)
	f := d.FieldData()
	back := d.FromFieldData(f)
	for i := range d.X.Data {
		if back.Data[i] != d.X.Data[i] {
			t.Fatal("FieldData/FromFieldData not inverse")
		}
	}
}

func TestBatch(t *testing.T) {
	d := H2Combustion(8, 4)
	x, y := d.Batch(5, 15)
	if x.Cols != 10 || y.Cols != 10 || x.Rows != 9 || y.Rows != 9 {
		t.Fatalf("batch shapes %dx%d, %dx%d", x.Rows, x.Cols, y.Rows, y.Cols)
	}
	// Sample 7 of the batch equals sample 12 of the dataset.
	for f := 0; f < 9; f++ {
		if x.At(f, 7) != d.X.At(f, 12) {
			t.Fatal("batch columns misaligned")
		}
	}
}

func TestH2MoreCompressibleThanBorghesi(t *testing.T) {
	// The paper: the single-vortex H2 data compresses extremely well; the
	// turbulent Borghesi fields are rougher.
	h2 := H2Combustion(32, 5)
	bf := BorghesiFlame(32, 5)
	ratio := func(d *Regression) float64 {
		blob, err := compress.Encode("sz", d.FieldData(), d.FieldDims, compress.AbsLinf, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		return compress.Ratio(len(d.FieldData()), blob)
	}
	rh, rb := ratio(h2), ratio(bf)
	if rh <= rb {
		t.Fatalf("H2 ratio %.1f should exceed Borghesi ratio %.1f", rh, rb)
	}
}

func TestBorghesiMoreSensitive(t *testing.T) {
	// Sensitivity proxy: the paper's statement is about how sharply the
	// QoI responds to input perturbations in the worst case, so compare a
	// high quantile of the per-step output/input variation ratio between
	// adjacent grid points.
	sens := func(d *Regression) float64 {
		n := d.N()
		ratios := make([]float64, 0, n-1)
		for i := 0; i+1 < n; i++ {
			var dx, dy float64
			for f := 0; f < d.InDim; f++ {
				dx += math.Abs(d.X.At(f, i+1) - d.X.At(f, i))
			}
			for f := 0; f < d.OutDim; f++ {
				dy += math.Abs(d.Y.At(f, i+1) - d.Y.At(f, i))
			}
			ratios = append(ratios, (dy/float64(d.OutDim))/(dx/float64(d.InDim)+1e-9))
		}
		sort.Float64s(ratios)
		return ratios[len(ratios)*99/100]
	}
	h2 := sens(H2Combustion(24, 6))
	bf := sens(BorghesiFlame(24, 6))
	if bf <= h2 {
		t.Fatalf("Borghesi sensitivity %.3f should exceed H2's %.3f", bf, h2)
	}
}

func TestEuroSATShapes(t *testing.T) {
	d := EuroSAT(20, 16, 1)
	if d.N() != 20 || d.Images.C != 13 || d.Images.H != 16 {
		t.Fatalf("shapes wrong: %+v", d.Images)
	}
	if d.InputDim() != 13*16*16 {
		t.Fatalf("InputDim = %d", d.InputDim())
	}
	counts := make([]int, 10)
	for _, l := range d.Labels {
		if l < 0 || l > 9 {
			t.Fatalf("label %d", l)
		}
		counts[l]++
	}
	for c, k := range counts {
		if k != 2 {
			t.Fatalf("class %d has %d samples, want 2 (balanced)", c, k)
		}
	}
}

func TestEuroSATRangeAnd16Bit(t *testing.T) {
	d := EuroSAT(5, 8, 2)
	for _, v := range d.Images.Data {
		if v < -1 || v > 1 || math.IsNaN(v) {
			t.Fatalf("pixel %v out of range", v)
		}
		// Every value must sit on the 16-bit grid.
		q := (v + 1) / 2 * 65535
		if math.Abs(q-math.Round(q)) > 1e-9 {
			t.Fatalf("pixel %v not 16-bit quantized", v)
		}
	}
}

func TestEuroSATClassesSeparable(t *testing.T) {
	// Water and forest must have clearly different mean NIR response —
	// the property the classifier learns.
	d := EuroSAT(40, 8, 3)
	nirBand := 8
	mean := func(class int) float64 {
		var s float64
		var k int
		for i := 0; i < d.N(); i++ {
			if d.Labels[i] != class {
				continue
			}
			for p := 0; p < 64; p++ {
				s += d.Images.At(i, nirBand, p/8, p%8)
				k++
			}
		}
		return s / float64(k)
	}
	forest, water := mean(1), mean(9)
	if forest-water < 0.2 {
		t.Fatalf("forest NIR %.3f not separable from water %.3f", forest, water)
	}
}

func TestEuroSATBatchMatrix(t *testing.T) {
	d := EuroSAT(6, 8, 4)
	m, labels := d.BatchMatrix(2, 5)
	if m.Rows != d.InputDim() || m.Cols != 3 || len(labels) != 3 {
		t.Fatalf("batch shapes %dx%d / %d", m.Rows, m.Cols, len(labels))
	}
	if m.At(0, 0) != d.Images.Sample(2)[0] {
		t.Fatal("batch misaligned")
	}
}

func TestEuroSATImagesCompressible(t *testing.T) {
	d := EuroSAT(3, 32, 5)
	field, dims := d.ImageField(0)
	blob, err := compress.Encode("zfp", field, dims, compress.AbsLinf, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if r := compress.Ratio(len(field), blob); r < 4 {
		t.Fatalf("EuroSAT image ratio only %.1f", r)
	}
}
