package dataset

import (
	"math"
	"math/rand"

	"github.com/scidata/errprop/internal/tensor"
)

// The nine species of the simplified hydrogen mechanism the paper's first
// workload predicts reaction rates for.
var H2Species = []string{"H2", "O2", "H2O", "H", "O", "OH", "HO2", "H2O2", "N2"}

// H2Combustion synthesizes the hydrogen-combustion workload: mass
// fractions of 9 species on a grid x grid field dominated by a single
// central vortex (the paper notes this makes the inputs highly
// compressible), with reaction rates from a surrogate Arrhenius-style
// kinetics model. Inputs and outputs are normalized to [-1, 1].
//
// The surrogate kinetics are built so the QoI has *low* sensitivity to
// input perturbations (the paper: a 1e-3 input perturbation produces a
// ~1e-3 QoI change).
func H2Combustion(grid int, seed int64) *Regression {
	rng := rand.New(rand.NewSource(seed))
	n := grid * grid
	r := &Regression{Name: "h2comb", InDim: 9, OutDim: 9, FieldDims: []int{9, grid, grid}}
	r.X = tensor.NewMatrix(9, n)
	r.Y = tensor.NewMatrix(9, n)

	// A single vortex at the field center: mixing is a smooth function of
	// the swirl-distorted radius.
	cx, cy := 0.5, 0.5
	swirl := 3.0 + rng.Float64()*2
	noise := valueNoise2D(grid, 6, 1.5, rng)

	for i := 0; i < grid; i++ {
		for j := 0; j < grid; j++ {
			x := float64(j)/float64(grid) - cx
			y := float64(i)/float64(grid) - cy
			rad := math.Sqrt(x*x + y*y)
			theta := math.Atan2(y, x) + swirl*math.Exp(-rad*rad/0.08)
			// Mixture fraction: 1 in the core (fuel), 0 outside (air),
			// wrinkled by the vortex arm.
			z := 0.5 * (1 - math.Tanh((rad-0.25-0.05*math.Sin(3*theta))/0.08))
			z += 0.004 * noise[i*grid+j]
			z = math.Max(0, math.Min(1, z))
			// Reaction progress peaks at the flame front (z ~ 0.5).
			prog := math.Exp(-math.Pow(z-0.5, 2) / 0.02)

			ys := h2Composition(z, prog)
			for s := 0; s < 9; s++ {
				r.X.Data[s*n+i*grid+j] = ys[s]
			}
			rates := h2ReactionRates(ys)
			for s := 0; s < 9; s++ {
				r.Y.Data[s*n+i*grid+j] = rates[s]
			}
		}
	}
	normalizeRows(r.X)
	normalizeRows(r.Y)
	return r
}

// h2Composition maps (mixture fraction, progress) to 9 species mass
// fractions that sum to ~1 with N2 as the bath gas.
func h2Composition(z, prog float64) [9]float64 {
	var y [9]float64
	y[0] = 0.11 * z * (1 - prog)       // H2 (fuel, consumed by progress)
	y[1] = 0.23 * (1 - z) * (1 - prog) // O2
	y[2] = 0.25 * prog * (0.3 + 0.7*z) // H2O (product)
	y[3] = 0.004 * prog * z            // H radical
	y[4] = 0.003 * prog * (1 - z)      // O radical
	y[5] = 0.012 * prog                // OH
	y[6] = 0.002 * prog * (1 - prog)   // HO2 (intermediate)
	y[7] = 0.001 * prog * (1 - prog)   // H2O2
	sum := 0.0
	for i := 0; i < 8; i++ {
		sum += y[i]
	}
	y[8] = math.Max(0, 1-sum) // N2 balance
	return y
}

// h2ReactionRates is a smooth surrogate for the 9-species source terms:
// Arrhenius-style rates driven by a composition-derived temperature.
// Low Lipschitz constants by construction (rates scale with modest
// products of mass fractions).
func h2ReactionRates(y [9]float64) [9]float64 {
	// Temperature surrogate: hot where products and radicals are.
	temp := 0.3 + 2.2*y[2] + 9*y[5] // in 1000K units
	ar := math.Exp(-1.2 / temp)     // Arrhenius factor

	// Elementary steps (surrogate constants).
	r1 := 8 * y[0] * y[1] * ar        // H2 + O2 chain initiation
	r2 := 30 * y[0] * y[5] * ar       // H2 + OH -> H2O + H
	r3 := 25 * y[3] * y[1] * ar       // H + O2 -> OH + O
	r4 := 20 * y[4] * y[0] * ar       // O + H2 -> OH + H
	r5 := 12 * y[3] * y[1] * (1 - ar) // H + O2 + M -> HO2
	r6 := 15 * y[6] * y[6]            // HO2 + HO2 -> H2O2 + O2
	r7 := 18 * y[7] * ar              // H2O2 + M -> 2 OH

	var w [9]float64
	w[0] = -r1 - r2 - r4            // H2
	w[1] = -r1 - r3 - r5 + r6       // O2
	w[2] = r2                       // H2O
	w[3] = r2 + r4 - r3 - r5        // H
	w[4] = r3 - r4                  // O
	w[5] = r1 + r3 + r4 - r2 + 2*r7 // OH
	w[6] = r5 - 2*r6                // HO2
	w[7] = r6 - r7                  // H2O2
	w[8] = 0                        // N2 inert
	return w
}
