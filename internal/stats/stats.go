// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: geometric means, percentiles, relative errors,
// and fixed-width text tables matching the series the paper's figures
// report.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values; zeros and
// negatives are skipped (they would annihilate the product), and 0 is
// returned if nothing survives.
func GeoMean(xs []float64) float64 {
	var s float64
	var k int
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			k++
		}
	}
	if k == 0 {
		return 0
	}
	return math.Exp(s / float64(k))
}

// MinMax returns the extremes (0, 0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank
// on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// RelErr returns |a-b| / max(|b|, floor): the relative error of a against
// reference b with a tiny floor guarding division by zero.
func RelErr(a, b float64) float64 {
	d := math.Abs(a - b)
	ref := math.Abs(b)
	if ref < 1e-300 {
		ref = 1e-300
	}
	return d / ref
}

// Table accumulates rows and renders a fixed-width text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; values are formatted with %v, floats compactly
// in scientific notation when small or large.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case float64:
		av := math.Abs(v)
		if v == 0 {
			return "0"
		}
		if av >= 1e5 || av < 1e-3 {
			return fmt.Sprintf("%.3e", v)
		}
		return fmt.Sprintf("%.4g", v)
	case float32:
		return formatCell(float64(v))
	default:
		return fmt.Sprintf("%v", c)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }
