package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-12 {
		t.Fatalf("geomean = %v", g)
	}
	if g := GeoMean([]float64{0, 10, 10}); math.Abs(g-10) > 1e-12 {
		t.Fatalf("geomean with zero = %v", g)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{0}) != 0 {
		t.Fatal("degenerate geomean")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("percentile extremes wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("median = %v", Percentile(xs, 50))
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7})
	if min != -1 || max != 7 {
		t.Fatalf("minmax = %v, %v", min, max)
	}
}

func TestRelErr(t *testing.T) {
	if math.Abs(RelErr(1.1, 1)-0.1) > 1e-12 {
		t.Fatalf("RelErr = %v", RelErr(1.1, 1))
	}
	if math.IsInf(RelErr(1, 0), 0) || math.IsNaN(RelErr(1, 0)) {
		t.Fatal("RelErr should guard zero reference")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 1e-9)
	s := tb.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "1.000e-09") {
		t.Fatalf("table render wrong:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, sep, 2 rows
		t.Fatalf("table has %d lines", len(lines))
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}
