package checkpoint

import (
	"errors"
	"os"

	"github.com/scidata/errprop/internal/detrand"
	"github.com/scidata/errprop/internal/nn"
)

// Loop wires periodic checkpointing into a training loop. Typical use:
//
//	loop := &checkpoint.Loop{Dir: dir, Every: 100, Keep: 3}
//	start, err := loop.Resume(trainer, rng)   // 0 on a fresh start
//	for step := start; step < total; step++ {
//	    ... trainer.StepMSE(nextBatch(rng)) ...
//	    if err := loop.AfterStep(trainer, rng); err != nil { ... }
//	}
//
// Resume restores the newest usable checkpoint (skipping damaged files)
// into the trainer and RNG, returning the step to continue from; the
// caller's only obligation is to derive all data order from rng so the
// replayed-from-checkpoint run sees the batches the killed run would
// have seen.
type Loop struct {
	// Dir is the checkpoint directory. Empty disables checkpointing:
	// Resume returns 0 and AfterStep does nothing, so callers can wire
	// the Loop unconditionally.
	Dir string
	// Every saves a checkpoint when trainer.Steps() is a positive
	// multiple of it; <= 0 disables periodic saves.
	Every int64
	// Keep bounds how many checkpoints are retained (<= 0 keeps all).
	Keep int
}

// enabled reports whether this loop is wired to a directory.
func (l *Loop) enabled() bool { return l != nil && l.Dir != "" }

// Resume restores the newest usable checkpoint into tr and rng and
// returns its step count. A missing or empty directory is a fresh
// start: returns 0 with no error and leaves tr and rng untouched.
func (l *Loop) Resume(tr *nn.Trainer, rng *detrand.Stream) (int64, error) {
	if !l.enabled() {
		return 0, nil
	}
	st, _, err := LoadLatest(l.Dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if err := tr.RestoreState(st.Trainer); err != nil {
		return 0, err
	}
	if rng != nil {
		rng.Restore(st.RNGSeed, st.RNGCount)
	}
	return st.Step(), nil
}

// AfterStep saves a checkpoint if the trainer's step count hits the
// Every cadence, then prunes old checkpoints past Keep.
func (l *Loop) AfterStep(tr *nn.Trainer, rng *detrand.Stream) error {
	if !l.enabled() || l.Every <= 0 {
		return nil
	}
	step := tr.Steps()
	if step <= 0 || step%l.Every != 0 {
		return nil
	}
	return l.SaveNow(tr, rng)
}

// SaveNow unconditionally checkpoints the current trainer and RNG state
// (the final-step save at the end of a training run).
func (l *Loop) SaveNow(tr *nn.Trainer, rng *detrand.Stream) error {
	if !l.enabled() {
		return nil
	}
	st := &State{Trainer: tr.CaptureState()}
	if rng != nil {
		st.RNGSeed, st.RNGCount = rng.State()
	}
	if _, err := Save(l.Dir, st); err != nil {
		return err
	}
	return Prune(l.Dir, l.Keep)
}
