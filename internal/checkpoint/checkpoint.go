// Package checkpoint provides crash-safe, bit-exact training
// checkpoints. A checkpoint captures everything the next optimizer step
// depends on — parameter values, optimizer moments, PSN sigma state
// (estimates and power-iteration warm-start vectors), the data-order RNG
// position, and the step counter — so a run killed at any point and
// resumed from its last checkpoint produces a weight trajectory exactly
// equal (==, not approximately) to the uninterrupted run.
//
// Durability has two layers:
//
//   - The encoding frames the body with a declared length and a CRC32C
//     checksum (like the compress container and model v3), so damaged
//     bytes decode to a typed integrity error, never to silently wrong
//     training state.
//   - Save is atomic: the bytes are written to a temp file in the target
//     directory, fsynced, renamed over the final name, and the directory
//     is fsynced. A crash mid-save leaves either the old checkpoint set
//     or the new one — never a half-written file under a final name.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/nn"
)

// Typed sentinels, shared with the rest of the fault path.
var (
	// ErrCorrupt aliases integrity.ErrCorrupt.
	ErrCorrupt = integrity.ErrCorrupt
	// ErrTruncated aliases integrity.ErrTruncated.
	ErrTruncated = integrity.ErrTruncated
)

// State is the full resumable training state.
type State struct {
	// Trainer is the nn-level snapshot: step counter, parameters, sigma
	// state, optimizer moments.
	Trainer *nn.TrainerState
	// RNGSeed/RNGCount pin the data-order RNG (detrand.Stream) position,
	// so the resumed run sees the same batches in the same order.
	RNGSeed, RNGCount uint64
}

// Step reports the step count the checkpoint was captured at.
func (s *State) Step() int64 { return s.Trainer.Step }

const (
	magic = "ERRPROPCK1"
	// maxBody caps the declared body length (1 GiB) so a corrupt frame
	// cannot size an absurd allocation.
	maxBody = 1 << 30
	// Ext is the checkpoint file extension.
	Ext    = ".ckpt"
	tmpExt = ".ckpt.tmp"
)

// Encode serializes st into the checksummed frame.
//
//errprop:deterministic the frame is a pure function of the state, so checksums are reproducible
func Encode(st *State) ([]byte, error) {
	if st == nil || st.Trainer == nil {
		return nil, fmt.Errorf("checkpoint: nil state")
	}
	var b bytes.Buffer
	w := func(v any) { binary.Write(&b, binary.LittleEndian, v) }
	vec := func(v []float64) {
		w(uint32(len(v)))
		for _, x := range v {
			w(x)
		}
	}
	tr := st.Trainer
	w(uint64(tr.Step))
	w(st.RNGSeed)
	w(st.RNGCount)
	kind := tr.Opt.Kind
	if len(kind) > 255 {
		return nil, fmt.Errorf("checkpoint: optimizer kind %q too long", kind)
	}
	w(uint8(len(kind)))
	b.WriteString(kind)
	w(uint64(tr.Opt.Step))
	w(uint32(len(tr.Params)))
	for _, p := range tr.Params {
		vec(p)
	}
	vec(tr.Sigmas)
	w(uint32(len(tr.IterVecs)))
	for _, v := range tr.IterVecs {
		vec(v)
	}
	w(uint32(len(tr.Opt.Slots)))
	for _, s := range tr.Opt.Slots {
		vec(s)
	}

	body := b.Bytes()
	out := bytes.NewBuffer(make([]byte, 0, len(magic)+12+len(body)))
	out.WriteString(magic)
	binary.Write(out, binary.LittleEndian, uint64(len(body)))
	binary.Write(out, binary.LittleEndian, integrity.Checksum(body))
	out.Write(body)
	return out.Bytes(), nil
}

// Decode parses a checkpoint frame. Damage surfaces as an error wrapping
// ErrCorrupt or ErrTruncated; Decode never panics and never returns a
// partially-filled state without an error.
//
//errprop:deterministic
func Decode(raw []byte) (*State, error) {
	if len(raw) < len(magic) {
		return nil, fmt.Errorf("checkpoint: %w: %d bytes, shorter than magic", ErrTruncated, len(raw))
	}
	if string(raw[:len(magic)]) != magic {
		return nil, fmt.Errorf("checkpoint: %w: bad magic %q", ErrCorrupt, raw[:len(magic)])
	}
	rest := raw[len(magic):]
	if len(rest) < 12 {
		return nil, fmt.Errorf("checkpoint: %w: missing frame header", ErrTruncated)
	}
	bodyLen := binary.LittleEndian.Uint64(rest)
	crc := binary.LittleEndian.Uint32(rest[8:])
	rest = rest[12:]
	if bodyLen > maxBody {
		return nil, fmt.Errorf("checkpoint: %w: declared body length %d exceeds %d", ErrCorrupt, bodyLen, int64(maxBody))
	}
	if uint64(len(rest)) < bodyLen {
		return nil, fmt.Errorf("checkpoint: %w: body %d of declared %d bytes", ErrTruncated, len(rest), bodyLen)
	}
	body := rest[:bodyLen]
	if got := integrity.Checksum(body); got != crc {
		return nil, fmt.Errorf("checkpoint: %w: body checksum %08x != stored %08x", ErrCorrupt, got, crc)
	}
	return decodeBody(bytes.NewReader(body))
}

// decodeBody parses the checksum-verified body. Any structural
// inconsistency inside verified bytes means the checkpoint was written
// wrong — ErrCorrupt.
func decodeBody(r *bytes.Reader) (*State, error) {
	bad := func(what string) error {
		return fmt.Errorf("checkpoint: %w: inconsistent %s", ErrCorrupt, what)
	}
	u64 := func() (uint64, bool) {
		var v uint64
		if binary.Read(r, binary.LittleEndian, &v) != nil {
			return 0, false
		}
		return v, true
	}
	u32 := func() (uint32, bool) {
		var v uint32
		if binary.Read(r, binary.LittleEndian, &v) != nil {
			return 0, false
		}
		return v, true
	}
	vec := func() ([]float64, bool) {
		n, ok := u32()
		if !ok || uint64(n)*8 > uint64(r.Len()) {
			return nil, false
		}
		v := make([]float64, n)
		if binary.Read(r, binary.LittleEndian, v) != nil {
			return nil, false
		}
		return v, true
	}

	st := &State{Trainer: &nn.TrainerState{}}
	step, ok := u64()
	if !ok {
		return nil, bad("step counter")
	}
	if int64(step) < 0 {
		return nil, bad("step counter (negative)")
	}
	st.Trainer.Step = int64(step)
	if st.RNGSeed, ok = u64(); !ok {
		return nil, bad("rng seed")
	}
	if st.RNGCount, ok = u64(); !ok {
		return nil, bad("rng count")
	}
	var kl uint8
	if binary.Read(r, binary.LittleEndian, &kl) != nil {
		return nil, bad("optimizer kind length")
	}
	kind := make([]byte, kl)
	if _, err := io.ReadFull(r, kind); err != nil {
		return nil, bad("optimizer kind")
	}
	st.Trainer.Opt.Kind = string(kind)
	optStep, ok := u64()
	if !ok {
		return nil, bad("optimizer step")
	}
	st.Trainer.Opt.Step = int64(optStep)

	nParams, ok := u32()
	if !ok || uint64(nParams)*4 > uint64(r.Len()) {
		return nil, bad("parameter count")
	}
	st.Trainer.Params = make([][]float64, nParams)
	for i := range st.Trainer.Params {
		if st.Trainer.Params[i], ok = vec(); !ok {
			return nil, bad(fmt.Sprintf("parameter %d", i))
		}
	}
	if st.Trainer.Sigmas, ok = vec(); !ok {
		return nil, bad("sigma estimates")
	}
	nIter, ok := u32()
	if !ok || uint64(nIter)*4 > uint64(r.Len()) {
		return nil, bad("iteration vector count")
	}
	st.Trainer.IterVecs = make([][]float64, nIter)
	for i := range st.Trainer.IterVecs {
		if st.Trainer.IterVecs[i], ok = vec(); !ok {
			return nil, bad(fmt.Sprintf("iteration vector %d", i))
		}
	}
	nSlots, ok := u32()
	if !ok || uint64(nSlots)*4 > uint64(r.Len()) {
		return nil, bad("optimizer slot count")
	}
	st.Trainer.Opt.Slots = make([][]float64, nSlots)
	for i := range st.Trainer.Opt.Slots {
		if st.Trainer.Opt.Slots[i], ok = vec(); !ok {
			return nil, bad(fmt.Sprintf("optimizer slot %d", i))
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("checkpoint: %w: %d trailing bytes", ErrCorrupt, r.Len())
	}
	return st, nil
}

// FileName returns the canonical checkpoint file name for a step.
func FileName(step int64) string {
	return fmt.Sprintf("step-%012d%s", step, Ext)
}

// stepFromName parses the step out of a canonical checkpoint name.
func stepFromName(name string) (int64, bool) {
	var step int64
	var ext string
	n, err := fmt.Sscanf(name, "step-%012d%s", &step, &ext)
	if n != 2 || err != nil || ext != Ext || step < 0 {
		return 0, false
	}
	return step, true
}

// Save atomically writes st into dir under the canonical name for its
// step and returns the final path. The write is crash-safe: temp file in
// the same directory, fsync, rename, directory fsync.
func Save(dir string, st *State) (string, error) {
	raw, err := Encode(st)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	final := filepath.Join(dir, FileName(st.Step()))
	tmp, err := os.CreateTemp(dir, FileName(st.Step())+tmpExt)
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return final, nil
}

// LoadFile reads and decodes one checkpoint file.
func LoadFile(path string) (*State, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st, err := Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}

// List returns the canonical checkpoint paths in dir, newest (highest
// step) first. Temp files and foreign names are ignored. A missing dir
// is an empty list, not an error.
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	type cand struct {
		path string
		step int64
	}
	var cs []cand
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if step, ok := stepFromName(e.Name()); ok {
			cs = append(cs, cand{filepath.Join(dir, e.Name()), step})
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].step > cs[j].step })
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.path
	}
	return out, nil
}

// LoadLatest loads the newest decodable checkpoint in dir, skipping
// over damaged files (a torn or bit-rotted newest checkpoint falls back
// to the previous good one — crash safety must not depend on the last
// write surviving). Returns os.ErrNotExist when dir holds no usable
// checkpoint; damaged files encountered along the way are reported in
// the error's message.
func LoadLatest(dir string) (*State, string, error) {
	paths, err := List(dir)
	if err != nil {
		return nil, "", err
	}
	var skipped []string
	for _, p := range paths {
		st, err := LoadFile(p)
		if err == nil {
			return st, p, nil
		}
		if !integrity.IsIntegrityError(err) {
			return nil, "", err
		}
		skipped = append(skipped, fmt.Sprintf("%s (%v)", filepath.Base(p), err))
	}
	if len(skipped) > 0 {
		return nil, "", fmt.Errorf("checkpoint: no usable checkpoint in %s (damaged: %v): %w", dir, skipped, os.ErrNotExist)
	}
	return nil, "", fmt.Errorf("checkpoint: no checkpoint in %s: %w", dir, os.ErrNotExist)
}

// Prune removes all but the keep newest checkpoints in dir. keep <= 0
// keeps everything.
func Prune(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	paths, err := List(dir)
	if err != nil {
		return err
	}
	if keep > len(paths) {
		keep = len(paths)
	}
	for _, p := range paths[keep:] {
		if err := os.Remove(p); err != nil {
			return err
		}
	}
	return nil
}
