package checkpoint_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/scidata/errprop/internal/checkpoint"
	"github.com/scidata/errprop/internal/detrand"
	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/tensor"
)

// harness bundles a PSN MLP trainer with a detrand-driven batch stream,
// the shape of a real training loop.
type harness struct {
	tr  *nn.Trainer
	rng *detrand.Stream
}

func newHarness(t *testing.T, optKind string) *harness {
	t.Helper()
	spec := nn.MLPSpec("ck-"+optKind, []int{5, 10, 10, 2}, nn.ActTanh, true)
	net, err := spec.Build(21)
	if err != nil {
		t.Fatal(err)
	}
	var opt nn.Optimizer
	switch optKind {
	case "sgd":
		opt = nn.NewSGD(0.05, 0.9, 1e-4)
	case "adam":
		opt = nn.NewAdam(1e-3)
	default:
		t.Fatalf("unknown optimizer %q", optKind)
	}
	tr, err := nn.NewTrainer(net, opt, nn.TrainConfig{Workers: 2, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{tr: tr, rng: detrand.New(77)}
}

// step draws one batch from the harness RNG and trains on it. All data
// order flows through the RNG, so resume correctness depends on the
// checkpoint restoring the stream position exactly.
func (h *harness) step() {
	const in, out, cols = 5, 2, 11
	x := tensor.NewMatrix(in, cols)
	y := tensor.NewMatrix(out, cols)
	for i := range x.Data {
		x.Data[i] = h.rng.Float64()*2 - 1
	}
	for i := range y.Data {
		y.Data[i] = h.rng.Float64()*2 - 1
	}
	h.tr.StepMSE(x, y, 1e-3)
}

func (h *harness) flat() []float64 {
	var out []float64
	for _, p := range h.tr.Net().Params() {
		out = append(out, p.Data...)
	}
	return out
}

func captureState(h *harness) *checkpoint.State {
	st := &checkpoint.State{Trainer: h.tr.CaptureState()}
	st.RNGSeed, st.RNGCount = h.rng.State()
	return st
}

// TestEncodeDecodeRoundTrip: the frame round-trips every field exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := newHarness(t, "adam")
	for i := 0; i < 3; i++ {
		h.step()
	}
	st := captureState(h)
	raw, err := checkpoint.Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step() != st.Step() || got.RNGSeed != st.RNGSeed || got.RNGCount != st.RNGCount {
		t.Fatalf("scalar state drift: %+v vs %+v", got, st)
	}
	if got.Trainer.Opt.Kind != "adam" || got.Trainer.Opt.Step != st.Trainer.Opt.Step {
		t.Fatalf("optimizer state drift: %+v", got.Trainer.Opt)
	}
	if len(got.Trainer.Params) != len(st.Trainer.Params) {
		t.Fatal("parameter count drift")
	}
	for i := range st.Trainer.Params {
		for j := range st.Trainer.Params[i] {
			if got.Trainer.Params[i][j] != st.Trainer.Params[i][j] {
				t.Fatalf("param %d[%d] drift", i, j)
			}
		}
	}
	for i := range st.Trainer.Sigmas {
		if got.Trainer.Sigmas[i] != st.Trainer.Sigmas[i] {
			t.Fatalf("sigma %d drift", i)
		}
	}
	for i := range st.Trainer.IterVecs {
		for j := range st.Trainer.IterVecs[i] {
			if got.Trainer.IterVecs[i][j] != st.Trainer.IterVecs[i][j] {
				t.Fatalf("iter vec %d[%d] drift", i, j)
			}
		}
	}
	for i := range st.Trainer.Opt.Slots {
		for j := range st.Trainer.Opt.Slots[i] {
			if got.Trainer.Opt.Slots[i][j] != st.Trainer.Opt.Slots[i][j] {
				t.Fatalf("slot %d[%d] drift", i, j)
			}
		}
	}
}

// TestKillAndResumeBitIdentical is the acceptance criterion: train with
// periodic checkpoints, "kill" the run (discard the process state), build
// a fresh harness, resume from disk, finish — and compare against an
// uninterrupted reference run with exact float equality, for both
// SGD-momentum and Adam.
func TestKillAndResumeBitIdentical(t *testing.T) {
	const every, kill, total = 4, 10, 25
	for _, kind := range []string{"sgd", "adam"} {
		t.Run(kind, func(t *testing.T) {
			// Reference: uninterrupted.
			ref := newHarness(t, kind)
			for s := 0; s < total; s++ {
				ref.step()
			}

			// Interrupted: checkpoint every `every` steps, die at `kill`.
			dir := t.TempDir()
			loop := &checkpoint.Loop{Dir: dir, Every: every, Keep: 2}
			h1 := newHarness(t, kind)
			if start, err := loop.Resume(h1.tr, h1.rng); err != nil || start != 0 {
				t.Fatalf("fresh Resume = (%d, %v), want (0, nil)", start, err)
			}
			for s := 0; s < kill; s++ {
				h1.step()
				if err := loop.AfterStep(h1.tr, h1.rng); err != nil {
					t.Fatal(err)
				}
			}
			// h1 is now dead; everything it held in memory is gone.

			// Resumed: fresh harness, state comes only from disk.
			h2 := newHarness(t, kind)
			start, err := loop.Resume(h2.tr, h2.rng)
			if err != nil {
				t.Fatal(err)
			}
			wantStart := int64(kill - kill%every)
			if start != wantStart {
				t.Fatalf("resumed at step %d, want %d (last multiple of %d before kill)", start, wantStart, every)
			}
			if h2.tr.Steps() != wantStart {
				t.Fatalf("trainer Steps() %d != resume step %d", h2.tr.Steps(), start)
			}
			for s := start; s < total; s++ {
				h2.step()
				if err := loop.AfterStep(h2.tr, h2.rng); err != nil {
					t.Fatal(err)
				}
			}

			a, b := ref.flat(), h2.flat()
			if len(a) != len(b) {
				t.Fatalf("parameter count mismatch %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: resumed run diverged from uninterrupted run at flat index %d: %v != %v", kind, i, b[i], a[i])
				}
			}
		})
	}
}

// TestLoadLatestSkipsDamaged: crash safety must not depend on the last
// write surviving — a torn newest checkpoint falls back to the previous
// good one.
func TestLoadLatestSkipsDamaged(t *testing.T) {
	h := newHarness(t, "sgd")
	dir := t.TempDir()
	h.step()
	if _, err := checkpoint.Save(dir, captureState(h)); err != nil {
		t.Fatal(err)
	}
	goodStep := h.tr.Steps()
	h.step()
	p2, err := checkpoint.Save(dir, captureState(h))
	if err != nil {
		t.Fatal(err)
	}
	// Tear the newest file.
	raw, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p2, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	st, path, err := checkpoint.LoadLatest(dir)
	if err != nil {
		t.Fatalf("LoadLatest with damaged newest: %v", err)
	}
	if st.Step() != goodStep {
		t.Fatalf("fell back to step %d, want %d", st.Step(), goodStep)
	}
	if filepath.Base(path) != checkpoint.FileName(goodStep) {
		t.Fatalf("fell back to %s", path)
	}

	// Damage the older one too: now there is no usable checkpoint.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := checkpoint.LoadLatest(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("all-damaged dir: got %v, want ErrNotExist", err)
	}
}

// TestDecodeTypedErrors pins the trichotomy contract on the decoder.
func TestDecodeTypedErrors(t *testing.T) {
	h := newHarness(t, "adam")
	h.step()
	raw, err := checkpoint.Encode(captureState(h))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 5, 12, len(raw) / 3, len(raw) - 1} {
		if _, err := checkpoint.Decode(raw[:cut]); !integrity.IsIntegrityError(err) {
			t.Fatalf("truncation to %d: got %v, want typed integrity error", cut, err)
		}
	}
	for _, i := range []int{0, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x80
		st, err := checkpoint.Decode(mut)
		if err == nil {
			// Acceptable only if bit-identical (impossible for a real
			// flip under CRC32C, but state the trichotomy).
			t.Fatalf("byte %d flip decoded silently: %+v", i, st)
		}
		if !integrity.IsIntegrityError(err) {
			t.Fatalf("byte %d flip: untyped error %v", i, err)
		}
	}
}

// TestSaveLeavesNoTempFiles: a successful save leaves exactly the
// canonical files behind.
func TestSaveLeavesNoTempFiles(t *testing.T) {
	h := newHarness(t, "sgd")
	h.step()
	dir := t.TempDir()
	if _, err := checkpoint.Save(dir, captureState(h)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != checkpoint.FileName(h.tr.Steps()) {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("unexpected directory contents %v", names)
	}
}

// TestPruneKeepsNewest verifies retention.
func TestPruneKeepsNewest(t *testing.T) {
	h := newHarness(t, "sgd")
	dir := t.TempDir()
	loop := &checkpoint.Loop{Dir: dir, Every: 1, Keep: 2}
	for i := 0; i < 5; i++ {
		h.step()
		if err := loop.AfterStep(h.tr, h.rng); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := checkpoint.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("kept %d checkpoints, want 2: %v", len(paths), paths)
	}
	if filepath.Base(paths[0]) != checkpoint.FileName(5) || filepath.Base(paths[1]) != checkpoint.FileName(4) {
		t.Fatalf("kept wrong checkpoints: %v", paths)
	}
}

// FuzzDecodeCheckpoint drives the checkpoint decoder with arbitrary
// bytes: it must only ever return (state, nil) or a typed error — no
// panics, no absurd allocations.
func FuzzDecodeCheckpoint(f *testing.F) {
	h := &harness{}
	spec := nn.MLPSpec("fz", []int{5, 4, 2}, nn.ActTanh, true)
	net, err := spec.Build(1)
	if err != nil {
		f.Fatal(err)
	}
	tr, err := nn.NewTrainer(net, nn.NewAdam(1e-3), nn.TrainConfig{Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	h.tr, h.rng = tr, detrand.New(1)
	h.step()
	raw, err := checkpoint.Encode(captureState(h))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte{})
	f.Add([]byte("ERRPROPCK1"))
	f.Fuzz(func(t *testing.T, blob []byte) {
		st, err := checkpoint.Decode(blob)
		if err != nil {
			if !integrity.IsIntegrityError(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		n := 0
		for _, p := range st.Trainer.Params {
			n += len(p)
		}
		if n > 1<<24 {
			t.Fatalf("suspiciously large decode: %d parameter values", n)
		}
	})
}

// TestLoadLatestAndPruneMixedDir drives recovery and retention over a
// realistic post-crash directory: intact checkpoints of several ages,
// a torn newest file, a bit-rotted mid-age file, leftover temp files
// from interrupted atomic saves, and unrelated files — LoadLatest must
// land on the newest *intact* checkpoint and Prune must touch only
// canonical checkpoint names.
func TestLoadLatestAndPruneMixedDir(t *testing.T) {
	h := newHarness(t, "adam")
	dir := t.TempDir()

	// Four real checkpoints at increasing steps.
	var paths []string
	var steps []int64
	for i := 0; i < 4; i++ {
		h.step()
		p, err := checkpoint.Save(dir, captureState(h))
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
		steps = append(steps, h.tr.Steps())
	}
	// Newest: torn mid-write (truncated). Second-oldest: bit rot.
	raw, err := os.ReadFile(paths[3])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[3], raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	rot, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	rot[len(rot)/3] ^= 0x08
	if err := os.WriteFile(paths[1], rot, 0o644); err != nil {
		t.Fatal(err)
	}
	// Clutter: an interrupted save's temp file, an unrelated file, a
	// subdirectory shaped like a checkpoint name.
	for _, name := range []string{checkpoint.FileName(99) + ".tmp123", "NOTES.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, checkpoint.FileName(1000)), 0o755); err != nil {
		t.Fatal(err)
	}

	// List sees exactly the canonical regular files, newest first.
	listed, err := checkpoint.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 4 {
		t.Fatalf("List found %d entries, want the 4 checkpoints: %v", len(listed), listed)
	}

	// LoadLatest skips the torn newest and lands on the intact third.
	st, path, err := checkpoint.LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Step() != steps[2] || filepath.Base(path) != checkpoint.FileName(steps[2]) {
		t.Fatalf("recovered step %d from %s, want step %d", st.Step(), path, steps[2])
	}

	// Prune to 2 removes the two oldest canonical files (damaged or not)
	// and nothing else.
	if err := checkpoint.Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	left, err := checkpoint.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 {
		t.Fatalf("prune kept %d, want 2: %v", len(left), left)
	}
	if filepath.Base(left[0]) != checkpoint.FileName(steps[3]) || filepath.Base(left[1]) != checkpoint.FileName(steps[2]) {
		t.Fatalf("prune kept wrong files: %v", left)
	}
	for _, name := range []string{checkpoint.FileName(99) + ".tmp123", "NOTES.txt", checkpoint.FileName(1000)} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("prune touched non-checkpoint entry %s: %v", name, err)
		}
	}

	// After pruning, recovery still works from what remains (the torn
	// newest survives pruning but LoadLatest still skips it).
	st2, _, err := checkpoint.LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Step() != steps[2] {
		t.Fatalf("post-prune recovery landed on step %d, want %d", st2.Step(), steps[2])
	}
}
