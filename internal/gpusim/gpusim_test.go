package gpusim

import (
	"testing"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

var bigMLPCache *nn.Network

// bigMLP returns a shared compute-heavy MLP; construction (which runs
// power iteration per layer) is paid once for the whole package.
func bigMLP(t testing.TB) *nn.Network {
	t.Helper()
	if bigMLPCache == nil {
		spec := nn.MLPSpec("big", []int{1024, 2048, 2048, 1024}, nn.ActReLU, false)
		net, err := spec.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		bigMLPCache = net
	}
	return bigMLPCache
}

func TestFP16FasterThanFP32(t *testing.T) {
	net := bigMLP(t)
	for _, d := range Devices {
		s := Speedup(net, d, numfmt.FP16, 256)
		if s <= 1 {
			t.Fatalf("%s: FP16 speedup %v <= 1", d.Name, s)
		}
	}
}

func TestFP16SpeedupNearPaperRange(t *testing.T) {
	// The paper reports up to 4.5x FP16 speedup on the RTX 3080 Ti for
	// large models. The roofline should land in the 2x-8x window at a
	// compute-heavy operating point.
	net := bigMLP(t)
	s := Speedup(net, RTX3080Ti, numfmt.FP16, 512)
	if s < 2 || s > 8 {
		t.Fatalf("FP16 speedup %v outside the plausible 2-8x window", s)
	}
}

func TestTF32BF16LittleSpeedupOnAmpere(t *testing.T) {
	// Fig. 9: TF32 and BF16 "provide little speedup" relative to FP16.
	net := bigMLP(t)
	fp16 := Speedup(net, RTX3080Ti, numfmt.FP16, 512)
	tf32 := Speedup(net, RTX3080Ti, numfmt.TF32, 512)
	if tf32 >= fp16 {
		t.Fatalf("TF32 speedup %v should be below FP16's %v", tf32, fp16)
	}
}

func TestNonNativeFormatsFallBackToFP32Compute(t *testing.T) {
	// V100 emulates BF16: same compute rate as FP32 (only weight traffic
	// changes).
	if V100.effectiveFLOPS(numfmt.BF16) != V100.PeakFLOPS[numfmt.FP32] {
		t.Fatal("V100 BF16 should use FP32 compute path")
	}
	if !RTX3080Ti.SupportsNative(numfmt.BF16) || V100.SupportsNative(numfmt.TF32) {
		t.Fatal("native support flags wrong")
	}
}

func TestThroughputScalesWithBatch(t *testing.T) {
	// Larger batches amortize launch overhead: throughput must not drop.
	net := bigMLP(t)
	small := Throughput(net, RTX3080Ti, numfmt.FP32, 8)
	large := Throughput(net, RTX3080Ti, numfmt.FP32, 512)
	if large <= small {
		t.Fatalf("throughput did not grow with batch: %v vs %v", small, large)
	}
}

func TestSmallModelBenefitsLessThanLarge(t *testing.T) {
	// Fig. 9's shape: small models saturate on memory traffic and launch
	// overhead sooner, so their FP16 speedup trails the large models'.
	tiny, err := nn.MLPSpec("tiny", []int{256, 512, 256, 10}, nn.ActReLU, false).Build(1)
	if err != nil {
		t.Fatal(err)
	}
	sTiny := Speedup(tiny, RTX3080Ti, numfmt.FP16, 1024)
	sBig := Speedup(bigMLP(t), RTX3080Ti, numfmt.FP16, 512)
	if sTiny >= sBig {
		t.Fatalf("small-model speedup %v should trail large-model %v", sTiny, sBig)
	}
	// But the tensor-core path still helps even small kernels.
	spec := nn.MLPSpec("h2ish", []int{9, 50, 50, 9}, nn.ActTanh, false)
	h2, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	s := Speedup(h2, RTX3080Ti, numfmt.FP16, 256)
	if s < 1.5 || s > 5 {
		t.Fatalf("small-MLP FP16 speedup %v outside the plausible 1.5-5x window", s)
	}
}

func TestExecCostLayerBreakdown(t *testing.T) {
	spec := nn.ResNetSpec("rn", 3, 16, 16, 10, []int{1, 1}, []int{8, 16}, nn.ActReLU, false)
	net, err := spec.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	total, costs := ExecCost(net, V100, numfmt.FP32, 32)
	if total <= 0 || len(costs) == 0 {
		t.Fatalf("degenerate cost: %v, %d layers", total, len(costs))
	}
	var sum float64
	for _, c := range costs {
		if c.Time < 0 {
			t.Fatalf("negative layer time: %+v", c)
		}
		sum += c.Time.Seconds()
	}
	if sum <= 0 {
		t.Fatal("layer times do not sum")
	}
}

func TestINT8FastestOnAmpere(t *testing.T) {
	net := bigMLP(t)
	int8 := Speedup(net, RTX3080Ti, numfmt.INT8, 512)
	fp16 := Speedup(net, RTX3080Ti, numfmt.FP16, 512)
	if int8 <= fp16 {
		t.Fatalf("INT8 speedup %v should exceed FP16's %v", int8, fp16)
	}
}

func TestExecCostMixed(t *testing.T) {
	spec := nn.MLPSpec("m", []int{64, 128, 64, 10}, nn.ActReLU, false)
	net, err := spec.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	// Constant assignment must match the uniform path exactly.
	uni, _ := ExecCost(net, RTX3080Ti, numfmt.FP16, 128)
	mixed, err := ExecCostMixed(net, RTX3080Ti,
		[]numfmt.Format{numfmt.FP16, numfmt.FP16, numfmt.FP16}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if mixed != uni {
		t.Fatalf("constant-assignment mixed cost %v != uniform %v", mixed, uni)
	}
	// A faster middle layer must reduce total time.
	faster, err := ExecCostMixed(net, RTX3080Ti,
		[]numfmt.Format{numfmt.FP16, numfmt.INT8, numfmt.FP16}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if faster >= mixed {
		t.Fatalf("INT8 middle layer did not speed up: %v vs %v", faster, mixed)
	}
	// Assignment length validation.
	if _, err := ExecCostMixed(net, RTX3080Ti, []numfmt.Format{numfmt.FP16}, 128); err == nil {
		t.Fatal("short assignment should error")
	}
	if _, err := ExecCostMixed(net, RTX3080Ti,
		[]numfmt.Format{numfmt.FP16, numfmt.FP16, numfmt.FP16, numfmt.FP16}, 128); err == nil {
		t.Fatal("long assignment should error")
	}
}

func TestExecCostCoversAllLayerKinds(t *testing.T) {
	// A network exercising maxpool, bn, upsample, skipconcat and gap must
	// cost something positive on every path.
	spec := &nn.Spec{Name: "k", InputDim: 2 * 8 * 8, Layers: []nn.LayerSpec{
		{Type: "conv", Name: "c", C: 2, H: 8, W: 8, OutC: 4, K: 3, Stride: 1, Pad: 1},
		{Type: "bn", Name: "bn", C: 4, H: 8, W: 8},
		{Type: "act", Act: nn.ActReLU},
		{Type: "maxpool", Name: "mp", C: 4, H: 8, W: 8, K: 2},
		{Type: "upsample", Name: "up", C: 4, H: 4, W: 4},
		{Type: "skipconcat", Name: "sc", C: 4, OutC: 4, H: 8, W: 8, Branch: []nn.LayerSpec{
			{Type: "conv", Name: "b", C: 4, H: 8, W: 8, OutC: 4, K: 3, Stride: 1, Pad: 1},
		}},
		{Type: "gap", Name: "g", C: 8, H: 8, W: 8},
		{Type: "dense", Name: "fc", In: 8, Out: 2},
	}}
	net, err := spec.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	total, costs := ExecCost(net, V100, numfmt.FP32, 16)
	if total <= 0 {
		t.Fatalf("total cost %v", total)
	}
	if len(costs) != 8 { // conv, bn, act, mp, up, branch conv, gap, fc
		t.Fatalf("want 8 layer costs, got %d", len(costs))
	}
}

func TestThroughputAllDevices(t *testing.T) {
	net := bigMLP(t)
	for _, d := range Devices {
		tp := Throughput(net, d, numfmt.FP32, 256)
		if tp <= 0 {
			t.Fatalf("%s: throughput %v", d.Name, tp)
		}
	}
	// MI250X's FP16 peak leads the fleet; its FP16 throughput should too.
	if Throughput(net, MI250X, numfmt.FP16, 512) <= Throughput(net, V100, numfmt.FP16, 512) {
		t.Fatal("MI250X FP16 should beat V100 FP16")
	}
}
