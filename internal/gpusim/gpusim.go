// Package gpusim is a roofline performance model of the GPUs the paper
// runs on (NVIDIA V100, RTX 3080 Ti, AMD MI250X). We have none of that
// hardware, so execution *time* is simulated: each linear layer costs
// max(FLOPs / peak(format), bytes moved / memory bandwidth) plus a fixed
// kernel-launch overhead, with per-format peak throughputs calibrated to
// the public spec sheets the paper cites (FP16 tensor paths reach ~8x
// FP32 FLOPs and halve weight traffic; TF32 is stored as 32 bits so it
// saves no bandwidth; devices without native TF32/BF16 fall back to the
// FP32 path, as the paper observed on V100 and MI250X).
//
// Numerical *error* never comes from this package — quantized inference
// itself runs bit-exactly through internal/numfmt — only timing does.
package gpusim

import (
	"fmt"
	"time"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// Device models one accelerator.
type Device struct {
	Name string
	// PeakFLOPS maps formats to peak multiply-accumulate throughput in
	// FLOP/s. Missing formats execute on the FP32 path (emulation).
	PeakFLOPS map[numfmt.Format]float64
	// MemBW is device memory bandwidth in bytes/s.
	MemBW float64
	// LaunchOverhead is the fixed per-kernel dispatch cost. The defaults
	// assume a graph-captured/fused inference engine (the paper cites
	// TensorRT), where per-kernel dispatch amortizes to sub-microsecond.
	LaunchOverhead time.Duration
	// Native marks formats with hardware support; non-native formats run
	// at FP32 speed (but still produce their format's rounding error).
	Native map[numfmt.Format]bool
}

// The three devices from the paper's experimental setup. Peak numbers are
// the published spec-sheet values (tensor-core paths for reduced
// precision).
var (
	// V100: 15.7 TFLOPS FP32, 125 TFLOPS FP16 tensor, 900 GB/s HBM2.
	// No TF32/BF16 support (pre-Ampere).
	V100 = &Device{
		Name: "V100",
		PeakFLOPS: map[numfmt.Format]float64{
			numfmt.FP32: 15.7e12,
			numfmt.FP16: 125e12,
			numfmt.INT8: 62e12, // DP4A path
		},
		MemBW:          900e9,
		LaunchOverhead: 200 * time.Nanosecond,
		Native:         map[numfmt.Format]bool{numfmt.FP32: true, numfmt.FP16: true, numfmt.INT8: true},
	}

	// RTX 3080 Ti (Ampere): 34.1 TFLOPS FP32, TF32 tensor ~34, FP16/BF16
	// tensor ~136 (dense), INT8 ~272 TOPS, 912 GB/s. The only device in
	// the paper with native TF32/BF16.
	RTX3080Ti = &Device{
		Name: "RTX3080Ti",
		PeakFLOPS: map[numfmt.Format]float64{
			numfmt.FP32: 34.1e12,
			numfmt.TF32: 34.1e12 * 2, // tensor-core TF32 path
			numfmt.FP16: 136e12,
			numfmt.BF16: 136e12,
			numfmt.INT8: 272e12,
		},
		MemBW:          912e9,
		LaunchOverhead: 200 * time.Nanosecond,
		Native: map[numfmt.Format]bool{numfmt.FP32: true, numfmt.TF32: true,
			numfmt.FP16: true, numfmt.BF16: true, numfmt.INT8: true},
	}

	// MI250X (one GCD): 23.9 TFLOPS FP32, 383 TFLOPS FP16, 1.6 TB/s.
	// BF16 emulated in the paper's setup.
	MI250X = &Device{
		Name: "MI250X",
		PeakFLOPS: map[numfmt.Format]float64{
			numfmt.FP32: 23.9e12,
			numfmt.FP16: 383e12,
			numfmt.INT8: 383e12,
		},
		MemBW:          1.6e12,
		LaunchOverhead: 200 * time.Nanosecond,
		Native:         map[numfmt.Format]bool{numfmt.FP32: true, numfmt.FP16: true, numfmt.INT8: true},
	}

	// Devices lists the simulated fleet.
	Devices = []*Device{V100, RTX3080Ti, MI250X}
)

// effectiveFLOPS resolves the compute path for a format: non-native
// formats run at the device's FP32 rate (emulation), matching the paper's
// note that V100 and MI250X emulate BF16.
func (d *Device) effectiveFLOPS(f numfmt.Format) float64 {
	if d.Native[f] {
		if p, ok := d.PeakFLOPS[f]; ok {
			return p
		}
	}
	return d.PeakFLOPS[numfmt.FP32]
}

// SupportsNative reports whether the device executes the format in
// hardware.
func (d *Device) SupportsNative(f numfmt.Format) bool { return d.Native[f] }

// weightBytesPerElem is the storage width of weights under a format.
func weightBytesPerElem(f numfmt.Format) float64 {
	return float64(f.Bits()) / 8
}

// LayerCost describes the simulated cost of one linear layer.
type LayerCost struct {
	Name    string
	FLOPs   float64
	Bytes   float64
	Time    time.Duration
	Compute bool // true if compute-bound, false if memory-bound
}

// ExecCost simulates the forward-pass cost of a network at the given
// batch size and weight format. Activations stay FP32 (weight-only
// quantization).
func ExecCost(net *nn.Network, d *Device, f numfmt.Format, batch int) (time.Duration, []LayerCost) {
	var total time.Duration
	var costs []LayerCost
	flops := d.effectiveFLOPS(f)
	wb := weightBytesPerElem(f)

	var walk func(ls []nn.Layer)
	walk = func(ls []nn.Layer) {
		for _, l := range ls {
			switch t := l.(type) {
			case *nn.Dense:
				fl := 2 * float64(t.In) * float64(t.Out) * float64(batch)
				by := float64(t.In*t.Out)*wb + float64(t.In+t.Out)*4*float64(batch)
				costs = append(costs, layerCost(t.Name(), fl, by, flops, d))
			case *nn.Conv2D:
				spatial := float64(t.OutH() * t.OutW())
				fl := 2 * float64(t.OutC) * float64(t.InC*t.K*t.K) * spatial * float64(batch)
				by := float64(t.OutC*t.InC*t.K*t.K)*wb +
					(float64(t.InDim())+float64(t.OutDim()))*4*float64(batch)
				costs = append(costs, layerCost(t.Name(), fl, by, flops, d))
			case *nn.Activation:
				// Elementwise kernel: memory-bound pass over activations.
				costs = append(costs, layerCost(t.Name(), 0, 0, flops, d))
			case *nn.AvgPool2D:
				by := float64(t.InDim()+t.OutDim()) * 4 * float64(batch)
				costs = append(costs, layerCost(t.Name(), 0, by, flops, d))
			case *nn.GlobalAvgPool:
				by := float64(t.InDim()+t.OutDim()) * 4 * float64(batch)
				costs = append(costs, layerCost(t.Name(), 0, by, flops, d))
			case *nn.MaxPool2D:
				by := float64(t.InDim()+t.OutDim()) * 4 * float64(batch)
				costs = append(costs, layerCost(t.Name(), 0, by, flops, d))
			case *nn.Upsample2D:
				by := float64(t.InDim()+t.OutDim()) * 4 * float64(batch)
				costs = append(costs, layerCost(t.Name(), 0, by, flops, d))
			case *nn.BatchNorm2D:
				by := 2 * float64(t.InDim()) * 4 * float64(batch)
				costs = append(costs, layerCost(t.Name(), 0, by, flops, d))
			case *nn.Residual:
				walk(t.Branch)
				walk(t.Shortcut)
			case *nn.SkipConcat:
				walk(t.Branch)
			}
		}
	}
	walk(net.Layers)
	for _, c := range costs {
		total += c.Time
	}
	return total, costs
}

// saturationFLOPs models GEMM occupancy: a kernel needs this much work
// to saturate the math pipes, so a small kernel's time floors at
// saturationFLOPs/peak. Crucially the floor scales with the *format's*
// peak — matching real tensor cores, where a tiny FP16 GEMM still runs
// ~4x faster than its FP32 twin — which is what lets quantization speed
// up the paper's small scientific MLPs (Fig. 10).
const saturationFLOPs = 2e8

func layerCost(name string, fl, by, peak float64, d *Device) LayerCost {
	var tc float64
	if fl > 0 {
		tc = (fl + saturationFLOPs) / peak
	}
	tm := by / d.MemBW
	t := tc
	compute := true
	if tm > tc {
		t = tm
		compute = false
	}
	dur := time.Duration(t*1e9)*time.Nanosecond + d.LaunchOverhead
	return LayerCost{Name: name, FLOPs: fl, Bytes: by, Time: dur, Compute: compute}
}

// Throughput returns the simulated model-execution throughput in bytes
// of *stored* scientific input data (float64) processed per second — the
// data-ingestion metric of Fig. 9, consistent with the I/O-phase
// accounting in internal/hpcio and internal/pipeline.
func Throughput(net *nn.Network, d *Device, f numfmt.Format, batch int) float64 {
	t, _ := ExecCost(net, d, f, batch)
	if t <= 0 {
		return 0
	}
	inputBytes := float64(net.InputDim) * 8 * float64(batch)
	return inputBytes / t.Seconds()
}

// Speedup returns the execution-time ratio FP32 / format.
func Speedup(net *nn.Network, d *Device, f numfmt.Format, batch int) float64 {
	base, _ := ExecCost(net, d, numfmt.FP32, batch)
	qt, _ := ExecCost(net, d, f, batch)
	if qt <= 0 {
		return 0
	}
	return float64(base) / float64(qt)
}

// ExecCostMixed simulates the forward-pass cost when each linear layer
// runs in its own format (mixed-precision assignment, forward order over
// linear layers). Non-linear layers behave as in ExecCost.
func ExecCostMixed(net *nn.Network, d *Device, assignment []numfmt.Format, batch int) (time.Duration, error) {
	idx := 0
	var total time.Duration
	var walkErr error
	var walk func(ls []nn.Layer)
	walk = func(ls []nn.Layer) {
		for _, l := range ls {
			if walkErr != nil {
				return
			}
			switch t := l.(type) {
			case *nn.Dense:
				if idx >= len(assignment) {
					walkErr = errTooShort
					return
				}
				f := assignment[idx]
				idx++
				fl := 2 * float64(t.In) * float64(t.Out) * float64(batch)
				by := float64(t.In*t.Out)*weightBytesPerElem(f) + float64(t.In+t.Out)*4*float64(batch)
				total += layerCost(t.Name(), fl, by, d.effectiveFLOPS(f), d).Time
			case *nn.Conv2D:
				if idx >= len(assignment) {
					walkErr = errTooShort
					return
				}
				f := assignment[idx]
				idx++
				spatial := float64(t.OutH() * t.OutW())
				fl := 2 * float64(t.OutC) * float64(t.InC*t.K*t.K) * spatial * float64(batch)
				by := float64(t.OutC*t.InC*t.K*t.K)*weightBytesPerElem(f) +
					(float64(t.InDim())+float64(t.OutDim()))*4*float64(batch)
				total += layerCost(t.Name(), fl, by, d.effectiveFLOPS(f), d).Time
			case *nn.Activation:
				total += layerCost(t.Name(), 0, 0, d.PeakFLOPS[numfmt.FP32], d).Time
			case *nn.AvgPool2D:
				by := float64(t.InDim()+t.OutDim()) * 4 * float64(batch)
				total += layerCost(t.Name(), 0, by, d.PeakFLOPS[numfmt.FP32], d).Time
			case *nn.GlobalAvgPool:
				by := float64(t.InDim()+t.OutDim()) * 4 * float64(batch)
				total += layerCost(t.Name(), 0, by, d.PeakFLOPS[numfmt.FP32], d).Time
			case *nn.MaxPool2D:
				by := float64(t.InDim()+t.OutDim()) * 4 * float64(batch)
				total += layerCost(t.Name(), 0, by, d.PeakFLOPS[numfmt.FP32], d).Time
			case *nn.Upsample2D:
				by := float64(t.InDim()+t.OutDim()) * 4 * float64(batch)
				total += layerCost(t.Name(), 0, by, d.PeakFLOPS[numfmt.FP32], d).Time
			case *nn.BatchNorm2D:
				by := 2 * float64(t.InDim()) * 4 * float64(batch)
				total += layerCost(t.Name(), 0, by, d.PeakFLOPS[numfmt.FP32], d).Time
			case *nn.Residual:
				walk(t.Branch)
				walk(t.Shortcut)
			case *nn.SkipConcat:
				walk(t.Branch)
			}
		}
	}
	walk(net.Layers)
	if walkErr != nil {
		return 0, walkErr
	}
	if idx != len(assignment) {
		return 0, errTooLong
	}
	return total, nil
}

var (
	errTooShort = fmt.Errorf("gpusim: assignment shorter than the network's linear layers")
	errTooLong  = fmt.Errorf("gpusim: assignment longer than the network's linear layers")
)
