package integrity

import (
	"errors"
	"fmt"
	"testing"
)

func TestChecksumKnownAnswer(t *testing.T) {
	// RFC 3720 (iSCSI) CRC32C test vector: 32 bytes of zeros.
	zeros := make([]byte, 32)
	if got := Checksum(zeros); got != 0x8a9136aa {
		t.Fatalf("CRC32C(32 zero bytes) = %#08x, want 0x8a9136aa", got)
	}
	// And the classic "123456789" vector.
	if got := Checksum([]byte("123456789")); got != 0xe3069283 {
		t.Fatalf("CRC32C(123456789) = %#08x, want 0xe3069283", got)
	}
}

func TestChecksumDetectsSingleBitFlips(t *testing.T) {
	b := []byte("the bound is only as strong as the bytes it runs on")
	ref := Checksum(b)
	for i := range b {
		for bit := 0; bit < 8; bit++ {
			b[i] ^= 1 << bit
			if Checksum(b) == ref {
				t.Fatalf("flip of byte %d bit %d not detected", i, bit)
			}
			b[i] ^= 1 << bit
		}
	}
}

func TestChecksumString(t *testing.T) {
	if got := ChecksumString(0xdeadbeef); got != "crc32c:deadbeef" {
		t.Fatalf("ChecksumString = %q", got)
	}
	if got := ChecksumString(0x1); got != "crc32c:00000001" {
		t.Fatalf("ChecksumString zero-padding broken: %q", got)
	}
}

func TestIsIntegrityError(t *testing.T) {
	wrapped := fmt.Errorf("container: %w: payload checksum mismatch", ErrCorrupt)
	if !IsIntegrityError(wrapped) {
		t.Fatal("wrapped ErrCorrupt not recognized")
	}
	if !IsIntegrityError(fmt.Errorf("model: %w", ErrTruncated)) {
		t.Fatal("wrapped ErrTruncated not recognized")
	}
	if IsIntegrityError(errors.New("unknown model")) {
		t.Fatal("unrelated error misclassified as integrity failure")
	}
	if IsIntegrityError(nil) {
		t.Fatal("nil misclassified")
	}
}
