// Package integrity is the shared vocabulary of the repo's fault-tolerant
// data path: CRC32C (Castagnoli) checksumming helpers and the two typed
// error conditions every persisted artifact — compressed containers,
// serialized models, training checkpoints — maps byte-level damage onto.
//
// The taxonomy matters because the paper's Inequality (3) is a *guarantee*
// about the bytes it runs on: a flipped bit in a compressed blob or a
// truncated model file silently voids the bound. Decoders therefore must
// turn every corruption into one of exactly two outcomes — a typed error
// (detected) or a bit-identical decode (harmless) — and never a plausible
// but wrong value. ErrCorrupt and ErrTruncated are the sentinels callers
// branch on to distinguish "bad bytes" (client's artifact is damaged; an
// HTTP server answers 400) from "bad request" or an internal fault (500).
package integrity

import (
	"errors"
	"fmt"
	"hash/crc32"
)

var (
	// ErrCorrupt means stored bytes fail their checksum or declare an
	// impossible structure: the artifact is damaged and must not be
	// trusted. Wrap with %w so errors.Is sees through context.
	ErrCorrupt = errors.New("corrupt data: checksum or structure violation")
	// ErrTruncated means the byte stream ends before its declared length:
	// a partial write, an interrupted transfer, or a cut-off file.
	ErrTruncated = errors.New("truncated data: stream shorter than declared")
)

// IsIntegrityError reports whether err is a detected data-integrity
// failure (corruption or truncation), as opposed to a usage error.
func IsIntegrityError(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTruncated)
}

// castagnoli is the CRC32C polynomial table. CRC32C is the conventional
// storage-path checksum (iSCSI, ext4, Snappy framing) and has hardware
// support (SSE4.2 CRC32 instruction) through hash/crc32.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C checksum of b.
func Checksum(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}

// ChecksumString formats a checksum for display ("crc32c:xxxxxxxx"), the
// form /v1/models reports for each registered model.
func ChecksumString(c uint32) string {
	return fmt.Sprintf("crc32c:%08x", c)
}
