package artifact

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeArtifact hammers the artifact decoder with mutated bytes:
// it must never panic, never over-allocate from a corrupt length field,
// and anything it accepts must re-encode to exactly the input (the
// canonical-form bijection every other container in this repo pins).
func FuzzDecodeArtifact(f *testing.F) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden.aot"))
	if err != nil {
		f.Fatalf("read golden artifact seed: %v", err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	for i := 0; i < len(raw); i += 61 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x3B
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(data)
		if err != nil {
			return
		}
		re, err := a.Encode()
		if err != nil {
			t.Fatalf("accepted artifact fails to re-encode: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("decode/encode not a bijection:\n in  %x\n out %x", data, re)
		}
	})
}
