package artifact

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/tensor"
)

func testSpecs() []*nn.Spec {
	return []*nn.Spec{
		nn.MLPSpec("mlp-psn", []int{9, 16, 12, 9}, nn.ActTanh, true),
		nn.MLPSpec("mlp-sig", []int{6, 10, 4}, nn.ActSigmoid, false),
		nn.ResNetSpec("resnet", 1, 8, 8, 4, []int{1, 1}, []int{4, 8}, nn.ActReLU, true),
		nn.UNetSpec("unet", 2, 8, 8, 3, 4, nn.ActReLU, true),
	}
}

func buildNet(t testing.TB, s *nn.Spec) *nn.Network {
	t.Helper()
	net, err := s.Build(7)
	if err != nil {
		t.Fatalf("building %s: %v", s.Name, err)
	}
	return net
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

var testFormats = []numfmt.Format{numfmt.FP32, numfmt.TF32, numfmt.FP16, numfmt.BF16, numfmt.INT8}

// TestBuildDecodeRoundTrip pins the artifact contract: encode/decode is
// a byte bijection, the decoded engine replays the serving network bit
// for bit, and the embedded plan (graph + step tables + bound) agrees
// exactly with a fresh from-weights analysis.
func TestBuildDecodeRoundTrip(t *testing.T) {
	for _, spec := range testSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			net := buildNet(t, spec)
			for _, f := range testFormats {
				art, err := Build(net, f)
				if err != nil {
					t.Fatalf("%s: Build: %v", f, err)
				}
				raw, err := art.Encode()
				if err != nil {
					t.Fatalf("%s: Encode: %v", f, err)
				}
				dec, err := Decode(raw)
				if err != nil {
					t.Fatalf("%s: Decode: %v", f, err)
				}
				re, err := dec.Encode()
				if err != nil {
					t.Fatalf("%s: re-Encode: %v", f, err)
				}
				if !bytes.Equal(re, raw) {
					t.Fatalf("%s: decode -> encode is not byte-identical", f)
				}
				if dec.Checksum != art.Checksum || dec.Checksum == "" {
					t.Fatalf("%s: checksum %q != built %q", f, dec.Checksum, art.Checksum)
				}
				if dec.Format != f {
					t.Fatalf("%s: decoded format %s", f, dec.Format)
				}

				// Cold-start path: bind the shipped program to the shipped
				// weights; must equal a from-scratch compile of the serving
				// network bit for bit.
				fromArt, err := dec.Program.Bind(dec.Net, 8, 2)
				if err != nil {
					t.Fatalf("%s: Bind: %v", f, err)
				}
				fresh, err := nn.CompileInferenceSharded(art.Net, 8, 2)
				if err != nil {
					t.Fatalf("%s: fresh compile: %v", f, err)
				}
				rng := rand.New(rand.NewSource(11))
				for _, batch := range []int{1, 8} {
					x := tensor.NewMatrix(net.InputDim, batch)
					for i := range x.Data {
						x.Data[i] = rng.NormFloat64()
					}
					if !bitsEqual(fromArt.Forward(x).Data, fresh.Forward(x).Data) {
						t.Fatalf("%s: artifact engine output diverges from fresh compile", f)
					}
				}

				// The shipped bound must equal the from-weights analysis.
				an, err := core.AnalyzeNetwork(net, f)
				if err != nil {
					t.Fatalf("%s: AnalyzeNetwork: %v", f, err)
				}
				if math.Float64bits(dec.QuantBound) != math.Float64bits(an.QuantizationBound()) {
					t.Fatalf("%s: artifact bound %v != fresh analysis %v", f, dec.QuantBound, an.QuantizationBound())
				}

				// Planning from the artifact's graph and step tables must
				// reproduce from-weights planning exactly.
				for _, req := range []core.PlanRequest{
					{Tol: 0.5, Norm: core.NormL2, QuantFraction: 0.5},
					{Tol: 0.05, Norm: core.NormLinf, QuantFraction: 0.3, Conservative: true},
				} {
					want, err := core.PlanNetwork(net, req)
					if err != nil {
						t.Fatalf("%s: PlanNetwork: %v", f, err)
					}
					got, err := core.PlanGraphSteps(dec.Root, dec.StepsFor, req)
					if err != nil {
						t.Fatalf("%s: PlanGraphSteps: %v", f, err)
					}
					if *got != *want {
						t.Fatalf("%s: artifact plan %+v != fresh plan %+v", f, got, want)
					}
				}
			}
		})
	}
}

// TestStepsFor pins the step-table contract.
func TestStepsFor(t *testing.T) {
	net := buildNet(t, nn.MLPSpec("m", []int{4, 6, 2}, nn.ActReLU, false))
	art, err := Build(net, numfmt.INT8)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if sf, err := art.StepsFor(numfmt.FP32); err != nil || sf != nil {
		t.Fatalf("FP32 must yield (nil, nil), got (%v, %v)", sf, err)
	}
	linear := art.Root.LinearNodes()
	for _, f := range stepFormats {
		sf, err := art.StepsFor(f)
		if err != nil {
			t.Fatalf("StepsFor(%s): %v", f, err)
		}
		// The table must reproduce a live StepSize against the original
		// weights exactly — the graph carries no weights, so rebuild the
		// same network and compare per layer.
		live := buildNet(t, nn.MLPSpec("m", []int{4, 6, 2}, nn.ActReLU, false))
		liveRoot, err := core.FromNetwork(live)
		if err != nil {
			t.Fatalf("FromNetwork: %v", err)
		}
		liveNodes := liveRoot.LinearNodes()
		if len(liveNodes) != len(linear) {
			t.Fatalf("linear node count mismatch: %d vs %d", len(liveNodes), len(linear))
		}
		for i, nd := range linear {
			want := numfmt.StepSize(f, liveNodes[i].Op.Weights)
			if got := sf(nd.Op); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("StepsFor(%s) for %s: got %v want %v", f, nd.Op.LayerName, got, want)
			}
		}
	}
	if _, err := art.StepsFor(numfmt.Format(250)); err == nil {
		t.Fatal("unknown format must error")
	}
	// An op outside the artifact's graph poisons the bound instead of
	// silently under-reporting.
	sf, err := art.StepsFor(numfmt.INT8)
	if err != nil {
		t.Fatalf("StepsFor: %v", err)
	}
	if v := sf(&nn.LinearOp{LayerName: "foreign"}); !math.IsNaN(v) {
		t.Fatalf("foreign op must poison the step, got %v", v)
	}
}

// TestDecodeRejectsDamage: framing damage is a typed integrity error;
// CRC-consistent body tampering still cannot produce a silently wrong
// artifact (canonical re-encode, program recompile, and bound recompute
// each gate it).
func TestDecodeRejectsDamage(t *testing.T) {
	net := buildNet(t, nn.MLPSpec("m", []int{5, 8, 3}, nn.ActTanh, true))
	art, err := Build(net, numfmt.FP16)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	raw, err := art.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	if _, err := Decode(raw[:len(Magic)+5]); !integrity.IsIntegrityError(err) {
		t.Fatalf("truncated header: want integrity error, got %v", err)
	}
	if _, err := Decode(raw[:len(raw)-7]); !integrity.IsIntegrityError(err) {
		t.Fatalf("truncated body: want integrity error, got %v", err)
	}
	if _, err := Decode(append(append([]byte{}, raw...), 0xab)); !integrity.IsIntegrityError(err) {
		t.Fatalf("trailing byte: want integrity error, got %v", err)
	}
	mangled := append([]byte{}, raw...)
	mangled[3] ^= 0xff
	if _, err := Decode(mangled); !integrity.IsIntegrityError(err) {
		t.Fatalf("bad magic: want integrity error, got %v", err)
	}

	// Single bit flips anywhere in the body trip the CRC.
	for off := len(Magic) + 12; off < len(raw); off += 101 {
		flipped := append([]byte{}, raw...)
		flipped[off] ^= 0x10
		if _, err := Decode(flipped); err == nil {
			t.Fatalf("bit flip at %d decoded silently", off)
		}
	}

	// A tamperer who also fixes the CRC either trips a semantic gate
	// (canonical re-encode, program recompile, bound recompute, the
	// embedded model's own frame) or has produced a *different* valid
	// artifact — whose checksum identity necessarily changed, so any
	// consumer pinning the original checksum still refuses it. Never a
	// silently-accepted corruption of *this* artifact.
	headerLen := len(Magic) + 12
	for off := headerLen; off < len(raw); off += 137 {
		patched := append([]byte{}, raw...)
		patched[off] ^= 0x04
		body := patched[headerLen:]
		crc := integrity.Checksum(body)
		patched[len(Magic)+8] = byte(crc)
		patched[len(Magic)+9] = byte(crc >> 8)
		patched[len(Magic)+10] = byte(crc >> 16)
		patched[len(Magic)+11] = byte(crc >> 24)
		dec, err := Decode(patched)
		if err != nil {
			continue
		}
		if dec.Checksum == art.Checksum {
			t.Fatalf("CRC-fixed tamper at offset %d kept the original checksum identity", off)
		}
		if re, err := dec.Encode(); err != nil || !bytes.Equal(re, patched) {
			t.Fatalf("CRC-fixed tamper at offset %d decoded to a non-canonical artifact (err %v)", off, err)
		}
	}
}

// TestWriteReadFile covers the atomic file path.
func TestWriteReadFile(t *testing.T) {
	net := buildNet(t, nn.MLPSpec("m", []int{4, 6, 2}, nn.ActGELU, false))
	art, err := Build(net, numfmt.BF16)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "m.aot")
	if err := WriteFile(path, art); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Checksum != art.Checksum {
		t.Fatalf("checksum mismatch after file round trip")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !SniffMagic(raw) {
		t.Fatal("written file does not start with the artifact magic")
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("corrupt file must not read")
	}
}
