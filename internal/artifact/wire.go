package artifact

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/nn"
)

// bodyWriter accumulates the canonical little-endian body encoding.
type bodyWriter struct {
	buf bytes.Buffer
}

func (w *bodyWriter) u8(v uint8)   { w.buf.WriteByte(v) }
func (w *bodyWriter) u32(v uint32) { w.buf.Write(binary.LittleEndian.AppendUint32(nil, v)) }
func (w *bodyWriter) f64(v float64) {
	w.buf.Write(binary.LittleEndian.AppendUint64(nil, math.Float64bits(v)))
}

func (w *bodyWriter) bool8(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// str8 writes a u8-length-prefixed string (format names, node labels).
func (w *bodyWriter) str8(s string) error {
	if len(s) > 0xff {
		return fmt.Errorf("artifact: string %q exceeds 255 bytes", s[:32])
	}
	w.u8(uint8(len(s)))
	w.buf.WriteString(s)
	return nil
}

// section writes a u32-length-prefixed byte section.
func (w *bodyWriter) section(b []byte) {
	w.u32(uint32(len(b)))
	w.buf.Write(b)
}

// bodyReader walks an untrusted body, accumulating the first error.
type bodyReader struct {
	raw []byte
	off int
	err error
}

func (r *bodyReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corrupt(format, args...)
	}
}

func (r *bodyReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.raw)-r.off < n {
		r.err = fmt.Errorf("artifact: %w: need %d bytes at offset %d, have %d", integrity.ErrTruncated, n, r.off, len(r.raw)-r.off)
		return nil
	}
	b := r.raw[r.off : r.off+n]
	r.off += n
	return b
}

func (r *bodyReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *bodyReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *bodyReader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// finite reads a float that must be finite (bound coefficients; a NaN or
// Inf here would silently poison every certified bound derived later).
func (r *bodyReader) finite(what string) float64 {
	v := r.f64()
	if r.err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
		r.fail("non-finite %s", what)
	}
	return v
}

func (r *bodyReader) bool8() bool {
	v := r.u8()
	if r.err == nil && v > 1 {
		r.fail("boolean byte %d not 0 or 1", v)
	}
	return v == 1
}

func (r *bodyReader) str8() string {
	n := int(r.u8())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (r *bodyReader) section() []byte {
	n := r.u32()
	return r.take(int(n))
}

// encodeNode writes one error-flow graph node (and its subtree); linear
// nodes carry their build-time step table from steps.
func encodeNode(w *bodyWriter, nd *core.Node, steps map[*nn.LinearOp][]float64) error {
	w.u8(uint8(nd.Kind))
	switch nd.Kind {
	case core.KindLinear:
		op := nd.Op
		if err := w.str8(op.LayerName); err != nil {
			return err
		}
		w.f64(op.Sigma)
		w.u32(uint32(op.InDim))
		w.u32(uint32(op.OutDim))
		w.u32(uint32(op.WRows))
		w.u32(uint32(op.WCols))
		w.f64(op.AddGain)
		w.f64(op.InflGain)
		w.u32(uint32(len(op.RowNorms)))
		for _, v := range op.RowNorms {
			w.f64(v)
		}
		tbl, ok := steps[op]
		if !ok || len(tbl) != len(stepFormats) {
			return fmt.Errorf("artifact: linear node %q has no build-time step table", op.LayerName)
		}
		for _, s := range tbl {
			w.f64(s)
		}
	case core.KindLipschitz:
		if err := w.str8(nd.Label); err != nil {
			return err
		}
		w.f64(nd.C)
		w.f64(nd.Off)
		w.bool8(nd.IsAct)
	case core.KindSequence:
		if err := w.str8(nd.Label); err != nil {
			return err
		}
		w.u32(uint32(len(nd.Children)))
		for _, c := range nd.Children {
			if err := encodeNode(w, c, steps); err != nil {
				return err
			}
		}
	case core.KindResidual:
		if err := w.str8(nd.Label); err != nil {
			return err
		}
		w.bool8(nd.Shortcut != nil)
		if err := encodeNode(w, nd.Branch, steps); err != nil {
			return err
		}
		if nd.Shortcut != nil {
			if err := encodeNode(w, nd.Shortcut, steps); err != nil {
				return err
			}
		}
	case core.KindConcat:
		if err := w.str8(nd.Label); err != nil {
			return err
		}
		if err := encodeNode(w, nd.Branch, steps); err != nil {
			return err
		}
	default:
		return fmt.Errorf("artifact: unknown graph node kind %d", nd.Kind)
	}
	return nil
}

// graphDecoder tracks the shared caps while rebuilding a node tree from
// untrusted bytes.
type graphDecoder struct {
	r     *bodyReader
	steps map[*nn.LinearOp][]float64
	nodes int
}

// nonneg reads a finite float that must also be >= 0 (gains, norms,
// Lipschitz constants — all magnitudes by construction).
func (d *graphDecoder) nonneg(what string) float64 {
	v := d.r.finite(what)
	if d.r.err == nil && v < 0 {
		d.r.fail("negative %s %v", what, v)
	}
	return v
}

func (d *graphDecoder) node(depth int) (*core.Node, error) {
	if depth > maxGraphDepth {
		return nil, corrupt("graph nesting exceeds depth %d", maxGraphDepth)
	}
	d.nodes++
	if d.nodes > maxGraphNodes {
		return nil, corrupt("graph exceeds %d nodes", maxGraphNodes)
	}
	r := d.r
	kind := r.u8()
	if r.err != nil {
		return nil, r.err
	}
	switch core.NodeKind(kind) {
	case core.KindLinear:
		name := r.str8()
		if len(name) > maxLabelBytes {
			return nil, corrupt("linear layer name exceeds %d bytes", maxLabelBytes)
		}
		op := &nn.LinearOp{LayerName: name}
		op.Sigma = d.nonneg("sigma")
		op.InDim = int(r.u32())
		op.OutDim = int(r.u32())
		op.WRows = int(r.u32())
		op.WCols = int(r.u32())
		op.AddGain = d.nonneg("add gain")
		op.InflGain = d.nonneg("inflation gain")
		nNorms := int(r.u32())
		if r.err == nil && nNorms > maxRowNorms {
			return nil, corrupt("linear node %q declares %d row norms", name, nNorms)
		}
		if r.err != nil {
			return nil, r.err
		}
		if nNorms > 0 {
			op.RowNorms = make([]float64, nNorms)
			for i := range op.RowNorms {
				op.RowNorms[i] = d.nonneg("row norm")
			}
		}
		tbl := make([]float64, len(stepFormats))
		for i := range tbl {
			tbl[i] = d.nonneg("quantization step")
		}
		if r.err != nil {
			return nil, r.err
		}
		d.steps[op] = tbl
		return &core.Node{Kind: core.KindLinear, Op: op, Label: name}, nil
	case core.KindLipschitz:
		nd := &core.Node{Kind: core.KindLipschitz, Label: r.str8()}
		nd.C = d.nonneg("lipschitz constant")
		nd.Off = d.nonneg("signal offset")
		nd.IsAct = r.bool8()
		if r.err != nil {
			return nil, r.err
		}
		return nd, nil
	case core.KindSequence:
		nd := &core.Node{Kind: core.KindSequence, Label: r.str8()}
		n := int(r.u32())
		if r.err == nil && n > maxSeqChildren {
			return nil, corrupt("sequence declares %d children", n)
		}
		if r.err != nil {
			return nil, r.err
		}
		for i := 0; i < n; i++ {
			c, err := d.node(depth + 1)
			if err != nil {
				return nil, err
			}
			nd.Children = append(nd.Children, c)
		}
		return nd, nil
	case core.KindResidual:
		nd := &core.Node{Kind: core.KindResidual, Label: r.str8()}
		hasShortcut := r.bool8()
		if r.err != nil {
			return nil, r.err
		}
		var err error
		if nd.Branch, err = d.node(depth + 1); err != nil {
			return nil, err
		}
		if hasShortcut {
			if nd.Shortcut, err = d.node(depth + 1); err != nil {
				return nil, err
			}
		}
		return nd, nil
	case core.KindConcat:
		nd := &core.Node{Kind: core.KindConcat, Label: r.str8()}
		if r.err != nil {
			return nil, r.err
		}
		var err error
		if nd.Branch, err = d.node(depth + 1); err != nil {
			return nil, err
		}
		return nd, nil
	default:
		return nil, corrupt("unknown graph node kind %d", kind)
	}
}

// decodeNode rebuilds the error-flow graph from r, registering each
// linear node's step table in steps.
func decodeNode(r *bodyReader, steps map[*nn.LinearOp][]float64, depth int) (*core.Node, error) {
	d := &graphDecoder{r: r, steps: steps}
	return d.node(depth)
}
