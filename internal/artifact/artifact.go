// Package artifact implements the ahead-of-time compiled model
// container: one CRC32C-framed file bundling everything a serving
// process needs to cold-start a model without recompiling or
// re-deriving anything —
//
//   - the serving network (weights already quantized at build time for
//     the chosen format), as a verbatim v3 model frame;
//   - the compiled op program (nn.Program) for that network, so boot is
//     Program.Bind — a validate-and-allocate step — instead of a
//     structural recompile;
//   - the error-flow graph of the ORIGINAL full-precision network plus
//     a per-linear-layer quantization step table over every supported
//     format, so /v1/plan and per-request budget checks are answered
//     from the artifact alone — the certified bound travels with the
//     weights, not with the process that computed it;
//   - the certified quantization bound at the serving format, pinned at
//     build time and re-verified bit-for-bit at load.
//
// Framing follows the repo's container convention (internal/integrity):
// magic, u64 body length, u32 CRC32C, body. Decode is
// detect-or-refuse: any damage surfaces as a typed integrity error,
// and any decodable byte string re-encodes to itself (canonical form),
// so the format cannot drift silently — future layouts must bump the
// magic.
package artifact

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
)

// Magic identifies version 1 of the ahead-of-time artifact container.
const Magic = "ERRPROPAOT1"

// maxArtifactBytes caps the declared body length so a corrupt length
// field cannot size an absurd allocation from untrusted bytes.
const maxArtifactBytes = 1 << 30

// Decode-time structural caps; all far above anything the repo builds.
const (
	maxLabelBytes  = 1 << 12
	maxRowNorms    = 1 << 20
	maxGraphNodes  = 1 << 20
	maxGraphDepth  = 512
	maxSeqChildren = 1 << 16
)

// stepFormats is the fixed set (and serialized order) of quantized
// formats every linear node's build-time step table covers: every
// format numfmt.ParseFormat accepts except the FP32 baseline. The order
// is part of the byte format — changing it means a new magic.
var stepFormats = []numfmt.Format{
	numfmt.TF32, numfmt.FP16, numfmt.BF16, numfmt.INT8,
	numfmt.FP8E4M3, numfmt.FP8E5M2,
}

// stepIndex returns f's column in the step table, or -1.
func stepIndex(f numfmt.Format) int {
	for i, sf := range stepFormats {
		if sf == f {
			return i
		}
	}
	return -1
}

// Artifact is a decoded (or freshly built) ahead-of-time model bundle.
type Artifact struct {
	// Format is the serving weight format the artifact was built for.
	Format numfmt.Format
	// Net is the serving network: quantized at build time for Format,
	// or the original full-precision network when Format is FP32.
	Net *nn.Network
	// Program is the compiled op program for Net; Bind it to cold-start
	// an engine without recompiling.
	Program *nn.Program
	// Root is the error-flow graph of the original (pre-quantization)
	// network. Its linear ops carry no weight tensors — quantization
	// steps come from the build-time tables via StepsFor.
	Root *core.Node
	// QuantBound is the certified QoI quantization bound at Format
	// (core.Analysis.QuantizationBound), computed at build time and
	// re-verified bit-for-bit by Decode.
	QuantBound float64
	// Checksum is the container body's CRC32C in display form
	// ("crc32c:%08x") — the identity /v1/models reports and a gateway
	// registry pins.
	Checksum string

	// steps maps each linear node's op to its build-time step table,
	// one entry per stepFormats column.
	steps map[*nn.LinearOp][]float64
}

// StepsFor returns a step function for f backed by the artifact's
// build-time tables: bit-identical to recomputing numfmt.StepSize
// against the original weights, without needing them. FP32 returns
// (nil, nil) — no quantization — matching core.StepsForFormat.
func (a *Artifact) StepsFor(f numfmt.Format) (core.StepFunc, error) {
	if f == numfmt.FP32 {
		return nil, nil
	}
	idx := stepIndex(f)
	if idx < 0 {
		return nil, fmt.Errorf("artifact: no build-time step table for format %s", f)
	}
	return func(op *nn.LinearOp) float64 {
		tbl, ok := a.steps[op]
		if !ok {
			// An op outside this artifact's graph: poison the bound rather
			// than silently under-reporting it.
			return math.NaN()
		}
		return tbl[idx]
	}, nil
}

// Build compiles net into an artifact serving format f: quantize the
// weights (f != FP32), compile the op program, translate the error-flow
// graph, tabulate every format's quantization steps, and pin the
// certified bound. net must carry its Spec.
func Build(net *nn.Network, f numfmt.Format) (*Artifact, error) {
	if net == nil {
		return nil, fmt.Errorf("artifact: nil network")
	}
	if net.Spec == nil {
		return nil, fmt.Errorf("artifact: network has no Spec; cannot serialize")
	}
	serving := net
	if f != numfmt.FP32 {
		q, err := quant.Quantize(net, f)
		if err != nil {
			return nil, fmt.Errorf("artifact: quantizing for %s: %w", f, err)
		}
		serving = q
	}
	prog, err := nn.CompileProgram(serving)
	if err != nil {
		return nil, fmt.Errorf("artifact: compiling program: %w", err)
	}
	root, err := core.FromNetwork(net)
	if err != nil {
		return nil, fmt.Errorf("artifact: building error-flow graph: %w", err)
	}
	a := &Artifact{
		Format:  f,
		Net:     serving,
		Program: prog,
		Root:    root,
		steps:   make(map[*nn.LinearOp][]float64),
	}
	for _, nd := range root.LinearNodes() {
		tbl := make([]float64, len(stepFormats))
		for i, sf := range stepFormats {
			tbl[i] = numfmt.StepSize(sf, nd.Op.Weights)
		}
		a.steps[nd.Op] = tbl
	}
	steps, err := a.StepsFor(f)
	if err != nil {
		return nil, err
	}
	a.QuantBound = core.Analyze(root, steps).QuantizationBound()
	body, err := a.encodeBody()
	if err != nil {
		return nil, err
	}
	a.Checksum = integrity.ChecksumString(integrity.Checksum(body))
	return a, nil
}

// Encode serializes the artifact in its canonical framed form.
func (a *Artifact) Encode() ([]byte, error) {
	body, err := a.encodeBody()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(Magic)+12+len(body))
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(body)))
	out = binary.LittleEndian.AppendUint32(out, integrity.Checksum(body))
	return append(out, body...), nil
}

func (a *Artifact) encodeBody() ([]byte, error) {
	w := &bodyWriter{}
	if err := w.str8(a.Format.String()); err != nil {
		return nil, err
	}
	w.f64(a.QuantBound)
	var model bytes.Buffer
	if err := a.Net.Save(&model); err != nil {
		return nil, fmt.Errorf("artifact: serializing model: %w", err)
	}
	w.section(model.Bytes())
	w.section(a.Program.EncodeBinary())
	g := &bodyWriter{}
	if err := encodeNode(g, a.Root, a.steps); err != nil {
		return nil, err
	}
	w.section(g.buf.Bytes())
	return w.buf.Bytes(), nil
}

// WriteFile writes the artifact atomically: temp file, fsync, rename.
func WriteFile(path string, a *Artifact) error {
	raw, err := a.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".aot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile reads and fully verifies an artifact file.
func ReadFile(path string) (*Artifact, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(raw)
}

// SniffMagic reports whether raw begins with the artifact magic —
// the auto-detection hook model loaders use to pick the artifact path
// over the legacy v3 model path.
func SniffMagic(raw []byte) bool {
	return len(raw) >= len(Magic) && string(raw[:len(Magic)]) == Magic
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("artifact: %w: %s", integrity.ErrCorrupt, fmt.Sprintf(format, args...))
}

// Decode parses and verifies an artifact:
//
//  1. frame: magic, declared length, CRC32C over the body;
//  2. structure: every section decodes within its caps;
//  3. canonical form: the parsed content re-encodes to exactly the
//     input bytes (so decode/encode is a byte bijection);
//  4. consistency: the embedded program equals a fresh CompileProgram
//     of the embedded network, and the stored certified bound equals a
//     fresh analysis of the embedded graph, bit for bit.
//
// Any failure is a typed integrity error; Decode never returns a
// partially trusted artifact.
func Decode(raw []byte) (*Artifact, error) {
	headerLen := len(Magic) + 12
	if len(raw) < headerLen {
		return nil, fmt.Errorf("artifact: %w: header", integrity.ErrTruncated)
	}
	if !SniffMagic(raw) {
		return nil, corrupt("bad magic %q", raw[:len(Magic)])
	}
	bodyLen := binary.LittleEndian.Uint64(raw[len(Magic):])
	if bodyLen > maxArtifactBytes {
		return nil, corrupt("declared body length %d exceeds %d", bodyLen, int64(maxArtifactBytes))
	}
	crc := binary.LittleEndian.Uint32(raw[len(Magic)+8:])
	body := raw[headerLen:]
	if uint64(len(body)) < bodyLen {
		return nil, fmt.Errorf("artifact: %w: body has %d of %d declared bytes", integrity.ErrTruncated, len(body), bodyLen)
	}
	if uint64(len(body)) > bodyLen {
		return nil, corrupt("%d trailing bytes after declared body", uint64(len(body))-bodyLen)
	}
	if got := integrity.Checksum(body); got != crc {
		return nil, corrupt("body checksum %08x != stored %08x", got, crc)
	}

	r := &bodyReader{raw: body}
	formatName := r.str8()
	quantBound := r.f64()
	modelRaw := r.section()
	progRaw := r.section()
	graphRaw := r.section()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, corrupt("%d trailing bytes after graph section", len(body)-r.off)
	}
	f, err := numfmt.ParseFormat(formatName)
	if err != nil {
		return nil, corrupt("unknown serving format %q", formatName)
	}
	if math.IsNaN(quantBound) || math.IsInf(quantBound, 0) || quantBound < 0 {
		return nil, corrupt("non-finite or negative certified bound %v", quantBound)
	}
	net, err := nn.Load(bytes.NewReader(modelRaw))
	if err != nil {
		return nil, fmt.Errorf("artifact: embedded model: %w", err)
	}
	prog, err := nn.DecodeProgram(progRaw)
	if err != nil {
		return nil, corrupt("embedded program: %v", err)
	}
	steps := make(map[*nn.LinearOp][]float64)
	gr := &bodyReader{raw: graphRaw}
	root, err := decodeNode(gr, steps, 0)
	if err != nil {
		return nil, err
	}
	if gr.off != len(graphRaw) {
		return nil, corrupt("%d trailing bytes inside graph section", len(graphRaw)-gr.off)
	}

	a := &Artifact{
		Format:     f,
		Net:        net,
		Program:    prog,
		Root:       root,
		QuantBound: quantBound,
		Checksum:   integrity.ChecksumString(crc),
		steps:      steps,
	}

	// Canonical form: the parsed content must re-encode to the input
	// bytes exactly. This rejects every non-canonical variant a decoder
	// would otherwise tolerate (legacy model framings, denormalized spec
	// JSON, reordered sections) and makes decode -> encode a bijection.
	reenc, err := a.encodeBody()
	if err != nil {
		return nil, corrupt("re-encoding for canonical check: %v", err)
	}
	if !bytes.Equal(reenc, body) {
		return nil, corrupt("non-canonical encoding: decode -> encode does not reproduce the input")
	}

	// Spec revalidation: the embedded program must be exactly what the
	// compiler produces for the embedded network, so Bind can never run
	// a plan that disagrees with the weights next to it.
	recompiled, err := nn.CompileProgram(net)
	if err != nil {
		return nil, corrupt("embedded model does not compile: %v", err)
	}
	if !bytes.Equal(recompiled.EncodeBinary(), progRaw) {
		return nil, corrupt("embedded program does not match the embedded model's compile")
	}

	// Bound revalidation: recompute the certified bound from the shipped
	// graph and step tables; it must match the stored value bit for bit.
	sf, err := a.StepsFor(f)
	if err != nil {
		return nil, corrupt("%v", err)
	}
	if got := core.Analyze(root, sf).QuantizationBound(); math.Float64bits(got) != math.Float64bits(quantBound) {
		return nil, corrupt("stored certified bound %v does not match recomputed %v", quantBound, got)
	}
	if in := root.InputDim(); in != net.InputDim {
		return nil, corrupt("graph input dim %d != model input dim %d", in, net.InputDim)
	}
	return a, nil
}
