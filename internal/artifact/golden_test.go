package artifact

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// The golden artifact pins the on-disk byte format: building the same
// seeded network at the same format must reproduce the checked-in file
// exactly, and the checked-in file must decode and re-encode to itself
// byte for byte. Any layout change — field order, section framing, step
// table order — fails loudly here and means a magic bump, not a silent
// drift. Regenerate deliberately with
//
//	go test ./internal/artifact -run TestGoldenArtifact -update
var updateGolden = flag.Bool("update", false, "rewrite the golden artifact fixture")

func goldenArtifact(t testing.TB) *Artifact {
	t.Helper()
	// A PSN residual conv net at INT8 exercises every section: quantized
	// weights, conv/residual program ops, a graph with residual nodes,
	// and nontrivial step tables.
	net := buildNet(t, nn.ResNetSpec("golden", 1, 8, 8, 4, []int{1, 1}, []int{4, 8}, nn.ActReLU, true))
	art, err := Build(net, numfmt.INT8)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return art
}

func TestGoldenArtifact(t *testing.T) {
	art := goldenArtifact(t)
	raw, err := art.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	path := filepath.Join("testdata", "golden.aot")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("artifact bytes drifted from golden: got %d bytes, want %d. A layout change needs a new magic, not a regenerated fixture.", len(raw), len(want))
	}

	// Decode -> encode bijection on the checked-in bytes themselves.
	dec, err := Decode(want)
	if err != nil {
		t.Fatalf("golden fixture does not decode: %v", err)
	}
	re, err := dec.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(re, want) {
		t.Fatal("golden fixture decode -> encode is not byte-identical")
	}
	if dec.Checksum != art.Checksum {
		t.Fatalf("golden checksum %s != rebuilt %s", dec.Checksum, art.Checksum)
	}
}
