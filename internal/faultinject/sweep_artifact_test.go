package faultinject_test

import (
	"bytes"
	"testing"

	aot "github.com/scidata/errprop/internal/artifact"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// aotArtifact feeds the sweep an ahead-of-time compiled model artifact
// (internal/artifact): the container a cold-starting daemon trusts for
// weights, program, and certified bound, so a corruption that decoded
// silently here would serve wrong numbers fleet-wide.
func aotArtifact(t *testing.T) artifact {
	t.Helper()
	net, err := nn.MLPSpec("sweep-aot", []int{4, 9, 3}, nn.ActTanh, true).Build(13)
	if err != nil {
		t.Fatal(err)
	}
	art, err := aot.Build(net, numfmt.INT8)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return artifact{name: "aot", raw: raw, check: func(mut []byte) (bool, error) {
		got, err := aot.Decode(mut)
		if err != nil {
			return false, err
		}
		// Decode enforces canonical re-encoding, so accepted bytes ARE the
		// artifact's identity: bit-identical means the same frame and the
		// same checksum as the pristine build.
		re, err := got.Encode()
		if err != nil {
			return false, err
		}
		return bytes.Equal(re, raw) && got.Checksum == art.Checksum, nil
	}}
}
