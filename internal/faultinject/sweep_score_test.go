package faultinject_test

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/score"
)

// The bulk-scoring subsystem adds three durable artifact kinds to the
// corruption sweep: the dataset manifest, the scoring progress cursor,
// and a dataset chunk checked the way the scorer checks it (against its
// manifest entry, not just its own container framing).

func scoreManifestArtifact(t *testing.T) artifact {
	t.Helper()
	dir := t.TempDir()
	field := make([]float64, 4*96)
	for i := range field {
		f, c := i/96, i%96
		field[i] = math.Sin(2*math.Pi*float64(c)/96*float64(f+1)) * math.Exp(-float64(c)/96)
	}
	man, err := score.WriteDataset(dir, field, 4, score.DatasetConfig{
		Codec: "sz", Mode: compress.AbsLinf, Tol: 1e-3, ChunkSamples: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := man.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return artifact{name: "score-manifest", raw: raw, check: func(mut []byte) (bool, error) {
		got, err := score.DecodeManifest(mut)
		if err != nil {
			return false, err
		}
		return reflect.DeepEqual(got, man), nil
	}}
}

func scoreCursorArtifact(t *testing.T) artifact {
	t.Helper()
	cur := &score.Cursor{
		ManifestChecksum: 0x5EED5EED,
		Committed:        5,
		ResultBytes:      4321,
		Agg: &score.Aggregate{
			Chunks: 5, Samples: 160, Elems: 480, OverBudget: 1,
			StoredBytes: 700, RawBytes: 5120,
			SimRead: 2 * time.Millisecond, SimDecode: 3 * time.Millisecond, SimExec: 4 * time.Millisecond,
			BoundWeighted: 0.25, MaxBound: 0.75,
			Sum: []float64{1, 2, 3}, Min: []float64{-1, -2, -3}, Max: []float64{4, 5, 6},
		},
	}
	raw, err := score.EncodeCursor(cur)
	if err != nil {
		t.Fatal(err)
	}
	return artifact{name: "score-cursor", raw: raw, check: func(mut []byte) (bool, error) {
		got, err := score.DecodeCursor(mut)
		if err != nil {
			return false, err
		}
		return reflect.DeepEqual(got, cur), nil
	}}
}

func scoreChunkArtifact(t *testing.T) artifact {
	t.Helper()
	dir := t.TempDir()
	field := make([]float64, 3*64)
	for i := range field {
		field[i] = math.Cos(float64(i) / 17)
	}
	man, err := score.WriteDataset(dir, field, 3, score.DatasetConfig{
		Codec: "sz", Mode: compress.AbsLinf, Tol: 1e-3, ChunkSamples: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := man.Chunks[0]
	raw, err := os.ReadFile(filepath.Join(dir, c.File))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := score.DecodeChunk(man, c, raw)
	if err != nil {
		t.Fatal(err)
	}
	return artifact{name: "score-chunk", raw: raw, check: func(mut []byte) (bool, error) {
		got, err := score.DecodeChunk(man, c, mut)
		if err != nil {
			return false, err
		}
		if len(got) != len(ref) {
			return false, nil
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				return false, nil
			}
		}
		return true, nil
	}}
}
