package faultinject_test

import (
	"reflect"
	"testing"

	"github.com/scidata/errprop/internal/gateway"
)

// gatewayRegistryArtifact puts the gateway's fleet manifest under the
// corruption sweep: a mangled registry must be detected at decode —
// the same decode path LoadRegistryFile runs on boot and on SIGHUP —
// so a hot reload is either applied intact or refused, never applied
// partially.
func gatewayRegistryArtifact(t *testing.T) artifact {
	t.Helper()
	reg := &gateway.Registry{Backends: []gateway.Backend{
		{Name: "backend-0", Addr: "127.0.0.1:9001", Weight: 1},
		{Name: "backend-1", Addr: "127.0.0.1:9002", Weight: 2},
		{Name: "backend-2", Addr: "10.1.2.3:8080", Weight: 1},
	}}
	raw, err := reg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return artifact{name: "gateway-registry", raw: raw, check: func(mut []byte) (bool, error) {
		got, err := gateway.DecodeRegistry(mut)
		if err != nil {
			return false, err
		}
		return reflect.DeepEqual(got, reg), nil
	}}
}
