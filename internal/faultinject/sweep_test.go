package faultinject_test

import (
	"bytes"
	"math"
	"testing"

	"github.com/scidata/errprop/internal/checkpoint"
	"github.com/scidata/errprop/internal/compress"
	_ "github.com/scidata/errprop/internal/compress/sz" // register the sz codec

	"github.com/scidata/errprop/internal/detrand"
	"github.com/scidata/errprop/internal/faultinject"
	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/tensor"
)

// artifact is one kind of durable bytes the sweep corrupts: its pristine
// encoding plus a checker that decodes a (possibly corrupted) variant
// and reports whether the result is bit-identical to the pristine
// decode.
type artifact struct {
	name  string
	raw   []byte
	check func(mut []byte) (identical bool, err error)
}

func blobArtifact(t *testing.T) artifact {
	t.Helper()
	const h, w = 20, 20
	data := make([]float64, h*w)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			data[i*w+j] = math.Sin(3*float64(i)/h) * math.Cos(5*float64(j)/w)
		}
	}
	raw, err := compress.Encode("sz", data, []int{h, w}, compress.AbsLinf, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := compress.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	return artifact{name: "blob", raw: raw, check: func(mut []byte) (bool, error) {
		got, _, err := compress.Decode(mut)
		if err != nil {
			return false, err
		}
		if len(got) != len(ref) {
			return false, nil
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				return false, nil
			}
		}
		return true, nil
	}}
}

func flatNet(net *nn.Network) []float64 {
	var out []float64
	for _, p := range net.Params() {
		out = append(out, p.Data...)
	}
	return out
}

func modelArtifact(t *testing.T) artifact {
	t.Helper()
	spec := nn.MLPSpec("sweep", []int{4, 9, 3}, nn.ActTanh, true)
	net, err := spec.Build(13)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ref := flatNet(net)
	return artifact{name: "model", raw: buf.Bytes(), check: func(mut []byte) (bool, error) {
		got, err := nn.Load(bytes.NewReader(mut))
		if err != nil {
			return false, err
		}
		g := flatNet(got)
		if len(g) != len(ref) {
			return false, nil
		}
		for i := range g {
			if math.Float64bits(g[i]) != math.Float64bits(ref[i]) {
				return false, nil
			}
		}
		return true, nil
	}}
}

func checkpointArtifact(t *testing.T) artifact {
	t.Helper()
	spec := nn.MLPSpec("sweep-ck", []int{4, 8, 2}, nn.ActTanh, true)
	net, err := spec.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := nn.NewTrainer(net, nn.NewAdam(1e-3), nn.TrainConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := detrand.New(3)
	x := tensor.NewMatrix(4, 6)
	y := tensor.NewMatrix(2, 6)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	for i := range y.Data {
		y.Data[i] = rng.Float64()
	}
	tr.StepMSE(x, y, 1e-3)
	st := &checkpoint.State{Trainer: tr.CaptureState()}
	st.RNGSeed, st.RNGCount = rng.State()
	raw, err := checkpoint.Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	return artifact{name: "checkpoint", raw: raw, check: func(mut []byte) (bool, error) {
		got, err := checkpoint.Decode(mut)
		if err != nil {
			return false, err
		}
		if got.Step() != st.Step() || got.RNGSeed != st.RNGSeed || got.RNGCount != st.RNGCount {
			return false, nil
		}
		if len(got.Trainer.Params) != len(st.Trainer.Params) {
			return false, nil
		}
		for i := range st.Trainer.Params {
			if len(got.Trainer.Params[i]) != len(st.Trainer.Params[i]) {
				return false, nil
			}
			for j := range st.Trainer.Params[i] {
				if math.Float64bits(got.Trainer.Params[i][j]) != math.Float64bits(st.Trainer.Params[i][j]) {
					return false, nil
				}
			}
		}
		return true, nil
	}}
}

// TestCorruptionSweep applies the full injector battery at many seeds to
// every durable artifact kind and asserts the repo-wide trichotomy: each
// fault is detected with a typed integrity error, or the decode is
// bit-identical to the pristine one. Silently wrong output fails the
// sweep. Well over 200 distinct corruptions run; every case is
// reproducible from (artifact, injector, seed).
func TestCorruptionSweep(t *testing.T) {
	artifacts := []artifact{
		blobArtifact(t), modelArtifact(t), checkpointArtifact(t),
		scoreManifestArtifact(t), scoreCursorArtifact(t), scoreChunkArtifact(t),
		gatewayRegistryArtifact(t), aotArtifact(t),
	}
	const seedsPerPair = 16
	applied, detected, identical := 0, 0, 0
	for _, art := range artifacts {
		for _, inj := range faultinject.All() {
			for seed := 0; seed < seedsPerPair; seed++ {
				rng := detrand.New(uint64(seed))
				mut, desc := inj.Apply(art.raw, rng)
				if mut == nil {
					continue // inapplicable at this seed
				}
				if bytes.Equal(mut, art.raw) {
					t.Fatalf("%s/%s seed %d: injector returned pristine bytes (%s)", art.name, inj.Name(), seed, desc)
				}
				applied++
				same, err := art.check(mut)
				switch {
				case err != nil:
					if !integrity.IsIntegrityError(err) {
						t.Errorf("%s/%s seed %d (%s): untyped error: %v", art.name, inj.Name(), seed, desc, err)
					}
					detected++
				case same:
					identical++
				default:
					t.Errorf("%s/%s seed %d (%s): SILENT CORRUPTION — decode succeeded with different contents", art.name, inj.Name(), seed, desc)
				}
			}
		}
	}
	if applied < 200 {
		t.Fatalf("sweep applied only %d corruptions, want >= 200", applied)
	}
	if detected == 0 {
		t.Fatal("sweep detected nothing — checkers are not being exercised")
	}
	t.Logf("sweep: %d corruptions applied, %d detected, %d decoded bit-identically, 0 silently wrong",
		applied, detected, identical)
}

// TestInjectorsDeterministic: the same (injector, seed, input) always
// produces the same corruption — a failing sweep case is reproducible.
func TestInjectorsDeterministic(t *testing.T) {
	raw := make([]byte, 301)
	for i := range raw {
		raw[i] = byte(i * 11)
	}
	for _, inj := range faultinject.All() {
		a, descA := inj.Apply(raw, detrand.New(42))
		b, descB := inj.Apply(raw, detrand.New(42))
		if !bytes.Equal(a, b) || descA != descB {
			t.Errorf("%s: not deterministic at fixed seed", inj.Name())
		}
		c, _ := inj.Apply(raw, detrand.New(43))
		if a != nil && c != nil && bytes.Equal(a, c) && inj.Name() != "truncate" {
			// Different seeds should normally produce different faults
			// (truncate on small inputs can collide).
			t.Logf("%s: seeds 42 and 43 collided (allowed but suspicious)", inj.Name())
		}
	}
}

// TestInjectorsNeverMutateInput guards the sweep's reference bytes.
func TestInjectorsNeverMutateInput(t *testing.T) {
	raw := make([]byte, 128)
	for i := range raw {
		raw[i] = byte(i)
	}
	orig := append([]byte(nil), raw...)
	for _, inj := range faultinject.All() {
		for seed := uint64(0); seed < 8; seed++ {
			inj.Apply(raw, detrand.New(seed))
			if !bytes.Equal(raw, orig) {
				t.Fatalf("%s: mutated its input", inj.Name())
			}
		}
	}
}
