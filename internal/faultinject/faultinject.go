// Package faultinject is a deterministic fault-injection harness for the
// repo's durability tests. It produces seeded, reproducible corruptions
// of byte blobs (compressed containers, model files, checkpoints) and
// wraps io.Reader/io.Writer with scheduled transient failures, so tests
// can sweep hundreds of distinct faults and assert the repo-wide
// trichotomy: every fault is either *detected* (typed integrity error),
// *harmless* (decode bit-identical to the original), or impossible —
// silently wrong output is never acceptable.
//
// All randomness flows through detrand.Stream, so a failing case is
// reproducible from its (injector, seed) pair alone.
package faultinject

import (
	"errors"
	"fmt"
	"io"

	"github.com/scidata/errprop/internal/detrand"
)

// ErrInjected marks an artificial I/O failure produced by FlakyReader or
// FlakyWriter. Retry layers match it with errors.Is.
var ErrInjected = errors.New("faultinject: injected I/O failure")

// An Injector derives a corrupted copy of a byte blob. Injectors never
// mutate their input; they return the damaged copy and a short
// description of what was done (for failure messages).
type Injector interface {
	// Name identifies the injector in sweep reports.
	Name() string
	// Apply corrupts a copy of raw using randomness from rng. It returns
	// (nil, "") if the fault is inapplicable (e.g. blob too short), which
	// sweeps count as a skip.
	Apply(raw []byte, rng *detrand.Stream) ([]byte, string)
}

// BitFlip flips one random bit anywhere in the blob — the classic
// single-event upset.
type BitFlip struct{}

// Name implements Injector.
func (BitFlip) Name() string { return "bitflip" }

// Apply implements Injector.
func (BitFlip) Apply(raw []byte, rng *detrand.Stream) ([]byte, string) {
	if len(raw) == 0 {
		return nil, ""
	}
	out := append([]byte(nil), raw...)
	pos := rng.Intn(len(out))
	bit := rng.Intn(8)
	out[pos] ^= 1 << bit
	return out, fmt.Sprintf("flip bit %d of byte %d/%d", bit, pos, len(out))
}

// MultiBitFlip flips K random bits (possibly in the same byte) — burst
// damage that a weak checksum could cancel out.
type MultiBitFlip struct {
	K int // number of bits; default 8
}

// Name implements Injector.
func (m MultiBitFlip) Name() string { return fmt.Sprintf("multibitflip(%d)", m.k()) }

func (m MultiBitFlip) k() int {
	if m.K <= 0 {
		return 8
	}
	return m.K
}

// Apply implements Injector.
func (m MultiBitFlip) Apply(raw []byte, rng *detrand.Stream) ([]byte, string) {
	if len(raw) == 0 {
		return nil, ""
	}
	out := append([]byte(nil), raw...)
	for i := 0; i < m.k(); i++ {
		out[rng.Intn(len(out))] ^= 1 << rng.Intn(8)
	}
	return out, fmt.Sprintf("flip %d random bits of %d bytes", m.k(), len(out))
}

// Truncate cuts the blob at a random point (including to empty) — a
// torn write or an interrupted transfer.
type Truncate struct{}

// Name implements Injector.
func (Truncate) Name() string { return "truncate" }

// Apply implements Injector.
func (Truncate) Apply(raw []byte, rng *detrand.Stream) ([]byte, string) {
	if len(raw) == 0 {
		return nil, ""
	}
	cut := rng.Intn(len(raw)) // [0, len-1]: always strictly shorter
	return append([]byte(nil), raw[:cut]...), fmt.Sprintf("truncate %d -> %d bytes", len(raw), cut)
}

// ZeroFill zeroes a random contiguous run — a hole from a failed RAID
// stripe or a sparse-file read past a lost extent.
type ZeroFill struct{}

// Name implements Injector.
func (ZeroFill) Name() string { return "zerofill" }

// Apply implements Injector.
func (ZeroFill) Apply(raw []byte, rng *detrand.Stream) ([]byte, string) {
	if len(raw) == 0 {
		return nil, ""
	}
	out := append([]byte(nil), raw...)
	start := rng.Intn(len(out))
	n := 1 + rng.Intn(len(out)-start)
	allZero := true
	for _, b := range out[start : start+n] {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return nil, "" // run was already zero; fault would be a no-op
	}
	for i := start; i < start+n; i++ {
		out[i] = 0
	}
	return out, fmt.Sprintf("zero bytes [%d, %d) of %d", start, start+n, len(out))
}

// MangleHeader corrupts one byte inside the first headerBytes of the
// blob — targeted damage to magics, length fields, and checksums, the
// region where parsers are most tempted to trust what they read.
type MangleHeader struct {
	HeaderBytes int // default 32
}

// Name implements Injector.
func (m MangleHeader) Name() string { return "mangleheader" }

func (m MangleHeader) headerBytes() int {
	if m.HeaderBytes <= 0 {
		return 32
	}
	return m.HeaderBytes
}

// Apply implements Injector.
func (m MangleHeader) Apply(raw []byte, rng *detrand.Stream) ([]byte, string) {
	if len(raw) == 0 {
		return nil, ""
	}
	h := m.headerBytes()
	if h > len(raw) {
		h = len(raw)
	}
	out := append([]byte(nil), raw...)
	pos := rng.Intn(h)
	// XOR with a random non-zero byte so the fault always changes the
	// value.
	delta := byte(1 + rng.Intn(255))
	out[pos] ^= delta
	return out, fmt.Sprintf("xor header byte %d with %#02x", pos, delta)
}

// All returns the standard injector battery the sweep tests run.
func All() []Injector {
	return []Injector{
		BitFlip{},
		MultiBitFlip{K: 4},
		MultiBitFlip{K: 64},
		Truncate{},
		ZeroFill{},
		MangleHeader{},
	}
}

// FlakyReader wraps an io.Reader and fails reads according to a
// schedule: read call i (0-based) fails with ErrInjected when
// schedule[i] is true. Failed calls consume no input, so a retrying
// caller eventually sees the full stream. After the schedule is
// exhausted, reads pass through.
type FlakyReader struct {
	R        io.Reader
	Schedule []bool
	call     int
	// Fails counts injected failures, for asserting retry behavior.
	Fails int
}

// Read implements io.Reader.
func (f *FlakyReader) Read(p []byte) (int, error) {
	i := f.call
	f.call++
	if i < len(f.Schedule) && f.Schedule[i] {
		f.Fails++
		return 0, fmt.Errorf("%w: scheduled read failure at call %d", ErrInjected, i)
	}
	return f.R.Read(p)
}

// FlakyWriter wraps an io.Writer and fails write calls on a schedule,
// analogous to FlakyReader. A failed write consumes nothing.
type FlakyWriter struct {
	W        io.Writer
	Schedule []bool
	call     int
	Fails    int
}

// Write implements io.Writer.
func (f *FlakyWriter) Write(p []byte) (int, error) {
	i := f.call
	f.call++
	if i < len(f.Schedule) && f.Schedule[i] {
		f.Fails++
		return 0, fmt.Errorf("%w: scheduled write failure at call %d", ErrInjected, i)
	}
	return f.W.Write(p)
}

// EveryNth builds a schedule of n calls where every k-th call fails
// (k >= 1; k == 1 fails every scheduled call).
func EveryNth(n, k int) []bool {
	s := make([]bool, n)
	if k < 1 {
		return s
	}
	for i := k - 1; i < n; i += k {
		s[i] = true
	}
	return s
}
