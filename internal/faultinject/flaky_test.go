package faultinject_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/scidata/errprop/internal/faultinject"
)

func TestFlakyReaderSchedule(t *testing.T) {
	src := "the quick brown fox jumps over the lazy dog"
	fr := &faultinject.FlakyReader{
		R:        strings.NewReader(src),
		Schedule: faultinject.EveryNth(6, 2), // calls 1, 3, 5 fail
	}
	var got bytes.Buffer
	buf := make([]byte, 8)
	fails := 0
	for {
		n, err := fr.Read(buf)
		got.Write(buf[:n])
		if errors.Is(err, faultinject.ErrInjected) {
			fails++
			continue // retry: failed calls consume nothing
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if got.String() != src {
		t.Fatalf("retried read produced %q, want %q", got.String(), src)
	}
	if fails != 3 || fr.Fails != 3 {
		t.Fatalf("injected %d/%d failures, want 3", fails, fr.Fails)
	}
}

func TestFlakyWriterSchedule(t *testing.T) {
	var dst bytes.Buffer
	fw := &faultinject.FlakyWriter{W: &dst, Schedule: []bool{true, false, true, false}}
	writes := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc"), []byte("dd"), []byte("ee")}
	var kept []byte
	for _, w := range writes {
		if _, err := fw.Write(w); err != nil {
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
			continue
		}
		kept = append(kept, w...)
	}
	if dst.String() != string(kept) || dst.String() != "bbddee" {
		t.Fatalf("writer passed through %q, want %q", dst.String(), "bbddee")
	}
	if fw.Fails != 2 {
		t.Fatalf("Fails = %d, want 2", fw.Fails)
	}
}

func TestEveryNth(t *testing.T) {
	if s := faultinject.EveryNth(5, 1); !equalBools(s, []bool{true, true, true, true, true}) {
		t.Fatalf("EveryNth(5,1) = %v", s)
	}
	if s := faultinject.EveryNth(6, 3); !equalBools(s, []bool{false, false, true, false, false, true}) {
		t.Fatalf("EveryNth(6,3) = %v", s)
	}
	if s := faultinject.EveryNth(3, 0); !equalBools(s, []bool{false, false, false}) {
		t.Fatalf("EveryNth(3,0) = %v", s)
	}
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
