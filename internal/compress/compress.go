// Package compress defines the error-bounded lossy-compression interface
// shared by the three scientific codecs the paper evaluates — SZ-style
// prediction coding, ZFP-style transform coding and MGARD-style multilevel
// decomposition — together with a self-describing container format so any
// registered codec's output can be decompressed without out-of-band
// metadata.
//
// The error modes mirror the tolerances the paper drives its experiments
// with: an absolute pointwise (L-infinity) bound, a relative pointwise
// bound (scaled by the data's value range), and a bound on the L2 norm of
// the whole error vector. As in the paper, ZFP supports only the
// L-infinity modes.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/scidata/errprop/internal/integrity"
)

// Mode selects how the tolerance argument of Compress is interpreted.
type Mode int

const (
	// AbsLinf bounds max_i |x_i - x~_i| <= tol.
	AbsLinf Mode = iota
	// RelLinf bounds max_i |x_i - x~_i| <= tol * (max x - min x).
	RelLinf
	// L2 bounds ||x - x~||_2 <= tol (absolute, whole-vector).
	L2
	// RelL2 bounds ||x - x~||_2 <= tol * ||x||_2.
	RelL2
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case AbsLinf:
		return "abs-linf"
	case RelLinf:
		return "rel-linf"
	case L2:
		return "l2"
	case RelL2:
		return "rel-l2"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ErrUnsupportedMode is returned when a codec does not implement the
// requested error mode (e.g. ZFP with an L2 tolerance).
var ErrUnsupportedMode = errors.New("compress: unsupported error mode for this codec")

// ErrCorrupt is returned when a blob cannot be decoded: its bytes fail a
// checksum or declare an impossible structure. It is the shared
// integrity.ErrCorrupt sentinel, so callers anywhere on the storage →
// decode → inference path can classify the failure with one errors.Is.
var ErrCorrupt = integrity.ErrCorrupt

// ErrTruncated is returned when a blob ends before its declared length —
// a partial write or cut-off transfer rather than in-place damage. It is
// the shared integrity.ErrTruncated sentinel.
var ErrTruncated = integrity.ErrTruncated

// Codec is an error-bounded lossy compressor. Implementations must
// guarantee the requested bound exactly (encoder-side verification is
// acceptable and used by the bundled codecs as a safety net).
type Codec interface {
	// Name returns the registry key ("sz", "zfp", "mgard").
	Name() string
	// SupportsMode reports whether the codec honours the given mode.
	SupportsMode(m Mode) bool
	// Compress encodes data interpreted with the given dimensions
	// (len(dims) in 1..3, product == len(data)) under the tolerance.
	Compress(data []float64, dims []int, mode Mode, tol float64) ([]byte, error)
	// Decompress decodes a payload produced by Compress.
	Decompress(payload []byte, dims []int) ([]float64, error)
}

var registry = map[string]Codec{}

// Register adds a codec to the global registry; it panics on duplicate
// names, which would indicate a programmer error at init time.
func Register(c Codec) {
	if _, dup := registry[c.Name()]; dup {
		panic("compress: duplicate codec " + c.Name())
	}
	registry[c.Name()] = c
}

// ByName returns a registered codec.
func ByName(name string) (Codec, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
	return c, nil
}

// Names lists registered codecs in deterministic (sorted) order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Container magics. v1 ("SDRC") carried no integrity information; v2
// ("SDR2") adds CRC32C checksums over both header and payload. Encode
// writes v2; Decode reads both.
const (
	magic   = 0x53445243 // v1, "SDRC"
	magicV2 = 0x32524453 // v2, bytes "SDR2"
)

// maxGridElems caps the total element count a decoded container may
// declare (2^30 covers a 1024^3 volume). Anything larger in a header is
// treated as corruption rather than sizing an 8+ GiB allocation from
// untrusted bytes.
const maxGridElems = 1 << 30

// maxHeaderLen caps the declared v2 header length: the largest legal
// header is 1+255 (name) + 1 (mode) + 8 (tol) + 1 (rank) + 24 (dims) +
// 8 (payload len + crc) bytes.
const maxHeaderLen = 1 + 255 + 1 + 8 + 1 + 24 + 8

// Blob is a self-describing compressed buffer: container header + payload.
type Blob struct {
	CodecName string
	Mode      Mode
	Tol       float64
	Dims      []int
	Payload   []byte
	// Version is the container framing version the blob was read with (2
	// for freshly encoded blobs; 1 for legacy unchecksummed containers).
	Version int
	// PayloadChecksum is the payload's CRC32C: verified against the
	// stored value for v2 containers, computed on read for v1.
	PayloadChecksum uint32
}

// Encode compresses data with the named codec and wraps the result in the
// container format. AbsTol resolves relative modes against the data before
// the codec runs, so payloads always carry the absolute tolerance actually
// enforced.
//
//errprop:deterministic the container byte stream is a pure function of (codec, data, mode, tol)
func Encode(codecName string, data []float64, dims []int, mode Mode, tol float64) ([]byte, error) {
	c, err := ByName(codecName)
	if err != nil {
		return nil, err
	}
	if !c.SupportsMode(mode) {
		return nil, fmt.Errorf("%w: %s does not support %s", ErrUnsupportedMode, codecName, mode)
	}
	if err := checkDims(data, dims); err != nil {
		return nil, err
	}
	if tol <= 0 || math.IsNaN(tol) || math.IsInf(tol, 0) {
		return nil, fmt.Errorf("compress: invalid tolerance %v", tol)
	}
	payload, err := c.Compress(data, dims, mode, tol)
	if err != nil {
		return nil, err
	}
	return marshal(Blob{CodecName: codecName, Mode: mode, Tol: tol, Dims: dims, Payload: payload}), nil
}

// Decode decompresses a container produced by Encode.
//
//errprop:deterministic reconstruction depends only on the container bytes
func Decode(blob []byte) ([]float64, *Blob, error) {
	b, err := unmarshal(blob)
	if err != nil {
		return nil, nil, err
	}
	c, err := ByName(b.CodecName)
	if err != nil {
		return nil, nil, err
	}
	data, err := c.Decompress(b.Payload, b.Dims)
	if err != nil {
		return nil, nil, err
	}
	return data, b, nil
}

// AbsTol converts a (mode, tol) pair into the absolute tolerance implied
// for the given data: pointwise for the Linf modes, whole-vector for L2.
//
//errprop:bound-source the result is the pointwise error bound the codec enforces
func AbsTol(data []float64, mode Mode, tol float64) float64 {
	switch mode {
	case AbsLinf, L2:
		return tol
	case RelLinf:
		min, max := minMax(data)
		return tol * (max - min)
	case RelL2:
		var ss float64
		for _, x := range data {
			ss += x * x
		}
		return tol * math.Sqrt(ss)
	}
	panic("compress: unknown mode")
}

// MeasureError returns the achieved pointwise L-infinity error and the
// whole-vector L2 error between original and reconstructed data.
//
//errprop:bound-source both results are achieved reconstruction error bounds
func MeasureError(orig, recon []float64) (linf, l2 float64) {
	if len(orig) != len(recon) {
		panic("compress: MeasureError length mismatch")
	}
	var ss float64
	for i := range orig {
		d := math.Abs(orig[i] - recon[i])
		if d > linf {
			linf = d
		}
		ss += d * d
	}
	return linf, math.Sqrt(ss)
}

// Ratio returns the compression ratio original/compressed in bytes,
// treating the original as float64 storage.
func Ratio(n int, blob []byte) float64 {
	if len(blob) == 0 {
		return 0
	}
	return float64(n*8) / float64(len(blob))
}

func checkDims(data []float64, dims []int) error {
	if len(dims) == 0 || len(dims) > 3 {
		return fmt.Errorf("compress: dims rank %d not in 1..3", len(dims))
	}
	p := 1
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("compress: non-positive dim %d", d)
		}
		p *= d
	}
	if p != len(data) {
		return fmt.Errorf("compress: dims product %d != data length %d", p, len(data))
	}
	return nil
}

func minMax(data []float64) (min, max float64) {
	if len(data) == 0 {
		return 0, 0
	}
	min, max = data[0], data[0]
	for _, x := range data[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// marshal writes the v2 container frame:
//
//	magic(4) headerLen(2) header headerCRC(4) payload
//	header = nameLen(1) name mode(1) tol(8) rank(1) dims(8*rank)
//	         payloadLen(4) payloadCRC(4)
//
// The header CRC covers everything before it (magic and headerLen
// included), so damage to the framing itself — not just the payload — is
// detected. The payload CRC lives inside the header, protected by the
// header CRC, and is verified against the payload bytes on read.
func marshal(b Blob) []byte {
	name := []byte(b.CodecName)
	header := make([]byte, 0, maxHeaderLen)
	header = append(header, byte(len(name)))
	header = append(header, name...)
	header = append(header, byte(b.Mode))
	header = binary.LittleEndian.AppendUint64(header, math.Float64bits(b.Tol))
	header = append(header, byte(len(b.Dims)))
	for _, d := range b.Dims {
		header = binary.LittleEndian.AppendUint64(header, uint64(d))
	}
	header = binary.LittleEndian.AppendUint32(header, uint32(len(b.Payload)))
	header = binary.LittleEndian.AppendUint32(header, integrity.Checksum(b.Payload))

	out := make([]byte, 0, 4+2+len(header)+4+len(b.Payload))
	out = binary.LittleEndian.AppendUint32(out, magicV2)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(header)))
	out = append(out, header...)
	out = binary.LittleEndian.AppendUint32(out, integrity.Checksum(out))
	out = append(out, b.Payload...)
	return out
}

// marshalV1 writes the legacy unchecksummed v1 frame. Kept so tests can
// pin the backward-compat read path and regenerate v1 fixtures.
func marshalV1(b Blob) []byte {
	name := []byte(b.CodecName)
	out := make([]byte, 0, 4+1+len(name)+1+8+1+8*len(b.Dims)+4+len(b.Payload))
	out = binary.LittleEndian.AppendUint32(out, magic)
	out = append(out, byte(len(name)))
	out = append(out, name...)
	out = append(out, byte(b.Mode))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(b.Tol))
	out = append(out, byte(len(b.Dims)))
	for _, d := range b.Dims {
		out = binary.LittleEndian.AppendUint64(out, uint64(d))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Payload)))
	out = append(out, b.Payload...)
	return out
}

// unmarshal dispatches on the container magic: v2 frames are verified
// (header CRC, then payload CRC) before any field is trusted; v1 frames
// take the legacy unchecksummed path for backward compatibility.
func unmarshal(blob []byte) (*Blob, error) {
	if len(blob) < 4 {
		return nil, fmt.Errorf("compress: container: %w: %d bytes, shorter than any magic", ErrTruncated, len(blob))
	}
	switch binary.LittleEndian.Uint32(blob) {
	case magicV2:
		return unmarshalV2(blob)
	case magic:
		return unmarshalV1(blob)
	}
	return nil, fmt.Errorf("compress: container: %w: unknown magic", ErrCorrupt)
}

func unmarshalV2(blob []byte) (*Blob, error) {
	if len(blob) < 6 {
		return nil, fmt.Errorf("compress: v2 container: %w: header length field missing", ErrTruncated)
	}
	hlen := int(binary.LittleEndian.Uint16(blob[4:]))
	if hlen > maxHeaderLen {
		return nil, fmt.Errorf("compress: v2 container: %w: declared header length %d exceeds maximum %d", ErrCorrupt, hlen, maxHeaderLen)
	}
	// magic(4) + headerLen(2) + header(hlen) + headerCRC(4)
	crcOff := 6 + hlen
	if len(blob) < crcOff+4 {
		return nil, fmt.Errorf("compress: v2 container: %w: %d bytes, header needs %d", ErrTruncated, len(blob), crcOff+4)
	}
	if got, want := integrity.Checksum(blob[:crcOff]), binary.LittleEndian.Uint32(blob[crcOff:]); got != want {
		return nil, fmt.Errorf("compress: v2 container: %w: header checksum %08x != stored %08x", ErrCorrupt, got, want)
	}

	// The header checksum passed; parse it. Field bounds are still
	// checked — a checksummed header can be absurd if it was *written*
	// wrong, and dims guards also protect the v1 path, which shares the
	// element cap.
	h := blob[6:crcOff]
	if len(h) < 1 {
		return nil, fmt.Errorf("compress: v2 container: %w: empty header", ErrCorrupt)
	}
	p := 0
	nameLen := int(h[p])
	p++
	if p+nameLen+1+8+1 > len(h) {
		return nil, fmt.Errorf("compress: v2 container: %w: header too short for codec name", ErrCorrupt)
	}
	name := string(h[p : p+nameLen])
	p += nameLen
	mode := Mode(h[p])
	p++
	tol := math.Float64frombits(binary.LittleEndian.Uint64(h[p:]))
	p += 8
	rank := int(h[p])
	p++
	if rank == 0 || rank > 3 || p+8*rank+8 != len(h) {
		return nil, fmt.Errorf("compress: v2 container: %w: rank %d inconsistent with header length", ErrCorrupt, rank)
	}
	dims := make([]int, rank)
	elems := 1
	for i := range dims {
		d := int(binary.LittleEndian.Uint64(h[p:]))
		p += 8
		// Same untrusted-dims guard as v1: reject non-positive or
		// oversized values before any codec sizes an allocation from
		// their product (overflow-safe check).
		if d <= 0 || d > maxGridElems || elems > maxGridElems/d {
			return nil, fmt.Errorf("compress: v2 container: %w: implausible dim %d", ErrCorrupt, d)
		}
		elems *= d
		dims[i] = d
	}
	plen := int(binary.LittleEndian.Uint32(h[p:]))
	p += 4
	pcrc := binary.LittleEndian.Uint32(h[p:])

	payload := blob[crcOff+4:]
	if len(payload) < plen {
		return nil, fmt.Errorf("compress: v2 container: %w: payload %d of %d declared bytes", ErrTruncated, len(payload), plen)
	}
	payload = payload[:plen]
	if got := integrity.Checksum(payload); got != pcrc {
		return nil, fmt.Errorf("compress: v2 container: %w: payload checksum %08x != stored %08x", ErrCorrupt, got, pcrc)
	}
	return &Blob{CodecName: name, Mode: mode, Tol: tol, Dims: dims, Payload: payload,
		Version: 2, PayloadChecksum: pcrc}, nil
}

func unmarshalV1(blob []byte) (*Blob, error) {
	if len(blob) < 6 || binary.LittleEndian.Uint32(blob) != magic {
		return nil, fmt.Errorf("compress: v1 container: %w: bad magic or header", ErrCorrupt)
	}
	p := 4
	nameLen := int(blob[p])
	p++
	if p+nameLen+1+8+1 > len(blob) {
		return nil, fmt.Errorf("compress: v1 container: %w: header", ErrTruncated)
	}
	name := string(blob[p : p+nameLen])
	p += nameLen
	mode := Mode(blob[p])
	p++
	tol := math.Float64frombits(binary.LittleEndian.Uint64(blob[p:]))
	p += 8
	rank := int(blob[p])
	p++
	if rank == 0 || rank > 3 {
		return nil, fmt.Errorf("compress: v1 container: %w: rank %d not in 1..3", ErrCorrupt, rank)
	}
	if p+8*rank+4 > len(blob) {
		return nil, fmt.Errorf("compress: v1 container: %w: dims", ErrTruncated)
	}
	dims := make([]int, rank)
	elems := 1
	for i := range dims {
		d := int(binary.LittleEndian.Uint64(blob[p:]))
		p += 8
		// Dims come from untrusted bytes: reject non-positive or
		// oversized values before any codec sizes an allocation from
		// their product (overflow-safe check).
		if d <= 0 || d > maxGridElems || elems > maxGridElems/d {
			return nil, fmt.Errorf("compress: v1 container: %w: implausible dim %d", ErrCorrupt, d)
		}
		elems *= d
		dims[i] = d
	}
	plen := int(binary.LittleEndian.Uint32(blob[p:]))
	p += 4
	if p+plen > len(blob) {
		return nil, fmt.Errorf("compress: v1 container: %w: payload %d of %d declared bytes", ErrTruncated, len(blob)-p, plen)
	}
	payload := blob[p : p+plen]
	return &Blob{CodecName: name, Mode: mode, Tol: tol, Dims: dims, Payload: payload,
		Version: 1, PayloadChecksum: integrity.Checksum(payload)}, nil
}
