// Package compress defines the error-bounded lossy-compression interface
// shared by the three scientific codecs the paper evaluates — SZ-style
// prediction coding, ZFP-style transform coding and MGARD-style multilevel
// decomposition — together with a self-describing container format so any
// registered codec's output can be decompressed without out-of-band
// metadata.
//
// The error modes mirror the tolerances the paper drives its experiments
// with: an absolute pointwise (L-infinity) bound, a relative pointwise
// bound (scaled by the data's value range), and a bound on the L2 norm of
// the whole error vector. As in the paper, ZFP supports only the
// L-infinity modes.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Mode selects how the tolerance argument of Compress is interpreted.
type Mode int

const (
	// AbsLinf bounds max_i |x_i - x~_i| <= tol.
	AbsLinf Mode = iota
	// RelLinf bounds max_i |x_i - x~_i| <= tol * (max x - min x).
	RelLinf
	// L2 bounds ||x - x~||_2 <= tol (absolute, whole-vector).
	L2
	// RelL2 bounds ||x - x~||_2 <= tol * ||x||_2.
	RelL2
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case AbsLinf:
		return "abs-linf"
	case RelLinf:
		return "rel-linf"
	case L2:
		return "l2"
	case RelL2:
		return "rel-l2"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ErrUnsupportedMode is returned when a codec does not implement the
// requested error mode (e.g. ZFP with an L2 tolerance).
var ErrUnsupportedMode = errors.New("compress: unsupported error mode for this codec")

// ErrCorrupt is returned when a blob cannot be decoded.
var ErrCorrupt = errors.New("compress: corrupt stream")

// Codec is an error-bounded lossy compressor. Implementations must
// guarantee the requested bound exactly (encoder-side verification is
// acceptable and used by the bundled codecs as a safety net).
type Codec interface {
	// Name returns the registry key ("sz", "zfp", "mgard").
	Name() string
	// SupportsMode reports whether the codec honours the given mode.
	SupportsMode(m Mode) bool
	// Compress encodes data interpreted with the given dimensions
	// (len(dims) in 1..3, product == len(data)) under the tolerance.
	Compress(data []float64, dims []int, mode Mode, tol float64) ([]byte, error)
	// Decompress decodes a payload produced by Compress.
	Decompress(payload []byte, dims []int) ([]float64, error)
}

var registry = map[string]Codec{}

// Register adds a codec to the global registry; it panics on duplicate
// names, which would indicate a programmer error at init time.
func Register(c Codec) {
	if _, dup := registry[c.Name()]; dup {
		panic("compress: duplicate codec " + c.Name())
	}
	registry[c.Name()] = c
}

// ByName returns a registered codec.
func ByName(name string) (Codec, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
	return c, nil
}

// Names lists registered codecs in deterministic (sorted) order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	// insertion sort; tiny slice
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

const magic = 0x53445243 // "SDRC"

// maxGridElems caps the total element count a decoded container may
// declare (2^30 covers a 1024^3 volume). Anything larger in a header is
// treated as corruption rather than sizing an 8+ GiB allocation from
// untrusted bytes.
const maxGridElems = 1 << 30

// Blob is a self-describing compressed buffer: container header + payload.
type Blob struct {
	CodecName string
	Mode      Mode
	Tol       float64
	Dims      []int
	Payload   []byte
}

// Encode compresses data with the named codec and wraps the result in the
// container format. AbsTol resolves relative modes against the data before
// the codec runs, so payloads always carry the absolute tolerance actually
// enforced.
func Encode(codecName string, data []float64, dims []int, mode Mode, tol float64) ([]byte, error) {
	c, err := ByName(codecName)
	if err != nil {
		return nil, err
	}
	if !c.SupportsMode(mode) {
		return nil, fmt.Errorf("%w: %s does not support %s", ErrUnsupportedMode, codecName, mode)
	}
	if err := checkDims(data, dims); err != nil {
		return nil, err
	}
	if tol <= 0 || math.IsNaN(tol) || math.IsInf(tol, 0) {
		return nil, fmt.Errorf("compress: invalid tolerance %v", tol)
	}
	payload, err := c.Compress(data, dims, mode, tol)
	if err != nil {
		return nil, err
	}
	return marshal(Blob{CodecName: codecName, Mode: mode, Tol: tol, Dims: dims, Payload: payload}), nil
}

// Decode decompresses a container produced by Encode.
func Decode(blob []byte) ([]float64, *Blob, error) {
	b, err := unmarshal(blob)
	if err != nil {
		return nil, nil, err
	}
	c, err := ByName(b.CodecName)
	if err != nil {
		return nil, nil, err
	}
	data, err := c.Decompress(b.Payload, b.Dims)
	if err != nil {
		return nil, nil, err
	}
	return data, b, nil
}

// AbsTol converts a (mode, tol) pair into the absolute tolerance implied
// for the given data: pointwise for the Linf modes, whole-vector for L2.
func AbsTol(data []float64, mode Mode, tol float64) float64 {
	switch mode {
	case AbsLinf, L2:
		return tol
	case RelLinf:
		min, max := minMax(data)
		return tol * (max - min)
	case RelL2:
		var ss float64
		for _, x := range data {
			ss += x * x
		}
		return tol * math.Sqrt(ss)
	}
	panic("compress: unknown mode")
}

// MeasureError returns the achieved pointwise L-infinity error and the
// whole-vector L2 error between original and reconstructed data.
func MeasureError(orig, recon []float64) (linf, l2 float64) {
	if len(orig) != len(recon) {
		panic("compress: MeasureError length mismatch")
	}
	var ss float64
	for i := range orig {
		d := math.Abs(orig[i] - recon[i])
		if d > linf {
			linf = d
		}
		ss += d * d
	}
	return linf, math.Sqrt(ss)
}

// Ratio returns the compression ratio original/compressed in bytes,
// treating the original as float64 storage.
func Ratio(n int, blob []byte) float64 {
	if len(blob) == 0 {
		return 0
	}
	return float64(n*8) / float64(len(blob))
}

func checkDims(data []float64, dims []int) error {
	if len(dims) == 0 || len(dims) > 3 {
		return fmt.Errorf("compress: dims rank %d not in 1..3", len(dims))
	}
	p := 1
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("compress: non-positive dim %d", d)
		}
		p *= d
	}
	if p != len(data) {
		return fmt.Errorf("compress: dims product %d != data length %d", p, len(data))
	}
	return nil
}

func minMax(data []float64) (min, max float64) {
	if len(data) == 0 {
		return 0, 0
	}
	min, max = data[0], data[0]
	for _, x := range data[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

func marshal(b Blob) []byte {
	name := []byte(b.CodecName)
	out := make([]byte, 0, 4+1+len(name)+1+8+1+8*len(b.Dims)+4+len(b.Payload))
	out = binary.LittleEndian.AppendUint32(out, magic)
	out = append(out, byte(len(name)))
	out = append(out, name...)
	out = append(out, byte(b.Mode))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(b.Tol))
	out = append(out, byte(len(b.Dims)))
	for _, d := range b.Dims {
		out = binary.LittleEndian.AppendUint64(out, uint64(d))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Payload)))
	out = append(out, b.Payload...)
	return out
}

func unmarshal(blob []byte) (*Blob, error) {
	if len(blob) < 6 || binary.LittleEndian.Uint32(blob) != magic {
		return nil, ErrCorrupt
	}
	p := 4
	nameLen := int(blob[p])
	p++
	if p+nameLen+1+8+1 > len(blob) {
		return nil, ErrCorrupt
	}
	name := string(blob[p : p+nameLen])
	p += nameLen
	mode := Mode(blob[p])
	p++
	tol := math.Float64frombits(binary.LittleEndian.Uint64(blob[p:]))
	p += 8
	rank := int(blob[p])
	p++
	if rank == 0 || rank > 3 || p+8*rank+4 > len(blob) {
		return nil, ErrCorrupt
	}
	dims := make([]int, rank)
	elems := 1
	for i := range dims {
		d := int(binary.LittleEndian.Uint64(blob[p:]))
		p += 8
		// Dims come from untrusted bytes: reject non-positive or
		// oversized values before any codec sizes an allocation from
		// their product (overflow-safe check).
		if d <= 0 || d > maxGridElems || elems > maxGridElems/d {
			return nil, ErrCorrupt
		}
		elems *= d
		dims[i] = d
	}
	plen := int(binary.LittleEndian.Uint32(blob[p:]))
	p += 4
	if p+plen > len(blob) {
		return nil, ErrCorrupt
	}
	return &Blob{CodecName: name, Mode: mode, Tol: tol, Dims: dims, Payload: blob[p : p+plen]}, nil
}
