package compress

import (
	"fmt"
)

// EstimateRatio predicts a codec's compression ratio on data at a
// tolerance by compressing a contiguous sample of the grid and
// extrapolating — the sampling-based variant of the compression-ratio
// estimation problem the paper cites (Wang et al., TPDS 2019). It gives
// planners an I/O-throughput prediction without paying for a full
// compression pass.
//
// sampleFrac in (0, 1] selects the sampled fraction of the slowest
// dimension (e.g. 0.1 compresses the first 10% of rows). For rank-1 data
// a contiguous prefix is used. The sample keeps the full faster
// dimensions, preserving the correlation structure the codecs exploit.
func EstimateRatio(codec string, data []float64, dims []int, mode Mode, tol float64, sampleFrac float64) (float64, error) {
	if sampleFrac <= 0 || sampleFrac > 1 {
		return 0, fmt.Errorf("compress: sample fraction %v not in (0,1]", sampleFrac)
	}
	if err := checkDims(data, dims); err != nil {
		return 0, err
	}
	// Sample along the slowest (first) dimension.
	rows := dims[0]
	sampleRows := int(float64(rows)*sampleFrac + 0.5)
	if sampleRows < 1 {
		sampleRows = 1
	}
	if sampleRows > rows {
		sampleRows = rows
	}
	rowSize := len(data) / rows
	sample := data[:sampleRows*rowSize]
	sampleDims := append([]int{sampleRows}, dims[1:]...)

	// Relative modes must resolve against the FULL data's statistics, or
	// the sample would see a different absolute tolerance.
	absTol := AbsTol(data, mode, tol)
	sampleMode := mode
	switch mode {
	case RelLinf:
		sampleMode = AbsLinf
	case RelL2:
		// Whole-vector L2 budgets shrink with the sample size.
		sampleMode = L2
		absTol = absTol * float64(sampleRows) / float64(rows)
	case L2:
		absTol = tol * float64(sampleRows) / float64(rows)
	default:
		absTol = tol
	}
	blob, err := Encode(codec, sample, sampleDims, sampleMode, absTol)
	if err != nil {
		return 0, err
	}
	return Ratio(len(sample), blob), nil
}

// EstimateStoredBytes predicts the compressed size of the full data from
// a sampled ratio.
func EstimateStoredBytes(codec string, data []float64, dims []int, mode Mode, tol float64, sampleFrac float64) (int64, error) {
	r, err := EstimateRatio(codec, data, dims, mode, tol, sampleFrac)
	if err != nil {
		return 0, err
	}
	if r <= 0 {
		return int64(len(data) * 8), nil
	}
	return int64(float64(len(data)*8) / r), nil
}
