package mgard

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/compress"
)

func TestViewGrid(t *testing.T) {
	if g := viewGrid([]int{7}); g.rows != 1 || g.cols != 7 {
		t.Fatalf("rank1 grid = %+v", g)
	}
	if g := viewGrid([]int{3, 5}); g.rows != 3 || g.cols != 5 {
		t.Fatalf("rank2 grid = %+v", g)
	}
	if g := viewGrid([]int{2, 3, 4}); g.rows != 2 || g.cols != 12 {
		t.Fatalf("rank3 grid = %+v", g)
	}
}

func TestLevels(t *testing.T) {
	if l := (grid{1, 2}).levels(); l != 1 {
		t.Fatalf("levels(1x2) = %d", l)
	}
	if l := (grid{1, 5}).levels(); l != 2 {
		t.Fatalf("levels(1x5) = %d", l)
	}
	if l := (grid{17, 17}).levels(); l != 4 {
		t.Fatalf("levels(17x17) = %d", l)
	}
	if l := (grid{1, 1}).levels(); l != 1 {
		t.Fatalf("levels(1x1) = %d", l)
	}
}

func TestHierarchyVisitsEachNodeOnce(t *testing.T) {
	for _, g := range []grid{{1, 1}, {1, 7}, {5, 5}, {4, 9}, {17, 33}, {3, 3}} {
		L := g.levels()
		seen := make(map[int]int)
		prevLevel := 0
		walkHierarchy(g, L, func(level, idx int, _ func([]float64) float64) {
			seen[idx]++
			if level < prevLevel {
				t.Fatalf("grid %+v: levels out of order (%d after %d)", g, level, prevLevel)
			}
			prevLevel = level
		})
		if len(seen) != g.rows*g.cols {
			t.Fatalf("grid %+v: visited %d of %d nodes", g, len(seen), g.rows*g.cols)
		}
		for idx, c := range seen {
			if c != 1 {
				t.Fatalf("grid %+v: node %d visited %d times", g, idx, c)
			}
		}
	}
}

func TestPredictionIsConvex(t *testing.T) {
	// With a constant decoded field, every prediction must return exactly
	// that constant (weights sum to 1) — the property the telescoping
	// error argument relies on.
	g := grid{9, 13}
	L := g.levels()
	dec := make([]float64, g.rows*g.cols)
	for i := range dec {
		dec[i] = 4.5
	}
	walkHierarchy(g, L, func(level, idx int, predict func([]float64) float64) {
		if level == 0 {
			return
		}
		if p := predict(dec); math.Abs(p-4.5) > 1e-12 {
			t.Fatalf("prediction %v at idx %d not convex", p, idx)
		}
	})
}

func TestLinfTelescoping(t *testing.T) {
	// Direct check that the geometric per-level budgets guarantee the
	// pointwise bound on adversarial data.
	rng := rand.New(rand.NewSource(1))
	c := Codec{}
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(40)
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = rng.NormFloat64() * math.Exp2(float64(rng.Intn(8)-4))
		}
		tol := math.Exp2(-float64(1 + rng.Intn(20)))
		payload, err := c.Compress(data, []int{rows, cols}, compress.AbsLinf, tol)
		if err != nil {
			t.Fatal(err)
		}
		recon, err := c.Decompress(payload, []int{rows, cols})
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if math.Abs(recon[i]-data[i]) > tol {
				t.Fatalf("trial %d: Linf %v > %v", trial, math.Abs(recon[i]-data[i]), tol)
			}
		}
	}
}

func TestL2TighterThanNaive(t *testing.T) {
	// On smooth data the multilevel L2 allocation should compress better
	// than a naive pointwise tol/sqrt(n) scheme would allow. We check the
	// achieved L2 is within bound and the ratio is sane.
	n := 4096
	data := make([]float64, n)
	for i := range data {
		x := float64(i) / float64(n)
		data[i] = math.Sin(12*x) + 0.2*math.Cos(40*x)
	}
	c := Codec{}
	tol := 1e-3
	payload, err := c.Compress(data, []int{n}, compress.L2, tol)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := c.Decompress(payload, []int{n})
	if err != nil {
		t.Fatal(err)
	}
	if _, l2 := compress.MeasureError(data, recon); l2 > tol {
		t.Fatalf("L2 %v > %v", l2, tol)
	}
	if r := float64(n*8) / float64(len(payload)); r < 4 {
		t.Fatalf("L2-mode ratio only %.2f", r)
	}
}

func TestSingleElement(t *testing.T) {
	c := Codec{}
	data := []float64{math.Pi}
	payload, err := c.Compress(data, []int{1}, compress.AbsLinf, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := c.Decompress(payload, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(recon[0]-math.Pi) > 1e-9 {
		t.Fatalf("single element error %v", math.Abs(recon[0]-math.Pi))
	}
}

func TestDecompressGarbage(t *testing.T) {
	c := Codec{}
	if _, err := c.Decompress([]byte{1, 2, 3}, []int{4}); err == nil {
		t.Fatal("garbage should error")
	}
}
