// Package mgard implements an MGARD-style multilevel error-bounded
// compressor: data on a (1-D or 2-D) grid is decomposed into a dyadic
// hierarchy of piecewise-(bi)linear levels, the per-level detail
// coefficients are uniformly quantized against per-level budgets that
// telescope to the requested tolerance, and the codes are entropy-coded
// with Huffman + flate.
//
// Like the real MGARD, the codec supports both L-infinity and L2 norm
// tolerances (the multilevel structure is what makes L2 control natural),
// and its decode path is the most expensive of the three codecs — the
// behaviour behind its throughput dip at stringent tolerances in Fig. 7.
package mgard

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/huffman"
)

func init() { compress.Register(Codec{}) }

// Codec is the MGARD-style compressor. The zero value is ready to use.
type Codec struct{}

// Name implements compress.Codec.
func (Codec) Name() string { return "mgard" }

// SupportsMode implements compress.Codec: all modes.
func (Codec) SupportsMode(compress.Mode) bool { return true }

const (
	codeRange  = 1 << 16
	codeCenter = codeRange / 2
	unpredSym  = 0
)

// grid describes the 2-D view of the data (1-D inputs become a single
// row; rank-3 inputs fold their trailing dims into columns).
type grid struct {
	rows, cols int
}

func viewGrid(dims []int) grid {
	switch len(dims) {
	case 1:
		return grid{1, dims[0]}
	case 2:
		return grid{dims[0], dims[1]}
	case 3:
		return grid{dims[0], dims[1] * dims[2]}
	}
	panic("mgard: rank not in 1..3")
}

// levels returns the number of refinement levels for the grid: enough
// that the coarsest grid spacing covers the longest dimension.
func (g grid) levels() int {
	max := g.rows
	if g.cols > max {
		max = g.cols
	}
	l := 0
	for (1 << uint(l)) < max-1 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

// Compress implements compress.Codec.
//
//errprop:deterministic the payload is a pure function of (data, dims, mode, tol)
func (c Codec) Compress(data []float64, dims []int, mode compress.Mode, tol float64) ([]byte, error) {
	g := viewGrid(dims)
	abs := compress.AbsTol(data, mode, tol)
	if abs <= 0 {
		return nil, fmt.Errorf("mgard: tolerance %v resolves to non-positive bound", tol)
	}
	L := g.levels()
	budgets := make([]float64, L+1)
	l2mode := mode == compress.L2 || mode == compress.RelL2

	if !l2mode {
		// Telescoping pointwise budgets: sum_l e_l < abs with finer
		// levels (more coefficients) receiving geometrically more.
		for l := 0; l <= L; l++ {
			budgets[l] = abs * math.Exp2(float64(l-L-1))
		}
		payload, _, err := c.encode(data, g, budgets)
		return payload, err
	}

	// L2 mode: optimistic per-level budgets, verified and tightened until
	// the achieved vector norm is within the bound.
	n := float64(len(data))
	base := abs * math.Sqrt(3) / (float64(L+1) * math.Sqrt(n))
	for l := 0; l <= L; l++ {
		budgets[l] = base * math.Exp2(float64(L-l)/2)
	}
	for iter := 0; iter < 40; iter++ {
		payload, recon, err := c.encode(data, g, budgets)
		if err != nil {
			return nil, err
		}
		_, l2 := compress.MeasureError(data, recon)
		if l2 <= abs {
			return payload, nil
		}
		for l := range budgets {
			budgets[l] /= 2
		}
	}
	return nil, fmt.Errorf("mgard: could not meet L2 bound %v", abs)
}

// encode performs the multilevel decomposition with the given per-level
// pointwise budgets and returns the payload plus the reconstruction the
// decoder will produce.
func (c Codec) encode(data []float64, g grid, budgets []float64) ([]byte, []float64, error) {
	L := len(budgets) - 1
	decoded := make([]float64, len(data))
	var codes []uint32
	var unpred []float64

	walkHierarchy(g, L, func(level, idx int, predict func(dec []float64) float64) {
		pred := predict(decoded)
		eb := budgets[level]
		r := (data[idx] - pred) / (2 * eb)
		q := math.Round(r)
		if math.Abs(q) < codeCenter-1 {
			rec := pred + q*2*eb
			if math.Abs(rec-data[idx]) <= eb {
				codes = append(codes, uint32(int64(q)+codeCenter))
				decoded[idx] = rec
				return
			}
		}
		codes = append(codes, unpredSym)
		unpred = append(unpred, data[idx])
		decoded[idx] = data[idx]
	})

	var raw bytes.Buffer
	binary.Write(&raw, binary.LittleEndian, uint32(L))
	for _, b := range budgets {
		binary.Write(&raw, binary.LittleEndian, math.Float64bits(b))
	}
	binary.Write(&raw, binary.LittleEndian, uint64(len(unpred)))
	for _, u := range unpred {
		binary.Write(&raw, binary.LittleEndian, math.Float64bits(u))
	}
	hblob := huffman.Encode(codes)
	binary.Write(&raw, binary.LittleEndian, uint64(len(hblob)))
	raw.Write(hblob)

	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, nil, err
	}
	if _, err := fw.Write(raw.Bytes()); err != nil {
		return nil, nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, nil, err
	}
	return out.Bytes(), decoded, nil
}

// Decompress implements compress.Codec.
func (c Codec) Decompress(payload []byte, dims []int) ([]float64, error) {
	fr := flate.NewReader(bytes.NewReader(payload))
	raw, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("mgard: %w: %v", compress.ErrCorrupt, err)
	}
	if len(raw) < 4 {
		return nil, compress.ErrCorrupt
	}
	L := int(binary.LittleEndian.Uint32(raw))
	p := 4
	if L < 0 || L > 64 || p+8*(L+1) > len(raw) {
		return nil, compress.ErrCorrupt
	}
	budgets := make([]float64, L+1)
	for i := range budgets {
		budgets[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[p:]))
		p += 8
	}
	if p+8 > len(raw) {
		return nil, compress.ErrCorrupt
	}
	nUnpred := int(binary.LittleEndian.Uint64(raw[p:]))
	p += 8
	// Subtract instead of multiplying so a huge untrusted count cannot
	// overflow the bounds check (8 bytes stay reserved for hlen).
	if nUnpred < 0 || len(raw)-p < 8 || nUnpred > (len(raw)-p-8)/8 {
		return nil, compress.ErrCorrupt
	}
	unpred := make([]float64, nUnpred)
	for i := range unpred {
		unpred[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[p:]))
		p += 8
	}
	hlen := int(binary.LittleEndian.Uint64(raw[p:]))
	p += 8
	if hlen < 0 || hlen > len(raw)-p {
		return nil, compress.ErrCorrupt
	}
	codes, err := huffman.Decode(raw[p : p+hlen])
	if err != nil {
		return nil, fmt.Errorf("mgard: %w: %v", compress.ErrCorrupt, err)
	}

	g := viewGrid(dims)
	n := g.rows * g.cols
	// The walk consumes exactly one code per grid node; checking the
	// count up front keeps a tiny corrupt payload from sizing a huge
	// allocation off the (container-supplied) dims alone.
	if len(codes) != n {
		return nil, compress.ErrCorrupt
	}
	decoded := make([]float64, n)
	ci, ui := 0, 0
	var walkErr error
	walkHierarchy(g, L, func(level, idx int, predict func(dec []float64) float64) {
		if walkErr != nil {
			return
		}
		if ci >= len(codes) {
			walkErr = compress.ErrCorrupt
			return
		}
		code := codes[ci]
		ci++
		if code == unpredSym {
			if ui >= len(unpred) {
				walkErr = compress.ErrCorrupt
				return
			}
			decoded[idx] = unpred[ui]
			ui++
			return
		}
		pred := predict(decoded)
		decoded[idx] = pred + float64(int64(code)-codeCenter)*2*budgets[level]
	})
	if walkErr != nil {
		return nil, walkErr
	}
	if ci != len(codes) {
		return nil, compress.ErrCorrupt
	}
	return decoded, nil
}

// walkHierarchy visits every grid node exactly once in coarse-to-fine
// order, passing a prediction closure that multilinearly interpolates the
// node from the (already decoded) coarser grid. Level 0 nodes have a zero
// prediction (their coefficient is the raw value).
//
// The node set at level l consists of indices that are multiples of
// h = 2^(L-l) (clamped into range), matching a dyadic refinement of the
// grid; boundary nodes interpolate from clamped coarse neighbours, which
// preserves the convex-combination property the error telescoping needs.
func walkHierarchy(g grid, L int, visit func(level, idx int, predict func(dec []float64) float64)) {
	onGrid := func(i, h int) bool { return i%h == 0 }
	// coarseLeft/Right clamp a neighbour offset onto the coarse grid.
	clampCoarse := func(i, n, h2 int) int {
		if i < 0 {
			return 0
		}
		if i >= n {
			// Largest coarse-grid index within range.
			return ((n - 1) / h2) * h2
		}
		return i
	}
	zero := func([]float64) float64 { return 0 }

	for level := 0; level <= L; level++ {
		h := 1 << uint(L-level)
		h2 := h * 2
		for r := 0; r < g.rows; r += 1 {
			if !onGrid(r, h) {
				continue
			}
			for c := 0; c < g.cols; c += 1 {
				if !onGrid(c, h) {
					continue
				}
				if level > 0 && onGrid(r, h2) && onGrid(c, h2) {
					continue // already visited at a coarser level
				}
				idx := r*g.cols + c
				if level == 0 {
					visit(0, idx, zero)
					continue
				}
				rOdd := !onGrid(r, h2)
				cOdd := !onGrid(c, h2)
				r0, r1 := clampCoarse(r-h, g.rows, h2), clampCoarse(r+h, g.rows, h2)
				c0, c1 := clampCoarse(c-h, g.cols, h2), clampCoarse(c+h, g.cols, h2)
				var predict func(dec []float64) float64
				switch {
				case rOdd && cOdd:
					predict = func(dec []float64) float64 {
						return 0.25 * (dec[r0*g.cols+c0] + dec[r0*g.cols+c1] +
							dec[r1*g.cols+c0] + dec[r1*g.cols+c1])
					}
				case rOdd:
					predict = func(dec []float64) float64 {
						return 0.5 * (dec[r0*g.cols+c] + dec[r1*g.cols+c])
					}
				default: // cOdd
					predict = func(dec []float64) float64 {
						return 0.5 * (dec[r*g.cols+c0] + dec[r*g.cols+c1])
					}
				}
				visit(level, idx, predict)
			}
		}
	}
}
