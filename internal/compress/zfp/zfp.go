// Package zfp implements a ZFP-style fixed-accuracy transform codec:
// data is partitioned into 4^d blocks, aligned to a per-block common
// exponent, decorrelated with zfp's integer lifting transform, mapped to
// negabinary and coded plane-by-plane down to a per-block cutoff chosen
// (and encoder-verified) to honour the pointwise error bound.
//
// Like the real ZFP, the codec supports only L-infinity style tolerances
// (the paper notes "ZFP does not support an L2 norm tolerance") and has a
// cheap, symmetric decode path — the property behind its flat
// I/O-throughput curve in Fig. 7.
package zfp

import (
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/bitstream"
	"github.com/scidata/errprop/internal/compress"
)

func init() { compress.Register(Codec{}) }

// Codec is the ZFP-style compressor. The zero value is ready to use.
type Codec struct{}

// Name implements compress.Codec.
func (Codec) Name() string { return "zfp" }

// SupportsMode implements compress.Codec: pointwise modes only.
func (Codec) SupportsMode(m compress.Mode) bool {
	return m == compress.AbsLinf || m == compress.RelLinf
}

// precisionBits is the fixed-point width; headroom of 2 bits per transform
// pass keeps the lifted coefficients inside int32.
func precisionBits(rank int) int { return 30 - 2*rank }

// rawEmaxSentinel in the emax field marks a verbatim float64 block,
// emitted when fixed-point precision cannot honour the tolerance.
const rawEmaxSentinel = 0xFFFF

// Compress implements compress.Codec.
//
//errprop:deterministic the payload is a pure function of (data, dims, mode, tol)
func (c Codec) Compress(data []float64, dims []int, mode compress.Mode, tol float64) ([]byte, error) {
	if !c.SupportsMode(mode) {
		return nil, compress.ErrUnsupportedMode
	}
	eb := compress.AbsTol(data, mode, tol)
	if eb <= 0 {
		return nil, fmt.Errorf("zfp: tolerance %v resolves to non-positive bound", tol)
	}
	w := bitstream.NewWriter()
	forEachBlock(data, dims, func(block []float64, _ []int) {
		encodeBlock(w, block, len(dims), eb)
	})
	return w.Bytes(), nil
}

// Decompress implements compress.Codec.
func (c Codec) Decompress(payload []byte, dims []int) ([]float64, error) {
	n := 1
	for _, d := range dims {
		n *= d
	}
	out := make([]float64, n)
	r := bitstream.NewReader(payload)
	var decErr error
	scatterBlocks(out, dims, func(rank int) []float64 {
		block, err := decodeBlock(r, rank)
		if err != nil && decErr == nil {
			decErr = err
		}
		return block
	})
	if decErr != nil {
		return nil, fmt.Errorf("zfp: %w: %v", compress.ErrCorrupt, decErr)
	}
	return out, nil
}

// blockElems returns 4^rank.
func blockElems(rank int) int { return 1 << (2 * uint(rank)) }

// forEachBlock walks data in 4^rank blocks (edge blocks padded by
// replicating the nearest sample) and invokes fn with the padded block.
func forEachBlock(data []float64, dims []int, fn func(block []float64, origin []int)) {
	switch len(dims) {
	case 1:
		n := dims[0]
		block := make([]float64, 4)
		for i0 := 0; i0 < n; i0 += 4 {
			for k := 0; k < 4; k++ {
				block[k] = data[clamp(i0+k, n)]
			}
			fn(block, []int{i0})
		}
	case 2:
		rows, cols := dims[0], dims[1]
		block := make([]float64, 16)
		for r0 := 0; r0 < rows; r0 += 4 {
			for c0 := 0; c0 < cols; c0 += 4 {
				for r := 0; r < 4; r++ {
					for cc := 0; cc < 4; cc++ {
						block[r*4+cc] = data[clamp(r0+r, rows)*cols+clamp(c0+cc, cols)]
					}
				}
				fn(block, []int{r0, c0})
			}
		}
	case 3:
		nz, ny, nx := dims[0], dims[1], dims[2]
		block := make([]float64, 64)
		for z0 := 0; z0 < nz; z0 += 4 {
			for y0 := 0; y0 < ny; y0 += 4 {
				for x0 := 0; x0 < nx; x0 += 4 {
					for z := 0; z < 4; z++ {
						for y := 0; y < 4; y++ {
							for x := 0; x < 4; x++ {
								block[(z*4+y)*4+x] = data[(clamp(z0+z, nz)*ny+clamp(y0+y, ny))*nx+clamp(x0+x, nx)]
							}
						}
					}
					fn(block, []int{z0, y0, x0})
				}
			}
		}
	default:
		panic("zfp: rank not in 1..3")
	}
}

// scatterBlocks mirrors forEachBlock on the decode side, writing each
// decoded block back into out and discarding padded lanes.
func scatterBlocks(out []float64, dims []int, next func(rank int) []float64) {
	switch len(dims) {
	case 1:
		n := dims[0]
		for i0 := 0; i0 < n; i0 += 4 {
			block := next(1)
			if block == nil {
				return
			}
			for k := 0; k < 4 && i0+k < n; k++ {
				out[i0+k] = block[k]
			}
		}
	case 2:
		rows, cols := dims[0], dims[1]
		for r0 := 0; r0 < rows; r0 += 4 {
			for c0 := 0; c0 < cols; c0 += 4 {
				block := next(2)
				if block == nil {
					return
				}
				for r := 0; r < 4 && r0+r < rows; r++ {
					for cc := 0; cc < 4 && c0+cc < cols; cc++ {
						out[(r0+r)*cols+c0+cc] = block[r*4+cc]
					}
				}
			}
		}
	case 3:
		nz, ny, nx := dims[0], dims[1], dims[2]
		for z0 := 0; z0 < nz; z0 += 4 {
			for y0 := 0; y0 < ny; y0 += 4 {
				for x0 := 0; x0 < nx; x0 += 4 {
					block := next(3)
					if block == nil {
						return
					}
					for z := 0; z < 4 && z0+z < nz; z++ {
						for y := 0; y < 4 && y0+y < ny; y++ {
							for x := 0; x < 4 && x0+x < nx; x++ {
								out[((z0+z)*ny+y0+y)*nx+x0+x] = block[(z*4+y)*4+x]
							}
						}
					}
				}
			}
		}
	default:
		panic("zfp: rank not in 1..3")
	}
}

func clamp(i, n int) int {
	if i >= n {
		return n - 1
	}
	return i
}

// encodeBlock writes one block. Layout: 1 empty-flag bit; if non-empty,
// 16-bit biased emax, 6-bit cutoff plane, then bit planes MSB->cutoff,
// each prefixed by a 1-bit "plane non-zero" flag.
func encodeBlock(w *bitstream.Writer, vals []float64, rank int, eb float64) {
	allZero := true
	var amax float64
	for _, v := range vals {
		if a := math.Abs(v); a > amax {
			amax = a
		}
		if v != 0 {
			allZero = false
		}
	}
	if allZero || amax <= eb {
		// Entire block reconstructs as zero within the bound.
		w.WriteBit(0)
		return
	}
	w.WriteBit(1)
	k := precisionBits(rank)
	emax := int(math.Floor(math.Log2(amax)))
	scale := math.Exp2(float64(k - 2 - emax))

	q := make([]int32, len(vals))
	for i, v := range vals {
		q[i] = int32(math.Round(v * scale))
	}
	fwdTransform(q, rank)
	u := make([]uint32, len(q))
	for i, x := range q {
		u[i] = int2uint(x)
	}

	// Bit planes span the full negabinary width: the mapping can set bits
	// above the fixed-point precision k, so planes are coded from bit 31
	// down to a cutoff chosen (and decode-verified) to honour eb.
	const topPlane = 31
	cut := topPlane
	analytic := math.Floor(math.Log2(eb * scale / float64(int(1)<<uint(rank))))
	if analytic < 0 {
		cut = 0
	} else if int(analytic) < cut {
		cut = int(analytic)
	}
	for ; cut >= 0; cut-- {
		if blockErrWithin(vals, u, rank, cut, scale, eb) {
			break
		}
	}
	if cut < 0 {
		// Fixed-point precision cannot meet the bound (pathologically
		// tight tolerance): store the block verbatim. The sentinel emax
		// value flags the raw encoding.
		w.WriteBits(rawEmaxSentinel, 16)
		for _, v := range vals {
			w.WriteBits(math.Float64bits(v), 64)
		}
		return
	}
	w.WriteBits(uint64(emax+(1<<14)), 16)
	w.WriteBits(uint64(cut), 6)
	encodePlanes(w, u, rank, cut)
}

// encodePlanes emits bit planes MSB->cut using zfp's embedded scheme:
// coefficients are visited in sequency order; the first m (those at or
// before the highest one-bit seen so far) emit verbatim bits, and the
// insignificant tail is covered by group tests so an all-zero tail costs
// a single bit per plane.
func encodePlanes(w *bitstream.Writer, u []uint32, rank, cut int) {
	perm := sequencyPerm(rank)
	n := len(u)
	m := 0
	for p := 31; p >= cut; p-- {
		for i := 0; i < m; i++ {
			w.WriteBit(uint(u[perm[i]]>>uint(p)) & 1)
		}
		for m < n {
			var any uint32
			for i := m; i < n; i++ {
				any |= (u[perm[i]] >> uint(p)) & 1
			}
			w.WriteBit(uint(any))
			if any == 0 {
				break
			}
			for m < n {
				b := (u[perm[m]] >> uint(p)) & 1
				w.WriteBit(uint(b))
				m++
				if b == 1 {
					break
				}
			}
		}
	}
}

// decodePlanes mirrors encodePlanes.
func decodePlanes(r *bitstream.Reader, u []uint32, rank, cut int) error {
	perm := sequencyPerm(rank)
	n := len(u)
	m := 0
	for p := 31; p >= cut; p-- {
		for i := 0; i < m; i++ {
			b, err := r.ReadBit()
			if err != nil {
				return err
			}
			u[perm[i]] |= uint32(b) << uint(p)
		}
		for m < n {
			any, err := r.ReadBit()
			if err != nil {
				return err
			}
			if any == 0 {
				break
			}
			for m < n {
				b, err := r.ReadBit()
				if err != nil {
					return err
				}
				u[perm[m]] |= uint32(b) << uint(p)
				m++
				if b == 1 {
					break
				}
			}
		}
	}
	return nil
}

// sequencyPerm orders block coefficients by total sequency (sum of
// per-dimension frequencies), the order in which the lifted transform's
// coefficient magnitudes are expected to decay.
func sequencyPerm(rank int) []uint8 {
	switch rank {
	case 1:
		return perm1[:]
	case 2:
		return perm2[:]
	default:
		return perm3[:]
	}
}

var (
	perm1 = computePerm(1)
	perm2 = computePerm(2)
	perm3 = computePerm(3)
)

func computePerm(rank int) []uint8 {
	n := blockElems(rank)
	idx := make([]uint8, n)
	for i := range idx {
		idx[i] = uint8(i)
	}
	seq := func(i int) int {
		s := 0
		for d := 0; d < rank; d++ {
			s += i & 3
			i >>= 2
		}
		return s
	}
	for a := 1; a < n; a++ { // stable insertion sort by sequency
		x := idx[a]
		b := a - 1
		for b >= 0 && seq(int(idx[b])) > seq(int(x)) {
			idx[b+1] = idx[b]
			b--
		}
		idx[b+1] = x
	}
	return idx
}

// blockErrWithin reconstructs the block from planes >= cut and checks the
// pointwise bound.
func blockErrWithin(vals []float64, u []uint32, rank, cut int, scale, eb float64) bool {
	mask := ^uint32(0) << uint(cut)
	qr := make([]int32, len(u))
	for i, x := range u {
		qr[i] = uint2int(x & mask)
	}
	invTransform(qr, rank)
	inv := 1 / scale
	for i, v := range vals {
		if math.Abs(float64(qr[i])*inv-v) > eb {
			return false
		}
	}
	return true
}

// decodeBlock reads one block written by encodeBlock.
func decodeBlock(r *bitstream.Reader, rank int) ([]float64, error) {
	ne := blockElems(rank)
	flag, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	block := make([]float64, ne)
	if flag == 0 {
		return block, nil
	}
	k := precisionBits(rank)
	emaxB, err := r.ReadBits(16)
	if err != nil {
		return nil, err
	}
	if emaxB == rawEmaxSentinel {
		for i := range block {
			bits, err := r.ReadBits(64)
			if err != nil {
				return nil, err
			}
			block[i] = math.Float64frombits(bits)
		}
		return block, nil
	}
	emax := int(emaxB) - (1 << 14)
	cutB, err := r.ReadBits(6)
	if err != nil {
		return nil, err
	}
	cut := int(cutB)
	if cut > 31 {
		return nil, fmt.Errorf("cutoff %d out of range", cut)
	}
	u := make([]uint32, ne)
	if err := decodePlanes(r, u, rank, cut); err != nil {
		return nil, err
	}
	q := make([]int32, ne)
	for i, x := range u {
		q[i] = uint2int(x)
	}
	invTransform(q, rank)
	inv := math.Exp2(float64(emax + 2 - k))
	for i, x := range q {
		block[i] = float64(x) * inv
	}
	return block, nil
}

// int2uint maps a two's-complement int32 to negabinary, where truncating
// low bits perturbs the value by a bounded amount regardless of sign.
func int2uint(x int32) uint32 { return (uint32(x) + 0xaaaaaaaa) ^ 0xaaaaaaaa }

// uint2int inverts int2uint.
func uint2int(u uint32) int32 { return int32((u ^ 0xaaaaaaaa) - 0xaaaaaaaa) }

// fwdLift is zfp's forward integer lifting transform on a stride of 4.
func fwdLift(p []int32, s int) {
	x, y, z, w := p[0], p[s], p[2*s], p[3*s]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[0], p[s], p[2*s], p[3*s] = x, y, z, w
}

// invLift inverts fwdLift exactly.
func invLift(p []int32, s int) {
	x, y, z, w := p[0], p[s], p[2*s], p[3*s]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[0], p[s], p[2*s], p[3*s] = x, y, z, w
}

// fwdTransform applies the lifting along every dimension of a 4^rank block.
func fwdTransform(q []int32, rank int) {
	switch rank {
	case 1:
		fwdLift(q, 1)
	case 2:
		for y := 0; y < 4; y++ { // rows
			fwdLift(q[y*4:], 1)
		}
		for x := 0; x < 4; x++ { // cols
			fwdLift(q[x:], 4)
		}
	case 3:
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				fwdLift(q[(z*4+y)*4:], 1)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				fwdLift(q[z*16+x:], 4)
			}
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				fwdLift(q[y*4+x:], 16)
			}
		}
	}
}

// invTransform inverts fwdTransform (dimensions in reverse order).
func invTransform(q []int32, rank int) {
	switch rank {
	case 1:
		invLift(q, 1)
	case 2:
		for x := 0; x < 4; x++ {
			invLift(q[x:], 4)
		}
		for y := 0; y < 4; y++ {
			invLift(q[y*4:], 1)
		}
	case 3:
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				invLift(q[y*4+x:], 16)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				invLift(q[z*16+x:], 4)
			}
		}
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				invLift(q[(z*4+y)*4:], 1)
			}
		}
	}
}
