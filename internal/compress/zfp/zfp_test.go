package zfp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/bitstream"
	"github.com/scidata/errprop/internal/compress"
)

func TestLiftRoundTripBounded(t *testing.T) {
	// The zfp lifting pair is deliberately not bit-exact: the forward
	// pass divides by 2 with floor to control range, so inv(fwd(x))
	// deviates from x by a few units — far below the quantization step.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		in := make([]int32, 4)
		for i := range in {
			in[i] = int32(rng.Intn(1<<26)) - (1 << 25)
		}
		p := append([]int32(nil), in...)
		fwdLift(p, 1)
		invLift(p, 1)
		for i := range in {
			if d := int64(p[i]) - int64(in[i]); d > 4 || d < -4 {
				t.Fatalf("lift roundtrip drift %d: %v -> %v", d, in, p)
			}
		}
	}
}

func TestTransformRoundTripBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for rank := 1; rank <= 3; rank++ {
		n := blockElems(rank)
		for trial := 0; trial < 100; trial++ {
			in := make([]int32, n)
			for i := range in {
				in[i] = int32(rng.Intn(1<<precisionBits(rank))) - 1<<(precisionBits(rank)-1)
			}
			q := append([]int32(nil), in...)
			fwdTransform(q, rank)
			invTransform(q, rank)
			for i := range in {
				lim := int64(8 << uint(rank)) // drift grows with passes
				if d := int64(q[i]) - int64(in[i]); d > lim || d < -lim {
					t.Fatalf("rank %d transform drift %d at %d", rank, d, i)
				}
			}
		}
	}
}

func TestTransformNoOverflow(t *testing.T) {
	// Extreme inputs at the fixed-point limits must not overflow int32
	// through any transform pass (the headroom argument for precisionBits).
	for rank := 1; rank <= 3; rank++ {
		n := blockElems(rank)
		lim := int32(1) << uint(precisionBits(rank)-1)
		patterns := [][]int32{
			make([]int32, n), make([]int32, n), make([]int32, n),
		}
		for i := 0; i < n; i++ {
			patterns[0][i] = lim - 1
			patterns[1][i] = -lim
			if i%2 == 0 {
				patterns[2][i] = lim - 1
			} else {
				patterns[2][i] = -lim
			}
		}
		for _, p := range patterns {
			q := append([]int32(nil), p...)
			fwdTransform(q, rank)
			invTransform(q, rank)
			for i := range p {
				lim := int64(8 << uint(rank))
				if d := int64(q[i]) - int64(p[i]); d > lim || d < -lim {
					t.Fatalf("rank %d overflow/drift %d on extreme pattern", rank, d)
				}
			}
		}
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	for _, x := range []int32{0, 1, -1, 100, -100, 1 << 30, -(1 << 30), math.MaxInt32, math.MinInt32} {
		if uint2int(int2uint(x)) != x {
			t.Fatalf("negabinary roundtrip failed for %d", x)
		}
	}
}

func TestNegabinaryTruncationBounded(t *testing.T) {
	// Zeroing the low b bits of the negabinary representation changes the
	// value by less than 2^(b+1), the property the cutoff logic leans on.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		x := int32(rng.Intn(1<<24)) - 1<<23
		b := uint(rng.Intn(16))
		mask := ^uint32(0) << b
		y := uint2int(int2uint(x) & mask)
		if d := math.Abs(float64(y) - float64(x)); d >= float64(int64(1)<<(b+1)) {
			t.Fatalf("truncation of %d at plane %d moved value by %v", x, b, d)
		}
	}
}

func TestSingleBlockRoundTrip(t *testing.T) {
	vals := []float64{3.25, 3.25, 3.25, 3.25}
	w := bitstream.NewWriter()
	encodeBlock(w, vals, 1, 1e-6)
	r := bitstream.NewReader(w.Bytes())
	got, err := decodeBlock(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(got[i]-vals[i]) > 1e-6 {
			t.Fatalf("block roundtrip error %v at %d (got %v)", math.Abs(got[i]-vals[i]), i, got[i])
		}
	}
}

func TestZeroBlock(t *testing.T) {
	w := bitstream.NewWriter()
	encodeBlock(w, make([]float64, 16), 2, 1e-6)
	if w.BitLen() != 1 {
		t.Fatalf("zero block should cost 1 bit, got %d", w.BitLen())
	}
	r := bitstream.NewReader(w.Bytes())
	got, err := decodeBlock(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 0 {
			t.Fatal("zero block should decode to zeros")
		}
	}
}

func TestRawFallback(t *testing.T) {
	// Tolerance far below fixed-point resolution forces the raw path.
	vals := []float64{1e10, 1, 1e-10, -3}
	w := bitstream.NewWriter()
	encodeBlock(w, vals, 1, 1e-30)
	r := bitstream.NewReader(w.Bytes())
	got, err := decodeBlock(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("raw fallback not bit-exact: %v vs %v", got[i], vals[i])
		}
	}
}

func TestCompressBoundRandomBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := Codec{}
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(100)
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * math.Exp2(float64(rng.Intn(10)-5))
		}
		tol := math.Exp2(-float64(rng.Intn(25)))
		payload, err := c.Compress(data, []int{n}, compress.AbsLinf, tol)
		if err != nil {
			t.Fatal(err)
		}
		recon, err := c.Decompress(payload, []int{n})
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if math.Abs(recon[i]-data[i]) > tol {
				t.Fatalf("trial %d: error %v > tol %v at %d", trial, math.Abs(recon[i]-data[i]), tol, i)
			}
		}
	}
}

func TestDecompressTruncated(t *testing.T) {
	c := Codec{}
	data := make([]float64, 64)
	for i := range data {
		data[i] = math.Sin(float64(i) / 5)
	}
	payload, err := c.Compress(data, []int{64}, compress.AbsLinf, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(payload[:2], []int{64}); err == nil {
		t.Fatal("truncated payload should error")
	}
}
