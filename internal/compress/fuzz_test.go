package compress_test

import (
	"encoding/binary"
	"math"
	"testing"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/huffman"
)

// FuzzDecodeContainer drives the container parser with arbitrary bytes:
// it must never panic or allocate absurdly, only return errors.
func FuzzDecodeContainer(f *testing.F) {
	data := smooth2D(8, 8, 1)
	for _, codec := range compress.Names() {
		blob, err := compress.Encode(codec, data, []int{8, 8}, compress.AbsLinf, 1e-3)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		// Seed the legacy v1 framing too, so the fuzzer explores the
		// backward-compat parse path as deeply as the v2 one.
		_, meta, err := compress.Decode(blob)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(compress.MarshalV1(*meta))
	}
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x52, 0x44, 0x53})
	f.Add([]byte{0x53, 0x44, 0x52, 0x32})
	f.Fuzz(func(t *testing.T, blob []byte) {
		out, _, err := compress.Decode(blob)
		if err == nil && len(out) > 1<<24 {
			t.Fatalf("suspiciously large decode: %d values", len(out))
		}
	})
}

// FuzzHuffmanDecode drives the entropy decoder with arbitrary streams.
func FuzzHuffmanDecode(f *testing.F) {
	f.Add(huffman.Encode([]uint32{1, 2, 3, 1, 1}))
	f.Add(huffman.Encode([]uint32{7}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, blob []byte) {
		out, err := huffman.Decode(blob)
		if err == nil && len(out) > 1<<24 {
			t.Fatalf("suspiciously large decode: %d symbols", len(out))
		}
	})
}

// FuzzSZRoundTrip checks the pointwise guarantee on fuzz-generated data.
func FuzzSZRoundTrip(f *testing.F) {
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed, 1e-4)
	f.Fuzz(func(t *testing.T, raw []byte, tol float64) {
		if len(raw) < 8 || math.IsNaN(tol) || math.IsInf(tol, 0) || tol <= 0 || tol > 1e10 {
			return
		}
		n := len(raw) / 8
		if n > 4096 {
			n = 4096
		}
		data := make([]float64, n)
		for i := 0; i < n; i++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				v = 0
			}
			data[i] = v
		}
		blob, err := compress.Encode("sz", data, []int{n}, compress.AbsLinf, tol)
		if err != nil {
			t.Fatal(err)
		}
		recon, _, err := compress.Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if math.Abs(recon[i]-data[i]) > tol {
				t.Fatalf("bound violated at %d: %v > %v", i, math.Abs(recon[i]-data[i]), tol)
			}
		}
	})
}
