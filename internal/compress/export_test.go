package compress

// Test-only exports: the external test package (compress_test) exercises
// the legacy v1 writer for backward-compat fixtures and the raw v2
// marshaller for valid-checksum-but-absurd-header regression tests.
var (
	MarshalV1 = marshalV1
	Marshal   = marshal
)
