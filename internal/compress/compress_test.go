package compress_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/scidata/errprop/internal/compress"
	_ "github.com/scidata/errprop/internal/compress/mgard"
	_ "github.com/scidata/errprop/internal/compress/sz"
	_ "github.com/scidata/errprop/internal/compress/zfp"
)

// smooth2D generates a smooth 2-D field (sum of low-frequency sinusoids),
// representative of the scientific data the codecs are designed for.
func smooth2D(rows, cols int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	p1, p2, p3 := rng.Float64()*6, rng.Float64()*6, rng.Float64()*2*math.Pi
	data := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x, y := float64(c)/float64(cols), float64(r)/float64(rows)
			data[r*cols+c] = math.Sin(p1*x+p3)*math.Cos(p2*y) + 0.3*math.Sin(7*x*y)
		}
	}
	return data
}

func noisy1D(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	v := 0.0
	for i := range data {
		v += rng.NormFloat64() * 0.1
		data[i] = v + rng.NormFloat64()*0.01
	}
	return data
}

func TestRegistry(t *testing.T) {
	names := compress.Names()
	want := []string{"mgard", "sz", "zfp"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for _, n := range want {
		if _, err := compress.ByName(n); err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
	}
	if _, err := compress.ByName("lz77"); err == nil {
		t.Fatal("ByName should reject unknown codec")
	}
}

func TestLinfBoundAllCodecs(t *testing.T) {
	data := smooth2D(37, 53, 1) // deliberately non-multiple-of-4 dims
	dims := []int{37, 53}
	for _, name := range compress.Names() {
		for _, tol := range []float64{1e-1, 1e-3, 1e-5, 1e-8} {
			blob, err := compress.Encode(name, data, dims, compress.AbsLinf, tol)
			if err != nil {
				t.Fatalf("%s tol=%v: %v", name, tol, err)
			}
			recon, meta, err := compress.Decode(blob)
			if err != nil {
				t.Fatalf("%s tol=%v decode: %v", name, tol, err)
			}
			if meta.CodecName != name || meta.Tol != tol {
				t.Fatalf("%s metadata roundtrip wrong: %+v", name, meta)
			}
			linf, _ := compress.MeasureError(data, recon)
			if linf > tol {
				t.Fatalf("%s tol=%v: achieved Linf %v exceeds bound", name, tol, linf)
			}
		}
	}
}

func TestRelLinfBound(t *testing.T) {
	data := smooth2D(20, 20, 2)
	for i := range data {
		data[i] = data[i]*50 + 100 // shift/scale so rel != abs
	}
	dims := []int{20, 20}
	min, max := data[0], data[0]
	for _, x := range data {
		min, max = math.Min(min, x), math.Max(max, x)
	}
	tol := 1e-4
	for _, name := range compress.Names() {
		blob, err := compress.Encode(name, data, dims, compress.RelLinf, tol)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		recon, _, err := compress.Decode(blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		linf, _ := compress.MeasureError(data, recon)
		if linf > tol*(max-min) {
			t.Fatalf("%s: rel Linf %v exceeds %v", name, linf, tol*(max-min))
		}
	}
}

func TestL2Bound(t *testing.T) {
	data := smooth2D(30, 40, 3)
	dims := []int{30, 40}
	for _, name := range []string{"sz", "mgard"} {
		for _, tol := range []float64{1e-1, 1e-3, 1e-6} {
			blob, err := compress.Encode(name, data, dims, compress.L2, tol)
			if err != nil {
				t.Fatalf("%s tol=%v: %v", name, tol, err)
			}
			recon, _, err := compress.Decode(blob)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			_, l2 := compress.MeasureError(data, recon)
			if l2 > tol {
				t.Fatalf("%s tol=%v: achieved L2 %v exceeds bound", name, tol, l2)
			}
		}
	}
}

func TestZFPRejectsL2(t *testing.T) {
	data := smooth2D(8, 8, 4)
	if _, err := compress.Encode("zfp", data, []int{8, 8}, compress.L2, 1e-3); err == nil {
		t.Fatal("zfp must reject L2 mode, as in the paper")
	}
	c, _ := compress.ByName("zfp")
	if c.SupportsMode(compress.L2) || c.SupportsMode(compress.RelL2) {
		t.Fatal("zfp SupportsMode(L2) should be false")
	}
	if !c.SupportsMode(compress.AbsLinf) || !c.SupportsMode(compress.RelLinf) {
		t.Fatal("zfp should support Linf modes")
	}
}

func TestSmoothDataCompresses(t *testing.T) {
	// At a loose tolerance, all codecs should beat 8x on smooth data
	// (the premise of the paper's I/O speedups).
	data := smooth2D(128, 128, 5)
	dims := []int{128, 128}
	for _, name := range compress.Names() {
		blob, err := compress.Encode(name, data, dims, compress.AbsLinf, 1e-3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ratio := compress.Ratio(len(data), blob)
		if ratio < 8 {
			t.Errorf("%s: ratio %.1f < 8 on smooth data at 1e-3", name, ratio)
		}
	}
}

func TestRatioMonotoneInTolerance(t *testing.T) {
	data := smooth2D(64, 64, 6)
	dims := []int{64, 64}
	for _, name := range compress.Names() {
		prev := math.Inf(1)
		for _, tol := range []float64{1e-2, 1e-4, 1e-6} {
			blob, err := compress.Encode(name, data, dims, compress.AbsLinf, tol)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			r := compress.Ratio(len(data), blob)
			if r > prev*1.05 { // small slack for entropy-coding noise
				t.Errorf("%s: ratio grew from %.2f to %.2f as tol tightened to %v", name, prev, r, tol)
			}
			prev = r
		}
	}
}

func TestRank1And3(t *testing.T) {
	for _, name := range compress.Names() {
		d1 := noisy1D(1000, 7)
		blob, err := compress.Encode(name, d1, []int{1000}, compress.AbsLinf, 1e-4)
		if err != nil {
			t.Fatalf("%s rank1: %v", name, err)
		}
		recon, _, err := compress.Decode(blob)
		if err != nil {
			t.Fatalf("%s rank1 decode: %v", name, err)
		}
		if linf, _ := compress.MeasureError(d1, recon); linf > 1e-4 {
			t.Fatalf("%s rank1: Linf %v", name, linf)
		}

		d3 := smooth2D(10, 110, 8) // reuse as 10x11x10 rank-3 volume
		blob, err = compress.Encode(name, d3, []int{10, 11, 10}, compress.AbsLinf, 1e-4)
		if err != nil {
			t.Fatalf("%s rank3: %v", name, err)
		}
		recon, _, err = compress.Decode(blob)
		if err != nil {
			t.Fatalf("%s rank3 decode: %v", name, err)
		}
		if linf, _ := compress.MeasureError(d3, recon); linf > 1e-4 {
			t.Fatalf("%s rank3: Linf %v", name, linf)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	cases := []struct {
		name string
		fn   func() error
	}{
		{"bad dims product", func() error {
			_, err := compress.Encode("sz", data, []int{3}, compress.AbsLinf, 1e-3)
			return err
		}},
		{"zero dim", func() error {
			_, err := compress.Encode("sz", data, []int{0, 4}, compress.AbsLinf, 1e-3)
			return err
		}},
		{"rank 4", func() error {
			_, err := compress.Encode("sz", data, []int{1, 1, 2, 2}, compress.AbsLinf, 1e-3)
			return err
		}},
		{"negative tol", func() error {
			_, err := compress.Encode("sz", data, []int{4}, compress.AbsLinf, -1)
			return err
		}},
		{"zero tol", func() error {
			_, err := compress.Encode("sz", data, []int{4}, compress.AbsLinf, 0)
			return err
		}},
		{"NaN tol", func() error {
			_, err := compress.Encode("sz", data, []int{4}, compress.AbsLinf, math.NaN())
			return err
		}},
	}
	for _, c := range cases {
		if c.fn() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	data := smooth2D(16, 16, 9)
	blob, err := compress.Encode("sz", data, []int{16, 16}, compress.AbsLinf, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := compress.Decode(nil); err == nil {
		t.Error("nil blob should error")
	}
	if _, _, err := compress.Decode(blob[:8]); err == nil {
		t.Error("truncated header should error")
	}
	garbage := append([]byte(nil), blob...)
	for i := 20; i < len(garbage); i++ {
		garbage[i] ^= 0xFF
	}
	if _, _, err := compress.Decode(garbage); err == nil {
		t.Log("note: corrupted payload decoded without error (lossy payloads may alias)")
	}
}

func TestConstantData(t *testing.T) {
	data := make([]float64, 256)
	for i := range data {
		data[i] = 3.25
	}
	for _, name := range compress.Names() {
		blob, err := compress.Encode(name, data, []int{16, 16}, compress.AbsLinf, 1e-6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		recon, _, err := compress.Decode(blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if linf, _ := compress.MeasureError(data, recon); linf > 1e-6 {
			t.Fatalf("%s constant: Linf %v", name, linf)
		}
		// Constant data compresses to almost nothing; the v2 container's
		// integrity framing (header + payload CRC32C, ~10 bytes) is a
		// visible fraction of such tiny blobs, so the floor sits just
		// below the old unchecksummed 10x.
		if r := compress.Ratio(len(data), blob); r < 9 {
			t.Errorf("%s: constant data ratio only %.1f", name, r)
		}
	}
}

func TestMeasureError(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2.5, 2}
	linf, l2 := compress.MeasureError(a, b)
	if linf != 1 {
		t.Fatalf("linf = %v", linf)
	}
	if math.Abs(l2-math.Sqrt(1.25)) > 1e-15 {
		t.Fatalf("l2 = %v", l2)
	}
}

func TestAbsTol(t *testing.T) {
	data := []float64{0, 2} // range 2, norm 2
	if got := compress.AbsTol(data, compress.AbsLinf, 0.5); got != 0.5 {
		t.Fatalf("AbsLinf: %v", got)
	}
	if got := compress.AbsTol(data, compress.RelLinf, 0.5); got != 1 {
		t.Fatalf("RelLinf: %v", got)
	}
	if got := compress.AbsTol(data, compress.L2, 0.5); got != 0.5 {
		t.Fatalf("L2: %v", got)
	}
	if got := compress.AbsTol(data, compress.RelL2, 0.5); got != 1 {
		t.Fatalf("RelL2: %v", got)
	}
}

func TestModeString(t *testing.T) {
	if compress.AbsLinf.String() != "abs-linf" || compress.L2.String() != "l2" {
		t.Fatal("mode names wrong")
	}
}

// Property: the Linf bound holds for random (rough) data too, where
// prediction fails and the fallback paths engage.
func TestLinfBoundRoughDataProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(200)
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * math.Exp2(float64(rng.Intn(12)-6))
		}
		tol := math.Exp2(float64(-rng.Intn(30))) // down to ~1e-9
		for _, name := range compress.Names() {
			blob, err := compress.Encode(name, data, []int{n}, compress.AbsLinf, tol)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			recon, _, err := compress.Decode(blob)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if linf, _ := compress.MeasureError(data, recon); linf > tol {
				t.Fatalf("%s trial %d: Linf %v > tol %v on rough data", name, trial, linf, tol)
			}
		}
	}
}

func BenchmarkCompress(b *testing.B) {
	data := smooth2D(256, 256, 1)
	dims := []int{256, 256}
	for _, name := range compress.Names() {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data) * 8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := compress.Encode(name, data, dims, compress.AbsLinf, 1e-4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecompress(b *testing.B) {
	data := smooth2D(256, 256, 1)
	dims := []int{256, 256}
	for _, name := range compress.Names() {
		blob, err := compress.Encode(name, data, dims, compress.AbsLinf, 1e-4)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data) * 8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := compress.Decode(blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
