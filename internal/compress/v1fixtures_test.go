package compress

// Backward-compat pinning for the legacy v1 container: the fixtures under
// testdata/v1 were written by the unchecksummed v1 framing and must keep
// decoding bit-for-bit forever, whatever the current container version
// is. Regenerate (after an intentional codec change) with:
//
//	ERRPROP_UPDATE_FIXTURES=1 go test ./internal/compress -run TestV1Fixtures

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// fixtureField is the deterministic 24x24 field the v1 fixtures encode.
func fixtureField() ([]float64, []int) {
	const h, w = 24, 24
	data := make([]float64, h*w)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			x, y := float64(i)/h, float64(j)/w
			data[i*w+j] = math.Sin(5*x)*math.Cos(7*y) + 0.25*math.Sin(13*x*y)
		}
	}
	return data, []int{h, w}
}

const fixtureTol = 1e-3

func fixturePath(codec string) string {
	return filepath.Join("testdata", "v1", codec+".blob")
}

func TestV1FixturesStillDecode(t *testing.T) {
	data, dims := fixtureField()
	if os.Getenv("ERRPROP_UPDATE_FIXTURES") != "" {
		if err := os.MkdirAll(filepath.Join("testdata", "v1"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, codec := range Names() {
			c, err := ByName(codec)
			if err != nil {
				t.Fatal(err)
			}
			payload, err := c.Compress(data, dims, AbsLinf, fixtureTol)
			if err != nil {
				t.Fatal(err)
			}
			blob := marshalV1(Blob{CodecName: codec, Mode: AbsLinf, Tol: fixtureTol, Dims: dims, Payload: payload})
			if err := os.WriteFile(fixturePath(codec), blob, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", fixturePath(codec), len(blob))
		}
	}

	for _, codec := range Names() {
		blob, err := os.ReadFile(fixturePath(codec))
		if err != nil {
			t.Fatalf("missing v1 fixture for %s (regenerate with ERRPROP_UPDATE_FIXTURES=1): %v", codec, err)
		}
		recon, meta, err := Decode(blob)
		if err != nil {
			t.Fatalf("%s: pinned v1 blob no longer decodes: %v", codec, err)
		}
		if meta.Version != 1 {
			t.Errorf("%s: v1 fixture reported container version %d", codec, meta.Version)
		}
		if meta.CodecName != codec || meta.Tol != fixtureTol || len(meta.Dims) != 2 ||
			meta.Dims[0] != dims[0] || meta.Dims[1] != dims[1] {
			t.Errorf("%s: v1 metadata drifted: %+v", codec, meta)
		}
		if len(recon) != len(data) {
			t.Fatalf("%s: decoded %d values, want %d", codec, len(recon), len(data))
		}
		linf, _ := MeasureError(data, recon)
		if linf > fixtureTol {
			t.Errorf("%s: pinned blob reconstruction error %v > tol %v", codec, linf, fixtureTol)
		}
	}
}
