package compress_test

import (
	"bytes"
	"errors"
	"testing"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/integrity"
)

func encodeV2(t *testing.T) ([]float64, []byte) {
	t.Helper()
	data := smooth2D(16, 16, 5)
	blob, err := compress.Encode("sz", data, []int{16, 16}, compress.AbsLinf, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	return data, blob
}

func TestContainerV2RoundTrip(t *testing.T) {
	data, blob := encodeV2(t)
	recon, meta, err := compress.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 2 {
		t.Fatalf("fresh Encode produced container version %d, want 2", meta.Version)
	}
	if got := integrity.Checksum(meta.Payload); got != meta.PayloadChecksum {
		t.Fatalf("PayloadChecksum %08x != recomputed %08x", meta.PayloadChecksum, got)
	}
	linf, _ := compress.MeasureError(data, recon)
	if linf > 1e-4 {
		t.Fatalf("round-trip error %v", linf)
	}
}

// TestContainerV2DetectsEveryByteFlip is the core integrity property: any
// single corrupted byte anywhere in a v2 container — magic, header
// length, header, checksums, payload — must surface as a typed integrity
// error, never as a silently different decode.
func TestContainerV2DetectsEveryByteFlip(t *testing.T) {
	_, blob := encodeV2(t)
	_, ref, err := compress.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x41
		recon, meta, err := compress.Decode(mut)
		if err != nil {
			if !integrity.IsIntegrityError(err) {
				t.Fatalf("byte %d flip: error is not typed as integrity failure: %v", i, err)
			}
			continue
		}
		// No error is only acceptable if the decode is bit-identical to
		// the reference (cannot happen for a byte flip under CRC32C, but
		// state the trichotomy explicitly).
		if meta.Version != ref.Version || !bytes.Equal(meta.Payload, ref.Payload) {
			t.Fatalf("byte %d flip: silent corruption — decoded %d values without error", i, len(recon))
		}
	}
}

func TestContainerV2TruncationTyped(t *testing.T) {
	_, blob := encodeV2(t)
	for _, cut := range []int{0, 3, 5, 10, len(blob) / 2, len(blob) - 1} {
		_, _, err := compress.Decode(blob[:cut])
		if err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
		if !integrity.IsIntegrityError(err) {
			t.Fatalf("truncation to %d bytes: untyped error %v", cut, err)
		}
	}
	// A clean payload cut (header intact) must specifically read as
	// truncation, not generic corruption.
	_, _, err := compress.Decode(blob[:len(blob)-1])
	if !errors.Is(err, compress.ErrTruncated) {
		t.Fatalf("payload cut: got %v, want ErrTruncated", err)
	}
}

// TestContainerV2AbsurdDimsWithValidChecksum pins the PR 1 overflow
// guards on the v2 path: a container whose checksums are perfectly valid
// but whose header declares absurd dims (a *written-wrong* container, not
// a damaged one) must still be rejected before any allocation is sized
// from the dims product.
func TestContainerV2AbsurdDimsWithValidChecksum(t *testing.T) {
	cases := []struct {
		name string
		dims []int
	}{
		{"oversized single dim", []int{1 << 40}},
		{"overflowing product", []int{1 << 20, 1 << 20, 1 << 20}},
		{"negative dim", []int{-4}},
		{"zero dim", []int{0, 8}},
	}
	for _, c := range cases {
		blob := compress.Marshal(compress.Blob{
			CodecName: "sz", Mode: compress.AbsLinf, Tol: 1e-3,
			Dims: c.dims, Payload: []byte{1, 2, 3, 4},
		})
		_, _, err := compress.Decode(blob)
		if err == nil {
			t.Fatalf("%s: checksummed absurd dims %v accepted", c.name, c.dims)
		}
		if !errors.Is(err, compress.ErrCorrupt) {
			t.Fatalf("%s: got %v, want ErrCorrupt", c.name, err)
		}
	}
}

func TestContainerV1BlobsRemainReadable(t *testing.T) {
	data := smooth2D(12, 12, 3)
	c, err := compress.ByName("zfp")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := c.Compress(data, []int{12, 12}, compress.AbsLinf, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	v1 := compress.MarshalV1(compress.Blob{CodecName: "zfp", Mode: compress.AbsLinf,
		Tol: 1e-3, Dims: []int{12, 12}, Payload: payload})
	recon, meta, err := compress.Decode(v1)
	if err != nil {
		t.Fatalf("v1 blob no longer decodes: %v", err)
	}
	if meta.Version != 1 {
		t.Fatalf("v1 blob reported version %d", meta.Version)
	}
	if meta.PayloadChecksum != integrity.Checksum(payload) {
		t.Fatal("v1 decode did not back-fill the payload checksum")
	}
	linf, _ := compress.MeasureError(data, recon)
	if linf > 1e-3 {
		t.Fatalf("v1 round-trip error %v", linf)
	}
}
