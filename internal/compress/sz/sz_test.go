package sz

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scidata/errprop/internal/compress"
)

func TestLorenzo1D(t *testing.T) {
	dec := []float64{5, 7, 0}
	st := newStrides([]int{3})
	if p := lorenzo(dec, st, 0); p != 0 {
		t.Fatalf("boundary pred = %v", p)
	}
	if p := lorenzo(dec, st, 2); p != 7 {
		t.Fatalf("pred = %v, want 7", p)
	}
}

func TestLorenzo2D(t *testing.T) {
	// 2x2 grid: [a b; c ?] -> pred(?) = b + c - a.
	dec := []float64{1, 2, 3, 0}
	st := newStrides([]int{2, 2})
	if p := lorenzo(dec, st, 3); p != 2+3-1 {
		t.Fatalf("2D Lorenzo pred = %v, want 4", p)
	}
	// Top row uses only the left neighbour.
	if p := lorenzo(dec, st, 1); p != 1 {
		t.Fatalf("top-row pred = %v, want 1", p)
	}
	// Left column uses only the upper neighbour.
	if p := lorenzo(dec, st, 2); p != 1 {
		t.Fatalf("left-col pred = %v, want 1", p)
	}
}

func TestLorenzo3D(t *testing.T) {
	// On a linear ramp the order-1 3-D Lorenzo predictor is exact.
	dims := []int{3, 3, 3}
	st := newStrides(dims)
	dec := make([]float64, 27)
	f := func(z, y, x int) float64 { return float64(2*z + 3*y + 5*x) }
	for z := 0; z < 3; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				dec[(z*3+y)*3+x] = f(z, y, x)
			}
		}
	}
	i := (2*3+2)*3 + 2 // interior-most point
	if p := lorenzo(dec, st, i); math.Abs(p-f(2, 2, 2)) > 1e-12 {
		t.Fatalf("3D Lorenzo on ramp = %v, want %v", p, f(2, 2, 2))
	}
}

func TestUnpredictableFallback(t *testing.T) {
	// Data with huge jumps relative to a tiny tolerance exercises the
	// verbatim path; the bound must still hold exactly.
	c := Codec{}
	data := []float64{0, 1e18, -1e18, 3, 1e-18, 7}
	tol := 1e-20
	payload, err := c.Compress(data, []int{6}, compress.AbsLinf, tol)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := c.Decompress(payload, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(recon[i]-data[i]) > tol {
			t.Fatalf("error %v at %d", math.Abs(recon[i]-data[i]), i)
		}
	}
}

func TestRampCompressesExtremely(t *testing.T) {
	// A perfect ramp is fully predicted: every residual is one code.
	data := make([]float64, 10000)
	for i := range data {
		data[i] = float64(i) * 0.001
	}
	c := Codec{}
	payload, err := c.Compress(data, []int{10000}, compress.AbsLinf, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(data)*8) / float64(len(payload)); ratio < 100 {
		t.Fatalf("ramp ratio only %.1f", ratio)
	}
}

func TestPointwiseBoundL2Mode(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = math.Sin(float64(i) / 7)
	}
	eb := pointwiseBound(data, compress.L2, 0.5)
	if math.Abs(eb-0.5/10) > 1e-12 {
		t.Fatalf("L2 pointwise bound = %v, want 0.05", eb)
	}
}

func TestDecompressShapeMismatch(t *testing.T) {
	c := Codec{}
	data := make([]float64, 64)
	payload, err := c.Compress(data, []int{64}, compress.AbsLinf, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(payload, []int{32}); err == nil {
		t.Fatal("mismatched dims should error")
	}
}

func TestCodesStayInAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := Codec{}
	data := make([]float64, 512)
	for i := range data {
		data[i] = rng.NormFloat64() * 1000
	}
	payload, err := c.Compress(data, []int{512}, compress.AbsLinf, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := c.Decompress(payload, []int{512})
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(recon[i]-data[i]) > 1e-9 {
			t.Fatalf("tight-bound error %v", math.Abs(recon[i]-data[i]))
		}
	}
}
