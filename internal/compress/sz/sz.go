// Package sz implements an SZ-style error-bounded lossy compressor:
// a Lorenzo predictor over the decoded neighbourhood, linear-scale
// quantization of the prediction residual with a guaranteed pointwise
// bound, Huffman coding of the quantization codes and a final flate pass.
// This mirrors the prediction+quantization design of the SZ family the
// paper uses for its input-reduction experiments.
package sz

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/huffman"
)

func init() { compress.Register(Codec{}) }

// Codec is the SZ-style compressor. The zero value is ready to use.
type Codec struct{}

// Name implements compress.Codec.
func (Codec) Name() string { return "sz" }

// SupportsMode implements compress.Codec: SZ honours every mode (L2 modes
// are enforced through a pointwise bound of tol/sqrt(n)).
func (Codec) SupportsMode(compress.Mode) bool { return true }

// codeBits is the width of the quantization-code alphabet (2^16 bins,
// matching classic SZ); residuals outside the representable range fall
// back to exact storage.
const (
	codeRange  = 1 << 16
	codeCenter = codeRange / 2 // symbol for zero residual
	unpredSym  = 0             // reserved symbol: value stored verbatim
)

// Compress implements compress.Codec.
//
//errprop:deterministic the payload is a pure function of (data, dims, mode, tol)
func (c Codec) Compress(data []float64, dims []int, mode compress.Mode, tol float64) ([]byte, error) {
	eb := pointwiseBound(data, mode, tol)
	if eb <= 0 {
		return nil, fmt.Errorf("sz: tolerance %v resolves to non-positive bound", tol)
	}
	n := len(data)
	codes := make([]uint32, n)
	var unpred []float64
	decoded := make([]float64, n)
	st := newStrides(dims)
	twoEB := 2 * eb
	for i := 0; i < n; i++ {
		pred := lorenzo(decoded, st, i)
		r := (data[i] - pred) / twoEB
		q := math.Round(r)
		if math.Abs(q) < codeCenter-1 {
			rec := pred + q*twoEB
			if math.Abs(rec-data[i]) <= eb {
				codes[i] = uint32(int64(q) + codeCenter)
				decoded[i] = rec
				continue
			}
		}
		codes[i] = unpredSym
		unpred = append(unpred, data[i])
		decoded[i] = data[i]
	}

	var raw bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], math.Float64bits(eb))
	raw.Write(hdr[:])
	binary.Write(&raw, binary.LittleEndian, uint64(len(unpred)))
	for _, u := range unpred {
		binary.Write(&raw, binary.LittleEndian, math.Float64bits(u))
	}
	hblob := huffman.Encode(codes)
	binary.Write(&raw, binary.LittleEndian, uint64(len(hblob)))
	raw.Write(hblob)

	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(raw.Bytes()); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Decompress implements compress.Codec.
func (c Codec) Decompress(payload []byte, dims []int) ([]float64, error) {
	fr := flate.NewReader(bytes.NewReader(payload))
	raw, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("sz: %w: %v", compress.ErrCorrupt, err)
	}
	if len(raw) < 16 {
		return nil, compress.ErrCorrupt
	}
	eb := math.Float64frombits(binary.LittleEndian.Uint64(raw))
	p := 8
	nUnpred := int(binary.LittleEndian.Uint64(raw[p:]))
	p += 8
	// Subtract instead of multiplying so a huge untrusted count cannot
	// overflow the bounds check (8 bytes stay reserved for hlen).
	if nUnpred < 0 || len(raw)-p < 8 || nUnpred > (len(raw)-p-8)/8 {
		return nil, compress.ErrCorrupt
	}
	unpred := make([]float64, nUnpred)
	for i := range unpred {
		unpred[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[p:]))
		p += 8
	}
	hlen := int(binary.LittleEndian.Uint64(raw[p:]))
	p += 8
	if hlen < 0 || hlen > len(raw)-p {
		return nil, compress.ErrCorrupt
	}
	codes, err := huffman.Decode(raw[p : p+hlen])
	if err != nil {
		return nil, fmt.Errorf("sz: %w: %v", compress.ErrCorrupt, err)
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	if len(codes) != n {
		return nil, compress.ErrCorrupt
	}
	decoded := make([]float64, n)
	st := newStrides(dims)
	twoEB := 2 * eb
	ui := 0
	for i := 0; i < n; i++ {
		if codes[i] == unpredSym {
			if ui >= len(unpred) {
				return nil, compress.ErrCorrupt
			}
			decoded[i] = unpred[ui]
			ui++
			continue
		}
		pred := lorenzo(decoded, st, i)
		decoded[i] = pred + float64(int64(codes[i])-codeCenter)*twoEB
	}
	return decoded, nil
}

// pointwiseBound converts a (mode, tol) pair into the pointwise absolute
// bound SZ enforces.
func pointwiseBound(data []float64, mode compress.Mode, tol float64) float64 {
	abs := compress.AbsTol(data, mode, tol)
	switch mode {
	case compress.L2, compress.RelL2:
		// ||e||_2 <= sqrt(n) * max|e_i| : a pointwise bound of abs/sqrt(n)
		// guarantees the vector bound.
		return abs / math.Sqrt(float64(len(data)))
	default:
		return abs
	}
}

// strides precomputes index arithmetic for the Lorenzo predictor.
type strides struct {
	rank int
	d    [3]int // sizes, innermost last
	s    [3]int // element strides
}

func newStrides(dims []int) strides {
	var st strides
	st.rank = len(dims)
	for i, d := range dims {
		st.d[i] = d
	}
	switch st.rank {
	case 1:
		st.s[0] = 1
	case 2:
		st.s[0], st.s[1] = dims[1], 1
	case 3:
		st.s[0], st.s[1], st.s[2] = dims[1]*dims[2], dims[2], 1
	}
	return st
}

// lorenzo predicts element i from already-decoded neighbours (boundary
// taps are zero), using the order-1 Lorenzo predictor of the SZ family.
func lorenzo(dec []float64, st strides, i int) float64 {
	switch st.rank {
	case 1:
		if i == 0 {
			return 0
		}
		return dec[i-1]
	case 2:
		r, c := i/st.s[0], i%st.s[0]
		var a, b, ab float64
		if r > 0 {
			a = dec[i-st.s[0]]
		}
		if c > 0 {
			b = dec[i-1]
		}
		if r > 0 && c > 0 {
			ab = dec[i-st.s[0]-1]
		}
		return a + b - ab
	default: // rank 3
		z := i / st.s[0]
		rem := i % st.s[0]
		y := rem / st.s[1]
		x := rem % st.s[1]
		get := func(dz, dy, dx int) float64 {
			if z-dz < 0 || y-dy < 0 || x-dx < 0 {
				return 0
			}
			return dec[i-dz*st.s[0]-dy*st.s[1]-dx]
		}
		return get(1, 0, 0) + get(0, 1, 0) + get(0, 0, 1) -
			get(1, 1, 0) - get(1, 0, 1) - get(0, 1, 1) + get(1, 1, 1)
	}
}
