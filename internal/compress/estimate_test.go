package compress_test

import (
	"math"
	"testing"

	"github.com/scidata/errprop/internal/compress"
)

func TestEstimateRatioCloseToTrue(t *testing.T) {
	data := smooth2D(128, 128, 11)
	dims := []int{128, 128}
	for _, codec := range compress.Names() {
		blob, err := compress.Encode(codec, data, dims, compress.AbsLinf, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		truth := compress.Ratio(len(data), blob)
		est, err := compress.EstimateRatio(codec, data, dims, compress.AbsLinf, 1e-4, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		if est < truth/2 || est > truth*2 {
			t.Fatalf("%s: estimate %.1f vs true %.1f (off by >2x)", codec, est, truth)
		}
	}
}

func TestEstimateRatioRelModes(t *testing.T) {
	data := smooth2D(64, 64, 12)
	for i := range data {
		data[i] = data[i]*10 + 100
	}
	dims := []int{64, 64}
	// Relative modes must resolve against full-data stats; the call must
	// succeed and give a plausible ratio.
	est, err := compress.EstimateRatio("sz", data, dims, compress.RelLinf, 1e-4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if est < 1 {
		t.Fatalf("rel-mode estimate %v < 1", est)
	}
	estL2, err := compress.EstimateRatio("sz", data, dims, compress.L2, 1e-2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if estL2 < 1 {
		t.Fatalf("L2-mode estimate %v < 1", estL2)
	}
}

func TestEstimateRatioValidation(t *testing.T) {
	data := make([]float64, 16)
	if _, err := compress.EstimateRatio("sz", data, []int{16}, compress.AbsLinf, 1e-3, 0); err == nil {
		t.Fatal("zero sample fraction should error")
	}
	if _, err := compress.EstimateRatio("sz", data, []int{16}, compress.AbsLinf, 1e-3, 1.5); err == nil {
		t.Fatal("over-unit sample fraction should error")
	}
	if _, err := compress.EstimateRatio("sz", data, []int{15}, compress.AbsLinf, 1e-3, 0.5); err == nil {
		t.Fatal("bad dims should error")
	}
}

func TestEstimateStoredBytes(t *testing.T) {
	data := smooth2D(64, 64, 13)
	stored, err := compress.EstimateStoredBytes("zfp", data, []int{64, 64}, compress.AbsLinf, 1e-3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if stored <= 0 || stored >= int64(len(data)*8) {
		t.Fatalf("stored estimate %d out of range", stored)
	}
}

func TestEstimateFullSampleIsExact(t *testing.T) {
	data := smooth2D(32, 32, 14)
	dims := []int{32, 32}
	blob, err := compress.Encode("sz", data, dims, compress.AbsLinf, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	truth := compress.Ratio(len(data), blob)
	est, err := compress.EstimateRatio("sz", data, dims, compress.AbsLinf, 1e-4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-truth) > 1e-12 {
		t.Fatalf("full-sample estimate %v != truth %v", est, truth)
	}
}
