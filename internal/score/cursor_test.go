package score

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func sampleCursor() *Cursor {
	return &Cursor{
		ManifestChecksum: 0xDEADBEEF,
		Committed:        7,
		ResultBytes:      1234,
		Agg: &Aggregate{
			Chunks: 7, Skipped: 1, Samples: 192, Elems: 1152, OverBudget: 2,
			StoredBytes: 900, RawBytes: 9216,
			SimRead: 3 * time.Millisecond, SimDecode: 5 * time.Millisecond, SimExec: 7 * time.Millisecond,
			Retries:       4,
			BoundWeighted: 0.125, MaxBound: 0.5,
			Sum: []float64{1.5, -2.25}, Min: []float64{-3, -4}, Max: []float64{5, 6},
		},
	}
}

func TestCursorRoundTrip(t *testing.T) {
	c := sampleCursor()
	raw, err := EncodeCursor(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCursor(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("cursor round trip differs:\n got %+v %+v\nwant %+v %+v", got, got.Agg, c, c.Agg)
	}
}

func TestCursorDecodeTypedErrors(t *testing.T) {
	raw, err := EncodeCursor(sampleCursor())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"short", func(b []byte) []byte { return b[:5] }, ErrTruncated},
		{"bad-magic", func(b []byte) []byte { b[2] ^= 0xFF; return b }, ErrCorrupt},
		{"truncated-body", func(b []byte) []byte { return b[:len(b)-8] }, ErrTruncated},
		{"flipped-body", func(b []byte) []byte { b[len(b)-2] ^= 0x40; return b }, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mut(append([]byte(nil), raw...))
			if _, err := DecodeCursor(mut); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}

	// A structurally inconsistent cursor inside a valid checksum means
	// it was written wrong: committed must equal the folded chunk count.
	c := sampleCursor()
	c.Committed = 9
	mut, err := EncodeCursor(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCursor(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("inconsistent counters: got %v, want ErrCorrupt", err)
	}
}

func TestLoadLatestCursorSkipsDamaged(t *testing.T) {
	dir := t.TempDir()
	old := sampleCursor()
	old.Committed, old.Agg.Chunks = 3, 3
	if _, err := SaveCursor(dir, old); err != nil {
		t.Fatal(err)
	}
	newer := sampleCursor()
	if _, err := SaveCursor(dir, newer); err != nil {
		t.Fatal(err)
	}
	// Damage the newest file in place: LoadLatestCursor must fall back
	// to the older intact one and name the damaged file.
	newest := filepath.Join(dir, cursorFileName(newer.Committed))
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	got, path, err := LoadLatestCursor(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Committed != 3 || filepath.Base(path) != cursorFileName(3) {
		t.Fatalf("loaded %d from %s, want committed 3", got.Committed, path)
	}

	// All damaged -> wrapped os.ErrNotExist naming the casualties.
	older := filepath.Join(dir, cursorFileName(3))
	if err := os.WriteFile(older, raw[:7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadLatestCursor(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("all damaged: got %v, want os.ErrNotExist", err)
	}

	// Empty / missing dir.
	if _, _, err := LoadLatestCursor(t.TempDir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("empty dir: got %v, want os.ErrNotExist", err)
	}
}

func TestPruneCursors(t *testing.T) {
	dir := t.TempDir()
	for i := int64(1); i <= 5; i++ {
		c := sampleCursor()
		c.Committed, c.Agg.Chunks = i, i
		if _, err := SaveCursor(dir, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := PruneCursors(dir, 2); err != nil {
		t.Fatal(err)
	}
	paths, err := ListCursors(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("kept %d cursors, want 2", len(paths))
	}
	if filepath.Base(paths[0]) != cursorFileName(5) || filepath.Base(paths[1]) != cursorFileName(4) {
		t.Fatalf("kept %v, want newest two", paths)
	}
	// keep <= 0 keeps everything.
	if err := PruneCursors(dir, 0); err != nil {
		t.Fatal(err)
	}
	if paths, _ = ListCursors(dir); len(paths) != 2 {
		t.Fatalf("prune with keep=0 removed files: %v", paths)
	}
}
