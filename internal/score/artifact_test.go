package score

import (
	"testing"

	"github.com/scidata/errprop/internal/artifact"
	"github.com/scidata/errprop/internal/numfmt"
)

// TestScoreArtifactMatchesSpecPath: scoring cold-started from a
// compiled artifact — shipped quantized weights, shipped program,
// shipped error-flow graph with build-time step tables — is
// bit-identical to scoring the original network at the same format,
// per chunk and in aggregate, across worker counts and shardings.
func TestScoreArtifactMatchesSpecPath(t *testing.T) {
	const features = 6
	net := testNet(t, features)
	dir, man := writeTestDataset(t, "sz", 1e-3, features, 200, 32)
	for _, f := range []numfmt.Format{numfmt.FP32, numfmt.INT8, numfmt.BF16} {
		t.Run(f.String(), func(t *testing.T) {
			art, err := artifact.Build(net, f)
			if err != nil {
				t.Fatal(err)
			}
			// Round-trip through the wire format first: the scored artifact
			// is the decoded one, exactly what a cold-starting process sees.
			raw, err := art.Encode()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := artifact.Decode(raw)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Format: f, QoIBudget: 10, Workers: 2, Batch: 16, Dir: dir}
			ref, err := Score(net, man, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The artifact's baked-in format wins; hand ScoreArtifact a
			// contradictory cfg.Format to prove it is ignored.
			acfg := cfg
			acfg.Format = numfmt.FP16
			got, err := ScoreArtifact(dec, man, acfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, got, ref, "artifact vs spec")
			if got.QuantBound != ref.QuantBound || got.InputTolL2 != ref.InputTolL2 {
				t.Fatalf("certified accounting differs: bound %v vs %v, tol %v vs %v",
					got.QuantBound, ref.QuantBound, got.InputTolL2, ref.InputTolL2)
			}
			// Worker count and engine sharding stay wall-clock-only knobs on
			// the artifact path too.
			sharded := acfg
			sharded.Workers, sharded.EngineShards = 5, 3
			again, err := ScoreArtifact(dec, man, sharded)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, again, ref, "sharded artifact vs spec")
		})
	}

	// A manifest the artifact's model cannot read is a typed refusal.
	art, err := artifact.Build(testNet(t, features+1), numfmt.FP32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScoreArtifact(art, man, Config{Dir: dir}); err == nil {
		t.Fatal("dimension-mismatched artifact scored")
	}
}
