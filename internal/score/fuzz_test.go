package score

import (
	"testing"

	"github.com/scidata/errprop/internal/compress"
)

// FuzzDecodeManifest hammers the manifest decoder with arbitrary bytes
// and mutations of a valid encoding: it must never panic or over-allocate,
// and everything it accepts must re-encode to the exact same bytes
// (decode is a bijection onto valid encodings — no silent normalization).
func FuzzDecodeManifest(f *testing.F) {
	man := &Manifest{
		Codec: "sz", Mode: compress.AbsLinf, Tol: 1e-3, Features: 6,
		Chunks: []Chunk{
			{File: "chunk-000000.blob", Bytes: 512, Checksum: 0xAB12CD34, Samples: 32, AchievedLinf: 9e-4, AchievedL2: 4e-4},
			{File: "chunk-000001.blob", Bytes: 17, Checksum: 1, Samples: 1},
		},
	}
	raw, err := man.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte(manifestMagic))
	f.Add([]byte{})
	for i := 0; i < len(raw); i += 7 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x1D
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		re, err := m.Encode()
		if err != nil {
			t.Fatalf("accepted manifest fails to re-encode: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("decode/encode not a bijection:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeCursor does the same for the progress cursor: arbitrary
// bytes never panic, and accepted cursors round-trip byte-exactly.
func FuzzDecodeCursor(f *testing.F) {
	c := sampleCursor()
	raw, err := EncodeCursor(c)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)-4])
	f.Add([]byte(cursorMagic))
	for i := 0; i < len(raw); i += 5 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x81
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		cur, err := DecodeCursor(data)
		if err != nil {
			return
		}
		re, err := EncodeCursor(cur)
		if err != nil {
			t.Fatalf("accepted cursor fails to re-encode: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("decode/encode not a bijection:\n in  %x\n out %x", data, re)
		}
	})
}
