// Package score is the dataset-scale offline scoring subsystem: it
// streams an ordered manifest of checksummed compressed chunks through a
// bounded-memory pipeline — simulated-storage read billing, real
// decompression, compiled-engine forward passes, and a deterministic QoI
// aggregation — and emits a per-chunk result carrying a *certified*
// error bound: the chunk's achieved codec error (measured at dataset
// write time) fed through Inequality (3) together with the model's
// quantization bound.
//
// Three invariants the package is built around:
//
//   - Determinism: the per-chunk results and the final aggregate are a
//     pure function of (manifest, chunk bytes, network, config knobs
//     that name themselves as semantic). Worker count and goroutine
//     schedule never change a single output bit: chunks reduce in fixed
//     chunk-index order through a commit window.
//   - Crash safety: progress is a chunk-granular cursor checkpointed
//     atomically (temp file + fsync + rename, like internal/checkpoint).
//     A run killed at any instant resumes bit-identically — same
//     aggregate, same per-chunk outputs and bounds — because the cursor
//     stores the running aggregate and the byte offset of the durable
//     result log, which resume truncates back to before continuing.
//   - Detect-or-bound: a damaged manifest, chunk, or cursor decodes to a
//     typed integrity error, never to silently wrong numbers. Corrupt
//     chunks are either fatal or skipped-with-report, by configuration.
package score

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/integrity"
)

// Typed sentinels, shared with the rest of the fault path.
var (
	// ErrCorrupt aliases integrity.ErrCorrupt.
	ErrCorrupt = integrity.ErrCorrupt
	// ErrTruncated aliases integrity.ErrTruncated.
	ErrTruncated = integrity.ErrTruncated
)

// Chunk is one entry of a Manifest: a compressed blob file plus the
// integrity and certified-error metadata the scorer needs to admit it.
type Chunk struct {
	// File is the chunk's file name, relative to the manifest directory.
	// Decoded names never contain path separators (the decoder rejects
	// them), so a corrupt manifest cannot point the scorer outside its
	// dataset directory.
	File string
	// Bytes is the exact stored size of the chunk file.
	Bytes int64
	// Checksum is the CRC32C of the chunk file's bytes. It covers the
	// whole container (which carries its own internal checksums), so the
	// scorer detects a swapped or re-encoded chunk, not just bit rot.
	Checksum uint32
	// Samples is the number of data samples (batch columns) in the chunk.
	Samples int
	// AchievedLinf is the chunk's achieved pointwise reconstruction
	// error max_i |x_i - x~_i|, measured against the original data when
	// the dataset was written. This — not the requested tolerance — is
	// what feeds the certified per-chunk bound.
	AchievedLinf float64
	// AchievedL2 is the whole-chunk L2 reconstruction error, recorded
	// for reporting alongside the pointwise bound.
	AchievedL2 float64
}

// Manifest is the ordered chunk index of a scored dataset.
type Manifest struct {
	// Codec is the compress codec every chunk was encoded with.
	Codec string
	// Mode and Tol are the error mode and tolerance the dataset was
	// compressed under (the *requested* bound; each chunk additionally
	// records its achieved error).
	Mode compress.Mode
	Tol  float64
	// Features is the per-sample feature count (the network input
	// dimension the dataset was laid out for); every chunk stores a
	// Features x Samples feature-major block.
	Features int
	// Chunks lists the dataset's chunks in scoring order.
	Chunks []Chunk
}

const (
	manifestMagic = "ERRPROPSM1"
	// ManifestName is the canonical manifest file name inside a dataset
	// directory.
	ManifestName = "MANIFEST"
	// maxManifestBody caps the declared body length (256 MiB is ~1.6M
	// chunks) so a corrupt frame cannot size an absurd allocation.
	maxManifestBody = 1 << 28
	// maxChunks caps the declared chunk count.
	maxChunks = 1 << 24
	// maxChunkSamples caps one chunk's declared sample count.
	maxChunkSamples = 1 << 28
	// maxFeatures caps the declared feature dimension.
	maxFeatures = 1 << 24
)

// TotalSamples sums the sample counts of all chunks.
func (m *Manifest) TotalSamples() int64 {
	var n int64
	for _, c := range m.Chunks {
		n += int64(c.Samples)
	}
	return n
}

// Encode serializes the manifest into its checksummed frame:
//
//	magic | bodyLen(8) | bodyCRC(4) | body
//
// so damaged manifest bytes decode to a typed integrity error, never to
// a silently different chunk list.
//
//errprop:deterministic the frame is a pure function of the manifest
func (m *Manifest) Encode() ([]byte, error) {
	if len(m.Codec) == 0 || len(m.Codec) > 255 {
		return nil, fmt.Errorf("score: manifest codec name length %d not in 1..255", len(m.Codec))
	}
	if m.Features <= 0 || m.Features > maxFeatures {
		return nil, fmt.Errorf("score: manifest features %d not in 1..%d", m.Features, maxFeatures)
	}
	if len(m.Chunks) > maxChunks {
		return nil, fmt.Errorf("score: manifest chunk count %d exceeds %d", len(m.Chunks), maxChunks)
	}
	var b bytes.Buffer
	w := func(v any) { binary.Write(&b, binary.LittleEndian, v) }
	b.WriteByte(byte(len(m.Codec)))
	b.WriteString(m.Codec)
	b.WriteByte(byte(m.Mode))
	w(math.Float64bits(m.Tol))
	w(uint32(m.Features))
	w(uint32(len(m.Chunks)))
	for i, c := range m.Chunks {
		if err := checkChunkName(c.File); err != nil {
			return nil, fmt.Errorf("score: manifest chunk %d: %w", i, err)
		}
		if c.Bytes < 0 || c.Samples <= 0 || c.Samples > maxChunkSamples {
			return nil, fmt.Errorf("score: manifest chunk %d: bytes %d / samples %d out of range", i, c.Bytes, c.Samples)
		}
		b.WriteByte(byte(len(c.File)))
		b.WriteString(c.File)
		w(uint64(c.Bytes))
		w(c.Checksum)
		w(uint32(c.Samples))
		w(math.Float64bits(c.AchievedLinf))
		w(math.Float64bits(c.AchievedL2))
	}
	body := b.Bytes()
	out := bytes.NewBuffer(make([]byte, 0, len(manifestMagic)+12+len(body)))
	out.WriteString(manifestMagic)
	binary.Write(out, binary.LittleEndian, uint64(len(body)))
	binary.Write(out, binary.LittleEndian, integrity.Checksum(body))
	out.Write(body)
	return out.Bytes(), nil
}

// checkChunkName rejects chunk file names that could escape the dataset
// directory or collide with special names.
func checkChunkName(name string) error {
	if name == "" || len(name) > 255 {
		return fmt.Errorf("chunk file name length %d not in 1..255", len(name))
	}
	if name == "." || name == ".." || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("chunk file name %q must be a plain file name", name)
	}
	return nil
}

// DecodeManifest parses a manifest frame. Damage surfaces as an error
// wrapping ErrCorrupt or ErrTruncated; DecodeManifest never panics and
// never returns a partially filled manifest without an error.
//
//errprop:deterministic
func DecodeManifest(raw []byte) (*Manifest, error) {
	if len(raw) < len(manifestMagic) {
		return nil, fmt.Errorf("score: manifest: %w: %d bytes, shorter than magic", ErrTruncated, len(raw))
	}
	if string(raw[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("score: manifest: %w: bad magic %q", ErrCorrupt, raw[:len(manifestMagic)])
	}
	rest := raw[len(manifestMagic):]
	if len(rest) < 12 {
		return nil, fmt.Errorf("score: manifest: %w: missing frame header", ErrTruncated)
	}
	bodyLen := binary.LittleEndian.Uint64(rest)
	crc := binary.LittleEndian.Uint32(rest[8:])
	rest = rest[12:]
	if bodyLen > maxManifestBody {
		return nil, fmt.Errorf("score: manifest: %w: declared body length %d exceeds %d", ErrCorrupt, bodyLen, int64(maxManifestBody))
	}
	if uint64(len(rest)) < bodyLen {
		return nil, fmt.Errorf("score: manifest: %w: body %d of declared %d bytes", ErrTruncated, len(rest), bodyLen)
	}
	if uint64(len(rest)) > bodyLen {
		return nil, fmt.Errorf("score: manifest: %w: %d bytes beyond declared body", ErrCorrupt, uint64(len(rest))-bodyLen)
	}
	body := rest[:bodyLen]
	if got := integrity.Checksum(body); got != crc {
		return nil, fmt.Errorf("score: manifest: %w: body checksum %08x != stored %08x", ErrCorrupt, got, crc)
	}
	return decodeManifestBody(bytes.NewReader(body))
}

// decodeManifestBody parses the checksum-verified body. Structural
// inconsistency inside verified bytes means the manifest was written
// wrong — ErrCorrupt.
func decodeManifestBody(r *bytes.Reader) (*Manifest, error) {
	bad := func(what string) error {
		return fmt.Errorf("score: manifest: %w: inconsistent %s", ErrCorrupt, what)
	}
	u32 := func() (uint32, bool) {
		var v uint32
		if binary.Read(r, binary.LittleEndian, &v) != nil {
			return 0, false
		}
		return v, true
	}
	f64 := func() (float64, bool) {
		var v uint64
		if binary.Read(r, binary.LittleEndian, &v) != nil {
			return 0, false
		}
		return math.Float64frombits(v), true
	}
	str := func(what string) (string, error) {
		l, err := r.ReadByte()
		if err != nil {
			return "", bad(what + " length")
		}
		s := make([]byte, l)
		if _, err := io.ReadFull(r, s); err != nil {
			return "", bad(what)
		}
		return string(s), nil
	}

	m := &Manifest{}
	var err error
	if m.Codec, err = str("codec name"); err != nil {
		return nil, err
	}
	if m.Codec == "" {
		return nil, bad("empty codec name")
	}
	mode, err := r.ReadByte()
	if err != nil {
		return nil, bad("mode")
	}
	m.Mode = compress.Mode(mode)
	tol, ok := f64()
	if !ok {
		return nil, bad("tolerance")
	}
	m.Tol = tol
	feats, ok := u32()
	if !ok || feats == 0 || feats > maxFeatures {
		return nil, bad("feature count")
	}
	m.Features = int(feats)
	n, ok := u32()
	if !ok || n > maxChunks {
		return nil, bad("chunk count")
	}
	// Guard the allocation against a checksummed-but-absurd count: each
	// chunk needs at least 26 body bytes.
	if uint64(n)*26 > uint64(r.Len()) {
		return nil, bad("chunk count (exceeds body)")
	}
	m.Chunks = make([]Chunk, n)
	for i := range m.Chunks {
		c := &m.Chunks[i]
		if c.File, err = str(fmt.Sprintf("chunk %d file name", i)); err != nil {
			return nil, err
		}
		if err := checkChunkName(c.File); err != nil {
			return nil, fmt.Errorf("score: manifest: %w: chunk %d: %v", ErrCorrupt, i, err)
		}
		var sz uint64
		if binary.Read(r, binary.LittleEndian, &sz) != nil {
			return nil, bad(fmt.Sprintf("chunk %d size", i))
		}
		if sz > math.MaxInt64 {
			return nil, bad(fmt.Sprintf("chunk %d size (overflow)", i))
		}
		c.Bytes = int64(sz)
		if c.Checksum, ok = u32(); !ok {
			return nil, bad(fmt.Sprintf("chunk %d checksum", i))
		}
		samples, ok := u32()
		if !ok || samples == 0 || samples > maxChunkSamples {
			return nil, bad(fmt.Sprintf("chunk %d sample count", i))
		}
		c.Samples = int(samples)
		if c.AchievedLinf, ok = f64(); !ok {
			return nil, bad(fmt.Sprintf("chunk %d achieved linf", i))
		}
		if c.AchievedL2, ok = f64(); !ok {
			return nil, bad(fmt.Sprintf("chunk %d achieved l2", i))
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("score: manifest: %w: %d trailing bytes", ErrCorrupt, r.Len())
	}
	return m, nil
}

// WriteManifestFile atomically writes the manifest under path (temp file
// in the same directory + fsync + rename), so a crash mid-write never
// leaves a half manifest under the final name.
func WriteManifestFile(path string, m *Manifest) error {
	raw, err := m.Encode()
	if err != nil {
		return err
	}
	return atomicWrite(path, raw)
}

// ReadManifestFile reads and decodes a manifest file.
func ReadManifestFile(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeManifest(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// atomicWrite is the shared temp+fsync+rename idiom (same discipline as
// internal/checkpoint.Save).
func atomicWrite(path string, raw []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
