package score

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/scidata/errprop/internal/detrand"
	"github.com/scidata/errprop/internal/hpcio"
	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/tensor"
)

func testNet(t *testing.T, features int) *nn.Network {
	t.Helper()
	net, err := nn.MLPSpec("score-test", []int{features, 16, 3}, nn.ActTanh, true).Build(11)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// bitsEqual compares float slices bit for bit (DeepEqual would treat
// +0/-0 as equal and NaNs as unequal; the scorer must produce the exact
// same bits).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func assertSameResult(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(got.Agg, want.Agg) {
		t.Fatalf("%s: aggregates differ:\n got %+v\nwant %+v", label, got.Agg, want.Agg)
	}
	if len(got.Chunks) != len(want.Chunks) {
		t.Fatalf("%s: chunk counts differ: %d vs %d", label, len(got.Chunks), len(want.Chunks))
	}
	for i := range got.Chunks {
		g, w := got.Chunks[i], want.Chunks[i]
		if !bitsEqual(g.Sum, w.Sum) || !bitsEqual(g.Min, w.Min) || !bitsEqual(g.Max, w.Max) {
			t.Fatalf("%s: chunk %d QoI differs", label, i)
		}
		g.Sum, g.Min, g.Max, w.Sum, w.Min, w.Max = nil, nil, nil, nil, nil, nil
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: chunk %d metadata differs:\n got %+v\nwant %+v", label, i, g, w)
		}
	}
}

// TestScoreWorkerInvariance is the core determinism contract: per-chunk
// results and the aggregate are bit-identical for any worker count, for
// every codec.
func TestScoreWorkerInvariance(t *testing.T) {
	const features = 6
	net := testNet(t, features)
	for _, codec := range []string{"sz", "zfp", "mgard"} {
		t.Run(codec, func(t *testing.T) {
			dir, man := writeTestDataset(t, codec, 1e-3, features, 200, 32)
			ref, err := Score(net, man, Config{Format: numfmt.FP16, QoIBudget: 10, Workers: 1, Batch: 16, Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if ref.Agg.Samples != 200 || ref.Agg.Chunks != int64(len(man.Chunks)) {
				t.Fatalf("aggregate counts off: %+v", ref.Agg)
			}
			for _, workers := range []int{2, 5} {
				got, err := Score(net, man, Config{Format: numfmt.FP16, QoIBudget: 10, Workers: workers, Batch: 16, Dir: dir})
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, got, ref, codec)
			}
			// EngineShards is the same kind of knob as Workers: wall-clock
			// only. Sharded worker engines must reproduce the reference run
			// bit for bit.
			for _, shards := range []int{2, 3} {
				got, err := Score(net, man, Config{Format: numfmt.FP16, QoIBudget: 10, Workers: 2, Batch: 16, EngineShards: shards, Dir: dir})
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, got, ref, codec)
			}
		})
	}
}

// TestScoreMatchesDirectForward pins the scored QoI to the legacy
// Network.Forward path: the engine is bit-identical to it, and the
// scorer's reduction is plain sequential summation in sample order, so
// recomputing a chunk's sums by hand must agree exactly.
func TestScoreMatchesDirectForward(t *testing.T) {
	const features, batch = 5, 16
	net := testNet(t, features)
	dir, man := writeTestDataset(t, "sz", 1e-3, features, 96, 48)
	res, err := Score(net, man, Config{Workers: 3, Batch: batch, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range man.Chunks {
		raw, err := os.ReadFile(filepath.Join(dir, c.File))
		if err != nil {
			t.Fatal(err)
		}
		data, err := DecodeChunk(man, c, raw)
		if err != nil {
			t.Fatal(err)
		}
		outDim := len(res.Chunks[i].Sum)
		sum := make([]float64, outDim)
		for lo := 0; lo < c.Samples; lo += batch {
			hi := lo + batch
			if hi > c.Samples {
				hi = c.Samples
			}
			xb := tensor.NewMatrix(features, hi-lo)
			for f := 0; f < features; f++ {
				copy(xb.Data[f*(hi-lo):(f+1)*(hi-lo)], data[f*c.Samples+lo:f*c.Samples+hi])
			}
			out := net.Forward(xb, false)
			for f := 0; f < out.Rows; f++ {
				for _, v := range out.Data[f*(hi-lo) : (f+1)*(hi-lo)] {
					sum[f] += v
				}
			}
		}
		if !bitsEqual(sum, res.Chunks[i].Sum) {
			t.Fatalf("chunk %d: scored sum %v != direct forward sum %v", i, res.Chunks[i].Sum, sum)
		}
	}
}

// TestScoreCertifiedAccounting checks the Inequality (3) bookkeeping:
// the per-chunk bound composes the quantization bound with the
// quantized-Lipschitz amplification of the chunk's achieved codec error,
// and budget admission agrees with InputToleranceFor's inversion.
func TestScoreCertifiedAccounting(t *testing.T) {
	const features = 6
	net := testNet(t, features)
	dir, man := writeTestDataset(t, "sz", 1e-3, features, 128, 32)

	res, err := Score(net, man, Config{Format: numfmt.INT8, Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuantBound <= 0 {
		t.Fatalf("INT8 quantization bound %g, want positive", res.QuantBound)
	}
	if !math.IsInf(res.InputTolL2, 1) {
		t.Fatalf("no budget: InputTolL2 %g, want +Inf", res.InputTolL2)
	}
	for i, cr := range res.Chunks {
		if cr.AchievedLinf != man.Chunks[i].AchievedLinf {
			t.Fatalf("chunk %d achieved error not carried from manifest", i)
		}
		if cr.Bound < cr.QuantBound {
			t.Fatalf("chunk %d bound %g below quant bound %g", i, cr.Bound, cr.QuantBound)
		}
		if cr.InputL2 < cr.AchievedLinf {
			t.Fatalf("chunk %d input L2 %g below pointwise error %g", i, cr.InputL2, cr.AchievedLinf)
		}
		if !cr.WithinBudget {
			t.Fatalf("chunk %d flagged over budget with no budget set", i)
		}
	}

	// A budget below the quantization bound admits nothing.
	tight, err := Score(net, man, Config{Format: numfmt.INT8, QoIBudget: res.QuantBound / 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if tight.InputTolL2 != 0 {
		t.Fatalf("tight budget: InputTolL2 %g, want 0", tight.InputTolL2)
	}
	if tight.Agg.OverBudget != int64(len(man.Chunks)) {
		t.Fatalf("tight budget: %d over budget, want all %d", tight.Agg.OverBudget, len(man.Chunks))
	}

	// A generous budget admits everything, and admission matches the
	// inverted bound.
	loose, err := Score(net, man, Config{Format: numfmt.INT8, QoIBudget: 2 * tight.Agg.MaxBound, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Agg.OverBudget != 0 {
		t.Fatalf("loose budget: %d chunks over budget, want 0", loose.Agg.OverBudget)
	}
	for i, cr := range loose.Chunks {
		if cr.WithinBudget != (cr.InputL2 <= loose.InputTolL2) {
			t.Fatalf("chunk %d: WithinBudget=%v disagrees with InputToleranceFor admission (input %g, tol %g)",
				i, cr.WithinBudget, cr.InputL2, loose.InputTolL2)
		}
	}

	// Aggregate bound accounting: MeanBound is the sample-weighted mean.
	var wsum float64
	for _, cr := range loose.Chunks {
		wsum += float64(cr.Samples) * cr.Bound
	}
	if got, want := loose.Agg.MeanBound(), wsum/float64(loose.Agg.Samples); got != want {
		t.Fatalf("MeanBound %g, want %g", got, want)
	}
}

// TestScoreCorruptChunk drives the detect-or-skip contract: damage is
// fatal by default and a reported skip under SkipCorrupt — never folded
// into the aggregate.
func TestScoreCorruptChunk(t *testing.T) {
	const features = 4
	net := testNet(t, features)
	dir, man := writeTestDataset(t, "sz", 1e-3, features, 160, 32)
	victim := man.Chunks[2]
	path := filepath.Join(dir, victim.File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), raw...)
	mut[len(mut)/2] ^= 0x20
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Score(net, man, Config{Dir: dir, Workers: 2}); !integrity.IsIntegrityError(err) {
		t.Fatalf("corrupt chunk without SkipCorrupt: got %v, want integrity error", err)
	}

	res, err := Score(net, man, Config{Dir: dir, Workers: 2, SkipCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Skipped != 1 || res.Agg.Chunks != int64(len(man.Chunks)) {
		t.Fatalf("skip accounting: %+v", res.Agg)
	}
	skipped := res.Chunks[2]
	if !skipped.Skipped || skipped.Samples != 0 || skipped.Sum != nil {
		t.Fatalf("skipped chunk carries data: %+v", skipped)
	}
	if !strings.Contains(skipped.Detail, "decode") {
		t.Fatalf("skip detail %q does not name the failing stage", skipped.Detail)
	}
	if res.Agg.Samples != int64(160-victim.Samples) {
		t.Fatalf("aggregate samples %d include the skipped chunk", res.Agg.Samples)
	}

	// A missing chunk file is detected the same way.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	res2, err := Score(net, man, Config{Dir: dir, Workers: 2, SkipCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Agg.Skipped != 1 || !strings.Contains(res2.Chunks[2].Detail, "read") {
		t.Fatalf("missing chunk not reported: %+v", res2.Chunks[2])
	}
}

// TestScoreTransientFaultBillingDeterministic checks that simulated
// storage faults bill per chunk from a schedule-independent stream:
// retries and read times must not depend on the worker count.
func TestScoreTransientFaultBillingDeterministic(t *testing.T) {
	const features = 4
	net := testNet(t, features)
	dir, man := writeTestDataset(t, "zfp", 1e-2, features, 160, 16)
	mkStorage := func() *hpcio.Storage {
		st := hpcio.DefaultStorage()
		st.Faults = &hpcio.TransientFaults{Stream: detrand.New(99), FailProb: 0.4, MaxRetries: 8}
		return st
	}
	ref, err := Score(net, man, Config{Workers: 1, Dir: dir, Storage: mkStorage()})
	if err != nil {
		t.Fatal(err)
	}
	var totalRetries int64
	for _, cr := range ref.Chunks {
		totalRetries += int64(cr.Retries)
	}
	if totalRetries == 0 {
		t.Fatal("fault profile produced no retries; test is vacuous")
	}
	got, err := Score(net, man, Config{Workers: 4, Dir: dir, Storage: mkStorage()})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, got, ref, "faulted")
}

// TestForwardChunkAllocs asserts the steady-state allocation budget of
// the forward stage: with a warm worker state, streaming a chunk through
// the engine allocates nothing.
func TestForwardChunkAllocs(t *testing.T) {
	const features, samples, batch = 6, 64, 16
	net := testNet(t, features)
	eng, err := nn.CompileInference(net, batch)
	if err != nil {
		t.Fatal(err)
	}
	ws := newWorkerState(eng, features, batch)
	data := smoothField(features, samples)
	sum := make([]float64, eng.OutputDim())
	min := make([]float64, eng.OutputDim())
	max := make([]float64, eng.OutputDim())
	forwardChunk(ws, data, features, samples, batch, sum, min, max) // warm the arena
	allocs := testing.AllocsPerRun(20, func() {
		forwardChunk(ws, data, features, samples, batch, sum, min, max)
	})
	if allocs != 0 {
		t.Fatalf("forward stage allocates %v objects per chunk in steady state, want 0", allocs)
	}
}

func TestScoreInputValidation(t *testing.T) {
	net := testNet(t, 4)
	if _, err := Score(net, &Manifest{}, Config{}); err == nil {
		t.Fatal("accepted empty manifest")
	}
	_, man := writeTestDataset(t, "sz", 1e-3, 6, 32, 16)
	if _, err := Score(net, man, Config{}); err == nil {
		t.Fatal("accepted feature/input dim mismatch")
	}
}
