package score

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/scidata/errprop/internal/integrity"
)

// Cursor is a scoring run's chunk-granular progress checkpoint: chunks
// [0, Committed) are durably accounted for, Agg is the running aggregate
// over exactly those chunks, and ResultBytes is the result-log offset
// their JSON lines end at. A cursor is bound to one manifest via the
// manifest frame's checksum, so a cursor can never resume a different
// dataset.
type Cursor struct {
	// ManifestChecksum is the CRC32C of the manifest's encoded frame.
	ManifestChecksum uint32
	// Committed is the number of leading chunks committed.
	Committed int64
	// ResultBytes is the durable result-log length at Committed.
	ResultBytes int64
	// Agg is the running aggregate over the committed chunks.
	Agg *Aggregate
}

const (
	cursorMagic = "ERRPROPSC1"
	// maxCursorBody caps the declared body length (a cursor is a few
	// hundred bytes plus three outDim-length vectors).
	maxCursorBody = 1 << 26
	// maxCursorVec caps the declared aggregate vector length.
	maxCursorVec = 1 << 22
	// CursorExt is the cursor file extension.
	CursorExt    = ".cur"
	cursorPrefix = "cursor-"
)

// EncodeCursor serializes c into the checksummed frame (same framing
// discipline as the manifest and internal/checkpoint).
//
//errprop:deterministic the frame is a pure function of the cursor state
func EncodeCursor(c *Cursor) ([]byte, error) {
	if c == nil || c.Agg == nil {
		return nil, fmt.Errorf("score: nil cursor")
	}
	if c.Committed < 0 || c.ResultBytes < 0 {
		return nil, fmt.Errorf("score: cursor committed %d / result bytes %d negative", c.Committed, c.ResultBytes)
	}
	if len(c.Agg.Sum) != len(c.Agg.Min) || len(c.Agg.Sum) != len(c.Agg.Max) {
		return nil, fmt.Errorf("score: cursor aggregate vector lengths differ")
	}
	var b bytes.Buffer
	w := func(v any) { binary.Write(&b, binary.LittleEndian, v) }
	f := func(v float64) { w(math.Float64bits(v)) }
	vec := func(v []float64) {
		for _, x := range v {
			f(x)
		}
	}
	a := c.Agg
	w(c.ManifestChecksum)
	w(uint64(c.Committed))
	w(uint64(c.ResultBytes))
	w(uint64(a.Chunks))
	w(uint64(a.Skipped))
	w(uint64(a.Samples))
	w(uint64(a.Elems))
	w(uint64(a.OverBudget))
	w(uint64(a.StoredBytes))
	w(uint64(a.RawBytes))
	w(uint64(a.SimRead))
	w(uint64(a.SimDecode))
	w(uint64(a.SimExec))
	w(uint64(a.Retries))
	f(a.BoundWeighted)
	f(a.MaxBound)
	w(uint32(len(a.Sum)))
	vec(a.Sum)
	vec(a.Min)
	vec(a.Max)

	body := b.Bytes()
	out := bytes.NewBuffer(make([]byte, 0, len(cursorMagic)+12+len(body)))
	out.WriteString(cursorMagic)
	binary.Write(out, binary.LittleEndian, uint64(len(body)))
	binary.Write(out, binary.LittleEndian, integrity.Checksum(body))
	out.Write(body)
	return out.Bytes(), nil
}

// DecodeCursor parses a cursor frame; damage surfaces as a typed
// integrity error, never as silently wrong progress.
//
//errprop:deterministic
func DecodeCursor(raw []byte) (*Cursor, error) {
	if len(raw) < len(cursorMagic) {
		return nil, fmt.Errorf("score: cursor: %w: %d bytes, shorter than magic", ErrTruncated, len(raw))
	}
	if string(raw[:len(cursorMagic)]) != cursorMagic {
		return nil, fmt.Errorf("score: cursor: %w: bad magic %q", ErrCorrupt, raw[:len(cursorMagic)])
	}
	rest := raw[len(cursorMagic):]
	if len(rest) < 12 {
		return nil, fmt.Errorf("score: cursor: %w: missing frame header", ErrTruncated)
	}
	bodyLen := binary.LittleEndian.Uint64(rest)
	crc := binary.LittleEndian.Uint32(rest[8:])
	rest = rest[12:]
	if bodyLen > maxCursorBody {
		return nil, fmt.Errorf("score: cursor: %w: declared body length %d exceeds %d", ErrCorrupt, bodyLen, int64(maxCursorBody))
	}
	if uint64(len(rest)) < bodyLen {
		return nil, fmt.Errorf("score: cursor: %w: body %d of declared %d bytes", ErrTruncated, len(rest), bodyLen)
	}
	if uint64(len(rest)) > bodyLen {
		return nil, fmt.Errorf("score: cursor: %w: %d bytes beyond declared body", ErrCorrupt, uint64(len(rest))-bodyLen)
	}
	body := rest[:bodyLen]
	if got := integrity.Checksum(body); got != crc {
		return nil, fmt.Errorf("score: cursor: %w: body checksum %08x != stored %08x", ErrCorrupt, got, crc)
	}

	bad := func(what string) error {
		return fmt.Errorf("score: cursor: %w: inconsistent %s", ErrCorrupt, what)
	}
	r := bytes.NewReader(body)
	u64 := func() (uint64, bool) {
		var v uint64
		if binary.Read(r, binary.LittleEndian, &v) != nil {
			return 0, false
		}
		return v, true
	}
	i64 := func(what string) (int64, error) {
		v, ok := u64()
		if !ok || v > math.MaxInt64 {
			return 0, bad(what)
		}
		return int64(v), nil
	}
	f64 := func(what string) (float64, error) {
		v, ok := u64()
		if !ok {
			return 0, bad(what)
		}
		return math.Float64frombits(v), nil
	}

	c := &Cursor{Agg: &Aggregate{}}
	var mc uint32
	if binary.Read(r, binary.LittleEndian, &mc) != nil {
		return nil, bad("manifest checksum")
	}
	c.ManifestChecksum = mc
	a := c.Agg
	var err error
	for _, fld := range []struct {
		what string
		dst  *int64
	}{
		{"committed", &c.Committed},
		{"result bytes", &c.ResultBytes},
		{"chunk count", &a.Chunks},
		{"skip count", &a.Skipped},
		{"sample count", &a.Samples},
		{"element count", &a.Elems},
		{"over-budget count", &a.OverBudget},
		{"stored bytes", &a.StoredBytes},
		{"raw bytes", &a.RawBytes},
	} {
		if *fld.dst, err = i64(fld.what); err != nil {
			return nil, err
		}
	}
	for _, fld := range []struct {
		what string
		dst  *time.Duration
	}{
		{"read time", &a.SimRead},
		{"decode time", &a.SimDecode},
		{"exec time", &a.SimExec},
	} {
		v, err := i64(fld.what)
		if err != nil {
			return nil, err
		}
		*fld.dst = time.Duration(v)
	}
	if a.Retries, err = i64("retry count"); err != nil {
		return nil, err
	}
	if a.BoundWeighted, err = f64("weighted bound"); err != nil {
		return nil, err
	}
	if a.MaxBound, err = f64("max bound"); err != nil {
		return nil, err
	}
	var n uint32
	if binary.Read(r, binary.LittleEndian, &n) != nil || n > maxCursorVec {
		return nil, bad("aggregate width")
	}
	if uint64(n)*24 != uint64(r.Len()) {
		return nil, bad("aggregate width (body length mismatch)")
	}
	for _, dst := range []*[]float64{&a.Sum, &a.Min, &a.Max} {
		v := make([]float64, n)
		for i := range v {
			if v[i], err = f64("aggregate vector"); err != nil {
				return nil, err
			}
		}
		*dst = v
	}
	// The committer folds exactly one chunk per commit, so a cursor whose
	// counters disagree was written wrong.
	if c.Committed != a.Chunks {
		return nil, bad("committed count != aggregate chunk count")
	}
	return c, nil
}

// cursorFileName returns the canonical cursor file name for a committed
// count.
func cursorFileName(committed int64) string {
	return fmt.Sprintf("%s%012d%s", cursorPrefix, committed, CursorExt)
}

// committedFromName parses the committed count out of a canonical cursor
// name.
func committedFromName(name string) (int64, bool) {
	var committed int64
	var ext string
	n, err := fmt.Sscanf(name, cursorPrefix+"%012d%s", &committed, &ext)
	if n != 2 || err != nil || ext != CursorExt || committed < 0 {
		return 0, false
	}
	return committed, true
}

// SaveCursor atomically writes c into dir under the canonical name for
// its committed count (temp file + fsync + rename + directory fsync) and
// returns the final path.
func SaveCursor(dir string, c *Cursor) (string, error) {
	raw, err := EncodeCursor(c)
	if err != nil {
		return "", err
	}
	final := filepath.Join(dir, cursorFileName(c.Committed))
	if err := atomicWrite(final, raw); err != nil {
		return "", err
	}
	return final, nil
}

// ListCursors returns the canonical cursor paths in dir, newest (highest
// committed count) first. A missing dir is an empty list, not an error.
func ListCursors(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	type cand struct {
		path      string
		committed int64
	}
	var cs []cand
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if committed, ok := committedFromName(e.Name()); ok {
			cs = append(cs, cand{filepath.Join(dir, e.Name()), committed})
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].committed > cs[j].committed })
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.path
	}
	return out, nil
}

// LoadLatestCursor loads the newest decodable cursor in dir, skipping
// damaged files — crash safety must not depend on the last write
// surviving. Returns os.ErrNotExist (wrapped) when dir holds no usable
// cursor; damaged files encountered along the way are named in the
// error.
func LoadLatestCursor(dir string) (*Cursor, string, error) {
	paths, err := ListCursors(dir)
	if err != nil {
		return nil, "", err
	}
	var skipped []string
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, "", err
		}
		c, err := DecodeCursor(raw)
		if err == nil {
			return c, p, nil
		}
		skipped = append(skipped, fmt.Sprintf("%s (%v)", filepath.Base(p), err))
	}
	if len(skipped) > 0 {
		return nil, "", fmt.Errorf("score: no usable cursor in %s (damaged: %v): %w", dir, skipped, os.ErrNotExist)
	}
	return nil, "", fmt.Errorf("score: no cursor in %s: %w", dir, os.ErrNotExist)
}

// PruneCursors removes all but the keep newest cursors in dir. keep <= 0
// keeps everything.
func PruneCursors(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	paths, err := ListCursors(dir)
	if err != nil {
		return err
	}
	if keep > len(paths) {
		keep = len(paths)
	}
	for _, p := range paths[keep:] {
		if err := os.Remove(p); err != nil {
			return err
		}
	}
	return nil
}
