package score

import (
	"encoding/json"
	"os"
	"testing"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
)

// The bulk-scoring bench (BENCH_score.json): simulated scored-elements
// throughput versus compression tolerance for the three codecs. The
// pipeline's streaming throughput is bounded by its slowest phase —
// simulated storage+decode versus simulated execution — reproducing the
// paper's effect: loose tolerances multiply effective I/O bandwidth
// (ZFP stays cheap to decode) while stringent tolerances drag SZ/MGARD
// below the raw-read baseline.

type scoreBenchRow struct {
	Codec           string  `json:"codec"`
	Tol             float64 `json:"tol"`
	Chunks          int64   `json:"chunks"`
	Samples         int64   `json:"samples"`
	Ratio           float64 `json:"compression_ratio"`
	AchievedLinfMax float64 `json:"achieved_linf_max"`
	MeanBound       float64 `json:"mean_bound"`
	SimReadNS       int64   `json:"sim_read_ns"`
	SimDecodeNS     int64   `json:"sim_decode_ns"`
	SimExecNS       int64   `json:"sim_exec_ns"`
	// ElemsPerSec is Elems / max(simRead+simDecode, simExec): the staged
	// pipeline streams, so the slowest phase sets the rate.
	ElemsPerSec float64 `json:"scored_elems_per_sec"`
}

// TestWriteScoreBenchJSON regenerates the committed bulk-scoring bench.
// Run with:
//
//	ERRPROP_SCORE_BENCH_OUT=BENCH_score.json go test ./internal/score -run TestWriteScoreBenchJSON -count=1
func TestWriteScoreBenchJSON(t *testing.T) {
	out := os.Getenv("ERRPROP_SCORE_BENCH_OUT")
	if out == "" {
		t.Skip("set ERRPROP_SCORE_BENCH_OUT to write the bulk-scoring bench")
	}

	const features, samples, chunkSamples = 9, 131072, 8192
	net, err := nn.MLPSpec("bench-score", []int{features, 64, 64, features}, nn.ActTanh, true).Build(17)
	if err != nil {
		t.Fatal(err)
	}

	var rows []scoreBenchRow
	for _, codec := range []string{"sz", "zfp", "mgard"} {
		for _, tol := range []float64{1e-2, 1e-3, 1e-4} {
			dir, man := writeTestDataset(t, codec, tol, features, samples, chunkSamples)
			res, err := Score(net, man, Config{
				Format: numfmt.FP16, Dir: dir, Batch: 256, DiscardChunkResults: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			a := res.Agg
			var achieved float64
			for _, c := range man.Chunks {
				if c.AchievedLinf > achieved {
					achieved = c.AchievedLinf
				}
			}
			row := scoreBenchRow{
				Codec: codec, Tol: tol, Chunks: a.Chunks, Samples: a.Samples,
				Ratio:           float64(a.RawBytes) / float64(a.StoredBytes),
				AchievedLinfMax: achieved,
				MeanBound:       a.MeanBound(),
				SimReadNS:       int64(a.SimRead), SimDecodeNS: int64(a.SimDecode), SimExecNS: int64(a.SimExec),
			}
			simIO := a.SimRead + a.SimDecode
			slowest := simIO
			if a.SimExec > slowest {
				slowest = a.SimExec
			}
			if slowest > 0 {
				row.ElemsPerSec = float64(a.Elems) / slowest.Seconds()
			}
			rows = append(rows, row)
			t.Logf("%-5s tol %g: ratio %.1fx, %.3g elems/s (io %v, exec %v)",
				codec, tol, row.Ratio, row.ElemsPerSec, simIO, a.SimExec)
		}
	}

	doc := map[string]any{
		"bench": "score",
		"description": "bulk offline scoring: simulated scored-elements/sec vs compression tolerance per codec; " +
			"rate = elems / max(sim read+decode, sim exec) since the staged pipeline streams at the slowest phase; " +
			"storage is the paper's 2.8 GB/s Lustre baseline, execution the simulated RTX 3080 Ti at FP16",
		"model": "9-64-64-9 tanh (psn), fp16 weights, batch 256",
		"dataset": map[string]any{
			"features": features, "samples": samples, "chunk_samples": chunkSamples,
			"field": "smooth per-feature sin x exp signals",
		},
		"rows": rows,
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d rows)", out, len(rows))
}
