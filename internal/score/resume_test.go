package score

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/scidata/errprop/internal/numfmt"
)

var errKilled = errors.New("simulated kill")

// runToLog scores the dataset streaming results into a fresh log at
// logPath, optionally with a cursor dir and a kill-switch that aborts
// after `kill` commits (kill <= 0 scores to completion).
func runToLog(t *testing.T, dir string, man *Manifest, logPath, cursorDir string, workers, kill int) (*Result, error) {
	t.Helper()
	log, err := OpenResultLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	cfg := Config{
		Format:          numfmt.FP16,
		Workers:         workers,
		Batch:           16,
		Dir:             dir,
		CursorDir:       cursorDir,
		CheckpointEvery: 3,
		Results:         log,
	}
	if kill > 0 {
		commits := 0
		cfg.OnChunk = func(*ChunkResult) error {
			commits++
			if commits >= kill {
				return errKilled
			}
			return nil
		}
	}
	return Score(testNet(t, man.Features), man, cfg)
}

// TestKillResumeBitIdentical is the crash-safety contract: a run killed
// mid-stream and resumed from its cursor produces a byte-identical
// result log and a bit-identical aggregate versus an uninterrupted run —
// across codecs and worker counts, even when the crashed, resumed and
// reference runs all used different worker counts.
func TestKillResumeBitIdentical(t *testing.T) {
	const features = 5
	for _, tc := range []struct {
		codec              string
		refW, crashW, resW int
		kill               int
	}{
		{"sz", 1, 3, 2, 4},
		{"sz", 2, 1, 4, 7},
		{"zfp", 1, 4, 1, 5},
		{"zfp", 3, 2, 3, 8},
	} {
		t.Run(tc.codec, func(t *testing.T) {
			dir, man := writeTestDataset(t, tc.codec, 1e-3, features, 320, 32)
			if len(man.Chunks) != 10 {
				t.Fatalf("want 10 chunks, got %d", len(man.Chunks))
			}
			work := t.TempDir()
			refLog := filepath.Join(work, "ref.jsonl")
			ref, err := runToLog(t, dir, man, refLog, "", tc.refW, 0)
			if err != nil {
				t.Fatal(err)
			}

			curDir := filepath.Join(work, "cursors")
			if err := os.MkdirAll(curDir, 0o755); err != nil {
				t.Fatal(err)
			}
			resLog := filepath.Join(work, "res.jsonl")
			if _, err := runToLog(t, dir, man, resLog, curDir, tc.crashW, tc.kill); !errors.Is(err, errKilled) {
				t.Fatalf("crash run: got %v, want the simulated kill", err)
			}
			// The crashed run's log holds lines past the last durable
			// cursor — exactly what resume must truncate away.
			res, err := runToLog(t, dir, man, resLog, curDir, tc.resW, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Resumed {
				t.Fatal("resume did not pick up the cursor")
			}
			if res.ResumedFrom <= 0 || res.ResumedFrom >= int64(len(man.Chunks)) {
				t.Fatalf("resumed from %d, want mid-stream", res.ResumedFrom)
			}

			refBytes, err := os.ReadFile(refLog)
			if err != nil {
				t.Fatal(err)
			}
			gotBytes, err := os.ReadFile(resLog)
			if err != nil {
				t.Fatal(err)
			}
			if string(refBytes) != string(gotBytes) {
				t.Fatalf("resumed result log differs from uninterrupted run's\nref %d bytes, got %d bytes", len(refBytes), len(gotBytes))
			}
			assertSameAggregate(t, res.Agg, ref.Agg)

			// The resumed run's freshly committed chunks match the
			// reference's tail bit for bit.
			tail := ref.Chunks[res.ResumedFrom:]
			if len(res.Chunks) != len(tail) {
				t.Fatalf("resume committed %d chunks, want %d", len(res.Chunks), len(tail))
			}
			for i := range tail {
				if !bitsEqual(res.Chunks[i].Sum, tail[i].Sum) {
					t.Fatalf("resumed chunk %d differs from reference", res.Chunks[i].Index)
				}
			}
		})
	}
}

func assertSameAggregate(t *testing.T, got, want *Aggregate) {
	t.Helper()
	if got.Chunks != want.Chunks || got.Skipped != want.Skipped || got.Samples != want.Samples ||
		got.Elems != want.Elems || got.OverBudget != want.OverBudget ||
		got.StoredBytes != want.StoredBytes || got.RawBytes != want.RawBytes ||
		got.SimRead != want.SimRead || got.SimDecode != want.SimDecode || got.SimExec != want.SimExec ||
		got.Retries != want.Retries {
		t.Fatalf("aggregate counters differ:\n got %+v\nwant %+v", got, want)
	}
	if !bitsEqual([]float64{got.BoundWeighted, got.MaxBound}, []float64{want.BoundWeighted, want.MaxBound}) ||
		!bitsEqual(got.Sum, want.Sum) || !bitsEqual(got.Min, want.Min) || !bitsEqual(got.Max, want.Max) {
		t.Fatalf("aggregate QoI differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestResumeRejectsForeignCursor: a cursor directory written for a
// different manifest must be refused, not silently rescored.
func TestResumeRejectsForeignCursor(t *testing.T) {
	const features = 4
	dirA, manA := writeTestDataset(t, "sz", 1e-3, features, 96, 16)
	dirB, manB := writeTestDataset(t, "sz", 1e-2, features, 96, 16)
	work := t.TempDir()
	curDir := filepath.Join(work, "cursors")
	if err := os.MkdirAll(curDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := runToLog(t, dirA, manA, filepath.Join(work, "a.jsonl"), curDir, 2, 4); !errors.Is(err, errKilled) {
		t.Fatalf("crash run: %v", err)
	}
	_, err := Score(testNet(t, features), manB, Config{Dir: dirB, CursorDir: curDir})
	if err == nil {
		t.Fatal("accepted a cursor from a different manifest")
	}
}

// TestResumeAfterCompletion: resuming a finished run rescans nothing and
// returns the recorded aggregate unchanged.
func TestResumeAfterCompletion(t *testing.T) {
	const features = 4
	dir, man := writeTestDataset(t, "zfp", 1e-2, features, 96, 16)
	work := t.TempDir()
	curDir := filepath.Join(work, "cursors")
	if err := os.MkdirAll(curDir, 0o755); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(work, "log.jsonl")
	ref, err := runToLog(t, dir, man, logPath, curDir, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	again, err := runToLog(t, dir, man, logPath, curDir, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Resumed || again.ResumedFrom != int64(len(man.Chunks)) {
		t.Fatalf("second run resumed=%v from %d, want resumed at end", again.Resumed, again.ResumedFrom)
	}
	if len(again.Chunks) != 0 {
		t.Fatalf("second run re-committed %d chunks", len(again.Chunks))
	}
	assertSameAggregate(t, again.Agg, ref.Agg)
	gotBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(refBytes) {
		t.Fatal("result log changed on no-op resume")
	}
}

// TestFreshRunDiscardsStaleLog: without a cursor, an existing result log
// from a cursorless crashed run is truncated, not appended to.
func TestFreshRunDiscardsStaleLog(t *testing.T) {
	const features = 4
	dir, man := writeTestDataset(t, "sz", 1e-3, features, 64, 16)
	work := t.TempDir()
	logPath := filepath.Join(work, "log.jsonl")
	if err := os.WriteFile(logPath, []byte("{\"stale\":true}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	curDir := filepath.Join(work, "cursors")
	if err := os.MkdirAll(curDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := runToLog(t, dir, man, logPath, curDir, 2, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || strings.Contains(string(raw), "stale") {
		t.Fatalf("stale line survived a fresh run (%d bytes)", len(raw))
	}
}
