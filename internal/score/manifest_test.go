package score

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/scidata/errprop/internal/compress"
	_ "github.com/scidata/errprop/internal/compress/mgard"
	_ "github.com/scidata/errprop/internal/compress/sz"
	_ "github.com/scidata/errprop/internal/compress/zfp"
	"github.com/scidata/errprop/internal/integrity"
)

// smoothField builds a feature-major features x samples block of smooth
// per-feature signals (compressible, deterministic).
func smoothField(features, samples int) []float64 {
	out := make([]float64, features*samples)
	for f := 0; f < features; f++ {
		for c := 0; c < samples; c++ {
			t := float64(c) / float64(samples)
			out[f*samples+c] = math.Sin(2*math.Pi*t*float64(f+1)) * math.Exp(-t)
		}
	}
	return out
}

func writeTestDataset(t *testing.T, codec string, tol float64, features, samples, chunkSamples int) (string, *Manifest) {
	t.Helper()
	dir := t.TempDir()
	man, err := WriteDataset(dir, smoothField(features, samples), features, DatasetConfig{
		Codec: codec, Mode: compress.AbsLinf, Tol: tol, ChunkSamples: chunkSamples,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dir, man
}

func TestWriteDatasetManifestRoundTrip(t *testing.T) {
	const features, samples, chunkSamples = 6, 200, 32
	dir, man := writeTestDataset(t, "sz", 1e-3, features, samples, chunkSamples)

	if got, want := len(man.Chunks), (samples+chunkSamples-1)/chunkSamples; got != want {
		t.Fatalf("chunk count %d, want %d", got, want)
	}
	if got := man.TotalSamples(); got != samples {
		t.Fatalf("TotalSamples %d, want %d", got, samples)
	}
	for i, c := range man.Chunks {
		if c.AchievedLinf > 1e-3 {
			t.Errorf("chunk %d achieved linf %g exceeds requested tolerance", i, c.AchievedLinf)
		}
		raw, err := os.ReadFile(filepath.Join(dir, c.File))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(raw)) != c.Bytes {
			t.Errorf("chunk %d file size %d != manifest %d", i, len(raw), c.Bytes)
		}
		if integrity.Checksum(raw) != c.Checksum {
			t.Errorf("chunk %d checksum mismatch", i)
		}
	}

	got, err := ReadManifestFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, man) {
		t.Fatalf("manifest round trip differs:\n got %+v\nwant %+v", got, man)
	}
}

func TestManifestDecodeTypedErrors(t *testing.T) {
	_, man := writeTestDataset(t, "zfp", 1e-2, 4, 64, 16)
	raw, err := man.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeManifest(raw); err != nil {
		t.Fatalf("pristine manifest failed to decode: %v", err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"truncated-magic", func(b []byte) []byte { return b[:4] }, ErrTruncated},
		{"truncated-body", func(b []byte) []byte { return b[:len(b)-3] }, ErrTruncated},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrCorrupt},
		{"flipped-body", func(b []byte) []byte { b[len(b)-1] ^= 0x10; return b }, ErrCorrupt},
		{"trailing", func(b []byte) []byte { return append(b, 0xAB) }, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mut(append([]byte(nil), raw...))
			_, err := DecodeManifest(mut)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}

	// Trailing bytes fail the CRC (computed over declared body only when
	// lengths agree) or the trailing check; either way typed.
	if _, err := DecodeManifest(append(append([]byte(nil), raw...), 1, 2, 3)); !integrity.IsIntegrityError(err) {
		t.Fatalf("trailing garbage: got %v, want integrity error", err)
	}
}

func TestManifestRejectsPathEscapes(t *testing.T) {
	for _, name := range []string{"", ".", "..", "a/b", `a\b`, "../../etc/passwd"} {
		m := &Manifest{Codec: "sz", Features: 2, Chunks: []Chunk{{File: name, Bytes: 1, Samples: 1}}}
		if _, err := m.Encode(); err == nil {
			t.Errorf("Encode accepted chunk name %q", name)
		}
	}
}

func TestDecodeChunkDetectsDamage(t *testing.T) {
	dir, man := writeTestDataset(t, "sz", 1e-3, 4, 96, 48)
	c := man.Chunks[0]
	raw, err := os.ReadFile(filepath.Join(dir, c.File))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := DecodeChunk(man, c, raw)
	if err != nil {
		t.Fatalf("pristine chunk failed: %v", err)
	}
	if len(ref) != man.Features*c.Samples {
		t.Fatalf("decoded %d values, want %d", len(ref), man.Features*c.Samples)
	}

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x04
	if _, err := DecodeChunk(man, c, flipped); !integrity.IsIntegrityError(err) {
		t.Fatalf("bit flip: got %v, want integrity error", err)
	}
	if _, err := DecodeChunk(man, c, raw[:len(raw)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncation: got %v, want ErrTruncated", err)
	}
	if _, err := DecodeChunk(man, c, append(append([]byte(nil), raw...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("size mismatch: got %v, want ErrCorrupt", err)
	}

	// A valid container that does not match its manifest entry (wrong
	// codec / dims) must be rejected by the cross-checks.
	other := man.Chunks[1]
	otherRaw, err := os.ReadFile(filepath.Join(dir, other.File))
	if err != nil {
		t.Fatal(err)
	}
	swapped := Chunk{File: c.File, Bytes: other.Bytes, Checksum: other.Checksum, Samples: c.Samples}
	if c.Samples != other.Samples {
		if _, err := DecodeChunk(man, swapped, otherRaw); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("sample-count mismatch: got %v, want ErrCorrupt", err)
		}
	}
	wrongCodec := &Manifest{Codec: "mgard", Features: man.Features, Chunks: man.Chunks}
	if _, err := DecodeChunk(wrongCodec, c, raw); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("codec mismatch: got %v, want ErrCorrupt", err)
	}
}

func TestWriteDatasetValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteDataset(dir, []float64{1, 2, 3}, 2, DatasetConfig{Codec: "sz", Mode: compress.AbsLinf, Tol: 1e-3}); err == nil {
		t.Fatal("accepted field length not divisible by features")
	}
	if _, err := WriteDataset(dir, nil, 2, DatasetConfig{Codec: "sz", Mode: compress.AbsLinf, Tol: 1e-3}); err == nil {
		t.Fatal("accepted empty field")
	}
	if _, err := WriteDataset(dir, []float64{1, 2}, 0, DatasetConfig{Codec: "sz", Mode: compress.AbsLinf, Tol: 1e-3}); err == nil {
		t.Fatal("accepted zero features")
	}
	if _, err := WriteDataset(dir, smoothField(2, 8), 2, DatasetConfig{Codec: "nope", Mode: compress.AbsLinf, Tol: 1e-3}); err == nil {
		t.Fatal("accepted unknown codec")
	}
}
