package score

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// ChunkResult is one chunk's scored output together with its certified
// error accounting. All fields are deterministic: simulated times come
// from the hpcio timing model (a pure function of byte counts), never
// from a wall clock.
type ChunkResult struct {
	// Index is the chunk's position in the manifest.
	Index int64 `json:"index"`
	// File is the chunk's file name.
	File string `json:"file"`
	// Samples is the number of samples scored (0 when skipped).
	Samples int `json:"samples"`

	// Skipped is true when the chunk was detected as damaged and skipped
	// under Config.SkipCorrupt; Detail carries the detection report. A
	// skipped chunk contributes nothing to the aggregate QoI — it is
	// reported, never silently wrong.
	Skipped bool   `json:"skipped,omitempty"`
	Detail  string `json:"detail,omitempty"`

	// AchievedLinf is the chunk's certified pointwise codec error from
	// the manifest (measured at dataset write time).
	AchievedLinf float64 `json:"achieved_linf"`
	// InputL2 is the per-sample L2 input perturbation implied by the
	// pointwise error: sqrt(features) * AchievedLinf.
	InputL2 float64 `json:"input_l2"`
	// QuantBound is the model's weight-quantization QoI bound (chunk
	// independent, repeated per chunk so each result line is
	// self-certifying).
	QuantBound float64 `json:"quant_bound"`
	// Bound is the chunk's certified per-sample QoI L-infinity bound
	// under Inequality (3) with quantized-weight amplification:
	// QuantBound + LipQ * InputL2.
	Bound float64 `json:"bound"`
	// WithinBudget reports Bound <= Config.QoIBudget; always true when
	// no budget was configured.
	WithinBudget bool `json:"within_budget"`

	// Sum, Min and Max are the per-output-feature QoI aggregation over
	// the chunk's samples, accumulated in fixed sample order.
	Sum []float64 `json:"sum"`
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`

	// StoredBytes / RawBytes are the compressed and uncompressed sizes.
	StoredBytes int64 `json:"stored_bytes"`
	RawBytes    int64 `json:"raw_bytes"`
	// SimRead / SimDecode / SimExec are the simulated phase costs billed
	// for this chunk (storage read incl. retry backoff, codec decode,
	// device execution).
	SimRead   time.Duration `json:"sim_read_ns"`
	SimDecode time.Duration `json:"sim_decode_ns"`
	SimExec   time.Duration `json:"sim_exec_ns"`
	// Retries counts transient simulated-storage read failures absorbed
	// by the bounded retry loop.
	Retries int `json:"retries,omitempty"`
}

// Aggregate is the deterministic running reduction over committed
// chunks, folded strictly in chunk-index order so worker count never
// changes a bit of it. It is the state the cursor checkpoints.
type Aggregate struct {
	// Chunks counts committed chunks (scored + skipped); Skipped counts
	// the subset that was detected as damaged and skipped.
	Chunks  int64 `json:"chunks"`
	Skipped int64 `json:"skipped"`
	// Samples and Elems count scored samples and scored input elements
	// (Samples x Features).
	Samples int64 `json:"samples"`
	Elems   int64 `json:"elems"`

	// Sum, Min and Max aggregate the per-output-feature QoI across all
	// scored samples.
	Sum []float64 `json:"sum"`
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`

	// BoundWeighted is sum_i(Samples_i * Bound_i) over scored chunks: a
	// certified bound on the dataset-mean QoI error is
	// BoundWeighted/Samples, since every sample's error is bounded by
	// its chunk's certified bound. MaxBound is the worst per-chunk bound.
	BoundWeighted float64 `json:"bound_weighted"`
	MaxBound      float64 `json:"max_bound"`
	// OverBudget counts scored chunks whose certified bound exceeded the
	// configured QoI budget.
	OverBudget int64 `json:"over_budget"`

	// StoredBytes / RawBytes / Sim* total the per-chunk billing.
	StoredBytes int64         `json:"stored_bytes"`
	RawBytes    int64         `json:"raw_bytes"`
	SimRead     time.Duration `json:"sim_read_ns"`
	SimDecode   time.Duration `json:"sim_decode_ns"`
	SimExec     time.Duration `json:"sim_exec_ns"`
	Retries     int64         `json:"retries"`
}

// newAggregate returns an empty aggregate sized for outDim QoI features.
func newAggregate(outDim int) *Aggregate {
	return &Aggregate{
		Sum: make([]float64, outDim),
		Min: make([]float64, outDim),
		Max: make([]float64, outDim),
	}
}

// fold commits one chunk result into the aggregate. Called in strict
// chunk-index order by the committer.
func (a *Aggregate) fold(cr *ChunkResult) {
	a.Chunks++
	a.SimRead += cr.SimRead
	a.SimDecode += cr.SimDecode
	a.SimExec += cr.SimExec
	a.Retries += int64(cr.Retries)
	if cr.Skipped {
		a.Skipped++
		return
	}
	first := a.Samples == 0
	a.Samples += int64(cr.Samples)
	a.Elems += int64(cr.RawBytes / 8)
	a.StoredBytes += cr.StoredBytes
	a.RawBytes += cr.RawBytes
	for f := range a.Sum {
		a.Sum[f] += cr.Sum[f]
		if first || cr.Min[f] < a.Min[f] {
			a.Min[f] = cr.Min[f]
		}
		if first || cr.Max[f] > a.Max[f] {
			a.Max[f] = cr.Max[f]
		}
	}
	a.BoundWeighted += float64(cr.Samples) * cr.Bound
	if cr.Bound > a.MaxBound {
		a.MaxBound = cr.Bound
	}
	if !cr.WithinBudget {
		a.OverBudget++
	}
}

// Mean returns the dataset-mean QoI vector (Sum/Samples), nil when no
// samples were scored.
func (a *Aggregate) Mean() []float64 {
	if a.Samples == 0 {
		return nil
	}
	out := make([]float64, len(a.Sum))
	for i, s := range a.Sum {
		out[i] = s / float64(a.Samples)
	}
	return out
}

// MeanBound returns the certified bound on the dataset-mean QoI error
// (the sample-weighted mean of the per-chunk certified bounds).
func (a *Aggregate) MeanBound() float64 {
	if a.Samples == 0 {
		return 0
	}
	return a.BoundWeighted / float64(a.Samples)
}

// ResultLog is the durable per-chunk result stream: one deterministic
// JSON line per committed chunk, appended in chunk-index order. Together
// with the cursor it forms a write-ahead pair — results are appended and
// synced *before* the cursor records their byte offset, and resume
// truncates the log back to the last cursor's offset — so a crash at any
// instant leaves a log that resume extends into exactly the bytes an
// uninterrupted run would have produced.
type ResultLog struct {
	f   *os.File
	off int64
}

// OpenResultLog opens (creating if needed) the result log at path.
func OpenResultLog(path string) (*ResultLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	off, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &ResultLog{f: f, off: off}, nil
}

// Append writes one chunk result as a JSON line. encoding/json marshals
// struct fields in declaration order, so the bytes are deterministic.
func (l *ResultLog) Append(cr *ChunkResult) error {
	raw, err := json.Marshal(cr)
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	n, err := l.f.Write(raw)
	l.off += int64(n)
	if err != nil {
		return err
	}
	return nil
}

// Offset returns the current end offset of the log in bytes.
func (l *ResultLog) Offset() int64 { return l.off }

// Sync flushes the log to stable storage.
func (l *ResultLog) Sync() error { return l.f.Sync() }

// Truncate cuts the log back to off bytes — used on resume to discard
// lines written after the last durable cursor.
func (l *ResultLog) Truncate(off int64) error {
	if off < 0 || off > l.off {
		return fmt.Errorf("score: result log truncate offset %d outside 0..%d", off, l.off)
	}
	if err := l.f.Truncate(off); err != nil {
		return err
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	l.off = off
	return nil
}

// Close syncs and closes the log.
func (l *ResultLog) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
