package score

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scidata/errprop/internal/artifact"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/detrand"
	"github.com/scidata/errprop/internal/gpusim"
	"github.com/scidata/errprop/internal/hpcio"
	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/tensor"
)

// Config tunes a scoring run. Only Format, QoIBudget and the manifest
// affect the *numbers*; Workers, Batch-induced engine sizing, storage
// and cursor knobs affect speed, billing and durability, never a result
// bit (Batch is semantic only in that it fixes the forward batching,
// which the engine makes bit-identical at any partitioning — it is still
// kept fixed across resumed runs for exactness by construction, not by
// luck).
type Config struct {
	// Format is the weight quantization format the model executes under
	// (FP32 = none); its certified bound joins every chunk's accounting.
	Format numfmt.Format
	// QoIBudget, when positive, is the per-sample QoI L-infinity budget:
	// chunks whose certified bound exceeds it are flagged (and counted),
	// never silently accepted.
	QoIBudget float64
	// Workers sets the pipeline's concurrency (default GOMAXPROCS).
	// Results are bit-identical for any value.
	Workers int
	// Batch is the forward-pass batch size (default 256).
	Batch int
	// EngineShards splits each worker engine's forward pass column-wise
	// across this many goroutines (default 1 = unsharded). Bit-identical
	// for any value (nn.CompileInferenceSharded), so it never appears in
	// the exactness contract — only in wall-clock.
	EngineShards int
	// Dir is the chunk directory (default: the manifest's directory as
	// passed to ScoreFile, or "." for Score on an in-memory manifest).
	Dir string
	// Storage and Decode bill the simulated I/O path (defaults: the
	// paper's 2.8 GB/s Lustre and the calibrated decode model). When
	// Storage carries a TransientFaults profile, its stream seeds a
	// *per-chunk* stream (mixed with the chunk index) so billing stays
	// independent of worker schedule.
	Storage *hpcio.Storage
	Decode  hpcio.DecodeModel
	// Device bills the simulated execution phase (default RTX 3080 Ti).
	Device *gpusim.Device
	// SkipCorrupt makes a detected-bad chunk a reported skip instead of
	// a fatal error. Either way the failure is detected — never folded
	// into the aggregate as wrong numbers.
	SkipCorrupt bool
	// CursorDir enables chunk-granular crash-safe progress when set: the
	// run checkpoints a cursor every CheckpointEvery commits (default 16)
	// and resumes from the newest intact cursor on restart, keeping
	// KeepCursors files (default 3).
	CursorDir       string
	CheckpointEvery int
	KeepCursors     int
	// Results, when set, durably streams per-chunk JSON lines in commit
	// order; with CursorDir it forms the crash-safe write-ahead pair
	// (resume truncates it to the cursor's offset).
	Results *ResultLog
	// OnChunk, when set, observes every committed result in chunk-index
	// order; returning an error aborts the run after that commit.
	OnChunk func(*ChunkResult) error
	// DiscardChunkResults keeps Result.Chunks empty so a dataset-scale
	// run's memory stays bounded by the commit window, not the manifest
	// length — streaming consumers get every result through Results
	// and/or OnChunk instead.
	DiscardChunkResults bool
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.EngineShards <= 0 {
		c.EngineShards = 1
	}
	if c.Dir == "" {
		c.Dir = "."
	}
	if c.Storage == nil {
		c.Storage = hpcio.DefaultStorage()
	}
	if c.Decode == nil {
		c.Decode = hpcio.DefaultDecodeModel()
	}
	if c.Device == nil {
		c.Device = gpusim.RTX3080Ti
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 16
	}
	if c.KeepCursors <= 0 {
		c.KeepCursors = 3
	}
}

// Result reports one scoring run.
type Result struct {
	// Agg is the deterministic aggregate over all committed chunks
	// (including chunks committed by the run this one resumed).
	Agg *Aggregate
	// Chunks holds the results this run committed, in chunk-index order
	// starting at ResumedFrom (resumed-over chunks are not re-emitted —
	// their lines already sit in the result log).
	Chunks []ChunkResult
	// Resumed reports whether an intact cursor was loaded; ResumedFrom
	// is the chunk index scoring continued at (0 on a fresh run).
	Resumed     bool
	ResumedFrom int64
	// QuantBound is the model's certified weight-quantization QoI bound.
	QuantBound float64
	// InputTolL2 is the admissible per-sample L2 input perturbation for
	// the configured budget, from Analysis.InputToleranceFor over the
	// budget left after quantization (+Inf when no budget is set).
	InputTolL2 float64
}

// Score runs the streaming scoring pipeline for net over the manifest's
// chunks. The returned aggregate and per-chunk results are bit-identical
// for any Workers value, and — with CursorDir set — across any
// kill/resume split.
//
//errprop:deterministic results are a pure function of (net, manifest, chunk bytes, semantic config)
func Score(net *nn.Network, man *Manifest, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	if err := checkManifest(man, net.InputDim); err != nil {
		return nil, err
	}

	// Plan once: quantize, analyze, compile one engine per worker.
	serving := net
	if cfg.Format != numfmt.FP32 {
		q, err := quant.Quantize(net, cfg.Format)
		if err != nil {
			return nil, fmt.Errorf("score: quantizing: %w", err)
		}
		serving = q
	}
	an, err := core.AnalyzeNetwork(net, cfg.Format)
	if err != nil {
		return nil, fmt.Errorf("score: analyzing: %w", err)
	}
	engines := make([]*nn.Engine, cfg.Workers)
	for i := range engines {
		if engines[i], err = nn.CompileInferenceSharded(serving, cfg.Batch, cfg.EngineShards); err != nil {
			return nil, fmt.Errorf("score: compiling engine: %w", err)
		}
	}
	return scoreCompiled(serving, an, engines, man, cfg)
}

// ScoreArtifact is Score cold-started from an ahead-of-time artifact
// (internal/artifact): the shipped program binds to the shipped
// already-quantized weights and the shipped error-flow graph with its
// build-time step tables replaces re-analysis — no quantization, no
// compilation, no recomputation of the certified bound. The artifact's
// baked-in format overrides cfg.Format.
//
//errprop:deterministic results are a pure function of (artifact, manifest, chunk bytes, semantic config)
func ScoreArtifact(art *artifact.Artifact, man *Manifest, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	cfg.Format = art.Format
	if err := checkManifest(man, art.Net.InputDim); err != nil {
		return nil, err
	}
	steps, err := art.StepsFor(art.Format)
	if err != nil {
		return nil, fmt.Errorf("score: %w", err)
	}
	an := core.Analyze(art.Root, steps)
	engines := make([]*nn.Engine, cfg.Workers)
	for i := range engines {
		if engines[i], err = art.Program.Bind(art.Net, cfg.Batch, cfg.EngineShards); err != nil {
			return nil, fmt.Errorf("score: binding artifact program: %w", err)
		}
	}
	return scoreCompiled(art.Net, an, engines, man, cfg)
}

// ScoreArtifactFile is ScoreArtifact over an on-disk dataset, mirroring
// ScoreFile.
func ScoreArtifactFile(art *artifact.Artifact, manifestPath string, cfg Config) (*Result, error) {
	man, err := ReadManifestFile(manifestPath)
	if err != nil {
		return nil, err
	}
	if cfg.Dir == "" {
		cfg.Dir = filepath.Dir(manifestPath)
	}
	return ScoreArtifact(art, man, cfg)
}

// checkManifest applies the shared manifest/model compatibility rules.
func checkManifest(man *Manifest, inputDim int) error {
	if man == nil || len(man.Chunks) == 0 {
		return fmt.Errorf("score: empty manifest")
	}
	if inputDim != man.Features {
		return fmt.Errorf("score: network input dim %d != manifest features %d", inputDim, man.Features)
	}
	return nil
}

// scoreCompiled runs the scoring pipeline over pre-built state: the
// serving-weight network (for execution billing), its error-flow
// analysis, and one compiled engine per worker — whichever door they
// came through (Score's quantize/analyze/compile or ScoreArtifact's
// decode/bind).
func scoreCompiled(serving *nn.Network, an *core.Analysis, engines []*nn.Engine, man *Manifest, cfg Config) (*Result, error) {
	acct := newAccountant(an, man.Features, cfg.QoIBudget)
	r := &runner{cfg: cfg, man: man, acct: acct, serving: serving, engines: engines}
	var err error
	r.manChecksum, err = manifestChecksum(man)
	if err != nil {
		return nil, err
	}

	res := &Result{QuantBound: acct.quantBound, InputTolL2: acct.inputTolL2}
	start := int64(0)
	agg := newAggregate(engines[0].OutputDim())
	if cfg.CursorDir != "" {
		cur, _, err := LoadLatestCursor(cfg.CursorDir)
		switch {
		case err == nil:
			if cur.ManifestChecksum != r.manChecksum {
				return nil, fmt.Errorf("score: cursor in %s was written for a different manifest (checksum %08x != %08x)",
					cfg.CursorDir, cur.ManifestChecksum, r.manChecksum)
			}
			if cur.Committed > int64(len(man.Chunks)) {
				return nil, fmt.Errorf("score: %w: cursor committed %d beyond manifest's %d chunks",
					ErrCorrupt, cur.Committed, len(man.Chunks))
			}
			if len(cur.Agg.Sum) != engines[0].OutputDim() {
				return nil, fmt.Errorf("score: %w: cursor aggregate width %d != model output dim %d",
					ErrCorrupt, len(cur.Agg.Sum), engines[0].OutputDim())
			}
			start, agg = cur.Committed, cur.Agg
			res.Resumed, res.ResumedFrom = true, start
			if cfg.Results != nil {
				if err := cfg.Results.Truncate(cur.ResultBytes); err != nil {
					return nil, fmt.Errorf("score: rewinding result log to cursor: %w", err)
				}
			}
		case errors.Is(err, os.ErrNotExist):
			// Fresh start; discard any result lines a cursorless crashed
			// run left behind.
			if cfg.Results != nil {
				if err := cfg.Results.Truncate(0); err != nil {
					return nil, fmt.Errorf("score: rewinding result log: %w", err)
				}
			}
		default:
			return nil, err
		}
	}

	if err := r.run(start, agg, res); err != nil {
		return nil, err
	}
	res.Agg = agg
	return res, nil
}

// ScoreFile is Score over an on-disk dataset: it reads the manifest at
// path and scores its chunks from the same directory (unless cfg.Dir
// overrides it).
func ScoreFile(net *nn.Network, manifestPath string, cfg Config) (*Result, error) {
	man, err := ReadManifestFile(manifestPath)
	if err != nil {
		return nil, err
	}
	if cfg.Dir == "" {
		cfg.Dir = filepath.Dir(manifestPath)
	}
	return Score(net, man, cfg)
}

// manifestChecksum binds cursors to the manifest they measure progress
// against.
func manifestChecksum(m *Manifest) (uint32, error) {
	raw, err := m.Encode()
	if err != nil {
		return 0, err
	}
	return integrity.Checksum(raw), nil
}

// accountant precomputes the certified-error accounting shared by every
// chunk: the quantization bound, the quantized-Lipschitz amplification,
// and the admissible input tolerance for the configured budget.
type accountant struct {
	quantBound float64
	lipQ       float64
	sqrtN0     float64
	budget     float64
	inputTolL2 float64
}

func newAccountant(an *core.Analysis, features int, budget float64) *accountant {
	a := &accountant{
		quantBound: an.QuantizationBound(),
		lipQ:       an.LipschitzQuantized(),
		sqrtN0:     math.Sqrt(float64(features)),
		budget:     budget,
		inputTolL2: math.Inf(1),
	}
	if budget > 0 {
		left := budget - a.quantBound
		if left < 0 {
			left = 0
		}
		a.inputTolL2 = an.InputToleranceFor(left, true)
	}
	return a
}

// bound turns one chunk's achieved pointwise codec error into its
// certified per-sample QoI bound: the error becomes a per-sample L2
// input perturbation (||dx||_2 <= sqrt(n0) einf), which Inequality (3)
// with quantized-weight amplification joins to the quantization bound.
//
//errprop:bound-source the returned bound is a certified QoI error bound
func (a *accountant) bound(achievedLinf float64) (inputL2, bound float64) {
	inputL2 = a.sqrtN0 * achievedLinf
	return inputL2, a.quantBound + a.lipQ*inputL2
}

// account fills one chunk's certified-error fields from its manifest
// entry. Budget admission checks the same inverted bound as
// InputToleranceFor, so WithinBudget holds exactly when InputL2 fits
// inside the admissible tolerance.
func (a *accountant) account(c Chunk, cr *ChunkResult) {
	cr.AchievedLinf = c.AchievedLinf
	cr.QuantBound = a.quantBound
	cr.InputL2, cr.Bound = a.bound(c.AchievedLinf)
	cr.WithinBudget = a.budget <= 0 || cr.Bound <= a.budget
}

// chunkOutcome carries one scored chunk from a worker to the committer.
type chunkOutcome struct {
	idx int64
	res ChunkResult
	err error
}

type runner struct {
	cfg         Config
	man         *Manifest
	acct        *accountant
	serving     *nn.Network
	engines     []*nn.Engine
	manChecksum uint32
}

// run drives the staged pipeline from chunk index start: workers claim
// chunk indices through a window semaphore (bounding both memory and how
// far computation may run ahead of the commit frontier), score them
// independently, and a single committer folds results in strict
// chunk-index order — the fixed reduction that makes worker count
// irrelevant to the output.
func (r *runner) run(start int64, agg *Aggregate, res *Result) error {
	n := int64(len(r.man.Chunks))
	workers := r.cfg.Workers
	if max := n - start; max > 0 && int64(workers) > max {
		workers = int(max)
	}
	if start >= n {
		// Nothing left to score (the previous run committed everything
		// before being killed); still refresh the final cursor.
		return r.finalize(start, agg)
	}

	window := 2 * workers
	if window < 4 {
		window = 4
	}
	// sem tokens bound claimed-but-uncommitted chunks; done's capacity
	// matches, so a worker's send never blocks and abort can't strand a
	// result.
	sem := make(chan struct{}, window)
	done := make(chan chunkOutcome, window)
	abort := make(chan struct{})
	var next atomic.Int64
	next.Store(start)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			for {
				select {
				case <-abort:
					return
				case sem <- struct{}{}:
				}
				i := next.Add(1) - 1
				if i >= n {
					<-sem // hand the token back: nothing was claimed
					return
				}
				out := chunkOutcome{idx: i}
				out.res, out.err = r.scoreChunk(ws, i)
				select {
				case done <- out:
				case <-abort:
					return
				}
			}
		}(newWorkerState(r.engines[w], r.man.Features, r.cfg.Batch))
	}
	defer func() {
		close(abort)
		wg.Wait()
	}()

	// Committer: fold strictly in chunk-index order.
	pending := make(map[int64]chunkOutcome, window)
	committed := start
	sinceCkpt := 0
	for committed < n {
		out := <-done
		pending[out.idx] = out
		for {
			o, ok := pending[committed]
			if !ok {
				break
			}
			delete(pending, committed)
			if o.err != nil {
				return fmt.Errorf("score: chunk %d (%s): %w", o.idx, r.man.Chunks[o.idx].File, o.err)
			}
			agg.fold(&o.res)
			if !r.cfg.DiscardChunkResults {
				res.Chunks = append(res.Chunks, o.res)
			}
			if r.cfg.Results != nil {
				if err := r.cfg.Results.Append(&o.res); err != nil {
					return fmt.Errorf("score: appending result for chunk %d: %w", o.idx, err)
				}
			}
			if r.cfg.OnChunk != nil {
				if err := r.cfg.OnChunk(&o.res); err != nil {
					return fmt.Errorf("score: chunk callback at %d: %w", o.idx, err)
				}
			}
			committed++
			sinceCkpt++
			<-sem
			if r.cfg.CursorDir != "" && sinceCkpt >= r.cfg.CheckpointEvery && committed < n {
				if err := r.checkpoint(committed, agg); err != nil {
					return err
				}
				sinceCkpt = 0
			}
		}
	}
	return r.finalize(committed, agg)
}

// checkpoint durably records progress: the result log is synced first,
// then the cursor naming its offset is atomically written — the
// write-ahead order that lets resume truncate instead of guess.
func (r *runner) checkpoint(committed int64, agg *Aggregate) error {
	cur := &Cursor{ManifestChecksum: r.manChecksum, Committed: committed, Agg: agg}
	if r.cfg.Results != nil {
		if err := r.cfg.Results.Sync(); err != nil {
			return fmt.Errorf("score: syncing result log: %w", err)
		}
		cur.ResultBytes = r.cfg.Results.Offset()
	}
	if _, err := SaveCursor(r.cfg.CursorDir, cur); err != nil {
		return fmt.Errorf("score: saving cursor: %w", err)
	}
	return PruneCursors(r.cfg.CursorDir, r.cfg.KeepCursors)
}

func (r *runner) finalize(committed int64, agg *Aggregate) error {
	if r.cfg.Results != nil {
		if err := r.cfg.Results.Sync(); err != nil {
			return fmt.Errorf("score: syncing result log: %w", err)
		}
	}
	if r.cfg.CursorDir == "" {
		return nil
	}
	return r.checkpointFinal(committed, agg)
}

func (r *runner) checkpointFinal(committed int64, agg *Aggregate) error {
	cur := &Cursor{ManifestChecksum: r.manChecksum, Committed: committed, Agg: agg}
	if r.cfg.Results != nil {
		cur.ResultBytes = r.cfg.Results.Offset()
	}
	if _, err := SaveCursor(r.cfg.CursorDir, cur); err != nil {
		return fmt.Errorf("score: saving final cursor: %w", err)
	}
	return PruneCursors(r.cfg.CursorDir, r.cfg.KeepCursors)
}

// workerState is one worker's reusable compute state: a private compiled
// engine and a packing buffer, so the steady-state forward stage
// allocates nothing per batch.
type workerState struct {
	eng *nn.Engine
	in  *tensor.Matrix
}

func newWorkerState(eng *nn.Engine, features, batch int) *workerState {
	return &workerState{eng: eng, in: tensor.NewMatrix(features, batch)}
}

// scoreChunk runs the full per-chunk pipeline: read + verify, simulated
// I/O billing, real decode, engine forward over fixed batches, QoI
// reduction in fixed sample order, and the certified accounting. It
// touches no shared mutable state — determinism needs no locks.
func (r *runner) scoreChunk(ws *workerState, idx int64) (ChunkResult, error) {
	c := r.man.Chunks[idx]
	cr := ChunkResult{Index: idx, File: c.File}
	r.acct.account(c, &cr)

	fail := func(stage string, err error) (ChunkResult, error) {
		if r.cfg.SkipCorrupt {
			cr.Skipped = true
			cr.Detail = fmt.Sprintf("%s: %v", stage, err)
			cr.Samples = 0
			cr.Sum, cr.Min, cr.Max = nil, nil, nil
			return cr, nil
		}
		return cr, fmt.Errorf("%s: %w", stage, err)
	}

	raw, err := os.ReadFile(filepath.Join(r.cfg.Dir, c.File))
	if err != nil {
		return fail("read", err)
	}

	// Bill the simulated storage read. With a fault profile attached the
	// draws come from a per-chunk stream (profile seed mixed with the
	// chunk index), so billing is independent of which worker ran when.
	st := r.chunkStorage(idx)
	readTime, retries, err := st.ReadTimeRetries(int64(len(raw)))
	cr.SimRead = readTime
	cr.Retries = retries
	if err != nil {
		return fail("storage", err)
	}

	data, err := DecodeChunk(r.man, c, raw)
	if err != nil {
		return fail("decode", err)
	}
	cr.StoredBytes = int64(len(raw))
	cr.RawBytes = int64(len(data) * 8)
	decodeTime, err := r.cfg.Decode.DecodeTime(r.man.Codec, cr.StoredBytes, cr.RawBytes)
	if err != nil {
		return cr, fmt.Errorf("decode billing: %w", err)
	}
	cr.SimDecode = decodeTime

	// Forward + QoI reduction over fixed batches in sample order.
	outDim := ws.eng.OutputDim()
	cr.Samples = c.Samples
	cr.Sum = make([]float64, outDim)
	cr.Min = make([]float64, outDim)
	cr.Max = make([]float64, outDim)
	forwardChunk(ws, data, r.man.Features, c.Samples, r.cfg.Batch, cr.Sum, cr.Min, cr.Max)
	cr.SimExec = r.execBilling(c.Samples)
	return cr, nil
}

// chunkStorage returns the storage to bill chunk idx with: the shared
// reliable storage as-is, or a per-chunk shallow copy whose fault stream
// is seeded from the profile's stream seed mixed with the chunk index.
func (r *runner) chunkStorage(idx int64) *hpcio.Storage {
	st := r.cfg.Storage
	if st.Faults == nil || st.Faults.Stream == nil {
		return st
	}
	seed, _ := st.Faults.Stream.State()
	mixed := (seed ^ uint64(idx+1)) * 0x9e3779b97f4a7c15
	cp := *st
	faults := *st.Faults
	faults.Stream = detrand.New(mixed)
	cp.Faults = &faults
	return &cp
}

// execBilling prices the chunk's forward passes on the simulated device:
// full batches at Batch samples plus one remainder batch.
func (r *runner) execBilling(samples int) time.Duration {
	full := samples / r.cfg.Batch
	rem := samples % r.cfg.Batch
	var total time.Duration
	if full > 0 {
		dt, _ := gpusim.ExecCost(r.serving, r.cfg.Device, r.cfg.Format, r.cfg.Batch)
		total += time.Duration(full) * dt
	}
	if rem > 0 {
		dt, _ := gpusim.ExecCost(r.serving, r.cfg.Device, r.cfg.Format, rem)
		total += dt
	}
	return total
}

// forwardChunk streams a decoded feature-major chunk (features x samples)
// through the worker's engine in batches of batch columns, reducing
// per-output sums and min/max in fixed sample order into the provided
// slices. Steady state it allocates nothing: the packing buffer and the
// engine arena are reused across batches and chunks.
func forwardChunk(ws *workerState, data []float64, features, samples, batch int, sum, min, max []float64) {
	for f := range sum {
		sum[f] = 0
		min[f] = math.Inf(1)
		max[f] = math.Inf(-1)
	}
	for lo := 0; lo < samples; lo += batch {
		hi := lo + batch
		if hi > samples {
			hi = samples
		}
		cols := hi - lo
		ws.in = tensor.EnsureMatrix(ws.in, features, cols)
		for f := 0; f < features; f++ {
			copy(ws.in.Data[f*cols:(f+1)*cols], data[f*samples+lo:f*samples+hi])
		}
		out := ws.eng.Forward(ws.in)
		for f := 0; f < out.Rows; f++ {
			row := out.Data[f*cols : (f+1)*cols]
			for _, v := range row {
				sum[f] += v
				if v < min[f] {
					min[f] = v
				}
				if v > max[f] {
					max[f] = v
				}
			}
		}
	}
}
