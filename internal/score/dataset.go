package score

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/integrity"
)

// DatasetConfig configures WriteDataset.
type DatasetConfig struct {
	// Codec is the compress codec name ("sz", "zfp", "mgard").
	Codec string
	// Mode and Tol are the codec error mode and tolerance.
	Mode compress.Mode
	Tol  float64
	// ChunkSamples is the number of samples per chunk (default 256; the
	// final chunk may be smaller).
	ChunkSamples int
}

// WriteDataset splits a feature-major field (features x samples, sample
// c of feature f at field[f*samples+c]) into chunks of ChunkSamples
// samples, compresses each chunk under the configured bound, writes the
// chunk files plus a checksummed manifest into dir, and returns the
// manifest. Each chunk's *achieved* reconstruction error is measured
// against the original data (by really decoding the blob just written)
// and certified into the manifest — scoring later feeds that measured
// error, not the requested tolerance, through Inequality (3).
//
//errprop:deterministic chunk bytes and manifest are a pure function of (field, config)
func WriteDataset(dir string, field []float64, features int, cfg DatasetConfig) (*Manifest, error) {
	if features <= 0 {
		return nil, fmt.Errorf("score: dataset features %d must be positive", features)
	}
	if len(field) == 0 || len(field)%features != 0 {
		return nil, fmt.Errorf("score: dataset field length %d not a positive multiple of features %d", len(field), features)
	}
	if cfg.ChunkSamples == 0 {
		cfg.ChunkSamples = 256
	}
	if cfg.ChunkSamples < 0 {
		return nil, fmt.Errorf("score: dataset chunk samples %d must be positive", cfg.ChunkSamples)
	}
	samples := len(field) / features
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manifest{Codec: cfg.Codec, Mode: cfg.Mode, Tol: cfg.Tol, Features: features}
	buf := make([]float64, 0, features*cfg.ChunkSamples)
	for lo := 0; lo < samples; lo += cfg.ChunkSamples {
		hi := lo + cfg.ChunkSamples
		if hi > samples {
			hi = samples
		}
		cols := hi - lo
		// Gather the column range into a contiguous feature-major block.
		buf = buf[:0]
		for f := 0; f < features; f++ {
			buf = append(buf, field[f*samples+lo:f*samples+hi]...)
		}
		blob, err := compress.Encode(cfg.Codec, buf, []int{features, cols}, cfg.Mode, cfg.Tol)
		if err != nil {
			return nil, fmt.Errorf("score: dataset chunk %d: %w", len(m.Chunks), err)
		}
		// Certify the achieved error: decode what was just encoded and
		// measure against the original block.
		recon, _, err := compress.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("score: dataset chunk %d: verify decode: %w", len(m.Chunks), err)
		}
		linf, l2 := compress.MeasureError(buf, recon)
		name := fmt.Sprintf("chunk-%06d.blob", len(m.Chunks))
		if err := atomicWrite(filepath.Join(dir, name), blob); err != nil {
			return nil, fmt.Errorf("score: dataset chunk %d: %w", len(m.Chunks), err)
		}
		m.Chunks = append(m.Chunks, Chunk{
			File:         name,
			Bytes:        int64(len(blob)),
			Checksum:     integrity.Checksum(blob),
			Samples:      cols,
			AchievedLinf: linf,
			AchievedL2:   l2,
		})
	}
	if err := WriteManifestFile(filepath.Join(dir, ManifestName), m); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeChunk verifies one chunk's raw file bytes against its manifest
// entry and decodes it: size and CRC32C first, then the container's own
// checksums, then the structural cross-checks (codec, feature dimension,
// sample count) that bind the decoded data back to the manifest. Any
// mismatch is a typed integrity error; a nil error certifies the
// returned block is exactly the features x samples block the manifest
// describes.
//
//errprop:deterministic reconstruction depends only on (entry, bytes)
func DecodeChunk(m *Manifest, c Chunk, raw []byte) ([]float64, error) {
	if int64(len(raw)) < c.Bytes {
		return nil, fmt.Errorf("score: chunk %s: %w: %d of %d manifest bytes", c.File, ErrTruncated, len(raw), c.Bytes)
	}
	if int64(len(raw)) != c.Bytes {
		return nil, fmt.Errorf("score: chunk %s: %w: %d bytes, manifest says %d", c.File, ErrCorrupt, len(raw), c.Bytes)
	}
	if got := integrity.Checksum(raw); got != c.Checksum {
		return nil, fmt.Errorf("score: chunk %s: %w: checksum %08x != manifest %08x", c.File, ErrCorrupt, got, c.Checksum)
	}
	data, blob, err := compress.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("score: chunk %s: %w", c.File, err)
	}
	if blob.CodecName != m.Codec {
		return nil, fmt.Errorf("score: chunk %s: %w: codec %q != manifest %q", c.File, ErrCorrupt, blob.CodecName, m.Codec)
	}
	if len(blob.Dims) == 0 || blob.Dims[0] != m.Features {
		return nil, fmt.Errorf("score: chunk %s: %w: feature dim %v != manifest %d", c.File, ErrCorrupt, blob.Dims, m.Features)
	}
	if len(data) != m.Features*c.Samples {
		return nil, fmt.Errorf("score: chunk %s: %w: %d values, manifest says %d x %d", c.File, ErrCorrupt, len(data), m.Features, c.Samples)
	}
	return data, nil
}
