package detrand

import "testing"

func TestResumeContinuesBitIdentically(t *testing.T) {
	ref := New(42)
	var refVals []uint64
	for i := 0; i < 100; i++ {
		refVals = append(refVals, ref.Uint64())
	}

	// Draw 37 values, capture, resume, and compare the tail.
	s := New(42)
	for i := 0; i < 37; i++ {
		s.Uint64()
	}
	seed, count := s.State()
	if seed != 42 || count != 37 {
		t.Fatalf("State = (%d, %d), want (42, 37)", seed, count)
	}
	r := Resume(seed, count)
	for i := 37; i < 100; i++ {
		if got := r.Uint64(); got != refVals[i] {
			t.Fatalf("resumed draw %d = %d, want %d", i, got, refVals[i])
		}
	}
}

func TestSeedsIndependent(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 64 draws", same)
	}
}

func TestIntnBoundsAndCoverage(t *testing.T) {
	s := New(7)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(10) never produced %d in 1000 draws", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	s.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	var sum float64
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(3)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
	// Determinism: same seed, same permutation.
	q := New(3).Perm(100)
	for i := range p {
		if p[i] != q[i] {
			t.Fatalf("Perm not deterministic at %d: %d vs %d", i, p[i], q[i])
		}
	}
}
