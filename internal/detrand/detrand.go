// Package detrand provides a deterministic, serializable random stream
// for the fault-tolerant training and fault-injection paths.
//
// The repo's checkpoint/resume guarantee is *bit identity*: a training run
// killed at step k and resumed must produce exactly the weight trajectory
// of an uninterrupted run. math/rand cannot support that — its generator
// state is unexported, so a checkpoint cannot record "where the stream
// was". A Stream's full state is two uint64s (seed and draw count), its
// position is restorable in O(1), and its output is a pure function of
// (seed, count), so two processes resuming from the same checkpoint draw
// identical values forever after.
//
// The generator is SplitMix64 (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014): a counter-based mix with
// full 2^64 period, which is exactly what makes the position serializable
// as a plain count.
package detrand

import "fmt"

// golden is the SplitMix64 increment (2^64 / phi, odd).
const golden = 0x9e3779b97f4a7c15

// Stream is a seeded random stream whose position can be captured and
// restored exactly. The zero value is a valid stream with seed 0; use
// New for an explicit seed. Not safe for concurrent use.
type Stream struct {
	seed  uint64
	count uint64
}

// New returns a stream over the given seed, positioned at its start.
func New(seed uint64) *Stream {
	return &Stream{seed: seed}
}

// Resume reconstructs a stream from a captured (seed, count) state: the
// next draw is the count-th value of seed's sequence, exactly as if the
// original stream had continued.
func Resume(seed, count uint64) *Stream {
	return &Stream{seed: seed, count: count}
}

// State captures the stream's full state. Resume(State()) continues the
// sequence bit-identically.
func (s *Stream) State() (seed, count uint64) {
	return s.seed, s.count
}

// Restore rewinds or fast-forwards the stream in place to a previously
// captured state — the checkpoint path restores the training RNG this
// way so a resumed run draws the exact values the killed run would have.
func (s *Stream) Restore(seed, count uint64) {
	s.seed, s.count = seed, count
}

// Uint64 draws the next value. SplitMix64 is counter-based: value i of a
// seed's sequence mixes seed + (i+1)*golden, so position restore is O(1).
func (s *Stream) Uint64() uint64 {
	s.count++
	z := s.seed + s.count*golden
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn draws a uniform int in [0, n). Panics if n <= 0. The modulo bias
// is rejected, so the distribution is exact for every n.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("detrand: Intn(%d), want n > 0", n))
	}
	un := uint64(n)
	// Rejection sampling over the largest multiple of n that fits.
	max := (^uint64(0) / un) * un
	for {
		v := s.Uint64()
		if v < max {
			return int(v % un)
		}
	}
}

// Float64 draws a uniform float64 in [0, 1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements via swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}
