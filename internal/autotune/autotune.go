// Package autotune implements the optimization step the paper leaves as
// future work: "an optimization algorithm to automate the determination
// of the optimal strategy" for splitting a QoI tolerance between
// quantization and compression. It searches candidate allocation
// fractions, predicts each configuration's end-to-end throughput from a
// *sampled* compression-ratio estimate plus the storage and roofline
// models, and returns the fastest configuration whose predicted bound
// meets the tolerance.
package autotune

import (
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/gpusim"
	"github.com/scidata/errprop/internal/hpcio"
	"github.com/scidata/errprop/internal/nn"
)

// Options configures the search.
type Options struct {
	// Tol is the total QoI tolerance (absolute, in Norm).
	Tol float64
	// Norm states the tolerance norm.
	Norm core.Norm
	// Codec names the compression backend.
	Codec string
	// Fractions are the candidate quantization allocations (default
	// 0.05..0.95 in steps of 0.15).
	Fractions []float64
	// SampleFrac is the ratio-estimation sample size (default 0.1).
	SampleFrac float64
	// Device, Storage, Decode: simulation models (defaults as in
	// internal/pipeline).
	Device  *gpusim.Device
	Storage *hpcio.Storage
	Decode  hpcio.DecodeModel
	// Batch is the execution batch size (default 256).
	Batch int
	// Conservative routes the compression budget through sigma~.
	Conservative bool
}

func (o *Options) fillDefaults() {
	if o.Fractions == nil {
		o.Fractions = []float64{0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95}
	}
	if o.SampleFrac == 0 {
		o.SampleFrac = 0.1
	}
	if o.Device == nil {
		o.Device = gpusim.RTX3080Ti
	}
	if o.Storage == nil {
		o.Storage = hpcio.DefaultStorage()
	}
	if o.Decode == nil {
		o.Decode = hpcio.DefaultDecodeModel()
	}
	if o.Batch == 0 {
		o.Batch = 256
	}
}

// Choice is one evaluated configuration.
type Choice struct {
	Fraction float64
	Plan     *core.Plan
	// EstRatio is the sampled compression-ratio estimate (1 if the plan
	// leaves the data uncompressed).
	EstRatio float64
	// Predicted phase and total throughputs, bytes of scientific data/s.
	PredIO, PredExec, PredTotal float64
}

// Result is the search outcome: the best choice plus every candidate
// evaluated (for reporting).
type Result struct {
	Best       *Choice
	Candidates []Choice
}

// Optimize searches the allocation fractions for the configuration with
// the highest predicted end-to-end throughput on the given input block.
func Optimize(net *nn.Network, field []float64, dims []int, opt Options) (*Result, error) {
	opt.fillDefaults()
	if opt.Tol <= 0 || math.IsNaN(opt.Tol) {
		return nil, fmt.Errorf("autotune: invalid tolerance %v", opt.Tol)
	}
	if _, err := compress.ByName(opt.Codec); err != nil {
		return nil, err
	}
	root, err := core.FromNetwork(net)
	if err != nil {
		return nil, err
	}
	rawBytes := float64(len(field) * 8)

	var res Result
	for _, frac := range opt.Fractions {
		plan, err := core.PlanGraph(root, core.PlanRequest{
			Tol: opt.Tol, Norm: opt.Norm, QuantFraction: frac, Conservative: opt.Conservative})
		if err != nil {
			return nil, err
		}
		c := Choice{Fraction: frac, Plan: plan, EstRatio: 1}

		// Predict the I/O phase from a sampled ratio estimate.
		mode, inputTol := compress.AbsLinf, plan.InputTolLinf
		if opt.Norm == core.NormL2 {
			mode, inputTol = compress.L2, plan.InputTolL2
		}
		uncompressed := math.IsInf(inputTol, 0)
		var stored int64
		if uncompressed {
			stored = int64(rawBytes)
		} else {
			stored, err = compress.EstimateStoredBytes(opt.Codec, field, dims, mode, inputTol, opt.SampleFrac)
			if err != nil {
				return nil, err
			}
			c.EstRatio = rawBytes / float64(stored)
		}
		readT, err := opt.Storage.ReadTime(stored)
		if err != nil {
			return nil, err
		}
		decT, err := opt.Decode.DecodeTime(opt.Codec, stored, int64(rawBytes))
		if err != nil {
			return nil, err
		}
		if uncompressed {
			decT = 0 // uncompressed path skips decode
		}
		c.PredIO = rawBytes / (readT + decT).Seconds()
		c.PredExec = gpusim.Throughput(net, opt.Device, plan.Format, opt.Batch)
		c.PredTotal = math.Min(c.PredIO, c.PredExec)
		res.Candidates = append(res.Candidates, c)
		if res.Best == nil || c.PredTotal > res.Best.PredTotal {
			best := c
			res.Best = &best
		}
	}
	return &res, nil
}
