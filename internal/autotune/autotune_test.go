package autotune

import (
	"math"
	"testing"

	_ "github.com/scidata/errprop/internal/compress/mgard"
	_ "github.com/scidata/errprop/internal/compress/sz"
	_ "github.com/scidata/errprop/internal/compress/zfp"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/dataset"
	"github.com/scidata/errprop/internal/nn"
)

func tunedNet(t testing.TB) (*nn.Network, *dataset.Regression) {
	t.Helper()
	d := dataset.H2Combustion(48, 21)
	spec := nn.MLPSpec("m", []int{9, 50, 50, 9}, nn.ActTanh, true)
	net, err := spec.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	net.RefreshSigmas()
	return net, d
}

func TestOptimizeFindsBest(t *testing.T) {
	net, d := tunedNet(t)
	res, err := Optimize(net, d.FieldData(), d.FieldDims, Options{
		Tol: 1e-2, Norm: core.NormLinf, Codec: "sz"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || len(res.Candidates) != 7 {
		t.Fatalf("result malformed: %+v", res)
	}
	for _, c := range res.Candidates {
		if c.PredTotal > res.Best.PredTotal {
			t.Fatalf("candidate %v beats reported best %v", c.PredTotal, res.Best.PredTotal)
		}
		if c.Plan.TotalBound > 1e-2*(1+1e-9) {
			t.Fatalf("candidate at frac %v violates tolerance: %v", c.Fraction, c.Plan.TotalBound)
		}
		if c.PredIO <= 0 || c.PredExec <= 0 {
			t.Fatalf("degenerate prediction: %+v", c)
		}
	}
}

func TestOptimizeTighterToleranceSlower(t *testing.T) {
	net, d := tunedNet(t)
	loose, err := Optimize(net, d.FieldData(), d.FieldDims, Options{
		Tol: 1e-1, Norm: core.NormLinf, Codec: "sz"})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Optimize(net, d.FieldData(), d.FieldDims, Options{
		Tol: 1e-6, Norm: core.NormLinf, Codec: "sz"})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Best.PredTotal > loose.Best.PredTotal*(1+1e-9) {
		t.Fatalf("tighter tolerance predicted faster: %v vs %v",
			tight.Best.PredTotal, loose.Best.PredTotal)
	}
}

func TestOptimizeL2(t *testing.T) {
	net, d := tunedNet(t)
	res, err := Optimize(net, d.FieldData(), d.FieldDims, Options{
		Tol: 1e-3, Norm: core.NormL2, Codec: "mgard"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.EstRatio < 1 {
		t.Fatalf("estimated ratio %v < 1", res.Best.EstRatio)
	}
}

func TestOptimizeValidation(t *testing.T) {
	net, d := tunedNet(t)
	if _, err := Optimize(net, d.FieldData(), d.FieldDims, Options{
		Tol: 0, Norm: core.NormLinf, Codec: "sz"}); err == nil {
		t.Fatal("zero tolerance should error")
	}
	if _, err := Optimize(net, d.FieldData(), d.FieldDims, Options{
		Tol: math.NaN(), Norm: core.NormLinf, Codec: "sz"}); err == nil {
		t.Fatal("NaN tolerance should error")
	}
	if _, err := Optimize(net, d.FieldData(), d.FieldDims, Options{
		Tol: 1e-3, Norm: core.NormLinf, Codec: "nope"}); err == nil {
		t.Fatal("unknown codec should error")
	}
}
