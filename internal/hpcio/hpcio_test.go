package hpcio

import (
	"math"
	"testing"
	"time"

	"github.com/scidata/errprop/internal/compress"
	_ "github.com/scidata/errprop/internal/compress/mgard"
	_ "github.com/scidata/errprop/internal/compress/sz"
	_ "github.com/scidata/errprop/internal/compress/zfp"
)

func smoothField(n int) []float64 {
	data := make([]float64, n)
	for i := range data {
		x := float64(i) / float64(n)
		data[i] = math.Sin(9*x) + 0.3*math.Cos(31*x)
	}
	return data
}

func TestReadTimeLinear(t *testing.T) {
	st := &Storage{Bandwidth: 1e9, Latency: time.Millisecond}
	a := st.ReadTime(1e9)
	if got := a - time.Millisecond; got < 999*time.Millisecond || got > 1001*time.Millisecond {
		t.Fatalf("1GB at 1GB/s = %v", got)
	}
	if st.ReadTime(0) != time.Millisecond {
		t.Fatal("zero-byte read should cost exactly the latency")
	}
}

func TestDecodeModelErrors(t *testing.T) {
	dm := DefaultDecodeModel()
	if _, err := dm.DecodeTime("lz4", 10, 100); err == nil {
		t.Fatal("unknown codec should error")
	}
	if _, err := dm.DecodeTime("sz", 10, 100); err != nil {
		t.Fatal(err)
	}
}

func TestReadRawBaselineThroughput(t *testing.T) {
	st := DefaultStorage()
	res := ReadRaw(st, 1<<22) // 32 MiB
	// Raw throughput approaches the 2.8 GB/s bandwidth (latency shaves a
	// little off).
	if res.Throughput > st.Bandwidth || res.Throughput < 0.9*st.Bandwidth {
		t.Fatalf("raw throughput %v not near bandwidth %v", res.Throughput, st.Bandwidth)
	}
}

func TestCompressedReadBeatsRawAtLooseTolerance(t *testing.T) {
	data := smoothField(1 << 18)
	st := DefaultStorage()
	dm := DefaultDecodeModel()
	raw := ReadRaw(st, len(data))
	for _, codec := range []string{"sz", "zfp"} {
		blob, err := compress.Encode(codec, data, []int{len(data)}, compress.AbsLinf, 1e-2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ReadCompressed(st, dm, blob)
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput <= raw.Throughput {
			t.Fatalf("%s at loose tolerance: throughput %.2e <= raw %.2e (ratio %.1f)",
				codec, res.Throughput, raw.Throughput, res.Ratio)
		}
	}
}

func TestSZDipsBelowBaselineAtTightTolerance(t *testing.T) {
	// The Fig. 7 shape: at stringent tolerances SZ's decode time drags
	// effective throughput below the raw baseline, while ZFP stays at
	// least close to flat.
	data := smoothField(1 << 18)
	st := DefaultStorage()
	dm := DefaultDecodeModel()
	raw := ReadRaw(st, len(data))

	blobSZ, err := compress.Encode("sz", data, []int{len(data)}, compress.AbsLinf, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	resSZ, err := ReadCompressed(st, dm, blobSZ)
	if err != nil {
		t.Fatal(err)
	}
	if resSZ.Throughput >= raw.Throughput {
		t.Fatalf("SZ at 1e-12 should dip below baseline: %.2e vs %.2e", resSZ.Throughput, raw.Throughput)
	}

	blobZFP, err := compress.Encode("zfp", data, []int{len(data)}, compress.AbsLinf, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	resZFP, err := ReadCompressed(st, dm, blobZFP)
	if err != nil {
		t.Fatal(err)
	}
	if resZFP.Throughput <= resSZ.Throughput {
		t.Fatalf("ZFP should beat SZ at tight tolerance: %.2e vs %.2e", resZFP.Throughput, resSZ.Throughput)
	}
}

func TestReadCompressedRoundTripsData(t *testing.T) {
	data := smoothField(4096)
	blob, err := compress.Encode("mgard", data, []int{4096}, compress.AbsLinf, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReadCompressed(DefaultStorage(), DefaultDecodeModel(), blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != len(data) {
		t.Fatalf("length %d != %d", len(res.Data), len(data))
	}
	linf, _ := compress.MeasureError(data, res.Data)
	if linf > 1e-4 {
		t.Fatalf("reconstruction error %v", linf)
	}
	if res.Ratio <= 1 {
		t.Fatalf("ratio %v", res.Ratio)
	}
}

func TestReadCompressedGarbage(t *testing.T) {
	if _, err := ReadCompressed(DefaultStorage(), DefaultDecodeModel(), []byte{1, 2, 3}); err == nil {
		t.Fatal("garbage blob should error")
	}
}

func TestNegativeReadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size should panic")
		}
	}()
	DefaultStorage().ReadTime(-1)
}
