package hpcio

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/scidata/errprop/internal/compress"
	_ "github.com/scidata/errprop/internal/compress/mgard"
	_ "github.com/scidata/errprop/internal/compress/sz"
	_ "github.com/scidata/errprop/internal/compress/zfp"
	"github.com/scidata/errprop/internal/detrand"
)

func smoothField(n int) []float64 {
	data := make([]float64, n)
	for i := range data {
		x := float64(i) / float64(n)
		data[i] = math.Sin(9*x) + 0.3*math.Cos(31*x)
	}
	return data
}

func TestReadTimeLinear(t *testing.T) {
	st := &Storage{Bandwidth: 1e9, Latency: time.Millisecond}
	a, err := st.ReadTime(1e9)
	if err != nil {
		t.Fatal(err)
	}
	if got := a - time.Millisecond; got < 999*time.Millisecond || got > 1001*time.Millisecond {
		t.Fatalf("1GB at 1GB/s = %v", got)
	}
	if z, err := st.ReadTime(0); err != nil || z != time.Millisecond {
		t.Fatalf("zero-byte read = (%v, %v), should cost exactly the latency", z, err)
	}
}

func TestDecodeModelErrors(t *testing.T) {
	dm := DefaultDecodeModel()
	if _, err := dm.DecodeTime("lz4", 10, 100); err == nil {
		t.Fatal("unknown codec should error")
	}
	if _, err := dm.DecodeTime("sz", 10, 100); err != nil {
		t.Fatal(err)
	}
}

func TestReadRawBaselineThroughput(t *testing.T) {
	st := DefaultStorage()
	res, err := ReadRaw(st, 1<<22) // 32 MiB
	if err != nil {
		t.Fatal(err)
	}
	// Raw throughput approaches the 2.8 GB/s bandwidth (latency shaves a
	// little off).
	if res.Throughput > st.Bandwidth || res.Throughput < 0.9*st.Bandwidth {
		t.Fatalf("raw throughput %v not near bandwidth %v", res.Throughput, st.Bandwidth)
	}
}

func TestCompressedReadBeatsRawAtLooseTolerance(t *testing.T) {
	data := smoothField(1 << 18)
	st := DefaultStorage()
	dm := DefaultDecodeModel()
	raw, err := ReadRaw(st, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, codec := range []string{"sz", "zfp"} {
		blob, err := compress.Encode(codec, data, []int{len(data)}, compress.AbsLinf, 1e-2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ReadCompressed(st, dm, blob)
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput <= raw.Throughput {
			t.Fatalf("%s at loose tolerance: throughput %.2e <= raw %.2e (ratio %.1f)",
				codec, res.Throughput, raw.Throughput, res.Ratio)
		}
	}
}

func TestSZDipsBelowBaselineAtTightTolerance(t *testing.T) {
	// The Fig. 7 shape: at stringent tolerances SZ's decode time drags
	// effective throughput below the raw baseline, while ZFP stays at
	// least close to flat.
	data := smoothField(1 << 18)
	st := DefaultStorage()
	dm := DefaultDecodeModel()
	raw, err := ReadRaw(st, len(data))
	if err != nil {
		t.Fatal(err)
	}

	blobSZ, err := compress.Encode("sz", data, []int{len(data)}, compress.AbsLinf, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	resSZ, err := ReadCompressed(st, dm, blobSZ)
	if err != nil {
		t.Fatal(err)
	}
	if resSZ.Throughput >= raw.Throughput {
		t.Fatalf("SZ at 1e-12 should dip below baseline: %.2e vs %.2e", resSZ.Throughput, raw.Throughput)
	}

	blobZFP, err := compress.Encode("zfp", data, []int{len(data)}, compress.AbsLinf, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	resZFP, err := ReadCompressed(st, dm, blobZFP)
	if err != nil {
		t.Fatal(err)
	}
	if resZFP.Throughput <= resSZ.Throughput {
		t.Fatalf("ZFP should beat SZ at tight tolerance: %.2e vs %.2e", resZFP.Throughput, resSZ.Throughput)
	}
}

func TestReadCompressedRoundTripsData(t *testing.T) {
	data := smoothField(4096)
	blob, err := compress.Encode("mgard", data, []int{4096}, compress.AbsLinf, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReadCompressed(DefaultStorage(), DefaultDecodeModel(), blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != len(data) {
		t.Fatalf("length %d != %d", len(res.Data), len(data))
	}
	linf, _ := compress.MeasureError(data, res.Data)
	if linf > 1e-4 {
		t.Fatalf("reconstruction error %v", linf)
	}
	if res.Ratio <= 1 {
		t.Fatalf("ratio %v", res.Ratio)
	}
}

func TestReadCompressedGarbage(t *testing.T) {
	if _, err := ReadCompressed(DefaultStorage(), DefaultDecodeModel(), []byte{1, 2, 3}); err == nil {
		t.Fatal("garbage blob should error")
	}
}

// TestNegativeReadTypedError: a negative size is a caller bug reported
// as a typed error, not a panic that kills a whole pipeline sweep.
func TestNegativeReadTypedError(t *testing.T) {
	if _, err := DefaultStorage().ReadTime(-1); !errors.Is(err, ErrNegativeSize) {
		t.Fatalf("ReadTime(-1) = %v, want ErrNegativeSize", err)
	}
	if _, err := ReadRaw(DefaultStorage(), -7); !errors.Is(err, ErrNegativeSize) {
		t.Fatalf("ReadRaw(-7) = %v, want ErrNegativeSize", err)
	}
}

// flakyStorage returns a storage with the given per-attempt failure
// probability on a fixed seed.
func flakyStorage(prob float64, retries int) *Storage {
	st := DefaultStorage()
	st.Faults = &TransientFaults{
		Stream:     detrand.New(99),
		FailProb:   prob,
		MaxRetries: retries,
		Backoff:    2 * time.Millisecond,
	}
	return st
}

// TestTransientFaultsRetrySucceeds: with a moderate failure rate, reads
// succeed through the bounded retry loop and the retries show up as
// added *simulated* time, not as errors.
func TestTransientFaultsRetrySucceeds(t *testing.T) {
	reliable, err := DefaultStorage().ReadTime(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	st := flakyStorage(0.3, 10)
	reads, retried := 200, 0
	for i := 0; i < reads; i++ {
		d, err := st.ReadTime(1 << 20)
		if err != nil {
			t.Fatalf("read %d: retry budget of 10 should absorb p=0.3 faults: %v", i, err)
		}
		if d > reliable {
			retried++
			// Each retry adds at least latency + backoff to the simulated
			// read.
			if d < reliable+st.Latency+st.Faults.Backoff {
				t.Fatalf("read %d: retried read time %v implausibly close to reliable %v", i, d, reliable)
			}
		}
	}
	if retried == 0 {
		t.Fatal("no read was ever retried at p=0.3 — fault injection inert")
	}
}

// TestTransientFaultsExhaustRetries: at certain failure, the bounded
// retry budget exhausts into a typed error.
func TestTransientFaultsExhaustRetries(t *testing.T) {
	st := flakyStorage(1.0, 3)
	d, err := st.ReadTime(1 << 20)
	if !errors.Is(err, ErrReadFailed) {
		t.Fatalf("p=1.0 read = %v, want ErrReadFailed", err)
	}
	// The failed attempts still cost simulated time (4 attempts: latency
	// each, plus 2+4+8+16 ms backoff).
	wantMin := 4*st.Latency + 30*time.Millisecond
	if d < wantMin {
		t.Fatalf("failed read billed %v of simulated time, want >= %v", d, wantMin)
	}
	// ReadRaw and ReadCompressed propagate the failure.
	if _, err := ReadRaw(st, 4096); !errors.Is(err, ErrReadFailed) {
		t.Fatalf("ReadRaw on dead storage = %v, want ErrReadFailed", err)
	}
}

// TestTransientFaultsDeterministic: same seed, same fault sequence.
func TestTransientFaultsDeterministic(t *testing.T) {
	run := func() []time.Duration {
		st := flakyStorage(0.4, 4)
		out := make([]time.Duration, 50)
		for i := range out {
			d, err := st.ReadTime(1 << 16)
			if err != nil {
				d = -1
			}
			out[i] = d
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d: %v != %v — fault schedule not reproducible", i, a[i], b[i])
		}
	}
}

// TestReadCompressedReportsRetries: the retry count surfaces on the
// result so experiments can report tail behavior.
func TestReadCompressedReportsRetries(t *testing.T) {
	data := smoothField(4096)
	blob, err := compress.Encode("zfp", data, []int{4096}, compress.AbsLinf, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	st := flakyStorage(0.5, 8)
	sawRetry := false
	for i := 0; i < 20 && !sawRetry; i++ {
		res, err := ReadCompressed(st, DefaultDecodeModel(), blob)
		if err != nil {
			t.Fatal(err)
		}
		sawRetry = res.Retries > 0
	}
	if !sawRetry {
		t.Fatal("20 reads at p=0.5 never reported a retry")
	}
}
