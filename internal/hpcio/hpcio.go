// Package hpcio simulates the HPC storage path of the paper's inference
// pipeline: a Lustre-like parallel filesystem with a fixed sequential
// read bandwidth (the paper's baseline is 2.8 GB/s), plus a calibrated
// decompression cost model for the three codecs.
//
// Compressed sizes are *real* — produced by the actual codecs in
// internal/compress — while read and decode *times* are simulated: we
// have neither the Summit/Frontier filesystems nor the C/C++ codec
// implementations, so decode throughput is calibrated to published
// figures (ZFP decodes several times faster than SZ, which is faster
// than MGARD; see the paper's Fig. 7 discussion and the ZFP R&D-100
// report it cites). This preserves the paper's behaviour shape: at loose
// tolerances compression multiplies effective I/O bandwidth; at stringent
// tolerances SZ/MGARD decode time can push throughput below the raw-read
// baseline while ZFP stays flat.
package hpcio

import (
	"errors"
	"fmt"
	"time"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/detrand"
)

// Typed failures of the simulated storage path.
var (
	// ErrNegativeSize reports a read request for a negative byte count —
	// a caller bug, surfaced as an error instead of a panic so pipeline
	// sweeps degrade gracefully.
	ErrNegativeSize = errors.New("hpcio: negative read size")
	// ErrReadFailed reports that a read's transient failures exhausted
	// the bounded retry budget.
	ErrReadFailed = errors.New("hpcio: transient read failures exhausted retry budget")
)

// TransientFaults makes a Storage unreliable in a deterministic,
// seeded way: each read attempt fails with probability FailProb, drawn
// from Stream, and the storage retries with exponential backoff up to
// MaxRetries times. Failed attempts add their latency and backoff to the
// *simulated* read time (this is a timing model — no wall-clock sleeping
// happens), so fault-tolerance experiments see realistic tail latencies.
type TransientFaults struct {
	// Stream drives the failure draws; it must be non-nil and seeded so
	// runs are reproducible.
	Stream *detrand.Stream
	// FailProb is the per-attempt failure probability in [0, 1).
	FailProb float64
	// MaxRetries bounds how many times a failed attempt is retried
	// (default 3 when a profile is attached).
	MaxRetries int
	// Backoff is the base retry delay, doubled each retry (default 1ms).
	Backoff time.Duration
}

func (tf *TransientFaults) maxRetries() int {
	if tf.MaxRetries <= 0 {
		return 3
	}
	return tf.MaxRetries
}

func (tf *TransientFaults) backoff() time.Duration {
	if tf.Backoff <= 0 {
		return time.Millisecond
	}
	return tf.Backoff
}

// Storage models a parallel filesystem mount.
type Storage struct {
	Name      string
	Bandwidth float64 // sustained read bandwidth, bytes/s
	Latency   time.Duration
	// Faults, when non-nil, makes reads transiently unreliable (see
	// TransientFaults). Nil means perfectly reliable storage.
	Faults *TransientFaults
}

// DefaultStorage is the paper's 2.8 GB/s Lustre baseline.
func DefaultStorage() *Storage {
	return &Storage{Name: "lustre", Bandwidth: 2.8e9, Latency: 500 * time.Microsecond}
}

// ReadTime returns the simulated wall time to read n bytes, including
// any retry and backoff cost from an attached fault profile. It fails
// with ErrNegativeSize for n < 0 and with ErrReadFailed when transient
// faults exhaust the retry budget (the returned duration then covers the
// attempts that were made — callers billing simulated time should count
// it even on failure).
func (s *Storage) ReadTime(n int64) (time.Duration, error) {
	d, _, err := s.readTime(n)
	return d, err
}

// ReadTimeRetries is ReadTime plus the number of transient-failure
// retries the simulated read absorbed, for callers (like the bulk
// scorer) that bill and report retry counts per read.
func (s *Storage) ReadTimeRetries(n int64) (time.Duration, int, error) {
	return s.readTime(n)
}

// readTime is ReadTime plus the number of retries consumed.
func (s *Storage) readTime(n int64) (time.Duration, int, error) {
	if n < 0 {
		return 0, 0, fmt.Errorf("%w: %d bytes", ErrNegativeSize, n)
	}
	attempt := s.Latency + time.Duration(float64(n)/s.Bandwidth*1e9)*time.Nanosecond
	if s.Faults == nil || s.Faults.Stream == nil || s.Faults.FailProb <= 0 {
		return attempt, 0, nil
	}
	tf := s.Faults
	total := time.Duration(0)
	backoff := tf.backoff()
	for try := 0; ; try++ {
		if tf.Stream.Float64() >= tf.FailProb {
			// Attempt succeeds after the full transfer.
			return total + attempt, try, nil
		}
		// A failed attempt stalls for its latency before the error
		// surfaces, then the client backs off before retrying.
		total += s.Latency + backoff
		if try == tf.maxRetries() {
			return total, try, fmt.Errorf("%w: %d attempts on %q", ErrReadFailed, try+1, s.Name)
		}
		backoff *= 2
	}
}

// DecodeRate calibrates one codec's decompression cost: time =
// compressedBytes/CompressedRate + originalBytes/OutputRate. The first
// term models entropy/bit-plane decoding (work proportional to the
// compressed stream), the second the reconstruction pass that writes the
// full-size output. This two-term shape is what lets highly compressed
// data decode *fast* — the effect behind the paper's up-to-10x effective
// I/O throughput — while near-incompressible data at stringent tolerances
// drags below the raw-read baseline for SZ/MGARD.
type DecodeRate struct {
	CompressedRate float64 // bytes of compressed input processed per second
	OutputRate     float64 // bytes of reconstructed output written per second
}

// DecodeModel maps codec names to calibrated decode rates.
type DecodeModel map[string]DecodeRate

// DefaultDecodeModel calibrates the three codecs to published relative
// speeds: ZFP decodes several times faster than SZ, which is faster than
// MGARD (multilevel reconstruction is the most expensive).
func DefaultDecodeModel() DecodeModel {
	return DecodeModel{
		"zfp":   {CompressedRate: 2.5e9, OutputRate: 40e9},
		"sz":    {CompressedRate: 0.35e9, OutputRate: 25e9},
		"mgard": {CompressedRate: 0.25e9, OutputRate: 15e9},
	}
}

// DecodeTime returns the simulated time to decompress storedBytes of
// codec payload expanding to origBytes.
func (m DecodeModel) DecodeTime(codec string, storedBytes, origBytes int64) (time.Duration, error) {
	r, ok := m[codec]
	if !ok || r.CompressedRate <= 0 || r.OutputRate <= 0 {
		return 0, fmt.Errorf("hpcio: no decode rates for codec %q", codec)
	}
	sec := float64(storedBytes)/r.CompressedRate + float64(origBytes)/r.OutputRate
	return time.Duration(sec*1e9) * time.Nanosecond, nil
}

// ReadResult reports one simulated compressed read.
type ReadResult struct {
	Data        []float64
	RawBytes    int64 // uncompressed size
	StoredBytes int64 // compressed size actually "read"
	ReadTime    time.Duration
	DecodeTime  time.Duration
	// Retries counts transient read failures absorbed by the bounded
	// retry loop (0 on reliable storage).
	Retries int
	// Throughput is effective bytes of scientific data delivered per
	// second: RawBytes / (ReadTime + DecodeTime).
	Throughput float64
	Ratio      float64
}

// ReadCompressed simulates fetching a compressed blob from storage and
// decompressing it. The decode itself runs for real (the data is really
// reconstructed); only the timing is modeled.
func ReadCompressed(st *Storage, dm DecodeModel, blob []byte) (*ReadResult, error) {
	data, meta, err := compress.Decode(blob)
	if err != nil {
		return nil, err
	}
	raw := int64(len(data) * 8)
	rt, retries, err := st.readTime(int64(len(blob)))
	if err != nil {
		return nil, err
	}
	dt, err := dm.DecodeTime(meta.CodecName, int64(len(blob)), raw)
	if err != nil {
		return nil, err
	}
	total := rt + dt
	res := &ReadResult{
		Data:        data,
		RawBytes:    raw,
		StoredBytes: int64(len(blob)),
		ReadTime:    rt,
		DecodeTime:  dt,
		Retries:     retries,
		Ratio:       float64(raw) / float64(len(blob)),
	}
	if total > 0 {
		res.Throughput = float64(raw) / total.Seconds()
	}
	return res, nil
}

// ReadRaw simulates fetching uncompressed float64 data (the baseline path
// in Figs. 7-8).
func ReadRaw(st *Storage, n int) (*ReadResult, error) {
	raw := int64(n) * 8
	rt, retries, err := st.readTime(raw)
	if err != nil {
		return nil, err
	}
	res := &ReadResult{RawBytes: raw, StoredBytes: raw, ReadTime: rt, Retries: retries, Ratio: 1}
	if rt > 0 {
		res.Throughput = float64(raw) / rt.Seconds()
	}
	return res, nil
}
