// Package hpcio simulates the HPC storage path of the paper's inference
// pipeline: a Lustre-like parallel filesystem with a fixed sequential
// read bandwidth (the paper's baseline is 2.8 GB/s), plus a calibrated
// decompression cost model for the three codecs.
//
// Compressed sizes are *real* — produced by the actual codecs in
// internal/compress — while read and decode *times* are simulated: we
// have neither the Summit/Frontier filesystems nor the C/C++ codec
// implementations, so decode throughput is calibrated to published
// figures (ZFP decodes several times faster than SZ, which is faster
// than MGARD; see the paper's Fig. 7 discussion and the ZFP R&D-100
// report it cites). This preserves the paper's behaviour shape: at loose
// tolerances compression multiplies effective I/O bandwidth; at stringent
// tolerances SZ/MGARD decode time can push throughput below the raw-read
// baseline while ZFP stays flat.
package hpcio

import (
	"fmt"
	"time"

	"github.com/scidata/errprop/internal/compress"
)

// Storage models a parallel filesystem mount.
type Storage struct {
	Name      string
	Bandwidth float64 // sustained read bandwidth, bytes/s
	Latency   time.Duration
}

// DefaultStorage is the paper's 2.8 GB/s Lustre baseline.
func DefaultStorage() *Storage {
	return &Storage{Name: "lustre", Bandwidth: 2.8e9, Latency: 500 * time.Microsecond}
}

// ReadTime returns the simulated wall time to read n bytes.
func (s *Storage) ReadTime(n int64) time.Duration {
	if n < 0 {
		panic("hpcio: negative read size")
	}
	return s.Latency + time.Duration(float64(n)/s.Bandwidth*1e9)*time.Nanosecond
}

// DecodeRate calibrates one codec's decompression cost: time =
// compressedBytes/CompressedRate + originalBytes/OutputRate. The first
// term models entropy/bit-plane decoding (work proportional to the
// compressed stream), the second the reconstruction pass that writes the
// full-size output. This two-term shape is what lets highly compressed
// data decode *fast* — the effect behind the paper's up-to-10x effective
// I/O throughput — while near-incompressible data at stringent tolerances
// drags below the raw-read baseline for SZ/MGARD.
type DecodeRate struct {
	CompressedRate float64 // bytes of compressed input processed per second
	OutputRate     float64 // bytes of reconstructed output written per second
}

// DecodeModel maps codec names to calibrated decode rates.
type DecodeModel map[string]DecodeRate

// DefaultDecodeModel calibrates the three codecs to published relative
// speeds: ZFP decodes several times faster than SZ, which is faster than
// MGARD (multilevel reconstruction is the most expensive).
func DefaultDecodeModel() DecodeModel {
	return DecodeModel{
		"zfp":   {CompressedRate: 2.5e9, OutputRate: 40e9},
		"sz":    {CompressedRate: 0.35e9, OutputRate: 25e9},
		"mgard": {CompressedRate: 0.25e9, OutputRate: 15e9},
	}
}

// DecodeTime returns the simulated time to decompress storedBytes of
// codec payload expanding to origBytes.
func (m DecodeModel) DecodeTime(codec string, storedBytes, origBytes int64) (time.Duration, error) {
	r, ok := m[codec]
	if !ok || r.CompressedRate <= 0 || r.OutputRate <= 0 {
		return 0, fmt.Errorf("hpcio: no decode rates for codec %q", codec)
	}
	sec := float64(storedBytes)/r.CompressedRate + float64(origBytes)/r.OutputRate
	return time.Duration(sec*1e9) * time.Nanosecond, nil
}

// ReadResult reports one simulated compressed read.
type ReadResult struct {
	Data        []float64
	RawBytes    int64 // uncompressed size
	StoredBytes int64 // compressed size actually "read"
	ReadTime    time.Duration
	DecodeTime  time.Duration
	// Throughput is effective bytes of scientific data delivered per
	// second: RawBytes / (ReadTime + DecodeTime).
	Throughput float64
	Ratio      float64
}

// ReadCompressed simulates fetching a compressed blob from storage and
// decompressing it. The decode itself runs for real (the data is really
// reconstructed); only the timing is modeled.
func ReadCompressed(st *Storage, dm DecodeModel, blob []byte) (*ReadResult, error) {
	data, meta, err := compress.Decode(blob)
	if err != nil {
		return nil, err
	}
	raw := int64(len(data) * 8)
	rt := st.ReadTime(int64(len(blob)))
	dt, err := dm.DecodeTime(meta.CodecName, int64(len(blob)), raw)
	if err != nil {
		return nil, err
	}
	total := rt + dt
	res := &ReadResult{
		Data:        data,
		RawBytes:    raw,
		StoredBytes: int64(len(blob)),
		ReadTime:    rt,
		DecodeTime:  dt,
		Ratio:       float64(raw) / float64(len(blob)),
	}
	if total > 0 {
		res.Throughput = float64(raw) / total.Seconds()
	}
	return res, nil
}

// ReadRaw simulates fetching uncompressed float64 data (the baseline path
// in Figs. 7-8).
func ReadRaw(st *Storage, n int) *ReadResult {
	raw := int64(n * 8)
	rt := st.ReadTime(raw)
	res := &ReadResult{RawBytes: raw, StoredBytes: raw, ReadTime: rt, Ratio: 1}
	if rt > 0 {
		res.Throughput = float64(raw) / rt.Seconds()
	}
	return res
}
