// Package huffman implements a canonical Huffman coder over uint32 symbol
// alphabets. It is the entropy-coding stage of the SZ- and MGARD-style
// codecs in internal/compress: prediction residuals quantize to a small
// set of integer codes with a very skewed distribution, which Huffman
// coding shrinks by 4-10x before the final flate pass.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"github.com/scidata/errprop/internal/bitstream"
)

// maxCodeLen bounds codeword length; 57 keeps the decode loop's 64-bit
// buffer safe and is unreachable for any realistic symbol distribution.
const maxCodeLen = 57

var (
	// ErrCorrupt is returned when a stream cannot be decoded.
	ErrCorrupt = errors.New("huffman: corrupt stream")
)

type node struct {
	count       uint64
	symbol      uint32
	left, right *node
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].symbol < h[j].symbol // deterministic tie-break
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any     { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }
func (h nodeHeap) Peek() *node   { return h[0] }

// codeLengths computes canonical code lengths from symbol frequencies.
func codeLengths(freq map[uint32]uint64) map[uint32]int {
	h := make(nodeHeap, 0, len(freq))
	for s, c := range freq {
		h = append(h, &node{count: c, symbol: s}) //lint:ignore maporder heap pop order is total (count then symbol tie-break), so insertion order cannot reach the output
	}
	heap.Init(&h)
	if h.Len() == 1 {
		return map[uint32]int{h.Peek().symbol: 1}
	}
	seq := uint32(1 << 31) // internal-node ids above the symbol space
	for h.Len() > 1 {
		a := heap.Pop(&h).(*node)
		b := heap.Pop(&h).(*node)
		heap.Push(&h, &node{count: a.count + b.count, symbol: seq, left: a, right: b})
		seq++
	}
	lengths := make(map[uint32]int, len(freq))
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n.left == nil {
			if depth > maxCodeLen {
				depth = maxCodeLen // extremely skewed trees: clamp (handled canonically below)
			}
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(h.Peek(), 0)
	return lengths
}

// Encode Huffman-codes syms and returns a self-describing byte stream
// (symbol table + payload). Decoding requires only the stream.
func Encode(syms []uint32) []byte {
	w := bitstream.NewWriter()
	w.WriteBits(uint64(len(syms)), 32)
	if len(syms) == 0 {
		return w.Bytes()
	}
	freq := make(map[uint32]uint64)
	for _, s := range syms {
		freq[s]++
	}
	lengths := codeLengths(freq)
	codes := canonicalCodes(lengths)

	// Header: distinct symbol count, then (symbol, length) pairs sorted by
	// (length, symbol) — enough to rebuild the canonical code.
	type entry struct {
		sym uint32
		len int
	}
	entries := make([]entry, 0, len(lengths))
	for s, l := range lengths {
		entries = append(entries, entry{s, l})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].len != entries[j].len {
			return entries[i].len < entries[j].len
		}
		return entries[i].sym < entries[j].sym
	})
	w.WriteBits(uint64(len(entries)), 32)
	for _, e := range entries {
		w.WriteBits(uint64(e.sym), 32)
		w.WriteBits(uint64(e.len), 6)
	}
	// Payload.
	for _, s := range syms {
		c := codes[s]
		w.WriteBits(reverseBits(c.code, c.len), uint(c.len))
	}
	return w.Bytes()
}

type code struct {
	code uint64
	len  int
}

// canonicalCodes assigns canonical codewords given code lengths.
func canonicalCodes(lengths map[uint32]int) map[uint32]code {
	type entry struct {
		sym uint32
		len int
	}
	entries := make([]entry, 0, len(lengths))
	for s, l := range lengths {
		entries = append(entries, entry{s, l})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].len != entries[j].len {
			return entries[i].len < entries[j].len
		}
		return entries[i].sym < entries[j].sym
	})
	codes := make(map[uint32]code, len(entries))
	var next uint64
	prevLen := 0
	for _, e := range entries {
		next <<= uint(e.len - prevLen)
		codes[e.sym] = code{code: next, len: e.len}
		next++
		prevLen = e.len
	}
	return codes
}

// reverseBits reverses the low n bits of v so that codewords, which are
// defined MSB-first, can be written through the LSB-first bitstream.
func reverseBits(v uint64, n int) uint64 {
	var r uint64
	for i := 0; i < n; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return r
}

// Decode reverses Encode.
func Decode(data []byte) ([]uint32, error) {
	r := bitstream.NewReader(data)
	count, err := r.ReadBits(32)
	if err != nil {
		return nil, ErrCorrupt
	}
	if count == 0 {
		return nil, nil
	}
	distinct, err := r.ReadBits(32)
	if err != nil || distinct == 0 || distinct > count {
		return nil, ErrCorrupt
	}
	// Plausibility: each header entry takes 38 bits and each payload
	// symbol at least 1 bit, so a valid stream must hold this many bits.
	// This rejects garbage counts before they drive huge allocations.
	if uint64(r.Remaining()) < distinct*38+(count-1) {
		return nil, ErrCorrupt
	}
	type entry struct {
		sym uint32
		len int
	}
	entries := make([]entry, distinct)
	for i := range entries {
		s, err := r.ReadBits(32)
		if err != nil {
			return nil, ErrCorrupt
		}
		l, err := r.ReadBits(6)
		if err != nil || l == 0 || l > maxCodeLen {
			return nil, ErrCorrupt
		}
		entries[i] = entry{uint32(s), int(l)}
	}
	// Rebuild canonical codes and a decode tree.
	lengths := make(map[uint32]int, distinct)
	for _, e := range entries {
		lengths[e.sym] = e.len
	}
	if len(lengths) != int(distinct) {
		return nil, ErrCorrupt // duplicate symbols in header
	}
	codes := canonicalCodes(lengths)
	root := &node{}
	for s, c := range codes {
		n := root
		for i := c.len - 1; i >= 0; i-- {
			bit := (c.code >> uint(i)) & 1
			if bit == 0 {
				if n.left == nil {
					n.left = &node{}
				}
				n = n.left
			} else {
				if n.right == nil {
					n.right = &node{}
				}
				n = n.right
			}
			if n.count == 1 {
				return nil, ErrCorrupt // prefix violation
			}
		}
		if n.left != nil || n.right != nil {
			return nil, ErrCorrupt
		}
		n.symbol, n.count = s, 1 // count==1 marks a leaf
	}
	out := make([]uint32, count)
	for i := range out {
		n := root
		for n.count == 0 {
			bit, err := r.ReadBit()
			if err != nil {
				return nil, ErrCorrupt
			}
			if bit == 0 {
				n = n.left
			} else {
				n = n.right
			}
			if n == nil {
				return nil, ErrCorrupt
			}
		}
		out[i] = n.symbol
	}
	return out, nil
}

// String renders stats for debugging.
func Stats(syms []uint32) string {
	freq := make(map[uint32]uint64)
	for _, s := range syms {
		freq[s]++
	}
	return fmt.Sprintf("huffman: %d symbols, %d distinct", len(syms), len(freq))
}
