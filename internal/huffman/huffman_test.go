package huffman

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, syms []uint32) {
	t.Helper()
	enc := Encode(syms)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(syms) == 0 && len(dec) == 0 {
		return
	}
	if !reflect.DeepEqual(dec, syms) {
		t.Fatalf("roundtrip mismatch: got %v want %v", dec[:min(10, len(dec))], syms[:min(10, len(syms))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, []uint32{1, 2, 3, 1, 1, 1, 2, 5, 5, 1})
}

func TestRoundTripEmpty(t *testing.T)        { roundTrip(t, nil) }
func TestRoundTripSingleSymbol(t *testing.T) { roundTrip(t, []uint32{7}) }
func TestRoundTripOneDistinct(t *testing.T) {
	syms := make([]uint32, 1000)
	for i := range syms {
		syms[i] = 42
	}
	roundTrip(t, syms)
}

func TestRoundTripLargeAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint32, 5000)
	for i := range syms {
		syms[i] = uint32(rng.Intn(1000))
	}
	roundTrip(t, syms)
}

func TestSkewedCompresses(t *testing.T) {
	// Very skewed distribution (like SZ quantization codes around the
	// center bin) must compress far below 4 bytes/symbol.
	rng := rand.New(rand.NewSource(2))
	syms := make([]uint32, 20000)
	for i := range syms {
		r := rng.Float64()
		switch {
		case r < 0.90:
			syms[i] = 32768
		case r < 0.97:
			syms[i] = 32769
		default:
			syms[i] = uint32(32760 + rng.Intn(16))
		}
	}
	enc := Encode(syms)
	if len(enc) > len(syms)/2 {
		t.Fatalf("skewed stream encoded to %d bytes for %d symbols; want < %d", len(enc), len(syms), len(syms)/2)
	}
	roundTrip(t, syms)
}

func TestDecodeCorrupt(t *testing.T) {
	syms := []uint32{1, 2, 3, 4, 5, 1, 1, 1}
	enc := Encode(syms)
	// Truncations must error, not panic or return wrong data silently.
	for cut := 1; cut < len(enc); cut++ {
		if dec, err := Decode(enc[:cut]); err == nil && reflect.DeepEqual(dec, syms) {
			// A truncation that still decodes fully is impossible since
			// the count header promises more symbols than remain.
			t.Fatalf("truncated stream at %d decoded successfully", cut)
		}
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil stream should error")
	}
	// Garbage header.
	if _, err := Decode(bytes.Repeat([]byte{0xFF}, 16)); err == nil {
		t.Fatal("garbage stream should error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		syms := make([]uint32, len(raw))
		for i, b := range raw {
			syms[i] = uint32(b % 17) // small alphabet
		}
		enc := Encode(syms)
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		if len(syms) == 0 {
			return len(dec) == 0
		}
		return reflect.DeepEqual(dec, syms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	syms := []uint32{5, 5, 9, 1, 1, 1, 7}
	a, b := Encode(syms), Encode(syms)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint32, 1<<16)
	for i := range syms {
		syms[i] = uint32(rng.Intn(64))
	}
	b.SetBytes(int64(len(syms) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(syms)
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint32, 1<<16)
	for i := range syms {
		syms[i] = uint32(rng.Intn(64))
	}
	enc := Encode(syms)
	b.SetBytes(int64(len(syms) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
