// Package gateway is the fleet-scale routing tier over errpropd
// backends: it consistent-hashes (model, request-key) across N backend
// processes, health-probes each one with a liveness/readiness
// distinction, retries connection errors and 503s with bounded
// exponential backoff and deterministic jitter, trips a per-backend
// circuit breaker on consecutive failures, and degrades gracefully —
// a model whose backends are all down gets a typed 503 naming the
// model, never a hang and never a silently wrong answer.
//
// The package deliberately does not import internal/serve: the gateway
// speaks only the backends' HTTP wire surface (/healthz, /v1/predict,
// /v1/plan, /v1/models), so any process implementing that surface can
// sit behind it, and internal/serve's own tests can import this package
// without a cycle.
//
// Why retries and hedged re-sends are safe here at all: backend predict
// responses are bit-identical for the same request bytes (the compiled
// engine's exactness discipline — see DESIGN.md), so re-sending a
// request to a different backend can change which process answers but
// never which bytes come back. A gateway over backends without that
// property would need idempotency keys; this one needs only the
// determinism the repo already certifies.
package gateway

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"

	"github.com/scidata/errprop/internal/integrity"
)

// Typed sentinels, aliased from the shared integrity vocabulary so
// callers branch the same way they do for every other durable artifact.
var (
	// ErrCorrupt aliases integrity.ErrCorrupt.
	ErrCorrupt = integrity.ErrCorrupt
	// ErrTruncated aliases integrity.ErrTruncated.
	ErrTruncated = integrity.ErrTruncated
)

// Backend is one routable errpropd process in a Registry.
type Backend struct {
	// Name is the backend's unique, stable identity. Consistent-hash ring
	// positions derive from the name, not the address, so a backend that
	// restarts on a new port keeps its slice of the keyspace.
	Name string
	// Addr is the backend's host:port.
	Addr string
	// Weight scales the backend's share of the ring (virtual-node
	// multiplier). 0 means 1.
	Weight int
}

// ArtifactRef pins one model's ahead-of-time compiled artifact
// (internal/artifact) in the manifest: the gateway verifies the file
// against the pinned checksum at load and then answers /v1/plan and
// /v1/models for the model from the artifact itself, with zero backend
// round-trips.
type ArtifactRef struct {
	// Model is the model name the artifact serves.
	Model string
	// Path locates the artifact file; relative paths resolve against
	// the registry file's directory.
	Path string
	// Checksum is the artifact body's CRC32C ("crc32c:xxxxxxxx"); a file
	// that decodes to any other identity is a typed load refusal.
	Checksum string
}

// Registry is the manifest of backends a gateway routes across, plus
// optional pinned model artifacts.
type Registry struct {
	Backends  []Backend
	Artifacts []ArtifactRef
}

const (
	registryMagic = "ERRPROPGW1"
	// registryMagicV2 frames a manifest carrying artifact references; a
	// v2 frame with zero references is refused so every registry has
	// exactly one canonical encoding (v1 without refs, v2 with).
	registryMagicV2 = "ERRPROPGW2"
	// maxRegistryBody caps the declared body length so a corrupt frame
	// cannot size an absurd allocation.
	maxRegistryBody = 1 << 24
	// maxBackends caps the declared backend count.
	maxBackends = 1 << 16
	// maxWeight caps one backend's ring weight.
	maxWeight = 1 << 10
	// backendMinBytes is the smallest possible encoded backend entry
	// (1-byte name, 1-byte addr, their length prefixes, u32 weight) —
	// the allocation guard for untrusted counts.
	backendMinBytes = 1 + 1 + 1 + 1 + 4
	// maxArtifactRefs caps the declared artifact-reference count.
	maxArtifactRefs = 1 << 16
	// maxArtifactPath caps one reference's path length.
	maxArtifactPath = 1 << 12
	// artifactRefMinBytes guards the refs allocation: 1-byte model,
	// 1-byte path, the fixed 15-byte checksum, and the length prefixes.
	artifactRefMinBytes = 1 + 1 + 2 + 1 + 1 + 15
)

// validArtifactChecksum reports whether s has the exact
// integrity.ChecksumString shape: "crc32c:" + 8 lowercase hex digits.
func validArtifactChecksum(s string) bool {
	const prefix = "crc32c:"
	if len(s) != len(prefix)+8 || s[:len(prefix)] != prefix {
		return false
	}
	for _, c := range s[len(prefix):] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// validateArtifactRef applies the structural rules shared by Encode and
// DecodeRegistry.
func validateArtifactRef(a ArtifactRef) error {
	if a.Model == "" || len(a.Model) > 255 {
		return fmt.Errorf("artifact model name length %d not in 1..255", len(a.Model))
	}
	if a.Path == "" || len(a.Path) > maxArtifactPath {
		return fmt.Errorf("artifact %q: path length %d not in 1..%d", a.Model, len(a.Path), maxArtifactPath)
	}
	if !validArtifactChecksum(a.Checksum) {
		return fmt.Errorf("artifact %q: checksum %q is not crc32c:xxxxxxxx", a.Model, a.Checksum)
	}
	return nil
}

// validateBackend applies the structural rules shared by Encode and
// DecodeRegistry, so everything the decoder accepts re-encodes (the
// fuzz bijection) and everything the encoder writes decodes.
func validateBackend(b Backend) error {
	if b.Name == "" || len(b.Name) > 255 {
		return fmt.Errorf("backend name length %d not in 1..255", len(b.Name))
	}
	if b.Addr == "" || len(b.Addr) > 255 {
		return fmt.Errorf("backend %q: addr length %d not in 1..255", b.Name, len(b.Addr))
	}
	if _, _, err := net.SplitHostPort(b.Addr); err != nil {
		return fmt.Errorf("backend %q: addr %q: %v", b.Name, b.Addr, err)
	}
	if b.Weight < 0 || b.Weight > maxWeight {
		return fmt.Errorf("backend %q: weight %d not in 0..%d", b.Name, b.Weight, maxWeight)
	}
	return nil
}

// Validate checks the registry's structural rules: every backend valid,
// names unique.
func (r *Registry) Validate() error {
	if len(r.Backends) > maxBackends {
		return fmt.Errorf("gateway: registry backend count %d exceeds %d", len(r.Backends), maxBackends)
	}
	seen := make(map[string]bool, len(r.Backends))
	for i, b := range r.Backends {
		if err := validateBackend(b); err != nil {
			return fmt.Errorf("gateway: registry backend %d: %w", i, err)
		}
		if seen[b.Name] {
			return fmt.Errorf("gateway: registry backend %d: duplicate name %q", i, b.Name)
		}
		seen[b.Name] = true
	}
	if len(r.Artifacts) > maxArtifactRefs {
		return fmt.Errorf("gateway: registry artifact count %d exceeds %d", len(r.Artifacts), maxArtifactRefs)
	}
	seenModel := make(map[string]bool, len(r.Artifacts))
	for i, a := range r.Artifacts {
		if err := validateArtifactRef(a); err != nil {
			return fmt.Errorf("gateway: registry artifact %d: %w", i, err)
		}
		if seenModel[a.Model] {
			return fmt.Errorf("gateway: registry artifact %d: duplicate model %q", i, a.Model)
		}
		seenModel[a.Model] = true
	}
	return nil
}

// Encode serializes the registry into its checksummed frame:
//
//	magic | bodyLen(8) | bodyCRC(4) | body
//
// (the same framing discipline as the score manifest), so damaged
// registry bytes decode to a typed integrity error, never to a silently
// different fleet.
//
//errprop:deterministic the frame is a pure function of the registry
func (r *Registry) Encode() ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, uint32(len(r.Backends)))
	for _, be := range r.Backends {
		b.WriteByte(byte(len(be.Name)))
		b.WriteString(be.Name)
		b.WriteByte(byte(len(be.Addr)))
		b.WriteString(be.Addr)
		binary.Write(&b, binary.LittleEndian, uint32(be.Weight))
	}
	// A manifest without artifact references keeps the original v1
	// framing byte for byte; one with references gets the v2 magic and
	// an appended artifact section. Each registry value has exactly one
	// encoding either way, preserving the decode/encode bijection.
	magic := registryMagic
	if len(r.Artifacts) > 0 {
		magic = registryMagicV2
		binary.Write(&b, binary.LittleEndian, uint32(len(r.Artifacts)))
		for _, a := range r.Artifacts {
			b.WriteByte(byte(len(a.Model)))
			b.WriteString(a.Model)
			binary.Write(&b, binary.LittleEndian, uint16(len(a.Path)))
			b.WriteString(a.Path)
			b.WriteByte(byte(len(a.Checksum)))
			b.WriteString(a.Checksum)
		}
	}
	body := b.Bytes()
	out := bytes.NewBuffer(make([]byte, 0, len(magic)+12+len(body)))
	out.WriteString(magic)
	binary.Write(out, binary.LittleEndian, uint64(len(body)))
	binary.Write(out, binary.LittleEndian, integrity.Checksum(body))
	out.Write(body)
	return out.Bytes(), nil
}

// DecodeRegistry parses a registry frame. Damage surfaces as an error
// wrapping ErrCorrupt or ErrTruncated; DecodeRegistry never panics and
// never returns a partially filled registry without an error.
//
//errprop:deterministic
func DecodeRegistry(raw []byte) (*Registry, error) {
	if len(raw) < len(registryMagic) {
		return nil, fmt.Errorf("gateway: registry: %w: %d bytes, shorter than magic", ErrTruncated, len(raw))
	}
	magic := string(raw[:len(registryMagic)])
	if magic != registryMagic && magic != registryMagicV2 {
		return nil, fmt.Errorf("gateway: registry: %w: bad magic %q", ErrCorrupt, raw[:len(registryMagic)])
	}
	withArtifacts := magic == registryMagicV2
	rest := raw[len(registryMagic):]
	if len(rest) < 12 {
		return nil, fmt.Errorf("gateway: registry: %w: missing frame header", ErrTruncated)
	}
	bodyLen := binary.LittleEndian.Uint64(rest)
	crc := binary.LittleEndian.Uint32(rest[8:])
	rest = rest[12:]
	if bodyLen > maxRegistryBody {
		return nil, fmt.Errorf("gateway: registry: %w: declared body length %d exceeds %d", ErrCorrupt, bodyLen, int64(maxRegistryBody))
	}
	if uint64(len(rest)) < bodyLen {
		return nil, fmt.Errorf("gateway: registry: %w: body %d of declared %d bytes", ErrTruncated, len(rest), bodyLen)
	}
	if uint64(len(rest)) > bodyLen {
		return nil, fmt.Errorf("gateway: registry: %w: %d bytes beyond declared body", ErrCorrupt, uint64(len(rest))-bodyLen)
	}
	body := rest[:bodyLen]
	if got := integrity.Checksum(body); got != crc {
		return nil, fmt.Errorf("gateway: registry: %w: body checksum %08x != stored %08x", ErrCorrupt, got, crc)
	}
	return decodeRegistryBody(bytes.NewReader(body), withArtifacts)
}

// decodeRegistryBody parses the checksum-verified body. Structural
// inconsistency inside verified bytes means the registry was written
// wrong — ErrCorrupt.
func decodeRegistryBody(r *bytes.Reader, withArtifacts bool) (*Registry, error) {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("gateway: registry: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	var count uint32
	if binary.Read(r, binary.LittleEndian, &count) != nil {
		return nil, bad("missing backend count")
	}
	if count > maxBackends {
		return nil, bad("backend count %d exceeds %d", count, maxBackends)
	}
	// Guard the allocation against a checksummed-but-absurd count.
	if uint64(count)*backendMinBytes > uint64(r.Len()) {
		return nil, bad("backend count %d exceeds body", count)
	}
	reg := &Registry{Backends: make([]Backend, count)}
	str := func(what string, i int) (string, error) {
		l, err := r.ReadByte()
		if err != nil {
			return "", bad("entry %d: missing %s length", i, what)
		}
		s := make([]byte, l)
		if _, err := io.ReadFull(r, s); err != nil {
			return "", bad("entry %d: short %s", i, what)
		}
		return string(s), nil
	}
	for i := range reg.Backends {
		be := &reg.Backends[i]
		var err error
		if be.Name, err = str("backend name", i); err != nil {
			return nil, err
		}
		if be.Addr, err = str("backend addr", i); err != nil {
			return nil, err
		}
		var w uint32
		if binary.Read(r, binary.LittleEndian, &w) != nil {
			return nil, bad("backend %d: missing weight", i)
		}
		be.Weight = int(w)
	}
	if withArtifacts {
		var acount uint32
		if binary.Read(r, binary.LittleEndian, &acount) != nil {
			return nil, bad("missing artifact count")
		}
		// A v2 frame with zero refs would be a second encoding of a
		// v1-encodable registry; refuse it so decode/encode stays a
		// bijection.
		if acount == 0 {
			return nil, bad("v2 registry declares no artifacts")
		}
		if acount > maxArtifactRefs {
			return nil, bad("artifact count %d exceeds %d", acount, maxArtifactRefs)
		}
		if uint64(acount)*artifactRefMinBytes > uint64(r.Len()) {
			return nil, bad("artifact count %d exceeds body", acount)
		}
		reg.Artifacts = make([]ArtifactRef, acount)
		for i := range reg.Artifacts {
			a := &reg.Artifacts[i]
			var err error
			if a.Model, err = str("artifact model", i); err != nil {
				return nil, err
			}
			var plen uint16
			if binary.Read(r, binary.LittleEndian, &plen) != nil {
				return nil, bad("artifact %d: missing path length", i)
			}
			p := make([]byte, plen)
			if _, err := io.ReadFull(r, p); err != nil {
				return nil, bad("artifact %d: short path", i)
			}
			a.Path = string(p)
			if a.Checksum, err = str("artifact checksum", i); err != nil {
				return nil, err
			}
		}
	}
	if r.Len() != 0 {
		return nil, bad("%d trailing bytes", r.Len())
	}
	if err := reg.Validate(); err != nil {
		return nil, fmt.Errorf("gateway: registry: %w: %v", ErrCorrupt, err)
	}
	return reg, nil
}

// WriteRegistryFile atomically writes the registry under path (temp
// file in the same directory + fsync + rename), so a crash mid-write
// never leaves a half manifest under the final name.
func WriteRegistryFile(path string, r *Registry) error {
	raw, err := r.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadRegistryFile reads and decodes a registry manifest file.
func ReadRegistryFile(path string) (*Registry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := DecodeRegistry(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
