// Package gateway is the fleet-scale routing tier over errpropd
// backends: it consistent-hashes (model, request-key) across N backend
// processes, health-probes each one with a liveness/readiness
// distinction, retries connection errors and 503s with bounded
// exponential backoff and deterministic jitter, trips a per-backend
// circuit breaker on consecutive failures, and degrades gracefully —
// a model whose backends are all down gets a typed 503 naming the
// model, never a hang and never a silently wrong answer.
//
// The package deliberately does not import internal/serve: the gateway
// speaks only the backends' HTTP wire surface (/healthz, /v1/predict,
// /v1/plan, /v1/models), so any process implementing that surface can
// sit behind it, and internal/serve's own tests can import this package
// without a cycle.
//
// Why retries and hedged re-sends are safe here at all: backend predict
// responses are bit-identical for the same request bytes (the compiled
// engine's exactness discipline — see DESIGN.md), so re-sending a
// request to a different backend can change which process answers but
// never which bytes come back. A gateway over backends without that
// property would need idempotency keys; this one needs only the
// determinism the repo already certifies.
package gateway

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"

	"github.com/scidata/errprop/internal/integrity"
)

// Typed sentinels, aliased from the shared integrity vocabulary so
// callers branch the same way they do for every other durable artifact.
var (
	// ErrCorrupt aliases integrity.ErrCorrupt.
	ErrCorrupt = integrity.ErrCorrupt
	// ErrTruncated aliases integrity.ErrTruncated.
	ErrTruncated = integrity.ErrTruncated
)

// Backend is one routable errpropd process in a Registry.
type Backend struct {
	// Name is the backend's unique, stable identity. Consistent-hash ring
	// positions derive from the name, not the address, so a backend that
	// restarts on a new port keeps its slice of the keyspace.
	Name string
	// Addr is the backend's host:port.
	Addr string
	// Weight scales the backend's share of the ring (virtual-node
	// multiplier). 0 means 1.
	Weight int
}

// Registry is the manifest of backends a gateway routes across.
type Registry struct {
	Backends []Backend
}

const (
	registryMagic = "ERRPROPGW1"
	// maxRegistryBody caps the declared body length so a corrupt frame
	// cannot size an absurd allocation.
	maxRegistryBody = 1 << 24
	// maxBackends caps the declared backend count.
	maxBackends = 1 << 16
	// maxWeight caps one backend's ring weight.
	maxWeight = 1 << 10
	// backendMinBytes is the smallest possible encoded backend entry
	// (1-byte name, 1-byte addr, their length prefixes, u32 weight) —
	// the allocation guard for untrusted counts.
	backendMinBytes = 1 + 1 + 1 + 1 + 4
)

// validateBackend applies the structural rules shared by Encode and
// DecodeRegistry, so everything the decoder accepts re-encodes (the
// fuzz bijection) and everything the encoder writes decodes.
func validateBackend(b Backend) error {
	if b.Name == "" || len(b.Name) > 255 {
		return fmt.Errorf("backend name length %d not in 1..255", len(b.Name))
	}
	if b.Addr == "" || len(b.Addr) > 255 {
		return fmt.Errorf("backend %q: addr length %d not in 1..255", b.Name, len(b.Addr))
	}
	if _, _, err := net.SplitHostPort(b.Addr); err != nil {
		return fmt.Errorf("backend %q: addr %q: %v", b.Name, b.Addr, err)
	}
	if b.Weight < 0 || b.Weight > maxWeight {
		return fmt.Errorf("backend %q: weight %d not in 0..%d", b.Name, b.Weight, maxWeight)
	}
	return nil
}

// Validate checks the registry's structural rules: every backend valid,
// names unique.
func (r *Registry) Validate() error {
	if len(r.Backends) > maxBackends {
		return fmt.Errorf("gateway: registry backend count %d exceeds %d", len(r.Backends), maxBackends)
	}
	seen := make(map[string]bool, len(r.Backends))
	for i, b := range r.Backends {
		if err := validateBackend(b); err != nil {
			return fmt.Errorf("gateway: registry backend %d: %w", i, err)
		}
		if seen[b.Name] {
			return fmt.Errorf("gateway: registry backend %d: duplicate name %q", i, b.Name)
		}
		seen[b.Name] = true
	}
	return nil
}

// Encode serializes the registry into its checksummed frame:
//
//	magic | bodyLen(8) | bodyCRC(4) | body
//
// (the same framing discipline as the score manifest), so damaged
// registry bytes decode to a typed integrity error, never to a silently
// different fleet.
//
//errprop:deterministic the frame is a pure function of the registry
func (r *Registry) Encode() ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, uint32(len(r.Backends)))
	for _, be := range r.Backends {
		b.WriteByte(byte(len(be.Name)))
		b.WriteString(be.Name)
		b.WriteByte(byte(len(be.Addr)))
		b.WriteString(be.Addr)
		binary.Write(&b, binary.LittleEndian, uint32(be.Weight))
	}
	body := b.Bytes()
	out := bytes.NewBuffer(make([]byte, 0, len(registryMagic)+12+len(body)))
	out.WriteString(registryMagic)
	binary.Write(out, binary.LittleEndian, uint64(len(body)))
	binary.Write(out, binary.LittleEndian, integrity.Checksum(body))
	out.Write(body)
	return out.Bytes(), nil
}

// DecodeRegistry parses a registry frame. Damage surfaces as an error
// wrapping ErrCorrupt or ErrTruncated; DecodeRegistry never panics and
// never returns a partially filled registry without an error.
//
//errprop:deterministic
func DecodeRegistry(raw []byte) (*Registry, error) {
	if len(raw) < len(registryMagic) {
		return nil, fmt.Errorf("gateway: registry: %w: %d bytes, shorter than magic", ErrTruncated, len(raw))
	}
	if string(raw[:len(registryMagic)]) != registryMagic {
		return nil, fmt.Errorf("gateway: registry: %w: bad magic %q", ErrCorrupt, raw[:len(registryMagic)])
	}
	rest := raw[len(registryMagic):]
	if len(rest) < 12 {
		return nil, fmt.Errorf("gateway: registry: %w: missing frame header", ErrTruncated)
	}
	bodyLen := binary.LittleEndian.Uint64(rest)
	crc := binary.LittleEndian.Uint32(rest[8:])
	rest = rest[12:]
	if bodyLen > maxRegistryBody {
		return nil, fmt.Errorf("gateway: registry: %w: declared body length %d exceeds %d", ErrCorrupt, bodyLen, int64(maxRegistryBody))
	}
	if uint64(len(rest)) < bodyLen {
		return nil, fmt.Errorf("gateway: registry: %w: body %d of declared %d bytes", ErrTruncated, len(rest), bodyLen)
	}
	if uint64(len(rest)) > bodyLen {
		return nil, fmt.Errorf("gateway: registry: %w: %d bytes beyond declared body", ErrCorrupt, uint64(len(rest))-bodyLen)
	}
	body := rest[:bodyLen]
	if got := integrity.Checksum(body); got != crc {
		return nil, fmt.Errorf("gateway: registry: %w: body checksum %08x != stored %08x", ErrCorrupt, got, crc)
	}
	return decodeRegistryBody(bytes.NewReader(body))
}

// decodeRegistryBody parses the checksum-verified body. Structural
// inconsistency inside verified bytes means the registry was written
// wrong — ErrCorrupt.
func decodeRegistryBody(r *bytes.Reader) (*Registry, error) {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("gateway: registry: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	var count uint32
	if binary.Read(r, binary.LittleEndian, &count) != nil {
		return nil, bad("missing backend count")
	}
	if count > maxBackends {
		return nil, bad("backend count %d exceeds %d", count, maxBackends)
	}
	// Guard the allocation against a checksummed-but-absurd count.
	if uint64(count)*backendMinBytes > uint64(r.Len()) {
		return nil, bad("backend count %d exceeds body", count)
	}
	reg := &Registry{Backends: make([]Backend, count)}
	str := func(what string, i int) (string, error) {
		l, err := r.ReadByte()
		if err != nil {
			return "", bad("backend %d: missing %s length", i, what)
		}
		s := make([]byte, l)
		if _, err := io.ReadFull(r, s); err != nil {
			return "", bad("backend %d: short %s", i, what)
		}
		return string(s), nil
	}
	for i := range reg.Backends {
		be := &reg.Backends[i]
		var err error
		if be.Name, err = str("name", i); err != nil {
			return nil, err
		}
		if be.Addr, err = str("addr", i); err != nil {
			return nil, err
		}
		var w uint32
		if binary.Read(r, binary.LittleEndian, &w) != nil {
			return nil, bad("backend %d: missing weight", i)
		}
		be.Weight = int(w)
	}
	if r.Len() != 0 {
		return nil, bad("%d trailing bytes", r.Len())
	}
	if err := reg.Validate(); err != nil {
		return nil, fmt.Errorf("gateway: registry: %w: %v", ErrCorrupt, err)
	}
	return reg, nil
}

// WriteRegistryFile atomically writes the registry under path (temp
// file in the same directory + fsync + rename), so a crash mid-write
// never leaves a half manifest under the final name.
func WriteRegistryFile(path string, r *Registry) error {
	raw, err := r.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadRegistryFile reads and decodes a registry manifest file.
func ReadRegistryFile(path string) (*Registry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := DecodeRegistry(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
