package gateway

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestKillBackendDrill is the PR's acceptance drill, in-process: 32
// concurrent clients hammer a gateway over three backends while one
// backend is killed mid-load and later restarted on the same port.
//
// The contract under fire:
//
//   - Every response is either bit-identical to the single-daemon
//     reference for that request, or a typed 5xx (JSON body, named
//     source). ZERO silently-wrong answers — a gateway that returns 200
//     with different bytes has broken the paper's error-bound story at
//     the routing tier.
//   - The killed backend's breaker trips, and after the restart a health
//     probe re-closes it — recovery needs no client traffic.
//   - The books balance: asserted through the same Metrics() surface
//     /metrics serves.
func TestKillBackendDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("fault drill is seconds long; skipped in -short")
	}
	procs := []*testProc{
		startProc(t, "b0", "127.0.0.1:0"),
		startProc(t, "b1", "127.0.0.1:0"),
		startProc(t, "b2", "127.0.0.1:0"),
	}
	cfg := fastCfg()
	g := newTestGateway(t, cfg, procs...)
	base := gwServer(t, g)

	// Reference answers from a single daemon: a pool of distinct request
	// bodies, each resolved once against backend 0 directly. Engine
	// exactness (PR 5/8) makes these THE answer any backend must give.
	const poolSize = 48
	pool := make([][]byte, poolSize)
	refs := make([][]byte, poolSize)
	for i := range pool {
		pool[i] = predictBody(t, 0.5+float64(i)/7)
		resp, raw := post(t, "http://"+procs[0].addr+"/v1/predict", pool[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference %d: status %d: %s", i, resp.StatusCode, raw)
		}
		refs[i] = raw
	}

	const (
		clients   = 32
		perClient = 30
		killAfter = 5  // requests per client before the kill fires
		reviveAt  = 15 // requests per client before the restart fires
	)
	var (
		okIdentical atomic.Int64
		typed5xx    atomic.Int64
		wrong       atomic.Int64
		firstWrong  sync.Once
		wrongDetail atomic.Value
	)
	var killOnce, reviveOnce sync.Once
	var progress atomic.Int64 // total requests completed, drives the kill/revive triggers

	classify := func(i int, resp *http.Response, raw []byte) {
		switch {
		case resp.StatusCode == http.StatusOK && bytes.Equal(raw, refs[i]):
			okIdentical.Add(1)
		case resp.StatusCode >= 500:
			// Typed failure: must be JSON with an error field — a bare 5xx
			// is a contract violation too.
			if resp.Header.Get("Content-Type") == "application/json" && bytes.Contains(raw, []byte(`"error"`)) {
				typed5xx.Add(1)
			} else {
				wrong.Add(1)
				firstWrong.Do(func() { wrongDetail.Store(fmt.Sprintf("untyped %d: %.200s", resp.StatusCode, raw)) })
			}
		default:
			wrong.Add(1)
			firstWrong.Do(func() {
				wrongDetail.Store(fmt.Sprintf("status %d, bytes-match=%v: %.200s", resp.StatusCode, bytes.Equal(raw, refs[i]), raw))
			})
		}
	}

	client := &http.Client{Timeout: 15 * time.Second}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				done := progress.Add(1)
				if done == clients*killAfter {
					killOnce.Do(procs[1].kill) // SIGKILL stand-in, mid-storm
				}
				if done == clients*reviveAt {
					reviveOnce.Do(func() {
						p := startProc(t, "b1", procs[1].addr) // same name, same port
						procs[1] = p
					})
				}
				i := (c*7 + j) % poolSize
				resp, err := client.Post(base+"/v1/predict", "application/json", bytes.NewReader(pool[i]))
				if err != nil {
					// The gateway itself refused the connection — it must never:
					// the gateway process is not under attack in this drill.
					wrong.Add(1)
					firstWrong.Do(func() { wrongDetail.Store("gateway connection error: " + err.Error()) })
					continue
				}
				raw, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					wrong.Add(1)
					firstWrong.Do(func() { wrongDetail.Store("gateway response truncated: " + rerr.Error()) })
					continue
				}
				classify(i, resp, raw)
			}
		}(c)
	}
	wg.Wait()

	total := int64(clients * perClient)
	if got := okIdentical.Load() + typed5xx.Load() + wrong.Load(); got != total {
		t.Fatalf("classification books don't balance: %d classified, %d sent", got, total)
	}
	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d silently-wrong responses (first: %v) — ok=%d typed5xx=%d",
			w, wrongDetail.Load(), okIdentical.Load(), typed5xx.Load())
	}
	if okIdentical.Load() < total*9/10 {
		t.Fatalf("only %d/%d responses succeeded bit-identically; the fleet should absorb one kill, not shed 10%% of load",
			okIdentical.Load(), total)
	}
	t.Logf("drill: %d bit-identical, %d typed 5xx, 0 wrong", okIdentical.Load(), typed5xx.Load())

	// The killed backend's breaker must have tripped...
	m := g.Metrics()
	var b1 BackendStatus
	for _, b := range m.Backends {
		if b.Name == "b1" {
			b1 = b
		}
	}
	if b1.BreakerTrips == 0 && b1.Failures == 0 && m.ProbeFails == 0 {
		t.Fatalf("the kill left no trace: %+v, probe_failures_total=%d", b1, m.ProbeFails)
	}

	// ...and after the restart, probes alone must re-close it and the
	// backend must be routable again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur BackendStatus
		for _, b := range g.Metrics().Backends {
			if b.Name == "b1" {
				cur = b
			}
		}
		if cur.Ready && cur.Breaker == "closed" && cur.ConsecFails == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted backend never recovered: %+v", cur)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Post-recovery traffic is clean: every key, bit-identical.
	for i := 0; i < poolSize; i++ {
		resp, raw := post(t, base+"/v1/predict", pool[i])
		if resp.StatusCode != http.StatusOK || !bytes.Equal(raw, refs[i]) {
			t.Fatalf("post-recovery predict %d: status %d, identical=%v", i, resp.StatusCode, bytes.Equal(raw, refs[i]))
		}
	}
}

// TestDrillBackoffScheduleReplays pins the determinism that makes the
// drill replayable: the jittered backoff schedule is a pure function of
// (seed, key, attempt) — two gateways with the same seed compute the
// same waits, and a different seed decorrelates them.
func TestDrillBackoffScheduleReplays(t *testing.T) {
	for attempt := 1; attempt <= 5; attempt++ {
		for key := uint64(1); key < 100; key += 17 {
			a := jitterFor(42, key, attempt)
			b := jitterFor(42, key, attempt)
			if a != b {
				t.Fatalf("jitter(42, %d, %d) not deterministic: %v vs %v", key, attempt, a, b)
			}
			if a < 0 || a >= 1 {
				t.Fatalf("jitter sample %v outside [0,1)", a)
			}
		}
	}
	if jitterFor(1, 7, 1) == jitterFor(2, 7, 1) {
		t.Fatal("different seeds produced identical jitter — the seed is dead")
	}
}
