package gateway

import (
	"fmt"
	"testing"
)

func testBackends(n int) []*backend {
	out := make([]*backend, n)
	for i := range out {
		out[i] = &backend{name: fmt.Sprintf("b%d", i), addr: fmt.Sprintf("127.0.0.1:%d", 9000+i), weight: 1}
	}
	return out
}

// TestRingDeterministicOrder: the walk order for a key is a pure
// function of (key, backend set) — two rings over the same fleet agree,
// which is what lets a drill replay its routing decisions.
func TestRingDeterministicOrder(t *testing.T) {
	bs := testBackends(5)
	r1 := buildRing(bs, 64)
	r2 := buildRing(bs, 64)
	for key := uint64(0); key < 1000; key += 37 {
		o1, o2 := r1.order(key), r2.order(key)
		if len(o1) != len(bs) || len(o2) != len(bs) {
			t.Fatalf("key %d: order lengths %d/%d, want %d", key, len(o1), len(o2), len(bs))
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("key %d: orders diverge at %d", key, i)
			}
		}
	}
}

// TestRingBalance: with enough virtual nodes, primary ownership spreads
// across backends — no backend starves and no backend owns everything.
func TestRingBalance(t *testing.T) {
	bs := testBackends(4)
	r := buildRing(bs, 64)
	counts := make(map[*backend]int)
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.order(hashKey(fmt.Sprintf("key-%d", i)))[0]]++
	}
	for _, b := range bs {
		share := float64(counts[b]) / keys
		if share < 0.10 || share > 0.45 {
			t.Errorf("backend %s owns %.1f%% of keys, want a roughly fair share", b.name, share*100)
		}
	}
}

// TestRingMinimalRemap: removing one backend moves only the keys it
// owned; every other key keeps its primary.
func TestRingMinimalRemap(t *testing.T) {
	bs := testBackends(4)
	full := buildRing(bs, 64)
	smaller := buildRing(bs[:3], 64)
	removed := bs[3]
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		k := hashKey(fmt.Sprintf("key-%d", i))
		before, after := full.order(k)[0], smaller.order(k)[0]
		if before == removed {
			moved++
			continue // had to move
		}
		if before != after {
			t.Fatalf("key %d: primary moved from %s to %s though %s was the one removed",
				i, before.name, after.name, removed.name)
		}
	}
	if moved == 0 {
		t.Fatal("removed backend owned no keys — ring balance is broken")
	}
}

// TestRingWeight: a weight-3 backend owns roughly three times the keys
// of a weight-1 backend.
func TestRingWeight(t *testing.T) {
	bs := testBackends(2)
	bs[1].weight = 3
	r := buildRing(bs, 64)
	counts := make(map[*backend]int)
	const keys = 6000
	for i := 0; i < keys; i++ {
		counts[r.order(hashKey(fmt.Sprintf("key-%d", i)))[0]]++
	}
	ratio := float64(counts[bs[1]]) / float64(counts[bs[0]])
	if ratio < 2.0 || ratio > 4.5 {
		t.Errorf("weight-3 vs weight-1 ownership ratio %.2f, want ~3", ratio)
	}
}

// TestRingStableAcrossRestart: ring points derive from backend *names*,
// so a backend restarting on a new port keeps its keyspace slice.
func TestRingStableAcrossRestart(t *testing.T) {
	bs := testBackends(3)
	before := buildRing(bs, 64)
	owners := make(map[uint64]string)
	for i := 0; i < 500; i++ {
		k := hashKey(fmt.Sprintf("key-%d", i))
		owners[k] = before.order(k)[0].name
	}
	// "Restart" b1 on a different address.
	bs[1] = &backend{name: "b1", addr: "127.0.0.1:19999", weight: 1}
	after := buildRing(bs, 64)
	for k, name := range owners {
		if got := after.order(k)[0].name; got != name {
			t.Fatalf("key %x: owner changed %s -> %s across an address-only restart", k, name, got)
		}
	}
}
