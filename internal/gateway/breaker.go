package gateway

import (
	"sync"
	"sync/atomic"
	"time"
)

// breakerState is the classic three-state circuit breaker.
type breakerState int32

const (
	breakerClosed   breakerState = iota // routing normally
	breakerOpen                         // tripped: no traffic until cooldown
	breakerHalfOpen                     // cooldown elapsed: one trial in flight
)

// String names the state for /metrics and /healthz.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-backend circuit breaker: Threshold consecutive
// failures trip it open; after Cooldown it admits exactly one trial
// request (half-open) whose outcome closes or re-opens it. A successful
// health probe also closes it, so a restarted backend re-enters the
// ring within one probe interval even with no client traffic to act as
// the trial.
//
// Every method takes the current time as a parameter instead of calling
// time.Now, so the state machine is a pure function of its inputs and
// unit tests drive it deterministically.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state    breakerState
	fails    int // consecutive failures while closed
	openedAt time.Time

	trips atomic.Int64 // cumulative trips, for /metrics
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may be sent to the backend now. In
// the open state it returns false until cooldown has elapsed, then
// transitions to half-open and admits exactly one trial; subsequent
// calls see half-open and are refused until the trial reports back.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	case breakerHalfOpen:
		return false
	}
	return false
}

// success records a successful request or health probe: the breaker
// closes and the failure run resets, whatever state it was in.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
}

// failure records a failed request or probe. A half-open trial failure
// re-opens immediately; a closed breaker opens once the consecutive
// run reaches the threshold.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.trips.Add(1)
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.trips.Add(1)
		}
	case breakerOpen:
		// Already open: refresh nothing; the cooldown clock runs from the
		// trip, so a stream of failures cannot hold the breaker open
		// forever past its cooldown.
	}
}

// snapshot reports (state, consecutive fails, cumulative trips).
func (b *breaker) snapshot() (breakerState, int, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.fails, b.trips.Load()
}
