package gateway

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/scidata/errprop/internal/integrity"
)

func sampleRegistry() *Registry {
	return &Registry{Backends: []Backend{
		{Name: "b0", Addr: "127.0.0.1:9001", Weight: 1},
		{Name: "b1", Addr: "127.0.0.1:9002", Weight: 2},
		{Name: "b2", Addr: "10.0.0.7:80"},
	}}
}

func TestRegistryRoundTrip(t *testing.T) {
	reg := sampleRegistry()
	raw, err := reg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRegistry(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reg) {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, reg)
	}
	// And byte-exactly back again (the fuzz bijection, pinned here too).
	re, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(raw) {
		t.Fatal("re-encode differs from original encoding")
	}
}

func TestRegistryFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.reg")
	reg := sampleRegistry()
	if err := WriteRegistryFile(path, reg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRegistryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reg) {
		t.Fatalf("file round trip mismatch: %+v", got)
	}
	// No temp clutter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("registry dir has %d entries, want just the manifest", len(entries))
	}
}

func TestRegistryEncodeRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		reg  Registry
	}{
		{"empty name", Registry{Backends: []Backend{{Name: "", Addr: "127.0.0.1:1"}}}},
		{"empty addr", Registry{Backends: []Backend{{Name: "b", Addr: ""}}}},
		{"portless addr", Registry{Backends: []Backend{{Name: "b", Addr: "127.0.0.1"}}}},
		{"duplicate names", Registry{Backends: []Backend{
			{Name: "b", Addr: "127.0.0.1:1"}, {Name: "b", Addr: "127.0.0.1:2"},
		}}},
		{"absurd weight", Registry{Backends: []Backend{{Name: "b", Addr: "127.0.0.1:1", Weight: 1 << 20}}}},
		{"long name", Registry{Backends: []Backend{{Name: strings.Repeat("x", 300), Addr: "127.0.0.1:1"}}}},
	}
	for _, tc := range cases {
		if _, err := tc.reg.Encode(); err == nil {
			t.Errorf("%s: Encode accepted an invalid registry", tc.name)
		}
	}
}

func TestRegistryDecodeTypedErrors(t *testing.T) {
	raw, err := sampleRegistry().Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func() []byte
		want error
	}{
		{"empty", func() []byte { return nil }, ErrTruncated},
		{"bad magic", func() []byte {
			m := append([]byte(nil), raw...)
			m[0] ^= 0xFF
			return m
		}, ErrCorrupt},
		{"truncated body", func() []byte { return raw[:len(raw)-3] }, ErrTruncated},
		{"trailing bytes", func() []byte { return append(append([]byte(nil), raw...), 0xAA) }, ErrCorrupt},
		{"flipped body bit", func() []byte {
			m := append([]byte(nil), raw...)
			m[len(m)-1] ^= 0x10
			return m
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		_, err := DecodeRegistry(tc.mut())
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
		if err != nil && !integrity.IsIntegrityError(err) {
			t.Errorf("%s: err %v is not a typed integrity error", tc.name, err)
		}
	}
}

// TestRegistryDecodeAllocationGuard: a syntactically valid frame whose
// checksummed body declares an absurd backend count must be refused
// before the count sizes an allocation.
func TestRegistryDecodeAllocationGuard(t *testing.T) {
	// Hand-build a frame: valid magic/len/crc, body = count 2^16 with no
	// backend data behind it.
	body := []byte{0, 0, 1, 0} // count = 65536, little endian
	raw := make([]byte, 0, 64)
	raw = append(raw, registryMagic...)
	raw = append(raw,
		byte(len(body)), 0, 0, 0, 0, 0, 0, 0)
	crc := integrity.Checksum(body)
	raw = append(raw, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
	raw = append(raw, body...)
	_, err := DecodeRegistry(raw)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd count decoded to %v, want ErrCorrupt", err)
	}
}
