package gateway

import "testing"

// FuzzDecodeRegistry hammers the registry-manifest decoder with
// arbitrary bytes and mutations of a valid encoding: it must never
// panic or over-allocate, and everything it accepts must re-encode to
// the exact same bytes (decode is a bijection onto valid encodings — no
// silent normalization a hot-reload could smuggle a different fleet
// through).
func FuzzDecodeRegistry(f *testing.F) {
	raw, err := sampleRegistry().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte(registryMagic))
	f.Add([]byte{})
	for i := 0; i < len(raw); i += 5 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x3B
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		reg, err := DecodeRegistry(data)
		if err != nil {
			return
		}
		re, err := reg.Encode()
		if err != nil {
			t.Fatalf("accepted registry fails to re-encode: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("decode/encode not a bijection:\n in  %x\n out %x", data, re)
		}
	})
}
