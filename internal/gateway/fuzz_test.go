package gateway

import "testing"

// FuzzDecodeRegistry hammers the registry-manifest decoder with
// arbitrary bytes and mutations of a valid encoding: it must never
// panic or over-allocate, and everything it accepts must re-encode to
// the exact same bytes (decode is a bijection onto valid encodings — no
// silent normalization a hot-reload could smuggle a different fleet
// through).
func FuzzDecodeRegistry(f *testing.F) {
	raw, err := sampleRegistry().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte(registryMagic))
	f.Add([]byte{})
	for i := 0; i < len(raw); i += 5 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x3B
		f.Add(mut)
	}
	// A v2 manifest (artifact refs pinned) seeds the artifact-section
	// decode paths and their bijection too.
	v2 := sampleRegistry()
	v2.Artifacts = []ArtifactRef{
		{Model: "h2", Path: "models/h2.aot", Checksum: "crc32c:0123abcd"},
		{Model: "flame", Path: "flame.aot", Checksum: "crc32c:deadbeef"},
	}
	raw2, err := v2.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw2)
	f.Add([]byte(registryMagicV2))
	for i := 0; i < len(raw2); i += 7 {
		mut := append([]byte(nil), raw2...)
		mut[i] ^= 0x5C
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		reg, err := DecodeRegistry(data)
		if err != nil {
			return
		}
		re, err := reg.Encode()
		if err != nil {
			t.Fatalf("accepted registry fails to re-encode: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("decode/encode not a bijection:\n in  %x\n out %x", data, re)
		}
	})
}
