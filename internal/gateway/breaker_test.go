package gateway

import (
	"testing"
	"time"
)

// The breaker's clock is injected, so every transition is pinned
// deterministically — no sleeps, no flake.
func TestBreakerStateMachine(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newBreaker(3, time.Second)

	if !b.allow(t0) {
		t.Fatal("fresh breaker must be closed")
	}
	// Two failures: still closed (threshold 3).
	b.failure(t0)
	b.failure(t0)
	if !b.allow(t0) {
		t.Fatal("breaker opened below threshold")
	}
	// Third consecutive failure trips it.
	b.failure(t0)
	if b.allow(t0.Add(10 * time.Millisecond)) {
		t.Fatal("breaker closed right after tripping")
	}
	if st, _, trips := b.snapshot(); st != breakerOpen || trips != 1 {
		t.Fatalf("state %v trips %d, want open/1", st, trips)
	}

	// A success resets the run even mid-sequence.
	b2 := newBreaker(3, time.Second)
	b2.failure(t0)
	b2.failure(t0)
	b2.success()
	b2.failure(t0)
	b2.failure(t0)
	if !b2.allow(t0) {
		t.Fatal("success must reset the consecutive-failure run")
	}

	// Cooldown elapses: exactly one half-open trial is admitted.
	t1 := t0.Add(1100 * time.Millisecond)
	if !b.allow(t1) {
		t.Fatal("cooldown elapsed but no trial admitted")
	}
	if b.allow(t1) {
		t.Fatal("second concurrent trial admitted while half-open")
	}
	// Trial fails: re-open, cooldown restarts from now.
	b.failure(t1)
	if b.allow(t1.Add(500 * time.Millisecond)) {
		t.Fatal("breaker closed during post-trial cooldown")
	}
	if _, _, trips := b.snapshot(); trips != 2 {
		t.Fatalf("trips %d, want 2 after failed trial", trips)
	}
	// Next trial succeeds: closed for good.
	t2 := t1.Add(1100 * time.Millisecond)
	if !b.allow(t2) {
		t.Fatal("second cooldown elapsed but no trial admitted")
	}
	b.success()
	if st, fails, _ := b.snapshot(); st != breakerClosed || fails != 0 {
		t.Fatalf("state %v fails %d, want closed/0 after successful trial", st, fails)
	}
	if !b.allow(t2) || !b.allow(t2) {
		t.Fatal("closed breaker must admit freely")
	}
}

// TestBreakerProbeCloses: a health-probe success closes an open breaker
// directly — the path a restarted backend takes back into the ring
// without waiting for a client request to volunteer as the trial.
func TestBreakerProbeCloses(t *testing.T) {
	t0 := time.Unix(2000, 0)
	b := newBreaker(1, time.Hour) // hair trigger, cooldown longer than the test
	b.failure(t0)
	if b.allow(t0.Add(time.Minute)) {
		t.Fatal("breaker should be open")
	}
	b.success() // the probe
	if !b.allow(t0.Add(2 * time.Minute)) {
		t.Fatal("probe success must close the breaker immediately")
	}
}
