package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/serve"
)

// The gateway deliberately does not import internal/serve; its tests
// do, standing up real backends on real listeners so every proxied
// byte crosses a TCP connection the way it would in production.

// testProc is one in-process backend: a serve.Server behind a real
// net.Listener, killable and restartable on the same port (the drill's
// SIGKILL stand-in: Close resets in-flight connections and refuses new
// ones, exactly what a killed process's kernel does).
type testProc struct {
	t    *testing.T
	name string
	addr string
	srv  *serve.Server
	hsrv *http.Server
}

func h2Net(t testing.TB) *nn.Network {
	t.Helper()
	net, err := nn.MLPSpec("h2", []int{9, 50, 50, 9}, nn.ActTanh, false).Build(7)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// startProc boots a backend serving model "h2" on addr ("127.0.0.1:0"
// picks a port; pass a previous proc's addr to "restart" it).
func startProc(t *testing.T, name, addr string) *testProc {
	t.Helper()
	s := serve.New(serve.Config{Workers: 1, RetryAfter: time.Second})
	if err := s.Register("h2", h2Net(t), numfmt.FP32); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	p := &testProc{t: t, name: name, addr: ln.Addr().String(), srv: s, hsrv: &http.Server{Handler: s.Handler()}}
	go p.hsrv.Serve(ln) //lint:ignore droppederr Serve returns ErrServerClosed on Close; the test owns the lifecycle
	t.Cleanup(p.kill)
	t.Cleanup(s.Close)
	return p
}

// kill is the SIGKILL stand-in: the listener closes and every open
// connection resets. Idempotent.
func (p *testProc) kill() {
	//lint:ignore droppederr Close error on an already-closed server is the idempotent path
	_ = p.hsrv.Close()
}

func (p *testProc) backend(weight int) Backend {
	return Backend{Name: p.name, Addr: p.addr, Weight: weight}
}

// fastCfg probes aggressively so tests converge in milliseconds, with
// retry/backoff tight enough that MaxAttempts resolves quickly.
func fastCfg() Config {
	return Config{
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     500 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  200 * time.Millisecond,
		MaxAttempts:      4,
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		RequestTimeout:   10 * time.Second,
		RetryAfter:       time.Second,
		Seed:             42,
	}
}

func newTestGateway(t *testing.T, cfg Config, procs ...*testProc) *Gateway {
	t.Helper()
	g := New(cfg)
	t.Cleanup(g.Close)
	list := make([]Backend, len(procs))
	for i, p := range procs {
		list[i] = p.backend(1)
	}
	if err := g.SetBackends(list); err != nil {
		t.Fatal(err)
	}
	if len(procs) > 0 {
		if err := g.WaitReady("h2", 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// gwServer mounts the gateway handler on a real listener and returns
// its base URL.
func gwServer(t *testing.T, g *Gateway) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: g.Handler()}
	go hs.Serve(ln) //lint:ignore droppederr Serve returns ErrServerClosed on Close; the test owns the lifecycle
	t.Cleanup(func() {
		//lint:ignore droppederr shutdown of a test server
		_ = hs.Close()
	})
	return "http://" + ln.Addr().String()
}

func predictBody(t testing.TB, scale float64) []byte {
	t.Helper()
	in := make([]float64, 9)
	for i := range in {
		in[i] = scale * float64(i+1) / 10
	}
	raw, err := json.Marshal(serve.PredictRequest{Model: "h2", Inputs: [][]float64{in}})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func post(t testing.TB, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestGatewayBitIdenticalToBackend: the core retry-safety invariant
// made visible — a predict through the gateway returns the exact bytes
// the backend returns when asked directly, whichever backend answers.
func TestGatewayBitIdenticalToBackend(t *testing.T) {
	p0 := startProc(t, "b0", "127.0.0.1:0")
	p1 := startProc(t, "b1", "127.0.0.1:0")
	g := newTestGateway(t, fastCfg(), p0, p1)
	base := gwServer(t, g)

	for i := 0; i < 20; i++ {
		body := predictBody(t, float64(i+1))
		// Reference: the backend asked directly.
		refResp, ref := post(t, "http://"+p0.addr+"/v1/predict", body)
		if refResp.StatusCode != http.StatusOK {
			t.Fatalf("reference predict: status %d: %s", refResp.StatusCode, ref)
		}
		gwResp, got := post(t, base+"/v1/predict", body)
		if gwResp.StatusCode != http.StatusOK {
			t.Fatalf("gateway predict %d: status %d: %s", i, gwResp.StatusCode, got)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("gateway predict %d not bit-identical to direct backend:\n gw  %s\n ref %s", i, got, ref)
		}
	}
	m := g.Metrics()
	if m.OK != 20 {
		t.Fatalf("ok_total %d, want 20", m.OK)
	}
}

// TestGatewayRetriesAroundDeadBackend: with probes effectively off (one
// initial sweep), a killed backend stays "ready" in the gateway's eyes
// and requests routed to it must recover by retrying onto the survivor
// — and still return bit-identical bytes.
func TestGatewayRetriesAroundDeadBackend(t *testing.T) {
	p0 := startProc(t, "b0", "127.0.0.1:0")
	p1 := startProc(t, "b1", "127.0.0.1:0")
	cfg := fastCfg()
	cfg.ProbeInterval = time.Hour // initial probe only; no recovery sweep
	g := newTestGateway(t, cfg, p0, p1)
	base := gwServer(t, g)

	p1.kill()
	sawRetry := false
	for i := 0; i < 40; i++ {
		body := predictBody(t, float64(i+1))
		refResp, ref := post(t, "http://"+p0.addr+"/v1/predict", body)
		if refResp.StatusCode != http.StatusOK {
			t.Fatalf("reference predict: %d", refResp.StatusCode)
		}
		gwResp, got := post(t, base+"/v1/predict", body)
		if gwResp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d after kill: status %d: %s", i, gwResp.StatusCode, got)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("predict %d: retried response not bit-identical", i)
		}
		if g.Metrics().Retries > 0 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("40 keys never routed to the dead backend — hash spread is broken")
	}
	// The dead backend's breaker must have tripped by now (threshold 3,
	// every attempt to it failed).
	var dead BackendStatus
	for _, b := range g.Backends() {
		if b.Name == "b1" {
			dead = b
		}
	}
	if dead.BreakerTrips == 0 {
		t.Fatalf("dead backend's breaker never tripped: %+v", dead)
	}
}

// TestGatewayAllDown503: every backend down must yield a typed 503
// naming the model — not a hang, not a bare 500.
func TestGatewayAllDown503(t *testing.T) {
	p0 := startProc(t, "b0", "127.0.0.1:0")
	g := newTestGateway(t, fastCfg(), p0)
	base := gwServer(t, g)

	p0.kill()
	// Wait for a probe to notice.
	deadline := time.Now().Add(5 * time.Second)
	for {
		bs := g.Backends()
		if len(bs) == 1 && !bs[0].Ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe never marked the killed backend unready")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, raw := post(t, base+"/v1/predict", predictBody(t, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-down predict: status %d body %s, want 503", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("all-down 503 carries no Retry-After")
	}
	var body struct {
		Error  string `json:"error"`
		Source string `json:"source"`
		Model  string `json:"model"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("all-down 503 body is not JSON: %s", raw)
	}
	if body.Model != "h2" || body.Source != "gateway" || body.Error == "" {
		t.Fatalf("all-down 503 body %+v, want model=h2 source=gateway and an error", body)
	}
}

// TestGatewayNoBackendsConfigured: an empty fleet is a distinct, typed
// condition.
func TestGatewayNoBackendsConfigured(t *testing.T) {
	g := New(fastCfg())
	t.Cleanup(g.Close)
	base := gwServer(t, g)
	resp, raw := post(t, base+"/v1/predict", predictBody(t, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if !bytes.Contains(raw, []byte("no backends configured")) {
		t.Fatalf("body %s, want 'no backends configured'", raw)
	}
}

// TestGatewayUnknownModel404: a healthy fleet that doesn't advertise
// the model is a client error, not an availability problem.
func TestGatewayUnknownModel404(t *testing.T) {
	p0 := startProc(t, "b0", "127.0.0.1:0")
	g := newTestGateway(t, fastCfg(), p0)
	base := gwServer(t, g)

	raw, err := json.Marshal(serve.PredictRequest{Model: "nope", Inputs: [][]float64{make([]float64, 9)}})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, base+"/v1/predict", raw)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-model status %d body %s, want 404", resp.StatusCode, body)
	}
}

// requestsTotal sums proxied request attempts across the fleet — the
// backend-side counter the cache assertions key off.
func requestsTotal(g *Gateway) int64 {
	var n int64
	for _, b := range g.Backends() {
		n += b.Requests
	}
	return n
}

// TestGatewayPlanCache: a repeated /v1/plan is served from the gateway
// cache without touching any backend; a registry reload invalidates it.
func TestGatewayPlanCache(t *testing.T) {
	p0 := startProc(t, "b0", "127.0.0.1:0")
	g := newTestGateway(t, fastCfg(), p0)
	base := gwServer(t, g)

	plan, err := json.Marshal(serve.PlanRequest{Model: "h2", Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	resp1, body1 := post(t, base+"/v1/plan", plan)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d: %s", resp1.StatusCode, body1)
	}
	after1 := requestsTotal(g)

	resp2, body2 := post(t, base+"/v1/plan", plan)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body1, body2) {
		t.Fatalf("cached plan differs: status %d\n 1st %s\n 2nd %s", resp2.StatusCode, body1, body2)
	}
	if resp2.Header.Get("X-Errprop-Cache") != "hit" {
		t.Fatal("second plan was not a cache hit")
	}
	if got := requestsTotal(g); got != after1 {
		t.Fatalf("cached plan touched a backend: requests %d -> %d", after1, got)
	}
	// A different tolerance is a different plan — must miss.
	plan2, err := json.Marshal(serve.PlanRequest{Model: "h2", Tol: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	post(t, base+"/v1/plan", plan2)
	afterMiss := requestsTotal(g)
	if afterMiss == after1 {
		t.Fatal("changed tolerance did not miss the cache")
	}

	// Registry reload: same fleet, but the cache must drop wholesale.
	if err := g.SetBackends([]Backend{p0.backend(1)}); err != nil {
		t.Fatal(err)
	}
	if err := g.WaitReady("h2", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	resp3, body3 := post(t, base+"/v1/plan", plan)
	if resp3.StatusCode != http.StatusOK || !bytes.Equal(body1, body3) {
		t.Fatalf("post-reload plan differs from original")
	}
	if resp3.Header.Get("X-Errprop-Cache") == "hit" {
		t.Fatal("reload did not invalidate the plan cache")
	}
	if got := requestsTotal(g); got == afterMiss {
		t.Fatal("post-reload plan did not touch a backend")
	}

	// Cache stats surface in metrics.
	m := g.Metrics()
	if m.CacheHits < 1 || m.CacheMisses < 2 {
		t.Fatalf("cache stats hits=%d misses=%d, want >=1/>=2", m.CacheHits, m.CacheMisses)
	}
}

// TestGatewayModelsCache: /v1/models caches like /v1/plan.
func TestGatewayModelsCache(t *testing.T) {
	p0 := startProc(t, "b0", "127.0.0.1:0")
	g := newTestGateway(t, fastCfg(), p0)
	base := gwServer(t, g)

	resp1, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	body1, _ := io.ReadAll(resp1.Body)
	resp1.Body.Close()
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("models: %d %s", resp1.StatusCode, body1)
	}
	after1 := requestsTotal(g)
	resp2, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get("X-Errprop-Cache") != "hit" || !bytes.Equal(body1, body2) {
		t.Fatal("second /v1/models was not a byte-identical cache hit")
	}
	if requestsTotal(g) != after1 {
		t.Fatal("cached /v1/models touched a backend")
	}
}

// TestGatewayZeroDowntimeAddRemove: grow the fleet, then shrink it, with
// traffic flowing the whole time and not one failed request.
func TestGatewayZeroDowntimeAddRemove(t *testing.T) {
	p0 := startProc(t, "b0", "127.0.0.1:0")
	p1 := startProc(t, "b1", "127.0.0.1:0")
	g := newTestGateway(t, fastCfg(), p0)
	base := gwServer(t, g)

	send := func(i int) {
		t.Helper()
		resp, raw := post(t, base+"/v1/predict", predictBody(t, float64(i+1)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d during membership change: %d %s", i, resp.StatusCode, raw)
		}
	}
	for i := 0; i < 5; i++ {
		send(i)
	}
	// Grow: add b1. It takes traffic only after a probe reports it ready.
	if err := g.SetBackends([]Backend{p0.backend(1), p1.backend(1)}); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 10; i++ {
		send(i)
	}
	// Shrink: retire b0. The gateway must route around it instantly.
	if err := g.SetBackends([]Backend{p1.backend(1)}); err != nil {
		t.Fatal(err)
	}
	if err := g.WaitReady("h2", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		send(i)
	}
	if m := g.Metrics(); m.Failed != 0 {
		t.Fatalf("failed_total %d during zero-downtime membership changes, want 0", m.Failed)
	}
}

// TestGatewayCorruptReloadKeepsFleet: a corrupt registry manifest is
// refused with a typed integrity error and the serving fleet is
// untouched — reloads are atomic or nothing.
func TestGatewayCorruptReloadKeepsFleet(t *testing.T) {
	p0 := startProc(t, "b0", "127.0.0.1:0")
	g := newTestGateway(t, fastCfg(), p0)
	base := gwServer(t, g)

	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.reg")
	reg := &Registry{Backends: []Backend{p0.backend(1)}}
	if err := WriteRegistryFile(path, reg); err != nil {
		t.Fatal(err)
	}
	if err := g.LoadRegistryFile(path); err != nil {
		t.Fatal(err)
	}
	before := g.Backends()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = g.LoadRegistryFile(path)
	if err == nil {
		t.Fatal("corrupt registry reload succeeded")
	}
	if !integrity.IsIntegrityError(err) {
		t.Fatalf("corrupt reload error %v is not a typed integrity error", err)
	}
	after := g.Backends()
	if len(after) != len(before) || after[0].Name != before[0].Name || after[0].Addr != before[0].Addr {
		t.Fatalf("fleet changed across a refused reload:\n before %+v\n after  %+v", before, after)
	}
	// And it still serves.
	if err := g.WaitReady("h2", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	resp, raw2 := post(t, base+"/v1/predict", predictBody(t, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after refused reload: %d %s", resp.StatusCode, raw2)
	}
	if g.Metrics().Reloads != 1 {
		t.Fatalf("registry_reloads_total %d, want 1 (the refused reload must not count)", g.Metrics().Reloads)
	}
}

// TestGatewayHealthzAlwaysAnswers: gateway liveness is unconditional —
// 200 with ready=false over a dead fleet.
func TestGatewayHealthzAlwaysAnswers(t *testing.T) {
	p0 := startProc(t, "b0", "127.0.0.1:0")
	g := newTestGateway(t, fastCfg(), p0)
	base := gwServer(t, g)

	p0.kill()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Status string `json:"status"`
			Ready  bool   `json:"ready"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gateway healthz %d, want 200 always (liveness)", resp.StatusCode)
		}
		if !h.Ready && h.Status == "degraded" {
			return // probe noticed; liveness stayed 200 throughout
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported degraded: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
