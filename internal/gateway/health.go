package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// backendHealth is the wire shape of a backend's GET /healthz body
// (internal/serve.Health, redeclared here so the gateway depends only
// on the HTTP surface, not the serve package).
type backendHealth struct {
	Status     string   `json:"status"`
	Ready      bool     `json:"ready"`
	Draining   bool     `json:"draining"`
	QueueDepth int      `json:"queue_depth"`
	Models     []string `json:"models"`
}

// probe performs one active health check against a backend and folds
// the outcome into its routing state:
//
//   - 200 + ready:true   -> alive, ready: routable.
//   - 200 + ready:false  -> alive, not ready (no model registered yet):
//     not routable, but not a failure — the breaker is untouched.
//   - 503 (draining)     -> alive, not ready: the backend is going away
//     gracefully; stop routing to it *before* requests start bouncing
//     off its ErrDraining responses. Not a breaker failure.
//   - anything else      -> dead or broken: not routable, and a breaker
//     failure, so consecutive probe failures alone trip the breaker and
//     a recovered backend's first good probe re-closes it within one
//     probe interval — no client request needs to act as the trial.
func (g *Gateway) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+b.addr+"/healthz", nil)
	if err != nil {
		b.setProbe(false, false, nil, err.Error())
		b.breaker.failure(time.Now())
		g.metrics.probeFails.Add(1)
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		b.setProbe(false, false, nil, err.Error())
		b.breaker.failure(time.Now())
		g.metrics.probeFails.Add(1)
		return
	}
	defer resp.Body.Close()
	var h backendHealth
	// Bound the read: a broken backend must not feed the gateway an
	// unbounded health body.
	decodeErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h)
	switch {
	case resp.StatusCode == http.StatusOK && decodeErr == nil:
		b.setProbe(true, h.Ready, h.Models, "")
		b.breaker.success()
	case resp.StatusCode == http.StatusServiceUnavailable && decodeErr == nil:
		// Graceful drain: alive but refusing new work. Keep the advertised
		// model list (the drain response still carries it) so the backend
		// re-enters routing instantly if the drain is a rolling restart.
		b.setProbe(true, false, h.Models, "draining")
		b.breaker.success()
	default:
		detail := fmt.Sprintf("healthz status %d", resp.StatusCode)
		if decodeErr != nil {
			detail = fmt.Sprintf("healthz status %d: undecodable body: %v", resp.StatusCode, decodeErr)
		}
		b.setProbe(false, false, nil, detail)
		b.breaker.failure(time.Now())
		g.metrics.probeFails.Add(1)
	}
}
