package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over the gateway's backends. Each
// backend contributes Weight * cfg.VNodes virtual points derived from
// its *name* (not its address), so a backend that restarts on a new
// port keeps its slice of the keyspace, and adding or removing one
// backend remaps only the keys that hashed to its points — the property
// that makes zero-downtime add/remove cheap on any gateway-side cache
// keyed by backend affinity.
//
// The ring is immutable once built; the gateway swaps whole rings under
// its lock when the backend set changes.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	b    *backend
}

// hashKey is the ring's hash: FNV-1a 64 run through a splitmix64-style
// finalizer, stable across processes and runs (routing decisions must
// be reproducible for drill replay). The finalizer matters: raw FNV-1a
// of short sequential labels like "b1#0".."b1#191" differs mostly by
// one trailing byte, and a single FNV multiply leaves those hashes in
// clustered arithmetic progressions — virtual nodes then bunch together
// on the circle and key ownership stops tracking point count.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// hashBytes hashes a request body for the ring key.
func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: full avalanche, so nearby inputs
// land far apart on the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// buildRing lays out the backends' virtual points. vnodes is the
// per-weight-unit multiplier (Config.VNodes).
func buildRing(backends []*backend, vnodes int) *ring {
	var points []ringPoint
	for _, b := range backends {
		w := b.weight
		if w <= 0 {
			w = 1
		}
		for v := 0; v < w*vnodes; v++ {
			points = append(points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", b.name, v)), b: b})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Tie-break on name so the ring order is deterministic even on a
		// (vanishingly unlikely) 64-bit hash collision.
		return points[i].b.name < points[j].b.name
	})
	return &ring{points: points}
}

// order returns the distinct backends in ring-walk order starting at
// key's position: element 0 is the primary owner, the rest are the
// fallback sequence a retry walks. The order is a pure function of
// (key, backend set), so two gateways over the same registry route and
// retry identically.
func (r *ring) order(key uint64) []*backend {
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	seen := make(map[*backend]bool)
	var out []*backend
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.b] {
			seen[p.b] = true
			out = append(out, p.b)
		}
	}
	return out
}
