package gateway

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scidata/errprop/internal/artifact"
	"github.com/scidata/errprop/internal/integrity"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/serve"
)

// buildH2Artifact compiles the shared h2 test network into an
// ahead-of-time artifact at format f.
func buildH2Artifact(t *testing.T, f numfmt.Format) *artifact.Artifact {
	t.Helper()
	art, err := artifact.Build(h2Net(t), f)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

// TestRegistryArtifactRefsRoundTrip: a manifest with pinned artifacts
// takes the v2 frame and round-trips exactly; one without stays byte
// for byte on the v1 frame.
func TestRegistryArtifactRefsRoundTrip(t *testing.T) {
	reg := sampleRegistry()
	reg.Artifacts = []ArtifactRef{
		{Model: "h2", Path: "models/h2.aot", Checksum: "crc32c:0123abcd"},
		{Model: "flame", Path: "/abs/flame.aot", Checksum: "crc32c:00000000"},
	}
	raw, err := reg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:len(registryMagicV2)]) != registryMagicV2 {
		t.Fatalf("manifest with artifacts framed as %q, want %q", raw[:len(registryMagicV2)], registryMagicV2)
	}
	dec, err := DecodeRegistry(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, reg) {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", dec, reg)
	}
	re, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, raw) {
		t.Fatal("v2 decode/encode is not a bijection")
	}

	// No artifacts: identical to the legacy v1 framing.
	v1, err := sampleRegistry().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(v1[:len(registryMagic)]) != registryMagic {
		t.Fatalf("manifest without artifacts framed as %q, want %q", v1[:len(registryMagic)], registryMagic)
	}
}

// TestRegistryArtifactRefsRejected: structural rules on refs are
// enforced on encode, and a hand-built v2 frame declaring zero refs is
// refused (it would be a second encoding of a v1-encodable registry).
func TestRegistryArtifactRefsRejected(t *testing.T) {
	bad := []ArtifactRef{
		{Model: "", Path: "x.aot", Checksum: "crc32c:0123abcd"},
		{Model: "h2", Path: "", Checksum: "crc32c:0123abcd"},
		{Model: "h2", Path: "x.aot", Checksum: "crc32c:0123ABCD"},
		{Model: "h2", Path: "x.aot", Checksum: "sha256:0123abcd"},
		{Model: "h2", Path: "x.aot", Checksum: "crc32c:0123abc"},
	}
	for i, ref := range bad {
		reg := sampleRegistry()
		reg.Artifacts = []ArtifactRef{ref}
		if _, err := reg.Encode(); err == nil {
			t.Errorf("bad ref %d encoded: %+v", i, ref)
		}
	}
	dup := sampleRegistry()
	dup.Artifacts = []ArtifactRef{
		{Model: "h2", Path: "a.aot", Checksum: "crc32c:0123abcd"},
		{Model: "h2", Path: "b.aot", Checksum: "crc32c:0123abcd"},
	}
	if _, err := dup.Encode(); err == nil {
		t.Error("duplicate artifact model encoded")
	}

	// v2 frame, zero refs: splice an empty artifact count onto a valid
	// v1 body and re-frame under the v2 magic.
	v1, err := sampleRegistry().Encode()
	if err != nil {
		t.Fatal(err)
	}
	body := append(append([]byte(nil), v1[len(registryMagic)+12:]...), 0, 0, 0, 0)
	frame := []byte(registryMagicV2)
	frame = binary.LittleEndian.AppendUint64(frame, uint64(len(body)))
	frame = binary.LittleEndian.AppendUint32(frame, integrity.Checksum(body))
	frame = append(frame, body...)
	if _, err := DecodeRegistry(frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v2 frame with zero artifacts: err %v, want ErrCorrupt", err)
	}
}

// artifactBackend is a real serve.Server on a real listener whose
// non-health traffic is counted, so tests can prove the gateway
// answered without a backend round-trip.
type artifactBackend struct {
	addr string
	hits atomic.Int64
}

func startArtifactBackend(t *testing.T, f numfmt.Format) *artifactBackend {
	t.Helper()
	s := serve.New(serve.Config{Workers: 1, RetryAfter: time.Second})
	if err := s.Register("h2", h2Net(t), f); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	b := &artifactBackend{}
	inner := s.Handler()
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			b.hits.Add(1)
		}
		inner.ServeHTTP(w, r)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.addr = ln.Addr().String()
	hs := &http.Server{Handler: h}
	go hs.Serve(ln) //lint:ignore droppederr Serve returns ErrServerClosed on Close; the test owns the lifecycle
	t.Cleanup(func() {
		//lint:ignore droppederr shutdown of a test server
		_ = hs.Close()
	})
	return b
}

// writeArtifactRegistry compiles the h2 artifact into dir, writes a
// manifest pinning it (relative path) over the given backend, and
// returns the manifest path and the artifact.
func writeArtifactRegistry(t *testing.T, dir, backendAddr string, f numfmt.Format) (string, *artifact.Artifact) {
	t.Helper()
	art := buildH2Artifact(t, f)
	if err := artifact.WriteFile(filepath.Join(dir, "h2.aot"), art); err != nil {
		t.Fatal(err)
	}
	reg := &Registry{
		Backends:  []Backend{{Name: "b0", Addr: backendAddr, Weight: 1}},
		Artifacts: []ArtifactRef{{Model: "h2", Path: "h2.aot", Checksum: art.Checksum}},
	}
	regPath := filepath.Join(dir, "fleet.reg")
	if err := WriteRegistryFile(regPath, reg); err != nil {
		t.Fatal(err)
	}
	return regPath, art
}

// TestGatewayPlanFromArtifact: with the manifest pinning a verified
// artifact, /v1/plan answers gateway-side — byte-identical to the
// backend's answer on success and error paths alike — and /v1/models
// answers from the artifact's static contract. Zero backend
// round-trips for either.
func TestGatewayPlanFromArtifact(t *testing.T) {
	be := startArtifactBackend(t, numfmt.INT8)
	dir := t.TempDir()
	regPath, art := writeArtifactRegistry(t, dir, be.addr, numfmt.INT8)

	g := New(fastCfg())
	t.Cleanup(g.Close)
	if err := g.LoadRegistryFile(regPath); err != nil {
		t.Fatal(err)
	}
	if err := g.WaitReady("h2", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	base := gwServer(t, g)

	cases := []string{
		`{"model":"h2","tol":0.5}`,
		`{"model":"h2","tol":0.5,"norm":"l2"}`,
		`{"model":"h2","tol":1e-3,"norm":"linf","quant_fraction":0.25}`,
		`{"model":"h2","tol":0.5,"conservative":true}`,
		`{"model":"h2","tol":0.5,"formats":["fp16","bf16","int8"]}`,
		`{"model":"h2","tol":0.5,"norm":"manhattan"}`,
		`{"model":"h2","tol":0.5,"formats":["fp13"]}`,
		`{"model":"h2","tol":-1}`,
		`{"model":"h2","tol":0}`,
	}
	type answer struct {
		status int
		body   []byte
	}
	got := make([]answer, len(cases))
	before := be.hits.Load()
	for i, c := range cases {
		resp, raw := post(t, base+"/v1/plan", []byte(c))
		got[i] = answer{resp.StatusCode, raw}
	}
	if n := be.hits.Load() - before; n != 0 {
		t.Fatalf("artifact-pinned /v1/plan made %d backend round-trips, want 0", n)
	}
	for i, c := range cases {
		resp, ref := post(t, "http://"+be.addr+"/v1/plan", []byte(c))
		if got[i].status != resp.StatusCode {
			t.Fatalf("case %d %s: gateway status %d, backend %d", i, c, got[i].status, resp.StatusCode)
		}
		if !bytes.Equal(got[i].body, ref) {
			t.Fatalf("case %d %s: gateway plan not byte-identical:\n gw  %s\n ref %s", i, c, got[i].body, ref)
		}
	}

	// /v1/models: answered from the artifact, carrying its checksum
	// identity and certified bound, again without a round-trip.
	before = be.hits.Load()
	mresp, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models map[string]gwModelStats
	if err := json.NewDecoder(mresp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if n := be.hits.Load() - before; n != 0 {
		t.Fatalf("artifact-pinned /v1/models made %d backend round-trips, want 0", n)
	}
	m, ok := models["h2"]
	if !ok {
		t.Fatalf("gateway /v1/models misses h2: %v", models)
	}
	if m.Checksum != art.Checksum {
		t.Fatalf("models checksum %s, want artifact identity %s", m.Checksum, art.Checksum)
	}
	if m.Format != "int8" || m.InDim != 9 || m.OutDim != 9 {
		t.Fatalf("models static fields wrong: %+v", m)
	}
	if m.QuantBound != art.QuantBound {
		t.Fatalf("models bound %g, want certified %g", m.QuantBound, art.QuantBound)
	}

	// Predict still routes to the fleet: the artifact answers planning
	// and contract queries, not inference.
	presp, praw := post(t, base+"/v1/predict", predictBody(t, 1))
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("predict through artifact-pinned gateway: %d %s", presp.StatusCode, praw)
	}
	if be.hits.Load() == before {
		t.Fatal("predict made no backend round-trip")
	}
}

// TestLoadRegistryFileRefusesBadArtifact: a manifest whose pinned
// artifact is missing, corrupt, or checksum-mismatched is refused as a
// unit — typed error, fleet and artifacts unchanged.
func TestLoadRegistryFileRefusesBadArtifact(t *testing.T) {
	be := startArtifactBackend(t, numfmt.FP16)
	dir := t.TempDir()
	regPath, art := writeArtifactRegistry(t, dir, be.addr, numfmt.FP16)

	g := New(fastCfg())
	t.Cleanup(g.Close)
	if err := g.LoadRegistryFile(regPath); err != nil {
		t.Fatal(err)
	}
	wantBackends := g.Backends()

	assertUnchanged := func(when string) {
		t.Helper()
		if a, ok := g.artifactFor("h2"); !ok || a.Checksum != art.Checksum {
			t.Fatalf("%s: pinned artifact changed (ok=%v)", when, ok)
		}
		now := g.Backends()
		if len(now) != len(wantBackends) || now[0].Name != wantBackends[0].Name || now[0].Addr != wantBackends[0].Addr {
			t.Fatalf("%s: fleet changed: %+v", when, now)
		}
	}

	// Checksum mismatch: pin a valid-shaped but wrong identity.
	wrong := "crc32c:00000000"
	if wrong == art.Checksum {
		wrong = "crc32c:00000001"
	}
	reg := &Registry{
		Backends:  []Backend{{Name: "b0", Addr: be.addr, Weight: 1}},
		Artifacts: []ArtifactRef{{Model: "h2", Path: "h2.aot", Checksum: wrong}},
	}
	badPath := filepath.Join(dir, "bad.reg")
	if err := WriteRegistryFile(badPath, reg); err != nil {
		t.Fatal(err)
	}
	err := g.LoadRegistryFile(badPath)
	if !errors.Is(err, ErrArtifactMismatch) {
		t.Fatalf("checksum-mismatch reload: err %v, want ErrArtifactMismatch", err)
	}
	assertUnchanged("after mismatch refusal")

	// Corrupt artifact file: flip one byte mid-body.
	aotPath := filepath.Join(dir, "h2.aot")
	raw, err := os.ReadFile(aotPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(aotPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = g.LoadRegistryFile(regPath)
	if err == nil || !integrity.IsIntegrityError(err) {
		t.Fatalf("corrupt-artifact reload: err %v, want integrity error", err)
	}
	assertUnchanged("after corruption refusal")

	// Missing artifact file.
	if err := os.Remove(aotPath); err != nil {
		t.Fatal(err)
	}
	if err := g.LoadRegistryFile(regPath); err == nil {
		t.Fatal("reload with missing artifact file succeeded")
	}
	assertUnchanged("after missing-file refusal")
}
