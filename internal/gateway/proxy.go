package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"github.com/scidata/errprop/internal/artifact"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/detrand"
	"github.com/scidata/errprop/internal/numfmt"
)

// blobContentType mirrors serve.BlobContentType (the gateway routes on
// the header without importing the serve package).
const blobContentType = "application/x-errprop-blob"

// Handler returns the gateway's HTTP surface. It mirrors a backend's
// surface — a client pointed at the gateway instead of a single daemon
// needs no changes.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /v1/models", g.handleModels)
	mux.HandleFunc("POST /v1/predict", g.handlePredict)
	mux.HandleFunc("POST /v1/plan", g.handlePlan)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	//lint:ignore droppederr response-write failure, not a codec bound; the client is gone
	_ = enc.Encode(v)
}

// writeError emits a gateway-generated error: always JSON, always
// typed, with Retry-After on 503s. The fields name what failed so a
// client (or the fault drill) can distinguish "the gateway broke" from
// "the fleet is momentarily short a backend".
func (g *Gateway) writeError(w http.ResponseWriter, status int, model, detail string) {
	if status == http.StatusServiceUnavailable {
		secs := int(math.Ceil(g.cfg.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	body := map[string]string{"error": detail, "source": "gateway"}
	if model != "" {
		body["model"] = model
	}
	writeJSON(w, status, body)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	backends := g.Backends()
	ready := false
	for _, b := range backends {
		if b.Ready && !b.Draining {
			ready = true
		}
	}
	status := "ok"
	if !ready {
		status = "degraded"
	}
	// The gateway's /healthz is its *liveness*: 200 as long as the
	// process can answer. Routability is the ready field, per backend
	// and overall — a gateway over a dead fleet is alive and degraded.
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"ready":    ready,
		"backends": backends,
	})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Metrics())
}

// handlePredict routes one inference request: extract the model name
// (JSON body or, for blob bodies, the query string), consistent-hash
// (model, body) to a backend, and relay with bounded retry.
func (g *Gateway) handlePredict(w http.ResponseWriter, r *http.Request) {
	g.metrics.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		g.metrics.failed.Add(1)
		g.writeError(w, http.StatusBadRequest, "", fmt.Sprintf("reading request body: %v", err))
		return
	}
	var model string
	if r.Header.Get("Content-Type") == blobContentType {
		model = r.URL.Query().Get("model")
	} else {
		var peek struct {
			Model string `json:"model"`
		}
		if err := json.Unmarshal(body, &peek); err != nil {
			g.metrics.failed.Add(1)
			g.writeError(w, http.StatusBadRequest, "", fmt.Sprintf("decoding request: %v", err))
			return
		}
		model = peek.Model
	}
	if model == "" {
		g.metrics.failed.Add(1)
		g.writeError(w, http.StatusBadRequest, "", "request names no model")
		return
	}
	key := hashKey(model) ^ hashBytes(body)
	g.relay(w, r, model, key, body, nil)
}

// handlePlan serves /v1/plan, preferring the gateway-side cache: plan
// responses are deterministic per (model, plan parameters), so repeat
// lookups never touch a backend until a registry reload invalidates
// the cache.
func (g *Gateway) handlePlan(w http.ResponseWriter, r *http.Request) {
	g.metrics.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		g.metrics.failed.Add(1)
		g.writeError(w, http.StatusBadRequest, "", fmt.Sprintf("reading request body: %v", err))
		return
	}
	var peek struct {
		Model string `json:"model"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		g.metrics.failed.Add(1)
		g.writeError(w, http.StatusBadRequest, "", fmt.Sprintf("decoding request: %v", err))
		return
	}
	if peek.Model == "" {
		g.metrics.failed.Add(1)
		g.writeError(w, http.StatusBadRequest, "", "request names no model")
		return
	}
	// A model pinned to a verified artifact is planned gateway-side: the
	// artifact carries the error-flow graph and build-time step tables,
	// so the answer is computed here, byte-identical to a backend's, with
	// zero backend round-trips.
	if art, ok := g.artifactFor(peek.Model); ok {
		g.planFromArtifact(w, art, peek.Model, body)
		return
	}
	// The cache key is the request's exact bytes: it subsumes (model,
	// format, tolerance, norm, quant fraction) — any plan-relevant field
	// change misses and re-consults a backend.
	cacheKey := "plan\x00" + string(body)
	if resp, ok := g.cache.get(cacheKey); ok {
		serveCached(w, resp)
		g.metrics.ok.Add(1)
		return
	}
	key := hashKey(peek.Model) ^ hashBytes(body)
	g.relay(w, r, peek.Model, key, body, func(resp cachedResp) {
		g.cache.put(cacheKey, resp)
	})
}

// gwPlanRequest and gwPlanResponse mirror the backend's /v1/plan wire
// structs field for field (the gateway deliberately does not import
// internal/serve): an artifact-computed plan response must be
// byte-identical to the answer a backend would have produced.
type gwPlanRequest struct {
	Model         string   `json:"model"`
	Tol           float64  `json:"tol"`
	Norm          string   `json:"norm,omitempty"`
	QuantFraction float64  `json:"quant_fraction,omitempty"`
	Conservative  bool     `json:"conservative,omitempty"`
	Formats       []string `json:"formats,omitempty"`
}

type gwPlanResponse struct {
	Model          string   `json:"model"`
	Norm           string   `json:"norm"`
	Format         string   `json:"format"`
	QuantBound     float64  `json:"quant_bound"`
	CompressBudget float64  `json:"compress_budget"`
	InputTolL2     *float64 `json:"input_tol_l2"`
	InputTolLinf   *float64 `json:"input_tol_linf"`
	TotalBound     float64  `json:"total_bound"`
}

// localError mirrors a backend's error body shape ({"error": ...}, no
// gateway source marker) so artifact-local answers stay byte-compatible
// with relayed ones on every path.
func localError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// planFromArtifact answers /v1/plan from a pinned artifact's error-flow
// graph and build-time step tables, mirroring the backend handler's
// semantics — defaults, error texts, status codes — exactly.
func (g *Gateway) planFromArtifact(w http.ResponseWriter, art *artifact.Artifact, model string, body []byte) {
	var req gwPlanRequest
	if err := json.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
		g.metrics.failed.Add(1)
		localError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	norm, err := parseGWNorm(req.Norm)
	if err != nil {
		g.metrics.failed.Add(1)
		localError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.QuantFraction == 0 {
		req.QuantFraction = 0.5
	}
	var formats []numfmt.Format
	for _, name := range req.Formats {
		f, err := numfmt.ParseFormat(name)
		if err != nil {
			g.metrics.failed.Add(1)
			localError(w, http.StatusBadRequest, "%v", err)
			return
		}
		formats = append(formats, f)
	}
	plan, err := core.PlanGraphSteps(art.Root, art.StepsFor, core.PlanRequest{
		Tol:           req.Tol,
		Norm:          norm,
		QuantFraction: req.QuantFraction,
		Formats:       formats,
		Conservative:  req.Conservative,
	})
	if err != nil {
		g.metrics.failed.Add(1)
		localError(w, http.StatusBadRequest, "planning: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, gwPlanResponse{
		Model:          model,
		Norm:           norm.String(),
		Format:         plan.Format.String(),
		QuantBound:     plan.QuantBound,
		CompressBudget: plan.CompressBudget,
		InputTolL2:     gwFiniteOrNil(plan.InputTolL2),
		InputTolLinf:   gwFiniteOrNil(plan.InputTolLinf),
		TotalBound:     plan.TotalBound,
	})
	g.metrics.ok.Add(1)
}

// parseGWNorm mirrors the backend's norm parsing ("" defaults to linf).
func parseGWNorm(name string) (core.Norm, error) {
	switch name {
	case "", "linf":
		return core.NormLinf, nil
	case "l2":
		return core.NormL2, nil
	}
	return 0, fmt.Errorf("unknown norm %q (want \"linf\" or \"l2\")", name)
}

// gwFiniteOrNil mirrors the backend's null encoding of non-finite
// tolerances.
func gwFiniteOrNil(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// gwModelStats mirrors the backend's per-model /v1/models entry. An
// artifact-derived entry carries the static contract fields — format,
// dims, certified bound, checksum identity — with zeroed traffic
// counters (the gateway answers without consulting any backend).
type gwModelStats struct {
	Format     string  `json:"format"`
	InDim      int     `json:"in_dim"`
	OutDim     int     `json:"out_dim"`
	QuantBound float64 `json:"quant_bound"`
	Checksum   string  `json:"checksum"`
	Requests   int64   `json:"requests_total"`
	Samples    int64   `json:"samples_total"`
	Admitted   int64   `json:"admitted_total"`
	QueueDepth int     `json:"queue_depth"`
}

// handleModels serves /v1/models. A registry with pinned artifacts
// answers entirely gateway-side from their static contract fields;
// otherwise the response comes from cache or one backend (identical
// static fields fleet-wide; the per-model counters are a snapshot from
// fill time).
func (g *Gateway) handleModels(w http.ResponseWriter, r *http.Request) {
	g.metrics.requests.Add(1)
	if names, arts := g.artifactModels(); len(names) > 0 {
		out := make(map[string]gwModelStats, len(names))
		for _, name := range names {
			a := arts[name]
			out[name] = gwModelStats{
				Format:     a.Format.String(),
				InDim:      a.Net.InputDim,
				OutDim:     a.Program.OutDim,
				QuantBound: a.QuantBound,
				Checksum:   a.Checksum,
			}
		}
		writeJSON(w, http.StatusOK, out)
		g.metrics.ok.Add(1)
		return
	}
	const cacheKey = "models"
	if resp, ok := g.cache.get(cacheKey); ok {
		serveCached(w, resp)
		g.metrics.ok.Add(1)
		return
	}
	g.relay(w, r, "", hashKey(cacheKey), nil, func(resp cachedResp) {
		g.cache.put(cacheKey, resp)
	})
}

func serveCached(w http.ResponseWriter, resp cachedResp) {
	if resp.contentType != "" {
		w.Header().Set("Content-Type", resp.contentType)
	}
	w.Header().Set("X-Errprop-Cache", "hit")
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// relay sends the request to the fleet with bounded retry and copies
// the chosen backend's response to the client verbatim. model may be
// empty for model-agnostic endpoints (/v1/models). cacheFill, when
// non-nil, receives successful (2xx) responses for caching.
//
// Retry policy: connection errors and 503s are retried — both mean "this
// backend cannot answer right now" and both are safe to re-send because
// backend responses are bit-identical for the same request bytes. Any
// other response, including 4xx and non-503 5xx, is relayed as-is:
// those are deterministic answers, and re-asking a different backend
// would produce the same bytes.
func (g *Gateway) relay(w http.ResponseWriter, r *http.Request, model string, key uint64, body []byte, cacheFill func(cachedResp)) {
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()

	var lastDetail string
	attempt := 0
	for attempt < g.cfg.MaxAttempts {
		b := g.pickBackend(model, key)
		if b == nil {
			// No eligible backend at all: classify and fail loudly now —
			// waiting out retries cannot help routing when the ring has
			// nothing to offer.
			g.failNoBackend(w, model, lastDetail)
			return
		}
		attempt++
		b.requests.Add(1)
		resp, err := g.send(ctx, b, r, body)
		now := time.Now()
		if err != nil {
			// Connection-level failure: dial refused, reset mid-flight,
			// timeout. The backend may be mid-SIGKILL; count it against the
			// breaker and walk on.
			b.failures.Add(1)
			b.breaker.failure(now)
			lastDetail = fmt.Sprintf("backend %s: %v", b.name, err)
			if ctx.Err() != nil {
				break
			}
			if attempt < g.cfg.MaxAttempts {
				if !g.backoffWait(ctx, key, attempt, 0) {
					break
				}
				g.metrics.retries.Add(1)
			}
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Backend is shedding or draining; honor its Retry-After as the
			// backoff floor (capped at BackoffMax) and try elsewhere.
			retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			b.failures.Add(1)
			b.breaker.failure(now)
			lastDetail = fmt.Sprintf("backend %s: 503", b.name)
			if attempt < g.cfg.MaxAttempts {
				if !g.backoffWait(ctx, key, attempt, retryAfter) {
					break
				}
				g.metrics.retries.Add(1)
			}
			continue
		}
		// An answer. Relay it byte for byte.
		b.proxiedOK.Add(1)
		b.breaker.success()
		g.relayResponse(w, resp, cacheFill)
		return
	}
	// Attempts exhausted (or the request deadline consumed them).
	g.metrics.failed.Add(1)
	if ctx.Err() != nil {
		g.writeError(w, http.StatusGatewayTimeout, model,
			fmt.Sprintf("request timed out after %s (%d attempts; last: %s)", g.cfg.RequestTimeout, attempt, lastDetail))
		return
	}
	g.writeError(w, http.StatusBadGateway, model,
		fmt.Sprintf("no backend answered after %d attempts; last: %s", attempt, lastDetail))
}

// pickBackend walks the ring from key and returns the first eligible
// backend, or nil.
func (g *Gateway) pickBackend(model string, key uint64) *backend {
	now := time.Now()
	for _, b := range g.ringOrder(key) {
		if b.eligible(model, now) {
			return b
		}
	}
	return nil
}

// failNoBackend answers when routing found nothing eligible: a typed
// 404 when the fleet is healthy but nobody serves the model, a typed
// 503 naming the model otherwise. Never a hang, never a bare 500.
func (g *Gateway) failNoBackend(w http.ResponseWriter, model, lastDetail string) {
	g.metrics.failed.Add(1)
	g.mu.RLock()
	list := orderedBackends(g.backends)
	g.mu.RUnlock()
	if len(list) == 0 {
		g.writeError(w, http.StatusServiceUnavailable, model, "no backends configured")
		return
	}
	anyReady, advertised := false, false
	for _, b := range list {
		b.mu.Lock()
		if b.ready && !b.draining {
			anyReady = true
		}
		if b.models[model] {
			advertised = true
		}
		b.mu.Unlock()
	}
	switch {
	case model != "" && anyReady && !advertised:
		g.writeError(w, http.StatusNotFound, model, fmt.Sprintf("unknown model %q: no backend advertises it", model))
	case model != "":
		detail := fmt.Sprintf("model %q: all backends unavailable", model)
		if lastDetail != "" {
			detail += "; last: " + lastDetail
		}
		g.writeError(w, http.StatusServiceUnavailable, model, detail)
	default:
		g.writeError(w, http.StatusServiceUnavailable, "", "all backends unavailable")
	}
}

// send issues one proxied attempt.
func (g *Gateway) send(ctx context.Context, b *backend, r *http.Request, body []byte) (*http.Response, error) {
	u := "http://" + b.addr + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u, rd)
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	return g.client.Do(req)
}

// relayResponse copies a backend response to the client verbatim —
// status, content type, Retry-After, body bytes — so a gateway-fronted
// fleet answers bit-identically to a single daemon.
func (g *Gateway) relayResponse(w http.ResponseWriter, resp *http.Response, cacheFill func(cachedResp)) {
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		g.metrics.relayed5xx.Add(1)
	} else {
		g.metrics.ok.Add(1)
	}
	ct := resp.Header.Get("Content-Type")
	if ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if cacheFill != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 {
		raw, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBodyBytes))
		if err != nil {
			// The backend died mid-body on a cacheable endpoint: the partial
			// body must be neither cached nor relayed as if complete.
			g.writeError(w, http.StatusBadGateway, "", fmt.Sprintf("backend response truncated: %v", err))
			return
		}
		cacheFill(cachedResp{status: resp.StatusCode, contentType: ct, body: raw})
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(raw)
		return
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// parseRetryAfter reads a Retry-After header's delay-seconds form.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// backoffWait sleeps the exponential backoff before retry `attempt`
// (1-based: the wait before the second attempt is attempt 1), bounded
// by BackoffMax and the request context. retryAfterFloor, when > 0, is
// the backend's own Retry-After hint and raises the wait (still capped).
//
// The jitter is deterministic: a pure function of (Config.Seed, request
// key, attempt) via detrand, so a replayed fault drill waits the exact
// same schedule — reproducibility is part of the robustness contract.
func (g *Gateway) backoffWait(ctx context.Context, key uint64, attempt int, retryAfterFloor time.Duration) bool {
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	d := g.cfg.BackoffBase << shift
	if d > g.cfg.BackoffMax || d <= 0 {
		d = g.cfg.BackoffMax
	}
	// Jitter in [0.5, 1.0]x: decorrelates a thundering herd of retries
	// without ever waiting longer than the undithered backoff.
	j := jitterFor(g.cfg.Seed, key, attempt)
	d = time.Duration(float64(d) * (0.5 + 0.5*j))
	if retryAfterFloor > d {
		d = retryAfterFloor
	}
	if d > g.cfg.BackoffMax {
		d = g.cfg.BackoffMax
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// jitterFor draws the deterministic jitter sample for (seed, key,
// attempt).
func jitterFor(seed, key uint64, attempt int) float64 {
	s := detrand.New(seed ^ (key * 0x9e3779b97f4a7c15) ^ (uint64(attempt) << 32))
	return s.Float64()
}
