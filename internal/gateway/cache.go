package gateway

import (
	"sync"
	"sync/atomic"
)

// respCache memoizes backend responses for the read-mostly control
// endpoints (/v1/plan, /v1/models). Plan responses are a pure function
// of (model weights, plan parameters) — the planner is deterministic
// and every backend serves identical weights for a model — so a cached
// body is exactly the body a backend would produce, and serving it
// costs the fleet nothing. The cache is invalidated wholesale on every
// registry change: a reload may swap model weights, which is the one
// event that can change a plan.
//
// Only 2xx responses are cached; errors always re-consult a backend.
type respCache struct {
	cap    int
	mu     sync.RWMutex
	m      map[string]cachedResp
	hits   atomic.Int64
	misses atomic.Int64
}

type cachedResp struct {
	status      int
	contentType string
	body        []byte
}

func newRespCache(capEntries int) *respCache {
	return &respCache{cap: capEntries, m: make(map[string]cachedResp)}
}

func (c *respCache) get(key string) (cachedResp, bool) {
	c.mu.RLock()
	r, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, ok
}

func (c *respCache) put(key string, r cachedResp) {
	c.mu.Lock()
	if len(c.m) >= c.cap {
		// Over capacity: reset rather than evict. The cache exists to keep
		// repeat plan lookups off the fleet, not to be an LRU; correctness
		// never depends on a hit.
		c.m = make(map[string]cachedResp)
	}
	c.m[key] = r
	c.mu.Unlock()
}

func (c *respCache) invalidateAll() {
	c.mu.Lock()
	c.m = make(map[string]cachedResp)
	c.mu.Unlock()
}

func (c *respCache) stats() (hits, misses int64, entries int) {
	c.mu.RLock()
	entries = len(c.m)
	c.mu.RUnlock()
	return c.hits.Load(), c.misses.Load(), entries
}
