package gateway

import (
	"sort"
	"sync/atomic"
)

// gwMetrics is the gateway's counter plane (lock-free atomics,
// snapshotted on demand by /metrics).
type gwMetrics struct {
	requests   atomic.Int64 // client requests received (all endpoints routed)
	ok         atomic.Int64 // responses relayed with status < 500
	relayed5xx atomic.Int64 // backend 5xx responses relayed verbatim
	failed     atomic.Int64 // gateway-generated 5xx (no backend could answer)
	retries    atomic.Int64 // re-sends after a failed attempt
	probeFails atomic.Int64 // health probes that found a backend dead/broken
}

func newGWMetrics() *gwMetrics { return &gwMetrics{} }

// BackendStatus is one backend's slice of the gateway's /metrics and
// /healthz bodies.
type BackendStatus struct {
	Name  string `json:"name"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	Ready bool   `json:"ready"`
	// Draining means the backend was removed from the registry and is
	// finishing in-flight work; it receives no new traffic.
	Draining bool `json:"draining,omitempty"`
	// Breaker is "closed", "open", or "half-open".
	Breaker string `json:"breaker"`
	// ConsecFails is the breaker's current consecutive-failure run.
	ConsecFails int `json:"consec_fails"`
	// BreakerTrips counts times the breaker opened.
	BreakerTrips int64 `json:"breaker_trips_total"`
	// Requests counts proxied attempts sent to this backend.
	Requests int64 `json:"requests_total"`
	// Failures counts attempts that failed (connection error or 503).
	Failures int64 `json:"failures_total"`
	// LastError is the most recent probe failure detail, if any.
	LastError string `json:"last_error,omitempty"`
	// Models lists the model names the backend advertises, sorted.
	Models []string `json:"models,omitempty"`
}

// status snapshots one backend.
func (b *backend) status() BackendStatus {
	state, fails, trips := b.breaker.snapshot()
	b.mu.Lock()
	models := make([]string, 0, len(b.models))
	for m := range b.models {
		models = append(models, m)
	}
	st := BackendStatus{
		Name:         b.name,
		Addr:         b.addr,
		Alive:        b.alive,
		Ready:        b.ready,
		Draining:     b.draining,
		Breaker:      state.String(),
		ConsecFails:  fails,
		BreakerTrips: trips,
		Requests:     b.requests.Load(),
		Failures:     b.failures.Load(),
		LastError:    b.lastErr,
	}
	b.mu.Unlock()
	sort.Strings(models)
	st.Models = models
	return st
}

// Snapshot is the gateway's point-in-time metrics view, also the JSON
// body served at GET /metrics.
type Snapshot struct {
	Requests   int64 `json:"requests_total"`
	OK         int64 `json:"ok_total"`
	Relayed5xx int64 `json:"relayed_5xx_total"`
	Failed     int64 `json:"failed_total"`
	Retries    int64 `json:"retries_total"`
	ProbeFails int64 `json:"probe_failures_total"`
	Reloads    int64 `json:"registry_reloads_total"`

	CacheHits    int64 `json:"cache_hits_total"`
	CacheMisses  int64 `json:"cache_misses_total"`
	CacheEntries int   `json:"cache_entries"`

	Ready    bool            `json:"ready"`
	Backends []BackendStatus `json:"backends"`
}

// Metrics snapshots the whole metrics plane.
func (g *Gateway) Metrics() Snapshot {
	m := g.metrics
	hits, misses, entries := g.cache.stats()
	snap := Snapshot{
		Requests:     m.requests.Load(),
		OK:           m.ok.Load(),
		Relayed5xx:   m.relayed5xx.Load(),
		Failed:       m.failed.Load(),
		Retries:      m.retries.Load(),
		ProbeFails:   m.probeFails.Load(),
		Reloads:      g.reloads.Load(),
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheEntries: entries,
		Backends:     g.Backends(),
	}
	for _, b := range snap.Backends {
		if b.Ready && !b.Draining {
			snap.Ready = true
		}
	}
	return snap
}
