package gateway

import (
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scidata/errprop/internal/artifact"
)

// Config tunes a Gateway. The zero value is usable; every field has a
// production-shaped default.
type Config struct {
	// ProbeInterval is how often each backend's /healthz is probed
	// (default 250ms). A restarted backend re-enters routing — and its
	// breaker re-closes — within one interval.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// backend's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker blocks traffic
	// before admitting a half-open trial (default 2s).
	BreakerCooldown time.Duration
	// MaxAttempts bounds one request's total send attempts across
	// backends, first try included (default 3).
	MaxAttempts int
	// BackoffBase is the first retry's backoff (default 25ms); attempt k
	// waits Base<<k, jittered, capped at BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps one retry wait, including an honored Retry-After
	// (default 2s).
	BackoffMax time.Duration
	// RequestTimeout bounds one client request end to end, retries and
	// backoff included (default 15s).
	RequestTimeout time.Duration
	// MaxBodyBytes caps accepted request bodies (default 32 MiB).
	MaxBodyBytes int64
	// RetryAfter is the client backoff hint on gateway-generated 503s
	// (default 1s).
	RetryAfter time.Duration
	// VNodes is the consistent-hash virtual nodes per backend weight
	// unit (default 64).
	VNodes int
	// Seed seeds the deterministic retry jitter (internal/detrand).
	// Jitter is a pure function of (Seed, request key, attempt), so a
	// fault drill replays with identical waits.
	Seed uint64
	// CacheCap bounds the /v1/plan + /v1/models response cache entry
	// count (default 4096). Overflow resets the cache — crude, but the
	// cache is repopulated by the next request and correctness never
	// depends on it.
	CacheCap int
}

func (c *Config) fillDefaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 4096
	}
}

// backend is one routable process and its health/traffic state.
type backend struct {
	name   string
	addr   string
	weight int

	breaker *breaker

	mu       sync.Mutex
	alive    bool            // last probe reached the process
	ready    bool            // last probe said ready (serving, not draining)
	models   map[string]bool // model names the backend advertises
	lastErr  string          // last probe failure, for /healthz detail
	draining bool            // removed from the registry; no new traffic

	requests  atomic.Int64 // proxied requests sent (attempts)
	failures  atomic.Int64 // attempts that failed (conn error or 503)
	proxiedOK atomic.Int64 // attempts answered with a non-503 response
}

// eligible reports whether the backend may receive a request for model
// now: advertised, ready, not draining, breaker admitting. An empty
// model means a model-agnostic endpoint (/v1/models) — any ready
// backend qualifies.
func (b *backend) eligible(model string, now time.Time) bool {
	b.mu.Lock()
	ok := b.ready && !b.draining && (model == "" || b.models[model])
	b.mu.Unlock()
	return ok && b.breaker.allow(now)
}

// setProbe records a probe outcome.
func (b *backend) setProbe(alive, ready bool, models []string, errDetail string) {
	b.mu.Lock()
	b.alive, b.ready = alive, ready
	b.lastErr = errDetail
	if models != nil {
		mm := make(map[string]bool, len(models))
		for _, m := range models {
			mm[m] = true
		}
		b.models = mm
	}
	b.mu.Unlock()
}

// Gateway routes inference requests across a fleet of errpropd
// backends. Create with New, give it backends with SetBackends or
// LoadRegistryFile, mount Handler, stop with Close.
type Gateway struct {
	cfg     Config
	metrics *gwMetrics
	cache   *respCache
	client  *http.Client

	mu       sync.RWMutex
	backends map[string]*backend // by name
	ring     *ring
	// artifacts holds the verified ahead-of-time artifacts pinned by the
	// last loaded registry, by model name. Models present here get their
	// /v1/plan and /v1/models answers computed gateway-side, with zero
	// backend round-trips.
	artifacts map[string]*artifact.Artifact
	reloads   atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New builds a gateway with no backends (everything routes to a typed
// 503 until SetBackends or LoadRegistryFile installs a fleet).
func New(cfg Config) *Gateway {
	cfg.fillDefaults()
	g := &Gateway{
		cfg:     cfg,
		metrics: newGWMetrics(),
		cache:   newRespCache(cfg.CacheCap),
		client: &http.Client{
			// Per-attempt timeouts come from the request context; the
			// client itself must not add a second clock.
			Timeout: 0,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     30 * time.Second,
			},
		},
		backends: make(map[string]*backend),
		ring:     buildRing(nil, cfg.VNodes),
		stop:     make(chan struct{}),
	}
	g.wg.Add(1)
	go g.probeLoop()
	return g
}

// Config reports the effective (defaults-filled) configuration.
func (g *Gateway) Config() Config { return g.cfg }

// SetBackends installs the desired backend set, diffing against the
// current one: new backends are added (they start routing once a probe
// reports them ready), vanished backends drain (no new traffic;
// in-flight proxied requests complete because the proxy holds its own
// reference), surviving backends keep their breaker and traffic state —
// a reload is not an excuse to forget that a backend was misbehaving.
// The /v1/plan and /v1/models caches are invalidated unconditionally:
// a registry change is the explicit cache-invalidation event.
func (g *Gateway) SetBackends(list []Backend) error {
	reg := &Registry{Backends: list}
	if err := reg.Validate(); err != nil {
		return err
	}
	g.mu.Lock()
	next := make(map[string]*backend, len(list))
	for _, nb := range list {
		if old, ok := g.backends[nb.Name]; ok && old.addr == nb.Addr {
			old.weight = weightOr1(nb.Weight)
			old.mu.Lock()
			old.draining = false
			old.mu.Unlock()
			next[nb.Name] = old
			continue
		}
		// New backend, or a known name on a new address (a restart): fresh
		// state, probed before it takes traffic.
		next[nb.Name] = &backend{
			name:    nb.Name,
			addr:    nb.Addr,
			weight:  weightOr1(nb.Weight),
			breaker: newBreaker(g.cfg.BreakerThreshold, g.cfg.BreakerCooldown),
		}
	}
	for name, old := range g.backends {
		if _, kept := next[name]; !kept {
			old.mu.Lock()
			old.draining = true
			old.mu.Unlock()
		}
	}
	g.backends = next
	ordered := orderedBackends(next)
	g.ring = buildRing(ordered, g.cfg.VNodes)
	g.mu.Unlock()
	g.cache.invalidateAll()
	return nil
}

func weightOr1(w int) int {
	if w <= 0 {
		return 1
	}
	return w
}

// orderedBackends returns the map's values sorted by name, so ring
// construction (and anything else that iterates the fleet) is
// deterministic run to run.
func orderedBackends(m map[string]*backend) []*backend {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*backend, len(names))
	for i, name := range names {
		out[i] = m[name]
	}
	return out
}

// ErrArtifactMismatch means a registry-pinned artifact file decodes to
// a different checksum identity than the manifest declares — the file
// under the path is not the artifact the operator pinned.
var ErrArtifactMismatch = errors.New("gateway: artifact does not match manifest checksum")

// LoadRegistryFile reads, verifies, and installs a registry manifest.
// A corrupt or truncated file is refused with a typed integrity error
// and the current fleet stays exactly as it was — a reload is applied
// atomically or not at all. Artifact references are verified before
// anything is installed: every referenced file must decode (full
// integrity + consistency checks, see internal/artifact) and match its
// pinned checksum, or the whole reload is refused.
func (g *Gateway) LoadRegistryFile(path string) error {
	reg, err := ReadRegistryFile(path)
	if err != nil {
		return err
	}
	arts, err := verifyArtifacts(reg.Artifacts, filepath.Dir(path))
	if err != nil {
		return err
	}
	if err := g.SetBackends(reg.Backends); err != nil {
		return err
	}
	g.mu.Lock()
	g.artifacts = arts
	g.mu.Unlock()
	g.reloads.Add(1)
	return nil
}

// verifyArtifacts loads every referenced artifact and checks it against
// its pinned checksum. Relative paths resolve against baseDir (the
// registry file's directory).
func verifyArtifacts(refs []ArtifactRef, baseDir string) (map[string]*artifact.Artifact, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	arts := make(map[string]*artifact.Artifact, len(refs))
	for _, ref := range refs {
		p := ref.Path
		if !filepath.IsAbs(p) {
			p = filepath.Join(baseDir, p)
		}
		a, err := artifact.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("gateway: artifact %s for model %q: %w", p, ref.Model, err)
		}
		if a.Checksum != ref.Checksum {
			return nil, fmt.Errorf("gateway: artifact %s for model %q: %w: file is %s, manifest pins %s", p, ref.Model, ErrArtifactMismatch, a.Checksum, ref.Checksum)
		}
		arts[ref.Model] = a
	}
	return arts, nil
}

// artifactFor returns the verified artifact pinned for model, if any.
func (g *Gateway) artifactFor(model string) (*artifact.Artifact, bool) {
	g.mu.RLock()
	a, ok := g.artifacts[model]
	g.mu.RUnlock()
	return a, ok
}

// artifactModels returns the pinned model names in sorted order, with
// their artifacts.
func (g *Gateway) artifactModels() ([]string, map[string]*artifact.Artifact) {
	g.mu.RLock()
	arts := g.artifacts
	g.mu.RUnlock()
	names := make([]string, 0, len(arts))
	for name := range arts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, arts
}

// Backends reports the current fleet's status, sorted by name.
func (g *Gateway) Backends() []BackendStatus {
	g.mu.RLock()
	list := orderedBackends(g.backends)
	g.mu.RUnlock()
	out := make([]BackendStatus, 0, len(list))
	for _, b := range list {
		out = append(out, b.status())
	}
	return out
}

// ringOrder returns the ring-walk order for key against the current
// fleet: primary owner first, then the deterministic fallback sequence.
func (g *Gateway) ringOrder(key uint64) []*backend {
	g.mu.RLock()
	r := g.ring
	g.mu.RUnlock()
	return r.order(key)
}

// probeLoop drives the active health probes: every ProbeInterval it
// snapshots the fleet and probes each backend concurrently.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		g.probeAll()
		select {
		case <-g.stop:
			return
		case <-t.C:
		}
	}
}

func (g *Gateway) probeAll() {
	g.mu.RLock()
	list := orderedBackends(g.backends)
	g.mu.RUnlock()
	var wg sync.WaitGroup
	for _, b := range list {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.probe(b)
		}(b)
	}
	wg.Wait()
}

// Close stops the prober. In-flight proxied requests complete; new
// ones are refused by the HTTP server shutting down above us (the
// gateway itself has no admission queue to drain).
func (g *Gateway) Close() {
	g.once.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// WaitReady blocks until some backend is ready to serve model (probe
// cycle permitting) or the timeout elapses. Intended for tests and
// boot sequencing, not the request path.
func (g *Gateway) WaitReady(model string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		g.mu.RLock()
		list := orderedBackends(g.backends)
		g.mu.RUnlock()
		for _, b := range list {
			b.mu.Lock()
			ok := b.ready && !b.draining && b.models[model]
			b.mu.Unlock()
			if ok {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gateway: no backend became ready for model %q within %s", model, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
