package tensor

import (
	"math"
	"math/rand"
)

// SpectralNorm estimates the largest singular value of m (the operator L2
// norm, sigma_W in the paper) via power iteration on m^T m. The paper's
// error bounds are stated in terms of this quantity (Eq. 2).
//
// iters controls the number of power iterations; 100 is ample for the
// well-conditioned weight matrices produced by spectral-normalized
// training. The estimate is a lower bound on the true value that converges
// from below; tests compare against exact SVD on small matrices.
func SpectralNorm(m *Matrix, iters int) float64 {
	sigma, _, _ := SpectralNormVectors(m, iters, nil)
	return sigma
}

// SpectralNormVectors runs power iteration and additionally returns the
// approximate left/right singular vectors (u, v). If v0 is non-nil it is
// used as the starting vector, enabling warm-started iteration during
// training where weights change slowly between steps.
func SpectralNormVectors(m *Matrix, iters int, v0 Vector) (sigma float64, u, v Vector) {
	if m.Rows == 0 || m.Cols == 0 {
		return 0, nil, nil
	}
	v = v0
	if len(v) != m.Cols {
		// Deterministic start: a fixed-seed random direction avoids
		// pathological orthogonality to the top singular vector.
		//lint:ignore unseededrand fixed-seed start direction keeps power iteration deterministic; any non-orthogonal direction works
		rng := rand.New(rand.NewSource(1))
		v = make(Vector, m.Cols)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
	} else {
		v = v.Clone()
	}
	if v.Normalize() == 0 {
		v[0] = 1
	}
	for k := 0; k < iters; k++ {
		u = m.MulVec(v)
		if u.Normalize() == 0 {
			return 0, u, v
		}
		v = m.MulVecT(u)
		sigma = v.Normalize()
		if sigma == 0 {
			return 0, u, v
		}
	}
	return sigma, u, v
}

// SingularValues computes all singular values of m in descending order
// using one-sided Jacobi iteration on the smaller Gram dimension. Intended
// for the small matrices found in tests and for exact verification of the
// power-iteration estimate; O(min(r,c)^2 * max(r,c)) per sweep.
func SingularValues(m *Matrix) []float64 {
	// Work on A with Rows >= Cols so the Gram matrix is Cols x Cols.
	a := m
	if a.Rows < a.Cols {
		a = a.T()
	}
	n := a.Cols
	if n == 0 {
		return nil
	}
	// One-sided Jacobi: orthogonalize columns of a working copy.
	w := a.Clone()
	cols := make([]Vector, n)
	for j := 0; j < n; j++ {
		cols[j] = make(Vector, w.Rows)
		for i := 0; i < w.Rows; i++ {
			cols[j][i] = w.At(i, j)
		}
	}
	const maxSweeps = 60
	const eps = 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha := cols[p].Dot(cols[p])
				beta := cols[q].Dot(cols[q])
				gamma := cols[p].Dot(cols[q])
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) {
					continue
				}
				off += math.Abs(gamma)
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := range cols[p] {
					vp, vq := cols[p][i], cols[q][i]
					cols[p][i] = c*vp - s*vq
					cols[q][i] = s*vp + c*vq
				}
			}
		}
		if off == 0 {
			break
		}
	}
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		sv[j] = cols[j].Norm2()
	}
	// Descending sort (n is small; insertion sort keeps this dependency-free).
	for i := 1; i < n; i++ {
		x := sv[i]
		j := i - 1
		for j >= 0 && sv[j] < x {
			sv[j+1] = sv[j]
			j--
		}
		sv[j+1] = x
	}
	return sv
}
