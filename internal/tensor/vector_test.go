package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, -5, 6}
	if got := v.Dot(w); got != 12 {
		t.Fatalf("dot = %v, want 12", got)
	}
}

func TestVectorDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorNorms(t *testing.T) {
	v := Vector{3, -4}
	if got := v.Norm2(); !almostEqual(got, 5, 1e-15) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
}

func TestNorm2OverflowSafe(t *testing.T) {
	v := Vector{1e200, 1e200}
	want := math.Sqrt2 * 1e200
	if got := v.Norm2(); !almostEqual(got, want, 1e-14) {
		t.Fatalf("Norm2 = %v, want %v", got, want)
	}
}

func TestNorm2Zero(t *testing.T) {
	if got := NewVector(5).Norm2(); got != 0 {
		t.Fatalf("Norm2(zero) = %v, want 0", got)
	}
}

func TestVectorAddScaled(t *testing.T) {
	v := Vector{1, 2}
	v.AddScaled(2, Vector{10, 20})
	if v[0] != 21 || v[1] != 42 {
		t.Fatalf("AddScaled = %v", v)
	}
}

func TestVectorNormalize(t *testing.T) {
	v := Vector{0, 3, 4}
	n := v.Normalize()
	if !almostEqual(n, 5, 1e-15) {
		t.Fatalf("Normalize returned %v, want 5", n)
	}
	if !almostEqual(v.Norm2(), 1, 1e-15) {
		t.Fatalf("normalized norm = %v, want 1", v.Norm2())
	}
	z := NewVector(3)
	if z.Normalize() != 0 {
		t.Fatal("zero vector Normalize should return 0")
	}
}

func TestVectorMaxAbs(t *testing.T) {
	v := Vector{1, -7, 3}
	m, i := v.MaxAbs()
	if m != 7 || i != 1 {
		t.Fatalf("MaxAbs = %v,%d want 7,1", m, i)
	}
	m, i = Vector(nil).MaxAbs()
	if m != 0 || i != -1 {
		t.Fatalf("MaxAbs(empty) = %v,%d", m, i)
	}
}

// Property: norm inequalities from Section III-A of the paper,
// (1/sqrt(n))||.||_2 <= ||.||_inf <= ||.||_2, hold for all vectors.
func TestNormInequalityProperty(t *testing.T) {
	f := func(xs []float64) bool {
		v := Vector(xs)
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				v[i] = 0
			}
		}
		if len(v) == 0 {
			return true
		}
		l2, linf := v.Norm2(), v.NormInf()
		n := float64(len(v))
		const slack = 1e-9
		return l2/math.Sqrt(n) <= linf*(1+slack)+slack && linf <= l2*(1+slack)+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy-Schwarz |<v,w>| <= ||v||_2 ||w||_2.
func TestCauchySchwarzProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		v, w := make(Vector, n), make(Vector, n)
		for i := 0; i < n; i++ {
			v[i], w[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		if math.Abs(v.Dot(w)) > v.Norm2()*w.Norm2()*(1+1e-12) {
			t.Fatalf("Cauchy-Schwarz violated: |<v,w>|=%v > %v", math.Abs(v.Dot(w)), v.Norm2()*w.Norm2())
		}
	}
}

func TestVectorSubAdd(t *testing.T) {
	v, w := Vector{5, 7}, Vector{2, 3}
	d := v.Sub(w)
	if d[0] != 3 || d[1] != 4 {
		t.Fatalf("Sub = %v", d)
	}
	s := v.Add(w)
	if s[0] != 7 || s[1] != 10 {
		t.Fatalf("Add = %v", s)
	}
	// Originals untouched.
	if v[0] != 5 || w[0] != 2 {
		t.Fatal("Sub/Add mutated inputs")
	}
}

func TestVectorFillScaleClone(t *testing.T) {
	v := NewVector(3).Fill(2)
	c := v.Clone()
	v.Scale(10)
	if v[0] != 20 || c[0] != 2 {
		t.Fatalf("Scale/Clone interaction wrong: v=%v c=%v", v, c)
	}
}
