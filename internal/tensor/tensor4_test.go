package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestT4AtSet(t *testing.T) {
	x := NewT4(2, 3, 4, 5)
	x.Set(1, 2, 3, 4, 42)
	if x.At(1, 2, 3, 4) != 42 {
		t.Fatal("At/Set roundtrip failed")
	}
	if x.Len() != 2*3*4*5 {
		t.Fatalf("Len = %d", x.Len())
	}
}

func TestT4Sample(t *testing.T) {
	x := NewT4(2, 1, 2, 2)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	s := x.Sample(1)
	if len(s) != 4 || s[0] != 4 {
		t.Fatalf("Sample(1) = %v", s)
	}
	s[0] = -1
	if x.Data[4] != -1 {
		t.Fatal("Sample should share storage")
	}
}

// naiveConv computes a direct convolution for verification.
func naiveConv(x *T4, w *Matrix, outC, kh, kw, stride, pad int) *T4 {
	outH := ConvOutSize(x.H, kh, stride, pad)
	outW := ConvOutSize(x.W, kw, stride, pad)
	y := NewT4(x.N, outC, outH, outW)
	for n := 0; n < x.N; n++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					var s float64
					for ic := 0; ic < x.C; ic++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy, ix := oy*stride-pad+ky, ox*stride-pad+kx
								if iy < 0 || iy >= x.H || ix < 0 || ix >= x.W {
									continue
								}
								s += w.At(oc, (ic*kh+ky)*kw+kx) * x.At(n, ic, iy, ix)
							}
						}
					}
					y.Set(n, oc, oy, ox, s)
				}
			}
		}
	}
	return y
}

func TestIm2ColConvMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct{ n, c, h, w, outC, k, stride, pad int }{
		{1, 1, 5, 5, 2, 3, 1, 1},
		{2, 3, 8, 8, 4, 3, 2, 1},
		{1, 2, 7, 9, 3, 1, 1, 0},
		{2, 4, 6, 6, 8, 3, 2, 0},
		{1, 3, 9, 9, 2, 7, 2, 3},
	}
	for ci, cs := range cases {
		x := NewT4(cs.n, cs.c, cs.h, cs.w)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		w := RandMatrix(cs.outC, cs.c*cs.k*cs.k, 1, rng)
		cols := Im2Col(x, cs.k, cs.k, cs.stride, cs.pad)
		y := w.Mul(cols)
		want := naiveConv(x, w, cs.outC, cs.k, cs.k, cs.stride, cs.pad)
		outH := ConvOutSize(cs.h, cs.k, cs.stride, cs.pad)
		outW := ConvOutSize(cs.w, cs.k, cs.stride, cs.pad)
		for n := 0; n < cs.n; n++ {
			for oc := 0; oc < cs.outC; oc++ {
				for oy := 0; oy < outH; oy++ {
					for ox := 0; ox < outW; ox++ {
						got := y.At(oc, (n*outH+oy)*outW+ox)
						if math.Abs(got-want.At(n, oc, oy, ox)) > 1e-10 {
							t.Fatalf("case %d: conv mismatch at n%d oc%d (%d,%d): %v vs %v",
								ci, n, oc, oy, ox, got, want.At(n, oc, oy, ox))
						}
					}
				}
			}
		}
	}
}

func TestCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), m> == <x, Col2Im(m)> : the scatter is the exact adjoint
	// of the gather, which is what the conv backward pass requires.
	rng := rand.New(rand.NewSource(4))
	n, c, h, w, k, stride, pad := 2, 3, 6, 6, 3, 2, 1
	x := NewT4(n, c, h, w)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	cols := Im2Col(x, k, k, stride, pad)
	m := RandMatrix(cols.Rows, cols.Cols, 1, rng)
	lhs := Vector(cols.Data).Dot(Vector(m.Data))
	back := Col2Im(m, n, c, h, w, k, k, stride, pad)
	rhs := Vector(x.Data).Dot(Vector(back.Data))
	if !almostEqual(lhs, rhs, 1e-10) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestConvOutSize(t *testing.T) {
	if got := ConvOutSize(32, 3, 1, 1); got != 32 {
		t.Fatalf("same-conv out = %d", got)
	}
	if got := ConvOutSize(32, 3, 2, 1); got != 16 {
		t.Fatalf("stride-2 out = %d", got)
	}
	if got := ConvOutSize(7, 7, 1, 0); got != 1 {
		t.Fatalf("full-kernel out = %d", got)
	}
}

func TestT4CloneIndependent(t *testing.T) {
	x := NewT4(1, 1, 2, 2)
	x.Data[0] = 5
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 5 {
		t.Fatal("Clone shares storage")
	}
}
