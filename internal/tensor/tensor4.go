package tensor

import "fmt"

// T4 is a dense 4-D tensor in NCHW layout (batch, channel, height, width),
// the layout used by the convolutional layers in internal/nn.
type T4 struct {
	N, C, H, W int
	Data       []float64
}

// NewT4 returns a zero tensor of the given shape.
func NewT4(n, c, h, w int) *T4 {
	if n < 0 || c < 0 || h < 0 || w < 0 {
		panic(fmt.Sprintf("tensor: negative T4 dims %d,%d,%d,%d", n, c, h, w))
	}
	return &T4{N: n, C: c, H: h, W: w, Data: make([]float64, n*c*h*w)}
}

// NewT4From wraps data (not copied) with the given shape.
func NewT4From(n, c, h, w int, data []float64) *T4 {
	if len(data) != n*c*h*w {
		panic(fmt.Sprintf("tensor: T4 data length %d != %d", len(data), n*c*h*w))
	}
	return &T4{N: n, C: c, H: h, W: w, Data: data}
}

// At returns the element at (n, c, h, w).
func (t *T4) At(n, c, h, w int) float64 {
	return t.Data[((n*t.C+c)*t.H+h)*t.W+w]
}

// Set stores v at (n, c, h, w).
func (t *T4) Set(n, c, h, w int, v float64) {
	t.Data[((n*t.C+c)*t.H+h)*t.W+w] = v
}

// Clone returns a deep copy of t.
func (t *T4) Clone() *T4 {
	out := NewT4(t.N, t.C, t.H, t.W)
	copy(out.Data, t.Data)
	return out
}

// Len returns the total number of elements.
func (t *T4) Len() int { return len(t.Data) }

// Sample returns sample n as a flat vector sharing t's storage.
func (t *T4) Sample(n int) Vector {
	sz := t.C * t.H * t.W
	return Vector(t.Data[n*sz : (n+1)*sz])
}

// Im2Col unrolls t (a single batch of N images) into a matrix suitable for
// expressing convolution as matmul. The result has
// rows = C*kh*kw and cols = N*outH*outW, where
// outH = (H+2*pad-kh)/stride + 1 and likewise for outW.
//
// Column (n, oy, ox) holds the receptive field of output pixel (oy, ox) of
// sample n, flattened channel-major. Out-of-bounds (padded) taps are zero.
func Im2Col(t *T4, kh, kw, stride, pad int) *Matrix {
	outH := (t.H+2*pad-kh)/stride + 1
	outW := (t.W+2*pad-kw)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: im2col empty output for input %dx%d kernel %dx%d stride %d pad %d",
			t.H, t.W, kh, kw, stride, pad))
	}
	rows := t.C * kh * kw
	cols := t.N * outH * outW
	m := NewMatrix(rows, cols)
	for c := 0; c < t.C; c++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := (c*kh+ky)*kw + kx
				dst := m.Data[row*cols : (row+1)*cols]
				col := 0
				for n := 0; n < t.N; n++ {
					base := (n*t.C + c) * t.H * t.W
					for oy := 0; oy < outH; oy++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= t.H {
							col += outW
							continue
						}
						rowBase := base + iy*t.W
						for ox := 0; ox < outW; ox++ {
							ix := ox*stride - pad + kx
							if ix >= 0 && ix < t.W {
								dst[col] = t.Data[rowBase+ix]
							}
							col++
						}
					}
				}
			}
		}
	}
	return m
}

// Col2Im is the adjoint of Im2Col: it scatters the columns of m back into
// an N x C x H x W tensor, accumulating overlapping taps. It is used for
// the convolution backward pass with respect to the input.
func Col2Im(m *Matrix, n, c, h, w, kh, kw, stride, pad int) *T4 {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	t := NewT4(n, c, h, w)
	cols := m.Cols
	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := (ch*kh+ky)*kw + kx
				src := m.Data[row*cols : (row+1)*cols]
				col := 0
				for b := 0; b < n; b++ {
					base := (b*c + ch) * h * w
					for oy := 0; oy < outH; oy++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							col += outW
							continue
						}
						rowBase := base + iy*w
						for ox := 0; ox < outW; ox++ {
							ix := ox*stride - pad + kx
							if ix >= 0 && ix < w {
								t.Data[rowBase+ix] += src[col]
							}
							col++
						}
					}
				}
			}
		}
	}
	return t
}

// ConvOutSize returns the spatial output size of a convolution with the
// given geometry.
func ConvOutSize(in, k, stride, pad int) int { return (in+2*pad-k)/stride + 1 }
