// Package tensor provides the dense linear-algebra primitives used by the
// rest of the repository: float64 vectors, matrices and 4-D tensors, the
// norms the paper's error analysis is stated in (L2 and L-infinity), and
// the spectral machinery (power iteration, small-matrix SVD) needed to
// regulate and measure per-layer spectral norms.
//
// Everything is stdlib-only and deterministic. Matrices are row-major.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product <v, w>. It panics if lengths differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm2 returns the Euclidean (L2) norm of v. It guards against overflow
// by scaling, matching the behaviour of BLAS dnrm2.
func (v Vector) Norm2() float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the L-infinity norm (max absolute entry) of v.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm1 returns the L1 norm of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Scale multiplies every entry of v by a, in place, and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// AddScaled performs v += a*w in place and returns v.
func (v Vector) AddScaled(a float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: sub length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: add length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Normalize scales v to unit L2 norm in place and returns its former norm.
// A zero vector is left untouched and 0 is returned.
func (v Vector) Normalize() float64 {
	n := v.Norm2()
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return n
}

// MaxAbs returns the maximum absolute entry together with its index.
// For an empty vector it returns (0, -1).
func (v Vector) MaxAbs() (float64, int) {
	m, idx := 0.0, -1
	for i, x := range v {
		if a := math.Abs(x); a > m || idx < 0 {
			m, idx = a, i
		}
	}
	return m, idx
}

// Fill sets every entry of v to a and returns v.
func (v Vector) Fill(a float64) Vector {
	for i := range v {
		v[i] = a
	}
	return v
}
