package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix with Rows x Cols entries stored in
// Data[r*Cols+c].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom wraps data (not copied) as a rows x cols matrix.
func NewMatrixFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// RandMatrix returns a rows x cols matrix with entries drawn i.i.d. from
// N(0, std^2) using rng.
func RandMatrix(rows, cols int, std float64, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// At returns the entry at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns row r as a vector sharing m's backing storage.
func (m *Matrix) Row(r int) Vector { return Vector(m.Data[r*m.Cols : (r+1)*m.Cols]) }

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		base := r * m.Cols
		for c := 0; c < m.Cols; c++ {
			out.Data[c*m.Rows+r] = m.Data[base+c]
		}
	}
	return out
}

// MulVec computes m * x and returns the result. It panics on shape mismatch.
func (m *Matrix) MulVec(x Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: mulvec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	out := make(Vector, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var s float64
		for c, w := range row {
			s += w * x[c]
		}
		out[r] = s
	}
	return out
}

// MulVecT computes m^T * x (i.e. x^T m, transposed) without materialising
// the transpose. It panics on shape mismatch.
func (m *Matrix) MulVecT(x Vector) Vector {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("tensor: mulvecT shape mismatch %dx%d^T * %d", m.Rows, m.Cols, len(x)))
	}
	out := make(Vector, m.Cols)
	for r := 0; r < m.Rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, w := range row {
			out[c] += w * xr
		}
	}
	return out
}

// parallelMulThreshold is the FLOP count above which Mul fans rows out
// across goroutines; below it the dispatch overhead dominates.
const parallelMulThreshold = 1 << 20

// Mul computes m * b and returns the product. It panics on shape mismatch.
// The inner loop is ordered ikj for cache-friendly row-major access; large
// products parallelize across row blocks.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	mulRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := m.Data[i*m.Cols : (i+1)*m.Cols]
			orow := out.Data[i*b.Cols : (i+1)*b.Cols]
			for k, a := range arow {
				if a == 0 {
					continue
				}
				brow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j, bv := range brow {
					orow[j] += a * bv
				}
			}
		}
	}
	flops := m.Rows * m.Cols * b.Cols
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelMulThreshold || workers < 2 || m.Rows < 2*workers {
		mulRows(0, m.Rows)
		return out
	}
	var wg sync.WaitGroup
	chunk := (m.Rows + workers - 1) / workers
	for lo := 0; lo < m.Rows; lo += chunk {
		hi := lo + chunk
		if hi > m.Rows {
			hi = m.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRows(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// MulInto computes m * b into out (resized as needed, zeroed first) and
// returns the product matrix. out must not alias m or b. The
// accumulation order over the inner dimension is identical to Mul's, so
// the two produce bit-identical results.
func (m *Matrix) MulInto(b, out *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: mulinto shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out = ZeroMatrix(EnsureMatrix(out, m.Rows, b.Cols))
	for i := 0; i < m.Rows; i++ {
		arow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulBTInto computes m * b^T into out (resized, zeroed) without
// materializing the transpose: out[i][j] = sum_k m[i][k]*b[j][k], with
// the sum over k in increasing order — the same accumulation order as
// Mul(b.T()), so results match that composition bitwise for finite
// inputs (Mul skips zero multiplicands, which can only differ through
// -0/NaN/Inf interplay). out must not alias m or b.
func (m *Matrix) MulBTInto(b, out *Matrix) *Matrix {
	if m.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: mulbt shape mismatch %dx%d * (%dx%d)^T", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out = EnsureMatrix(out, m.Rows, b.Rows)
	for i := 0; i < m.Rows; i++ {
		arow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float64
			for k, a := range arow {
				s += a * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// TMulInto computes m^T * b into out (resized, zeroed) without
// materializing the transpose: out[i][j] = sum_k m[k][i]*b[k][j], summed
// over k in increasing order with the same zero-multiplicand skip as
// Mul, so it is bit-identical to m.T().Mul(b). out must not alias m or
// b.
func (m *Matrix) TMulInto(b, out *Matrix) *Matrix {
	if m.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: tmul shape mismatch (%dx%d)^T * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out = ZeroMatrix(EnsureMatrix(out, m.Cols, b.Cols))
	for k := 0; k < m.Rows; k++ {
		arow := m.Data[k*m.Cols : (k+1)*m.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, a := range arow {
			if a == 0 {
				continue
			}
			orow := out.Data[i*b.Cols : (i+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// Sub returns m - b as a new matrix.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("tensor: sub shape mismatch")
	}
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - b.Data[i]
	}
	return out
}

// Add returns m + b as a new matrix.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("tensor: add shape mismatch")
	}
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + b.Data[i]
	}
	return out
}

// Scale multiplies every entry by a in place and returns m.
func (m *Matrix) Scale(a float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= a
	}
	return m
}

// AddScaled performs m += a*b in place and returns m.
func (m *Matrix) AddScaled(a float64, b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("tensor: addscaled shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += a * b.Data[i]
	}
	return m
}

// FrobNorm returns the Frobenius norm of m.
func (m *Matrix) FrobNorm() float64 { return Vector(m.Data).Norm2() }

// MaxAbs returns the largest absolute entry of m.
func (m *Matrix) MaxAbs() float64 {
	v, _ := Vector(m.Data).MaxAbs()
	return v
}

// MinMax returns the smallest and largest entries of m.
func (m *Matrix) MinMax() (min, max float64) {
	if len(m.Data) == 0 {
		return 0, 0
	}
	min, max = m.Data[0], m.Data[0]
	for _, x := range m.Data[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// RowNorm2 returns the L2 norm of row r.
func (m *Matrix) RowNorm2(r int) float64 { return m.Row(r).Norm2() }

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Equal reports whether m and b have the same shape and entries within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
