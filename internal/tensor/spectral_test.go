package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestSpectralNormDiagonal(t *testing.T) {
	m := NewMatrixFrom(3, 3, []float64{
		2, 0, 0,
		0, -5, 0,
		0, 0, 1,
	})
	if got := SpectralNorm(m, 100); !almostEqual(got, 5, 1e-9) {
		t.Fatalf("SpectralNorm = %v, want 5", got)
	}
}

func TestSpectralNormRankOne(t *testing.T) {
	// W = u v^T has spectral norm ||u|| * ||v||.
	u := Vector{1, 2, 2} // norm 3
	v := Vector{3, 4}    // norm 5
	m := NewMatrix(3, 2)
	for i := range u {
		for j := range v {
			m.Set(i, j, u[i]*v[j])
		}
	}
	if got := SpectralNorm(m, 100); !almostEqual(got, 15, 1e-9) {
		t.Fatalf("SpectralNorm = %v, want 15", got)
	}
}

func TestSpectralNormMatchesSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		m := RandMatrix(r, c, 1, rng)
		sv := SingularValues(m)
		got := SpectralNorm(m, 200)
		if !almostEqual(got, sv[0], 1e-6) {
			t.Fatalf("trial %d (%dx%d): power=%v svd=%v", trial, r, c, got, sv[0])
		}
	}
}

func TestSpectralNormIsOperatorNorm(t *testing.T) {
	// Property: ||Wx||_2 <= sigma * ||x||_2 for random x (definition Eq. 2).
	rng := rand.New(rand.NewSource(5))
	m := RandMatrix(20, 15, 1, rng)
	sigma := SpectralNorm(m, 300)
	for trial := 0; trial < 100; trial++ {
		x := make(Vector, 15)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		if m.MulVec(x).Norm2() > sigma*x.Norm2()*(1+1e-6) {
			t.Fatalf("operator norm violated: %v > %v", m.MulVec(x).Norm2(), sigma*x.Norm2())
		}
	}
}

func TestSpectralNormZeroMatrix(t *testing.T) {
	if got := SpectralNorm(NewMatrix(4, 4), 50); got != 0 {
		t.Fatalf("SpectralNorm(0) = %v", got)
	}
}

func TestSpectralNormWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := RandMatrix(12, 12, 1, rng)
	_, _, v := SpectralNormVectors(m, 200, nil)
	// Warm start should converge in very few iterations.
	sigma, _, _ := SpectralNormVectors(m, 2, v)
	want := SingularValues(m)[0]
	if !almostEqual(sigma, want, 1e-6) {
		t.Fatalf("warm-started sigma = %v, want %v", sigma, want)
	}
}

func TestSingularValuesOrthogonal(t *testing.T) {
	// Rotation matrix: all singular values are 1.
	th := 0.7
	m := NewMatrixFrom(2, 2, []float64{math.Cos(th), -math.Sin(th), math.Sin(th), math.Cos(th)})
	sv := SingularValues(m)
	for _, s := range sv {
		if !almostEqual(s, 1, 1e-12) {
			t.Fatalf("rotation singular values = %v", sv)
		}
	}
}

func TestSingularValuesFrobeniusIdentity(t *testing.T) {
	// sum(s_i^2) == ||W||_F^2.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		m := RandMatrix(1+rng.Intn(8), 1+rng.Intn(8), 2, rng)
		var ss float64
		for _, s := range SingularValues(m) {
			ss += s * s
		}
		f := m.FrobNorm()
		if !almostEqual(ss, f*f, 1e-9) {
			t.Fatalf("sum s^2 = %v, frob^2 = %v", ss, f*f)
		}
	}
}

func TestSingularValuesDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	m := RandMatrix(9, 6, 1, rng)
	sv := SingularValues(m)
	for i := 1; i < len(sv); i++ {
		if sv[i] > sv[i-1]+1e-12 {
			t.Fatalf("singular values not descending: %v", sv)
		}
	}
}

func BenchmarkSpectralNorm50x50(b *testing.B) {
	m := RandMatrix(50, 50, 1, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SpectralNorm(m, 30)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandMatrix(64, 64, 1, rng)
	y := RandMatrix(64, 64, 1, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}

func TestSpectralNormSubmultiplicativeProperty(t *testing.T) {
	// ||AB||_2 <= ||A||_2 ||B||_2 — the inequality the whole layer-wise
	// Lipschitz analysis stands on.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		r, k, c := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := RandMatrix(r, k, 1, rng)
		b := RandMatrix(k, c, 1, rng)
		sa := SingularValues(a)[0]
		sb := SingularValues(b)[0]
		sab := SingularValues(a.Mul(b))[0]
		if sab > sa*sb*(1+1e-9) {
			t.Fatalf("submultiplicativity violated: %v > %v * %v", sab, sa, sb)
		}
	}
}

func TestSpectralNormTriangleProperty(t *testing.T) {
	// ||A+B||_2 <= ||A||_2 + ||B||_2 — the residual-block rule.
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 40; trial++ {
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		a := RandMatrix(r, c, 1, rng)
		b := RandMatrix(r, c, 1, rng)
		if SingularValues(a.Add(b))[0] > SingularValues(a)[0]+SingularValues(b)[0]+1e-9 {
			t.Fatal("triangle inequality violated")
		}
	}
}

func TestSpectralNormScaling(t *testing.T) {
	// ||cA||_2 = |c| ||A||_2 — what makes PSN's alpha reparameterization
	// exact.
	rng := rand.New(rand.NewSource(79))
	a := RandMatrix(7, 5, 1, rng)
	base := SpectralNorm(a, 200)
	scaled := SpectralNorm(a.Clone().Scale(-2.5), 200)
	if math.Abs(scaled-2.5*base) > 1e-9*scaled {
		t.Fatalf("scaling law violated: %v vs %v", scaled, 2.5*base)
	}
}
