package tensor

import (
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestTIntoMatchesT(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var buf *Matrix
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {5, 3}, {7, 7}, {1, 9}, {9, 1}} {
		m := randMatrix(rng, dims[0], dims[1])
		want := m.T()
		buf = m.TInto(buf)
		if buf.Rows != want.Rows || buf.Cols != want.Cols || !bitEqual(buf.Data, want.Data) {
			t.Fatalf("TInto %dx%d differs from T()", dims[0], dims[1])
		}
	}
}

func TestTIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := randMatrix(rng, 6, 4)
	buf := NewMatrix(4, 6)
	out := m.TInto(buf)
	if &out.Data[0] != &buf.Data[0] {
		t.Fatal("TInto reallocated despite sufficient capacity")
	}
	if allocs := testing.AllocsPerRun(20, func() { m.TInto(buf) }); allocs != 0 {
		t.Fatalf("TInto into sized buffer: %v allocs/op, want 0", allocs)
	}
}

func TestAddIntoMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randMatrix(rng, 5, 7)
	b := randMatrix(rng, 5, 7)
	want := a.Clone().Add(b)
	got := a.AddInto(b, nil)
	if got.Rows != want.Rows || got.Cols != want.Cols || !bitEqual(got.Data, want.Data) {
		t.Fatal("AddInto differs from Add")
	}
	if allocs := testing.AllocsPerRun(20, func() { a.AddInto(b, got) }); allocs != 0 {
		t.Fatalf("AddInto into sized buffer: %v allocs/op, want 0", allocs)
	}
}

// TestIm2ColMatIntoMatchesIm2Col pins the fused kernel to the reference
// composition the conv layer uses: reshape the feature-major matrix to
// NCHW and run Im2Col. Identical placement, identical padded zeros.
func TestIm2ColMatIntoMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	cases := []struct{ c, h, w, k, stride, pad, batch int }{
		{1, 4, 4, 3, 1, 1, 1},
		{2, 5, 5, 3, 1, 1, 3},
		{3, 6, 6, 3, 2, 0, 2},
		{2, 8, 6, 5, 1, 2, 4},
		{4, 4, 4, 1, 1, 0, 5},
	}
	var buf *Matrix
	for _, tc := range cases {
		x := randMatrix(rng, tc.c*tc.h*tc.w, tc.batch)
		// Reference: feature-major matrix -> NCHW tensor -> Im2Col.
		t4 := NewT4(tc.batch, tc.c, tc.h, tc.w)
		feat := tc.c * tc.h * tc.w
		for n := 0; n < tc.batch; n++ {
			for f := 0; f < feat; f++ {
				t4.Data[n*feat+f] = x.Data[f*tc.batch+n]
			}
		}
		want := Im2Col(t4, tc.k, tc.k, tc.stride, tc.pad)
		buf = Im2ColMatInto(x, tc.c, tc.h, tc.w, tc.k, tc.k, tc.stride, tc.pad, buf)
		if buf.Rows != want.Rows || buf.Cols != want.Cols || !bitEqual(buf.Data, want.Data) {
			t.Fatalf("Im2ColMatInto %+v differs from Im2Col composition", tc)
		}
	}
}

func TestIm2ColMatIntoOverwritesStaleBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	x := randMatrix(rng, 2*4*4, 2)
	buf := Im2ColMatInto(x, 2, 4, 4, 3, 3, 1, 1, nil)
	// Poison the buffer; a second run must fully overwrite it (padded
	// taps are explicit zero writes, not assumed-zero memory).
	for i := range buf.Data {
		buf.Data[i] = 1e300
	}
	again := Im2ColMatInto(x, 2, 4, 4, 3, 3, 1, 1, buf)
	fresh := Im2ColMatInto(x, 2, 4, 4, 3, 3, 1, 1, nil)
	if !bitEqual(again.Data, fresh.Data) {
		t.Fatal("Im2ColMatInto left stale values in reused buffer")
	}
	if allocs := testing.AllocsPerRun(20, func() { Im2ColMatInto(x, 2, 4, 4, 3, 3, 1, 1, buf) }); allocs != 0 {
		t.Fatalf("Im2ColMatInto into sized buffer: %v allocs/op, want 0", allocs)
	}
}
