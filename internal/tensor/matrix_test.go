package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec(Vector{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestMatrixMulVecT(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVecT(Vector{1, 1})
	want := Vector{5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", got, want)
		}
	}
}

func TestMatrixMul(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{5, 6, 7, 8})
	c := a.Mul(b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("Mul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatrixMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		r, k, c := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a, b := RandMatrix(r, k, 1, rng), RandMatrix(k, c, 1, rng)
		got := a.Mul(b)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				var s float64
				for kk := 0; kk < k; kk++ {
					s += a.At(i, kk) * b.At(kk, j)
				}
				if math.Abs(got.At(i, j)-s) > 1e-12 {
					t.Fatalf("Mul mismatch at (%d,%d): %v vs %v", i, j, got.At(i, j), s)
				}
			}
		}
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T shape = %dx%d", mt.Rows, mt.Cols)
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %v", mt.Data)
	}
	if !m.T().T().Equal(m, 0) {
		t.Fatal("double transpose not identity")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	m := RandMatrix(4, 4, 1, rand.New(rand.NewSource(1)))
	if !id.Mul(m).Equal(m, 1e-15) || !m.Mul(id).Equal(m, 1e-15) {
		t.Fatal("identity is not multiplicative identity")
	}
}

func TestMatrixMinMax(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{-3, 7, 0, 2})
	min, max := m.MinMax()
	if min != -3 || max != 7 {
		t.Fatalf("MinMax = %v,%v", min, max)
	}
}

func TestMatrixShapePanics(t *testing.T) {
	cases := []func(){
		func() { NewMatrix(2, 2).Mul(NewMatrix(3, 3)) },
		func() { NewMatrix(2, 2).MulVec(NewVector(3)) },
		func() { NewMatrix(2, 2).Add(NewMatrix(2, 3)) },
		func() { NewMatrixFrom(2, 2, []float64{1}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected shape panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRowNorm2(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{3, 4, 0, 0})
	if got := m.RowNorm2(0); !almostEqual(got, 5, 1e-15) {
		t.Fatalf("RowNorm2 = %v", got)
	}
	if got := m.RowNorm2(1); got != 0 {
		t.Fatalf("RowNorm2 zero row = %v", got)
	}
}

func TestMatrixAddScaledClone(t *testing.T) {
	m := NewMatrixFrom(1, 2, []float64{1, 2})
	c := m.Clone()
	m.AddScaled(3, NewMatrixFrom(1, 2, []float64{10, 10}))
	if m.Data[0] != 31 || c.Data[0] != 1 {
		t.Fatalf("AddScaled/Clone wrong: %v %v", m.Data, c.Data)
	}
}

func TestMatrixMulParallelMatchesSerial(t *testing.T) {
	// Above the parallel threshold the fan-out path must produce the
	// exact same result as a hand-rolled serial product.
	rng := rand.New(rand.NewSource(99))
	a := RandMatrix(128, 96, 1, rng)
	b := RandMatrix(96, 160, 1, rng) // 128*96*160 ~ 2M flops > threshold
	got := a.Mul(b)
	want := NewMatrix(128, 160)
	for i := 0; i < 128; i++ {
		for k := 0; k < 96; k++ {
			av := a.At(i, k)
			for j := 0; j < 160; j++ {
				want.Data[i*160+j] += av * b.At(k, j)
			}
		}
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("parallel Mul mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func BenchmarkMatMul256Parallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandMatrix(256, 256, 1, rng)
	y := RandMatrix(256, 256, 1, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}
