package tensor

import "fmt"

// Cache-blocked, register-tiled matmul kernels for the compiled
// inference engine. Each *IntoBlocked variant is BIT-IDENTICAL to its
// naive counterpart (MulInto / TMulInto / MulBTInto): for every output
// element the same multiplications are issued in the same ascending-k
// order, the same zero-multiplicand skips are taken, and the sums round
// through float64 identically — blocking only reorders work ACROSS
// independent output elements, never within one element's reduction.
// (The one unavoidable carve-out: when an element's result is NaN its
// payload bits are unspecified — IEEE 754 leaves NaN propagation choice
// open and the compiler may commute float adds — so "identical" means
// bit-identical for every non-NaN result and NaN-for-NaN otherwise.
// Real networks have finite weights; the carve-out is unobservable in
// any certified deployment.)
// That invariant is what lets the engine swap these in under certified
// Inequality (3) error bounds without a recertification pass; it is
// enforced by differential exactness tests and the FuzzMulIntoBlocked
// target (see blocked_test.go).
//
// The block sizes are fixed constants, not tuned at runtime, so a given
// shape always executes the same schedule on every machine.
//
// Scheme: MulIntoBlocked and TMulIntoBlocked broadcast a 4-row panel of
// A coefficients down a streamed row of B (one B-row load feeds four
// output rows — 4x arithmetic intensity on the streamed operand);
// MulBTIntoBlocked keeps a 2x4 register tile of dot-product accumulators
// live across the shared k loop. 4 rows * 8 bytes keeps every hot panel
// inside L1 for the model shapes the engine compiles.

// mulBlockRows is the output-row panel height for the broadcast kernels.
const mulBlockRows = 4

// MulIntoBlocked computes m * b into out exactly like MulInto — same
// shapes, same panics, same bit-for-bit results — processing output rows
// in panels of mulBlockRows. Inside a panel each B row is streamed once
// and broadcast against four A coefficients; a fused fast path handles
// the common all-nonzero case, and per-row fallbacks replicate MulInto's
// zero-multiplicand skip exactly. out must not alias m or b.
func (m *Matrix) MulIntoBlocked(b, out *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: mulinto shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out = ZeroMatrix(EnsureMatrix(out, m.Rows, b.Cols))
	n := b.Cols
	i := 0
	for ; i+mulBlockRows <= m.Rows; i += mulBlockRows {
		a0 := m.Data[i*m.Cols : (i+1)*m.Cols]
		a1 := m.Data[(i+1)*m.Cols : (i+2)*m.Cols]
		a2 := m.Data[(i+2)*m.Cols : (i+3)*m.Cols]
		a3 := m.Data[(i+3)*m.Cols : (i+4)*m.Cols]
		o0 := out.Data[i*n : (i+1)*n]
		o1 := out.Data[(i+1)*n : (i+2)*n]
		o2 := out.Data[(i+2)*n : (i+3)*n]
		o3 := out.Data[(i+3)*n : (i+4)*n]
		for k := 0; k < m.Cols; k++ {
			c0, c1, c2, c3 := a0[k], a1[k], a2[k], a3[k]
			brow := b.Data[k*n : (k+1)*n]
			if c0 != 0 && c1 != 0 && c2 != 0 && c3 != 0 {
				for j, bv := range brow {
					o0[j] += c0 * bv
					o1[j] += c1 * bv
					o2[j] += c2 * bv
					o3[j] += c3 * bv
				}
				continue
			}
			if c0 != 0 {
				for j, bv := range brow {
					o0[j] += c0 * bv
				}
			}
			if c1 != 0 {
				for j, bv := range brow {
					o1[j] += c1 * bv
				}
			}
			if c2 != 0 {
				for j, bv := range brow {
					o2[j] += c2 * bv
				}
			}
			if c3 != 0 {
				for j, bv := range brow {
					o3[j] += c3 * bv
				}
			}
		}
	}
	for ; i < m.Rows; i++ {
		arow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*n : (i+1)*n]
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// TMulIntoBlocked computes m^T * b into out exactly like TMulInto (bit
// for bit, same panics). The k loop stays outermost — preserving each
// output element's ascending-k accumulation order — while output rows
// are updated in panels of mulBlockRows so one streamed B row feeds four
// rank-1 updates. out must not alias m or b.
func (m *Matrix) TMulIntoBlocked(b, out *Matrix) *Matrix {
	if m.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: tmul shape mismatch (%dx%d)^T * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out = ZeroMatrix(EnsureMatrix(out, m.Cols, b.Cols))
	n := b.Cols
	for k := 0; k < m.Rows; k++ {
		arow := m.Data[k*m.Cols : (k+1)*m.Cols]
		brow := b.Data[k*n : (k+1)*n]
		i := 0
		for ; i+mulBlockRows <= m.Cols; i += mulBlockRows {
			c0, c1, c2, c3 := arow[i], arow[i+1], arow[i+2], arow[i+3]
			o0 := out.Data[i*n : (i+1)*n]
			o1 := out.Data[(i+1)*n : (i+2)*n]
			o2 := out.Data[(i+2)*n : (i+3)*n]
			o3 := out.Data[(i+3)*n : (i+4)*n]
			if c0 != 0 && c1 != 0 && c2 != 0 && c3 != 0 {
				for j, bv := range brow {
					o0[j] += c0 * bv
					o1[j] += c1 * bv
					o2[j] += c2 * bv
					o3[j] += c3 * bv
				}
				continue
			}
			if c0 != 0 {
				for j, bv := range brow {
					o0[j] += c0 * bv
				}
			}
			if c1 != 0 {
				for j, bv := range brow {
					o1[j] += c1 * bv
				}
			}
			if c2 != 0 {
				for j, bv := range brow {
					o2[j] += c2 * bv
				}
			}
			if c3 != 0 {
				for j, bv := range brow {
					o3[j] += c3 * bv
				}
			}
		}
		for ; i < m.Cols; i++ {
			if a := arow[i]; a != 0 {
				orow := out.Data[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += a * bv
				}
			}
		}
	}
	return out
}

// MulBTIntoBlocked computes m * b^T into out exactly like MulBTInto (bit
// for bit, same panics). It keeps a 2x4 tile of dot-product accumulators
// in registers across the shared k loop — each accumulator sums its
// element's products in ascending k from zero, which is the identical
// float64 sequence MulBTInto produces — and stores each tile once, so no
// zeroing pass is needed. Like MulBTInto it has NO zero-multiplicand
// skip. out must not alias m or b.
func (m *Matrix) MulBTIntoBlocked(b, out *Matrix) *Matrix {
	if m.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: mulbt shape mismatch %dx%d * (%dx%d)^T", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out = EnsureMatrix(out, m.Rows, b.Rows)
	kk := m.Cols
	i := 0
	for ; i+2 <= m.Rows; i += 2 {
		ar0 := m.Data[i*kk : (i+1)*kk]
		ar1 := m.Data[(i+1)*kk : (i+2)*kk]
		or0 := out.Data[i*b.Rows : (i+1)*b.Rows]
		or1 := out.Data[(i+1)*b.Rows : (i+2)*b.Rows]
		j := 0
		for ; j+4 <= b.Rows; j += 4 {
			br0 := b.Data[j*kk : (j+1)*kk]
			br1 := b.Data[(j+1)*kk : (j+2)*kk]
			br2 := b.Data[(j+2)*kk : (j+3)*kk]
			br3 := b.Data[(j+3)*kk : (j+4)*kk]
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			for k := 0; k < kk; k++ {
				a0, a1 := ar0[k], ar1[k]
				s00 += a0 * br0[k]
				s01 += a0 * br1[k]
				s02 += a0 * br2[k]
				s03 += a0 * br3[k]
				s10 += a1 * br0[k]
				s11 += a1 * br1[k]
				s12 += a1 * br2[k]
				s13 += a1 * br3[k]
			}
			or0[j], or0[j+1], or0[j+2], or0[j+3] = s00, s01, s02, s03
			or1[j], or1[j+1], or1[j+2], or1[j+3] = s10, s11, s12, s13
		}
		for ; j < b.Rows; j++ {
			brow := b.Data[j*kk : (j+1)*kk]
			var s0, s1 float64
			for k := 0; k < kk; k++ {
				s0 += ar0[k] * brow[k]
				s1 += ar1[k] * brow[k]
			}
			or0[j], or1[j] = s0, s1
		}
	}
	for ; i < m.Rows; i++ {
		arow := m.Data[i*kk : (i+1)*kk]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*kk : (j+1)*kk]
			var s float64
			for k, a := range arow {
				s += a * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}
