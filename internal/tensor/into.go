package tensor

// Allocation-free kernels for the compiled inference engine (internal/nn
// CompileInference). Each *Into variant writes into a caller-owned
// scratch matrix resized with EnsureMatrix, and each is bit-identical to
// the allocating composition it replaces: TInto and Im2ColMatInto are
// pure data movement, and AddInto performs the same elementwise sums in
// the same order as Add. Bit-identity is load-bearing — the certified
// error bounds are stated for the exact arithmetic of the reference
// forward pass, so a fast path may not perturb even the last ulp.

// TInto writes m's transpose into out (resized as needed) and returns
// the destination. Pure data movement: composing TInto with MulInto
// reproduces Mul-of-materialized-transpose results bit for bit. out must
// not alias m.
func (m *Matrix) TInto(out *Matrix) *Matrix {
	out = EnsureMatrix(out, m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		base := r * m.Cols
		for c := 0; c < m.Cols; c++ {
			out.Data[c*m.Rows+r] = m.Data[base+c]
		}
	}
	return out
}

// AddInto writes m + b into out (resized as needed) and returns the
// destination. The elementwise sums match Add exactly. out may alias m
// or b (the operation is pointwise).
func (m *Matrix) AddInto(b, out *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("tensor: addinto shape mismatch")
	}
	out = EnsureMatrix(out, m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + b.Data[i]
	}
	return out
}

// Im2ColMatInto unrolls convolution receptive fields directly from a
// (c*h*w x batch) feature-major matrix — the layout internal/nn uses for
// layer inputs — into dst (resized as needed), skipping the intermediate
// NCHW tensor entirely. The result equals Im2Col applied to the
// reshaped-to-NCHW input bit for bit: value placement is identical
// (row (ch*kh+ky)*kw+kx, column n*outH*outW+oy*outW+ox) and padded taps
// are written as zero. dst must not alias x.
func Im2ColMatInto(x *Matrix, c, h, w, kh, kw, stride, pad int, dst *Matrix) *Matrix {
	if x.Rows != c*h*w {
		panic("tensor: im2colmat input rows do not match geometry")
	}
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	if outH <= 0 || outW <= 0 {
		panic("tensor: im2colmat empty output")
	}
	batch := x.Cols
	dst = EnsureMatrix(dst, c*kh*kw, batch*outH*outW)
	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := (ch*kh+ky)*kw + kx
				drow := dst.Data[row*dst.Cols : (row+1)*dst.Cols]
				col := 0
				for n := 0; n < batch; n++ {
					for oy := 0; oy < outH; oy++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							for ox := 0; ox < outW; ox++ {
								drow[col] = 0
								col++
							}
							continue
						}
						for ox := 0; ox < outW; ox++ {
							ix := ox*stride - pad + kx
							if ix < 0 || ix >= w {
								drow[col] = 0
							} else {
								f := (ch*h+iy)*w + ix
								drow[col] = x.Data[f*batch+n]
							}
							col++
						}
					}
				}
			}
		}
	}
	return dst
}
