package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The blocked kernels' contract is byte-exact equality with the naive
// reference loops — not closeness. Every test here compares
// math.Float64bits so that -0 vs +0 and last-ulp rounding differences
// count as failures. The single sanctioned relaxation: when BOTH sides
// are NaN the payload bits may differ, because IEEE 754 leaves NaN
// payload propagation unspecified and the compiler is free to commute
// the operands of a float add (x86 ADDSD keeps the first operand's
// payload when two NaNs meet). Every non-NaN result — including the
// sign of zeros and infinities — is still required to match exactly.

// fillSpecial populates data with a mix of normal values and the
// special-value palette the zero-skip and padding paths are sensitive
// to: exact zeros (both signs), NaN, infinities, and denormals.
func fillSpecial(rng *rand.Rand, data []float64) {
	palette := []float64{
		0, math.Copysign(0, -1), 1.5, -2.25,
		math.NaN(), math.Inf(1), math.Inf(-1),
		5e-324, -5e-324, 1e308, -1e308,
	}
	for i := range data {
		if rng.Intn(4) == 0 {
			data[i] = palette[rng.Intn(len(palette))]
		} else {
			data[i] = rng.NormFloat64()
		}
	}
}

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	fillSpecial(rng, m.Data)
	return m
}

// requireBitEqual fails unless got and want agree byte for byte.
func requireBitEqual(t *testing.T, label string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if !bitsMatch(got.Data[i], want.Data[i]) {
			t.Fatalf("%s: element %d = %v (bits %#x), want %v (bits %#x)",
				label, i, got.Data[i], math.Float64bits(got.Data[i]),
				want.Data[i], math.Float64bits(want.Data[i]))
		}
	}
}

// bitsMatch is bit equality with the NaN-payload carve-out described in
// the package comment above.
func bitsMatch(got, want float64) bool {
	if math.IsNaN(got) && math.IsNaN(want) {
		return true
	}
	return math.Float64bits(got) == math.Float64bits(want)
}

// blockedShapes covers the panel boundaries (rows below, at, and past
// the 4-row block), degenerate 0/1-sized dimensions, and shapes like the
// engine's dense/conv/attention matmuls.
var blockedShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 3, 2},
	{3, 2, 1},
	{4, 4, 4},
	{5, 7, 3},
	{7, 1, 9},
	{8, 9, 16},
	{2, 0, 3}, // empty inner dimension: output must be all zeros
	{0, 4, 3}, // no output rows
	{4, 3, 0}, // no output columns
	{16, 12, 16},
	{9, 64, 31},
	{8, 72, 130},
}

func TestMulIntoBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, sh := range blockedShapes {
		for trial := 0; trial < 4; trial++ {
			a := randMat(rng, sh.m, sh.k)
			b := randMat(rng, sh.k, sh.n)
			want := a.MulInto(b, nil)
			got := a.MulIntoBlocked(b, nil)
			requireBitEqual(t, "MulIntoBlocked", got, want)
			// Scratch reuse must not leak stale values through the
			// zero-skip path.
			for i := range got.Data {
				got.Data[i] = math.NaN()
			}
			got = a.MulIntoBlocked(b, got)
			requireBitEqual(t, "MulIntoBlocked(reused scratch)", got, want)
		}
	}
}

func TestTMulIntoBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for _, sh := range blockedShapes {
		for trial := 0; trial < 4; trial++ {
			a := randMat(rng, sh.k, sh.m) // transposed operand: k x m
			b := randMat(rng, sh.k, sh.n)
			want := a.TMulInto(b, nil)
			got := a.TMulIntoBlocked(b, nil)
			requireBitEqual(t, "TMulIntoBlocked", got, want)
		}
	}
}

func TestMulBTIntoBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for _, sh := range blockedShapes {
		for trial := 0; trial < 4; trial++ {
			a := randMat(rng, sh.m, sh.k)
			b := randMat(rng, sh.n, sh.k) // multiplied as b^T
			want := a.MulBTInto(b, nil)
			got := a.MulBTIntoBlocked(b, nil)
			requireBitEqual(t, "MulBTIntoBlocked", got, want)
		}
	}
}

// The blocked variants must also replicate the naive kernels' panic
// behavior on shape mismatch — same fail-fast contract.
func TestBlockedShapePanicParity(t *testing.T) {
	a := NewMatrix(3, 4)
	b := NewMatrix(5, 2) // mismatched everywhere
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic on shape mismatch", name)
			}
		}()
		f()
	}
	mustPanic("MulIntoBlocked", func() { a.MulIntoBlocked(b, nil) })
	mustPanic("TMulIntoBlocked", func() { a.TMulIntoBlocked(b, nil) })
	mustPanic("MulBTIntoBlocked", func() { a.MulBTIntoBlocked(b, nil) })
}

func TestSetColRangeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	m := randMat(rng, 5, 9)
	joined := NewMatrix(5, 9)
	// Carve m into three uneven column ranges and reassemble.
	for _, r := range [][2]int{{0, 4}, {4, 5}, {5, 9}} {
		part := m.ColRangeInto(r[0], r[1], nil)
		joined.SetColRange(r[0], part)
	}
	requireBitEqual(t, "SetColRange", joined, m)

	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("SetColRange: no panic on out-of-range placement")
			}
		}()
		f()
	}
	mustPanic(func() { joined.SetColRange(7, NewMatrix(5, 3)) })
	mustPanic(func() { joined.SetColRange(0, NewMatrix(4, 3)) })
}
