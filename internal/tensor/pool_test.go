package tensor

import (
	"math/rand"
	"testing"
)

// bitEqual reports exact floating-point equality; the Into matmul
// variants promise bit-identity with their allocating counterparts, so
// their tests compare without tolerance.
func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomMatrix(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
		if rng.Intn(8) == 0 {
			m.Data[i] = 0 // exercise the zero-skip path
		}
	}
	return m
}

func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var out *Matrix
	for trial := 0; trial < 20; trial++ {
		r, k, c := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a, b := randomMatrix(r, k, rng), randomMatrix(k, c, rng)
		want := a.Mul(b)
		out = a.MulInto(b, out) // reused across trials
		if out.Rows != r || out.Cols != c || !bitEqual(want.Data, out.Data) {
			t.Fatalf("trial %d: MulInto differs from Mul for %dx%d * %dx%d", trial, r, k, k, c)
		}
	}
}

func TestMulBTIntoMatchesMulBT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var out *Matrix
	for trial := 0; trial < 20; trial++ {
		r, k, c := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a, b := randomMatrix(r, k, rng), randomMatrix(c, k, rng)
		want := a.Mul(b.T())
		out = a.MulBTInto(b, out)
		if out.Rows != r || out.Cols != c || !bitEqual(want.Data, out.Data) {
			t.Fatalf("trial %d: MulBTInto differs from Mul(b.T())", trial)
		}
	}
}

func TestTMulIntoMatchesTMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var out *Matrix
	for trial := 0; trial < 20; trial++ {
		r, k, c := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a, b := randomMatrix(k, r, rng), randomMatrix(k, c, rng)
		want := a.T().Mul(b)
		out = a.TMulInto(b, out)
		if out.Rows != r || out.Cols != c || !bitEqual(want.Data, out.Data) {
			t.Fatalf("trial %d: TMulInto differs from a.T().Mul(b)", trial)
		}
	}
}

func TestEnsureMatrixReuse(t *testing.T) {
	m := NewMatrix(4, 6)
	backing := &m.Data[0]
	m2 := EnsureMatrix(m, 3, 8) // same element count: must reuse
	if m2 != m || &m2.Data[0] != backing {
		t.Fatalf("EnsureMatrix reallocated despite sufficient capacity")
	}
	if m2.Rows != 3 || m2.Cols != 8 {
		t.Fatalf("EnsureMatrix shape = %dx%d, want 3x8", m2.Rows, m2.Cols)
	}
	m3 := EnsureMatrix(m2, 10, 10) // larger: must reallocate
	if m3 == m2 {
		t.Fatalf("EnsureMatrix reused a too-small buffer")
	}
	if m4 := EnsureMatrix(nil, 2, 2); m4 == nil || len(m4.Data) != 4 {
		t.Fatalf("EnsureMatrix(nil) did not allocate")
	}
}

func TestColRangeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(5, 9, rng)
	got := m.ColRangeInto(2, 6, nil)
	if got.Rows != 5 || got.Cols != 4 {
		t.Fatalf("shape %dx%d, want 5x4", got.Rows, got.Cols)
	}
	for r := 0; r < 5; r++ {
		for c := 0; c < 4; c++ {
			if got.At(r, c) != m.At(r, 2+c) {
				t.Fatalf("entry (%d,%d) mismatch", r, c)
			}
		}
	}
	// Full range reproduces the matrix; reuse path preserves values.
	got = m.ColRangeInto(0, 9, got)
	if !bitEqual(got.Data, m.Data) {
		t.Fatalf("full-range ColRangeInto differs from source")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-bounds ColRangeInto did not panic")
		}
	}()
	m.ColRangeInto(3, 10, nil)
}

func TestMatrixPool(t *testing.T) {
	var p MatrixPool
	a := p.Get(3, 3)
	backing := &a.Data[0]
	p.Put(a)
	b := p.Get(2, 4) // 8 <= cap 9: reuse
	if &b.Data[0] != backing {
		t.Fatalf("pool did not reuse a sufficient buffer")
	}
	c := p.Get(5, 5) // pool empty now: fresh allocation
	if len(c.Data) != 25 {
		t.Fatalf("fresh Get returned wrong size")
	}
	p.Put(nil) // must be a no-op
	p.Put(b)
	p.Put(c)
	d := p.Get(4, 5) // prefers most recent (c) with capacity
	if &d.Data[0] != &c.Data[0] {
		t.Fatalf("pool did not prefer the most recently returned sufficient buffer")
	}
}
