package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Differential kernel fuzzing: the fuzzer drives shapes and a value
// seed; the property is byte-exact agreement between the blocked/fused
// kernels and the naive reference loops (or, for Im2ColMatInto, the
// documented per-element placement formula). Wired into `make
// fuzz-smoke` so a schedule change that breaks bit-identity fails CI
// within seconds.

// fuzzDim maps a raw fuzz byte to a dimension in [0, 17): small enough
// to stay fast, large enough to cross the 4-row panel and 2x4 tile
// boundaries with remainders.
func fuzzDim(b byte) int { return int(b) % 17 }

func FuzzMulIntoBlocked(f *testing.F) {
	f.Add(int64(1), byte(4), byte(4), byte(4))
	f.Add(int64(2), byte(1), byte(1), byte(1))
	f.Add(int64(3), byte(5), byte(7), byte(3))
	f.Add(int64(4), byte(0), byte(3), byte(2))
	f.Add(int64(5), byte(9), byte(0), byte(8))
	f.Add(int64(6), byte(13), byte(16), byte(11))
	f.Fuzz(func(t *testing.T, seed int64, mb, kb, nb byte) {
		m, k, n := fuzzDim(mb), fuzzDim(kb), fuzzDim(nb)
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		want := a.MulInto(b, nil)
		got := a.MulIntoBlocked(b, nil)
		diffFail(t, "MulIntoBlocked", got, want)

		at := randMat(rng, k, m)
		want = at.TMulInto(b, nil)
		got = at.TMulIntoBlocked(b, nil)
		diffFail(t, "TMulIntoBlocked", got, want)

		bt := randMat(rng, n, k)
		want = a.MulBTInto(bt, nil)
		got = a.MulBTIntoBlocked(bt, nil)
		diffFail(t, "MulBTIntoBlocked", got, want)
	})
}

func diffFail(t *testing.T, label string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if !bitsMatch(got.Data[i], want.Data[i]) {
			t.Fatalf("%s: element %d bits %#x, want %#x",
				label, i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
		}
	}
}

func FuzzIm2ColMatInto(f *testing.F) {
	f.Add(int64(1), byte(1), byte(4), byte(4), byte(3), byte(1), byte(1), byte(2))
	f.Add(int64(2), byte(2), byte(5), byte(3), byte(2), byte(2), byte(0), byte(1))
	f.Add(int64(3), byte(3), byte(1), byte(1), byte(1), byte(1), byte(0), byte(3))
	f.Add(int64(4), byte(2), byte(6), byte(6), byte(3), byte(2), byte(2), byte(4))
	f.Fuzz(func(t *testing.T, seed int64, cb, hb, wb, kb, sb, pb, nb byte) {
		c := 1 + int(cb)%3
		h := 1 + int(hb)%7
		w := 1 + int(wb)%7
		k := 1 + int(kb)%4
		stride := 1 + int(sb)%3
		pad := int(pb) % 3
		batch := 1 + int(nb)%5
		outH := ConvOutSize(h, k, stride, pad)
		outW := ConvOutSize(w, k, stride, pad)
		if outH <= 0 || outW <= 0 || k > h+2*pad || k > w+2*pad {
			t.Skip("degenerate geometry")
		}
		rng := rand.New(rand.NewSource(seed))
		x := randMat(rng, c*h*w, batch)
		got := Im2ColMatInto(x, c, h, w, k, k, stride, pad, nil)

		// Independent reference: the documented placement formula, one
		// element at a time — row (ch*k+ky)*k+kx, column
		// n*outH*outW+oy*outW+ox, padded taps exactly zero.
		if got.Rows != c*k*k || got.Cols != batch*outH*outW {
			t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, c*k*k, batch*outH*outW)
		}
		for ch := 0; ch < c; ch++ {
			for ky := 0; ky < k; ky++ {
				for kx := 0; kx < k; kx++ {
					row := (ch*k+ky)*k + kx
					for n := 0; n < batch; n++ {
						for oy := 0; oy < outH; oy++ {
							for ox := 0; ox < outW; ox++ {
								col := n*outH*outW + oy*outW + ox
								iy := oy*stride - pad + ky
								ix := ox*stride - pad + kx
								want := 0.0
								if iy >= 0 && iy < h && ix >= 0 && ix < w {
									want = x.Data[((ch*h+iy)*w+ix)*batch+n]
								}
								g := got.Data[row*got.Cols+col]
								if math.Float64bits(g) != math.Float64bits(want) {
									t.Fatalf("element (%d,%d) bits %#x, want %#x",
										row, col, math.Float64bits(g), math.Float64bits(want))
								}
							}
						}
					}
				}
			}
		}
	})
}
