package tensor

// Scratch-buffer machinery for hot training loops. The per-step
// allocation profile of forward/backward passes is dominated by a small
// set of shape-stable matrices (layer activations, gradient scratch,
// im2col transposes); reusing their backing storage across steps removes
// nearly all steady-state garbage. Two tools cooperate here:
//
//   - EnsureMatrix resizes a caller-owned scratch matrix in place,
//     reallocating only when capacity is insufficient (layers keep one
//     scratch per role);
//   - MatrixPool is a free list for matrices whose lifetime is a single
//     step but whose count varies (per-shard input slices in the
//     data-parallel trainer).
//
// Neither is safe for concurrent use: a pool belongs to one goroutine
// (the trainer gives each worker its own), exactly like the network
// replica it feeds.

// EnsureMatrix returns a rows x cols matrix reusing m's backing array
// when it has sufficient capacity; otherwise (or when m is nil) it
// allocates fresh storage. The returned matrix's contents are
// unspecified — callers that accumulate must zero it first (see
// ZeroMatrix).
func EnsureMatrix(m *Matrix, rows, cols int) *Matrix {
	n := rows * cols
	if m == nil || cap(m.Data) < n {
		return NewMatrix(rows, cols)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	return m
}

// ZeroMatrix clears every entry of m and returns it.
func ZeroMatrix(m *Matrix) *Matrix {
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// CopyFrom resizes m to src's shape (reusing storage when possible) and
// copies src's entries; it returns the destination, which may differ
// from m when a reallocation was needed.
func (m *Matrix) CopyFrom(src *Matrix) *Matrix {
	dst := EnsureMatrix(m, src.Rows, src.Cols)
	copy(dst.Data, src.Data)
	return dst
}

// ColRangeInto copies columns [lo, hi) of m into dst (resized as
// needed), preserving row order. It returns the destination matrix.
func (m *Matrix) ColRangeInto(lo, hi int, dst *Matrix) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic("tensor: ColRangeInto range out of bounds")
	}
	w := hi - lo
	dst = EnsureMatrix(dst, m.Rows, w)
	for r := 0; r < m.Rows; r++ {
		copy(dst.Data[r*w:(r+1)*w], m.Data[r*m.Cols+lo:r*m.Cols+hi])
	}
	return dst
}

// SetColRange copies all of src into columns [lo, lo+src.Cols) of m,
// preserving row order — the inverse of ColRangeInto. Pure data
// movement: the compiled inference engine joins per-shard outputs with
// it in a fixed serial order, so sharded results are bit-identical to
// unsharded ones. m and src must have the same row count and the range
// must fit; src must not alias m.
func (m *Matrix) SetColRange(lo int, src *Matrix) {
	if src.Rows != m.Rows || lo < 0 || lo+src.Cols > m.Cols {
		panic("tensor: SetColRange range out of bounds")
	}
	w := src.Cols
	for r := 0; r < m.Rows; r++ {
		copy(m.Data[r*m.Cols+lo:r*m.Cols+lo+w], src.Data[r*w:(r+1)*w])
	}
}

// MatrixPool is a single-goroutine free list of scratch matrices. Get
// prefers the most recently returned buffer with enough capacity; Put
// recycles a matrix for a later Get. The zero value is ready to use.
type MatrixPool struct {
	free []*Matrix
}

// Get returns a rows x cols matrix, reusing a pooled buffer when one
// with sufficient capacity exists. Contents are unspecified.
func (p *MatrixPool) Get(rows, cols int) *Matrix {
	n := rows * cols
	for i := len(p.free) - 1; i >= 0; i-- {
		if m := p.free[i]; cap(m.Data) >= n {
			p.free = append(p.free[:i], p.free[i+1:]...)
			m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
			return m
		}
	}
	return NewMatrix(rows, cols)
}

// Put recycles m into the pool. The caller must not use m afterwards.
func (p *MatrixPool) Put(m *Matrix) {
	if m == nil {
		return
	}
	p.free = append(p.free, m)
}
