package experiments

import (
	"math"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/gpusim"
	"github.com/scidata/errprop/internal/hpcio"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/stats"
)

// Fig10 regenerates the quantization-priority coordination study on the
// hydrogen-combustion task: per user tolerance, the tolerance split
// between quantization and compression (left panel) and the resulting
// I/O-phase versus execution-phase throughput (right panel), where
// execution is the bottleneck throughout.
func Fig10() *Result {
	t := adapters()[0] // H2Combustion
	st := hpcio.DefaultStorage()
	dm := hpcio.DefaultDecodeModel()
	dev := gpusim.RTX3080Ti
	root := mustGraph(t.qoiNet)

	tb := stats.NewTable("rel QoI tol", "format", "quant bound (rel)", "compress tol (linf)",
		"ratio", "IO GB/s", "exec GB/s", "bottleneck")
	for _, tol := range qoiTolLevels {
		absTol := tol * t.scaleLinf
		// Quantization-priority: offer the whole tolerance to quantization.
		plan, err := core.PlanGraph(root, core.PlanRequest{
			Tol: absTol, Norm: core.NormLinf, QuantFraction: 1.0})
		if err != nil {
			panic(err)
		}
		field, dims := t.ioField()
		var ioTP, ratio float64
		if math.IsInf(plan.InputTolLinf, 0) {
			ioTP, ratio = mustReadRaw(st, len(field)).Throughput, 1
		} else {
			blob, err := compress.Encode("sz", field, dims, compress.AbsLinf, plan.InputTolLinf)
			if err != nil {
				panic(err)
			}
			res, err := hpcio.ReadCompressed(st, dm, blob)
			if err != nil {
				panic(err)
			}
			ioTP, ratio = res.Throughput, res.Ratio
		}
		execTP := gpusim.Throughput(t.qoiNet, dev, plan.Format, 256)
		bottleneck := "execution"
		if ioTP < execTP {
			bottleneck = "io"
		}
		tb.AddRow(tol, plan.Format.String(), plan.QuantBound/t.scaleLinf,
			plan.InputTolLinf, ratio, ioTP/1e9, execTP/1e9, bottleneck)
	}
	return &Result{
		ID:    "fig10",
		Title: "Coordinating reduction and quantization, quantization-priority, H2 (Fig. 10)",
		Table: tb,
		Notes: "compression exploits the gap between the chosen format's predicted quantization error and the user tolerance; execution remains the bottleneck on this task, as in the paper",
	}
}

// mustGraph builds the error-flow graph of a network or panics.
func mustGraph(net *nn.Network) *core.Node {
	root, err := core.FromNetwork(net)
	if err != nil {
		panic(err)
	}
	return root
}
