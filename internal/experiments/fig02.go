package experiments

import (
	"time"

	"github.com/scidata/errprop/internal/gpusim"
	"github.com/scidata/errprop/internal/hpcio"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/stats"
)

// benchModel is one of the architectures Figs. 2 and 9 sweep: standard
// ResNets of growing depth adapted for 10-class classification, and MLPs
// at the paper's three FLOP budgets (mlp_s 0.5M, mlp_m 4.2M, mlp_l
// 33.7M). ResNets run at 32x32 inputs — a documented scale reduction;
// the phase-breakdown and speedup *shapes* depend only on the relative
// FLOP/byte ratios, which the topologies preserve.
type benchModel struct {
	name  string
	net   *nn.Network
	batch int
}

var benchModelCache []benchModel

func benchModels() []benchModel {
	if benchModelCache != nil {
		return benchModelCache
	}
	build := func(name string, spec *nn.Spec, batch int) benchModel {
		net, err := spec.Build(9)
		if err != nil {
			panic(err)
		}
		return benchModel{name: name, net: net, batch: batch}
	}
	benchModelCache = []benchModel{
		build("resnet18", nn.ResNetSpec("resnet18", 3, 32, 32, 10,
			[]int{2, 2, 2, 2}, []int{64, 128, 256, 512}, nn.ActReLU, false), 64),
		build("resnet34", nn.ResNetSpec("resnet34", 3, 32, 32, 10,
			[]int{3, 4, 6, 3}, []int{64, 128, 256, 512}, nn.ActReLU, false), 64),
		// resnet50 substitutes basic blocks for bottlenecks at matching
		// conv-layer count (we implement basic residual blocks only).
		build("resnet50", nn.ResNetSpec("resnet50", 3, 32, 32, 10,
			[]int{4, 6, 8, 5}, []int{64, 128, 256, 512}, nn.ActReLU, false), 64),
		build("mlp_s", nn.MLPSpec("mlp_s", []int{256, 512, 256, 10}, nn.ActReLU, false), 1024),
		build("mlp_m", nn.MLPSpec("mlp_m", []int{512, 1536, 1024, 10}, nn.ActReLU, false), 1024),
		build("mlp_l", nn.MLPSpec("mlp_l", []int{1024, 4096, 3072, 10}, nn.ActReLU, false), 1024),
	}
	return benchModelCache
}

// Fig2 regenerates the inference-time breakdown: the percentage of
// end-to-end time spent loading data, preprocessing, and executing each
// model at FP32 on the simulated RTX 3080 Ti over 2.8 GB/s storage.
func Fig2() *Result {
	st := hpcio.DefaultStorage()
	dev := gpusim.RTX3080Ti
	tb := stats.NewTable("model", "MFLOPs/sample", "load %", "preprocess %", "execute %", "exec/total")
	for _, m := range benchModels() {
		samples := 8 * m.batch
		rawBytes := int64(m.net.InputDim * samples * 8)
		ioT, err := st.ReadTime(rawBytes)
		if err != nil {
			panic(err) // reliable DefaultStorage with non-negative sizes cannot fail
		}
		preT := time.Duration(float64(rawBytes) / 6e9 * 1e9)
		per, _ := gpusim.ExecCost(m.net, dev, numfmt.FP32, m.batch)
		exeT := per * time.Duration(samples/m.batch)
		total := ioT + preT + exeT
		pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(total) }
		tb.AddRow(m.name, float64(m.net.FLOPs())/1e6,
			pct(ioT), pct(preT), pct(exeT), pct(exeT)/100)
	}
	return &Result{
		ID:    "fig2",
		Title: "Percentage of inference time per phase (Fig. 2)",
		Table: tb,
		Notes: "FP32 on simulated RTX 3080 Ti, 2.8 GB/s storage; execution dominates for deep ResNets, loading for small MLPs",
	}
}
