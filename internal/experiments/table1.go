package experiments

import (
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/stats"
)

// Table1 regenerates the paper's Table I: the average quantization step
// size q(W) of each numeric format, evaluated on the first-layer weights
// of each trained task model so the abstract formulas become concrete
// numbers.
func Table1() *Result {
	formulas := map[numfmt.Format]string{
		numfmt.TF32: "2^-10 * rms(2^floor(log2|Wij|))",
		numfmt.FP16: "2^-10 * rms(2^max(-14, floor(log2|Wij|)))",
		numfmt.BF16: "2^-7  * rms(2^floor(log2|Wij|))",
		numfmt.INT8: "2^-8  * (max Wij - min Wij)",
	}
	tasks := adapters()
	tb := stats.NewTable("format", "step-size formula", "q(W) H2 L1", "q(W) Borghesi L1", "q(W) EuroSAT L1")
	for _, f := range numfmt.Formats {
		row := []any{f.String(), formulas[f]}
		for _, t := range tasks {
			ops := t.qoiNet.LinearOps()
			row = append(row, numfmt.StepSize(f, ops[0].Weights))
		}
		tb.AddRow(row...)
	}
	return &Result{
		ID:    "table1",
		Title: "Average quantization step size q per numerical format (Table I)",
		Table: tb,
		Notes: "q evaluated on each task model's first linear layer; TF32 == FP16 whenever all weights sit in FP16's normal range",
	}
}
