package experiments

import (
	"fmt"
	"math"

	"github.com/scidata/errprop/internal/compress"
	_ "github.com/scidata/errprop/internal/compress/mgard" // register codecs
	_ "github.com/scidata/errprop/internal/compress/sz"
	_ "github.com/scidata/errprop/internal/compress/zfp"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/dataset"
	"github.com/scidata/errprop/internal/hpcio"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/stats"
	"github.com/scidata/errprop/internal/tensor"
)

// Result is one experiment's regenerated table.
type Result struct {
	ID    string
	Title string
	Table *stats.Table
	Notes string
}

// String renders the result for terminal output.
func (r *Result) String() string {
	s := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table)
	if r.Notes != "" {
		s += "notes: " + r.Notes + "\n"
	}
	return s
}

// taskAdapter gives every experiment a uniform view of the three
// workloads: the QoI network (the feature network for EuroSAT, per the
// paper), a per-feature network ending in a dense head, fresh input
// blocks in compressible field layout, and the relative-error scales.
type taskAdapter struct {
	name       string
	qoiNet     *nn.Network // network whose output is the QoI
	perFeatNet *nn.Network // network with a dense head (per-feature bounds)
	variantNet func(v Variant) *nn.Network
	// inputField returns a fresh input block (field layout + dims) for
	// the given replicate index; distinct replicates are the paper's
	// "five independently sampled batches".
	inputField func(rep int) ([]float64, []int)
	// ioField returns a large (tens of MB) input block for the
	// throughput experiments, where storage latency must amortize; it is
	// never pushed through the network.
	ioField   func() ([]float64, []int)
	scaleLinf float64
	scaleL2   float64
}

// fieldToMatrix reinterprets a field block (feature-major) as an
// (InDim x N) input matrix.
func fieldToMatrix(field []float64, dims []int) *tensor.Matrix {
	n := 1
	for _, d := range dims[1:] {
		n *= d
	}
	return tensor.NewMatrixFrom(dims[0], n, field)
}

// ioFieldCache memoizes the large throughput-experiment blocks, which
// are expensive to synthesize and reused across figures.
var ioFieldCache = map[string]struct {
	field []float64
	dims  []int
}{}

func cachedIOField(name string, gen func() ([]float64, []int)) ([]float64, []int) {
	if e, ok := ioFieldCache[name]; ok {
		return e.field, e.dims
	}
	f, d := gen()
	ioFieldCache[name] = struct {
		field []float64
		dims  []int
	}{f, d}
	return f, d
}

// mustReadRaw is hpcio.ReadRaw for the experiment figures, which run on
// reliable DefaultStorage with non-negative sizes — a failure there is a
// programming error, not a condition to report in a table.
func mustReadRaw(st *hpcio.Storage, n int) *hpcio.ReadResult {
	res, err := hpcio.ReadRaw(st, n)
	if err != nil {
		panic(err)
	}
	return res
}

// adapters builds the three task adapters (training on first use).
func adapters() []*taskAdapter {
	h2 := H2(PSN)
	bf := Borghesi(PSN)
	es := EuroSAT(PSN)

	h2A := &taskAdapter{
		name: "H2Combustion", qoiNet: h2.Net, perFeatNet: h2.Net,
		variantNet: func(v Variant) *nn.Network { return H2(v).Net },
		inputField: func(rep int) ([]float64, []int) {
			d := dataset.H2Combustion(h2TestGrid, 700+int64(rep))
			return d.FieldData(), d.FieldDims
		},
		ioField: func() ([]float64, []int) {
			return cachedIOField("h2", func() ([]float64, []int) {
				d := dataset.H2Combustion(384, 777)
				return d.FieldData(), d.FieldDims
			})
		},
		scaleLinf: h2.QoIScaleLinf, scaleL2: h2.QoIScaleL2,
	}
	bfA := &taskAdapter{
		name: "BorghesiFlame", qoiNet: bf.Net, perFeatNet: bf.Net,
		variantNet: func(v Variant) *nn.Network { return Borghesi(v).Net },
		inputField: func(rep int) ([]float64, []int) {
			d := dataset.BorghesiFlame(borgTestGrid, 800+int64(rep))
			return d.FieldData(), d.FieldDims
		},
		ioField: func() ([]float64, []int) {
			return cachedIOField("borghesi", func() ([]float64, []int) {
				d := dataset.BorghesiFlame(320, 888)
				return d.FieldData(), d.FieldDims
			})
		},
		scaleLinf: bf.QoIScaleLinf, scaleL2: bf.QoIScaleL2,
	}
	esA := &taskAdapter{
		name: "EuroSAT", qoiNet: es.FeatureNet, perFeatNet: es.Net,
		variantNet: func(v Variant) *nn.Network { return EuroSAT(v).FeatureNet },
		inputField: func(rep int) ([]float64, []int) {
			d := dataset.EuroSAT(8, esSize, 900+int64(rep))
			// Stack the batch along the width axis: [bands, S, S*N].
			n := d.N()
			s := esSize
			field := make([]float64, dataset.EuroSATBands*s*s*n)
			for img := 0; img < n; img++ {
				src := d.Images.Sample(img)
				for b := 0; b < dataset.EuroSATBands; b++ {
					for y := 0; y < s; y++ {
						for x := 0; x < s; x++ {
							field[(b*s+y)*(s*n)+img*s+x] = src[(b*s+y)*s+x]
						}
					}
				}
			}
			return field, []int{dataset.EuroSATBands, s, s * n}
		},
		ioField: func() ([]float64, []int) {
			return cachedIOField("eurosat", func() ([]float64, []int) {
				// A stack of larger tiles, width-concatenated.
				d := dataset.EuroSAT(64, 32, 999)
				n, sz := d.N(), 32
				field := make([]float64, dataset.EuroSATBands*sz*sz*n)
				for img := 0; img < n; img++ {
					src := d.Images.Sample(img)
					for b := 0; b < dataset.EuroSATBands; b++ {
						for y := 0; y < sz; y++ {
							for x := 0; x < sz; x++ {
								field[(b*sz+y)*(sz*n)+img*sz+x] = src[(b*sz+y)*sz+x]
							}
						}
					}
				}
				return field, []int{dataset.EuroSATBands, sz, sz * n}
			})
		},
		scaleLinf: es.QoIScaleLinf, scaleL2: es.QoIScaleL2,
	}
	return []*taskAdapter{h2A, bfA, esA}
}

// qoiOnField runs the QoI network on an input block given in field
// layout. For EuroSAT the width-stacked field is unpacked back into
// per-image samples first.
func (t *taskAdapter) qoiOnField(field []float64, dims []int) *tensor.Matrix {
	if t.name == "EuroSAT" {
		return t.netOnImages(t.qoiNet, field, dims)
	}
	return evalForward(t.qoiNet, fieldToMatrix(field, dims))
}

// qoiOnFieldNet is qoiOnField against an arbitrary network (quantized
// copies, baselines).
func (t *taskAdapter) qoiOnFieldNet(net *nn.Network, field []float64, dims []int) *tensor.Matrix {
	if t.name == "EuroSAT" {
		return t.netOnImages(net, field, dims)
	}
	return evalForward(net, fieldToMatrix(field, dims))
}

// netOnImages unpacks a width-stacked EuroSAT field into images and runs
// the network per image batch.
func (t *taskAdapter) netOnImages(net *nn.Network, field []float64, dims []int) *tensor.Matrix {
	bands, s, sn := dims[0], dims[1], dims[2]
	n := sn / s
	x := tensor.NewMatrix(bands*s*s, n)
	for img := 0; img < n; img++ {
		for b := 0; b < bands; b++ {
			for y := 0; y < s; y++ {
				for xx := 0; xx < s; xx++ {
					x.Data[((b*s+y)*s+xx)*n+img] = field[(b*s+y)*sn+img*s+xx]
				}
			}
		}
	}
	return evalForward(net, x)
}

// relQoIErr measures the relative QoI error between reference and
// perturbed outputs in both norms.
func (t *taskAdapter) relQoIErr(ref, got *tensor.Matrix) (relLinf, relL2 float64) {
	diff := tensor.Vector(got.Data).Sub(tensor.Vector(ref.Data))
	// Per-sample L2: worst over samples, relative to the task L2 scale.
	n := ref.Cols
	var worstL2 float64
	for c := 0; c < n; c++ {
		var ss float64
		for r := 0; r < ref.Rows; r++ {
			d := diff[r*n+c]
			ss += d * d
		}
		if s := math.Sqrt(ss); s > worstL2 {
			worstL2 = s
		}
	}
	return diff.NormInf() / t.scaleLinf, worstL2 / t.scaleL2
}

// analysisFor builds the error-flow analysis of a network under a weight
// format (numfmt.FP32 = compression-only).
func (t *taskAdapter) analysisFor(net *nn.Network, f numfmt.Format) *core.Analysis {
	an, err := core.AnalyzeNetwork(net, f)
	if err != nil {
		panic(fmt.Sprintf("experiments: analysis of %s: %v", t.name, err))
	}
	return an
}

// compressField compresses and reconstructs a field block, returning the
// reconstruction and the achieved input errors.
func compressField(codec string, field []float64, dims []int, mode compress.Mode, tol float64) (recon []float64, einf, el2, ratio float64, err error) {
	blob, err := compress.Encode(codec, field, dims, mode, tol)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	recon, _, err = compress.Decode(blob)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	einf, el2 = compress.MeasureError(field, recon)
	return recon, einf, el2, compress.Ratio(len(field), blob), nil
}
