// Package experiments reproduces every table and figure of the paper's
// evaluation (Table I, Figs. 2-15) on the simulated substrates. Each
// runner returns a formatted table whose rows are the series the paper
// plots; EXPERIMENTS.md records the expected shapes.
//
// The three task models (H2 combustion, Borghesi flame, EuroSAT) are
// trained once per process with fixed seeds — or loaded from
// $ERRPROP_MODEL_DIR if previously saved by cmd/train — and shared by all
// experiments.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/scidata/errprop/internal/dataset"
	"github.com/scidata/errprop/internal/nn"
)

// Variant selects the training regime for the Fig. 3-4 comparison.
type Variant int

const (
	// PSN trains with parameterized spectral normalization + penalty.
	PSN Variant = iota
	// Plain trains without any spectral control ("baseline").
	Plain
	// WeightDecay trains with L2 weight decay in place of PSN
	// ("baseline w. weight decay").
	WeightDecay
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case PSN:
		return "psn"
	case Plain:
		return "plain"
	case WeightDecay:
		return "wd"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// RegressionTask is a trained regression workload.
type RegressionTask struct {
	Name  string
	Net   *nn.Network
	Train *dataset.Regression
	Test  *dataset.Regression
	// QoIScaleLinf/L2 are reference output magnitudes on the test set,
	// used to express errors relatively as the paper does.
	QoIScaleLinf float64
	QoIScaleL2   float64
}

// ClassificationTask is the trained EuroSAT workload. The QoI is the
// final feature map (FeatureNet); the classification head serves the
// per-feature experiments.
type ClassificationTask struct {
	Name       string
	Net        *nn.Network // full classifier
	FeatureNet *nn.Network // truncated before the dense head (paper's QoI)
	Train      *dataset.Classification
	Test       *dataset.Classification
	// Feature-map QoI scales on the test set.
	QoIScaleLinf float64
	QoIScaleL2   float64
}

var (
	regMu      sync.Mutex
	regTasks   = map[string]*RegressionTask{}
	classTasks = map[string]*ClassificationTask{}
)

// H2 returns the hydrogen-combustion task trained with the given variant
// (cached per process).
func H2(v Variant) *RegressionTask { return regressionTask("h2comb", v) }

// Borghesi returns the dissipation-rate task (cached per process).
func Borghesi(v Variant) *RegressionTask { return regressionTask("borghesi", v) }

// RegressionTasks returns both regression tasks under a variant.
func RegressionTasks(v Variant) []*RegressionTask {
	return []*RegressionTask{H2(v), Borghesi(v)}
}

func regressionTask(name string, v Variant) *RegressionTask {
	regMu.Lock()
	defer regMu.Unlock()
	key := name + "/" + v.String()
	if t, ok := regTasks[key]; ok {
		return t
	}
	t := buildRegressionTask(name, v)
	regTasks[key] = t
	return t
}

// EuroSAT returns the satellite-classification task (cached per process).
func EuroSAT(v Variant) *ClassificationTask {
	regMu.Lock()
	defer regMu.Unlock()
	key := "eurosat/" + v.String()
	if t, ok := classTasks[key]; ok {
		return t
	}
	t := buildEuroSATTask(v)
	classTasks[key] = t
	return t
}

// modelDir returns the optional on-disk model cache directory.
func modelDir() string { return os.Getenv("ERRPROP_MODEL_DIR") }

// loadCached tries to load a trained model from the model directory.
func loadCached(key string) *nn.Network {
	dir := modelDir()
	if dir == "" {
		return nil
	}
	f, err := os.Open(filepath.Join(dir, key+".model"))
	if err != nil {
		return nil
	}
	defer f.Close()
	net, err := nn.Load(f)
	if err != nil {
		return nil
	}
	return net
}

// saveCached persists a trained model if a model directory is configured.
func saveCached(key string, net *nn.Network) {
	dir := modelDir()
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	f, err := os.Create(filepath.Join(dir, key+".model"))
	if err != nil {
		return
	}
	defer f.Close()
	_ = net.Save(f)
}
