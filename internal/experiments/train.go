package experiments

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/scidata/errprop/internal/checkpoint"
	"github.com/scidata/errprop/internal/dataset"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/tensor"
)

// Training configuration per task, sized so the whole registry trains in
// tens of seconds on a laptop while reaching a fit good enough for the
// error-propagation experiments (the bounds depend on the trained
// spectra, not on state-of-the-art accuracy).
const (
	h2Grid       = 32 // 1024 training samples on a 32x32 vortex field
	h2TestGrid   = 24
	borgGrid     = 32
	borgTestGrid = 24
	esTrainN     = 80
	esTestN      = 40
	esSize       = 8 // 13-band 8x8 multispectral tiles
)

// Per-task PSN recipes: the spectral penalty weight and the alpha
// initialization. Deep networks start their alphas near 1 so the
// spectral-norm product (hence the predicted bound) stays close to the
// function's true Lipschitz constant — this is what keeps the bound
// within about one order of magnitude of the achieved error, the paper's
// headline tightness result.
type psnRecipe struct {
	lambda    float64
	alphaInit float64 // 0 = keep the post-init sigma (default)
}

var psnRecipes = map[string]psnRecipe{
	"h2comb":   {lambda: 1e-4},
	"borghesi": {lambda: 1e-2, alphaInit: 1.15},
	"eurosat":  {lambda: 1e-3, alphaInit: 1.5},
}

// applyAlphaInit overrides every PSN alpha of a freshly built network.
func applyAlphaInit(net *nn.Network, alpha float64) {
	if alpha <= 0 {
		return
	}
	for _, p := range net.Params() {
		if len(p.Data) == 1 && strings.HasSuffix(p.Name, ".alpha") {
			p.Data[0] = alpha
		}
	}
}

// checkpointLoop returns the crash-safety checkpoint loop for one model
// key, nil when checkpointing is off ($ERRPROP_CHECKPOINT_DIR unset —
// cmd/train sets it from -checkpoint-dir). Each model checkpoints into
// its own subdirectory; cadence comes from $ERRPROP_CHECKPOINT_EVERY
// (steps, default 200).
func checkpointLoop(key string) *checkpoint.Loop {
	dir := os.Getenv("ERRPROP_CHECKPOINT_DIR")
	if dir == "" {
		return nil
	}
	every := int64(200)
	if raw := os.Getenv("ERRPROP_CHECKPOINT_EVERY"); raw != "" {
		if v, err := strconv.ParseInt(raw, 10, 64); err == nil && v > 0 {
			every = v
		}
	}
	return &checkpoint.Loop{Dir: filepath.Join(dir, key), Every: every, Keep: 3}
}

// resumeSteps restores the newest usable checkpoint into tr (when
// $ERRPROP_RESUME is set) and returns the number of optimizer steps the
// replay loop must skip. The batch schedule is a pure function of the
// step index, so skipping the first n steps reproduces exactly the state
// the killed run had after its n-th step.
func resumeSteps(ckpt *checkpoint.Loop, tr *nn.Trainer) int64 {
	if ckpt == nil || os.Getenv("ERRPROP_RESUME") == "" {
		return 0
	}
	start, err := ckpt.Resume(tr, nil)
	if err != nil {
		panic("experiments: resuming from " + ckpt.Dir + ": " + err.Error())
	}
	return start
}

// buildRegressionTask trains (or loads) one of the two regression tasks.
func buildRegressionTask(name string, v Variant) *RegressionTask {
	var train, test *dataset.Regression
	var spec *nn.Spec
	var opt nn.Optimizer
	var epochs int
	switch name {
	case "h2comb":
		train = dataset.H2Combustion(h2Grid, 101)
		test = dataset.H2Combustion(h2TestGrid, 202)
		// The paper's H2 model: two hidden layers of 50 neurons, Tanh,
		// trained with standard SGD.
		spec = nn.MLPSpec("h2comb", []int{9, 50, 50, 9}, nn.ActTanh, v == PSN)
		sgd := nn.NewSGD(0.05, 0.9, 0)
		if v == WeightDecay {
			sgd.WeightDecay = 1e-4
		}
		opt = sgd
		epochs = 150
	case "borghesi":
		train = dataset.BorghesiFlame(borgGrid, 303)
		test = dataset.BorghesiFlame(borgTestGrid, 404)
		// The paper's Borghesi model: an 8-hidden-layer MLP trained with
		// Adam; PReLU is among the activations the paper covers.
		dims := []int{13, 32, 32, 32, 32, 32, 32, 32, 32, 3}
		spec = nn.MLPSpec("borghesi", dims, nn.ActPReLU, v == PSN)
		adam := nn.NewAdam(2e-3)
		if v == WeightDecay {
			adam.WeightDecay = 1e-4
		}
		opt = adam
		epochs = 160
	default:
		panic("experiments: unknown regression task " + name)
	}

	key := name + "-" + v.String()
	net := loadCached(key)
	if net == nil {
		var err error
		net, err = spec.Build(1234)
		if err != nil {
			panic(err)
		}
		lambda := 0.0
		if v == PSN {
			r := psnRecipes[name]
			lambda = r.lambda
			applyAlphaInit(net, r.alphaInit)
		}
		trainRegression(net, train, opt, epochs, lambda, checkpointLoop(key))
		saveCached(key, net)
	}
	net.RefreshSigmas()

	t := &RegressionTask{Name: name, Net: net, Train: train, Test: test}
	t.QoIScaleLinf, t.QoIScaleL2 = qoiScales(net, test.X)
	return t
}

// trainRegression runs minibatch training with MSE loss and the PSN
// spectral penalty when lambda > 0, on the deterministic data-parallel
// trainer (Workers follows GOMAXPROCS; the result is independent of it).
func trainRegression(net *nn.Network, data *dataset.Regression, opt nn.Optimizer, epochs int, lambda float64, ckpt *checkpoint.Loop) {
	const batch = 256
	tr, err := nn.NewTrainer(net, opt, nn.TrainConfig{})
	if err != nil {
		panic(err)
	}
	start := resumeSteps(ckpt, tr)
	n := data.N()
	var step int64
	for e := 0; e < epochs; e++ {
		for lo := 0; lo < n; lo += batch {
			step++
			if step <= start {
				continue // already applied by the run being resumed
			}
			hi := lo + batch
			if hi > n {
				hi = n
			}
			x, y := data.Batch(lo, hi)
			tr.StepMSE(x, y, lambda)
			if err := ckpt.AfterStep(tr, nil); err != nil {
				panic(err)
			}
		}
	}
}

// buildEuroSATTask trains (or loads) the satellite classifier: a reduced
// ResNet (the paper's ResNet18 topology at laptop scale) with PSN.
func buildEuroSATTask(v Variant) *ClassificationTask {
	train := dataset.EuroSAT(esTrainN, esSize, 505)
	test := dataset.EuroSAT(esTestN, esSize, 606)
	spec := nn.ResNetSpec("eurosat", dataset.EuroSATBands, esSize, esSize, 10,
		[]int{1, 1}, []int{8, 16}, nn.ActReLU, v == PSN)

	key := "eurosat-" + v.String()
	net := loadCached(key)
	if net == nil {
		var err error
		net, err = spec.Build(4321)
		if err != nil {
			panic(err)
		}
		lambda := 0.0
		epochs := 30
		if v == PSN {
			r := psnRecipes["eurosat"]
			lambda = r.lambda
			applyAlphaInit(net, r.alphaInit)
			epochs = 60 // constrained alphas learn more slowly
		}
		sgd := nn.NewSGD(0.01, 0.9, 0)
		if v == WeightDecay {
			sgd.WeightDecay = 1e-4
		}
		trainEuroSAT(net, train, sgd, epochs, lambda, checkpointLoop(key))
		saveCached(key, net)
	}
	net.RefreshSigmas()

	t := &ClassificationTask{Name: "eurosat", Net: net, FeatureNet: net.FeatureNetwork(),
		Train: train, Test: test}
	x, _ := test.BatchMatrix(0, test.N())
	t.QoIScaleLinf, t.QoIScaleL2 = qoiScalesMatrix(t.FeatureNet, x)
	return t
}

func trainEuroSAT(net *nn.Network, data *dataset.Classification, opt nn.Optimizer, epochs int, lambda float64, ckpt *checkpoint.Loop) {
	// Minibatches of 20 split into shards of 8 so the conv forward /
	// backward passes — the dominant cost — parallelize across workers.
	const batch = 20
	tr, err := nn.NewTrainer(net, opt, nn.TrainConfig{ShardSize: 8})
	if err != nil {
		panic(err)
	}
	start := resumeSteps(ckpt, tr)
	n := data.N()
	var step int64
	for e := 0; e < epochs; e++ {
		for lo := 0; lo < n; lo += batch {
			step++
			if step <= start {
				continue // already applied by the run being resumed
			}
			hi := lo + batch
			if hi > n {
				hi = n
			}
			x, labels := data.BatchMatrix(lo, hi)
			tr.StepCrossEntropy(x, labels, lambda)
			if err := ckpt.AfterStep(tr, nil); err != nil {
				panic(err)
			}
		}
	}
}

// qoiScales measures reference output magnitudes over a test input set:
// the max |y| (Linf scale) and the mean per-sample ||y||_2 (L2 scale),
// the denominators for the paper's relative errors.
func qoiScales(net *nn.Network, x *tensor.Matrix) (linf, l2 float64) {
	return qoiScalesMatrix(net, x)
}

func qoiScalesMatrix(net *nn.Network, x *tensor.Matrix) (linf, l2 float64) {
	y := evalForward(net, x)
	var sum float64
	for c := 0; c < y.Cols; c++ {
		var ss float64
		for r := 0; r < y.Rows; r++ {
			v := math.Abs(y.At(r, c))
			if v > linf {
				linf = v
			}
			ss += v * v
		}
		sum += math.Sqrt(ss)
	}
	l2 = sum / float64(y.Cols)
	return linf, l2
}

// TestAccuracy reports the EuroSAT classifier's test accuracy (sanity
// diagnostics; the QoI experiments use the feature map).
func (t *ClassificationTask) TestAccuracy() float64 {
	x, labels := t.Test.BatchMatrix(0, t.Test.N())
	return nn.Accuracy(evalForward(t.Net, x), labels)
}

// TestMSE reports a regression task's test loss.
func (t *RegressionTask) TestMSE() float64 {
	x, y := t.Test.Batch(0, t.Test.N())
	loss, _ := nn.MSELoss(evalForward(t.Net, x), y)
	return loss
}
