package experiments

import (
	"sync"

	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/tensor"
)

// The figure loops sweep the same trained networks over many compressed
// inputs, formats and tolerances — all inference-only. evalForward
// routes those sweeps through a compiled inference engine
// (nn.CompileInference, bit-identical to Network.Forward, so measured
// errors and certified bounds are unchanged to the last bit), compiled
// once per network and cached for the life of the process. Networks the
// engine cannot compile fall back to the legacy path.

// evalEngineBatch sizes the cached engines' buffer arenas; eval batches
// larger than this still work (the arena grows to the high-water mark).
const evalEngineBatch = 64

var (
	evalMu      sync.Mutex
	evalEngines = map[*nn.Network]*nn.Engine{}
)

// evalForward runs an inference-only forward pass through net's cached
// engine. The result is an independent copy (callers routinely hold a
// reference output while computing a perturbed one). The mutex also
// serializes engine use, since the figure loops may share networks.
func evalForward(net *nn.Network, x *tensor.Matrix) *tensor.Matrix {
	evalMu.Lock()
	defer evalMu.Unlock()
	eng, cached := evalEngines[net]
	if !cached {
		eng, _ = nn.CompileInference(net, evalEngineBatch) // nil on failure
		evalEngines[net] = eng
	}
	if eng == nil {
		return net.Forward(x, false)
	}
	return eng.Forward(x).Clone()
}
