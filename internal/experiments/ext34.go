package experiments

import (
	"strings"

	"github.com/scidata/errprop/internal/autotune"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/gpusim"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/stats"
)

// ExtMixedPrecision runs the per-layer format-selection extension (the
// paper's "significantly larger optimization space"): for each task and
// bound budget, the greedy mixed plan versus the best uniform format,
// comparing predicted bound, simulated execution time, and the achieved
// error of the actually mixed-quantized network.
func ExtMixedPrecision() *Result {
	dev := gpusim.RTX3080Ti
	tb := stats.NewTable("task", "budget (x fp16 bound)", "assignment", "mixed bound",
		"uniform format", "achieved max", "exec speedup vs best uniform")
	for _, t := range adapters() {
		an, err := core.AnalyzeNetwork(t.qoiNet, numfmt.FP16)
		if err != nil {
			panic(err)
		}
		fp16Bound := an.QuantizationBound()
		for _, mult := range []float64{1.5, 4, 16} {
			budget := fp16Bound * mult
			plan, err := core.PlanMixed(t.qoiNet, budget, nil)
			if err != nil {
				panic(err)
			}
			qnet, err := quant.QuantizeMixed(t.qoiNet, plan.Assignment)
			if err != nil {
				panic(err)
			}
			var achieved []float64
			for rep := 0; rep < compressionReps; rep++ {
				field, dims := t.inputField(rep)
				ref := t.qoiOnField(field, dims)
				got := t.qoiOnFieldNet(qnet, field, dims)
				rLinf, _ := t.relQoIErr(ref, got)
				achieved = append(achieved, rLinf)
			}
			_, maxA := stats.MinMax(achieved)

			// Execution-time comparison under the roofline, with each
			// layer running in its assigned format.
			mixedT, err := gpusim.ExecCostMixed(t.qoiNet, dev, plan.Assignment, 256)
			if err != nil {
				panic(err)
			}
			uniT, _ := gpusim.ExecCost(t.qoiNet, dev, plan.UniformFormat, 256)
			tb.AddRow(t.name, mult, assignmentString(plan), plan.QuantBound/t.scaleLinf,
				plan.UniformFormat.String(), maxA, float64(uniT)/float64(mixedT))
		}
	}
	return &Result{
		ID:    "ext3",
		Title: "Extension: per-layer mixed-precision format selection",
		Table: tb,
		Notes: "the greedy planner keeps large layers coarse and refines only the bound-dominating ones; speedup >= 1 means mixed beats the best uniform format meeting the same budget",
	}
}

func assignmentString(p *core.MixedPlan) string {
	parts := make([]string, len(p.Assignment))
	for i, f := range p.Assignment {
		parts[i] = f.String()
	}
	return strings.Join(parts, "/")
}

// ExtAutotune runs the automated allocation search (the paper's "an
// optimization algorithm to automate the determination of the optimal
// strategy"): per task and tolerance, the fraction the optimizer picks
// and its predicted total throughput versus the worst fixed candidate.
func ExtAutotune() *Result {
	tb := stats.NewTable("task", "rel QoI tol", "chosen alloc", "format",
		"est ratio", "pred total GB/s", "worst candidate GB/s", "gain")
	for _, t := range adapters() {
		field, dims := t.ioField()
		for _, tol := range []float64{1e-4, 1e-2, 1e-1} {
			res, err := autotune.Optimize(t.qoiNet, field, dims, autotune.Options{
				Tol: tol * t.scaleLinf, Norm: core.NormLinf, Codec: "sz"})
			if err != nil {
				panic(err)
			}
			worst := res.Best.PredTotal
			for _, c := range res.Candidates {
				if c.PredTotal < worst {
					worst = c.PredTotal
				}
			}
			gain := 1.0
			if worst > 0 {
				gain = res.Best.PredTotal / worst
			}
			tb.AddRow(t.name, tol, res.Best.Fraction, res.Best.Plan.Format.String(),
				res.Best.EstRatio, res.Best.PredTotal/1e9, worst/1e9, gain)
		}
	}
	return &Result{
		ID:    "ext4",
		Title: "Extension: automated tolerance-allocation optimization",
		Table: tb,
		Notes: "the optimizer's sampled-ratio predictions pick the allocation that balances the pipeline; 'gain' is its advantage over the worst fixed allocation the paper's Figs. 11-15 sweep",
	}
}
