package experiments

import (
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/stats"
)

// ExtGroupedINT8 runs the paper's *future-work* extension: block-wise,
// column-wise and row-wise INT8 quantization versus the uniform
// per-tensor baseline. For each task and granularity it reports the
// predicted bound, the achieved error of the actually grouped-quantized
// network, and the scale-storage overhead — quantifying the paper's
// conjecture that grouped schemes "offer tighter quantization and
// reduced accuracy loss".
func ExtGroupedINT8() *Result {
	const blockSize = 64
	tb := stats.NewTable("task", "granularity", "achieved geo", "achieved max",
		"bound", "vs per-tensor bound", "scale overhead B")
	for _, t := range adapters() {
		var base float64
		for _, g := range numfmt.Granularities {
			an, err := core.AnalyzeNetworkGroupedINT8(t.qoiNet, g, blockSize)
			if err != nil {
				panic(err)
			}
			bound := an.QuantizationBound() / t.scaleLinf
			if g == numfmt.PerTensor {
				base = bound
			}
			qnet, err := quant.QuantizeGroupedINT8(t.qoiNet, g, blockSize)
			if err != nil {
				panic(err)
			}
			var achieved []float64
			for rep := 0; rep < compressionReps; rep++ {
				field, dims := t.inputField(rep)
				ref := t.qoiOnField(field, dims)
				got := t.qoiOnFieldNet(qnet, field, dims)
				rLinf, _ := t.relQoIErr(ref, got)
				achieved = append(achieved, rLinf)
			}
			_, maxA := stats.MinMax(achieved)
			tb.AddRow(t.name, g.String(), stats.GeoMean(achieved), maxA,
				bound, bound/base, quant.GroupedOverheadBytes(t.qoiNet, g, blockSize))
		}
	}
	return &Result{
		ID:    "ext1",
		Title: "Extension: grouped INT8 quantization (paper future work)",
		Table: tb,
		Notes: "per-row/per-block INT8 tightens both the bound and the achieved error over per-tensor calibration, at a few hundred bytes of scale storage",
	}
}

// ExtActivationQuant runs the activation-quantization extension the
// paper sketches in Section III-B: activations rounded to FP16/BF16 on
// top of FP16 weights, with the compositional bound
// CombinedBoundWithActQuant validated against the actually quantized
// network.
func ExtActivationQuant() *Result {
	tb := stats.NewTable("task", "weights", "activations", "achieved geo", "achieved max", "bound")
	for _, t := range adapters() {
		for _, actF := range []numfmt.Format{numfmt.FP16, numfmt.BF16} {
			an := t.analysisFor(t.qoiNet, numfmt.FP16)
			bound := an.CombinedBoundWithActQuant(0, actF) / t.scaleLinf
			qnet, err := quant.QuantizeActivations(t.qoiNet, numfmt.FP16, actF)
			if err != nil {
				panic(err)
			}
			var achieved []float64
			for rep := 0; rep < compressionReps; rep++ {
				field, dims := t.inputField(rep)
				ref := t.qoiOnField(field, dims)
				got := t.qoiOnFieldNet(qnet, field, dims)
				rLinf, _ := t.relQoIErr(ref, got)
				achieved = append(achieved, rLinf)
			}
			_, maxA := stats.MinMax(achieved)
			tb.AddRow(t.name, "fp16", actF.String(), stats.GeoMean(achieved), maxA, bound)
		}
	}
	return &Result{
		ID:    "ext2",
		Title: "Extension: activation quantization (Section III-B sketch)",
		Table: tb,
		Notes: "FP16 activations add little on top of FP16 weights; BF16 activations dominate the combined error, mirroring the mantissa-bits story of Fig. 5",
	}
}
