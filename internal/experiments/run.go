package experiments

import (
	"fmt"
	"sort"
)

// runners maps experiment ids to their runners.
var runners = map[string]func() *Result{
	"table1": Table1,
	"fig2":   Fig2,
	"fig3":   Fig3,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,
	"ext1":   ExtGroupedINT8,
	"ext2":   ExtActivationQuant,
	"ext3":   ExtMixedPrecision,
	"ext4":   ExtAutotune,
	"ext5":   ExtUNet,
	"ext6":   ExtAttention,
	"ext7":   ExtFP8,
}

// IDs lists every experiment in a stable order.
func IDs() []string {
	out := make([]string, 0, len(runners))
	for id := range runners {
		out = append(out, id)
	}
	rank := func(id string) int {
		switch {
		case id == "table1":
			return 0
		case len(id) > 3 && id[:3] == "fig":
			var n int
			fmt.Sscanf(id, "fig%d", &n)
			return 10 + n
		default: // extensions last
			var n int
			fmt.Sscanf(id, "ext%d", &n)
			return 1000 + n
		}
	}
	sort.Slice(out, func(i, j int) bool { return rank(out[i]) < rank(out[j]) })
	return out
}

// Run executes one experiment by id.
func Run(id string) (*Result, error) {
	r, ok := runners[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(), nil
}
