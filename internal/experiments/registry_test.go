package experiments

import (
	"testing"
)

func TestH2TaskTrains(t *testing.T) {
	task := H2(PSN)
	if task.Net == nil || task.Net.InputDim != 9 {
		t.Fatal("H2 task malformed")
	}
	mse := task.TestMSE()
	if mse > 0.05 {
		t.Fatalf("H2 test MSE %v too high — model did not train", mse)
	}
	if task.QoIScaleLinf <= 0 || task.QoIScaleL2 <= 0 {
		t.Fatal("QoI scales not set")
	}
}

func TestBorghesiTaskTrains(t *testing.T) {
	task := Borghesi(PSN)
	mse := task.TestMSE()
	if mse > 0.08 {
		t.Fatalf("Borghesi test MSE %v too high", mse)
	}
}

func TestEuroSATTaskTrains(t *testing.T) {
	task := EuroSAT(PSN)
	acc := task.TestAccuracy()
	if acc < 0.5 { // 10 classes, random = 0.1
		t.Fatalf("EuroSAT accuracy %v too low — classifier did not train", acc)
	}
	if task.FeatureNet == nil || len(task.FeatureNet.Layers) >= len(task.Net.Layers) {
		t.Fatal("feature network not truncated")
	}
}

func TestTasksCached(t *testing.T) {
	a := H2(PSN)
	b := H2(PSN)
	if a != b {
		t.Fatal("registry should cache tasks")
	}
	c := H2(Plain)
	if a == c {
		t.Fatal("variants must be distinct")
	}
}

func TestPSNBoundTighterThanBaselines(t *testing.T) {
	// The premise of Figs. 3-4: PSN training keeps the Lipschitz product
	// small, so its predicted bound is tighter than the plain baseline's.
	lip := func(v Variant) float64 {
		task := H2(v)
		var prod float64 = 1
		for _, op := range task.Net.LinearOps() {
			prod *= op.Sigma
		}
		return prod
	}
	psn, plain := lip(PSN), lip(Plain)
	if psn >= plain {
		t.Fatalf("PSN Lipschitz product %v should be below plain %v", psn, plain)
	}
}
