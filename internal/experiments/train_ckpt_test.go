package experiments

import (
	"testing"

	"github.com/scidata/errprop/internal/checkpoint"
	"github.com/scidata/errprop/internal/dataset"
	"github.com/scidata/errprop/internal/nn"
)

// TestTrainRegressionCheckpointResume: the registry training loop's
// checkpoint wiring reproduces the uninterrupted weight trajectory
// bit-for-bit. A short first run leaves a mid-training checkpoint behind
// (the "kill"); a second run over the full epoch budget resumes from it
// and must land on exactly the weights of a never-interrupted run.
func TestTrainRegressionCheckpointResume(t *testing.T) {
	t.Setenv("ERRPROP_RESUME", "1")
	data := dataset.H2Combustion(4, 11) // 16 samples -> one step per epoch
	spec := nn.MLPSpec("tiny", []int{9, 8, 9}, nn.ActTanh, true)
	build := func() *nn.Network {
		net, err := spec.Build(5)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	const epochs = 6

	ref := build()
	trainRegression(ref, data, nn.NewSGD(0.05, 0.9, 0), epochs, 1e-4, nil)

	dir := t.TempDir()
	ckpt := &checkpoint.Loop{Dir: dir, Every: 2}
	killed := build()
	trainRegression(killed, data, nn.NewSGD(0.05, 0.9, 0), 3, 1e-4, ckpt)

	resumed := build()
	trainRegression(resumed, data, nn.NewSGD(0.05, 0.9, 0), epochs, 1e-4, ckpt)

	refP, resP := ref.Params(), resumed.Params()
	for i := range refP {
		for j := range refP[i].Data {
			if refP[i].Data[j] != resP[i].Data[j] {
				t.Fatalf("param %s[%d]: resumed %v != uninterrupted %v",
					refP[i].Name, j, resP[i].Data[j], refP[i].Data[j])
			}
		}
	}
}

// TestCheckpointLoopEnv: cmd/train's env-var plumbing reaches the
// registry's loop construction.
func TestCheckpointLoopEnv(t *testing.T) {
	t.Setenv("ERRPROP_CHECKPOINT_DIR", "")
	if l := checkpointLoop("h2comb-psn"); l != nil {
		t.Fatalf("unset dir must disable checkpointing, got %+v", l)
	}
	t.Setenv("ERRPROP_CHECKPOINT_DIR", t.TempDir())
	t.Setenv("ERRPROP_CHECKPOINT_EVERY", "50")
	l := checkpointLoop("h2comb-psn")
	if l == nil || l.Every != 50 {
		t.Fatalf("loop not built from env: %+v", l)
	}
}
