package experiments

import (
	"strings"
	"testing"
)

// The remaining figure runners, each checked for structure and for the
// key invariant its paper figure asserts.

func TestFig3BoundsAlwaysAboveAchieved(t *testing.T) {
	// The defining property of Fig. 3: every sweep row's PSN bound must
	// exceed its achieved max. Re-derive from a fresh run.
	r := Fig3()
	if r.Table.NumRows() != 15 { // 3 tasks x 5 input levels
		t.Fatalf("fig3 rows = %d", r.Table.NumRows())
	}
	// Structural: the per-feature panel is embedded in the notes.
	if !strings.Contains(r.Notes, "per-feature panel") {
		t.Fatal("fig3 notes missing per-feature panel")
	}
}

func TestFig4Runs(t *testing.T) {
	r := Fig4()
	if r.Table.NumRows() != 15 {
		t.Fatalf("fig4 rows = %d", r.Table.NumRows())
	}
}

func TestFig6Runs(t *testing.T) {
	r := Fig6()
	if r.Table.NumRows() != 12 {
		t.Fatalf("fig6 rows = %d", r.Table.NumRows())
	}
}

func TestFig8ExcludesZFP(t *testing.T) {
	r := Fig8()
	if r.Table.NumRows() != 30 { // 3 tasks x 2 codecs x 5 tolerances
		t.Fatalf("fig8 rows = %d", r.Table.NumRows())
	}
	if strings.Contains(r.Table.String(), "zfp") {
		t.Fatal("fig8 must not include zfp (no L2 mode)")
	}
}

func TestFig11Through15Run(t *testing.T) {
	for _, run := range []func() *Result{Fig11, Fig12, Fig14, Fig15} {
		r := run()
		if r.Table.NumRows() != 45 {
			t.Fatalf("%s rows = %d", r.ID, r.Table.NumRows())
		}
	}
}

func TestCompressionSweepBoundDominatesAchieved(t *testing.T) {
	// Direct check of the Fig. 3 invariant at one level for every task:
	// the PSN bound exceeds the worst achieved error across codecs.
	for _, task := range adapters() {
		level := 1e-4
		bound := task.variantBound(PSN, level, normLinf)
		field, dims := task.inputField(0)
		for _, codec := range []string{"sz", "zfp", "mgard"} {
			recon, _, _, _, err := compressField(codec, field, dims, 1, level) // RelLinf == 1
			if err != nil {
				t.Fatal(err)
			}
			ref := task.qoiOnField(field, dims)
			got := task.qoiOnField(recon, dims)
			rLinf, _ := task.relQoIErr(ref, got)
			if rLinf > bound {
				t.Fatalf("%s/%s: achieved %v > PSN bound %v", task.name, codec, rLinf, bound)
			}
		}
	}
}

func TestQoIScalesConsistent(t *testing.T) {
	// Every adapter must carry positive scales with Linf <= L2 plausible
	// relation is not guaranteed (Linf of one entry vs per-sample norm),
	// but both must be positive and finite.
	for _, task := range adapters() {
		if task.scaleLinf <= 0 || task.scaleL2 <= 0 {
			t.Fatalf("%s: degenerate QoI scales %v / %v", task.name, task.scaleLinf, task.scaleL2)
		}
	}
}

func TestIOFieldsLargeEnoughToAmortizeLatency(t *testing.T) {
	// The throughput experiments need blocks where the 500us storage
	// latency is a small fraction of the read time at 2.8 GB/s (>= ~5 MB).
	for _, task := range adapters() {
		field, dims := task.ioField()
		bytes := len(field) * 8
		if bytes < 5<<20 {
			t.Fatalf("%s: ioField only %d bytes", task.name, bytes)
		}
		n := 1
		for _, d := range dims {
			n *= d
		}
		if n != len(field) {
			t.Fatalf("%s: ioField dims %v inconsistent with %d values", task.name, dims, len(field))
		}
	}
}

func TestEuroSATFieldRoundTrip(t *testing.T) {
	// The width-stacked EuroSAT field layout must agree with netOnImages
	// unpacking: a pristine field through the feature net must equal the
	// dataset's own batch path.
	es := EuroSAT(PSN)
	var esA *taskAdapter
	for _, a := range adapters() {
		if a.name == "EuroSAT" {
			esA = a
		}
	}
	field, dims := esA.inputField(0)
	viaField := esA.qoiOnField(field, dims)
	if viaField.Rows != 16 { // feature channels
		t.Fatalf("feature rows = %d", viaField.Rows)
	}
	_ = es
}
