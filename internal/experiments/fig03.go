package experiments

import (
	"fmt"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/stats"
)

// compressionReps is the paper's "five independently sampled batches".
const compressionReps = 5

// inputLevels are the relative input-error levels swept in Figs. 3-4.
var inputLevels = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2}

// perFeatureLevel is the input level of the per-feature panels.
const perFeatureLevel = 1e-5

// Fig3 regenerates the compression-error validation in L-infinity norm:
// achieved QoI error distributions (three codecs x five batches) against
// the derived bound, with the no-PSN and weight-decay baselines' bounds
// for comparison. All errors are relative, as in the paper.
func Fig3() *Result {
	tb := stats.NewTable("task", "rel input err", "achieved geo", "achieved max",
		"bound PSN", "bound plain", "bound wd", "bound/achieved")
	runCompressionSweep(tb, normLinf)
	pf := perFeatureTable(normLinf)
	tb2 := pf.Table
	// Render the two panels as one result: global sweep then per-feature.
	res := &Result{
		ID:    "fig3",
		Title: "Compression error: bound vs achieved, L-infinity (Fig. 3)",
		Table: tb,
		Notes: "per-feature panel (rel input 1e-5):\n" + tb2.String(),
	}
	return res
}

// Fig4 is Fig3 in the L2 norm.
func Fig4() *Result {
	tb := stats.NewTable("task", "rel input err", "achieved geo", "achieved max",
		"bound PSN", "bound plain", "bound wd", "bound/achieved")
	runCompressionSweep(tb, normL2)
	pf := perFeatureTable(normL2)
	return &Result{
		ID:    "fig4",
		Title: "Compression error: bound vs achieved, L2 (Fig. 4)",
		Table: tb,
		Notes: "per-feature panel (rel input 1e-5):\n" + pf.Table.String(),
	}
}

// local norm tags to keep the sweep generic without importing core's
// names into every call site.
const (
	normLinf = iota
	normL2
)

// codecModesFor returns (codec, mode) pairs usable at a norm: ZFP has no
// L2 mode, so the L2 sweep samples with its pointwise mode (achieved
// errors are measured in L2 afterwards either way).
func codecModesFor(norm int) [][2]any {
	if norm == normL2 {
		return [][2]any{
			{"sz", compress.RelL2}, {"mgard", compress.RelL2}, {"zfp", compress.RelLinf},
		}
	}
	return [][2]any{
		{"sz", compress.RelLinf}, {"mgard", compress.RelLinf}, {"zfp", compress.RelLinf},
	}
}

func runCompressionSweep(tb *stats.Table, norm int) {
	for _, t := range adapters() {
		for _, level := range inputLevels {
			var achieved []float64
			for _, cm := range codecModesFor(norm) {
				codec, mode := cm[0].(string), cm[1].(compress.Mode)
				for rep := 0; rep < compressionReps; rep++ {
					field, dims := t.inputField(rep)
					recon, _, _, _, err := compressField(codec, field, dims, mode, level) //lint:ignore boundflow the figure measures QoI error on the reconstruction directly; the codec-level bound is not part of this plot
					if err != nil {
						panic(fmt.Sprintf("fig3/4 %s %s: %v", t.name, codec, err))
					}
					ref := t.qoiOnField(field, dims)
					got := t.qoiOnField(recon, dims)
					rLinf, rL2 := t.relQoIErr(ref, got)
					if norm == normLinf {
						achieved = append(achieved, rLinf)
					} else {
						achieved = append(achieved, rL2)
					}
				}
			}
			// Bounds per training variant at the *target* input level.
			bounds := map[Variant]float64{}
			for _, v := range []Variant{PSN, Plain, WeightDecay} {
				bounds[v] = t.variantBound(v, level, norm)
			}
			_, maxA := stats.MinMax(achieved)
			ratio := 0.0
			if maxA > 0 {
				ratio = bounds[PSN] / maxA
			}
			tb.AddRow(t.name, level, stats.GeoMean(achieved), maxA,
				bounds[PSN], bounds[Plain], bounds[WeightDecay], ratio)
		}
	}
}

// variantBound computes the relative compression-only QoI bound of a
// training variant at a relative input error level.
func (t *taskAdapter) variantBound(v Variant, relLevel float64, norm int) float64 {
	net := t.variantNet(v)
	an := t.analysisFor(net, numfmt.FP32)
	// Relative input level is against the normalized [-1,1] data: the
	// value range is 2, so the absolute pointwise error is 2*level.
	absEinf := 2 * relLevel
	if norm == normLinf {
		return an.CompressionBoundLinf(absEinf) / t.scaleLinf
	}
	// L2: the relative level scales the per-sample input norm; bound the
	// per-sample ||dx||_2 by sqrt(n0)*absEinf as in Section III-A.
	return an.CompressionBoundLinf(absEinf) / t.scaleL2
}

// perFeatureTable builds the right-hand panels of Figs. 3-4: per output
// feature, the achieved error (geomean over codecs x batches) against the
// per-feature bound, at relative input error 1e-5. The per-feature QoI
// requires a dense head, so EuroSAT uses its classification logits here
// (the feature-map QoI has no per-feature rows), as noted in
// EXPERIMENTS.md.
func perFeatureTable(norm int) *Result {
	tb := stats.NewTable("task", "feature", "achieved geo", "achieved max", "bound")
	for _, t := range adapters() {
		net := t.perFeatNet
		an := t.analysisFor(net, numfmt.FP32)
		absEinf := 2 * perFeatureLevel
		bounds, err := an.PerFeatureBoundsLinf(absEinf)
		if err != nil {
			panic(err)
		}
		// Reference scale for the per-feature net's outputs.
		nOut := len(bounds)
		achieved := make([][]float64, nOut)
		var scale float64
		for _, cm := range codecModesFor(norm) {
			codec, mode := cm[0].(string), cm[1].(compress.Mode)
			for rep := 0; rep < compressionReps; rep++ {
				field, dims := t.inputField(rep)
				recon, _, _, _, err := compressField(codec, field, dims, mode, perFeatureLevel) //lint:ignore boundflow the figure measures QoI error on the reconstruction directly; the codec-level bound is not part of this plot
				if err != nil {
					panic(err)
				}
				ref := t.qoiOnFieldNet(net, field, dims)
				got := t.qoiOnFieldNet(net, recon, dims)
				for k := 0; k < nOut; k++ {
					var worst float64
					for c := 0; c < ref.Cols; c++ {
						d := got.At(k, c) - ref.At(k, c)
						if d < 0 {
							d = -d
						}
						if d > worst {
							worst = d
						}
						if a := abs(ref.At(k, c)); a > scale {
							scale = a
						}
					}
					achieved[k] = append(achieved[k], worst)
				}
			}
		}
		for k := 0; k < nOut; k++ {
			_, maxA := stats.MinMax(achieved[k])
			tb.AddRow(t.name, k, stats.GeoMean(achieved[k])/scale, maxA/scale, bounds[k]/scale)
		}
	}
	return &Result{ID: "perfeature", Table: tb}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
