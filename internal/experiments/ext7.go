package experiments

import (
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/stats"
)

// ExtFP8 tests the paper's concluding conjecture — that "lower-precision
// formats with increased mantissa bits" would further improve scientific
// inference — at the 8-bit width: FP8-E4M3 (3 mantissa bits) versus
// FP8-E5M2 (2 mantissa bits) versus the paper's INT8 baseline, with BF16
// as the 16-bit reference. Bounds and achieved errors per task.
func ExtFP8() *Result {
	formats := []numfmt.Format{numfmt.BF16, numfmt.INT8, numfmt.FP8E4M3, numfmt.FP8E5M2}
	tb := stats.NewTable("task", "format", "bits", "mantissa", "achieved geo", "achieved max", "bound")
	for _, t := range adapters() {
		for _, f := range formats {
			an := t.analysisFor(t.qoiNet, f)
			qnet, err := quant.Quantize(t.qoiNet, f)
			if err != nil {
				panic(err)
			}
			var achieved []float64
			for rep := 0; rep < compressionReps; rep++ {
				field, dims := t.inputField(rep)
				ref := t.qoiOnField(field, dims)
				got := t.qoiOnFieldNet(qnet, field, dims)
				rLinf, _ := t.relQoIErr(ref, got)
				achieved = append(achieved, rLinf)
			}
			_, maxA := stats.MinMax(achieved)
			tb.AddRow(t.name, f.String(), f.Bits(), f.MantissaBits(),
				stats.GeoMean(achieved), maxA, an.QuantizationBound()/t.scaleLinf)
		}
	}
	return &Result{
		ID:    "ext7",
		Title: "Extension: 8-bit floating point (FP8 E4M3 vs E5M2 vs INT8)",
		Table: tb,
		Notes: "at equal bit width the mantissa-heavy E4M3 beats E5M2 (~2x) on every task, extending the paper's FP16-vs-BF16 mantissa story to 8 bits — but INT8's max-calibrated uniform grid beats both FP8 variants here: PSN training keeps weight ranges tight, which favours uniform grids over exponent-heavy ones",
	}
}
