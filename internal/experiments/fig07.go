package experiments

import (
	"math"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/hpcio"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/stats"
)

// qoiTolLevels are the user-specified relative QoI tolerances swept in
// the throughput experiments (Figs. 7-8, 10-15).
var qoiTolLevels = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// Fig7 regenerates I/O throughput versus user QoI tolerance (L-infinity)
// for the three codecs, against the 2.8 GB/s raw-read baseline.
func Fig7() *Result {
	tb := ioThroughputSweep(normLinf, []string{"mgard", "sz", "zfp"})
	return &Result{
		ID:    "fig7",
		Title: "I/O throughput vs QoI tolerance, L-infinity (Fig. 7)",
		Table: tb,
		Notes: "throughput rises with tolerance; SZ/MGARD dip below the baseline at stringent tolerances (decode cost), ZFP stays near-flat",
	}
}

// Fig8 is Fig7 with L2 tolerances; ZFP is absent ("ZFP does not support
// an L2 norm tolerance").
func Fig8() *Result {
	tb := ioThroughputSweep(normL2, []string{"mgard", "sz"})
	return &Result{
		ID:    "fig8",
		Title: "I/O throughput vs QoI tolerance, L2 (Fig. 8)",
		Table: tb,
		Notes: "ZFP omitted: no L2 tolerance support, as in the paper",
	}
}

func ioThroughputSweep(norm int, codecs []string) *stats.Table {
	st := hpcio.DefaultStorage()
	dm := hpcio.DefaultDecodeModel()
	tb := stats.NewTable("task", "codec", "rel QoI tol", "input tol", "ratio", "IO GB/s", "baseline GB/s")
	for _, t := range adapters() {
		an := t.analysisFor(t.qoiNet, numfmt.FP32)
		field, dims := t.ioField()
		for _, codec := range codecs {
			for _, tol := range qoiTolLevels {
				// Invert the compression bound: QoI budget -> input tol.
				var mode compress.Mode
				var inputTol float64
				if norm == normLinf {
					absQoI := tol * t.scaleLinf
					einf := an.InputToleranceFor(absQoI, false) / sqrtN0(an)
					mode, inputTol = compress.AbsLinf, einf
				} else {
					absQoI := tol * t.scaleL2
					mode, inputTol = compress.L2, an.InputToleranceFor(absQoI, false)
				}
				blob, err := compress.Encode(codec, field, dims, mode, inputTol)
				if err != nil {
					panic(err)
				}
				res, err := hpcio.ReadCompressed(st, dm, blob)
				if err != nil {
					panic(err)
				}
				base := mustReadRaw(st, len(field))
				tb.AddRow(t.name, codec, tol, inputTol, res.Ratio,
					res.Throughput/1e9, base.Throughput/1e9)
			}
		}
	}
	return tb
}

func sqrtN0(an interface{ InputDim() int }) float64 {
	return math.Sqrt(float64(an.InputDim()))
}
