package experiments

import (
	"strings"
	"testing"
)

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != 22 {
		t.Fatalf("want 22 experiments, got %d: %v", len(ids), ids)
	}
	if ids[0] != "table1" || ids[1] != "fig2" || ids[14] != "fig15" ||
		ids[15] != "ext1" || ids[16] != "ext2" {
		t.Fatalf("ordering wrong: %v", ids)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestTable1(t *testing.T) {
	r := Table1()
	if r.Table.NumRows() != 4 {
		t.Fatalf("Table I should have 4 format rows, got %d", r.Table.NumRows())
	}
	s := r.Table.String()
	for _, f := range []string{"tf32", "fp16", "bf16", "int8"} {
		if !strings.Contains(s, f) {
			t.Fatalf("missing format %s:\n%s", f, s)
		}
	}
}

func TestFig2PhasesSumTo100(t *testing.T) {
	r := Fig2()
	if r.Table.NumRows() != 6 {
		t.Fatalf("fig2 should have 6 model rows, got %d", r.Table.NumRows())
	}
}

func TestFig5BoundsHold(t *testing.T) {
	r := Fig5()
	// 3 tasks x 4 formats.
	if r.Table.NumRows() != 12 {
		t.Fatalf("fig5 rows = %d", r.Table.NumRows())
	}
	// Structural check happens in the quant sweep itself; here we verify
	// the table rendered and mentions all tasks.
	s := r.Table.String()
	for _, task := range []string{"H2Combustion", "BorghesiFlame", "EuroSAT"} {
		if !strings.Contains(s, task) {
			t.Fatalf("missing task %s", task)
		}
	}
}

func TestFig9SpeedupColumn(t *testing.T) {
	r := Fig9()
	if r.Table.NumRows() != 6*5 { // 6 models x 5 formats
		t.Fatalf("fig9 rows = %d", r.Table.NumRows())
	}
}

func TestFig10Runs(t *testing.T) {
	r := Fig10()
	if r.Table.NumRows() != len(qoiTolLevels) {
		t.Fatalf("fig10 rows = %d", r.Table.NumRows())
	}
}

func TestFig7Runs(t *testing.T) {
	r := Fig7()
	// 3 tasks x 3 codecs x 5 tolerances.
	if r.Table.NumRows() != 45 {
		t.Fatalf("fig7 rows = %d", r.Table.NumRows())
	}
}

func TestFig13Runs(t *testing.T) {
	r := Fig13()
	// 3 tasks x 5 tolerances x 3 allocations.
	if r.Table.NumRows() != 45 {
		t.Fatalf("fig13 rows = %d", r.Table.NumRows())
	}
}

func TestExt1Runs(t *testing.T) {
	r := ExtGroupedINT8()
	if r.Table.NumRows() != 12 { // 3 tasks x 4 granularities
		t.Fatalf("ext1 rows = %d", r.Table.NumRows())
	}
}

func TestExt2Runs(t *testing.T) {
	r := ExtActivationQuant()
	if r.Table.NumRows() != 6 { // 3 tasks x 2 activation formats
		t.Fatalf("ext2 rows = %d", r.Table.NumRows())
	}
}

func TestExt3Runs(t *testing.T) {
	r := ExtMixedPrecision()
	if r.Table.NumRows() != 9 { // 3 tasks x 3 budgets
		t.Fatalf("ext3 rows = %d", r.Table.NumRows())
	}
}

func TestExt4Runs(t *testing.T) {
	r := ExtAutotune()
	if r.Table.NumRows() != 9 { // 3 tasks x 3 tolerances
		t.Fatalf("ext4 rows = %d", r.Table.NumRows())
	}
}

func TestExt5Runs(t *testing.T) {
	r := ExtUNet()
	if r.Table.NumRows() != 6 { // 2 compression + 4 quantization rows
		t.Fatalf("ext5 rows = %d", r.Table.NumRows())
	}
}

func TestExt6Runs(t *testing.T) {
	r := ExtAttention()
	if r.Table.NumRows() != 4 { // 2 compression + 2 quantization rows
		t.Fatalf("ext6 rows = %d", r.Table.NumRows())
	}
}

func TestExt7Runs(t *testing.T) {
	r := ExtFP8()
	if r.Table.NumRows() != 12 { // 3 tasks x 4 formats
		t.Fatalf("ext7 rows = %d", r.Table.NumRows())
	}
}
