package experiments

import (
	"math"
	"math/rand"
	"sync"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/stats"
	"github.com/scidata/errprop/internal/tensor"
)

// The attention extension workload: a toy "weather" sequence task in the
// spirit of the paper's transformer-based weather-prediction outlook —
// 8 tokens of 6 atmospheric-state features each; the model predicts the
// next-step mean state (3 outputs). A Tanh layer precedes attention so
// the local-Lipschitz assumption (token norms <= sqrt(D)) holds by
// construction.
const (
	attTokens = 8
	attDim    = 6
)

var (
	attOnce sync.Once
	attNet  *nn.Network
	attX    *tensor.Matrix
)

func attentionTask() (*nn.Network, *tensor.Matrix) {
	attOnce.Do(func() {
		spec := &nn.Spec{Name: "weather", InputDim: attTokens * attDim, Layers: []nn.LayerSpec{
			{Type: "dense", Name: "embed", In: attTokens * attDim, Out: attTokens * attDim, PSN: true},
			{Type: "act", Act: nn.ActTanh},
			{Type: "attention", Name: "att", In: attTokens, Out: attDim},
			{Type: "dense", Name: "head", In: attTokens * attDim, Out: 3, PSN: true},
		}}
		net, err := spec.Build(2002)
		if err != nil {
			panic(err)
		}
		// Synthetic sequences: smooth token trajectories; target = next
		// step's mean, spread, and trend.
		n := 256
		x := tensor.NewMatrix(attTokens*attDim, n)
		y := tensor.NewMatrix(3, n)
		//lint:ignore unseededrand experiments pin the paper's seeds so figure outputs reproduce exactly
		rng := rand.New(rand.NewSource(2002))
		for c := 0; c < n; c++ {
			phase := rng.Float64() * 2 * math.Pi
			freq := 0.3 + rng.Float64()
			var mean, last float64
			for tok := 0; tok < attTokens; tok++ {
				for d := 0; d < attDim; d++ {
					v := math.Sin(freq*float64(tok)+phase+float64(d)) * 0.8
					x.Set(tok*attDim+d, c, v)
					mean += v
					last = v
				}
			}
			mean /= float64(attTokens * attDim)
			y.Set(0, c, math.Sin(freq*float64(attTokens)+phase)*0.8)
			y.Set(1, c, mean)
			y.Set(2, c, last-mean)
		}
		opt := nn.NewAdam(3e-3)
		for epoch := 0; epoch < 300; epoch++ {
			net.ZeroGrad()
			out := net.Forward(x, true)
			_, grad := nn.MSELoss(out, y)
			net.AddRegGrad(1e-3)
			net.Backward(grad)
			opt.Step(net.Params())
		}
		net.RefreshSigmas()
		attNet, attX = net, x
	})
	return attNet, attX
}

// ExtAttention validates the local error-flow analysis through a
// self-attention layer (the first step toward the paper's
// transformer-based weather prediction outlook): compression bounds via
// the local attention Lipschitz constant, and weight quantization of the
// surrounding dense layers (attention weights stay exact).
func ExtAttention() *Result {
	net, x := attentionTask()
	an, err := core.AnalyzeNetwork(net, numfmt.FP32)
	if err != nil {
		panic(err)
	}
	ref := evalForward(net, x)
	var scale float64
	for _, v := range ref.Data {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	tb := stats.NewTable("perturbation", "achieved max", "bound", "bound/achieved")

	for _, einf := range []float64{1e-5, 1e-3} {
		field := append([]float64(nil), x.Data...)
		dims := []int{x.Rows, x.Cols}
		recon, _, _, _, err := compressField("sz", field, dims, compress.AbsLinf, einf) //lint:ignore boundflow the figure measures QoI error on the reconstruction directly; the codec-level bound is not part of this plot
		if err != nil {
			panic(err)
		}
		got := evalForward(net, tensor.NewMatrixFrom(x.Rows, x.Cols, recon))
		achieved := tensor.Vector(got.Data).Sub(tensor.Vector(ref.Data)).NormInf() / scale
		bound := an.BoundLinf(einf) / scale
		ratio := 0.0
		if achieved > 0 {
			ratio = bound / achieved
		}
		tb.AddRow("compress sz "+formatTol(einf), achieved, bound, ratio)
	}
	for _, f := range []numfmt.Format{numfmt.FP16, numfmt.INT8} {
		anq, err := core.AnalyzeNetwork(net, f)
		if err != nil {
			panic(err)
		}
		qnet, err := quant.Quantize(net, f)
		if err != nil {
			panic(err)
		}
		got := evalForward(qnet, x)
		achieved := tensor.Vector(got.Data).Sub(tensor.Vector(ref.Data)).NormInf() / scale
		bound := anq.QuantizationBound() / scale
		ratio := 0.0
		if achieved > 0 {
			ratio = bound / achieved
		}
		tb.AddRow("quantize dense "+f.String(), achieved, bound, ratio)
	}
	return &Result{
		ID:    "ext6",
		Title: "Extension: local error flow through self-attention (toward transformers)",
		Table: tb,
		Notes: "attention enters the analysis via a local Lipschitz bound (valid for token norms <= sqrt(D), guaranteed by the Tanh upstream); attention weights stay full-precision — quantizing them is genuinely open, as the paper says",
	}
}
