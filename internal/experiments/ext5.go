package experiments

import (
	"math"
	"sync"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/dataset"
	"github.com/scidata/errprop/internal/nn"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/stats"
	"github.com/scidata/errprop/internal/tensor"
)

// The U-Net extension workload: a field-to-field surrogate mapping a
// 16x16 mixture-fraction patch to its dissipation-rate patch — the
// image-translation shape U-Nets exist for, built from the Borghesi
// generator.
const unetPatch = 16

var (
	unetOnce sync.Once
	unetNet  *nn.Network
	unetX    *tensor.Matrix // (256 x N) patches, inputs
	unetY    *tensor.Matrix // (256 x N) patches, targets
)

func unetTask() (*nn.Network, *tensor.Matrix, *tensor.Matrix) {
	unetOnce.Do(func() {
		// Cut non-overlapping 16x16 patches from a Borghesi field: input
		// channel = mixture fraction (feature 0), target = chi_Z field
		// (output 0), both already normalized.
		d := dataset.BorghesiFlame(64, 1001)
		grid := 64
		n := 0
		patches := (grid / unetPatch) * (grid / unetPatch)
		unetX = tensor.NewMatrix(unetPatch*unetPatch, patches)
		unetY = tensor.NewMatrix(unetPatch*unetPatch, patches)
		for py := 0; py < grid/unetPatch; py++ {
			for px := 0; px < grid/unetPatch; px++ {
				for i := 0; i < unetPatch; i++ {
					for j := 0; j < unetPatch; j++ {
						g := (py*unetPatch+i)*grid + px*unetPatch + j
						unetX.Set(i*unetPatch+j, n, d.X.At(0, g))
						unetY.Set(i*unetPatch+j, n, d.Y.At(0, g))
					}
				}
				n++
			}
		}
		spec := nn.UNetSpec("unet", 1, unetPatch, unetPatch, 1, 6, nn.ActTanh, true)
		net, err := spec.Build(1001)
		if err != nil {
			panic(err)
		}
		opt := nn.NewAdam(3e-3)
		for epoch := 0; epoch < 250; epoch++ {
			net.ZeroGrad()
			out := net.Forward(unetX, true)
			_, grad := nn.MSELoss(out, unetY)
			net.AddRegGrad(1e-3)
			net.Backward(grad)
			opt.Step(net.Params())
		}
		net.RefreshSigmas()
		unetNet = net
	})
	return unetNet, unetX, unetY
}

// ExtUNet validates the error-flow extension to U-Net architectures
// (skip concatenation + upsampling, the paper's future-work architecture
// family): compression and quantization bounds versus achieved errors on
// a field-to-field dissipation surrogate.
func ExtUNet() *Result {
	net, x, y := unetTask()
	an, err := core.AnalyzeNetwork(net, numfmt.FP32)
	if err != nil {
		panic(err)
	}
	// QoI scale for relative errors.
	ref := evalForward(net, x)
	var scale float64
	for _, v := range ref.Data {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	_ = y

	tb := stats.NewTable("perturbation", "achieved geo", "achieved max", "bound", "bound/achieved")

	// Compression rows: SZ at two tolerances over the patch batch.
	for _, einf := range []float64{1e-5, 1e-3} {
		var achieved []float64
		for rep := 0; rep < compressionReps; rep++ {
			field := append([]float64(nil), x.Data...)
			dims := []int{x.Rows, x.Cols}                                                   // feature-major block
			recon, _, _, _, err := compressField("sz", field, dims, compress.AbsLinf, einf) //lint:ignore boundflow the figure measures QoI error on the reconstruction directly; the codec-level bound is not part of this plot
			if err != nil {
				panic(err)
			}
			got := evalForward(net, tensor.NewMatrixFrom(x.Rows, x.Cols, recon))
			diff := tensor.Vector(got.Data).Sub(tensor.Vector(ref.Data))
			achieved = append(achieved, diff.NormInf()/scale)
		}
		bound := an.BoundLinf(einf) / scale
		_, maxA := stats.MinMax(achieved)
		ratio := 0.0
		if maxA > 0 {
			ratio = bound / maxA
		}
		tb.AddRow("compress sz "+formatTol(einf), stats.GeoMean(achieved), maxA, bound, ratio)
	}

	// Quantization rows per format.
	for _, f := range numfmt.Formats {
		anq, err := core.AnalyzeNetwork(net, f)
		if err != nil {
			panic(err)
		}
		qnet, err := quant.Quantize(net, f)
		if err != nil {
			panic(err)
		}
		got := evalForward(qnet, x)
		diff := tensor.Vector(got.Data).Sub(tensor.Vector(ref.Data))
		achieved := diff.NormInf() / scale
		bound := anq.QuantizationBound() / scale
		ratio := 0.0
		if achieved > 0 {
			ratio = bound / achieved
		}
		tb.AddRow("quantize "+f.String(), achieved, achieved, bound, ratio)
	}

	return &Result{
		ID:    "ext5",
		Title: "Extension: error flow through a U-Net (skip concatenation + upsampling)",
		Table: tb,
		Notes: "the concat rule sqrt(1 + L_branch^2) (quadrature, not the residual sum) keeps U-Net bounds sound and as tight as the block structure allows",
	}
}

func formatTol(t float64) string {
	switch t {
	case 1e-5:
		return "1e-5"
	case 1e-3:
		return "1e-3"
	}
	return "?"
}
