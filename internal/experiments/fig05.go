package experiments

import (
	"github.com/scidata/errprop/internal/gpusim"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/quant"
	"github.com/scidata/errprop/internal/stats"
)

// Fig5 regenerates the quantization-error validation in L-infinity norm:
// per task and format, the achieved relative QoI error of the actually
// quantized network against the predicted bound.
func Fig5() *Result {
	tb := quantSweep(normLinf)
	return &Result{
		ID:    "fig5",
		Title: "Quantization error: bound vs achieved, L-infinity (Fig. 5)",
		Table: tb,
		Notes: "bit-exact format emulation: every simulated device (V100 / RTX 3080 Ti / MI250X) produces identical rounded weights, so achieved errors are device-independent here; 'native' lists devices executing the format in hardware",
	}
}

// Fig6 is Fig5 in the L2 norm.
func Fig6() *Result {
	tb := quantSweep(normL2)
	return &Result{
		ID:    "fig6",
		Title: "Quantization error: bound vs achieved, L2 (Fig. 6)",
		Table: tb,
		Notes: "TF32 and FP16 coincide (same mantissa width); BF16 is ~8x worse; INT8 worst",
	}
}

func quantSweep(norm int) *stats.Table {
	tb := stats.NewTable("task", "format", "achieved geo", "achieved max", "bound", "bound/achieved", "native on")
	for _, t := range adapters() {
		for _, f := range numfmt.Formats {
			qnet, err := quant.Quantize(t.qoiNet, f)
			if err != nil {
				panic(err)
			}
			var achieved []float64
			for rep := 0; rep < compressionReps; rep++ {
				field, dims := t.inputField(rep)
				ref := t.qoiOnField(field, dims)
				got := t.qoiOnFieldNet(qnet, field, dims)
				rLinf, rL2 := t.relQoIErr(ref, got)
				if norm == normLinf {
					achieved = append(achieved, rLinf)
				} else {
					achieved = append(achieved, rL2)
				}
			}
			an := t.analysisFor(t.qoiNet, f)
			scale := t.scaleLinf
			if norm == normL2 {
				scale = t.scaleL2
			}
			bound := an.QuantizationBound() / scale
			_, maxA := stats.MinMax(achieved)
			ratio := 0.0
			if maxA > 0 {
				ratio = bound / maxA
			}
			tb.AddRow(t.name, f.String(), stats.GeoMean(achieved), maxA, bound, ratio, nativeDevices(f))
		}
	}
	return tb
}

// nativeDevices lists the simulated GPUs with hardware support for a
// format (the paper: TF32/BF16 only on the RTX 3080 Ti).
func nativeDevices(f numfmt.Format) string {
	out := ""
	for _, d := range gpusim.Devices {
		if d.SupportsNative(f) {
			if out != "" {
				out += "+"
			}
			out += d.Name
		}
	}
	if out == "" {
		out = "none(emulated)"
	}
	return out
}
