package experiments

import (
	"github.com/scidata/errprop/internal/gpusim"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/stats"
)

// Fig9 regenerates model-execution throughput versus quantization format
// on the simulated RTX 3080 Ti (the paper's only device with native TF32
// and BF16): data-ingestion throughput in GB/s per model and format, plus
// the speedup over FP32.
func Fig9() *Result {
	dev := gpusim.RTX3080Ti
	tb := stats.NewTable("model", "format", "exec GB/s", "speedup vs fp32")
	for _, m := range benchModels() {
		for _, f := range numfmt.AllFormats {
			tp := gpusim.Throughput(m.net, dev, f, m.batch)
			sp := gpusim.Speedup(m.net, dev, f, m.batch)
			tb.AddRow(m.name, f.String(), tp/1e9, sp)
		}
	}
	return &Result{
		ID:    "fig9",
		Title: "Execution throughput vs quantization format (Fig. 9)",
		Table: tb,
		Notes: "FP16 reaches the ~4.5x range on compute-bound models; INT8 goes further but with the error cost of Fig. 5; TF32/BF16 give little speedup",
	}
}
