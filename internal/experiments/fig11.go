package experiments

import (
	"math"

	"github.com/scidata/errprop/internal/compress"
	"github.com/scidata/errprop/internal/core"
	"github.com/scidata/errprop/internal/gpusim"
	"github.com/scidata/errprop/internal/hpcio"
	"github.com/scidata/errprop/internal/numfmt"
	"github.com/scidata/errprop/internal/stats"
)

// allocFractions are the tolerance shares offered to quantization in the
// Figs. 11-15 sweeps (the paper sweeps 10%-90%).
var allocFractions = []float64{0.1, 0.5, 0.9}

// Fig11 regenerates the MGARD / L-infinity coordination sweep: predicted
// bound and end-to-end throughput versus user tolerance across
// quantization allocations.
func Fig11() *Result {
	return coordinationResult("fig11", "mgard", normLinf,
		"Bound + throughput vs tolerance, MGARD, L-infinity (Fig. 11)")
}

// Fig12 is the MGARD / L2 sweep.
func Fig12() *Result {
	return coordinationResult("fig12", "mgard", normL2,
		"Bound + throughput vs tolerance, MGARD, L2 (Fig. 12)")
}

// Fig13 is the SZ / L-infinity sweep.
func Fig13() *Result {
	return coordinationResult("fig13", "sz", normLinf,
		"Bound + throughput vs tolerance, SZ, L-infinity (Fig. 13)")
}

// Fig14 is the SZ / L2 sweep.
func Fig14() *Result {
	return coordinationResult("fig14", "sz", normL2,
		"Bound + throughput vs tolerance, SZ, L2 (Fig. 14)")
}

// Fig15 is the ZFP / L-infinity sweep (ZFP has no L2 mode).
func Fig15() *Result {
	return coordinationResult("fig15", "zfp", normLinf,
		"Bound + throughput vs tolerance, ZFP, L-infinity (Fig. 15)")
}

func coordinationResult(id, codec string, norm int, title string) *Result {
	tb := coordinationSweep(codec, norm)
	return &Result{
		ID:    id,
		Title: title,
		Table: tb,
		Notes: "speedup knee driven by FP16 becoming admissible (~3.4x here, at rel QoI ~1e-2; the paper reports ~5x near 1e-3 — see EXPERIMENTS.md on the knee shift); allocations can coincide where format choices quantize identically",
	}
}

// coordinationSweep runs the full planner-driven pipeline study for one
// codec and norm: per task, user tolerance and allocation fraction, the
// chosen format, predicted bound, compression ratio, phase throughputs
// and the end-to-end speedup over the uncompressed FP32 pipeline.
func coordinationSweep(codec string, norm int) *stats.Table {
	st := hpcio.DefaultStorage()
	dm := hpcio.DefaultDecodeModel()
	dev := gpusim.RTX3080Ti
	tb := stats.NewTable("task", "rel QoI tol", "quant alloc", "format",
		"pred bound (rel)", "ratio", "IO GB/s", "exec GB/s", "total GB/s", "speedup")
	for _, t := range adapters() {
		root := mustGraph(t.qoiNet)
		field, dims := t.ioField()
		// Uncompressed FP32 baseline pipeline rate.
		baseIO := mustReadRaw(st, len(field)).Throughput
		baseExec := gpusim.Throughput(t.qoiNet, dev, numfmt.FP32, 256)
		baseTotal := math.Min(baseIO, baseExec)

		scale := t.scaleLinf
		coreNorm := core.NormLinf
		if norm == normL2 {
			scale = t.scaleL2
			coreNorm = core.NormL2
		}
		for _, tol := range qoiTolLevels {
			for _, frac := range allocFractions {
				plan, err := core.PlanGraph(root, core.PlanRequest{
					Tol: tol * scale, Norm: coreNorm, QuantFraction: frac})
				if err != nil {
					panic(err)
				}
				var ioTP, ratio float64
				mode := compress.AbsLinf
				inputTol := plan.InputTolLinf
				if norm == normL2 {
					mode, inputTol = compress.L2, plan.InputTolL2
				}
				if math.IsInf(inputTol, 0) {
					ioTP, ratio = baseIO, 1
				} else {
					blob, err := compress.Encode(codec, field, dims, mode, inputTol)
					if err != nil {
						panic(err)
					}
					res, err := hpcio.ReadCompressed(st, dm, blob)
					if err != nil {
						panic(err)
					}
					ioTP, ratio = res.Throughput, res.Ratio
				}
				execTP := gpusim.Throughput(t.qoiNet, dev, plan.Format, 256)
				total := math.Min(ioTP, execTP)
				tb.AddRow(t.name, tol, frac, plan.Format.String(),
					plan.TotalBound/scale, ratio, ioTP/1e9, execTP/1e9,
					total/1e9, total/baseTotal)
			}
		}
	}
	return tb
}
