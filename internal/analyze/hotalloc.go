package analyze

import (
	"go/ast"
	"strings"
)

// Hotalloc flags tensor-constructor calls (NewMatrix, NewMatrixFrom,
// NewT4, NewT4From, Im2Col) inside the inference hot paths — functions
// named Forward*/execute*/run* in internal/nn and internal/serve. The
// compiled inference engine's contract is that steady-state forward
// passes allocate nothing: every buffer is preallocated at compile time
// and reused via tensor.EnsureMatrix. A fresh constructor call on a hot
// path silently reintroduces per-call garbage, eroding exactly the
// latency/throughput the engine exists to buy. Intentional allocations
// (legacy per-call paths, cold setup inside a hot-named function) are
// suppressed with //lint:ignore hotalloc <reason>.
var Hotalloc = &Analyzer{
	Name:  "hotalloc",
	Doc:   "flags tensor allocations inside Forward/execute/run hot paths in internal/nn and internal/serve",
	Match: pathMatchAny("internal/nn", "internal/serve"),
	Run:   runHotalloc,
}

// hotallocCtors are the allocating tensor constructors (exact callee
// names; the *Into variants reuse caller buffers and are not listed).
var hotallocCtors = map[string]bool{
	"NewMatrix":     true,
	"NewMatrixFrom": true,
	"NewT4":         true,
	"NewT4From":     true,
	"Im2Col":        true,
}

// hotallocFuncPrefixes name the hot-path function families: exported
// Forward passes, engine op execution, and worker loops.
var hotallocFuncPrefixes = []string{"Forward", "execute", "run"}

func runHotalloc(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hotallocHotName(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := hotallocCtorName(call)
				if !ok {
					return true
				}
				p.Reportf(call.Pos(), "%s allocates inside hot path %s; preallocate and reuse via EnsureMatrix/*Into kernels", name, fn.Name.Name)
				return true
			})
		}
	}
}

// hotallocHotName reports whether a function name marks a hot path.
func hotallocHotName(name string) bool {
	for _, prefix := range hotallocFuncPrefixes {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// hotallocCtorName reports the callee's name if it is an allocating
// tensor constructor (syntactic match on the final selector, like
// droppederr: the tensor package is dot-free in the repo, so qualified
// tensor.NewMatrix and in-package NewMatrix both resolve here).
func hotallocCtorName(call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	return name, hotallocCtors[name]
}
