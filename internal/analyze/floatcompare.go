package analyze

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCompare flags == and != between floating-point operands. Exact
// float equality silently invalidates the error bounds of Inequality (3):
// a bound that holds mathematically can fail a == gate after one ULP of
// rounding, so bound code must compare with explicit epsilons.
//
// Three well-defined idioms are exempt:
//   - comparison against an exact constant zero (x == 0 is an exact
//     guard, typically protecting a division),
//   - self-comparison (x != x is the canonical NaN test),
//   - comparisons inside approved tolerance helpers (approxEqual and
//     friends), which exist precisely to centralize epsilon logic.
var FloatCompare = &Analyzer{
	Name: "floatcompare",
	Doc:  "flags ==/!= on float operands outside approved tolerance helpers",
	Run:  runFloatCompare,
}

// floatCompareAllow lists function names whose bodies may compare floats
// exactly: the approved tolerance/equality helpers themselves.
var floatCompareAllow = map[string]bool{
	"approxEqual": true,
	"almostEqual": true,
	"floatEq":     true,
	"floatsEqual": true,
	"withinTol":   true,
	"ulpEqual":    true,
	"bitEqual":    true,
}

func runFloatCompare(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if isFunc && floatCompareAllow[fd.Name.Name] {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(p.TypesInfo.TypeOf(be.X)) && !isFloat(p.TypesInfo.TypeOf(be.Y)) {
					return true
				}
				if isConstZero(p.TypesInfo, be.X) || isConstZero(p.TypesInfo, be.Y) {
					return true
				}
				if types.ExprString(be.X) == types.ExprString(be.Y) {
					return true // x != x NaN idiom
				}
				p.Reportf(be.OpPos, "float %s comparison; use a tolerance helper (or an exact-zero guard)", be.Op)
				return true
			})
		}
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
