package analyze

import (
	"strings"
	"testing"
)

// loadDiamond loads the diamond fixture (A calls B and C; both call D)
// and builds its program.
func loadDiamond(t *testing.T) *Program {
	t.Helper()
	l := newTestLoader(t)
	pkg, err := l.LoadDir(fixtureDir(l, "diamond"), "fixture/diamond")
	if err != nil {
		t.Fatal(err)
	}
	return NewProgram([]*Package{pkg})
}

func TestDiamondCallGraph(t *testing.T) {
	prog := loadDiamond(t)
	g := prog.Graph

	sym := func(name string) Symbol { return Symbol("fixture/diamond." + name) }
	for _, fn := range []string{"A", "B", "C", "D", "E"} {
		if g.Decls[sym(fn)] == nil {
			t.Errorf("Decls missing %s", sym(fn))
		}
	}
	edges := map[Symbol][]Symbol{
		sym("A"): {sym("B"), sym("C")},
		sym("B"): {sym("D")},
		sym("C"): {sym("D")},
		sym("D"): nil,
		sym("E"): nil,
	}
	for caller, want := range edges {
		got := g.CalleesOf(caller)
		if len(got) != len(want) {
			t.Errorf("CalleesOf(%s) = %v, want %v", caller, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("CalleesOf(%s) = %v, want %v", caller, got, want)
				break
			}
		}
	}
	callers := g.CallersOf(sym("D"))
	if len(callers) != 2 || callers[0] != sym("B") || callers[1] != sym("C") {
		t.Errorf("CallersOf(D) = %v, want [B C]", callers)
	}
}

func TestDiamondFactPropagation(t *testing.T) {
	prog := loadDiamond(t)
	sym := func(name string) Symbol { return Symbol("fixture/diamond." + name) }

	// Deterministic flows DOWN from the annotated root A to every
	// function in the diamond.
	for _, fn := range []string{"A", "B", "C", "D"} {
		why, ok := prog.Facts.DeterministicContext(sym(fn))
		if !ok {
			t.Errorf("%s should be in a deterministic context", fn)
			continue
		}
		if fn == "A" && !strings.Contains(why, "annotated") {
			t.Errorf("A's origin = %q, want annotated", why)
		}
		if fn != "A" && !strings.Contains(why, "reachable from deterministic") {
			t.Errorf("%s's origin = %q, want reachability", fn, why)
		}
	}
	if _, ok := prog.Facts.DeterministicContext(sym("E")); ok {
		t.Error("E is outside the diamond and must not inherit determinism")
	}

	// Bound-source flows UP from the annotated leaf D through both
	// return-wrappers to A. B returns D() directly; C stores it in a
	// local first — both shapes must propagate.
	for _, fn := range []string{"D", "B", "C", "A"} {
		if !prog.Facts.IsBoundSource(sym(fn)) {
			t.Errorf("%s should be a bound-source (D's bound reaches its return)", fn)
		}
	}
	if prog.Facts.IsBoundSource(sym("E")) {
		t.Error("E returns no bound and must not become a bound-source")
	}
	if len(prog.BadAnnotations) != 0 {
		t.Errorf("unexpected bad annotations: %v", prog.BadAnnotations)
	}
}

func TestBadAnnotations(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.LoadDir(fixtureDir(l, "badannotation"), "fixture/badannotation")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram([]*Package{pkg})
	if len(prog.BadAnnotations) != 3 {
		t.Fatalf("want 3 bad annotations (unknown verb, non-function, floatless bound-source), got %d: %v",
			len(prog.BadAnnotations), prog.BadAnnotations)
	}
	for _, f := range prog.BadAnnotations {
		if f.Analyzer != "driver" {
			t.Errorf("bad annotation attributed to %q, want driver", f.Analyzer)
		}
	}
}
