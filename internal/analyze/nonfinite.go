package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NonFinite flags math.Sqrt/math.Log-family calls and non-constant
// divisions that feed directly into a returned value of a float-returning
// function in internal/core — the planner/bound paths — when the
// function contains no math.IsNaN/math.IsInf guard at all. A bound of
// NaN or +Inf compares as "admissible" in surprising ways (NaN fails
// every >, Inf passes every <=), so a planner that returns one without
// checking finiteness can green-light configurations with no guarantee
// behind them.
//
// The analyzer is deliberately function-local and direct-return only: it
// inspects expressions syntactically inside return statements, and any
// IsNaN/IsInf call anywhere in the function counts as a guard. That
// keeps false positives low at the cost of missing indirect flows.
var NonFinite = &Analyzer{
	Name:  "nonfinite",
	Doc:   "flags unguarded sqrt/log/division feeding returned bounds in internal/core",
	Match: pathMatchAny("internal/core"),
	Run:   runNonFinite,
}

// nonFiniteFns are the math functions whose result is NaN or ±Inf on
// out-of-domain input.
var nonFiniteFns = map[string]bool{
	"Sqrt":  true,
	"Log":   true,
	"Log2":  true,
	"Log10": true,
	"Log1p": true,
	"Pow":   true,
}

func runNonFinite(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !returnsFloat(p.TypesInfo, fd) {
				continue
			}
			if hasFiniteGuard(p, fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					reportNonFinite(p, res)
				}
				return true
			})
		}
	}
}

func returnsFloat(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		if isFloat(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// hasFiniteGuard reports whether the body calls math.IsNaN or math.IsInf
// anywhere.
func hasFiniteGuard(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if name, ok := mathCallName(p, n); ok && (name == "IsNaN" || name == "IsInf") {
			found = true
			return false
		}
		return true
	})
	return found
}

// reportNonFinite walks one returned expression and reports risky
// sub-expressions.
func reportNonFinite(p *Pass, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name, ok := mathCallName(p, x); ok && nonFiniteFns[name] {
				p.Reportf(x.Pos(), "math.%s feeds a returned bound with no IsNaN/IsInf guard in this function; a NaN/Inf bound silently passes admissibility checks", name)
			}
		case *ast.BinaryExpr:
			if x.Op != token.QUO || !isFloat(p.TypesInfo.TypeOf(x)) {
				return true
			}
			if tv, ok := p.TypesInfo.Types[x.Y]; ok && tv.Value != nil {
				return true // constant nonzero denominator cannot produce Inf by itself
			}
			p.Reportf(x.OpPos, "division feeds a returned bound with no IsNaN/IsInf guard in this function; a zero denominator yields an Inf/NaN bound")
		}
		return true
	})
}

// mathCallName returns the selector name if n is a call into the math
// package.
func mathCallName(p *Pass, n ast.Node) (string, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "math" {
		return "", false
	}
	return sel.Sel.Name, true
}
