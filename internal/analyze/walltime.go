package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallTime flags wall-clock reads (time.Now, time.Since, time.Sleep)
// inside functions that run in a deterministic context — annotated
// //errprop:deterministic or transitively reachable from such a root in
// the module call graph — and inside internal/hpcio, whose entire
// contract is simulated time (storage and decode latencies are computed,
// never measured; a real clock read there silently mixes wall time into
// reproducible benchmark output).
//
// Wall-clock reads are the quietest way to break the bit-identity
// contract: a timestamp that feeds a computation, a seed, or a
// tie-break makes the result a function of when it ran, and no golden
// test run at a single instant will catch it.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "flags time.Now/Since/Sleep reachable from deterministic or simulated-time (hpcio) contexts",
	Run:  runWallTime,
}

// wallTimeFuncs are the time-package entry points that read or depend
// on the real clock.
var wallTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Sleep": true,
	"After": true,
	"Tick":  true,
}

func runWallTime(p *Pass) {
	simulated := strings.Contains(p.Path, "internal/hpcio")
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			why := "simulated-time package internal/hpcio"
			if !simulated {
				sym, _, ok := declSymbol(p.TypesInfo, fn)
				if !ok {
					continue
				}
				w, det := p.Prog.Facts.DeterministicContext(sym)
				if !det {
					continue
				}
				why = w
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := wallClockCall(p.TypesInfo, call); ok {
					p.Reportf(call.Pos(), "time.%s in deterministic context (%s): wall-clock reads make the result depend on when it ran", name, why)
				}
				return true
			})
		}
	}
}

// wallClockCall reports whether call invokes a real-clock function from
// the time package.
func wallClockCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	f, ok := calleeFunc(info, call)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "time" {
		return "", false
	}
	return f.Name(), wallTimeFuncs[f.Name()]
}
