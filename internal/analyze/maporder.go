package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags ranging over a map where the loop body makes the
// result depend on iteration order: appending to a slice, writing to a
// stream/builder/hash, or accumulating into an outer variable with a
// compound assignment. Go randomizes map iteration order per run, so
// any such loop produces run-dependent output — fatal for the repo's
// bit-identity contracts (serialized metrics, reduced float sums,
// hashed manifests). Integer accumulations are flagged too: they are
// value-stable but keep iteration order load-bearing in code reviewers
// must reason about, and sorting keys first is always available.
//
// The one recognized escape hatch is append-then-sort: appending map
// keys to a slice that is later passed to a sort.* call in the same
// function is the canonical deterministic idiom and is not reported.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags order-dependent loop bodies (append/serialize/reduce/hash) ranging over a map",
	Run:  runMapOrder,
}

// mapOrderSinkMethods are method names that serialize or hash their
// arguments: calling one inside a map-range body commits the map's
// iteration order to an output stream.
var mapOrderSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
}

// mapOrderSortFuncs are the sort entry points that legitimize the
// append-then-sort idiom.
var mapOrderSortFuncs = map[string]bool{
	"Strings":        true,
	"Ints":           true,
	"Float64s":       true,
	"Slice":          true,
	"SliceStable":    true,
	"Sort":           true,
	"SortFunc":       true,
	"SortStableFunc": true,
}

func runMapOrder(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sorted := sortedIdents(p.TypesInfo, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := p.TypesInfo.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
					return true
				}
				reportMapOrderBody(p, rng, sorted)
				return true
			})
		}
	}
}

// sortedIdents collects objects passed to a sort.* call anywhere in the
// function: a slice that is sorted after the loop is order-clean no
// matter how it was filled.
func sortedIdents(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !mapOrderSortFuncs[sel.Sel.Name] {
			return true
		}
		// Only package-level sort/slices functions, not arbitrary methods.
		pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := info.Uses[pkgID].(*types.PkgName); !ok || (pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if obj := rootObject(info, arg); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// reportMapOrderBody inspects one map-range body for order-dependent
// operations.
func reportMapOrderBody(p *Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			// A nested map-range gets its own visit from runMapOrder;
			// skipping it here keeps each sink reported exactly once.
			if _, isMap := p.TypesInfo.TypeOf(st.X).Underlying().(*types.Map); isMap {
				return false
			}
		case *ast.AssignStmt:
			// append(s, ...) assigned back to s.
			if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
				for i, rhs := range st.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
						continue
					}
					if i < len(st.Lhs) {
						if obj := rootObject(p.TypesInfo, st.Lhs[i]); obj != nil && sorted[obj] {
							continue // append-then-sort idiom
						}
					}
					p.Reportf(call.Pos(), "append inside a map-range commits iteration order to the slice; range over sorted keys (or sort the slice afterwards)")
				}
				return true
			}
			// Compound assignment accumulating into an outer variable.
			switch st.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range st.Lhs {
					obj := rootObject(p.TypesInfo, lhs)
					if obj == nil || withinNode(rng, obj.Pos()) {
						continue // loop-local accumulator resets every iteration
					}
					p.Reportf(st.Pos(), "%s reduces over map iteration order; range over sorted keys to fix the association", obj.Name())
				}
			}
		case *ast.CallExpr:
			name := sinkCallName(p.TypesInfo, st)
			if name == "" {
				return true
			}
			p.Reportf(st.Pos(), "%s inside a map-range serializes in iteration order; range over sorted keys", name)
			return false // don't descend into the call's own args again
		}
		return true
	})
}

// sinkCallName reports a serializing callee's name: either a sink
// method on any receiver (Write, Encode, ...) or an fmt printing
// function; "" when the call is not a sink. A package-qualified call
// only counts when the package is fmt — WriteString from some utility
// package is not a stream method.
func sinkCallName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !mapOrderSinkMethods[sel.Sel.Name] {
		return ""
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if pn, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			if pn.Imported().Path() == "fmt" {
				return sel.Sel.Name
			}
			return ""
		}
	}
	return sel.Sel.Name
}

// rootObject resolves the base identifier of an lvalue-ish expression
// (x, x.f, x[i], *x) to its object.
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return obj
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// withinNode reports whether pos falls inside n's source range.
func withinNode(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}
