package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErr flags ignored error returns from the Encode/Decode/
// Quantize/Analyze families — the entry points whose errors signal that
// a bound could not be established (unsupported mode, corrupt stream,
// invalid tolerance). Dropping one turns "no guarantee" into "silently
// wrong guarantee": the caller proceeds with data the error said not to
// trust. Both bare call statements and explicit `_` assignments of the
// error result are reported.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "flags ignored errors from Encode/Decode/Quantize/Analyze-family calls",
	Run:  runDroppedErr,
}

// droppedErrPrefixes are the guarded call-name families.
var droppedErrPrefixes = []string{"Encode", "Decode", "Quantize", "Analyze"}

func runDroppedErr(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := guardedCallName(call)
				if !ok {
					return true
				}
				if idx := errorResultIndexes(p.TypesInfo, call); len(idx) > 0 {
					p.Reportf(call.Pos(), "error returned by %s is dropped; it signals an unestablished bound and must be handled", name)
				}
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := guardedCallName(call)
				if !ok {
					return true
				}
				for _, i := range errorResultIndexes(p.TypesInfo, call) {
					if i >= len(st.Lhs) {
						continue
					}
					if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						p.Reportf(id.Pos(), "error returned by %s is assigned to _; it signals an unestablished bound and must be handled", name)
					}
				}
			}
			return true
		})
	}
}

// guardedCallName reports the callee's name if it belongs to one of the
// guarded families.
func guardedCallName(call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	for _, prefix := range droppedErrPrefixes {
		if strings.HasPrefix(name, prefix) {
			return name, true
		}
	}
	return "", false
}

// errorResultIndexes returns the positions of error-typed results in the
// call's result tuple.
func errorResultIndexes(info *types.Info, call *ast.CallExpr) []int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	var out []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				out = append(out, i)
			}
		}
	default:
		if isErrorType(t) {
			out = append(out, 0)
		}
	}
	return out
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}
