package analyze

import (
	"go/ast"
	"go/types"
)

// BoundFlow polices the thread from achieved codec error bounds into
// the Inequality (3) accounting. Functions annotated
// //errprop:bound-source (and, via fixed-point propagation, functions
// that return a bound obtained from one) produce float results that ARE
// the certificate: the measured reconstruction error, the predicted QoI
// bound. Dropping one on the floor leaves downstream code certifying a
// bound it never received.
//
// Two shapes are reported:
//
//   - a call whose float results are ALL discarded — every one assigned
//     to the blank identifier, or a bare call statement;
//   - a float result assigned to a local variable that is never read
//     afterwards (the quiet version of the same bug).
//
// A call that keeps at least one float result is not flagged: using the
// L2 bound and discarding the L-infinity one is a norm choice, not a
// dropped certificate. This is an approximation of "flows into core
// bound accounting": the analyzer demands the bound be *consumed
// somewhere*, and the dynamic soundness sweep remains the oracle that
// the consumption is correct.
var BoundFlow = &Analyzer{
	Name: "boundflow",
	Doc:  "flags achieved error bounds (from //errprop:bound-source functions) discarded via _ or never used",
	Run:  runBoundFlow,
}

func runBoundFlow(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					call, ok := ast.Unparen(st.X).(*ast.CallExpr)
					if !ok {
						return true
					}
					if name, idx := boundSourceCall(p, call); len(idx) > 0 {
						p.Reportf(call.Pos(), "achieved error bound from %s is discarded (call statement drops every result); thread it into the bound accounting", name)
					}
				case *ast.AssignStmt:
					p.checkBoundAssign(file, st)
				}
				return true
			})
		}
	}
}

// checkBoundAssign flags blank or never-read destinations of a
// bound-source call's float results.
func (p *Pass) checkBoundAssign(file *ast.File, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, idx := boundSourceCall(p, call)
	if len(idx) == 0 {
		return
	}
	allBlank := true
	for _, i := range idx {
		if i >= len(st.Lhs) {
			allBlank = false
			continue
		}
		id, ok := st.Lhs[i].(*ast.Ident)
		if !ok {
			allBlank = false
			continue // field/element destination: stored, assume consumed
		}
		if id.Name == "_" {
			continue
		}
		allBlank = false
		if obj, isDef := p.TypesInfo.Defs[id]; isDef && obj != nil && !objectUsed(p.TypesInfo, obj) {
			p.Reportf(id.Pos(), "achieved error bound from %s is assigned to %s but never read; thread it into the bound accounting", name, id.Name)
		}
	}
	if allBlank {
		p.Reportf(call.Pos(), "every achieved error bound from %s is assigned to _; thread one into the bound accounting", name)
	}
}

// boundSourceCall resolves call to a bound-source function and returns
// its display name plus the tuple indexes of its float results.
func boundSourceCall(p *Pass, call *ast.CallExpr) (string, []int) {
	f, ok := calleeFunc(p.TypesInfo, call)
	if !ok {
		return "", nil
	}
	if !p.Prog.Facts.IsBoundSource(funcSymbol(f)) {
		return "", nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return "", nil
	}
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if isFloat(sig.Results().At(i).Type()) {
			idx = append(idx, i)
		}
	}
	return f.Name(), idx
}

// objectUsed reports whether obj is read anywhere in the package after
// its definition (any Uses entry).
func objectUsed(info *types.Info, obj types.Object) bool {
	for _, used := range info.Uses {
		if used == obj {
			return true
		}
	}
	return false
}
