// Package lossyconv_dirty violates the lossyconv invariant (it is
// loaded under an internal/core-like import path in tests).
package lossyconv_dirty

func narrow(x float64) float32 {
	return float32(x) // want:lossyconv
}

func narrowSum(xs []float64) float32 {
	var s float64
	for _, x := range xs {
		s += x
	}
	f := float32(s) // want:lossyconv
	return f
}
