// Package boundflow_clean consumes every achieved bound it measures.
package boundflow_clean

// measure returns the achieved reconstruction error bounds.
//
//errprop:bound-source
func measure(orig, recon []float64) (linf, l2 float64) {
	for i := range orig {
		d := orig[i] - recon[i]
		if d < 0 {
			d = -d
		}
		if d > linf {
			linf = d
		}
		l2 += d * d
	}
	return linf, l2
}

// measureLinf is a thin wrapper: propagation marks it bound-source too.
func measureLinf(orig, recon []float64) float64 {
	linf, _ := measure(orig, recon)
	return linf
}

func account(orig, recon []float64, budget float64) bool {
	linf, l2 := measure(orig, recon)
	return linf <= budget && l2 <= budget*budget
}

// keepOne uses the L2 bound and discards the L-infinity one: a norm
// choice, not a dropped certificate.
func keepOne(orig, recon []float64, budget float64) bool {
	_, l2 := measure(orig, recon)
	return l2 <= budget
}
