// Package lossyconv_clean stays in float64 on bound paths; widening and
// constant conversions are fine.
package lossyconv_clean

func widen(x float32) float64 {
	return float64(x)
}

func constNarrow() float32 {
	return float32(0.5) // constant conversion rounds once, visibly
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
