// Package boundflow_dirty drops achieved bounds on the floor.
package boundflow_dirty

// measure returns the achieved reconstruction error bounds.
//
//errprop:bound-source
func measure(orig, recon []float64) (linf, l2 float64) {
	for i := range orig {
		d := orig[i] - recon[i]
		if d < 0 {
			d = -d
		}
		if d > linf {
			linf = d
		}
		l2 += d * d
	}
	return linf, l2
}

// wrap forwards the bound; propagation marks it bound-source too.
func wrap(orig, recon []float64) float64 {
	linf, _ := measure(orig, recon)
	return linf
}

func bareCall(orig, recon []float64) {
	measure(orig, recon) // want:boundflow
}

func allBlank(orig, recon []float64) {
	_, _ = measure(orig, recon) // want:boundflow
}

// viaWrapper drops a bound that only interprocedural propagation knows
// is one.
func viaWrapper(orig, recon []float64) {
	_ = wrap(orig, recon) // want:boundflow
}
