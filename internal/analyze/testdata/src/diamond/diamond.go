// Package diamond is a diamond-shaped call graph (A calls B and C; both
// call D) exercising fact propagation in both directions: deterministic
// flows down from A to D along either path, bound-source flows up from
// D to A through both wrappers.
package diamond

// A is the deterministic root.
//
//errprop:deterministic
func A() float64 { return B() + C() }

func B() float64 { return D() }

func C() float64 {
	v := D()
	return v
}

// D carries the achieved bound.
//
//errprop:bound-source
func D() float64 { return 0.5 }

// E is outside the diamond: neither fact reaches it.
func E() float64 {
	var x float64
	for i := 0; i < 4; i++ {
		x += float64(i)
	}
	return x
}
