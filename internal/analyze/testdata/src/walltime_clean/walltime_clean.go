// Package walltime_clean keeps wall-clock reads outside deterministic
// contexts.
package walltime_clean

import "time"

// step is a deterministic root; everything it reaches is clock-free.
//
//errprop:deterministic
func step(xs []float64) float64 {
	return reduce(xs)
}

func reduce(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// serveLatency is NOT in a deterministic context: measuring request
// latency with the real clock is exactly what time.Since is for.
func serveLatency() time.Duration {
	start := time.Now()
	reduce([]float64{1, 2, 3})
	return time.Since(start)
}
