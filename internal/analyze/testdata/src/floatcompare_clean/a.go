// Package floatcompare_clean exercises the approved exact-comparison
// idioms: tolerance helpers, exact-zero guards, and the NaN
// self-comparison.
package floatcompare_clean

import "math"

// approxEqual is an allowlisted tolerance helper; exact comparison is
// its job.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

func safeInverse(x float64) float64 {
	if x == 0 { // exact-zero guard
		return 0
	}
	return 1 / x
}

func isNaN(x float64) bool {
	return x != x // self-comparison NaN idiom
}

func ints(a, b int) bool {
	return a == b // integer comparison is exact
}

func usesHelper(a, b float64) bool {
	return approxEqual(a, b, 1e-12)
}
