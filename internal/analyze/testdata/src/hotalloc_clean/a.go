// Package hotalloc_clean keeps hot paths allocation-free: buffers are
// ensured/reused, and constructor calls happen only in cold setup
// functions or behind a documented suppression.
package hotalloc_clean

type matrix struct{ data []float64 }

func NewMatrix(rows, cols int) *matrix { return &matrix{data: make([]float64, rows*cols)} }

func EnsureMatrix(m *matrix, rows, cols int) *matrix {
	if m == nil || cap(m.data) < rows*cols {
		return NewMatrix(rows, cols)
	}
	m.data = m.data[:rows*cols]
	return m
}

func Im2ColMatInto(x, dst *matrix) *matrix { return dst }

type engine struct{ buf *matrix }

// compile is cold setup: constructors are fine here.
func compile() *engine {
	return &engine{buf: NewMatrix(4, 4)}
}

// Forward is hot but only reuses preallocated state.
func (e *engine) Forward(x *matrix) *matrix {
	e.buf = EnsureMatrix(e.buf, 4, 4)
	return Im2ColMatInto(x, e.buf)
}

// runBatch is hot; the suppressed allocation is a documented fallback.
func runBatch(e *engine, x *matrix) *matrix {
	if e.buf == nil {
		//lint:ignore hotalloc first-call warmup allocates once, steady state reuses
		e.buf = NewMatrix(4, 4)
	}
	return e.Forward(x)
}
