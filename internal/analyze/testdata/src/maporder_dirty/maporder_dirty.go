// Package maporder_dirty ranges over maps with order-dependent bodies.
package maporder_dirty

import (
	"fmt"
	"strings"
)

func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want:maporder
	}
	return out
}

func reduce(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want:maporder
	}
	return total
}

func serialize(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		b.WriteString(k)          // want:maporder
		fmt.Fprintf(b, "=%d ", v) // want:maporder
	}
}

func nested(outer map[string]map[string]int) []string {
	var keys []string
	for _, inner := range outer {
		for k := range inner {
			keys = append(keys, k) // want:maporder
		}
	}
	return keys
}
