// Package nonfinite_clean guards every returned bound for finiteness.
package nonfinite_clean

import "math"

func l2Bound(parts []float64) float64 {
	var ss float64
	for _, p := range parts {
		ss += p * p
	}
	b := math.Sqrt(ss)
	if math.IsNaN(b) || math.IsInf(b, 0) {
		return math.MaxFloat64
	}
	return b
}

func perElem(total float64, n int) float64 {
	v := total / float64(n)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}

// halve divides by a constant; constant denominators cannot overflow on
// their own.
func halve(x float64) float64 {
	return x / 2
}

// count returns no float, so the analyzer skips it entirely.
func count(xs []float64) int {
	return len(xs)
}
