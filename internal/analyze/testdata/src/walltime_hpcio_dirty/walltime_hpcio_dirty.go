// Package walltime_hpcio_dirty stands in for internal/hpcio: the whole
// package is a simulated-time context, so ANY real-clock read is a
// finding — no annotation needed.
package walltime_hpcio_dirty

import "time"

func readTime(n int64) time.Duration {
	start := time.Now() // want:walltime
	d := time.Duration(n) * time.Microsecond
	return d + time.Since(start) // want:walltime
}

// Building durations arithmetically is the package's whole point and is
// not a clock read.
func decodeTime(bytes int64) time.Duration {
	return time.Duration(bytes) * time.Nanosecond
}
