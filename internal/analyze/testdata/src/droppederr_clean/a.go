// Package droppederr_clean handles every guarded-family error.
package droppederr_clean

import "fmt"

func EncodeBlob(data []float64) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("empty")
	}
	return make([]byte, 8*len(data)), nil
}

func DecodeBlob(blob []byte) error {
	if len(blob)%8 != 0 {
		return fmt.Errorf("ragged")
	}
	return nil
}

// EncodeLen has no error result; bare calls are fine.
func EncodeLen(data []float64) int { return 8 * len(data) }

func useAll(xs []float64, blob []byte) ([]byte, error) {
	out, err := EncodeBlob(xs)
	if err != nil {
		return nil, err
	}
	if err := DecodeBlob(blob); err != nil {
		return nil, err
	}
	EncodeLen(xs)
	return out, nil
}
