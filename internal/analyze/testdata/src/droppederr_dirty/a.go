// Package droppederr_dirty violates the droppederr invariant.
package droppederr_dirty

import "fmt"

func EncodeBlob(data []float64) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("empty")
	}
	return make([]byte, 8*len(data)), nil
}

func DecodeBlob(blob []byte) error {
	if len(blob)%8 != 0 {
		return fmt.Errorf("ragged")
	}
	return nil
}

func QuantizeAll(xs []float64) error { return nil }

func useAll(xs []float64, blob []byte) []byte {
	out, _ := EncodeBlob(xs) // want:droppederr
	DecodeBlob(blob)         // want:droppederr
	QuantizeAll(xs)          // want:droppederr
	return out
}
