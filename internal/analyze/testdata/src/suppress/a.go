// Package suppress carries deliberate violations, each silenced with a
// documented //lint:ignore directive — same-line and line-above forms.
package suppress

import "math/rand"

func equalExact(a, b float64) bool {
	return a == b //lint:ignore floatcompare exactness is the point of this helper
}

func fixedRand() *rand.Rand {
	//lint:ignore unseededrand fixture generator; determinism is desired here
	return rand.New(rand.NewSource(7))
}

func both(a, b float64) bool {
	//lint:ignore floatcompare,unseededrand comma-separated list covers several analyzers
	return a == b && rand.Float64() > 0.5
}
