// Package gororder_clean reduces across goroutines with the sanctioned
// per-shard-slot idiom (see nn.Trainer).
package gororder_clean

import "sync"

// shardedSum stores each worker's partial into its own slot — the index
// is the goroutine-local parameter — and reduces in a fixed pairwise
// order after the join.
func shardedSum(xs []float64, workers int) float64 {
	slots := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(xs); i += workers {
				slots[w] += xs[i]
			}
		}(w)
	}
	wg.Wait()
	var total float64
	for _, s := range slots {
		total += s
	}
	return total
}

// localThenChannel accumulates into a goroutine-local variable and
// hands the partial over a channel: order never reaches a float sum.
func localThenChannel(xs []float64) float64 {
	ch := make(chan float64, 1)
	go func() {
		var local float64
		for _, x := range xs {
			local += x
		}
		ch <- local
	}()
	return <-ch
}

// viaLocalLiteral is the trainer's `run := func(w int)` shape with
// per-slot writes: still clean through the one-level literal expansion.
func viaLocalLiteral(xs []float64, workers int) float64 {
	slots := make([]float64, workers)
	var wg sync.WaitGroup
	run := func(w int) {
		defer wg.Done()
		for i := w; i < len(xs); i += workers {
			slots[w] += xs[i]
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go run(w)
	}
	wg.Wait()
	var total float64
	for _, s := range slots {
		total += s
	}
	return total
}
