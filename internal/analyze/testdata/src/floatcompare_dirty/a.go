// Package floatcompare_dirty violates the floatcompare invariant.
package floatcompare_dirty

func equalBounds(a, b float64) bool {
	return a == b // want:floatcompare
}

func mixed(a float32, b float32) bool {
	if a != b { // want:floatcompare
		return false
	}
	return true
}

type pair struct{ lo, hi float64 }

func (p pair) degenerate() bool {
	return p.lo == p.hi // want:floatcompare
}
