// Package unseededrand_dirty violates the unseededrand invariant.
package unseededrand_dirty

import "math/rand"

func globalDraw() float64 {
	return rand.Float64() // want:unseededrand
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want:unseededrand
}

func hardwired() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want:unseededrand
}
