// Package ignorestale_mixed carries one live suppression and two stale
// ones.
package ignorestale_mixed

import "math/rand"

// Live: the directive suppresses a real floatcompare finding.
func equalExact(a, b float64) bool {
	return a == b //lint:ignore floatcompare exactness is the point here
}

// Stale: nothing on this line (or the next) trips floatcompare.
func add(a, b float64) float64 {
	//lint:ignore floatcompare no comparison here at all // want:ignorestale
	return a + b
}

// Stale: the generator is seeded from the parameter now, so the
// directive kept out of habit suppresses nothing.
func seededRand(seed int64) float64 {
	//lint:ignore unseededrand historical; the seed is a parameter today // want:ignorestale
	return rand.New(rand.NewSource(seed)).Float64()
}
