// Package badannotation carries malformed //errprop: annotations, which
// must surface as driver findings rather than silently seeding nothing.
package badannotation

// unknown verb
//
//errprop:determinstic typo must be caught
func typoVerb() {}

// annotation not attached to a function declaration
//
//errprop:deterministic
var notAFunc = 1

// bound-source with no float results cannot carry a bound
//
//errprop:bound-source
func noFloats() (int, error) { return 0, nil }
