// Package malformed has a //lint:ignore directive without a reason; the
// driver must report it and must NOT let it suppress the finding.
package malformed

func equalExact(a, b float64) bool {
	return a == b //lint:ignore floatcompare
}
