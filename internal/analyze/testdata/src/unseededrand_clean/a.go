// Package unseededrand_clean threads seeds explicitly, as Spec.Build
// does.
package unseededrand_clean

import "math/rand"

func build(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func derive(parent *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(parent.Int63()))
}

func draw(rng *rand.Rand) float64 {
	return rng.Float64()
}
