// Package maporder_clean ranges over maps only in order-insensitive ways.
package maporder_clean

import (
	"sort"
	"strings"
)

// Append-then-sort: the canonical deterministic idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Ranging over a slice is always ordered; append is fine.
func copySlice(in []string) []string {
	var out []string
	for _, s := range in {
		out = append(out, s)
	}
	return out
}

// A loop-local accumulator resets every iteration: no cross-iteration
// order dependence escapes the loop.
func localAccum(m map[string][]float64) map[string]float64 {
	out := map[string]float64{}
	for k, vs := range m {
		var sum float64
		for _, v := range vs {
			sum += v
		}
		out[k] = sum
	}
	return out
}

// Keyed writes commute: the result map does not depend on visit order.
func invert(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Serializing AFTER sorting the keys is the fix maporder asks for.
func render(m map[string]int, b *strings.Builder) {
	for _, k := range sortedKeys(m) {
		b.WriteString(k)
	}
}
