// Package nonfinite_dirty violates the nonfinite invariant (it is
// loaded under an internal/core-like import path in tests).
package nonfinite_dirty

import "math"

func l2Bound(parts []float64) float64 {
	var ss float64
	for _, p := range parts {
		ss += p * p
	}
	return math.Sqrt(ss) // want:nonfinite
}

func bitsBound(ratio float64) float64 {
	return math.Log(ratio) // want:nonfinite
}

func perElem(total float64, n int) float64 {
	return total / float64(n) // want:nonfinite
}
