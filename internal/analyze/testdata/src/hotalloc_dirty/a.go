// Package hotalloc_dirty allocates tensors inside hot paths.
package hotalloc_dirty

type matrix struct{ data []float64 }

func NewMatrix(rows, cols int) *matrix { return &matrix{data: make([]float64, rows*cols)} }

func NewMatrixFrom(rows, cols int, d []float64) *matrix { return &matrix{data: d} }

func Im2Col(x *matrix) *matrix { return NewMatrix(1, len(x.data)) } // cold helper: no finding

type layer struct{ w *matrix }

func (l *layer) Forward(x *matrix) *matrix {
	cols := Im2Col(x)                    // want:hotalloc
	out := NewMatrix(4, len(cols.data))  // want:hotalloc
	tmp := NewMatrixFrom(1, 4, out.data) // want:hotalloc
	_ = tmp
	return out
}

func executeOp(l *layer, x *matrix) *matrix {
	return l.Forward(NewMatrix(2, 2)) // want:hotalloc
}

// coldSetup is not a hot-path name: constructors are fine.
func coldSetup() *layer {
	return &layer{w: NewMatrix(4, 4)}
}
