// Package walltime_dirty reads the wall clock inside a deterministic
// context, directly and transitively.
package walltime_dirty

import "time"

// step is a deterministic root that reads the clock itself and through
// two levels of helpers.
//
//errprop:deterministic
func step(xs []float64) float64 {
	t := time.Now() // want:walltime
	return reduce(xs) + float64(t.Nanosecond())
}

func reduce(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s + jitter()
}

// jitter is two call-graph edges below the annotated root: only
// interprocedural fact propagation can see it runs deterministically.
func jitter() float64 {
	time.Sleep(time.Millisecond)              // want:walltime
	return float64(time.Now().UnixNano() % 2) // want:walltime
}
