// Package gororder_dirty accumulates into shared floats from
// goroutines: the schedule becomes the reduction order.
package gororder_dirty

import "sync"

func racySum(xs []float64, workers int) float64 {
	var total float64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(xs); i += workers {
				mu.Lock()
				total += xs[i] // want:gororder
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return total
}

func selfAssign(xs []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			sum = sum + x // want:gororder
		}(x)
	}
	wg.Wait()
	return sum
}

// sharedIndex writes through an index captured from the enclosing
// function: every goroutine hits the same slot.
func sharedIndex(xs []float64, slots []float64, j int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			slots[j] += x // want:gororder
		}(x)
	}
	wg.Wait()
}

// viaLocalLiteral hides the accumulation one literal away; the
// one-level expansion still sees it.
func viaLocalLiteral(xs []float64) float64 {
	var total float64
	var wg sync.WaitGroup
	run := func(x float64) {
		defer wg.Done()
		total += x // want:gororder
	}
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) { run(x) }(x)
	}
	wg.Wait()
	return total
}
