package analyze

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// newTestLoader builds a loader rooted at the repo module; fixture paths
// are resolved against ModuleDir so tests are independent of the working
// directory NewLoader switches to.
func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func fixtureDir(l *Loader, name string) string {
	return filepath.Join(l.ModuleDir, "internal", "analyze", "testdata", "src", name)
}

// expectation is one finding a fixture file demands via a trailing
// "// want:<analyzer>[,<analyzer>]" marker.
type expectation struct {
	file     string
	line     int
	analyzer string
}

var wantRe = regexp.MustCompile(`// want:([a-z,]+)`)

// readExpectations scans a fixture package for want markers.
func readExpectations(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, name := range strings.Split(m[1], ",") {
				out = append(out, expectation{file: path, line: line, analyzer: name})
			}
		}
		f.Close()
	}
	return out
}

func TestFixtures(t *testing.T) {
	l := newTestLoader(t)
	cases := []struct {
		fixture string
		// importPath lets path-filtered analyzers (lossyconv,
		// nonfinite) see a bound-computing package path.
		importPath string
	}{
		{"floatcompare_clean", "fixture/floatcompare_clean"},
		{"floatcompare_dirty", "fixture/floatcompare_dirty"},
		{"unseededrand_clean", "fixture/unseededrand_clean"},
		{"unseededrand_dirty", "fixture/unseededrand_dirty"},
		{"lossyconv_clean", "fixture/internal/core/lossyconv_clean"},
		{"lossyconv_dirty", "fixture/internal/core/lossyconv_dirty"},
		{"droppederr_clean", "fixture/droppederr_clean"},
		{"droppederr_dirty", "fixture/droppederr_dirty"},
		{"nonfinite_clean", "fixture/internal/core/nonfinite_clean"},
		{"nonfinite_dirty", "fixture/internal/core/nonfinite_dirty"},
		{"hotalloc_clean", "fixture/internal/nn/hotalloc_clean"},
		{"hotalloc_dirty", "fixture/internal/serve/hotalloc_dirty"},
		{"maporder_clean", "fixture/maporder_clean"},
		{"maporder_dirty", "fixture/maporder_dirty"},
		{"walltime_clean", "fixture/walltime_clean"},
		{"walltime_dirty", "fixture/walltime_dirty"},
		// The hpcio fixture's import path puts it in the simulated-time
		// package family: walltime needs no annotation there.
		{"walltime_hpcio_dirty", "fixture/internal/hpcio/walltime_dirty"},
		{"gororder_clean", "fixture/gororder_clean"},
		{"gororder_dirty", "fixture/gororder_dirty"},
		{"boundflow_clean", "fixture/boundflow_clean"},
		{"boundflow_dirty", "fixture/boundflow_dirty"},
		{"ignorestale_mixed", "fixture/ignorestale_mixed"},
		{"suppress", "fixture/suppress"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			dir := fixtureDir(l, tc.fixture)
			pkg, err := l.LoadDir(dir, tc.importPath)
			if err != nil {
				t.Fatal(err)
			}
			got := Run(pkg, All())
			want := readExpectations(t, dir)
			type key struct {
				file     string
				line     int
				analyzer string
			}
			wantSet := map[key]bool{}
			for _, w := range want {
				wantSet[key{w.file, w.line, w.analyzer}] = true
			}
			for _, f := range got {
				k := key{f.Position.Filename, f.Position.Line, f.Analyzer}
				if !wantSet[k] {
					t.Errorf("unexpected finding %s", f)
					continue
				}
				delete(wantSet, k)
			}
			for k := range wantSet {
				t.Errorf("missing finding %s:%d (%s)", k.file, k.line, k.analyzer)
			}
		})
	}
}

func TestPathFiltersKeepAnalyzersOut(t *testing.T) {
	l := newTestLoader(t)
	// The lossyconv fixture loaded under a non-core path must produce
	// no lossyconv findings: the analyzer's Match rejects the package.
	pkg, err := l.LoadDir(fixtureDir(l, "lossyconv_dirty"), "fixture/plain/lossyconv_dirty")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(pkg, All()) {
		if f.Analyzer == "lossyconv" {
			t.Errorf("lossyconv ran outside its package filter: %s", f)
		}
	}
}

func TestMalformedDirective(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.LoadDir(fixtureDir(l, "malformed"), "fixture/malformed")
	if err != nil {
		t.Fatal(err)
	}
	dir := CheckDirectives(pkg)
	if len(dir) != 1 {
		t.Fatalf("want 1 malformed-directive finding, got %v", dir)
	}
	// The reasonless directive must not suppress the underlying finding.
	found := false
	for _, f := range Run(pkg, All()) {
		if f.Analyzer == "floatcompare" {
			found = true
		}
	}
	if !found {
		t.Error("reasonless //lint:ignore suppressed a finding")
	}
}

func TestExpandSkipsTestdata(t *testing.T) {
	l := newTestLoader(t)
	targets, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var sawCore, sawAnalyze bool
	for _, tgt := range targets {
		if strings.Contains(tgt.Path, "testdata") {
			t.Errorf("Expand included testdata package %s", tgt.Path)
		}
		if strings.HasSuffix(tgt.Path, "internal/core") {
			sawCore = true
		}
		if strings.HasSuffix(tgt.Path, "internal/analyze") {
			sawAnalyze = true
		}
	}
	if !sawCore || !sawAnalyze {
		t.Errorf("Expand missed expected packages (core=%v analyze=%v) in %d targets", sawCore, sawAnalyze, len(targets))
	}
}

func TestExpandExplicitDirBypassesTestdataSkip(t *testing.T) {
	l := newTestLoader(t)
	targets, err := l.Expand([]string{filepath.Join(l.ModuleDir, "internal", "analyze", "testdata", "src", "floatcompare_dirty")})
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 {
		t.Fatalf("want exactly the fixture package, got %v", targets)
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("floatcompare,nonfinite")
	if err != nil || len(as) != 2 {
		t.Fatalf("ByName: %v %v", as, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted unknown analyzer")
	}
}

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//lint:ignore floatcompare exact equality intended", []string{"floatcompare"}, true},
		{"//lint:ignore a,b covers two analyzers", []string{"a", "b"}, true},
		{"//lint:ignore floatcompare", nil, false}, // missing reason
		{"// just a comment", nil, false},
		{"//lint:ignoreextra nope", nil, false},
	}
	for _, tc := range cases {
		names, ok := parseIgnore(tc.text)
		if ok != tc.ok {
			t.Errorf("parseIgnore(%q) ok=%v want %v", tc.text, ok, tc.ok)
			continue
		}
		if strings.Join(names, "|") != strings.Join(tc.names, "|") {
			t.Errorf("parseIgnore(%q) names=%v want %v", tc.text, names, tc.names)
		}
	}
}
