// Package analyze is a lightweight static-analysis driver built purely on
// the standard library's go/parser, go/ast and go/types (no
// golang.org/x/tools dependency, keeping the module dependency-free). It
// exists to mechanically enforce the numeric-soundness and determinism
// invariants the error-propagation math relies on: bounds computed by
// internal/core are only guaranteed when float comparisons are
// tolerance-based, float64 state is not silently truncated, RNG seeds are
// threaded explicitly, and error returns from codec/quantizer entry
// points are never dropped.
//
// The driver loads packages from source, type-checks them with the
// stdlib source importer, and runs a suite of repo-specific Analyzers
// over each package. Findings can be suppressed per line with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or the line directly above it; the reason
// is mandatory so every suppression documents why the invariant does not
// apply.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Each analyzer is a self-contained
// file in this package; see All for the suite.
type Analyzer struct {
	// Name is the identifier used in findings, -only filters and
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Match restricts the analyzer to packages whose import path it
	// accepts; nil runs the analyzer on every package.
	Match func(pkgPath string) bool
	// Run inspects one type-checked package and reports findings
	// through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package import path (used by Match and findings).
	Path string

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Package:  p.Path,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported invariant violation.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Package  string         `json:"package"`
	Position token.Position `json:"position"`
	Message  string         `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCompare,
		UnseededRand,
		LossyConv,
		DroppedErr,
		NonFinite,
		Hotalloc,
	}
}

// ByName resolves a comma-separated analyzer name list against All.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analyze: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Run executes the analyzers over one loaded package, drops suppressed
// findings, and returns the rest sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Path:      pkg.Path,
			findings:  &findings,
		}
		a.Run(pass)
	}
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	kept := findings[:0]
	for _, f := range findings {
		if !sup.covers(f) {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Position, kept[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}

// suppressions maps file -> line -> analyzer names suppressed on that
// line ("*" suppresses every analyzer).
type suppressions map[string]map[int]map[string]bool

func (s suppressions) covers(f Finding) bool {
	lines := s[f.Position.Filename]
	if lines == nil {
		return false
	}
	names := lines[f.Position.Line]
	if names == nil {
		return false
	}
	return names[f.Analyzer] || names["*"]
}

const ignoreDirective = "lint:ignore"

// collectSuppressions scans comments for //lint:ignore directives. A
// directive suppresses matching findings on its own line (trailing
// comment) and on the following line (comment above the statement). A
// directive without a reason is itself surfaced as a malformed-directive
// finding by the driver (see CheckDirectives).
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = map[string]bool{}
					}
					for _, n := range names {
						lines[ln][n] = true
					}
				}
			}
		}
	}
	return sup
}

// parseIgnore parses "//lint:ignore name[,name] reason". It returns
// ok=false for comments that are not well-formed directives (including
// missing reasons, so malformed suppressions never silence findings).
func parseIgnore(text string) (names []string, ok bool) {
	rest, isDirective := ignoreDirectiveBody(text)
	if !isDirective {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, false // analyzer list plus a reason are mandatory
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// ignoreDirectiveBody returns the text after "lint:ignore" if the
// comment is that directive (respecting the word boundary, so
// lint:ignoreextra is not a directive).
func ignoreDirectiveBody(comment string) (rest string, ok bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if text == ignoreDirective {
		return "", true
	}
	body, found := strings.CutPrefix(text, ignoreDirective+" ")
	if !found {
		body, found = strings.CutPrefix(text, ignoreDirective+"\t")
	}
	if !found {
		return "", false
	}
	return strings.TrimSpace(body), true
}

// CheckDirectives reports malformed //lint:ignore directives (missing
// analyzer name or reason) so a typo cannot silently fail to suppress.
func CheckDirectives(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if _, isDirective := ignoreDirectiveBody(c.Text); !isDirective {
					continue
				}
				if _, ok := parseIgnore(c.Text); !ok {
					out = append(out, Finding{
						Analyzer: "driver",
						Package:  pkg.Path,
						Position: pkg.Fset.Position(c.Pos()),
						Message:  "malformed //lint:ignore directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
					})
				}
			}
		}
	}
	return out
}

// pathMatchAny returns a Match func accepting package paths that contain
// any of the given fragments.
func pathMatchAny(fragments ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, f := range fragments {
			if strings.Contains(pkgPath, f) {
				return true
			}
		}
		return false
	}
}
